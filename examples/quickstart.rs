//! Quickstart: prove the paper's running example and simulate it on UniZK.
//!
//! The statement is Fig. 1's `(x0 + x1) · (x2 · x3) = 99`. We build the
//! Plonk circuit, generate a real proof, verify it, and then ask the
//! accelerator simulator what the same proof generation would cost on the
//! UniZK chip.
//!
//! Run with: `cargo run --release --example quickstart`

use unizk_core::compiler::{compile_plonky2, Plonky2Instance};
use unizk_core::{ChipConfig, Simulator};
use unizk_field::{Field, Goldilocks};
use unizk_plonk::{CircuitBuilder, CircuitConfig};

fn main() {
    // 1. Build the circuit for (x0 + x1) * (x2 * x3) = 99.
    let mut builder = CircuitBuilder::new(CircuitConfig::for_testing());
    let x0 = builder.add_input();
    let x1 = builder.add_input();
    let x2 = builder.add_input();
    let x3 = builder.add_input();
    let sum = builder.add(x0, x1);
    let prod = builder.mul(x2, x3);
    let out = builder.mul(sum, prod);
    builder.assert_constant(out, Goldilocks::from_u64(99));
    let circuit = builder.build();
    println!("circuit: {} rows x {} wires", circuit.rows, circuit.config.num_wires);

    // 2. Prove with a satisfying witness: (4 + 5) * (1 * 11) = 99.
    let witness: Vec<Goldilocks> = [4u64, 5, 1, 11]
        .iter()
        .map(|&v| Goldilocks::from_u64(v))
        .collect();
    let start = std::time::Instant::now();
    let proof = circuit.prove(&witness).expect("witness satisfies the circuit");
    println!(
        "proved in {:?}; proof size {} bytes",
        start.elapsed(),
        proof.size_bytes()
    );

    // 3. Verify.
    circuit.verify(&proof).expect("proof verifies");
    println!("verified ✓");

    // A wrong witness is caught at witness generation:
    let bad: Vec<Goldilocks> = [1u64, 1, 1, 1]
        .iter()
        .map(|&v| Goldilocks::from_u64(v))
        .collect();
    assert!(circuit.prove(&bad).is_err());
    println!("bad witness rejected ✓");

    // 4. Simulate the same proof generation on the UniZK accelerator.
    let chip = ChipConfig::default_chip();
    let instance = Plonky2Instance::new(circuit.rows, circuit.config.num_wires);
    let report = Simulator::new(chip.clone()).run(&compile_plonky2(&instance));
    println!(
        "UniZK simulation: {} cycles = {:.3} µs at {} GHz ({} reads, {} writes)",
        report.total_cycles,
        report.seconds(&chip) * 1e6,
        chip.freq_ghz,
        report.read_requests,
        report.write_requests,
    );
}
