//! The Starky → Plonky2 pipeline on the paper's Fig. 2 workload.
//!
//! Proves a Fibonacci execution trace with Starky (blowup 2, large proof),
//! compresses it with a recursive Plonky2-style stage (small proof), and
//! simulates both stages on the UniZK chip — the Table 5 flow end to end.
//!
//! Run with: `cargo run --release --example fibonacci_starky`

use unizk_core::compiler::{compile_plonky2, compile_starky, Plonky2Instance, StarkyInstance};
use unizk_core::{ChipConfig, Simulator};
use unizk_plonk::CircuitConfig;
use unizk_stark::{aggregate, prove, verify, FibonacciAir, StarkConfig};

fn main() {
    let log_rows = 12;
    let air = FibonacciAir::new(1 << log_rows);
    println!(
        "Fibonacci AET: {} rows x {} columns; claimed output fib(2^{log_rows}) = {}",
        1 << log_rows,
        2,
        air.expected_output::<unizk_field::Goldilocks>()
    );

    // 1. Starky base proof (cheap to make, large on the wire).
    let config = StarkConfig::standard();
    let start = std::time::Instant::now();
    let base = prove(&air, &config).expect("trace satisfies the AIR");
    let base_time = start.elapsed();
    verify(&air, &base, &config).expect("base proof verifies");
    println!(
        "base proof: {:?}, {} kB ({} FRI queries at blowup 2)",
        base_time,
        base.size_bytes() / 1000,
        config.fri.num_queries
    );

    // 2. Recursive compression (Table 5's second stage).
    let start = std::time::Instant::now();
    let compressed = aggregate(&base, CircuitConfig::standard()).expect("aggregation proves");
    println!(
        "recursive proof: {:?}, {} kB ({:.1}x compression; grows with base trace size)",
        start.elapsed(),
        compressed.size_bytes() / 1000,
        base.size_bytes() as f64 / compressed.size_bytes() as f64
    );

    // 3. Simulate both stages on UniZK.
    let chip = ChipConfig::default_chip();
    let base_sim = Simulator::new(chip.clone()).run(&compile_starky(&StarkyInstance::new(
        1 << log_rows,
        2,
        2,
    )));
    let rec_sim = Simulator::new(chip.clone()).run(&compile_plonky2(&Plonky2Instance::new(
        1 << unizk_stark::aggregate::RECURSIVE_LOG_ROWS,
        135,
    )));
    println!(
        "UniZK simulation: base {:.3} ms + recursive {:.3} ms",
        base_sim.seconds(&chip) * 1e3,
        rec_sim.seconds(&chip) * 1e3
    );
}
