//! Zero-knowledge matrix–vector multiplication — the paper's ZKML
//! motivation (§1) and its MVM workload (§6).
//!
//! Builds a real `y = A·x` circuit over 16-bit entries, proves and
//! verifies it on the CPU, then compares against the simulated UniZK time
//! for the same instance — a single Table 3 row, live.
//!
//! Run with: `cargo run --release --example zkml_mvm`

use unizk_core::compiler::compile_plonky2;
use unizk_core::{ChipConfig, Simulator};
use unizk_fri::FriConfig;
use unizk_plonk::CircuitConfig;
use unizk_workloads::synthetic::mvm_circuit;

fn main() {
    // A 32×32 matrix keeps the live CPU proof quick; the paper's 3000×3000
    // instance is the same circuit shape (--full in the table3 harness).
    let m = 32;
    let config = CircuitConfig {
        num_wires: 400, // the MVM circuit's width (paper §7.1)
        num_challenges: 2,
        fri: FriConfig::plonky2(),
    };
    let (circuit, inputs) = mvm_circuit(config, m);
    println!(
        "MVM circuit: {}x{} matrix -> {} rows x {} wires",
        m, m, circuit.rows, circuit.config.num_wires
    );

    let start = std::time::Instant::now();
    let proof = circuit.prove(&inputs).expect("MVM witness satisfies");
    let cpu = start.elapsed();
    circuit.verify(&proof).expect("verifies");
    println!("CPU proof: {cpu:?} ({} kB), verified ✓", proof.size_bytes() / 1000);

    let chip = ChipConfig::default_chip();
    let inst = unizk_core::compiler::Plonky2Instance::new(circuit.rows, 400);
    let report = Simulator::new(chip.clone()).run(&compile_plonky2(&inst));
    let unizk = report.seconds(&chip);
    println!(
        "UniZK simulation: {:.3} ms -> {:.0}x faster than this machine's CPU",
        unizk * 1e3,
        cpu.as_secs_f64() / unizk
    );
    println!(
        "(paper, 3000x3000 full scale: CPU 39.7 s vs UniZK 0.320 s = 124x)"
    );
}
