//! Zero-knowledge Merkle membership — the canonical blockchain workload
//! the paper's introduction motivates: prove a record is in a committed
//! Merkle tree without revealing which one (or its contents).
//!
//! Builds the statement with the in-circuit Poseidon gadgets, proves it
//! with the Plonk prover, and checks the verifier only learns the root.
//!
//! Run with: `cargo run --release --example merkle_membership`

use unizk_field::{Field, Goldilocks};
use unizk_hash::MerkleTree;
use unizk_plonk::gadgets::{hash_no_pad_gadget, merkle_membership_gadget};
use unizk_plonk::{CircuitBuilder, CircuitConfig, Target};

fn main() {
    // A committed set of 8 records (say, account states).
    let leaves: Vec<Vec<Goldilocks>> = (0..8u64)
        .map(|i| vec![Goldilocks::from_u64(9_000 + i), Goldilocks::from_u64(31 * i)])
        .collect();
    let tree = MerkleTree::new(leaves.clone());
    println!("committed 8 records; root = {}", tree.root());

    // The prover privately knows record #5 and its path.
    let secret_index = 5usize;
    let opening = tree.prove(secret_index);
    let depth = opening.siblings.len();

    // Statement: "I know a record and a path to the public root".
    let mut b = CircuitBuilder::new(CircuitConfig::for_testing());
    let leaf_targets: Vec<Target> = (0..2).map(|_| b.add_input()).collect();
    let leaf_digest = hash_no_pad_gadget(&mut b, &leaf_targets);
    let bit_targets: Vec<Target> = (0..depth).map(|_| b.add_input()).collect();
    let sibling_targets: Vec<[Target; 4]> = (0..depth)
        .map(|_| core::array::from_fn(|_| b.add_input()))
        .collect();
    let root_targets: [Target; 4] = core::array::from_fn(|_| b.add_input());
    for &t in &root_targets {
        b.register_public_input(t);
    }
    merkle_membership_gadget(&mut b, leaf_digest, &bit_targets, &sibling_targets, root_targets);
    let circuit = b.build();
    println!(
        "membership circuit: {} rows x {} wires ({} Poseidon permutations in-circuit)",
        circuit.rows,
        circuit.config.num_wires,
        depth + 1
    );

    // Witness: record, path bits, siblings, then the public root.
    let mut witness: Vec<Goldilocks> = leaves[secret_index].clone();
    for level in 0..depth {
        witness.push(Goldilocks::from_u64(((secret_index >> level) & 1) as u64));
    }
    for s in &opening.siblings {
        witness.extend(s.elements());
    }
    witness.extend(tree.root().elements());

    let start = std::time::Instant::now();
    let proof = circuit.prove(&witness).expect("the record is in the tree");
    println!(
        "proved membership in {:?} ({} kB proof)",
        start.elapsed(),
        proof.size_bytes() / 1000
    );
    assert_eq!(proof.public_inputs, tree.root().elements().to_vec());
    circuit.verify(&proof).expect("verifies");
    println!("verified ✓ — the verifier learned only the root");

    // A fabricated record cannot prove.
    let mut forged = witness.clone();
    forged[0] += Goldilocks::ONE;
    assert!(circuit.prove(&forged).is_err());
    println!("forged record rejected ✓");
}
