//! Design-space exploration with the UniZK simulator (the Fig. 10
//! methodology), including the chip area/power budget of each point.
//!
//! Sweeps the VSA count, scratchpad size, and memory bandwidth on the MVM
//! workload, printing normalized performance next to the modeled chip area
//! — the kind of perf/mm² analysis the paper's Table 2 + Fig. 10 support.
//!
//! Run with: `cargo run --release --example design_space`

use unizk_core::chipmodel::AreaPowerBreakdown;
use unizk_core::compiler::{compile_plonky2, Plonky2Instance};
use unizk_core::{ChipConfig, Simulator};

fn main() {
    let instance = Plonky2Instance::new(1 << 13, 400); // MVM-shaped
    let graph = compile_plonky2(&instance);
    let base_chip = ChipConfig::default_chip();
    let base = Simulator::new(base_chip.clone()).run(&graph).total_cycles as f64;

    println!("MVM workload, {} kernel nodes; normalized to the default chip\n", graph.len());
    println!("{:<26} {:>10} {:>12} {:>10}", "configuration", "perf", "area (mm²)", "power (W)");

    let show = |label: String, chip: ChipConfig| {
        let cycles = Simulator::new(chip.clone()).run(&graph).total_cycles as f64;
        let budget = AreaPowerBreakdown::for_chip(&chip);
        println!(
            "{:<26} {:>9.2}x {:>12.1} {:>10.1}",
            label,
            base / cycles,
            budget.total_area_mm2(),
            budget.total_power_w()
        );
    };

    show("default (32 VSA/8MB/1x)".into(), base_chip);
    for n in [8usize, 16, 64] {
        show(format!("{n} VSAs"), ChipConfig::default_chip().with_vsas(n));
    }
    for mb in [2usize, 4, 16] {
        show(format!("{mb} MB scratchpad"), ChipConfig::default_chip().with_scratchpad_mb(mb));
    }
    for (num, den) in [(1usize, 2usize), (2, 1)] {
        show(
            format!("{num}/{den}x bandwidth"),
            ChipConfig::default_chip().with_bandwidth_scale(num, den),
        );
    }
}
