//! End-to-end proof roundtrip over the whole protocol stack: a Fibonacci
//! Starky trace (the paper's Fig. 2 running example) is committed with
//! FRI, opened, and verified — then systematically corrupted to show the
//! verifier rejects tampered commitments, Merkle openings, fold layers,
//! and proof-of-work witnesses.
//!
//! Every mutation below must flip verification from `Ok` to `Err`; a
//! corruption the verifier accepts is a soundness hole, so these tests may
//! never be weakened to `#[ignore]` or partial checks.

use unizk_field::{Field, Goldilocks};
use unizk_stark::{prove, verify, FibonacciAir, StarkConfig};

const ROWS: usize = 256;

fn proven_fibonacci() -> (FibonacciAir, unizk_stark::StarkProof, StarkConfig) {
    let air = FibonacciAir::new(ROWS);
    let config = StarkConfig::for_testing();
    let proof = prove(&air, &config).expect("Fibonacci trace satisfies its AIR");
    (air, proof, config)
}

#[test]
fn fibonacci_proof_verifies() {
    let (air, proof, config) = proven_fibonacci();
    assert_eq!(proof.rows, ROWS);
    verify(&air, &proof, &config).expect("honest proof verifies");
    // The AIR's claimed output is the actual Fibonacci number.
    let mut a = Goldilocks::ZERO;
    let mut b = Goldilocks::ONE;
    for _ in 0..ROWS {
        let next = a + b;
        a = b;
        b = next;
    }
    assert_eq!(air.expected_output::<Goldilocks>(), a);
}

#[test]
fn proof_survives_serialization() {
    let (air, proof, config) = proven_fibonacci();
    let bytes = proof.to_bytes();
    let decoded = unizk_stark::StarkProof::from_bytes(&bytes).expect("decodes");
    verify(&air, &decoded, &config).expect("decoded proof verifies");
    assert_eq!(bytes, decoded.to_bytes(), "byte roundtrip is stable");
}

#[test]
fn corrupted_merkle_sibling_rejected() {
    let (air, mut proof, config) = proven_fibonacci();
    // Flip one element of one sibling digest in the first query's first
    // initial-tree opening: the recomputed Merkle root can no longer match
    // the commitment.
    let sibling = &mut proof.fri.queries[0].initial[0].proof.siblings[0];
    sibling.0[0] += Goldilocks::ONE;
    verify(&air, &proof, &config).expect_err("tampered Merkle path must be rejected");
}

#[test]
fn corrupted_merkle_leaf_rejected() {
    let (air, mut proof, config) = proven_fibonacci();
    proof.fri.queries[0].initial[0].leaf[0] += Goldilocks::ONE;
    verify(&air, &proof, &config).expect_err("tampered leaf values must be rejected");
}

#[test]
fn corrupted_fold_opening_rejected() {
    let (air, mut proof, config) = proven_fibonacci();
    let pair = &mut proof.fri.queries[0].folds[0].pair;
    pair[0] += unizk_field::Ext2::ONE;
    verify(&air, &proof, &config).expect_err("tampered fold opening must be rejected");
}

#[test]
fn corrupted_trace_commitment_rejected() {
    let (air, mut proof, config) = proven_fibonacci();
    proof.trace_root.0[0] += Goldilocks::ONE;
    verify(&air, &proof, &config).expect_err("tampered trace root must be rejected");
}

#[test]
fn corrupted_quotient_commitment_rejected() {
    let (air, mut proof, config) = proven_fibonacci();
    proof.quotient_root.0[3] += Goldilocks::ONE;
    verify(&air, &proof, &config).expect_err("tampered quotient root must be rejected");
}

#[test]
fn corrupted_final_polynomial_rejected() {
    let (air, mut proof, config) = proven_fibonacci();
    if proof.fri.final_poly.is_empty() {
        proof.fri.final_poly.push(unizk_field::Ext2::ONE);
    } else {
        proof.fri.final_poly[0] += unizk_field::Ext2::ONE;
    }
    verify(&air, &proof, &config).expect_err("tampered final polynomial must be rejected");
}

#[test]
fn wrong_air_instance_rejected() {
    // A valid proof for fib(256) must not verify a different claim.
    let (_, proof, config) = proven_fibonacci();
    let other = FibonacciAir::new(2 * ROWS);
    verify(&other, &proof, &config).expect_err("proof must be bound to its instance");
}

#[test]
fn truncated_encoding_rejected() {
    let (_, proof, _) = proven_fibonacci();
    let bytes = proof.to_bytes();
    for cut in [0, 1, 32, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            unizk_stark::StarkProof::<Goldilocks>::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes must not decode"
        );
    }
}
