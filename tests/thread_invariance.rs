//! Thread-count invariance for the prover hot paths.
//!
//! The parallel NTT stages, the decomposed parallel route, and the chunked
//! Merkle hashing are all *execution strategies*: they must produce
//! bit-identical proofs and identical deterministic trace counters under
//! every [`unizk_field::set_parallelism`] setting. This suite pins the
//! invariant end-to-end (STARK prove → verify) and on the 2^14 coset LDE
//! in isolation, with the routing thresholds lowered so the parallel code
//! actually runs at test sizes instead of silently falling back to the
//! serial kernels.
//!
//! These tests mutate process-global knobs (the parallelism override, the
//! NTT routing thresholds, the trace store), so everything that touches
//! them serializes on one lock and restores the defaults before releasing
//! it. They live in their own integration-test binary for the same reason.

use std::sync::Mutex;

use unizk_field::{set_parallelism, Goldilocks, KoalaBear, PrimeField64};
use unizk_hash::{set_hash_lanes, set_packed_min_batch};
use unizk_ntt::{
    lde_of_values, set_decompose_parallel_threshold, set_stage_parallel_threshold,
};
use unizk_stark::{prove, verify, FibonacciAir, KbStarkConfig, StarkConfig};
use unizk_testkit::rng::SplitMix64;
use unizk_testkit::trace;

static GLOBAL_KNOBS: Mutex<()> = Mutex::new(());

/// Restores every knob this suite touches, even on assertion failure.
struct KnobGuard;

impl Drop for KnobGuard {
    fn drop(&mut self) {
        set_parallelism(0);
        set_stage_parallel_threshold(12);
        set_decompose_parallel_threshold(16);
        set_hash_lanes(0);
        set_packed_min_batch(0);
    }
}

fn counters() -> Vec<(String, u64)> {
    trace::snapshot().counters
}

/// One run's observable outcome: the value under test plus the counters.
type Observed<T> = Option<(T, Vec<(String, u64)>)>;

#[test]
fn stark_proof_identical_under_every_thread_count() {
    let _lock = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = KnobGuard;
    // Engage the parallel stage split and the decomposed route at the small
    // transform sizes a 256-row STARK produces.
    set_stage_parallel_threshold(4);
    set_decompose_parallel_threshold(8);

    let air = FibonacciAir::new(256);
    let config = StarkConfig::for_testing();

    let mut reference: Observed<Vec<u8>> = None;
    for threads in [1usize, 2, 3, 0] {
        set_parallelism(threads);
        trace::reset();
        let proof = prove(&air, &config).expect("trace satisfies the AIR");
        verify(&air, &proof, &config).expect("honest proof verifies");
        let got = (proof.to_bytes(), counters());
        match &reference {
            None => reference = Some(got),
            Some((bytes, counts)) => {
                assert_eq!(&got.0, bytes, "proof bytes differ at threads={threads}");
                assert_eq!(&got.1, counts, "trace counters differ at threads={threads}");
            }
        }
    }
}

/// Hash-lane-packing invariance, end to end: the full STARK prove →
/// verify loop must emit bit-identical proofs and counters at every
/// Poseidon lane width and packed-batch threshold, stacked on top of the
/// thread sweep (the grind distributes lane groups across worker threads,
/// so the two knobs compose in the hot path).
#[test]
fn stark_proof_identical_under_every_hash_lane_setting() {
    let _lock = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = KnobGuard;

    let air = FibonacciAir::new(256);
    let config = StarkConfig::for_testing();

    let mut reference: Observed<Vec<u8>> = None;
    for (lanes, min_batch, threads) in [
        // Scalar everywhere (the packed engine fully disengaged).
        (1usize, 2usize, 1usize),
        // Every packed width, single-threaded.
        (2, 2, 1),
        (4, 2, 1),
        (8, 2, 1),
        // A threshold so high batches always fall back to scalar.
        (8, 1_000_000, 1),
        // Packing and multi-threading composed.
        (4, 2, 2),
        (8, 2, 3),
        (8, 1, 0),
    ] {
        set_hash_lanes(lanes);
        set_packed_min_batch(min_batch);
        set_parallelism(threads);
        trace::reset();
        let proof = prove(&air, &config).expect("trace satisfies the AIR");
        verify(&air, &proof, &config).expect("honest proof verifies");
        let got = (proof.to_bytes(), counters());
        match &reference {
            None => reference = Some(got),
            Some((bytes, counts)) => {
                assert_eq!(
                    &got.0, bytes,
                    "proof bytes differ at lanes={lanes} min_batch={min_batch} threads={threads}"
                );
                assert_eq!(
                    &got.1, counts,
                    "counters differ at lanes={lanes} min_batch={min_batch} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn coset_lde_identical_under_every_thread_count() {
    let _lock = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = KnobGuard;
    // The 2^14 output size crosses the default stage threshold already;
    // lower the decomposed route too so all three kernels (serial,
    // stage-split, decomposed) are exercised by the thread sweep.
    set_decompose_parallel_threshold(13);

    let mut rng = SplitMix64::seed_from_u64(0x1DE);
    let values: Vec<Goldilocks> = (0..1 << 12).map(|_| Goldilocks::random(&mut rng)).collect();
    let shift = Goldilocks::MULTIPLICATIVE_GENERATOR;

    let mut reference: Observed<Vec<Goldilocks>> = None;
    for threads in [1usize, 2, 5, 0] {
        set_parallelism(threads);
        trace::reset();
        let extended = lde_of_values(&values, 2, shift);
        assert_eq!(extended.len(), 1 << 14);
        let got = (extended, counters());
        match &reference {
            None => reference = Some(got),
            Some((vals, counts)) => {
                assert_eq!(&got.0, vals, "LDE values differ at threads={threads}");
                assert_eq!(&got.1, counts, "trace counters differ at threads={threads}");
            }
        }
    }
}

/// The 31-bit stack obeys the same invariant: `(KoalaBear, Poseidon2)`
/// proofs are bit-identical under every thread count, with the same
/// lowered routing thresholds engaging the parallel NTT paths.
#[test]
fn koalabear_stark_proof_identical_under_every_thread_count() {
    let _lock = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = KnobGuard;
    set_stage_parallel_threshold(4);
    set_decompose_parallel_threshold(8);

    let air = FibonacciAir::new(256);
    let config = KbStarkConfig::for_testing_over();

    let mut reference: Observed<Vec<u8>> = None;
    for threads in [1usize, 2, 3, 0] {
        set_parallelism(threads);
        trace::reset();
        let proof = prove(&air, &config).expect("trace satisfies the AIR");
        verify(&air, &proof, &config).expect("honest proof verifies");
        let got = (proof.to_bytes(), counters());
        match &reference {
            None => reference = Some(got),
            Some((bytes, counts)) => {
                assert_eq!(&got.0, bytes, "KB proof bytes differ at threads={threads}");
                assert_eq!(&got.1, counts, "KB trace counters differ at threads={threads}");
            }
        }
    }
}

/// KoalaBear coset LDE under the thread sweep — the transform that feeds
/// every 31-bit commitment must be an execution-strategy-only parallelism.
#[test]
fn koalabear_coset_lde_identical_under_every_thread_count() {
    let _lock = GLOBAL_KNOBS.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = KnobGuard;
    set_decompose_parallel_threshold(13);

    let mut rng = SplitMix64::seed_from_u64(0x1DE);
    let values: Vec<KoalaBear> = (0..1 << 12).map(|_| KoalaBear::random(&mut rng)).collect();
    let shift = KoalaBear::MULTIPLICATIVE_GENERATOR;

    let mut reference: Observed<Vec<KoalaBear>> = None;
    for threads in [1usize, 2, 5, 0] {
        set_parallelism(threads);
        trace::reset();
        let extended = lde_of_values(&values, 2, shift);
        assert_eq!(extended.len(), 1 << 14);
        let got = (extended, counters());
        match &reference {
            None => reference = Some(got),
            Some((vals, counts)) => {
                assert_eq!(&got.0, vals, "KB LDE values differ at threads={threads}");
                assert_eq!(&got.1, counts, "KB trace counters differ at threads={threads}");
            }
        }
    }
}
