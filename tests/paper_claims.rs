//! The paper's qualitative evaluation claims, asserted at reduced scale.
//!
//! We do not assert absolute numbers (our substrate is a simulator plus a
//! different CPU); we assert the *shape*: who wins, in what direction each
//! knob moves performance, and which kernel is the bottleneck where. These
//! are the claims EXPERIMENTS.md reports quantitatively.

use unizk_bench::{fig10, fig8, table4, table6_throughput};
use unizk_core::compiler::{compile_plonky2, compile_starky, Plonky2Instance, StarkyInstance};
use unizk_core::{ChipConfig, Simulator};
use unizk_workloads::{App, GpuModel, Scale};

const SCALE: Scale = Scale::Shrunk(8);

fn unizk_seconds(app: App, scale: Scale) -> f64 {
    let chip = ChipConfig::default_chip();
    let report = Simulator::new(chip.clone()).run(&compile_plonky2(&app.plonky2_instance(scale)));
    report.seconds(&chip)
}

#[test]
fn claim_unizk_beats_gpu_beats_cpu() {
    // Table 3's ordering, with the CPU measured live on this machine.
    let gpu_model = GpuModel::a100();
    for app in [App::Fibonacci, App::Factorial] {
        let cpu = unizk_workloads::run_cpu(app, SCALE, 0).total.as_secs_f64();
        let gpu = gpu_model.prove_seconds(&app.plonky2_instance(SCALE));
        let unizk = unizk_seconds(app, SCALE);
        assert!(unizk < gpu, "{}: unizk {unizk} vs gpu {gpu}", app.name());
        assert!(unizk * 10.0 < cpu, "{}: unizk {unizk} vs cpu {cpu}", app.name());
    }
}

#[test]
fn claim_table1_merkle_dominates_cpu_time() {
    // Table 1: Merkle tree construction is the majority of single-threaded
    // CPU proving time (~60% in the paper), with NTT second.
    let run = unizk_workloads::run_cpu(App::Fibonacci, SCALE, 1);
    let merkle = run.fraction(unizk_fri::KernelClass::MerkleTree);
    assert!(merkle > 0.35, "merkle fraction {merkle}");
}

#[test]
fn claim_fig8_poly_becomes_bottleneck_on_unizk() {
    // Fig. 8: after accelerating NTT and hash, polynomial kernels account
    // for the largest share of UniZK's time on most apps.
    let bars = fig8(Scale::Full, &[App::Factorial, App::Sha256, App::Mvm]);
    for bar in &bars {
        let [ntt, poly, hash] = bar.fractions;
        assert!(
            poly > ntt || poly > hash,
            "{}: poly {poly} ntt {ntt} hash {hash}",
            bar.app
        );
    }
}

#[test]
fn claim_table4_utilization_pattern() {
    // Table 4: NTT is memory-bound (high mem util, low VSA util); hash is
    // compute-bound (VSA util ≈ 96%); poly is low on both.
    let rows = table4(Scale::Shrunk(4), &[App::Factorial]);
    let r = &rows[0];
    assert!(r.ntt.0 > 0.4, "NTT mem util {}", r.ntt.0);
    assert!(r.ntt.1 < 0.3, "NTT VSA util {}", r.ntt.1);
    assert!(r.hash.1 > 0.8, "hash VSA util {}", r.hash.1);
    assert!(r.poly.1 < 0.3, "poly VSA util {}", r.poly.1);
}

#[test]
fn claim_fig10_sensitivity_directions() {
    // Fig. 10: performance degrades when shrinking the scratchpad, the VSA
    // count, or the bandwidth, and (sub-linearly) improves when growing
    // them.
    // Large enough that the LDE working sets exceed the small scratchpad
    // settings (simulation only, so paper-adjacent scale is cheap).
    let series = fig10(Scale::Shrunk(2));
    for s in &series {
        let perfs: Vec<f64> = s.points.iter().map(|(_, p)| p).copied().collect();
        for w in perfs.windows(2) {
            assert!(
                w[0] <= w[1] + 1e-9,
                "{}: non-monotonic {:?}",
                s.parameter,
                perfs
            );
        }
        assert!(
            perfs[0] < *perfs.last().expect("points"),
            "{}: flat series {perfs:?}",
            s.parameter
        );
    }
}

#[test]
fn claim_starky_base_much_cheaper_than_plonky2() {
    // Table 5: running with Starky yields a large improvement over Plonky2
    // at the same trace size (the paper: ~61×).
    let chip = ChipConfig::default_chip();
    let rows = 1 << 14;
    let plonky2 = Simulator::new(chip.clone())
        .run(&compile_plonky2(&Plonky2Instance::new(rows, 135)))
        .seconds(&chip);
    let starky = Simulator::new(chip.clone())
        .run(&compile_starky(&StarkyInstance::new(rows, 2, 2)))
        .seconds(&chip);
    assert!(
        plonky2 > 10.0 * starky,
        "plonky2 {plonky2} vs starky {starky}"
    );
}

#[test]
fn claim_table6_throughput_ratio_order_of_hundreds() {
    // Table 6's headline: amortized multi-block SHA-256 throughput on
    // UniZK is orders of magnitude above PipeZK's 10 blocks/s (840× in the
    // paper).
    let tp = table6_throughput(256);
    assert!(
        tp.ratio() > 50.0,
        "throughput ratio {} (unizk {} b/s vs pipezk {} b/s)",
        tp.ratio(),
        tp.unizk_blocks_per_s,
        tp.pipezk_blocks_per_s
    );
    assert!(tp.unizk_blocks_per_s > 1000.0);
}

#[test]
fn claim_gpu_speedup_band() {
    // Table 3: GPU speedups over the CPU are modest (1.2–4.6×). The GPU
    // model is calibrated against the paper's 80-thread CPU, so assert the
    // calibration at full scale against the paper's own CPU numbers
    // (this machine's CPU is not comparable to the paper's server).
    let gpu_model = GpuModel::a100();
    for app in App::ALL {
        let gpu = gpu_model.prove_seconds(&app.plonky2_instance(Scale::Full));
        let ratio = app.paper().cpu_s / gpu;
        assert!(
            (0.8..12.0).contains(&ratio),
            "{}: modeled GPU speedup {ratio:.1}x vs paper band 1.2-4.6x",
            app.name()
        );
    }
}

#[test]
fn claim_amdahl_motivation() {
    // §3: accelerating only the top-2 kernels (Merkle + NTT) caps the
    // speedup by Amdahl's law because the remaining work — polynomial
    // computation and other hashing — is a non-negligible slice of CPU
    // time (11–25% in the paper's Table 1).
    let run = unizk_workloads::run_cpu(App::Factorial, SCALE, 1);
    let residual = run.fraction(unizk_fri::KernelClass::Polynomial)
        + run.fraction(unizk_fri::KernelClass::OtherHash)
        + run.fraction(unizk_fri::KernelClass::LayoutTransform);
    assert!(residual > 0.05, "residual fraction {residual}");
    let amdahl_cap = 1.0 / residual;
    assert!(amdahl_cap < 25.0, "cap {amdahl_cap}");
}
