//! Cross-crate integration tests: every workload proves and verifies end
//! to end, the Starky→Plonky2 pipeline holds together, and the simulator
//! accepts every compiled graph.

use unizk_core::compiler::{compile_plonky2, compile_starky};
use unizk_core::{ChipConfig, Simulator};
use unizk_plonk::CircuitConfig;
use unizk_stark::{aggregate, prove as stark_prove, verify as stark_verify, StarkConfig};
use unizk_workloads::starks::{BitMixAir, FactorialAir, StarkApp};
use unizk_workloads::{App, Scale};

/// Smallest scale: rows floor at 2^10 for every app.
const TINY: Scale = Scale::Shrunk(32);

#[test]
fn every_app_proves_and_verifies_at_tiny_scale() {
    for app in App::ALL {
        let (circuit, inputs) = app.build_circuit(TINY);
        let proof = circuit
            .prove(&inputs)
            .unwrap_or_else(|e| panic!("{} must prove: {e}", app.name()));
        circuit
            .verify(&proof)
            .unwrap_or_else(|e| panic!("{} must verify: {e}", app.name()));
        assert!(proof.size_bytes() > 10_000, "{} proof too small", app.name());
    }
}

#[test]
fn every_app_simulates_at_every_scale_step() {
    let chip = ChipConfig::default_chip();
    for app in App::ALL {
        for shrink in [0usize, 4, 8] {
            let inst = app.plonky2_instance(Scale::Shrunk(shrink));
            let report = Simulator::new(chip.clone()).run(&compile_plonky2(&inst));
            assert!(report.total_cycles > 0, "{} at shrink {shrink}", app.name());
        }
    }
}

#[test]
fn starky_pipeline_end_to_end() {
    // Base proof -> verify -> aggregate -> (simulated) both stages.
    let air = FactorialAir::new(1 << 10);
    let config = StarkConfig::standard();
    let base = stark_prove(&air, &config).expect("factorial AIR proves");
    stark_verify(&air, &base, &config).expect("base verifies");

    let mut rec_config = CircuitConfig::standard();
    rec_config.fri.num_queries = 4; // keep the recursive stage fast in CI
    rec_config.fri.proof_of_work_bits = 4;
    let agg = aggregate(&base, rec_config).expect("aggregation proves");
    assert!(
        agg.size_bytes() < base.size_bytes(),
        "recursion must compress: {} -> {}",
        base.size_bytes(),
        agg.size_bytes()
    );

    let chip = ChipConfig::default_chip();
    let base_sim = Simulator::new(chip).run(&compile_starky(&StarkApp::Factorial.instance(10)));
    assert!(base_sim.total_cycles > 0);
}

#[test]
fn stark_apps_prove_with_paper_configs() {
    let config = StarkConfig::standard();
    for (name, proof_bytes) in [
        ("factorial", {
            let air = FactorialAir::new(1 << 10);
            let p = stark_prove(&air, &config).expect("proves");
            stark_verify(&air, &p, &config).expect("verifies");
            p.size_bytes()
        }),
        ("bitmix", {
            let air = BitMixAir::new(1 << 10, 16);
            let p = stark_prove(&air, &config).expect("proves");
            stark_verify(&air, &p, &config).expect("verifies");
            p.size_bytes()
        }),
    ] {
        // Starky proofs at blowup 2 with 84 queries are hundreds of kB.
        assert!(proof_bytes > 100_000, "{name}: {proof_bytes}");
    }
}

#[test]
fn simulator_report_consistency_across_stack() {
    // The simulator's Merkle permutation counts must match the functional
    // Merkle tree's accounting for the same dimensions.
    let rows = 1 << 10;
    let width = 135usize;
    let lde = rows << 3;
    let perms_functional = unizk_hash::MerkleTree::permutation_cost(&vec![width; lde]);
    let chip = ChipConfig::default_chip();
    let cost = unizk_core::mapping::map_kernel(
        &unizk_core::kernels::Kernel::MerkleTree { num_leaves: lde, leaf_len: width },
        &chip,
    );
    let expected = (perms_functional as u64 * 15).div_ceil(chip.num_vsas as u64);
    assert_eq!(cost.compute_cycles, expected);
}

#[test]
fn cpu_breakdown_and_simulator_cover_same_phases() {
    // The CPU prover's kernel timers and the compiled graph must agree on
    // which classes exist for the same workload.
    let run = unizk_workloads::run_cpu(App::Fibonacci, TINY, 1);
    let graph = compile_plonky2(&App::Fibonacci.plonky2_instance(TINY));
    let chip = ChipConfig::default_chip();
    let report = Simulator::new(chip).run(&graph);

    // CPU: NTT + Merkle must both be nonzero; simulator: same classes.
    assert!(run.fraction(unizk_fri::KernelClass::Ntt) > 0.0);
    assert!(run.fraction(unizk_fri::KernelClass::MerkleTree) > 0.0);
    assert!(report.class(unizk_core::KernelClassTag::Ntt).cycles > 0);
    assert!(report.class(unizk_core::KernelClassTag::Hash).cycles > 0);
    assert!(report.class(unizk_core::KernelClassTag::Poly).cycles > 0);
}
