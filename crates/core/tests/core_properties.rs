//! Property-based tests for the accelerator model: compiled graphs are
//! well-formed for arbitrary instances, costs are monotone in the obvious
//! directions, and the sum-check reference satisfies its invariants for
//! arbitrary inputs.

use unizk_testkit::prop::prelude::*;
use unizk_core::compiler::{compile_plonky2, compile_starky, Plonky2Instance, StarkyInstance};
use unizk_core::sumcheck::{sumcheck_reference, total_sum};
use unizk_core::{ChipConfig, Simulator};
use unizk_field::Goldilocks;

prop! {
    #![cases(16)]

    fn plonky2_graphs_are_well_formed(log_rows in 10usize..18, width in 3usize..200) {
        let inst = Plonky2Instance::new(1 << log_rows, width);
        let graph = compile_plonky2(&inst);
        // Dependencies always reference earlier nodes (topological order).
        for (id, node) in graph.nodes().iter().enumerate() {
            for &d in &node.deps {
                prop_assert!(d < id);
            }
            prop_assert!(!node.label.is_empty());
        }
        // Every graph simulates to a positive cycle count.
        let report = Simulator::new(ChipConfig::default_chip()).run(&graph);
        prop_assert!(report.total_cycles > 0);
    }

    fn more_rows_never_get_cheaper(log_rows in 10usize..16, width in 3usize..200) {
        let chip = ChipConfig::default_chip();
        let small = Simulator::new(chip.clone())
            .run(&compile_plonky2(&Plonky2Instance::new(1 << log_rows, width)));
        let large = Simulator::new(chip)
            .run(&compile_plonky2(&Plonky2Instance::new(1 << (log_rows + 1), width)));
        prop_assert!(large.total_cycles >= small.total_cycles);
    }

    fn wider_traces_never_get_cheaper(log_rows in 10usize..14, width in 3usize..100) {
        let chip = ChipConfig::default_chip();
        let narrow = Simulator::new(chip.clone())
            .run(&compile_starky(&StarkyInstance::new(1 << log_rows, width, width)));
        let wide = Simulator::new(chip)
            .run(&compile_starky(&StarkyInstance::new(1 << log_rows, width * 2, width)));
        prop_assert!(wide.total_cycles >= narrow.total_cycles);
    }

    fn sumcheck_invariants_hold_for_random_vectors(
        log_n in 1usize..10,
        seed in any::<u64>(),
    ) {
        use unizk_testkit::rng::TestRng as StdRng;
        use unizk_field::PrimeField64;
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<Goldilocks> = (0..1 << log_n).map(|_| Goldilocks::random(&mut rng)).collect();
        let r: Vec<Goldilocks> = (0..log_n).map(|_| Goldilocks::random(&mut rng)).collect();
        let ys = sumcheck_reference(&a, &r);
        prop_assert_eq!(ys.len(), log_n);
        // Round 0 sums to the total.
        prop_assert_eq!(ys[0][0] + ys[0][1], total_sum(&a));
        // Each round's claim folds consistently into the next.
        for i in 0..log_n.saturating_sub(1) {
            let folded = ys[i][0] + r[i] * (ys[i][1] - ys[i][0]);
            prop_assert_eq!(ys[i + 1][0] + ys[i + 1][1], folded);
        }
    }

    fn chip_budget_scales_sanely(vsas in 1usize..128, mb in 1usize..64) {
        use unizk_core::chipmodel::AreaPowerBreakdown;
        let chip = ChipConfig::default_chip().with_vsas(vsas).with_scratchpad_mb(mb);
        let b = AreaPowerBreakdown::for_chip(&chip);
        prop_assert!(b.total_area_mm2() > 0.0);
        prop_assert!(b.total_power_w() > 0.0);
        // VSA area is linear in count.
        let base = AreaPowerBreakdown::for_chip(&ChipConfig::default_chip());
        let ratio = b.components[0].area_mm2 / base.components[0].area_mm2;
        prop_assert!((ratio - vsas as f64 / 32.0).abs() < 1e-9);
    }
}
