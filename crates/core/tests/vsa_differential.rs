//! Differential tests: the VSA functional models (the paper's §5 mapping
//! dataflows) must agree bit-for-bit with the golden software kernels in
//! the protocol crates, on randomized inputs across sizes.
//!
//! The in-module unit tests pin each dataflow at a few fixed seeds; this
//! suite drives the same comparisons through the property harness so every
//! run explores fresh sizes and inputs, and any divergence shrinks to a
//! minimal failing seed.

use unizk_core::vsa::{
    MdcPipeline, PartialProductArray, PoseidonDataflow, TransposeBuffer, VectorOp, VectorUnit,
};
use unizk_field::{reverse_index_bits, Field, Goldilocks, PrimeField64};
use unizk_hash::poseidon::{poseidon_permute, WIDTH};
use unizk_ntt::{coset_intt_nn, intt_nn, ntt_nr};
use unizk_testkit::prop::prelude::*;
use unizk_testkit::rng::TestRng;

fn random_vec(rng: &mut TestRng, n: usize) -> Vec<Goldilocks> {
    (0..n).map(|_| Goldilocks::random(rng)).collect()
}

prop! {
    #![cases(24)]

    fn mdc_forward_matches_ntt_nr(seed in any::<u64>(), log_n in 1usize..=9) {
        let mut rng = TestRng::seed_from_u64(seed);
        let input = random_vec(&mut rng, 1 << log_n);
        let hw = MdcPipeline::forward(log_n).process(&input);
        let mut golden = input;
        ntt_nr(&mut golden);
        prop_assert_eq!(hw, golden);
    }

    fn mdc_inverse_matches_intt_nn(seed in any::<u64>(), log_n in 1usize..=9) {
        let mut rng = TestRng::seed_from_u64(seed);
        let n = 1usize << log_n;
        let n_inv = Goldilocks::from_u64(n as u64).inverse();
        let input = random_vec(&mut rng, n);
        let pipeline = MdcPipeline::inverse(log_n).with_post_scale(vec![n_inv; n]);
        let mut hw = pipeline.process(&input);
        reverse_index_bits(&mut hw);
        let mut golden = input;
        intt_nn(&mut golden);
        prop_assert_eq!(hw, golden);
    }

    fn mdc_coset_inverse_matches_coset_intt(seed in any::<u64>(), log_n in 1usize..=8) {
        // Random nonzero coset shift, not just the standard generator.
        let mut rng = TestRng::seed_from_u64(seed);
        let mut shift = Goldilocks::random(&mut rng);
        if shift.is_zero() {
            shift = Goldilocks::MULTIPLICATIVE_GENERATOR;
        }
        let n = 1usize << log_n;
        let n_inv = Goldilocks::from_u64(n as u64).inverse();
        let shift_inv = shift.inverse();
        let factors: Vec<Goldilocks> =
            (0..n as u64).map(|i| n_inv * shift_inv.exp_u64(i)).collect();
        let input = random_vec(&mut rng, n);
        let pipeline = MdcPipeline::inverse(log_n).with_post_scale(factors);
        let mut hw = pipeline.process(&input);
        reverse_index_bits(&mut hw);
        let mut golden = input;
        coset_intt_nn(&mut golden, shift);
        prop_assert_eq!(hw, golden);
    }

    fn mdc_roundtrip_reproduces_input(seed in any::<u64>(), log_n in 1usize..=9) {
        // Forward then inverse through the hardware pipelines alone.
        let mut rng = TestRng::seed_from_u64(seed);
        let n = 1usize << log_n;
        let n_inv = Goldilocks::from_u64(n as u64).inverse();
        let input = random_vec(&mut rng, n);
        let mut freq = MdcPipeline::forward(log_n).process(&input);
        // The forward output is bit-reversed; the inverse pipeline wants
        // natural order.
        reverse_index_bits(&mut freq);
        let inverse = MdcPipeline::inverse(log_n).with_post_scale(vec![n_inv; n]);
        let mut back = inverse.process(&freq);
        reverse_index_bits(&mut back);
        prop_assert_eq!(back, input);
    }

    fn poseidon_dataflow_matches_software(seed in any::<u64>()) {
        let mut rng = TestRng::seed_from_u64(seed);
        let state: [Goldilocks; WIDTH] =
            core::array::from_fn(|_| Goldilocks::random(&mut rng));
        let hw = PoseidonDataflow::new().permute(&state);
        let mut golden = state;
        poseidon_permute(&mut golden);
        prop_assert_eq!(hw, golden);
    }

    fn partial_products_match_prefix_products(
        seed in any::<u64>(),
        chunks in 1usize..=64,
    ) {
        let mut rng = TestRng::seed_from_u64(seed);
        let array = PartialProductArray::default();
        let q = random_vec(&mut rng, chunks * array.chunk);
        let (pp, _) = array.run(&q);
        // Golden: direct prefix products over the chunk products (Eq. 2).
        let mut acc = Goldilocks::ONE;
        let golden: Vec<Goldilocks> = q
            .chunks(array.chunk)
            .map(|c| {
                acc *= c.iter().copied().product::<Goldilocks>();
                acc
            })
            .collect();
        prop_assert_eq!(pp, golden);
    }

    fn transpose_buffer_matches_direct_transpose(
        seed in any::<u64>(),
        rows in 1usize..=24,
        cols in 1usize..=24,
        b in 1usize..=8,
    ) {
        let mut rng = TestRng::seed_from_u64(seed);
        let data = random_vec(&mut rng, rows * cols);
        let (hw, _) = TransposeBuffer::new(b).stream_transpose(&data, rows, cols);
        let mut golden = vec![Goldilocks::ZERO; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                golden[c * rows + r] = data[r * cols + c];
            }
        }
        prop_assert_eq!(hw, golden);
    }

    fn vector_unit_matches_scalar_ops(seed in any::<u64>(), len in 1usize..=257) {
        let mut rng = TestRng::seed_from_u64(seed);
        let a = random_vec(&mut rng, len);
        let b = random_vec(&mut rng, len);
        let program = [
            VectorOp::Mul { a: 0, b: 1, dst: 2 },
            VectorOp::MulAdd { a: 0, b: 1, c: 2, dst: 3 },
            VectorOp::Sub { a: 3, b: 2, dst: 4 },
            VectorOp::Add { a: 4, b: 0, dst: 5 },
        ];
        let mut regs: Vec<Option<Vec<Goldilocks>>> =
            vec![Some(a.clone()), Some(b.clone())];
        VectorUnit::new(64).execute(&program, &mut regs);
        // dst5 = ((a·b + a·b) − a·b) + a = a·b + a, lane-wise.
        let golden: Vec<Goldilocks> =
            a.iter().zip(&b).map(|(&x, &y)| x * y + x).collect();
        prop_assert_eq!(regs[5].clone().expect("dst written"), golden);
    }
}
