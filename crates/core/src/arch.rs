//! Hardware configuration of the UniZK chip (paper §4 and §6).

use unizk_dram::HbmConfig;

/// The chip configuration. Defaults reproduce the paper's evaluation
/// platform: 32 VSAs of 12×12 PEs, an 8 MB double-buffered scratchpad, a
/// 16×16 transpose buffer, an on-chip twiddle factor generator, and two
/// HBM2e PHYs (~1 TB/s) at 1 GHz.
#[derive(Clone, Debug, PartialEq)]
pub struct ChipConfig {
    /// Number of vector-systolic arrays.
    pub num_vsas: usize,
    /// PE array dimension (12 — chosen to match the Poseidon state width,
    /// §5.2).
    pub vsa_dim: usize,
    /// Scratchpad capacity in bytes (double-buffered).
    pub scratchpad_bytes: usize,
    /// Transpose buffer tile dimension `b` (`b×b` elements; §5.1 uses 16).
    pub transpose_b: usize,
    /// `log2` of the fixed NTT pipeline size (§5.1: each 12-PE row is split
    /// into two 6-PE pipelines handling size-2^5 NTTs).
    pub ntt_pipeline_log2: usize,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Off-chip memory configuration.
    pub hbm: HbmConfig,
}

impl ChipConfig {
    /// The paper's default configuration (§6).
    pub fn default_chip() -> Self {
        Self {
            num_vsas: 32,
            vsa_dim: 12,
            scratchpad_bytes: 8 << 20,
            transpose_b: 16,
            ntt_pipeline_log2: 5,
            freq_ghz: 1.0,
            hbm: HbmConfig::hbm2e_two_stacks(),
        }
    }

    /// The same chip with a different number of VSAs (Fig. 10 sweep).
    pub fn with_vsas(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one VSA");
        self.num_vsas = n;
        self
    }

    /// The same chip with a different scratchpad size (Fig. 10 sweep).
    pub fn with_scratchpad_mb(mut self, mb: usize) -> Self {
        assert!(mb > 0, "need a nonzero scratchpad");
        self.scratchpad_bytes = mb << 20;
        self
    }

    /// The same chip with memory bandwidth scaled by `num/den` (Fig. 10
    /// sweep).
    pub fn with_bandwidth_scale(mut self, num: usize, den: usize) -> Self {
        self.hbm = HbmConfig::scaled_bandwidth(num, den);
        self
    }

    /// Checks the configuration for values the mapping layer and VSA
    /// models cannot handle, naming the offending axis in the error.
    ///
    /// Called by [`Simulator::new`](crate::sim::Simulator::new) and by the
    /// explore crate's sweep-point construction, so an invalid design
    /// point fails with `chip.scratchpad_bytes: must be a nonzero power of
    /// two` instead of a deep panic inside a kernel model (e.g. the vector
    /// unit's zero-lane assertion).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_vsas == 0 {
            return Err("chip.num_vsas: need at least one VSA".into());
        }
        if self.vsa_dim == 0 {
            return Err("chip.vsa_dim: need at least one PE row/vector lane".into());
        }
        if !self.scratchpad_bytes.is_power_of_two() {
            return Err(format!(
                "chip.scratchpad_bytes: must be a nonzero power of two, got {}",
                self.scratchpad_bytes
            ));
        }
        if self.ntt_pipeline_log2 == 0 || self.ntt_pipeline_log2 > 16 {
            return Err(format!(
                "chip.ntt_pipeline_log2: must be in 1..=16 (pipeline size 2..=65536), got {}",
                self.ntt_pipeline_log2
            ));
        }
        if !self.transpose_b.is_power_of_two() {
            return Err(format!(
                "chip.transpose_b: must be a nonzero power of two, got {}",
                self.transpose_b
            ));
        }
        if !(self.freq_ghz.is_finite() && self.freq_ghz > 0.0) {
            return Err(format!(
                "chip.freq_ghz: must be finite and positive, got {}",
                self.freq_ghz
            ));
        }
        self.hbm.validate()
    }

    /// PEs per VSA.
    pub fn pes_per_vsa(&self) -> usize {
        self.vsa_dim * self.vsa_dim
    }

    /// Total PE count.
    pub fn total_pes(&self) -> usize {
        self.num_vsas * self.pes_per_vsa()
    }

    /// NTT pipelines per VSA: two per PE row (§5.1).
    pub fn ntt_pipelines_per_vsa(&self) -> usize {
        2 * self.vsa_dim
    }

    /// Elements per cycle one pipeline accepts (MDC: 2/cycle).
    pub const NTT_PIPELINE_THROUGHPUT: usize = 2;

    /// Seconds per cycle.
    pub fn cycle_time_s(&self) -> f64 {
        1e-9 / self.freq_ghz
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_time_s()
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        Self::default_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ChipConfig::default_chip();
        assert_eq!(c.num_vsas, 32);
        assert_eq!(c.pes_per_vsa(), 144);
        assert_eq!(c.total_pes(), 4608);
        assert_eq!(c.scratchpad_bytes, 8 << 20);
        assert!((c.hbm.peak_gb_per_s() - 1024.0).abs() < 1.0);
    }

    #[test]
    fn sweep_builders() {
        let c = ChipConfig::default_chip()
            .with_vsas(16)
            .with_scratchpad_mb(4)
            .with_bandwidth_scale(1, 2);
        assert_eq!(c.num_vsas, 16);
        assert_eq!(c.scratchpad_bytes, 4 << 20);
        assert!((c.hbm.peak_gb_per_s() - 512.0).abs() < 1.0);
    }

    #[test]
    fn validate_accepts_defaults_and_sweep_points() {
        assert_eq!(ChipConfig::default_chip().validate(), Ok(()));
        assert_eq!(
            ChipConfig::default_chip()
                .with_vsas(64)
                .with_scratchpad_mb(1)
                .with_bandwidth_scale(1, 4)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_names_the_bad_axis() {
        let mut c = ChipConfig::default_chip();
        c.num_vsas = 0;
        assert!(c.validate().unwrap_err().contains("chip.num_vsas"));

        let mut c = ChipConfig::default_chip();
        c.vsa_dim = 0;
        assert!(c.validate().unwrap_err().contains("chip.vsa_dim"));

        let mut c = ChipConfig::default_chip();
        c.scratchpad_bytes = 3 << 20;
        assert!(c.validate().unwrap_err().contains("chip.scratchpad_bytes"));

        let mut c = ChipConfig::default_chip();
        c.ntt_pipeline_log2 = 0;
        assert!(c.validate().unwrap_err().contains("chip.ntt_pipeline_log2"));

        let mut c = ChipConfig::default_chip();
        c.transpose_b = 12;
        assert!(c.validate().unwrap_err().contains("chip.transpose_b"));

        let mut c = ChipConfig::default_chip();
        c.freq_ghz = 0.0;
        assert!(c.validate().unwrap_err().contains("chip.freq_ghz"));

        let mut c = ChipConfig::default_chip();
        c.hbm.channels = 0;
        assert!(c.validate().unwrap_err().contains("hbm.channels"));
    }

    #[test]
    fn cycle_conversion() {
        let c = ChipConfig::default_chip();
        assert!((c.cycles_to_seconds(1_000_000_000) - 1.0).abs() < 1e-12);
    }
}
