//! The static scheduler / cycle-level simulator.
//!
//! Follows the artifact's methodology: each kernel node contributes compute
//! cycles (from its mapping) and memory cycles (from the HBM model); under
//! double buffering the node costs `max(compute, memory) + fill`. The
//! transpose buffer hides layout transforms entirely (§7.1). Per-class
//! statistics reproduce the artifact's log output and Tables 3–4 /
//! Figs. 8–10.

use std::collections::HashMap;

use unizk_dram::MemoryModel;
use unizk_testkit::json::{Json, ToJson};

use crate::arch::ChipConfig;
use crate::graph::Graph;
use crate::kernels::KernelClassTag;
use crate::mapping::map_kernel;

/// Per-kernel-class accumulated statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassStats {
    /// Wall-clock cycles attributed to this class.
    pub cycles: u64,
    /// Cycles the class's VSAs were computing (`Σ compute × vsas_used`).
    pub vsa_busy_cycles: u64,
    /// Bytes moved to/from DRAM.
    pub bytes: u64,
    /// Number of kernel nodes.
    pub nodes: usize,
}

/// The simulation report — the numbers behind Tables 3–4 and Figs. 8–10.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// End-to-end cycles (the artifact's `memory_system_cycles` analogue).
    pub total_cycles: u64,
    /// Per-class breakdown.
    pub classes: HashMap<KernelClassTag, ClassStats>,
    /// Total 64-byte read requests (artifact log format).
    pub read_requests: u64,
    /// Total 64-byte write requests.
    pub write_requests: u64,
    /// Chip configuration echo: VSAs available.
    pub num_vsas: usize,
    /// Peak memory bytes/cycle for utilization math.
    pub peak_bytes_per_cycle: f64,
}

impl SimReport {
    /// Seconds at the configured clock (cycles × 1 ns at 1 GHz).
    pub fn seconds(&self, chip: &ChipConfig) -> f64 {
        chip.cycles_to_seconds(self.total_cycles)
    }

    /// Stats for one class (zero-default).
    pub fn class(&self, tag: KernelClassTag) -> ClassStats {
        self.classes.get(&tag).cloned().unwrap_or_default()
    }

    /// Memory-bandwidth utilization of a class while it runs (Table 4).
    pub fn memory_utilization(&self, tag: KernelClassTag) -> f64 {
        let c = self.class(tag);
        if c.cycles == 0 {
            return 0.0;
        }
        (c.bytes as f64 / c.cycles as f64) / self.peak_bytes_per_cycle
    }

    /// VSA (compute) utilization of a class while it runs (Table 4).
    pub fn vsa_utilization(&self, tag: KernelClassTag) -> f64 {
        let c = self.class(tag);
        if c.cycles == 0 {
            return 0.0;
        }
        c.vsa_busy_cycles as f64 / (c.cycles as f64 * self.num_vsas as f64)
    }

    /// Fraction of total cycles spent in a class (Fig. 8).
    pub fn cycle_fraction(&self, tag: KernelClassTag) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.class(tag).cycles as f64 / self.total_cycles as f64
    }

    /// Renders the report in the published artifact's log format
    /// (`total_num_write_requests`, `total_num_read_requests`,
    /// `memory_system_cycles`; see the paper's appendix §A.6).
    pub fn artifact_log(&self) -> String {
        format!(
            "total_num_write_requests: {}\ntotal_num_read_requests: {}\nmemory_system_cycles: {}\n",
            self.write_requests, self.read_requests, self.total_cycles
        )
    }
}

impl ToJson for ClassStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::from(self.cycles)),
            ("vsa_busy_cycles", Json::from(self.vsa_busy_cycles)),
            ("bytes", Json::from(self.bytes)),
            ("nodes", Json::from(self.nodes)),
        ])
    }
}

impl ToJson for SimReport {
    fn to_json(&self) -> Json {
        // HashMap iteration order is nondeterministic; emit classes in the
        // paper's fixed order so reports are byte-stable across runs.
        let classes = [
            KernelClassTag::Ntt,
            KernelClassTag::Hash,
            KernelClassTag::Poly,
            KernelClassTag::Transpose,
        ]
        .into_iter()
        .map(|tag| (tag.name(), self.class(tag).to_json()));
        Json::obj([
            ("total_cycles", Json::from(self.total_cycles)),
            ("read_requests", Json::from(self.read_requests)),
            ("write_requests", Json::from(self.write_requests)),
            ("num_vsas", Json::from(self.num_vsas)),
            ("peak_bytes_per_cycle", Json::from(self.peak_bytes_per_cycle)),
            ("classes", Json::obj(classes)),
        ])
    }
}

/// One scheduled kernel node's execution record — the "detailed schedule"
/// output of the compiler backend (paper §5.5).
#[derive(Clone, Debug)]
pub struct NodeTrace {
    /// The node's label from the computation graph.
    pub label: String,
    /// Kernel class.
    pub class: KernelClassTag,
    /// Cycle the node starts.
    pub start_cycle: u64,
    /// Cycle the node completes.
    pub end_cycle: u64,
    /// Compute cycles (VSA-busy portion).
    pub compute_cycles: u64,
    /// Memory cycles (DRAM-bound portion, overlapped with compute).
    pub memory_cycles: u64,
    /// DRAM bytes moved.
    pub bytes: u64,
    /// VSAs occupied.
    pub vsas_used: usize,
}

impl NodeTrace {
    /// Whether the node was limited by memory rather than compute.
    pub fn memory_bound(&self) -> bool {
        self.memory_cycles > self.compute_cycles
    }
}

/// The UniZK simulator.
pub struct Simulator {
    chip: ChipConfig,
    memory: MemoryModel,
}

impl Simulator {
    /// A simulator for a chip configuration.
    ///
    /// # Panics
    ///
    /// Panics with the named axis if the configuration fails
    /// [`ChipConfig::validate`] — a zero-lane or non-power-of-two design
    /// point is rejected here rather than deep inside a kernel model.
    pub fn new(chip: ChipConfig) -> Self {
        chip.validate()
            .unwrap_or_else(|e| panic!("invalid ChipConfig: {e}"));
        let memory = MemoryModel::new(chip.hbm.clone());
        Self { chip, memory }
    }

    /// The chip configuration.
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// Runs a computation graph to completion and reports statistics.
    ///
    /// Nodes execute in topological (insertion) order; UniZK's static
    /// schedule dedicates the chip to one kernel at a time, with memory
    /// overlapped by double buffering.
    pub fn run(&self, graph: &Graph) -> SimReport {
        self.run_with_trace(graph).0
    }

    /// Like [`Simulator::run`] but also returns the per-node schedule —
    /// the compiler backend's "detailed schedules" (paper §5.5).
    pub fn run_with_trace(&self, graph: &Graph) -> (SimReport, Vec<NodeTrace>) {
        // Debug builds verify every schedule before simulating it, so the
        // whole test suite exercises the static analyzer for free. Release
        // builds skip the pass; run the `lint` binary (unizk-analyze) to
        // verify explicitly.
        #[cfg(debug_assertions)]
        crate::analyze::assert_verified(graph, &self.chip);

        let _sim_span = unizk_testkit::trace::span("sim.run");
        unizk_testkit::trace::counter("sim.runs", 1);
        unizk_testkit::trace::counter("sim.nodes", graph.len() as u64);
        let mut report = SimReport {
            num_vsas: self.chip.num_vsas,
            peak_bytes_per_cycle: self.chip.hbm.peak_bytes_per_cycle(),
            ..SimReport::default()
        };
        let mut trace = Vec::with_capacity(graph.len());

        for node in graph.nodes() {
            let cost = map_kernel(&node.kernel, &self.chip);
            let mem_cycles = self
                .memory
                .stream_cycles(cost.total_bytes(), cost.pattern);
            let node_cycles = cost.compute_cycles.max(mem_cycles) + cost.fill_cycles;

            let class = node.kernel.class();
            let entry = report.classes.entry(class).or_default();
            entry.cycles += node_cycles;
            entry.vsa_busy_cycles += cost.compute_cycles * cost.vsas_used as u64;
            entry.bytes += cost.total_bytes();
            entry.nodes += 1;

            trace.push(NodeTrace {
                label: node.label.clone(),
                class,
                start_cycle: report.total_cycles,
                end_cycle: report.total_cycles + node_cycles,
                compute_cycles: cost.compute_cycles,
                memory_cycles: mem_cycles,
                bytes: cost.total_bytes(),
                vsas_used: cost.vsas_used,
            });

            report.total_cycles += node_cycles;
            report.read_requests += cost.read_bytes.div_ceil(64);
            report.write_requests += cost.write_bytes.div_ceil(64);
        }

        // Publish the run's headline stats to the trace layer so bench
        // artifacts capture simulator activity alongside prover timing.
        unizk_testkit::trace::counter("sim.cycles", report.total_cycles);
        for tag in [
            KernelClassTag::Ntt,
            KernelClassTag::Hash,
            KernelClassTag::Poly,
            KernelClassTag::Transpose,
        ] {
            let class = report.class(tag);
            if class.nodes > 0 {
                unizk_testkit::trace::counter_string(
                    format!("sim.class.{}.cycles", tag.name()),
                    class.cycles,
                );
                unizk_testkit::trace::counter_string(
                    format!("sim.class.{}.vsa_busy_cycles", tag.name()),
                    class.vsa_busy_cycles,
                );
                unizk_testkit::trace::counter_string(
                    format!("sim.class.{}.bytes", tag.name()),
                    class.bytes,
                );
            }
        }

        // Debug builds bracket every run against the static cost envelope:
        // per class and in total, `lower ≤ simulated ≤ upper`, and the
        // static traffic count is exact. Release CI covers the same
        // invariant through `lint --check-bounds`.
        #[cfg(debug_assertions)]
        {
            let env = crate::analyze::cost_envelope_with(graph, &self.chip, &self.memory);
            for tag in crate::analyze::CLASS_ORDER {
                let class = report.class(tag);
                let bounds = env.class(tag);
                assert!(
                    bounds.cycles_lower <= class.cycles && class.cycles <= bounds.cycles_upper,
                    "class {} simulated {} cycles outside its static envelope [{}, {}]",
                    tag.name(),
                    class.cycles,
                    bounds.cycles_lower,
                    bounds.cycles_upper
                );
                assert_eq!(
                    bounds.traffic_bytes,
                    class.bytes,
                    "class {} static traffic diverges from simulated traffic",
                    tag.name()
                );
            }
            assert!(
                env.total_lower() <= report.total_cycles
                    && report.total_cycles <= env.total_upper(),
                "simulated {} cycles outside the static envelope [{}, {}]",
                report.total_cycles,
                env.total_lower(),
                env.total_upper()
            );
        }

        (report, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile_plonky2, compile_starky, Plonky2Instance, StarkyInstance};

    fn run_plonky2(rows: usize, chip: ChipConfig) -> SimReport {
        let inst = Plonky2Instance::new(rows, 135);
        Simulator::new(chip).run(&compile_plonky2(&inst))
    }

    #[test]
    fn report_is_populated() {
        let r = run_plonky2(1 << 12, ChipConfig::default_chip());
        assert!(r.total_cycles > 0);
        assert!(r.read_requests > 0);
        assert!(r.write_requests > 0);
        assert!(r.class(KernelClassTag::Hash).cycles > 0);
        assert!(r.class(KernelClassTag::Ntt).cycles > 0);
        assert!(r.class(KernelClassTag::Poly).cycles > 0);
    }

    #[test]
    fn transposes_cost_nothing() {
        let r = run_plonky2(1 << 12, ChipConfig::default_chip());
        assert_eq!(r.class(KernelClassTag::Transpose).cycles, 0);
    }

    #[test]
    fn cycles_scale_superlinearly_with_rows() {
        let small = run_plonky2(1 << 11, ChipConfig::default_chip());
        let large = run_plonky2(1 << 14, ChipConfig::default_chip());
        assert!(large.total_cycles > 6 * small.total_cycles);
    }

    #[test]
    fn hash_is_compute_bound_ntt_is_memory_bound() {
        // Reproduces Table 4's qualitative pattern at simulation scale.
        let r = run_plonky2(1 << 14, ChipConfig::default_chip());
        let hash_vsa = r.vsa_utilization(KernelClassTag::Hash);
        let hash_mem = r.memory_utilization(KernelClassTag::Hash);
        let ntt_vsa = r.vsa_utilization(KernelClassTag::Ntt);
        let ntt_mem = r.memory_utilization(KernelClassTag::Ntt);
        assert!(hash_vsa > 0.5, "hash VSA util {hash_vsa}");
        assert!(ntt_mem > ntt_vsa, "ntt mem {ntt_mem} vs vsa {ntt_vsa}");
        assert!(hash_vsa > hash_mem, "hash vsa {hash_vsa} vs mem {hash_mem}");
    }

    #[test]
    fn fewer_vsas_slow_down_hash() {
        let full = run_plonky2(1 << 13, ChipConfig::default_chip());
        let few = run_plonky2(1 << 13, ChipConfig::default_chip().with_vsas(4));
        assert!(
            few.class(KernelClassTag::Hash).cycles > 4 * full.class(KernelClassTag::Hash).cycles
        );
    }

    #[test]
    fn less_bandwidth_slows_down_ntt() {
        let full = run_plonky2(1 << 13, ChipConfig::default_chip());
        let half = run_plonky2(
            1 << 13,
            ChipConfig::default_chip().with_bandwidth_scale(1, 4),
        );
        assert!(half.class(KernelClassTag::Ntt).cycles > 2 * full.class(KernelClassTag::Ntt).cycles);
    }

    #[test]
    fn smaller_scratchpad_increases_traffic() {
        let full = run_plonky2(1 << 14, ChipConfig::default_chip());
        let tiny = run_plonky2(1 << 14, ChipConfig::default_chip().with_scratchpad_mb(1));
        assert!(tiny.class(KernelClassTag::Poly).bytes >= full.class(KernelClassTag::Poly).bytes);
        assert!(tiny.total_cycles >= full.total_cycles);
    }

    #[test]
    fn starky_is_cheaper_than_plonky2_at_same_rows() {
        let chip = ChipConfig::default_chip();
        let p = run_plonky2(1 << 13, chip.clone());
        let s = Simulator::new(chip).run(&compile_starky(&StarkyInstance::new(1 << 13, 16, 8)));
        assert!(
            s.total_cycles < p.total_cycles / 4,
            "starky {} vs plonky2 {}",
            s.total_cycles,
            p.total_cycles
        );
    }

    #[test]
    fn trace_covers_the_whole_run() {
        let inst = Plonky2Instance::new(1 << 12, 135);
        let graph = compile_plonky2(&inst);
        let (report, trace) = Simulator::new(ChipConfig::default_chip()).run_with_trace(&graph);
        assert_eq!(trace.len(), graph.len());
        // Contiguous, ordered, and summing to the total.
        let mut cursor = 0;
        for t in &trace {
            assert_eq!(t.start_cycle, cursor);
            assert!(t.end_cycle >= t.start_cycle);
            cursor = t.end_cycle;
        }
        assert_eq!(cursor, report.total_cycles);
        // NTT nodes should be memory-bound, Merkle nodes compute-bound.
        let ntt = trace.iter().find(|t| t.label.contains("LDE NTT")).expect("ntt node");
        assert!(ntt.memory_bound(), "{ntt:?}");
        let merkle = trace
            .iter()
            .find(|t| t.label.contains("Wires commitment: Merkle"))
            .expect("merkle node");
        assert!(!merkle.memory_bound(), "{merkle:?}");
    }

    #[test]
    #[should_panic(expected = "chip.scratchpad_bytes")]
    fn invalid_config_fails_at_construction_with_named_axis() {
        let mut chip = ChipConfig::default_chip();
        chip.scratchpad_bytes = 3 << 20;
        let _ = Simulator::new(chip);
    }

    #[test]
    fn fractions_sum_to_one() {
        let r = run_plonky2(1 << 12, ChipConfig::default_chip());
        let sum: f64 = [
            KernelClassTag::Ntt,
            KernelClassTag::Hash,
            KernelClassTag::Poly,
            KernelClassTag::Transpose,
        ]
        .iter()
        .map(|&t| r.cycle_fraction(t))
        .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
