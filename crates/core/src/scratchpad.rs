//! Scratchpad reuse analysis — the compiler's tiling and replacement
//! policies for element-wise kernels (paper §5.4).
//!
//! The paper applies three techniques to the memory-bound element-wise
//! kernels: (1) LRU replacement as the baseline, (2) aggressive vector
//! tiling, and (3) *hand-crafted replacement policies* for critical code
//! regions — e.g. during gate-constraint evaluation, the wire data is
//! reused by every gate polynomial, so the compiler pins it on chip and
//! evicts other data first.
//!
//! This module reproduces that analysis: a vector-granularity cache model
//! of the scratchpad with pluggable replacement policies, and a small IR
//! for element-wise programs, so the traffic advantage of pinning can be
//! measured (see the tests and the `ablation` harness).

use std::collections::{HashMap, HashSet, VecDeque};


/// A vector operand identifier.
pub type VecId = usize;

/// One element-wise operation: reads some vectors, writes others.
#[derive(Clone, Debug)]
pub struct PolyStep {
    /// Vectors read.
    pub reads: Vec<VecId>,
    /// Vectors written (allocated on chip, dirty until evicted).
    pub writes: Vec<VecId>,
}

/// An element-wise program over named vectors with byte sizes.
#[derive(Clone, Debug, Default)]
pub struct PolyProgram {
    /// Size in bytes of each vector (indexed by [`VecId`]).
    pub sizes: Vec<u64>,
    /// The operations, in order.
    pub steps: Vec<PolyStep>,
}

impl PolyProgram {
    /// Registers a vector of `bytes` bytes, returning its id.
    pub fn vector(&mut self, bytes: u64) -> VecId {
        self.sizes.push(bytes);
        self.sizes.len() - 1
    }

    /// Appends a step.
    pub fn step(&mut self, reads: Vec<VecId>, writes: Vec<VecId>) {
        self.steps.push(PolyStep { reads, writes });
    }

    /// Builds the §5.4 gate-evaluation workload: `num_gates` gate
    /// polynomials each combining the same `wire` vectors with
    /// `consts_per_gate` gate-specific selector/constant vectors.
    pub fn gate_evaluation(
        num_wires: usize,
        num_gates: usize,
        consts_per_gate: usize,
        vec_bytes: u64,
    ) -> Self {
        let mut p = Self::default();
        let wires: Vec<VecId> = (0..num_wires).map(|_| p.vector(vec_bytes)).collect();
        for _ in 0..num_gates {
            let mut reads = wires.clone();
            for _ in 0..consts_per_gate {
                reads.push(p.vector(vec_bytes));
            }
            let out = p.vector(vec_bytes);
            p.step(reads, vec![out]);
        }
        p
    }
}

/// Replacement policy of the scratchpad cache model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Standard least-recently-used eviction (the paper's baseline).
    Lru,
    /// LRU with a pinned set that is never evicted while anything else is
    /// resident — the paper's hand-crafted policy ("we prioritize [the
    /// wire data] on-chip and try to replace other data").
    PinnedLru {
        /// Vectors to keep resident.
        pinned: HashSet<VecId>,
    },
}

/// Result of simulating a program against the scratchpad.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Bytes fetched from DRAM (read misses).
    pub read_bytes: u64,
    /// Bytes written back to DRAM (dirty evictions + final flush).
    pub write_bytes: u64,
    /// Read accesses served on chip.
    pub hits: u64,
    /// Read accesses that went to DRAM.
    pub misses: u64,
}

impl TrafficReport {
    /// Total DRAM traffic.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// A vector-granularity scratchpad cache model.
pub struct ScratchpadModel {
    capacity: u64,
}

impl ScratchpadModel {
    /// A scratchpad of `capacity` bytes (the usable half of a
    /// double-buffered pad).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self { capacity }
    }

    /// Simulates the program under a policy, returning the DRAM traffic.
    ///
    /// Vectors larger than the capacity stream (full cost, never
    /// resident). Written vectors are dirty and cost a write-back on
    /// eviction and at the end.
    pub fn simulate(&self, program: &PolyProgram, policy: &Policy) -> TrafficReport {
        let mut report = TrafficReport::default();
        // Resident set with LRU order (front = oldest).
        let mut lru: VecDeque<VecId> = VecDeque::new();
        let mut resident: HashMap<VecId, bool> = HashMap::new(); // id -> dirty
        let mut used: u64 = 0;

        let pinned_set: HashSet<VecId> = match policy {
            Policy::Lru => HashSet::new(),
            Policy::PinnedLru { pinned } => pinned.clone(),
        };

        let touch = |lru: &mut VecDeque<VecId>, id: VecId| {
            if let Some(pos) = lru.iter().position(|&x| x == id) {
                lru.remove(pos);
            }
            lru.push_back(id);
        };

        for step in &program.steps {
            for (ids, is_write) in [(&step.reads, false), (&step.writes, true)] {
                for &id in ids.iter() {
                    let size = program.sizes[id];
                    if size > self.capacity {
                        // Streams; never resident.
                        if is_write {
                            report.write_bytes += size;
                        } else {
                            report.read_bytes += size;
                            report.misses += 1;
                        }
                        continue;
                    }
                    if let Some(dirty) = resident.get_mut(&id) {
                        if is_write {
                            *dirty = true;
                        } else {
                            report.hits += 1;
                        }
                        touch(&mut lru, id);
                        continue;
                    }
                    // Miss: fetch (reads only — writes allocate without a
                    // fetch) and make room.
                    if !is_write {
                        report.read_bytes += size;
                        report.misses += 1;
                    }
                    while used + size > self.capacity {
                        // Evict the oldest unpinned vector.
                        let victim = lru
                            .iter()
                            .copied()
                            .find(|v| !pinned_set.contains(v))
                            .or_else(|| lru.front().copied());
                        let Some(victim) = victim else { break };
                        let pos = lru.iter().position(|&x| x == victim).expect("in lru");
                        lru.remove(pos);
                        let dirty = resident.remove(&victim).unwrap_or(false);
                        used -= program.sizes[victim];
                        if dirty {
                            report.write_bytes += program.sizes[victim];
                        }
                    }
                    resident.insert(id, is_write);
                    used += size;
                    lru.push_back(id);
                }
            }
        }

        // Final flush of dirty residents.
        for (&id, &dirty) in &resident {
            if dirty {
                report.write_bytes += program.sizes[id];
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;

    #[test]
    fn everything_fits_reads_once() {
        let program = PolyProgram::gate_evaluation(4, 10, 1, 10 * KB);
        // 4 wires + 10 selectors + 10 outputs = 24 vectors × 10 KB.
        let model = ScratchpadModel::new(1024 * KB);
        let report = model.simulate(&program, &Policy::Lru);
        // Wires + selectors read exactly once.
        assert_eq!(report.read_bytes, (4 + 10) * 10 * KB);
        // Outputs flushed once.
        assert_eq!(report.write_bytes, 10 * 10 * KB);
    }

    #[test]
    fn pinning_wires_beats_plain_lru_when_tight() {
        // The §5.4 claim: with the scratchpad too small for everything,
        // pinning the wire data (reused by every gate) reduces traffic.
        let num_wires = 8;
        let num_gates = 40;
        let consts = 4;
        let vec_bytes = 10 * KB;
        let program = PolyProgram::gate_evaluation(num_wires, num_gates, consts, vec_bytes);
        // Room for the wires plus only a couple of scratch vectors: each
        // gate's constants force evictions mid-step, and plain LRU's
        // victims are the wires.
        let model = ScratchpadModel::new((num_wires as u64 + 2) * vec_bytes);

        let lru = model.simulate(&program, &Policy::Lru);
        let pinned: HashSet<VecId> = (0..num_wires).collect();
        let crafted = model.simulate(&program, &Policy::PinnedLru { pinned });

        assert!(
            crafted.total_bytes() < lru.total_bytes(),
            "pinned {} vs lru {}",
            crafted.total_bytes(),
            lru.total_bytes()
        );
        // With pinning, the wires are fetched exactly once.
        assert_eq!(
            crafted.read_bytes,
            (num_wires as u64 + (num_gates * consts) as u64) * vec_bytes
        );
    }

    #[test]
    fn oversized_vectors_stream() {
        let mut program = PolyProgram::default();
        let big = program.vector(100 * KB);
        let out = program.vector(100 * KB);
        program.step(vec![big], vec![out]);
        program.step(vec![big], vec![out]);
        let model = ScratchpadModel::new(10 * KB);
        let report = model.simulate(&program, &Policy::Lru);
        // Read twice, written twice: no residency possible.
        assert_eq!(report.read_bytes, 200 * KB);
        assert_eq!(report.write_bytes, 200 * KB);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut program = PolyProgram::default();
        let a = program.vector(6 * KB);
        let b = program.vector(6 * KB);
        program.step(vec![], vec![a]); // write a (dirty)
        program.step(vec![], vec![b]); // evicts a -> write-back
        let model = ScratchpadModel::new(8 * KB);
        let report = model.simulate(&program, &Policy::Lru);
        // a written back on eviction, b on final flush.
        assert_eq!(report.write_bytes, 12 * KB);
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut program = PolyProgram::default();
        let a = program.vector(KB);
        program.step(vec![a], vec![]);
        program.step(vec![a], vec![]);
        program.step(vec![a], vec![]);
        let model = ScratchpadModel::new(4 * KB);
        let report = model.simulate(&program, &Policy::Lru);
        assert_eq!(report.misses, 1);
        assert_eq!(report.hits, 2);
    }

    #[test]
    fn policies_agree_when_capacity_is_ample() {
        let program = PolyProgram::gate_evaluation(6, 20, 1, KB);
        let model = ScratchpadModel::new(1024 * KB);
        let lru = model.simulate(&program, &Policy::Lru);
        let crafted = model.simulate(
            &program,
            &Policy::PinnedLru { pinned: (0..6).collect() },
        );
        assert_eq!(lru, crafted);
    }
}
