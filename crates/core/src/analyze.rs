//! Static verification of compiled kernel graphs.
//!
//! UniZK's core artifact is a *static* scheduler (paper §5, Fig. 7): the
//! compiler expands a protocol instance into a kernel DAG that the
//! simulator executes with double-buffered compute/memory overlap. Nothing
//! about that execution re-checks the schedule — a malformed mapping (a
//! dangling dependency, an element-order mismatch between producer and
//! consumer, a scratchpad overcommit) would still produce plausible-looking
//! cycle counts. This module is the lint pass that runs *before*
//! simulation and rejects ill-formed schedules with named, machine-readable
//! diagnostics.
//!
//! The rule catalog (stable ids, used by the mutation tests and the `lint`
//! binary of `unizk-analyze`):
//!
//! | id  | rule | severity | paper invariant |
//! |-----|------|----------|-----------------|
//! | S01 | `dep-out-of-range` | error | every dependency names a compiled node |
//! | S02 | `dep-not-topological` | error | insertion order is the topological (static) schedule — a forward/self edge is a cycle |
//! | S03 | `dep-duplicate` | error | dependency lists are sets |
//! | S04 | `orphan-node` | error | every kernel's output is consumed (single-sink proof pipelines, Fig. 7) |
//! | D01 | `ntt-order-mismatch` | error | §5.1 data layouts: an `NR` NTT emits bit-reversed order, which no NTT variant accepts as input |
//! | D02 | `lde-shrinks` | error | §5.1/§5.5: an NTT→NTT edge only ever *expands* data (LDE blowup), never discards it |
//! | D03 | `merkle-shape` | error | §5.3: Merkle construction assumes a full binary tree (power-of-two leaves, nonempty leaves) |
//! | D04 | `leaf-gather-mismatch` | error | §5.3: the leaf-gather transpose's matrix must match the Merkle node's (leaves × leaf length) |
//! | D05 | `reuse-inconsistent` | error | §5.4 tiling analysis: ideal traffic and working set never exceed streaming traffic |
//! | D06 | `bytes-conservation` | error | a transpose moves exactly the bytes its NTT producer made |
//! | D07 | `empty-kernel` | warning | zero-work nodes are schedule noise |
//! | R01 | `scratchpad-overcommit` | warning | §5.4: a reuse-claiming working set larger than the half-pad degrades to streaming |
//! | R02 | `infeasible-staging` | error | §5.1: the decomposed-NTT stage buffers must fit the scratchpad under double buffering |
//! | R03 | `transpose-not-hidden` | warning | §7.1: the zero-cost transpose assumption needs a neighbouring kernel at least as long |
//! | R04 | `ntt-exceeds-two-adicity` | error | §5.1: the twiddle generator cannot synthesize ω for `2^log_n` beyond the Goldilocks two-adicity (32) |
//! | L01 | `buffer-held-past-last-read` | warning | a value read ≫ later than it is produced parks an HBM-resident vector across many phases |
//! | M01 | `shard-schedule-divergent` | error | sharded proving splits one trace into identical sub-problems; shard schedules must be structurally identical |
//! | M02 | `aggregation-arity-mismatch` | error | the aggregation schedule must absorb exactly one payload per shard (and exist iff there is more than one shard) |
//! | M03 | `interconnect-payload-missing` | warning | multi-shard plans that declare zero inter-chip payload bytes leave the interconnect unmodeled |
//! | C01 | `cost-model-overflow` | error | a node's modeled cycles or traffic exceed 2^53, past which the model's f64 bandwidth arithmetic loses integer exactness |
//! | C02 | `zero-cost-schedule` | warning | a nonempty schedule whose static cycle upper bound is zero simulates as free |
//! | C03 | `bandwidth-starved-schedule` | warning | §7.1: nearly every costed kernel is memory-bound even at *peak* bandwidth — the mapping cannot feed the VSAs |
//! | C04 | `liveness-exceeds-scratchpad` | warning | §5.4: peak live bytes far beyond the scratchpad pin every inter-kernel value to HBM |
//! | P01 | `insufficient-security-bits` | error | conjectured security `min(queries·rate_bits + pow_bits, field_bits·extension_degree, field_bits·num_challenges)` must reach the target, over nonzero challenge rounds |
//! | P02 | `lde-exceeds-two-adicity` | error | `log_rows + rate_bits` must fit the base field's two-adicity (32 for Goldilocks, 24 for KoalaBear): the LDE domain needs a root of unity |
//! | P03 | `final-poly-inconsistent` | error | FRI folding must terminate on a nonempty power-of-two final polynomial smaller than the trace |
//! | P04 | `excessive-grind` | error | a `field_bits`-bit grinding challenge cannot show ≥ `field_bits` leading zero bits |
//! | P05 | `shard-aggregation-incompatible` | error | shard count (a power of two) and aggregation arity must describe the same plan |
//!
//! Entry point: [`check`] for a single chip's graph; [`check_multi`] adds
//! the M-rules over a [`MultiChipSchedule`] (every member graph still goes
//! through [`check`] individually); [`check_params`] runs the P-rules over
//! a protocol's [`ProtocolParams`]. The simulator calls [`check`] under
//! `debug_assertions`, so every test run verifies every graph it executes
//! for free; the `unizk-analyze` crate wraps it in a `lint` CLI that gates
//! CI and bench artifacts, and the fleet simulator asserts
//! [`assert_multi_verified`] on every plan it runs in debug builds.
//!
//! # Cost envelope (C-rules)
//!
//! [`cost_envelope`] derives a static roofline over the mapping (paper §5):
//! for every node the simulator will charge
//! `max(compute_cycles, stream_cycles(bytes)) + fill_cycles`, where
//! `stream_cycles = ceil(bytes / (peak · efficiency))` and the measured
//! efficiency is clamped to `[0, 1]`. Two bounds follow without running the
//! channel model:
//!
//! * **lower** — `max(compute_cycles, ceil(bytes / peak)) + fill_cycles`:
//!   memory can never beat peak bandwidth, so this floor is sound;
//! * **upper** — `compute_cycles + stream_cycles(bytes) + fill_cycles`:
//!   `max(a, b) ≤ a + b`, so dropping the compute/memory overlap is a
//!   sound ceiling.
//!
//! HBM traffic is exact (the byte counts are static), and peak scratchpad
//! liveness is the maximum over schedule positions of the bytes written by
//! producers still awaiting their last consumer. The simulator
//! debug-asserts `lower ≤ simulated ≤ upper` per kernel class on every run,
//! and `crates/explore` uses the envelope to prune Pareto-dominated sweep
//! points before simulating them.

use unizk_dram::MemoryModel;

use crate::arch::ChipConfig;
use crate::graph::{Graph, NodeId};
use crate::kernels::{Kernel, KernelClassTag, NttVariant};
use crate::mapping::map_kernel;

/// Goldilocks two-adicity: the largest `log_n` for which a primitive
/// `2^log_n`-th root of unity — and therefore an NTT — exists. Mirrors
/// `unizk_field::PrimeField64::TWO_ADICITY` for Goldilocks; the analyzer
/// keeps its own copy so linting a graph does not pull in field
/// arithmetic.
pub const MAX_NTT_LOG2: usize = 32;

/// Live-range length (in schedule positions) beyond which rule L01 flags a
/// producer: its output must stay resident across that many intervening
/// kernel phases before its final read.
pub const LIVENESS_WINDOW: usize = 16;

/// Largest magnitude (`2^53`) a node's modeled cycles or traffic may reach
/// before rule C01 fires: past this, `f64` bandwidth arithmetic (the memory
/// model divides byte counts by bytes/cycle) no longer represents every
/// integer exactly, so neither simulated results nor the static envelope
/// can be trusted.
pub const MAX_EXACT_COST: u64 = 1 << 53;

/// Minimum costed-node count before rule C03 considers a schedule; tiny
/// graphs (a lone absorb, a unit test fixture) are all noise.
pub const BANDWIDTH_STARVED_MIN_NODES: usize = 4;

/// Percentage of costed nodes that must be memory-bound *at peak
/// bandwidth* for rule C03 to fire. Real proof schedules are dominated by
/// compute-bound hash kernels; only a pathological mapping starves.
pub const BANDWIDTH_STARVED_PERCENT: usize = 95;

/// Multiple of the scratchpad that peak live bytes may reach before rule
/// C04 fires. Proof schedules stream far more than one pad (that is the
/// design: HBM holds the vectors — full-scale workloads peak around
/// 3500x), so the warning triggers only when the resident set would
/// overflow even HBM: 4096 x the default 8 MiB pad is 32 GiB, about the
/// capacity of the paper's two HBM2e stacks.
pub const LIVENESS_SCRATCHPAD_FACTOR: u64 = 4096;

/// How serious a diagnostic is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The schedule is degraded or suspicious but executable.
    Warning,
    /// The schedule is ill-formed; simulated numbers would be meaningless.
    Error,
}

/// The verification rules, with stable machine-readable identifiers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// S01: a dependency names a node the graph does not contain.
    DepOutOfRange,
    /// S02: a dependency points forward (or at the node itself) — a cycle
    /// under the static insertion-order schedule.
    DepNotTopological,
    /// S03: the same dependency is listed more than once.
    DepDuplicate,
    /// S04: a non-final node's output is never consumed.
    OrphanNode,
    /// D01: an NTT consumes another NTT's bit-reversed output, but every
    /// NTT variant expects natural input order.
    NttOrderMismatch,
    /// D02: an NTT→NTT edge shrinks the data (consumer elements fewer than
    /// producer elements) — an LDE only ever expands.
    LdeShrinks,
    /// D03: a Merkle node's shape breaks the full-binary-tree mapping.
    MerkleShape,
    /// D04: a Merkle node disagrees with its leaf-gather transpose about
    /// the committed matrix shape.
    LeafGatherMismatch,
    /// D05: a `Reuse` declaration is internally inconsistent.
    ReuseInconsistent,
    /// D06: a transpose does not move exactly what its NTT producer made.
    BytesConservation,
    /// D07: a node performs no work.
    EmptyKernel,
    /// R01: a reuse-claiming working set exceeds the double-buffered
    /// half-scratchpad, so the claimed ideal traffic degrades.
    ScratchpadOvercommit,
    /// R02: the decomposed-NTT stage buffers do not fit the scratchpad.
    InfeasibleStaging,
    /// R03: a transpose is too large to hide behind its neighbours.
    TransposeNotHidden,
    /// R04: an NTT size exceeds the field's two-adicity.
    NttExceedsTwoAdicity,
    /// L01: a producer's output is held far past the rest of its uses.
    BufferHeldPastLastRead,
    /// M01: a shard's schedule diverges structurally from shard 0's —
    /// sharded proving splits one trace into identical sub-problems.
    ShardScheduleDivergent,
    /// M02: the aggregation schedule's absorb arity disagrees with the
    /// shard count (or the stage is present/absent when it must not be).
    AggregationArityMismatch,
    /// M03: a multi-shard plan declares zero inter-chip payload bytes, so
    /// the interconnect model charges nothing for aggregation traffic.
    InterconnectPayloadMissing,
    /// C01: a node's modeled cycles or traffic exceed [`MAX_EXACT_COST`],
    /// past which the model's `f64` arithmetic loses integer exactness.
    CostModelOverflow,
    /// C02: a nonempty schedule's static cycle upper bound is zero.
    ZeroCostSchedule,
    /// C03: nearly every costed kernel is memory-bound even at peak
    /// bandwidth — the mapping cannot feed the VSAs.
    BandwidthStarvedSchedule,
    /// C04: peak scratchpad liveness exceeds the pad by
    /// [`LIVENESS_SCRATCHPAD_FACTOR`], pinning inter-kernel values to HBM.
    LivenessExceedsScratchpad,
    /// P01: conjectured security bits fall short of the target (or there
    /// are zero constraint-combination challenge rounds).
    InsufficientSecurityBits,
    /// P02: the LDE domain `2^(log_rows + rate_bits)` has no root of unity
    /// within the Goldilocks two-adicity.
    LdeExceedsTwoAdicity,
    /// P03: the FRI final polynomial is empty, not a power of two, or at
    /// least as large as the trace itself.
    FinalPolyInconsistent,
    /// P04: the proof-of-work grind demands ≥ 64 leading zero bits of a
    /// 64-bit challenge.
    ExcessiveGrind,
    /// P05: shard count and aggregation arity describe different plans.
    ShardAggregationIncompatible,
}

impl Rule {
    /// Every rule, in catalog (and diagnostic-emission) order.
    pub const ALL: [Rule; 28] = [
        Rule::DepOutOfRange,
        Rule::DepNotTopological,
        Rule::DepDuplicate,
        Rule::OrphanNode,
        Rule::NttOrderMismatch,
        Rule::LdeShrinks,
        Rule::MerkleShape,
        Rule::LeafGatherMismatch,
        Rule::ReuseInconsistent,
        Rule::BytesConservation,
        Rule::EmptyKernel,
        Rule::ScratchpadOvercommit,
        Rule::InfeasibleStaging,
        Rule::TransposeNotHidden,
        Rule::NttExceedsTwoAdicity,
        Rule::BufferHeldPastLastRead,
        Rule::ShardScheduleDivergent,
        Rule::AggregationArityMismatch,
        Rule::InterconnectPayloadMissing,
        Rule::CostModelOverflow,
        Rule::ZeroCostSchedule,
        Rule::BandwidthStarvedSchedule,
        Rule::LivenessExceedsScratchpad,
        Rule::InsufficientSecurityBits,
        Rule::LdeExceedsTwoAdicity,
        Rule::FinalPolyInconsistent,
        Rule::ExcessiveGrind,
        Rule::ShardAggregationIncompatible,
    ];

    /// Stable short identifier (`S01`, `D03`, …).
    pub fn id(&self) -> &'static str {
        match self {
            Rule::DepOutOfRange => "S01",
            Rule::DepNotTopological => "S02",
            Rule::DepDuplicate => "S03",
            Rule::OrphanNode => "S04",
            Rule::NttOrderMismatch => "D01",
            Rule::LdeShrinks => "D02",
            Rule::MerkleShape => "D03",
            Rule::LeafGatherMismatch => "D04",
            Rule::ReuseInconsistent => "D05",
            Rule::BytesConservation => "D06",
            Rule::EmptyKernel => "D07",
            Rule::ScratchpadOvercommit => "R01",
            Rule::InfeasibleStaging => "R02",
            Rule::TransposeNotHidden => "R03",
            Rule::NttExceedsTwoAdicity => "R04",
            Rule::BufferHeldPastLastRead => "L01",
            Rule::ShardScheduleDivergent => "M01",
            Rule::AggregationArityMismatch => "M02",
            Rule::InterconnectPayloadMissing => "M03",
            Rule::CostModelOverflow => "C01",
            Rule::ZeroCostSchedule => "C02",
            Rule::BandwidthStarvedSchedule => "C03",
            Rule::LivenessExceedsScratchpad => "C04",
            Rule::InsufficientSecurityBits => "P01",
            Rule::LdeExceedsTwoAdicity => "P02",
            Rule::FinalPolyInconsistent => "P03",
            Rule::ExcessiveGrind => "P04",
            Rule::ShardAggregationIncompatible => "P05",
        }
    }

    /// Kebab-case rule name.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::DepOutOfRange => "dep-out-of-range",
            Rule::DepNotTopological => "dep-not-topological",
            Rule::DepDuplicate => "dep-duplicate",
            Rule::OrphanNode => "orphan-node",
            Rule::NttOrderMismatch => "ntt-order-mismatch",
            Rule::LdeShrinks => "lde-shrinks",
            Rule::MerkleShape => "merkle-shape",
            Rule::LeafGatherMismatch => "leaf-gather-mismatch",
            Rule::ReuseInconsistent => "reuse-inconsistent",
            Rule::BytesConservation => "bytes-conservation",
            Rule::EmptyKernel => "empty-kernel",
            Rule::ScratchpadOvercommit => "scratchpad-overcommit",
            Rule::InfeasibleStaging => "infeasible-staging",
            Rule::TransposeNotHidden => "transpose-not-hidden",
            Rule::NttExceedsTwoAdicity => "ntt-exceeds-two-adicity",
            Rule::BufferHeldPastLastRead => "buffer-held-past-last-read",
            Rule::ShardScheduleDivergent => "shard-schedule-divergent",
            Rule::AggregationArityMismatch => "aggregation-arity-mismatch",
            Rule::InterconnectPayloadMissing => "interconnect-payload-missing",
            Rule::CostModelOverflow => "cost-model-overflow",
            Rule::ZeroCostSchedule => "zero-cost-schedule",
            Rule::BandwidthStarvedSchedule => "bandwidth-starved-schedule",
            Rule::LivenessExceedsScratchpad => "liveness-exceeds-scratchpad",
            Rule::InsufficientSecurityBits => "insufficient-security-bits",
            Rule::LdeExceedsTwoAdicity => "lde-exceeds-two-adicity",
            Rule::FinalPolyInconsistent => "final-poly-inconsistent",
            Rule::ExcessiveGrind => "excessive-grind",
            Rule::ShardAggregationIncompatible => "shard-aggregation-incompatible",
        }
    }

    /// The severity this rule reports at.
    pub fn severity(&self) -> Severity {
        match self {
            Rule::EmptyKernel
            | Rule::ScratchpadOvercommit
            | Rule::TransposeNotHidden
            | Rule::BufferHeldPastLastRead
            | Rule::InterconnectPayloadMissing
            | Rule::ZeroCostSchedule
            | Rule::BandwidthStarvedSchedule
            | Rule::LivenessExceedsScratchpad => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line description of the invariant the rule encodes.
    pub fn description(&self) -> &'static str {
        match self {
            Rule::DepOutOfRange => "every dependency must name a node present in the graph",
            Rule::DepNotTopological => {
                "insertion order is the static schedule; forward/self deps are cycles"
            }
            Rule::DepDuplicate => "a node's dependency list must be a set",
            Rule::OrphanNode => "every non-final node's output must be consumed",
            Rule::NttOrderMismatch => {
                "NTT variants consume natural order; NR producers emit bit-reversed order"
            }
            Rule::LdeShrinks => "an NTT feeding an NTT only expands data (LDE blowup)",
            Rule::MerkleShape => "Merkle trees need a power-of-two leaf count and nonempty leaves",
            Rule::LeafGatherMismatch => {
                "a Merkle node must agree with its leaf-gather transpose on the matrix shape"
            }
            Rule::ReuseInconsistent => {
                "ideal traffic and working set can never exceed streaming traffic"
            }
            Rule::BytesConservation => {
                "a transpose moves exactly the bytes its NTT producer wrote"
            }
            Rule::EmptyKernel => "zero-work nodes are schedule noise",
            Rule::ScratchpadOvercommit => {
                "a reuse-claiming working set must fit the double-buffered half-scratchpad"
            }
            Rule::InfeasibleStaging => {
                "decomposed-NTT stage buffers must fit the scratchpad under double buffering"
            }
            Rule::TransposeNotHidden => {
                "the zero-cost transpose needs a neighbouring kernel at least as long"
            }
            Rule::NttExceedsTwoAdicity => {
                "no primitive 2^log_n-th root of unity exists past the field's two-adicity"
            }
            Rule::BufferHeldPastLastRead => {
                "a long producer-to-last-consumer range parks an HBM vector across many phases"
            }
            Rule::ShardScheduleDivergent => {
                "sharded proving splits one trace into identical sub-problems; shard schedules \
                 must be structurally identical"
            }
            Rule::AggregationArityMismatch => {
                "the aggregation schedule must absorb exactly one payload per shard, and exists \
                 exactly when there is more than one shard"
            }
            Rule::InterconnectPayloadMissing => {
                "a multi-shard plan with zero declared payload bytes leaves the interconnect \
                 unmodeled"
            }
            Rule::CostModelOverflow => {
                "modeled cycles and traffic must stay below 2^53, where f64 bandwidth \
                 arithmetic is still integer-exact"
            }
            Rule::ZeroCostSchedule => {
                "a nonempty schedule with a zero static cycle upper bound simulates as free"
            }
            Rule::BandwidthStarvedSchedule => {
                "nearly every costed kernel is memory-bound even at peak bandwidth: the \
                 mapping cannot feed the VSAs"
            }
            Rule::LivenessExceedsScratchpad => {
                "peak live bytes far beyond the scratchpad pin every inter-kernel value to HBM"
            }
            Rule::InsufficientSecurityBits => {
                "conjectured security (queries x rate_bits + pow_bits) must reach the target \
                 over nonzero challenge rounds"
            }
            Rule::LdeExceedsTwoAdicity => {
                "the LDE domain 2^(log_rows + rate_bits) needs a root of unity within the \
                 field's two-adicity"
            }
            Rule::FinalPolyInconsistent => {
                "FRI folding must terminate on a nonempty power-of-two final polynomial \
                 smaller than the trace"
            }
            Rule::ExcessiveGrind => {
                "a 64-bit grinding challenge cannot show 64 or more leading zero bits"
            }
            Rule::ShardAggregationIncompatible => {
                "shard count (a power of two) and aggregation arity must describe the same plan"
            }
        }
    }
}

/// One verification finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// `rule.severity()`, denormalized for filtering.
    pub severity: Severity,
    /// The node the finding anchors to (`None` for graph-level findings).
    pub node: Option<NodeId>,
    /// Human-readable detail, including the node label where available.
    pub message: String,
}

impl Diagnostic {
    /// Whether this diagnostic is error severity.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// `S02 dep-not-topological @ node 3 (label): message` rendering.
    pub fn render(&self) -> String {
        let at = match self.node {
            Some(n) => format!(" @ node {n}"),
            None => String::new(),
        };
        format!("{} {}{at}: {}", self.rule.id(), self.rule.name(), self.message)
    }
}

/// Number of error-severity diagnostics in a finding list.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.is_error()).count()
}

/// Multi-line rendering of a finding list (for panics and CLI output).
pub fn render_all(diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| d.render() + "\n").collect()
}

/// Kernel classes in the fixed order [`CostEnvelope`] stores them.
pub const CLASS_ORDER: [KernelClassTag; 4] = [
    KernelClassTag::Ntt,
    KernelClassTag::Hash,
    KernelClassTag::Poly,
    KernelClassTag::Transpose,
];

fn class_index(tag: KernelClassTag) -> usize {
    match tag {
        KernelClassTag::Ntt => 0,
        KernelClassTag::Hash => 1,
        KernelClassTag::Poly => 2,
        KernelClassTag::Transpose => 3,
    }
}

/// Static cycle and traffic bounds for one kernel class.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassEnvelope {
    /// Roofline floor on the class's simulated cycles: memory time at
    /// *peak* bandwidth, compute time at full issue.
    pub cycles_lower: u64,
    /// Ceiling on the class's simulated cycles: compute plus
    /// measured-efficiency memory time with no overlap.
    pub cycles_upper: u64,
    /// HBM traffic in bytes. Exact, not a bound — byte counts are static.
    pub traffic_bytes: u64,
    /// Nodes of this class in the schedule.
    pub nodes: usize,
}

/// A machine-readable static roofline over a compiled schedule: per-class
/// cycle lower/upper bounds, exact HBM traffic, and peak scratchpad
/// liveness. See the module docs for the derivation; the simulator
/// debug-asserts `lower ≤ simulated ≤ upper` against this on every run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostEnvelope {
    /// Per-class bounds, in [`CLASS_ORDER`].
    pub classes: [ClassEnvelope; 4],
    /// Maximum over schedule positions of the bytes written by producers
    /// whose output is still awaiting its last consumer.
    pub peak_live_bytes: u64,
}

impl CostEnvelope {
    /// The bounds for one kernel class.
    pub fn class(&self, tag: KernelClassTag) -> &ClassEnvelope {
        &self.classes[class_index(tag)]
    }

    /// Lower bound on total simulated cycles (sum of class floors — the
    /// simulator runs nodes serially, so per-node bounds add).
    pub fn total_lower(&self) -> u64 {
        self.classes.iter().map(|c| c.cycles_lower).sum()
    }

    /// Upper bound on total simulated cycles.
    pub fn total_upper(&self) -> u64 {
        self.classes.iter().map(|c| c.cycles_upper).sum()
    }

    /// Total HBM traffic in bytes (exact).
    pub fn total_traffic_bytes(&self) -> u64 {
        self.classes.iter().map(|c| c.traffic_bytes).sum()
    }
}

/// Derives the [`CostEnvelope`] of a compiled schedule on `chip`.
///
/// Purely static: maps every kernel, never runs the cycle-accurate channel
/// model probe beyond the memory model's own deterministic efficiency
/// measurement (identical to what the simulator uses).
pub fn cost_envelope(graph: &Graph, chip: &ChipConfig) -> CostEnvelope {
    cost_envelope_with(graph, chip, &MemoryModel::new(chip.hbm.clone()))
}

/// [`cost_envelope`] against a caller-provided memory model, so the
/// simulator can reuse its own (memoized efficiencies and all) and the
/// bounds brackets exactly the arithmetic the simulation performs.
pub fn cost_envelope_with(graph: &Graph, chip: &ChipConfig, memory: &MemoryModel) -> CostEnvelope {
    let nodes = graph.nodes();
    let len = nodes.len();

    // Live ranges for peak liveness: a producer's output occupies memory
    // from its own position through its last consumer's.
    let mut last_consumer: Vec<Option<NodeId>> = vec![None; len];
    for (id, node) in nodes.iter().enumerate() {
        for &d in &node.deps {
            if d < id {
                last_consumer[d] = Some(id);
            }
        }
    }

    let peak = chip.hbm.peak_bytes_per_cycle();
    let mut env = CostEnvelope::default();
    let mut live_delta = vec![0i128; len + 1];
    for (id, node) in nodes.iter().enumerate() {
        let cost = map_kernel(&node.kernel, chip);
        let bytes = cost.total_bytes();
        // The floor assumes 100% bandwidth efficiency; the measured
        // efficiency is clamped to [0, 1], so the simulator's
        // `stream_cycles` can only be at least this.
        #[allow(clippy::cast_possible_truncation)] // C01 bounds the domain
        let mem_floor = if bytes == 0 { 0 } else { ((bytes as f64) / peak).ceil() as u64 };
        let mem_ceiling = memory.stream_cycles(bytes, cost.pattern);
        let slot = &mut env.classes[class_index(node.kernel.class())];
        slot.cycles_lower += cost.compute_cycles.max(mem_floor) + cost.fill_cycles;
        slot.cycles_upper += cost.compute_cycles + mem_ceiling + cost.fill_cycles;
        slot.traffic_bytes += bytes;
        slot.nodes += 1;

        let end = last_consumer[id].unwrap_or(id);
        live_delta[id] += i128::from(cost.write_bytes);
        live_delta[end + 1] -= i128::from(cost.write_bytes);
    }

    let mut live = 0i128;
    let mut peak_live = 0i128;
    for d in &live_delta {
        live += d;
        peak_live = peak_live.max(live);
    }
    env.peak_live_bytes = u64::try_from(peak_live).expect("live bytes are a sum of u64 writes");
    env
}

/// Verifies a compiled kernel graph against a chip configuration.
///
/// Returns every finding, errors and warnings, in deterministic order
/// (nodes in schedule order, rules in catalog order within a node). An
/// empty result — or one with only warnings — means the schedule is
/// well-formed and its simulated cycle counts can be trusted.
pub fn check(graph: &Graph, chip: &ChipConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let nodes = graph.nodes();
    let len = nodes.len();

    // Last consumer of each node, for S04 (orphans) and L01 (liveness).
    let mut last_consumer: Vec<Option<NodeId>> = vec![None; len];
    for (id, node) in nodes.iter().enumerate() {
        for &d in &node.deps {
            if d < id {
                last_consumer[d] = Some(id);
            }
        }
    }

    let memory = MemoryModel::new(chip.hbm.clone());
    let node_cycles = |id: NodeId| -> u64 {
        let cost = map_kernel(&nodes[id].kernel, chip);
        let mem = memory.stream_cycles(cost.total_bytes(), cost.pattern);
        cost.compute_cycles.max(mem) + cost.fill_cycles
    };

    for (id, node) in nodes.iter().enumerate() {
        let label = &node.label;
        let mut push = |rule: Rule, node_id: NodeId, message: String| {
            diags.push(Diagnostic {
                rule,
                severity: rule.severity(),
                node: Some(node_id),
                message,
            });
        };

        // ---- cost-model domain ------------------------------------------
        let cost = map_kernel(&node.kernel, chip);
        if cost.compute_cycles > MAX_EXACT_COST || cost.total_bytes() > MAX_EXACT_COST {
            push(
                Rule::CostModelOverflow,
                id,
                format!(
                    "({label}) models {} compute cycles and {} traffic bytes; past 2^53 the \
                     f64 bandwidth arithmetic loses integer exactness and neither simulation \
                     nor the static envelope can be trusted",
                    cost.compute_cycles,
                    cost.total_bytes()
                ),
            );
        }

        // ---- structural -------------------------------------------------
        for (i, &d) in node.deps.iter().enumerate() {
            if d >= len {
                push(
                    Rule::DepOutOfRange,
                    id,
                    format!("({label}) depends on node {d}, but the graph has {len} nodes"),
                );
            } else if d >= id {
                push(
                    Rule::DepNotTopological,
                    id,
                    format!(
                        "({label}) depends on node {d}, which is not scheduled before it \
                         (cycle under the static schedule)"
                    ),
                );
            }
            if node.deps[..i].contains(&d) {
                push(
                    Rule::DepDuplicate,
                    id,
                    format!("({label}) lists dependency {d} more than once"),
                );
            }
        }
        if id + 1 < len && last_consumer[id].is_none() {
            push(
                Rule::OrphanNode,
                id,
                format!("({label}) output is never consumed and it is not the final node"),
            );
        }

        // Valid backward dependencies only, for the dataflow rules.
        let back_deps = || node.deps.iter().copied().filter(|&d| d < id);

        // ---- dataflow & resources, per kernel ---------------------------
        match &node.kernel {
            Kernel::Ntt { log_n, batch, variant, .. } => {
                if *log_n > MAX_NTT_LOG2 {
                    push(
                        Rule::NttExceedsTwoAdicity,
                        id,
                        format!(
                            "({label}) size 2^{log_n} exceeds the Goldilocks two-adicity \
                             2^{MAX_NTT_LOG2}; the twiddle generator cannot form its root of unity"
                        ),
                    );
                }
                if *batch == 0 || *log_n == 0 {
                    push(
                        Rule::EmptyKernel,
                        id,
                        format!("({label}) log_n={log_n}, batch={batch}: no work"),
                    );
                }
                // Double-buffered stage buffers of the decomposed NTT: two
                // small-transform tiles (fill + drain) per pipeline chain.
                let chains = (chip.num_vsas * chip.vsa_dim) as u64;
                let staging = chains * 2 * (1u64 << chip.ntt_pipeline_log2) * 8;
                if staging > chip.scratchpad_bytes as u64 {
                    push(
                        Rule::InfeasibleStaging,
                        id,
                        format!(
                            "({label}) decomposed-NTT staging needs {staging} B \
                             ({chains} chains x 2 x 2^{} x 8 B) but the scratchpad holds {} B",
                            chip.ntt_pipeline_log2, chip.scratchpad_bytes
                        ),
                    );
                }
                for d in back_deps() {
                    if let Kernel::Ntt {
                        log_n: p_log_n,
                        batch: p_batch,
                        variant: p_variant,
                        ..
                    } = &nodes[d].kernel
                    {
                        if p_variant.output_bit_reversed() {
                            push(
                                Rule::NttOrderMismatch,
                                id,
                                format!(
                                    "({label}) consumes node {d}'s {p_variant:?} output, which is \
                                     bit-reversed; {variant:?} expects natural input order"
                                ),
                            );
                        }
                        let consumer_elems = (*batch as u64) << (*log_n).min(63);
                        let producer_elems = (*p_batch as u64) << (*p_log_n).min(63);
                        if consumer_elems < producer_elems {
                            push(
                                Rule::LdeShrinks,
                                id,
                                format!(
                                    "({label}) covers {consumer_elems} elements but its NTT \
                                     producer (node {d}) made {producer_elems}: an LDE edge \
                                     never discards data"
                                ),
                            );
                        }
                    }
                }
            }
            Kernel::MerkleTree { num_leaves, leaf_len } => {
                if !num_leaves.is_power_of_two() || *num_leaves < 2 || *leaf_len == 0 {
                    push(
                        Rule::MerkleShape,
                        id,
                        format!(
                            "({label}) num_leaves={num_leaves}, leaf_len={leaf_len}: the §5.3 \
                             mapping needs a full binary tree over nonempty leaves"
                        ),
                    );
                }
                for d in back_deps() {
                    if let Kernel::Transpose { rows, cols } = &nodes[d].kernel {
                        if num_leaves != cols || leaf_len != rows {
                            push(
                                Rule::LeafGatherMismatch,
                                id,
                                format!(
                                    "({label}) commits {num_leaves} leaves of {leaf_len} elements \
                                     but its leaf-gather transpose (node {d}) produced a \
                                     {cols}x{rows} layout"
                                ),
                            );
                        }
                    }
                }
            }
            Kernel::Sponge { num_perms, .. } => {
                if *num_perms == 0 {
                    push(Rule::EmptyKernel, id, format!("({label}) runs zero permutations"));
                }
            }
            Kernel::PolyOp { ops, reuse } => {
                if *ops == 0 {
                    push(Rule::EmptyKernel, id, format!("({label}) performs zero operations"));
                }
                if reuse.ideal_bytes > reuse.streaming_bytes
                    || reuse.working_set_bytes > reuse.streaming_bytes
                {
                    push(
                        Rule::ReuseInconsistent,
                        id,
                        format!(
                            "({label}) reuse declares ideal={} working_set={} beyond \
                             streaming={} bytes: the tiling analysis can only reduce traffic",
                            reuse.ideal_bytes, reuse.working_set_bytes, reuse.streaming_bytes
                        ),
                    );
                } else if reuse.ideal_bytes < reuse.streaming_bytes
                    && reuse.working_set_bytes > (chip.scratchpad_bytes / 2) as u64
                {
                    push(
                        Rule::ScratchpadOvercommit,
                        id,
                        format!(
                            "({label}) claims reuse with a {} B working set, but the \
                             double-buffered half-scratchpad holds {} B: traffic degrades \
                             toward streaming",
                            reuse.working_set_bytes,
                            chip.scratchpad_bytes / 2
                        ),
                    );
                }
            }
            Kernel::GateEval { ops, bytes, run_bytes } => {
                if *ops == 0 || *bytes == 0 {
                    push(
                        Rule::EmptyKernel,
                        id,
                        format!("({label}) ops={ops}, bytes={bytes}: no work"),
                    );
                }
                if u64::from(*run_bytes) > *bytes && *bytes > 0 {
                    push(
                        Rule::ReuseInconsistent,
                        id,
                        format!(
                            "({label}) run length {run_bytes} B exceeds total traffic {bytes} B"
                        ),
                    );
                }
            }
            Kernel::PartialProducts { len } => {
                if *len == 0 {
                    push(Rule::EmptyKernel, id, format!("({label}) empty quotient vector"));
                }
            }
            Kernel::Transpose { rows, cols } => {
                if rows.saturating_mul(*cols) == 0 {
                    push(Rule::EmptyKernel, id, format!("({label}) {rows}x{cols} matrix"));
                }
                for d in back_deps() {
                    if let Kernel::Ntt { log_n, batch, .. } = &nodes[d].kernel {
                        let moved = rows.saturating_mul(*cols) as u64;
                        let produced = (*batch as u64) << (*log_n).min(63);
                        if moved != produced {
                            push(
                                Rule::BytesConservation,
                                id,
                                format!(
                                    "({label}) streams {moved} elements but its NTT producer \
                                     (node {d}) wrote {produced}: the transpose must move \
                                     exactly what was made"
                                ),
                            );
                        }
                    }
                }
                // Zero-cost assumption (§7.1): the transpose must hide
                // behind an adjacent costed kernel. Compare its buffer
                // busy time against the best neighbour at peak bandwidth.
                let b = chip.transpose_b as u64;
                let tiles =
                    (rows.div_ceil(chip.transpose_b) * cols.div_ceil(chip.transpose_b)) as u64;
                // Fill/drain double-buffered across the banks (the
                // functional model in `vsa::transpose_buffer` uses 8).
                let busy = tiles * b / 8 + b;
                let best_neighbour = back_deps()
                    .map(node_cycles)
                    .chain(last_consumer[id].map(node_cycles))
                    .max()
                    .unwrap_or(0);
                if busy > best_neighbour {
                    push(
                        Rule::TransposeNotHidden,
                        id,
                        format!(
                            "({label}) needs {busy} buffer cycles but its longest neighbour \
                             runs {best_neighbour}: the zero-cost transpose assumption fails"
                        ),
                    );
                }
            }
        }

        // ---- liveness ---------------------------------------------------
        if let Some(last) = last_consumer[id] {
            let held = last - id;
            if held > LIVENESS_WINDOW {
                push(
                    Rule::BufferHeldPastLastRead,
                    id,
                    format!(
                        "({label}) output is last read by node {last}, {held} schedule positions \
                         later: the vector stays HBM-resident across {held} kernel phases"
                    ),
                );
            }
        }
    }

    // ---- graph-level cost rules (C02–C04) -------------------------------
    let env = cost_envelope_with(graph, chip, &memory);
    let mut push_graph = |rule: Rule, message: String| {
        diags.push(Diagnostic { rule, severity: rule.severity(), node: None, message });
    };

    if len > 0 && env.total_upper() == 0 {
        push_graph(
            Rule::ZeroCostSchedule,
            format!(
                "{len} node(s) but a zero static cycle upper bound: the whole schedule \
                 simulates as free"
            ),
        );
    }

    // C03: count the costed nodes (nonzero modeled time) that are
    // memory-bound even if HBM ran at 100% efficiency.
    let peak = chip.hbm.peak_bytes_per_cycle();
    let (mut costed, mut starved) = (0usize, 0usize);
    for node in nodes {
        let cost = map_kernel(&node.kernel, chip);
        let bytes = cost.total_bytes();
        if cost.compute_cycles + cost.fill_cycles == 0 && bytes == 0 {
            continue;
        }
        costed += 1;
        #[allow(clippy::cast_possible_truncation)] // C01 bounds the domain
        let mem_floor = if bytes == 0 { 0 } else { ((bytes as f64) / peak).ceil() as u64 };
        if mem_floor > cost.compute_cycles {
            starved += 1;
        }
    }
    if costed >= BANDWIDTH_STARVED_MIN_NODES
        && starved * 100 >= costed * BANDWIDTH_STARVED_PERCENT
    {
        push_graph(
            Rule::BandwidthStarvedSchedule,
            format!(
                "{starved} of {costed} costed kernels are memory-bound even at peak \
                 bandwidth: the mapping cannot feed the VSAs"
            ),
        );
    }

    let live_budget = LIVENESS_SCRATCHPAD_FACTOR * chip.scratchpad_bytes as u64;
    if env.peak_live_bytes > live_budget {
        push_graph(
            Rule::LivenessExceedsScratchpad,
            format!(
                "peak live bytes {} exceed {LIVENESS_SCRATCHPAD_FACTOR}x the scratchpad \
                 ({live_budget} B): every inter-kernel value streams through HBM",
                env.peak_live_bytes
            ),
        );
    }

    diags
}

/// A multi-chip proving plan: `shards` per-shard schedules (one chip
/// each) plus the aggregation schedule that absorbs their payloads, as
/// produced by the fleet simulator's shard planner.
///
/// The M-rules verify the *relationship* between the member graphs; each
/// member graph is still a single-chip schedule that must pass [`check`]
/// on its own.
#[derive(Clone, Debug)]
pub struct MultiChipSchedule<'a> {
    /// One compiled schedule per shard, in shard order.
    pub shards: Vec<&'a Graph>,
    /// The aggregation schedule (absorb every shard payload, prove the
    /// aggregate). `None` for the degenerate single-shard plan, where the
    /// shard proof *is* the proof.
    pub aggregation: Option<&'a Graph>,
    /// Modeled bytes each shard ships to the aggregating chip (commitment
    /// caps + opening proof). Charged against the interconnect model.
    pub payload_bytes_per_shard: u64,
}

/// Verifies the cross-chip invariants of a [`MultiChipSchedule`] (rules
/// M01–M03). Member graphs are **not** re-checked here — run [`check`] on
/// each of them; the fleet simulator and the lint CLI both do.
///
/// Returned diagnostics anchor to shard indices (M01) or to no node
/// (M02/M03, plan-level findings).
pub fn check_multi(sched: &MultiChipSchedule<'_>, _chip: &ChipConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut push = |rule: Rule, node: Option<NodeId>, message: String| {
        diags.push(Diagnostic {
            rule,
            severity: rule.severity(),
            node,
            message,
        });
    };

    // M01: every shard proves a same-shape slice of one trace, so the
    // compiled schedules must be node-for-node identical (kernels and
    // dependency lists; labels are presentation and may differ).
    if let Some((first, rest)) = sched.shards.split_first() {
        for (i, shard) in rest.iter().enumerate() {
            let idx = i + 1;
            if shard.len() != first.len() {
                push(
                    Rule::ShardScheduleDivergent,
                    Some(idx),
                    format!(
                        "shard {idx} schedules {} nodes but shard 0 schedules {}: shards must \
                         prove identically-shaped sub-traces",
                        shard.len(),
                        first.len()
                    ),
                );
                continue;
            }
            let divergent = first
                .nodes()
                .iter()
                .zip(shard.nodes())
                .position(|(a, b)| a.kernel != b.kernel || a.deps != b.deps);
            if let Some(n) = divergent {
                push(
                    Rule::ShardScheduleDivergent,
                    Some(idx),
                    format!(
                        "shard {idx} diverges from shard 0 at node {n} ({}): shards must prove \
                         identically-shaped sub-traces",
                        first.nodes()[n].label
                    ),
                );
            }
        }
    }

    // M02: the aggregation stage exists iff the plan actually shards, and
    // absorbs exactly one payload per shard. Payload absorbs are the
    // aggregation graph's source nodes (empty dependency lists): each
    // shard's bytes arrive independently over the interconnect.
    let shards = sched.shards.len();
    match sched.aggregation {
        None if shards > 1 => push(
            Rule::AggregationArityMismatch,
            None,
            format!("{shards} shard proofs but no aggregation schedule to combine them"),
        ),
        Some(_) if shards <= 1 => push(
            Rule::AggregationArityMismatch,
            None,
            format!(
                "aggregation schedule present for a {shards}-shard plan: a single shard's proof \
                 is already the proof"
            ),
        ),
        Some(agg) => {
            let absorbs = agg.nodes().iter().filter(|n| n.deps.is_empty()).count();
            if absorbs != shards {
                push(
                    Rule::AggregationArityMismatch,
                    None,
                    format!(
                        "aggregation schedule has {absorbs} payload absorb(s) (source nodes) \
                         for {shards} shard(s)"
                    ),
                );
            }
        }
        None => {}
    }

    // M03: a multi-shard plan that ships zero bytes per shard makes the
    // interconnect free — almost certainly an unmodeled cost, not a real
    // design point.
    if shards > 1 && sched.payload_bytes_per_shard == 0 {
        push(
            Rule::InterconnectPayloadMissing,
            None,
            format!(
                "{shards}-shard plan declares 0 payload bytes per shard: aggregation traffic \
                 is not charged against the interconnect"
            ),
        );
    }

    diags
}

/// Panics with the rendered error list if the plan fails [`check_multi`]
/// or any member graph fails [`check`] against `chip`. The fleet
/// simulator calls this under `debug_assertions`.
pub fn assert_multi_verified(sched: &MultiChipSchedule<'_>, chip: &ChipConfig) {
    for (i, shard) in sched.shards.iter().enumerate() {
        let diags = check(shard, chip);
        let errors: Vec<&Diagnostic> = diags.iter().filter(|d| d.is_error()).collect();
        assert!(
            errors.is_empty(),
            "shard {i} schedule failed static verification with {} error(s):\n{}",
            errors.len(),
            errors.iter().map(|d| d.render() + "\n").collect::<String>()
        );
    }
    if let Some(agg) = sched.aggregation {
        assert_verified(agg, chip);
    }
    let diags = check_multi(sched, chip);
    let errors: Vec<&Diagnostic> = diags.iter().filter(|d| d.is_error()).collect();
    assert!(
        errors.is_empty(),
        "multi-chip plan failed static verification with {} error(s):\n{}",
        errors.len(),
        errors.iter().map(|d| d.render() + "\n").collect::<String>()
    );
}

/// Panics with the rendered error list if `graph` fails verification
/// against `chip`. The simulator calls this under `debug_assertions`.
pub fn assert_verified(graph: &Graph, chip: &ChipConfig) {
    let diags = check(graph, chip);
    let errors: Vec<&Diagnostic> = diags.iter().filter(|d| d.is_error()).collect();
    assert!(
        errors.is_empty(),
        "schedule failed static verification with {} error(s):\n{}",
        errors.len(),
        errors.iter().map(|d| d.render() + "\n").collect::<String>()
    );
}

/// Cryptographic protocol parameters for the P-rule checker: one flat
/// record a caller assembles from its `FriConfig`/`StarkConfig`/shard plan
/// (this crate models hardware, not protocols, so it cannot depend on
/// those crates — the fields mirror them instead, the same way
/// [`MultiChipSchedule`] mirrors the fleet planner's output).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolParams {
    /// `log2` of the trace height.
    pub log_rows: usize,
    /// `log2` of the LDE blowup factor.
    pub rate_bits: usize,
    /// FRI query rounds.
    pub num_queries: usize,
    /// Leading-zero bits demanded of the 64-bit grinding challenge.
    pub proof_of_work_bits: usize,
    /// Coefficients at which FRI folding stops.
    pub final_poly_len: usize,
    /// Independent constraint-combination challenge rounds.
    pub num_challenges: usize,
    /// Conjectured security bits the deployment demands.
    pub target_security_bits: usize,
    /// Shards the workload is split across (1 = unsharded).
    pub shards: usize,
    /// Payloads the aggregation stage absorbs (0 = no aggregation stage).
    pub aggregation_arity: usize,
    /// Bits of entropy one base-field element carries (64 for Goldilocks,
    /// 31 for KoalaBear). Caps challenge-derived soundness and the grind.
    pub field_bits: usize,
    /// Degree of the challenge extension field (2 for Goldilocks/`Ext2`,
    /// 4 for KoalaBear/`KbExt4`).
    pub extension_degree: usize,
    /// The base field's two-adicity: the largest power-of-two subgroup,
    /// and hence the largest possible LDE domain (32 for Goldilocks, 24
    /// for KoalaBear).
    pub two_adicity: usize,
}

impl ProtocolParams {
    /// The query-path heuristic: one `rate_bits` of security per query
    /// plus the grinding bits.
    pub fn query_security_bits(&self) -> usize {
        self.num_queries * self.rate_bits + self.proof_of_work_bits
    }

    /// The extension-aware conjectured security: the query-path bits
    /// capped by the Schwartz–Zippel entropy of the challenge extension
    /// (`field_bits · extension_degree`) and of the combination rounds
    /// (`field_bits · num_challenges`). Over Goldilocks both caps sit at
    /// 128 bits and the query path binds, as in the original heuristic; a
    /// 31-bit field needs a quartic extension and 4 challenge rounds to
    /// keep a 100-bit target reachable.
    pub fn conjectured_security_bits(&self) -> usize {
        self.query_security_bits()
            .min(self.field_bits * self.extension_degree)
            .min(self.field_bits * self.num_challenges)
    }
}

/// Runs the P-rules over one protocol's parameters. Diagnostics are
/// plan-level (no node anchor); an empty result means the parameters are
/// sound under the conjectured-security heuristic.
pub fn check_params(p: &ProtocolParams) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut push = |rule: Rule, message: String| {
        diags.push(Diagnostic { rule, severity: rule.severity(), node: None, message });
    };

    // P01: the conjectured-security ledger must balance.
    if p.num_challenges == 0 {
        push(
            Rule::InsufficientSecurityBits,
            "zero constraint-combination challenge rounds: the quotient identity is never \
             bound to the trace"
                .into(),
        );
    }
    let query_bits = p.query_security_bits();
    let ext_bits = p.field_bits * p.extension_degree;
    let chal_bits = p.field_bits * p.num_challenges;
    let bits = p.conjectured_security_bits();
    if bits < p.target_security_bits {
        if query_bits <= ext_bits && query_bits <= chal_bits {
            push(
                Rule::InsufficientSecurityBits,
                format!(
                    "{} queries x {} rate bits + {} pow bits = {bits} conjectured security bits, \
                     short of the {}-bit target",
                    p.num_queries, p.rate_bits, p.proof_of_work_bits, p.target_security_bits
                ),
            );
        } else if ext_bits <= chal_bits {
            push(
                Rule::InsufficientSecurityBits,
                format!(
                    "degree-{} extension of a {}-bit field caps challenge entropy at \
                     {ext_bits} bits, short of the {}-bit target",
                    p.extension_degree, p.field_bits, p.target_security_bits
                ),
            );
        } else {
            push(
                Rule::InsufficientSecurityBits,
                format!(
                    "{} combination rounds of {}-bit challenges cap soundness at {chal_bits} \
                     bits, short of the {}-bit target",
                    p.num_challenges, p.field_bits, p.target_security_bits
                ),
            );
        }
    }

    // P02: the LDE domain must have a root of unity in the base field.
    if p.log_rows + p.rate_bits > p.two_adicity {
        push(
            Rule::LdeExceedsTwoAdicity,
            format!(
                "LDE domain 2^{} (log_rows {} + rate_bits {}) exceeds the field's \
                 two-adicity 2^{}: no root of unity exists for the blowup",
                p.log_rows + p.rate_bits,
                p.log_rows,
                p.rate_bits,
                p.two_adicity
            ),
        );
    }

    // P03: folding must terminate on a sensible final polynomial.
    let trace_len = 1usize << p.log_rows.min(63);
    if p.final_poly_len == 0 || !p.final_poly_len.is_power_of_two() || p.final_poly_len >= trace_len
    {
        push(
            Rule::FinalPolyInconsistent,
            format!(
                "final_poly_len {} against a 2^{}-row trace: folding must stop on a nonempty \
                 power-of-two polynomial smaller than the trace",
                p.final_poly_len, p.log_rows
            ),
        );
    }

    // P04: the grind must be satisfiable.
    if p.proof_of_work_bits >= p.field_bits {
        push(
            Rule::ExcessiveGrind,
            format!(
                "{} proof-of-work bits: a {}-bit grinding challenge cannot show that many \
                 leading zeros",
                p.proof_of_work_bits, p.field_bits
            ),
        );
    }

    // P05: the shard plan and the aggregation stage must agree.
    if p.shards == 0 || !p.shards.is_power_of_two() {
        push(
            Rule::ShardAggregationIncompatible,
            format!("shards = {}: the trace is halved per split, so shard counts are nonzero \
                     powers of two", p.shards),
        );
    } else if p.shards > 1 && p.aggregation_arity != p.shards {
        push(
            Rule::ShardAggregationIncompatible,
            format!(
                "{} shards but an aggregation stage absorbing {} payload(s): every shard \
                 proof must be absorbed exactly once",
                p.shards, p.aggregation_arity
            ),
        );
    } else if p.shards == 1 && p.aggregation_arity != 0 {
        push(
            Rule::ShardAggregationIncompatible,
            format!(
                "single-shard plan with an aggregation stage absorbing {} payload(s): the \
                 shard proof is already the proof",
                p.aggregation_arity
            ),
        );
    }

    diags
}

/// Panics with the rendered error list if `params` fail [`check_params`].
/// `stark::prove` and the serving pipeline gate on this.
pub fn assert_params_valid(params: &ProtocolParams) {
    let diags = check_params(params);
    let errors: Vec<&Diagnostic> = diags.iter().filter(|d| d.is_error()).collect();
    assert!(
        errors.is_empty(),
        "protocol parameters failed static verification with {} error(s):\n{}",
        errors.len(),
        errors.iter().map(|d| d.render() + "\n").collect::<String>()
    );
}

impl NttVariant {
    /// Whether this variant emits its output in bit-reversed order (the
    /// `NR` transforms of §5.1). Every variant consumes natural order.
    pub fn output_bit_reversed(&self) -> bool {
        matches!(self, NttVariant::ForwardNr | NttVariant::CosetForwardNr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile_plonky2, compile_starky, Plonky2Instance, StarkyInstance};
    use crate::graph::Node;
    use crate::kernels::Layout;

    fn chip() -> ChipConfig {
        ChipConfig::default_chip()
    }

    #[test]
    fn compiled_graphs_are_error_free() {
        for rows in [10usize, 12, 14] {
            let g = compile_plonky2(&Plonky2Instance::new(1 << rows, 135));
            let diags = check(&g, &chip());
            assert_eq!(error_count(&diags), 0, "plonky2 2^{rows}:\n{}", render_all(&diags));
        }
        let g = compile_starky(&StarkyInstance::new(1 << 12, 16, 8));
        let diags = check(&g, &chip());
        assert_eq!(error_count(&diags), 0, "starky:\n{}", render_all(&diags));
    }

    #[test]
    fn rule_ids_are_unique_and_stable() {
        let mut ids: Vec<&str> = Rule::ALL.iter().map(Rule::id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Rule::ALL.len(), "duplicate rule id");
        assert_eq!(Rule::DepOutOfRange.id(), "S01");
        assert_eq!(Rule::BufferHeldPastLastRead.id(), "L01");
    }

    #[test]
    fn forward_dep_is_a_cycle() {
        let g = Graph::from_nodes_unchecked(vec![
            Node {
                kernel: Kernel::Sponge { num_perms: 1, parallel: false },
                deps: vec![1],
                label: "a".into(),
            },
            Node {
                kernel: Kernel::Sponge { num_perms: 1, parallel: false },
                deps: vec![0],
                label: "b".into(),
            },
        ]);
        let diags = check(&g, &chip());
        assert!(diags.iter().any(|d| d.rule == Rule::DepNotTopological), "{}", render_all(&diags));
    }

    #[test]
    fn dangling_dep_is_out_of_range() {
        let g = Graph::from_nodes_unchecked(vec![Node {
            kernel: Kernel::Sponge { num_perms: 1, parallel: false },
            deps: vec![9],
            label: "a".into(),
        }]);
        let diags = check(&g, &chip());
        assert!(diags.iter().any(|d| d.rule == Rule::DepOutOfRange));
    }

    #[test]
    fn assert_verified_panics_on_errors() {
        let g = Graph::from_nodes_unchecked(vec![Node {
            kernel: Kernel::Sponge { num_perms: 1, parallel: false },
            deps: vec![9],
            label: "a".into(),
        }]);
        let result = std::panic::catch_unwind(|| assert_verified(&g, &chip()));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("S01"), "{msg}");
    }

    #[test]
    fn warnings_do_not_trip_the_assertion() {
        let mut g = Graph::new();
        g.push(Kernel::Sponge { num_perms: 0, parallel: false }, vec![], "empty");
        assert_verified(&g, &chip()); // D07 is a warning
        assert_eq!(error_count(&check(&g, &chip())), 0);
        assert!(check(&g, &chip()).iter().any(|d| d.rule == Rule::EmptyKernel));
    }

    fn sponge_graph(absorbs: usize) -> Graph {
        // `absorbs` source sponges feeding one combining sponge — the
        // minimal aggregation-shaped graph.
        let mut g = Graph::new();
        let roots: Vec<NodeId> = (0..absorbs)
            .map(|i| {
                g.push(
                    Kernel::Sponge { num_perms: 4, parallel: true },
                    vec![],
                    format!("absorb {i}"),
                )
            })
            .collect();
        g.push(Kernel::Sponge { num_perms: 2, parallel: false }, roots, "combine");
        g
    }

    #[test]
    fn identical_shards_pass_multi_check() {
        let shard = compile_plonky2(&Plonky2Instance::new(1 << 10, 135));
        let agg = sponge_graph(2);
        let sched = MultiChipSchedule {
            shards: vec![&shard, &shard],
            aggregation: Some(&agg),
            payload_bytes_per_shard: 4096,
        };
        let diags = check_multi(&sched, &chip());
        assert!(diags.is_empty(), "{}", render_all(&diags));
        assert_multi_verified(&sched, &chip());
    }

    #[test]
    fn divergent_shard_fires_m01() {
        let a = compile_plonky2(&Plonky2Instance::new(1 << 10, 135));
        let b = compile_plonky2(&Plonky2Instance::new(1 << 11, 135));
        let agg = sponge_graph(2);
        let sched = MultiChipSchedule {
            shards: vec![&a, &b],
            aggregation: Some(&agg),
            payload_bytes_per_shard: 4096,
        };
        let diags = check_multi(&sched, &chip());
        assert!(
            diags.iter().any(|d| d.rule == Rule::ShardScheduleDivergent),
            "{}",
            render_all(&diags)
        );
    }

    #[test]
    fn aggregation_arity_fires_m02() {
        let shard = compile_plonky2(&Plonky2Instance::new(1 << 10, 135));
        let chip = chip();

        // Missing aggregation for a 2-shard plan.
        let sched = MultiChipSchedule {
            shards: vec![&shard, &shard],
            aggregation: None,
            payload_bytes_per_shard: 4096,
        };
        assert!(check_multi(&sched, &chip)
            .iter()
            .any(|d| d.rule == Rule::AggregationArityMismatch));

        // Wrong absorb arity: 3 sources for 2 shards.
        let agg = sponge_graph(3);
        let sched = MultiChipSchedule {
            shards: vec![&shard, &shard],
            aggregation: Some(&agg),
            payload_bytes_per_shard: 4096,
        };
        assert!(check_multi(&sched, &chip)
            .iter()
            .any(|d| d.rule == Rule::AggregationArityMismatch));

        // Superfluous aggregation for a single-shard plan.
        let agg1 = sponge_graph(1);
        let sched = MultiChipSchedule {
            shards: vec![&shard],
            aggregation: Some(&agg1),
            payload_bytes_per_shard: 0,
        };
        assert!(check_multi(&sched, &chip)
            .iter()
            .any(|d| d.rule == Rule::AggregationArityMismatch));
    }

    #[test]
    fn zero_payload_warns_m03_but_verifies() {
        let shard = compile_plonky2(&Plonky2Instance::new(1 << 10, 135));
        let agg = sponge_graph(2);
        let sched = MultiChipSchedule {
            shards: vec![&shard, &shard],
            aggregation: Some(&agg),
            payload_bytes_per_shard: 0,
        };
        let diags = check_multi(&sched, &chip());
        let m03: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == Rule::InterconnectPayloadMissing)
            .collect();
        assert_eq!(m03.len(), 1);
        assert!(!m03[0].is_error());
        assert_multi_verified(&sched, &chip()); // warning only
    }

    #[test]
    fn single_shard_plan_needs_no_aggregation() {
        let shard = compile_plonky2(&Plonky2Instance::new(1 << 10, 135));
        let sched = MultiChipSchedule {
            shards: vec![&shard],
            aggregation: None,
            payload_bytes_per_shard: 0,
        };
        assert!(check_multi(&sched, &chip()).is_empty());
        assert_multi_verified(&sched, &chip());
    }

    #[test]
    fn oversized_ntt_is_rejected() {
        let mut g = Graph::new();
        g.push(
            Kernel::Ntt {
                log_n: MAX_NTT_LOG2 + 1,
                batch: 1,
                variant: NttVariant::ForwardNn,
                layout: Layout::PolyMajor,
            },
            vec![],
            "huge",
        );
        let diags = check(&g, &chip());
        assert!(diags.iter().any(|d| d.rule == Rule::NttExceedsTwoAdicity));
    }

    // ---- cost envelope & C-rules ----------------------------------------

    use crate::kernels::Reuse;

    #[test]
    fn envelope_brackets_are_ordered_and_traffic_positive() {
        let g = compile_plonky2(&Plonky2Instance::new(1 << 12, 135));
        let env = cost_envelope(&g, &chip());
        assert!(env.total_lower() > 0);
        assert!(env.total_lower() <= env.total_upper());
        for tag in CLASS_ORDER {
            let c = env.class(tag);
            assert!(c.cycles_lower <= c.cycles_upper, "{}", tag.name());
        }
        assert!(env.total_traffic_bytes() > 0);
        assert!(env.peak_live_bytes > 0);
        let nodes: usize = env.classes.iter().map(|c| c.nodes).sum();
        assert_eq!(nodes, g.len());
    }

    #[test]
    fn envelope_matches_between_fresh_and_shared_memory_models() {
        let g = compile_starky(&StarkyInstance::new(1 << 12, 16, 8));
        let chip = chip();
        let memory = MemoryModel::new(chip.hbm.clone());
        assert_eq!(cost_envelope(&g, &chip), cost_envelope_with(&g, &chip, &memory));
    }

    fn traffic_poly_op(bytes: u64) -> Kernel {
        Kernel::PolyOp {
            ops: 1,
            reuse: Reuse {
                ideal_bytes: bytes,
                working_set_bytes: 64,
                streaming_bytes: bytes,
            },
        }
    }

    #[test]
    fn cost_model_overflow_fires_c01() {
        let mut g = Graph::new();
        g.push(traffic_poly_op(1 << 60), vec![], "absurd traffic");
        let diags = check(&g, &chip());
        let hit = diags.iter().find(|d| d.rule == Rule::CostModelOverflow).unwrap();
        assert!(hit.is_error());
    }

    #[test]
    fn zero_cost_schedule_fires_c02() {
        let mut g = Graph::new();
        g.push(Kernel::Transpose { rows: 8, cols: 8 }, vec![], "lone transpose");
        let diags = check(&g, &chip());
        let hit = diags.iter().find(|d| d.rule == Rule::ZeroCostSchedule).unwrap();
        assert!(!hit.is_error());
        assert!(hit.node.is_none());
    }

    #[test]
    fn bandwidth_starved_schedule_fires_c03() {
        // Four kernels, each one op but megabytes of traffic: every node
        // is memory-bound even at peak bandwidth.
        let mut g = Graph::new();
        let mut prev = g.push(traffic_poly_op(1 << 24), vec![], "starved 0");
        for i in 1..4 {
            prev = g.push(traffic_poly_op(1 << 24), vec![prev], format!("starved {i}"));
        }
        let diags = check(&g, &chip());
        assert!(
            diags.iter().any(|d| d.rule == Rule::BandwidthStarvedSchedule),
            "{}",
            render_all(&diags)
        );
        // Real schedules are hash-compute dominated and must stay clean.
        let real = compile_plonky2(&Plonky2Instance::new(1 << 12, 135));
        assert!(!check(&real, &chip())
            .iter()
            .any(|d| d.rule == Rule::BandwidthStarvedSchedule));
    }

    #[test]
    fn liveness_exceeding_hbm_fires_c04() {
        // One producer writing ~16 TiB (beyond 4096 pads), read much later.
        let mut g = Graph::new();
        let producer = g.push(traffic_poly_op(1 << 44), vec![], "huge producer");
        g.push(Kernel::Sponge { num_perms: 4, parallel: false }, vec![producer], "consumer");
        let diags = check(&g, &chip());
        assert!(
            diags.iter().any(|d| d.rule == Rule::LivenessExceedsScratchpad),
            "{}",
            render_all(&diags)
        );
    }

    // ---- P-rules ---------------------------------------------------------

    fn sound_params() -> ProtocolParams {
        // Plonky2's standard configuration at 2^12 rows.
        ProtocolParams {
            log_rows: 12,
            rate_bits: 3,
            num_queries: 28,
            proof_of_work_bits: 16,
            final_poly_len: 8,
            num_challenges: 2,
            target_security_bits: 100,
            shards: 1,
            aggregation_arity: 0,
            field_bits: 64,
            extension_degree: 2,
            two_adicity: 32,
        }
    }

    #[test]
    fn sound_params_are_clean() {
        assert!(check_params(&sound_params()).is_empty());
        assert_params_valid(&sound_params());

        let sharded = ProtocolParams { shards: 4, aggregation_arity: 4, ..sound_params() };
        assert!(check_params(&sharded).is_empty());
    }

    #[test]
    fn security_shortfall_fires_p01_exactly_at_the_boundary() {
        // 28·3 + 16 = 100: exactly on target passes; one query fewer fails.
        let at = sound_params();
        assert_eq!(at.conjectured_security_bits(), 100);
        assert!(check_params(&at).is_empty());

        let short = ProtocolParams { num_queries: 27, ..sound_params() };
        let diags = check_params(&short);
        assert!(diags.iter().any(|d| d.rule == Rule::InsufficientSecurityBits));
        assert!(diags.iter().all(Diagnostic::is_error));

        let unchallenged = ProtocolParams { num_challenges: 0, ..sound_params() };
        assert!(check_params(&unchallenged)
            .iter()
            .any(|d| d.rule == Rule::InsufficientSecurityBits));
    }

    #[test]
    fn lde_overflow_fires_p02() {
        let p = ProtocolParams { log_rows: 30, rate_bits: 3, ..sound_params() };
        assert!(check_params(&p).iter().any(|d| d.rule == Rule::LdeExceedsTwoAdicity));
        let fits = ProtocolParams { log_rows: 29, rate_bits: 3, ..sound_params() };
        assert!(!check_params(&fits)
            .iter()
            .any(|d| d.rule == Rule::LdeExceedsTwoAdicity));
    }

    #[test]
    fn final_poly_shapes_fire_p03() {
        for (final_poly_len, log_rows) in [(0usize, 12usize), (6, 12), (1 << 12, 12), (8, 2)] {
            let p = ProtocolParams { final_poly_len, log_rows, ..sound_params() };
            assert!(
                check_params(&p).iter().any(|d| d.rule == Rule::FinalPolyInconsistent),
                "final_poly_len={final_poly_len} log_rows={log_rows}"
            );
        }
    }

    #[test]
    fn unsatisfiable_grind_fires_p04() {
        let p = ProtocolParams {
            proof_of_work_bits: 64,
            num_queries: 100,
            ..sound_params()
        };
        assert!(check_params(&p).iter().any(|d| d.rule == Rule::ExcessiveGrind));
    }

    #[test]
    fn shard_plan_mismatches_fire_p05() {
        for (shards, arity) in [(0usize, 0usize), (3, 3), (4, 3), (1, 1)] {
            let p = ProtocolParams { shards, aggregation_arity: arity, ..sound_params() };
            assert!(
                check_params(&p).iter().any(|d| d.rule == Rule::ShardAggregationIncompatible),
                "shards={shards} arity={arity}"
            );
        }
    }

    #[test]
    fn assert_params_valid_panics_with_rule_id() {
        let p = ProtocolParams { num_queries: 1, ..sound_params() };
        let result = std::panic::catch_unwind(|| assert_params_valid(&p));
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("P01"), "{msg}");
    }
}
