//! First-order area/power model reproducing Table 2.
//!
//! The paper synthesizes the RTL in ASAP 7 nm and models SRAMs with
//! FN-CACTI. Without EDA tools (see DESIGN.md §2.6), we use per-component
//! coefficients calibrated so the default configuration reproduces Table 2
//! exactly, and scale with the configuration knobs so the Fig. 10 design
//! points get consistent budgets.


use crate::arch::ChipConfig;

/// Area and power of one component.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentBudget {
    /// Component name (Table 2 row).
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in W.
    pub power_w: f64,
}

/// The full Table 2 breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaPowerBreakdown {
    /// Per-component rows.
    pub components: Vec<ComponentBudget>,
}

/// Table 2 calibration constants (default chip: 32 VSAs, 8 MB, 2 PHYs).
mod calib {
    /// mm² per VSA (21.3 / 32).
    pub const VSA_AREA: f64 = 21.3 / 32.0;
    /// W per VSA (58.0 / 32).
    pub const VSA_POWER: f64 = 58.0 / 32.0;
    /// mm² per MB of scratchpad (5.0 / 8).
    pub const SPAD_AREA_PER_MB: f64 = 5.0 / 8.0;
    /// W per MB of scratchpad (1.0 / 8).
    pub const SPAD_POWER_PER_MB: f64 = 1.0 / 8.0;
    /// Twiddle factor generator (fixed).
    pub const TWIDDLE_AREA: f64 = 0.8;
    pub const TWIDDLE_POWER: f64 = 2.6;
    /// Transpose buffer at b = 16.
    pub const TRANSPOSE_AREA: f64 = 0.9;
    pub const TRANSPOSE_POWER: f64 = 3.1;
    /// Two HBM2e PHYs at full bandwidth.
    pub const HBM_AREA: f64 = 29.8;
    pub const HBM_POWER: f64 = 31.7;
    /// Full-bandwidth channel count the HBM constants correspond to.
    pub const HBM_BASE_CHANNELS: f64 = 32.0;
}

impl AreaPowerBreakdown {
    /// Computes the breakdown for a chip configuration.
    pub fn for_chip(chip: &ChipConfig) -> Self {
        let mb = chip.scratchpad_bytes as f64 / (1 << 20) as f64;
        // VSA cost scales with PE count relative to the 12×12 baseline.
        let pe_scale = chip.pes_per_vsa() as f64 / 144.0;
        // Transpose buffer scales with b².
        let tb_scale = (chip.transpose_b as f64 / 16.0).powi(2);
        // HBM PHY cost scales with channel count.
        let hbm_scale = chip.hbm.channels as f64 / calib::HBM_BASE_CHANNELS;

        Self {
            components: vec![
                ComponentBudget {
                    name: "VSAs",
                    area_mm2: chip.num_vsas as f64 * calib::VSA_AREA * pe_scale,
                    power_w: chip.num_vsas as f64 * calib::VSA_POWER * pe_scale,
                },
                ComponentBudget {
                    name: "Scratchpad",
                    area_mm2: mb * calib::SPAD_AREA_PER_MB,
                    power_w: mb * calib::SPAD_POWER_PER_MB,
                },
                ComponentBudget {
                    name: "Twiddle factor generator",
                    area_mm2: calib::TWIDDLE_AREA,
                    power_w: calib::TWIDDLE_POWER,
                },
                ComponentBudget {
                    name: "Transpose buffer",
                    area_mm2: calib::TRANSPOSE_AREA * tb_scale,
                    power_w: calib::TRANSPOSE_POWER * tb_scale,
                },
                ComponentBudget {
                    name: "HBM PHYs",
                    area_mm2: calib::HBM_AREA * hbm_scale,
                    power_w: calib::HBM_POWER * hbm_scale,
                },
            ],
        }
    }

    /// Total chip area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total power in W.
    pub fn total_power_w(&self) -> f64 {
        self.components.iter().map(|c| c.power_w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chip_reproduces_table2() {
        let b = AreaPowerBreakdown::for_chip(&ChipConfig::default_chip());
        let expected = [
            ("VSAs", 21.3, 58.0),
            ("Scratchpad", 5.0, 1.0),
            ("Twiddle factor generator", 0.8, 2.6),
            ("Transpose buffer", 0.9, 3.1),
            ("HBM PHYs", 29.8, 31.7),
        ];
        for (row, (name, area, power)) in b.components.iter().zip(expected) {
            assert_eq!(row.name, name);
            assert!((row.area_mm2 - area).abs() < 0.05, "{name} area");
            assert!((row.power_w - power).abs() < 0.05, "{name} power");
        }
        assert!((b.total_area_mm2() - 57.8).abs() < 0.1);
        assert!((b.total_power_w() - 96.4).abs() < 0.1);
    }

    #[test]
    fn scaling_vsas_scales_their_budget() {
        let half = AreaPowerBreakdown::for_chip(&ChipConfig::default_chip().with_vsas(16));
        assert!((half.components[0].area_mm2 - 21.3 / 2.0).abs() < 0.05);
    }

    #[test]
    fn scaling_bandwidth_scales_phy_budget() {
        let half =
            AreaPowerBreakdown::for_chip(&ChipConfig::default_chip().with_bandwidth_scale(1, 2));
        assert!((half.components[4].power_w - 31.7 / 2.0).abs() < 0.05);
    }
}
