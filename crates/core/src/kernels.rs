//! The kernel IR: what the compiler emits and the mapping layer costs.


/// NTT direction/order variants (§5.1). All variants map to the same MDC
/// pipelines; coset and inverse variants reuse the otherwise-idle
/// inter-dimension twiddle PEs for their extra constant multiplications, so
/// they share one cost model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NttVariant {
    /// Forward, natural → natural.
    ForwardNn,
    /// Forward, natural → bit-reversed (the LDE commitment transform).
    ForwardNr,
    /// Inverse, natural → natural (value → coefficient).
    InverseNn,
    /// Coset forward (LDE evaluation domain).
    CosetForwardNr,
    /// Coset inverse.
    CosetInverseNn,
}

/// Memory layout of an NTT's operand (§5.1 "Data layouts").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Each polynomial contiguous.
    PolyMajor,
    /// Same position of all polynomials contiguous (transposed on the fly
    /// by the transpose buffer).
    IndexMajor,
}

/// How much on-chip reuse an element-wise kernel gets (decided by the
/// compiler's tiling analysis, §5.4).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Reuse {
    /// Bytes that must move from/to DRAM if nothing is reused.
    pub streaming_bytes: u64,
    /// Bytes that move if the tile working set fits on chip.
    pub ideal_bytes: u64,
    /// Working-set bytes a tile needs resident for ideal reuse.
    pub working_set_bytes: u64,
}

/// A single schedulable kernel instance.
#[derive(Clone, Debug, PartialEq)]
pub enum Kernel {
    /// A batch of same-size NTTs.
    Ntt {
        /// `log2` of each transform's length.
        log_n: usize,
        /// Number of transforms in the batch.
        batch: usize,
        /// Variant (cost-equivalent; recorded for fidelity/debugging).
        variant: NttVariant,
        /// Operand layout in DRAM.
        layout: Layout,
    },
    /// Merkle-tree construction (§5.3).
    MerkleTree {
        /// Number of leaves.
        num_leaves: usize,
        /// Field elements per leaf.
        leaf_len: usize,
    },
    /// Standalone sponge hashing (Fiat–Shamir, grinding).
    Sponge {
        /// Poseidon permutations to run.
        num_perms: usize,
        /// Whether the permutations are independent (grinding nonce search)
        /// or a serial duplex chain (Fiat–Shamir transcript).
        parallel: bool,
    },
    /// Element-wise polynomial computation in vector mode (§5.4).
    PolyOp {
        /// Total modular operations (mul-add pairs count as one chained op).
        ops: u64,
        /// Memory behaviour.
        reuse: Reuse,
    },
    /// Gate-constraint evaluation: element-wise math with pseudo-random
    /// short-run accesses bounded by the circuit width (§7.1).
    GateEval {
        /// Total modular operations.
        ops: u64,
        /// Bytes accessed (short runs).
        bytes: u64,
        /// Contiguous run length in bytes (≈ circuit width × 8).
        run_bytes: u32,
    },
    /// Quotient-chunk partial products (§5.4, Eqs. 1–2 and Fig. 6).
    PartialProducts {
        /// Length of the quotient vector.
        len: u64,
    },
    /// An explicit layout transform. Hidden by the transpose buffer: costs
    /// no dedicated time (§7.1) but is tracked for fidelity.
    Transpose {
        /// Matrix rows.
        rows: usize,
        /// Matrix columns.
        cols: usize,
    },
}

/// The three kernel classes of the paper's Fig. 8/9 breakdowns (plus the
/// hidden transpose class).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum KernelClassTag {
    /// NTT-family kernels.
    Ntt,
    /// Hash-family kernels (Merkle + other hashes).
    Hash,
    /// Polynomial computation (element-wise, gate eval, partial products).
    Poly,
    /// Layout transforms (overlapped; zero time in UniZK).
    Transpose,
}

impl KernelClassTag {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Ntt => "NTT",
            Self::Hash => "Hash",
            Self::Poly => "Poly",
            Self::Transpose => "Transpose",
        }
    }
}

impl Kernel {
    /// The kernel's class for breakdown statistics.
    pub fn class(&self) -> KernelClassTag {
        match self {
            Kernel::Ntt { .. } => KernelClassTag::Ntt,
            Kernel::MerkleTree { .. } | Kernel::Sponge { .. } => KernelClassTag::Hash,
            Kernel::PolyOp { .. } | Kernel::GateEval { .. } | Kernel::PartialProducts { .. } => {
                KernelClassTag::Poly
            }
            Kernel::Transpose { .. } => KernelClassTag::Transpose,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(
            Kernel::Ntt {
                log_n: 10,
                batch: 1,
                variant: NttVariant::ForwardNr,
                layout: Layout::PolyMajor
            }
            .class(),
            KernelClassTag::Ntt
        );
        assert_eq!(
            Kernel::MerkleTree { num_leaves: 8, leaf_len: 4 }.class(),
            KernelClassTag::Hash
        );
        assert_eq!(
            Kernel::PartialProducts { len: 100 }.class(),
            KernelClassTag::Poly
        );
        assert_eq!(
            Kernel::Transpose { rows: 4, cols: 4 }.class(),
            KernelClassTag::Transpose
        );
    }
}
