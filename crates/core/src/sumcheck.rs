//! The sum-check primitive (paper §8.1, Algorithm 2) — the "generality"
//! extension.
//!
//! Newer hash-based protocols (Spartan, Binius, Basefold) rest on the
//! sum-check protocol, whose main loop alternates a vector reduction with
//! an element-wise vector update. The paper argues a UniZK-style chip
//! handles both: the update maps to the vector mode like element-wise
//! polynomial ops, and the reduction rides the systolic accumulation links
//! used for matrix-multiply partial sums. This module provides the
//! functional reference, the mapping cost model, and a compiler helper so
//! the extension can be simulated and benchmarked like the core kernels.

use unizk_dram::AccessPattern;
use unizk_field::{Field, Goldilocks};

use crate::arch::ChipConfig;
use crate::graph::Graph;
use crate::kernels::{Kernel, Reuse};
use crate::mapping::KernelCost;

/// One round's pair `(y[i][0], y[i][1])`: the sums of the even- and
/// odd-indexed entries before folding with `r[i]`.
pub type RoundSums = [Goldilocks; 2];

/// Reference implementation of the paper's Algorithm 2.
///
/// # Panics
///
/// Panics if `a.len() != 2^r.len()`.
pub fn sumcheck_reference(a: &[Goldilocks], r: &[Goldilocks]) -> Vec<RoundSums> {
    assert_eq!(a.len(), 1usize << r.len(), "|A| must be 2^|r|");
    let mut vec = a.to_vec();
    let mut out = Vec::with_capacity(r.len());
    for &ri in r {
        let half = vec.len() / 2;
        let mut y0 = Goldilocks::ZERO;
        let mut y1 = Goldilocks::ZERO;
        for j in 0..half {
            y0 += vec[2 * j];
            y1 += vec[2 * j + 1];
        }
        out.push([y0, y1]);
        // A'[j] = A[2j] + r_i · (A[2j+1] − A[2j]).
        let mut next = Vec::with_capacity(half);
        for j in 0..half {
            next.push(vec[2 * j] + ri * (vec[2 * j + 1] - vec[2 * j]));
        }
        vec = next;
    }
    out
}

/// The claimed total sum `Σ_j A[j]` a verifier starts from.
pub fn total_sum(a: &[Goldilocks]) -> Goldilocks {
    a.iter().copied().sum()
}

/// Maps one full sum-check (all `log_n` rounds) onto the chip.
///
/// Per round over a length-`m` vector: `m` additions for the two sums
/// (accumulated along the systolic links, adding a `vsa_dim` drain
/// latency per round) and `m/2` chained mul-adds for the update, in vector
/// mode across all lanes. The vector streams from DRAM when it exceeds the
/// scratchpad and stays resident afterwards.
pub fn map_sumcheck(log_n: usize, chip: &ChipConfig) -> KernelCost {
    let lanes = (chip.num_vsas * chip.pes_per_vsa()) as u64;
    let mut compute = 0u64;
    let mut traffic = 0u64;
    let resident = chip.scratchpad_bytes as u64 / 2;
    for round in 0..log_n {
        let m = 1u64 << (log_n - round);
        // Reduction (m adds) + update (m/2 chained ops).
        compute += (m + m / 2).div_ceil(lanes);
        let bytes = m * 8;
        if bytes > resident {
            // Read this round's vector and write the folded half.
            traffic += bytes + bytes / 2;
        }
    }
    // Systolic drain for the per-round scalar sums.
    let fill = (log_n as u64) * (2 * chip.vsa_dim as u64);
    KernelCost {
        compute_cycles: compute.max(1),
        read_bytes: traffic * 2 / 3,
        write_bytes: traffic / 3,
        pattern: AccessPattern::Sequential,
        vsas_used: chip.num_vsas,
        fill_cycles: fill,
    }
}

/// Compiles a standalone sum-check of size `2^log_n` into a kernel graph
/// (expressed with the existing vector-mode kernels, as §8.1 suggests).
pub fn compile_sumcheck(log_n: usize) -> Graph {
    let mut g = Graph::new();
    for round in 0..log_n {
        let m = 1u64 << (log_n - round);
        let bytes = m * 8;
        g.push_seq(
            Kernel::PolyOp {
                ops: m + m / 2,
                reuse: Reuse {
                    streaming_bytes: bytes + bytes / 2,
                    ideal_bytes: if round == 0 { bytes } else { 0 },
                    working_set_bytes: bytes,
                },
            },
            format!("sum-check round {round}"),
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::TestRng as StdRng;
    use unizk_field::PrimeField64;

    fn random_instance(log_n: usize, seed: u64) -> (Vec<Goldilocks>, Vec<Goldilocks>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..1 << log_n).map(|_| Goldilocks::random(&mut rng)).collect();
        let r = (0..log_n).map(|_| Goldilocks::random(&mut rng)).collect();
        (a, r)
    }

    #[test]
    fn round_zero_sums_to_total() {
        let (a, r) = random_instance(10, 1);
        let ys = sumcheck_reference(&a, &r);
        assert_eq!(ys[0][0] + ys[0][1], total_sum(&a));
    }

    #[test]
    fn verifier_recurrence_holds() {
        // The sum-check soundness identity: each round's claimed sum must
        // equal the previous round's linear polynomial evaluated at r_i:
        // y_{i+1}[0] + y_{i+1}[1] = y_i[0] + r_i·(y_i[1] − y_i[0]).
        let (a, r) = random_instance(12, 2);
        let ys = sumcheck_reference(&a, &r);
        for i in 0..r.len() - 1 {
            let folded = ys[i][0] + r[i] * (ys[i][1] - ys[i][0]);
            assert_eq!(ys[i + 1][0] + ys[i + 1][1], folded, "round {i}");
        }
    }

    #[test]
    fn tampered_vector_breaks_recurrence() {
        let (mut a, r) = random_instance(8, 3);
        let honest = sumcheck_reference(&a, &r);
        a[5] += Goldilocks::ONE;
        let tampered = sumcheck_reference(&a, &r);
        assert_ne!(honest, tampered);
    }

    #[test]
    #[should_panic(expected = "2^|r|")]
    fn mismatched_sizes_rejected() {
        let _ = sumcheck_reference(&[Goldilocks::ZERO; 8], &[Goldilocks::ZERO; 2]);
    }

    #[test]
    fn mapping_costs_scale_with_size() {
        let chip = ChipConfig::default_chip();
        let small = map_sumcheck(16, &chip);
        let large = map_sumcheck(20, &chip);
        assert!(large.compute_cycles > 8 * small.compute_cycles);
    }

    #[test]
    fn large_instances_generate_traffic_small_stay_resident() {
        let chip = ChipConfig::default_chip();
        // 2^18 × 8 B = 2 MB < 4 MB: fully resident.
        assert_eq!(map_sumcheck(18, &chip).total_bytes(), 0);
        // 2^24 × 8 B = 128 MB: streams.
        assert!(map_sumcheck(24, &chip).total_bytes() > 0);
    }

    #[test]
    fn compiled_graph_simulates() {
        let chip = ChipConfig::default_chip();
        let report = crate::sim::Simulator::new(chip).run(&compile_sumcheck(20));
        assert!(report.total_cycles > 0);
        assert_eq!(report.classes.len(), 1); // all vector-mode poly kernels
    }
}
