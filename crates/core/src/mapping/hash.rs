//! Poseidon and Merkle mapping (paper §5.2–5.3 and Fig. 5).
//!
//! One Poseidon permutation crosses the VSA in passes, each with an
//! initiation interval of one state per cycle:
//!
//! * 8 full rounds, each on a folded 12×8 region (Fig. 5a);
//! * 1 pre-partial round on the full 12×12 array;
//! * 22 partial rounds in groups of four on 12×3 regions (Fig. 5b) — 6
//!   passes, 145-cycle latency per group but II = 1.
//!
//! Steady-state cost: `8 + 1 + 6 = 15` VSA-cycles per permutation.

use unizk_dram::AccessPattern;
use unizk_hash::poseidon::{FULL_ROUNDS, PARTIAL_ROUNDS};
use unizk_hash::Digest;

use crate::arch::ChipConfig;
use crate::mapping::KernelCost;

/// VSA-cycles per Poseidon permutation at steady state.
pub fn cycles_per_permutation() -> u64 {
    let partial_passes = PARTIAL_ROUNDS.div_ceil(4) as u64;
    FULL_ROUNDS as u64 + 1 + partial_passes
}

/// Latency of one permutation through the pipeline (fill cost): the paper
/// gives 145 cycles for four partial rounds; full rounds add their region
/// depth.
pub fn permutation_latency() -> u64 {
    let partial = PARTIAL_ROUNDS.div_ceil(4) as u64 * 145;
    let full = FULL_ROUNDS as u64 * 20;
    partial + full
}

/// Merkle-tree construction: all leaves then interior levels, parallel
/// across VSAs (§5.3: same-level hashes are independent).
pub fn map_merkle(num_leaves: usize, leaf_len: usize, chip: &ChipConfig) -> KernelCost {
    let leaf_perms = num_leaves as u64 * (leaf_len as u64).div_ceil(8).max(1);
    let interior_perms = num_leaves.saturating_sub(1) as u64;
    let perms = leaf_perms + interior_perms;

    let compute_cycles = (perms * cycles_per_permutation()).div_ceil(chip.num_vsas as u64);
    // Leaves are read once; every node digest is written; interior levels
    // re-read children (level-order streaming keeps them on chip when a
    // subtree fits — approximate with write-once + leaf read).
    let read_bytes = num_leaves as u64 * leaf_len as u64 * 8;
    let write_bytes = (2 * num_leaves as u64 - 1) * Digest::<unizk_field::Goldilocks>::BYTES as u64;

    KernelCost {
        compute_cycles,
        read_bytes,
        write_bytes,
        pattern: AccessPattern::Sequential,
        vsas_used: chip.num_vsas,
        fill_cycles: permutation_latency(),
    }
}

/// Standalone sponge hashing. Fiat–Shamir transcripts are a serial duplex
/// chain — each permutation pays full latency on one VSA. Grinding nonce
/// searches are independent permutations and parallelize across all VSAs
/// at the steady-state initiation interval.
pub fn map_sponge(num_perms: usize, parallel: bool, chip: &ChipConfig) -> KernelCost {
    let (compute_cycles, vsas_used) = if parallel {
        (
            (num_perms as u64 * cycles_per_permutation()).div_ceil(chip.num_vsas as u64),
            chip.num_vsas,
        )
    } else {
        (num_perms as u64 * permutation_latency(), 1)
    };
    KernelCost {
        compute_cycles,
        read_bytes: num_perms as u64 * 96, // one state in
        write_bytes: num_perms as u64 * 32,
        pattern: AccessPattern::Sequential,
        vsas_used,
        fill_cycles: if parallel { permutation_latency() } else { 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_cycles_per_permutation() {
        assert_eq!(cycles_per_permutation(), 15);
    }

    #[test]
    fn merkle_perm_count_matches_functional_model() {
        // Same formula as unizk_hash::MerkleTree::permutation_cost.
        let chip = ChipConfig::default_chip();
        let cost = map_merkle(4, 135, &chip);
        let perms = unizk_hash::MerkleTree::permutation_cost(&[135; 4]) as u64;
        assert_eq!(
            cost.compute_cycles,
            (perms * 15).div_ceil(chip.num_vsas as u64)
        );
    }

    #[test]
    fn merkle_scales_with_vsas() {
        let full = map_merkle(1 << 16, 135, &ChipConfig::default_chip());
        let quarter = map_merkle(1 << 16, 135, &ChipConfig::default_chip().with_vsas(8));
        let ratio = quarter.compute_cycles as f64 / full.compute_cycles as f64;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    #[allow(clippy::cast_possible_truncation)] // cycle counts are non-negative
    fn merkle_is_compute_bound_at_paper_scale() {
        // The paper's Table 4: hash kernels are compute-bound (~96% VSA
        // util, ~21% memory util).
        let chip = ChipConfig::default_chip();
        let cost = map_merkle(1 << 23, 135, &chip);
        let mem_cycles =
            (cost.total_bytes() as f64 / chip.hbm.peak_bytes_per_cycle()) as u64;
        assert!(cost.compute_cycles > 3 * mem_cycles);
    }

    #[test]
    fn serial_sponge_is_latency_bound() {
        let chip = ChipConfig::default_chip();
        let cost = map_sponge(10, false, &chip);
        assert_eq!(cost.vsas_used, 1);
        assert!(cost.compute_cycles >= 10 * 145);
    }

    #[test]
    fn parallel_sponge_uses_all_vsas() {
        let chip = ChipConfig::default_chip();
        let serial = map_sponge(1 << 15, false, &chip);
        let par = map_sponge(1 << 15, true, &chip);
        assert_eq!(par.vsas_used, chip.num_vsas);
        assert!(par.compute_cycles * 100 < serial.compute_cycles);
    }
}
