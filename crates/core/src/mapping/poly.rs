//! Polynomial-computation mappings (paper §5.4 and Fig. 6).
//!
//! Element-wise kernels run in the VSA's vector mode: every PE is a vector
//! lane executing one chained modular operation per cycle. Memory traffic
//! depends on the compiler's tiling/replacement analysis: when the working
//! set fits in the scratchpad the ideal traffic applies; otherwise traffic
//! degrades toward full streaming.

use unizk_dram::AccessPattern;

use crate::arch::ChipConfig;
use crate::kernels::Reuse;
use crate::mapping::KernelCost;

fn lanes(chip: &ChipConfig) -> u64 {
    (chip.num_vsas * chip.pes_per_vsa()) as u64
}

/// Element-wise vector computation with compiler-managed reuse.
#[allow(clippy::cast_possible_truncation)] // traffic is capped at streaming_bytes
pub fn map_poly_op(ops: u64, reuse: &Reuse, chip: &ChipConfig) -> KernelCost {
    let compute_cycles = ops.div_ceil(lanes(chip)).max(1);
    // Tiling analysis: scale traffic between ideal and streaming by how
    // badly the working set overflows the (half, due to double buffering)
    // scratchpad.
    let capacity = (chip.scratchpad_bytes / 2) as f64;
    let overflow = (reuse.working_set_bytes as f64 / capacity).max(1.0);
    let bytes = ((reuse.ideal_bytes as f64 * overflow) as u64).min(reuse.streaming_bytes);
    // Reads dominate element-wise chains; outputs are usually consumed by
    // the next kernel. Attribute 3/4 to reads.
    KernelCost {
        compute_cycles,
        read_bytes: bytes * 3 / 4,
        write_bytes: bytes / 4,
        pattern: AccessPattern::Sequential,
        vsas_used: chip.num_vsas,
        fill_cycles: chip.vsa_dim as u64 * 2,
    }
}

/// Gate-constraint evaluation: vector math plus pseudo-random short-run
/// accesses whose extent is bounded by the circuit width (§7.1 explains
/// why this underutilizes bandwidth).
pub fn map_gate_eval(ops: u64, bytes: u64, run_bytes: u32, chip: &ChipConfig) -> KernelCost {
    let compute_cycles = ops.div_ceil(lanes(chip)).max(1);
    KernelCost {
        compute_cycles,
        read_bytes: bytes * 3 / 4,
        write_bytes: bytes / 4,
        pattern: AccessPattern::ShortRuns {
            run: (run_bytes / 64).max(1),
        },
        vsas_used: chip.num_vsas,
        fill_cycles: chip.vsa_dim as u64 * 2,
    }
}

/// Quotient-chunk partial products (Fig. 6): chunk products are fully
/// parallel (each PE accumulates 16 quotients into 2 chunks); the running
/// product chain is pipelined across neighbor PEs in three steps, adding a
/// propagation latency proportional to the PE-group count.
pub fn map_partial_products(len: u64, chip: &ChipConfig) -> KernelCost {
    // ~3 passes over the data: quotient chunk products, local partials,
    // neighbor propagation + final multiply.
    let compute_cycles = (3 * len).div_ceil(lanes(chip)).max(1);
    // Neighbor-chain propagation: one hop per PE in a VSA column path.
    let chain_latency = (chip.vsa_dim * chip.vsa_dim) as u64;
    KernelCost {
        compute_cycles,
        read_bytes: 2 * len * 8, // f and g streams
        write_bytes: len,        // PP outputs (len/8 values × 8 B)
        pattern: AccessPattern::Sequential,
        vsas_used: chip.num_vsas,
        fill_cycles: chain_latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_reuse() -> Reuse {
        Reuse {
            streaming_bytes: 1 << 24,
            ideal_bytes: 1 << 21,
            working_set_bytes: 1 << 20, // 1 MB, fits in 4 MB half-pad
        }
    }

    #[test]
    fn fitting_working_set_gets_ideal_traffic() {
        let chip = ChipConfig::default_chip();
        let cost = map_poly_op(1 << 20, &small_reuse(), &chip);
        assert_eq!(cost.total_bytes(), 1 << 21);
    }

    #[test]
    fn overflowing_working_set_degrades_toward_streaming() {
        let chip = ChipConfig::default_chip().with_scratchpad_mb(1);
        let reuse = Reuse {
            streaming_bytes: 1 << 24,
            ideal_bytes: 1 << 21,
            working_set_bytes: 4 << 20, // 4 MB >> 0.5 MB half-pad
        };
        let cost = map_poly_op(1 << 20, &reuse, &chip);
        assert!(cost.total_bytes() > 1 << 21);
        assert!(cost.total_bytes() <= 1 << 24);
    }

    #[test]
    fn traffic_never_exceeds_streaming() {
        let chip = ChipConfig::default_chip().with_scratchpad_mb(1);
        let reuse = Reuse {
            streaming_bytes: 1 << 22,
            ideal_bytes: 1 << 21,
            working_set_bytes: 1 << 30,
        };
        let cost = map_poly_op(1 << 20, &reuse, &chip);
        assert_eq!(cost.total_bytes(), (1u64 << 22) / 4 * 3 + (1u64 << 22) / 4);
    }

    #[test]
    fn compute_uses_all_lanes() {
        let chip = ChipConfig::default_chip();
        let cost = map_poly_op(4608 * 100, &small_reuse(), &chip);
        assert_eq!(cost.compute_cycles, 100);
    }

    #[test]
    fn gate_eval_pattern_tracks_width() {
        let chip = ChipConfig::default_chip();
        // 135-wide rows: 1080 B runs = 16 bursts.
        let cost = map_gate_eval(1 << 20, 1 << 24, 1080, &chip);
        assert_eq!(cost.pattern, AccessPattern::ShortRuns { run: 16 });
        // Narrow parameter (paper: "could be as low as 2" elements).
        let narrow = map_gate_eval(1 << 20, 1 << 24, 16, &chip);
        assert_eq!(narrow.pattern, AccessPattern::ShortRuns { run: 1 });
    }

    #[test]
    fn partial_products_pay_chain_latency() {
        let chip = ChipConfig::default_chip();
        let cost = map_partial_products(1 << 16, &chip);
        assert_eq!(cost.fill_cycles, 144);
        assert!(cost.compute_cycles > 0);
    }
}
