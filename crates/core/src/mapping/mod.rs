//! Kernel mapping strategies (paper §5): each maps one [`Kernel`] onto the
//! VSA hardware and derives its cost — compute cycles, memory traffic, and
//! access pattern — from the pipeline structure the paper describes.

pub mod hash;
pub mod ntt;
pub mod poly;

use unizk_dram::AccessPattern;

use crate::arch::ChipConfig;
use crate::kernels::Kernel;

/// The cost of one kernel instance on the chip.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct KernelCost {
    /// Cycles the allocated VSAs are busy (excluding memory stalls).
    pub compute_cycles: u64,
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
    /// DRAM access pattern (drives achieved bandwidth).
    pub pattern: AccessPattern,
    /// VSAs the mapping occupies.
    pub vsas_used: usize,
    /// One-time pipeline fill/drain overhead in cycles.
    pub fill_cycles: u64,
}

impl KernelCost {
    /// Total DRAM traffic.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// Maps a kernel onto the chip, returning its cost.
pub fn map_kernel(kernel: &Kernel, chip: &ChipConfig) -> KernelCost {
    match kernel {
        Kernel::Ntt { log_n, batch, layout, .. } => ntt::map_ntt(*log_n, *batch, *layout, chip),
        Kernel::MerkleTree { num_leaves, leaf_len } => {
            hash::map_merkle(*num_leaves, *leaf_len, chip)
        }
        Kernel::Sponge { num_perms, parallel } => hash::map_sponge(*num_perms, *parallel, chip),
        Kernel::PolyOp { ops, reuse } => poly::map_poly_op(*ops, reuse, chip),
        Kernel::GateEval { ops, bytes, run_bytes } => {
            poly::map_gate_eval(*ops, *bytes, *run_bytes, chip)
        }
        Kernel::PartialProducts { len } => poly::map_partial_products(*len, chip),
        Kernel::Transpose { .. } => KernelCost {
            // Handled by the transpose buffer in parallel with a
            // neighbouring kernel (paper §7.1): no dedicated time.
            compute_cycles: 0,
            read_bytes: 0,
            write_bytes: 0,
            pattern: AccessPattern::Sequential,
            vsas_used: 0,
            fill_cycles: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Layout, NttVariant};

    #[test]
    fn transpose_is_free() {
        let cost = map_kernel(
            &Kernel::Transpose { rows: 1024, cols: 135 },
            &ChipConfig::default_chip(),
        );
        assert_eq!(cost.compute_cycles, 0);
        assert_eq!(cost.total_bytes(), 0);
    }

    #[test]
    fn every_kernel_maps() {
        let chip = ChipConfig::default_chip();
        let kernels = [
            Kernel::Ntt {
                log_n: 13,
                batch: 4,
                variant: NttVariant::ForwardNr,
                layout: Layout::PolyMajor,
            },
            Kernel::MerkleTree { num_leaves: 1 << 13, leaf_len: 135 },
            Kernel::Sponge { num_perms: 100, parallel: false },
            Kernel::PolyOp {
                ops: 1 << 20,
                reuse: crate::kernels::Reuse {
                    streaming_bytes: 1 << 23,
                    ideal_bytes: 1 << 21,
                    working_set_bytes: 1 << 20,
                },
            },
            Kernel::GateEval { ops: 1 << 20, bytes: 1 << 23, run_bytes: 1080 },
            Kernel::PartialProducts { len: 1 << 16 },
        ];
        for k in kernels {
            let c = map_kernel(&k, &chip);
            assert!(c.compute_cycles > 0, "{k:?}");
            assert!(c.vsas_used > 0, "{k:?}");
        }
    }
}
