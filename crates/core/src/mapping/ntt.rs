//! NTT mapping (paper §5.1 and Fig. 4).
//!
//! A variable-size NTT is decomposed into `k = ⌈log2(N)/5⌉` dimensions of
//! fixed size-2^5 transforms (SAM-style). Each 12-PE VSA row is split into
//! two 6-PE MDC pipelines; a pass chains the two pipelines through the
//! transpose buffer to cover two decomposed dimensions (Fig. 4b), so a
//! size-N NTT needs `⌈k/2⌉` passes over the data. Each pipeline ingests 2
//! elements per cycle.

use unizk_dram::AccessPattern;
use unizk_ntt::NttDecomposition;

use crate::arch::ChipConfig;
use crate::kernels::Layout;
use crate::mapping::KernelCost;

/// Cost of a batch of `batch` size-`2^log_n` NTTs.
pub fn map_ntt(log_n: usize, batch: usize, layout: Layout, chip: &ChipConfig) -> KernelCost {
    let n = 1u64 << log_n;
    let total_elems = n * batch as u64;
    let plan = NttDecomposition::plan(log_n, chip.ntt_pipeline_log2);
    let dims = plan.num_dims();
    // Two chained pipelines per row cover two dimensions per pass.
    let passes = dims.div_ceil(2) as u64;

    // Ingest rate: one pipeline chain per row, 2 elements/cycle each.
    let rows_total = (chip.num_vsas * chip.vsa_dim) as u64;
    let elems_per_cycle = rows_total * ChipConfig::NTT_PIPELINE_THROUGHPUT as u64;
    let compute_cycles = (passes * total_elems).div_ceil(elems_per_cycle);

    // Pipeline fill: ~2 pipelines × (log(small) + 1) stages × small-NTT
    // buffering, per pass.
    let small = 1u64 << chip.ntt_pipeline_log2;
    let fill_cycles = passes * 2 * (chip.ntt_pipeline_log2 as u64 + 1) * small;

    // Memory traffic: if a whole transform (×8 B, double-buffered) fits in
    // the scratchpad, intermediate passes stay on chip and the data makes
    // one DRAM round trip; otherwise every pass round-trips.
    let elem_bytes = 8u64;
    let poly_bytes = n * elem_bytes;
    let round_trips = if poly_bytes * 2 <= chip.scratchpad_bytes as u64 {
        1
    } else {
        passes
    };
    let moved = total_elems * elem_bytes * round_trips;

    // Poly-major operands stream sequentially; index-major operands go
    // through the b×b transpose buffer, producing runs of b elements
    // (§5.1: b = 16 keeps accesses "sufficiently consecutive").
    let pattern = match layout {
        Layout::PolyMajor => AccessPattern::Sequential,
        Layout::IndexMajor => AccessPattern::ShortRuns {
            run: u32::try_from(((chip.transpose_b as u64 * elem_bytes) / 64).max(1))
                .expect("transpose run length fits u32"),
        },
    };

    KernelCost {
        compute_cycles,
        read_bytes: moved,
        write_bytes: moved,
        pattern,
        vsas_used: chip.num_vsas,
        fill_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_matches_structure() {
        let chip = ChipConfig::default_chip();
        // 2^20 elements, k = 4 dims, 2 passes; 32 VSAs × 12 rows × 2/cycle
        // = 768 elems/cycle.
        let cost = map_ntt(20, 1, Layout::PolyMajor, &chip);
        let expect = (2 * (1u64 << 20)).div_ceil(768);
        assert_eq!(cost.compute_cycles, expect);
    }

    #[test]
    fn small_ntts_fit_on_chip() {
        let chip = ChipConfig::default_chip();
        // 2^13 × 8 B = 64 KB << 8 MB: one round trip.
        let cost = map_ntt(13, 1, Layout::PolyMajor, &chip);
        assert_eq!(cost.read_bytes, (1 << 13) * 8);
    }

    #[test]
    fn huge_ntts_round_trip_per_pass() {
        let chip = ChipConfig::default_chip().with_scratchpad_mb(1);
        // 2^20 × 8 B = 8 MB > 1 MB/2: passes× traffic.
        let cost = map_ntt(20, 1, Layout::PolyMajor, &chip);
        assert_eq!(cost.read_bytes, 2 * (1u64 << 20) * 8);
    }

    #[test]
    fn batch_scales_linearly() {
        let chip = ChipConfig::default_chip();
        let one = map_ntt(12, 1, Layout::PolyMajor, &chip);
        let many = map_ntt(12, 135, Layout::PolyMajor, &chip);
        assert!(many.compute_cycles >= 100 * one.compute_cycles);
    }

    #[test]
    fn index_major_uses_short_runs() {
        let chip = ChipConfig::default_chip();
        let cost = map_ntt(13, 4, Layout::IndexMajor, &chip);
        assert_eq!(cost.pattern, AccessPattern::ShortRuns { run: 2 });
    }

    #[test]
    fn more_vsas_speed_up_compute() {
        let full = map_ntt(18, 8, Layout::PolyMajor, &ChipConfig::default_chip());
        let half = map_ntt(
            18,
            8,
            Layout::PolyMajor,
            &ChipConfig::default_chip().with_vsas(16),
        );
        assert!(half.compute_cycles > full.compute_cycles);
    }
}
