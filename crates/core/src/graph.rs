//! The static computation graph the compiler emits (paper §5.5, Fig. 7).

use std::fmt;

use crate::kernels::Kernel;

/// Index of a node in its graph.
pub type NodeId = usize;

/// Why a node could not be inserted into a [`Graph`].
///
/// UniZK schedules statically, so a graph is built in topological
/// (insertion) order: every dependency must name an already-inserted node,
/// exactly once. Violations are construction bugs in the compiler
/// front-end, not runtime conditions — [`Graph::push`] panics on them,
/// while [`Graph::try_push`] surfaces them to callers that assemble graphs
/// from untrusted descriptions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A dependency names a node at or beyond the inserting node's id —
    /// it is not yet inserted (forward or self reference).
    DepOutOfRange {
        /// The id the offending node would receive.
        node: NodeId,
        /// The out-of-range dependency.
        dep: NodeId,
    },
    /// The same dependency appears more than once in one node's dep list.
    DepDuplicate {
        /// The id the offending node would receive.
        node: NodeId,
        /// The repeated dependency.
        dep: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DepOutOfRange { node, dep } => {
                write!(f, "dependency {dep} not yet inserted (node {node})")
            }
            GraphError::DepDuplicate { node, dep } => {
                write!(f, "dependency {dep} listed twice (node {node})")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// One kernel instance with its dependencies.
#[derive(Clone, Debug)]
pub struct Node {
    /// The kernel to execute.
    pub kernel: Kernel,
    /// Nodes that must complete first.
    pub deps: Vec<NodeId>,
    /// Human-readable label ("Wires Commitment / LDE", …) for reports.
    pub label: String,
}

/// A static computation graph. UniZK schedules statically: the kernels to
/// execute are all known before execution (§5).
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a kernel with dependencies; returns its id or why the
    /// dependency list is ill-formed (out of range or duplicated).
    pub fn try_push(
        &mut self,
        kernel: Kernel,
        deps: Vec<NodeId>,
        label: impl Into<String>,
    ) -> Result<NodeId, GraphError> {
        let id = self.nodes.len();
        for (i, &d) in deps.iter().enumerate() {
            if d >= id {
                return Err(GraphError::DepOutOfRange { node: id, dep: d });
            }
            if deps[..i].contains(&d) {
                return Err(GraphError::DepDuplicate { node: id, dep: d });
            }
        }
        self.nodes.push(Node {
            kernel,
            deps,
            label: label.into(),
        });
        Ok(id)
    }

    /// Appends a kernel with dependencies; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is not yet in the graph (insertion order
    /// must be topological) or is listed twice.
    pub fn push(&mut self, kernel: Kernel, deps: Vec<NodeId>, label: impl Into<String>) -> NodeId {
        self.try_push(kernel, deps, label)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Appends a kernel depending on the previous node (chain style).
    pub fn push_seq(&mut self, kernel: Kernel, label: impl Into<String>) -> NodeId {
        let deps = if self.nodes.is_empty() {
            vec![]
        } else {
            vec![self.nodes.len() - 1]
        };
        self.push(kernel, deps, label)
    }

    /// The nodes in insertion (topological) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds a graph from raw nodes **without** validating dependency
    /// lists. Exists so analysis tooling (the `unizk-analyze` mutation
    /// corpus) can construct deliberately ill-formed graphs that
    /// [`Graph::push`] would reject; everything else should go through
    /// [`Graph::push`]/[`Graph::try_push`].
    pub fn from_nodes_unchecked(nodes: Vec<Node>) -> Self {
        Self { nodes }
    }

    /// Merges another graph after this one, chaining its first node to this
    /// graph's last node and offsetting its internal dependencies.
    ///
    /// # Panics
    ///
    /// Panics if re-indexing a dependency would overflow [`NodeId`].
    pub fn append(&mut self, other: Graph) {
        let offset = self.nodes.len();
        for (i, mut node) in other.nodes.into_iter().enumerate() {
            for d in node.deps.iter_mut() {
                *d = d
                    .checked_add(offset)
                    .unwrap_or_else(|| panic!("dependency {d} + offset {offset} overflows NodeId"));
            }
            if i == 0 && offset > 0 && node.deps.is_empty() {
                node.deps.push(offset - 1);
            }
            self.nodes.push(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sponge(n: usize) -> Kernel {
        Kernel::Sponge { num_perms: n, parallel: false }
    }

    #[test]
    fn push_and_chain() {
        let mut g = Graph::new();
        let a = g.push(sponge(1), vec![], "a");
        let b = g.push_seq(sponge(2), "b");
        assert_eq!(g.len(), 2);
        assert_eq!(g.nodes()[b].deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "not yet inserted")]
    fn forward_deps_rejected() {
        let mut g = Graph::new();
        g.push(sponge(1), vec![5], "bad");
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_deps_rejected() {
        let mut g = Graph::new();
        g.push(sponge(1), vec![], "a");
        g.push(sponge(2), vec![], "b");
        g.push(sponge(3), vec![0, 1, 0], "bad");
    }

    #[test]
    fn try_push_reports_the_offense() {
        let mut g = Graph::new();
        g.push(sponge(1), vec![], "a");
        assert_eq!(
            g.try_push(sponge(2), vec![1], "forward"),
            Err(GraphError::DepOutOfRange { node: 1, dep: 1 })
        );
        assert_eq!(
            g.try_push(sponge(2), vec![0, 0], "dup"),
            Err(GraphError::DepDuplicate { node: 1, dep: 0 })
        );
        // Failed pushes leave the graph untouched.
        assert_eq!(g.len(), 1);
        assert_eq!(g.try_push(sponge(2), vec![0], "ok"), Ok(1));
    }

    #[test]
    fn append_offsets_deps() {
        let mut g1 = Graph::new();
        g1.push(sponge(1), vec![], "a");
        let mut g2 = Graph::new();
        g2.push(sponge(2), vec![], "b");
        g2.push_seq(sponge(3), "c");
        g1.append(g2);
        assert_eq!(g1.len(), 3);
        assert_eq!(g1.nodes()[1].deps, vec![0]); // chained across graphs
        assert_eq!(g1.nodes()[2].deps, vec![1]);
    }

    #[test]
    fn unchecked_construction_bypasses_validation() {
        let node = Node {
            kernel: sponge(1),
            deps: vec![7],
            label: "dangling".into(),
        };
        let g = Graph::from_nodes_unchecked(vec![node]);
        assert_eq!(g.nodes()[0].deps, vec![7]);
    }
}
