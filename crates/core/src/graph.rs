//! The static computation graph the compiler emits (paper §5.5, Fig. 7).


use crate::kernels::Kernel;

/// Index of a node in its graph.
pub type NodeId = usize;

/// One kernel instance with its dependencies.
#[derive(Clone, Debug)]
pub struct Node {
    /// The kernel to execute.
    pub kernel: Kernel,
    /// Nodes that must complete first.
    pub deps: Vec<NodeId>,
    /// Human-readable label ("Wires Commitment / LDE", …) for reports.
    pub label: String,
}

/// A static computation graph. UniZK schedules statically: the kernels to
/// execute are all known before execution (§5).
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a kernel with dependencies; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is not yet in the graph (insertion order
    /// must be topological).
    pub fn push(&mut self, kernel: Kernel, deps: Vec<NodeId>, label: impl Into<String>) -> NodeId {
        let id = self.nodes.len();
        for &d in &deps {
            assert!(d < id, "dependency {d} not yet inserted (node {id})");
        }
        self.nodes.push(Node {
            kernel,
            deps,
            label: label.into(),
        });
        id
    }

    /// Appends a kernel depending on the previous node (chain style).
    pub fn push_seq(&mut self, kernel: Kernel, label: impl Into<String>) -> NodeId {
        let deps = if self.nodes.is_empty() {
            vec![]
        } else {
            vec![self.nodes.len() - 1]
        };
        self.push(kernel, deps, label)
    }

    /// The nodes in insertion (topological) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Merges another graph after this one, chaining its first node to this
    /// graph's last node and offsetting its internal dependencies.
    pub fn append(&mut self, other: Graph) {
        let offset = self.nodes.len();
        for (i, mut node) in other.nodes.into_iter().enumerate() {
            for d in node.deps.iter_mut() {
                *d += offset;
            }
            if i == 0 && offset > 0 && node.deps.is_empty() {
                node.deps.push(offset - 1);
            }
            self.nodes.push(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sponge(n: usize) -> Kernel {
        Kernel::Sponge { num_perms: n, parallel: false }
    }

    #[test]
    fn push_and_chain() {
        let mut g = Graph::new();
        let a = g.push(sponge(1), vec![], "a");
        let b = g.push_seq(sponge(2), "b");
        assert_eq!(g.len(), 2);
        assert_eq!(g.nodes()[b].deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "not yet inserted")]
    fn forward_deps_rejected() {
        let mut g = Graph::new();
        g.push(sponge(1), vec![5], "bad");
    }

    #[test]
    fn append_offsets_deps() {
        let mut g1 = Graph::new();
        g1.push(sponge(1), vec![], "a");
        let mut g2 = Graph::new();
        g2.push(sponge(2), vec![], "b");
        g2.push_seq(sponge(3), "c");
        g1.append(g2);
        assert_eq!(g1.len(), 3);
        assert_eq!(g1.nodes()[1].deps, vec![0]); // chained across graphs
        assert_eq!(g1.nodes()[2].deps, vec![1]);
    }
}
