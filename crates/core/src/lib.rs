//! The UniZK accelerator model — the paper's primary contribution.
//!
//! UniZK (ASPLOS'25) is a unified ZKP accelerator: homogeneous
//! vector-systolic arrays (VSAs) of modular-arithmetic PEs, a double-
//! buffered scratchpad, a transpose buffer, a twiddle factor generator, and
//! two HBM2e PHYs (Fig. 3). Rather than dedicated per-kernel units, *kernel
//! mapping strategies* (§5) realize NTTs, Poseidon hashing, Merkle trees,
//! element-wise polynomial ops, and partial products on the same hardware.
//!
//! This crate reproduces the paper's evaluation vehicle — a cycle-level
//! simulator in the style of the published artifact:
//!
//! * [`arch`] — the hardware configuration ([`ChipConfig`]) and structural
//!   constants of the VSA.
//! * [`mapping`] — one cost model per kernel mapping strategy, each
//!   producing compute cycles, memory traffic, and an access pattern from
//!   the §5 pipeline structures.
//! * [`graph`] / [`compiler`] — the static computation graph (Fig. 7) and
//!   the front-end that expands a protocol instance into kernel nodes.
//! * [`sim`] — the static scheduler: double-buffered compute/memory
//!   overlap, per-kernel-class cycle and utilization statistics (the
//!   numbers behind Tables 3–4 and Figs. 8–10).
//! * [`analyze`] — the static schedule verifier: a lint pass over compiled
//!   kernel graphs that rejects ill-formed schedules (dangling deps,
//!   order mismatches, resource overcommit) before they are simulated.
//! * [`chipmodel`] — the first-order area/power model reproducing Table 2.
//!
//! # Example
//!
//! ```
//! use unizk_core::arch::ChipConfig;
//! use unizk_core::compiler::{compile_plonky2, Plonky2Instance};
//! use unizk_core::sim::Simulator;
//!
//! let chip = ChipConfig::default_chip();
//! let instance = Plonky2Instance::new(1 << 10, 135);
//! let graph = compile_plonky2(&instance);
//! let report = Simulator::new(chip).run(&graph);
//! assert!(report.total_cycles > 0);
//! ```

#![forbid(unsafe_code)]

pub mod analyze;
pub mod arch;
pub mod chipmodel;
pub mod compiler;
pub mod graph;
pub mod kernels;
pub mod mapping;
pub mod scratchpad;
pub mod sim;
pub mod sumcheck;
pub mod vsa;

pub use analyze::{Diagnostic, Rule, Severity};
pub use arch::ChipConfig;
pub use chipmodel::{AreaPowerBreakdown, ComponentBudget};
pub use compiler::{compile_plonky2, compile_starky, Plonky2Instance, StarkyInstance};
pub use graph::{Graph, Node, NodeId};
pub use kernels::{Kernel, KernelClassTag};
pub use sim::{ClassStats, NodeTrace, SimReport, Simulator};
