//! The compiler front-end (paper §5.5): expands a protocol instance into
//! the static computation graph of Fig. 7.
//!
//! The node sequences mirror the software provers in `unizk-plonk` and
//! `unizk-stark` one-to-one — the same commitments, the same permutation
//! and quotient phases, the same FRI rounds — so the simulated kernel mix
//! matches what the CPU baseline executes.


use crate::graph::Graph;
use crate::kernels::{Kernel, Layout, NttVariant, Reuse};

/// A Plonky2 proving instance's dimensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plonky2Instance {
    /// Trace rows `n` (a power of two).
    pub rows: usize,
    /// Wire columns `W`.
    pub width: usize,
    /// Permutation-argument repetitions.
    pub num_challenges: usize,
    /// `log2` of the LDE blowup (Plonky2: 3).
    pub rate_bits: usize,
    /// FRI query count.
    pub num_queries: usize,
    /// Grinding bits.
    pub pow_bits: usize,
    /// Partial-product chunk size.
    pub chunk_size: usize,
}

impl Plonky2Instance {
    /// The standard configuration for a `rows × width` circuit.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a power of two.
    pub fn new(rows: usize, width: usize) -> Self {
        assert!(rows.is_power_of_two(), "rows must be a power of two");
        Self {
            rows,
            width,
            num_challenges: 2,
            rate_bits: 3,
            num_queries: 28,
            pow_bits: 16,
            chunk_size: 7,
        }
    }

    /// Permutation chunks `c`.
    pub fn num_chunks(&self) -> usize {
        self.width.div_ceil(self.chunk_size)
    }

    /// Committed polynomials per batch: `[constants, wires, perm, quotient]`.
    pub fn batch_widths(&self) -> [usize; 4] {
        [
            5 + self.width,
            self.width,
            self.num_challenges * self.num_chunks(),
            self.num_challenges << self.rate_bits,
        ]
    }

    /// Total committed polynomials.
    pub fn total_polys(&self) -> usize {
        self.batch_widths().iter().sum()
    }

    fn log_rows(&self) -> usize {
        self.rows.trailing_zeros() as usize
    }
}

/// A Starky proving instance's dimensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StarkyInstance {
    /// Trace rows.
    pub rows: usize,
    /// Trace columns.
    pub width: usize,
    /// Transition constraints.
    pub num_constraints: usize,
    /// Challenge repetitions.
    pub num_challenges: usize,
    /// `log2` of the blowup (Starky: 1).
    pub rate_bits: usize,
    /// FRI query count.
    pub num_queries: usize,
    /// Grinding bits.
    pub pow_bits: usize,
}

impl StarkyInstance {
    /// The standard Starky configuration for a `rows × width` AET.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a power of two.
    pub fn new(rows: usize, width: usize, num_constraints: usize) -> Self {
        assert!(rows.is_power_of_two(), "rows must be a power of two");
        Self {
            rows,
            width,
            num_constraints,
            num_challenges: 2,
            rate_bits: 1,
            num_queries: 84,
            pow_bits: 16,
        }
    }
}

/// Emits the commitment pipeline for a batch of `batch` columns of length
/// `rows`: `iNTT → coset LDE NTT^NR → leaf gather → Merkle` (Fig. 1 / the
/// "Wires Commitment" node of Fig. 7).
fn push_commit(g: &mut Graph, rows: usize, batch: usize, rate_bits: usize, what: &str) {
    push_commit_inner(g, rows, batch, rate_bits, what, true);
}

/// Like [`push_commit`] but for batches already in coefficient form (the
/// quotient chunks), which skip the leading `iNTT`.
fn push_commit_coeffs(g: &mut Graph, rows: usize, batch: usize, rate_bits: usize, what: &str) {
    push_commit_inner(g, rows, batch, rate_bits, what, false);
}

fn push_commit_inner(
    g: &mut Graph,
    rows: usize,
    batch: usize,
    rate_bits: usize,
    what: &str,
    from_values: bool,
) {
    let log_n = rows.trailing_zeros() as usize;
    if from_values {
        g.push_seq(
            Kernel::Ntt {
                log_n,
                batch,
                variant: NttVariant::InverseNn,
                layout: Layout::IndexMajor,
            },
            format!("{what}: iNTT"),
        );
    }
    g.push_seq(
        Kernel::Ntt {
            log_n: log_n + rate_bits,
            batch,
            variant: NttVariant::CosetForwardNr,
            layout: Layout::PolyMajor,
        },
        format!("{what}: LDE NTT^NR"),
    );
    g.push_seq(
        Kernel::Transpose {
            rows: batch,
            cols: rows << rate_bits,
        },
        format!("{what}: leaf gather"),
    );
    g.push_seq(
        Kernel::MerkleTree {
            num_leaves: rows << rate_bits,
            leaf_len: batch,
        },
        format!("{what}: Merkle tree"),
    );
}

/// Emits the FRI commit/fold/query phase over `lde_size` extension-field
/// values with `total_polys` committed polynomials feeding the combination.
fn push_fri(
    g: &mut Graph,
    lde_size: usize,
    rows: usize,
    total_polys: usize,
    num_queries: usize,
    pow_bits: usize,
) {
    // Initial combination: one pass over every committed LDE value.
    let combine_bytes = lde_size as u64 * total_polys as u64 * 8 + lde_size as u64 * 16;
    g.push_seq(
        Kernel::PolyOp {
            ops: lde_size as u64 * (total_polys as u64 * 3 + 16),
            reuse: Reuse {
                streaming_bytes: combine_bytes,
                ideal_bytes: combine_bytes,
                working_set_bytes: lde_size as u64 * 16,
            },
            },
        "FRI: combine",
    );

    // Fold rounds until the final polynomial (length 8) remains.
    let final_len = 8usize.min(rows);
    let rounds = (rows / final_len).trailing_zeros() as usize;
    let mut layer = lde_size;
    for r in 0..rounds {
        let layer_bytes = layer as u64 * 16;
        g.push_seq(
            Kernel::MerkleTree {
                num_leaves: layer / 2,
                leaf_len: 4,
            },
            format!("FRI: fold-layer {r} Merkle"),
        );
        g.push_seq(
            Kernel::PolyOp {
                ops: layer as u64 * 6,
                reuse: Reuse {
                    streaming_bytes: layer_bytes + layer_bytes / 2,
                    ideal_bytes: layer_bytes + layer_bytes / 2,
                    working_set_bytes: layer_bytes,
                },
            },
            format!("FRI: fold {r}"),
        );
        layer /= 2;
    }

    // Grinding: expected 2^(bits-1) duplex permutations.
    g.push_seq(
        Kernel::Sponge {
            num_perms: 1 << pow_bits.saturating_sub(1),
            parallel: true,
        },
        "FRI: proof-of-work grind",
    );

    // Query phase: pseudo-random leaf + path gathering.
    let path_bytes = (total_polys as u64 * 8 + 32 * (lde_size.trailing_zeros() as u64 + 1))
        * num_queries as u64
        * 2;
    g.push_seq(
        Kernel::GateEval {
            ops: num_queries as u64 * 64,
            bytes: path_bytes,
            run_bytes: 64,
        },
        "FRI: queries",
    );
}

/// Compiles a full Plonky2 proof generation into its kernel graph.
pub fn compile_plonky2(inst: &Plonky2Instance) -> Graph {
    let mut g = Graph::new();
    let n = inst.rows;
    let w = inst.width;
    let s = inst.num_challenges;
    let lde = n << inst.rate_bits;
    let [_, _, perm_polys, quotient_polys] = inst.batch_widths();

    // Witness generation arithmetic (small next to everything else).
    let wires_bytes = (n * w * 8) as u64;
    g.push_seq(
        Kernel::PolyOp {
            ops: (n * w) as u64,
            reuse: Reuse {
                streaming_bytes: wires_bytes,
                ideal_bytes: wires_bytes,
                working_set_bytes: wires_bytes.min(1 << 22),
            },
        },
        "Witness generation",
    );

    push_commit(&mut g, n, w, inst.rate_bits, "Wires commitment");
    g.push_seq(Kernel::Sponge { num_perms: 2 * s, parallel: false }, "Get challenges (β, γ)");

    // Permutation columns: numerators, denominators (batch-inverted), and
    // the chunked running products of §5.4.
    let perm_ops = (s * n * w * 6) as u64;
    let perm_streaming = (2 * s * n * w * 8) as u64;
    g.push_seq(
        Kernel::PolyOp {
            ops: perm_ops,
            reuse: Reuse {
                streaming_bytes: perm_streaming,
                ideal_bytes: (2 * n * w * 8) as u64,
                working_set_bytes: (n * w * 8) as u64,
            },
        },
        "Permutation: factors",
    );
    g.push_seq(
        Kernel::PartialProducts {
            len: (s * n * w) as u64,
        },
        "Permutation: partial products",
    );
    push_commit(&mut g, n, perm_polys, inst.rate_bits, "Permutation commitment");
    g.push_seq(Kernel::Sponge { num_perms: s, parallel: false }, "Get challenges (α)");

    // Quotient: constraint evaluation over the 8× LDE with the §7.1
    // pseudo-random access pattern, then iNTT + commitment of the chunks.
    let leaf_width = inst.total_polys() - quotient_polys;
    g.push_seq(
        Kernel::GateEval {
            ops: (s * lde * (4 * w + 20)) as u64,
            bytes: (lde * leaf_width * 8) as u64,
            run_bytes: u32::try_from(w * 8).expect("circuit width fits u32"),
        },
        "Quotient: constraint evaluation",
    );
    g.push_seq(
        Kernel::Ntt {
            log_n: inst.log_rows() + inst.rate_bits,
            batch: s,
            variant: NttVariant::CosetInverseNn,
            layout: Layout::PolyMajor,
        },
        "Quotient: iNTT",
    );
    push_commit_coeffs(&mut g, n, quotient_polys, inst.rate_bits, "Quotient commitment");
    g.push_seq(Kernel::Sponge { num_perms: 2, parallel: false }, "Get challenges (ζ)");

    push_fri(
        &mut g,
        lde,
        n,
        inst.total_polys(),
        inst.num_queries,
        inst.pow_bits,
    );
    g
}

/// Compiles a full Starky proof generation into its kernel graph.
pub fn compile_starky(inst: &StarkyInstance) -> Graph {
    let mut g = Graph::new();
    let n = inst.rows;
    let w = inst.width;
    let s = inst.num_challenges;
    let lde = n << inst.rate_bits;

    // Trace generation.
    let trace_bytes = (n * w * 8) as u64;
    g.push_seq(
        Kernel::PolyOp {
            ops: (n * w) as u64,
            reuse: Reuse {
                streaming_bytes: trace_bytes,
                ideal_bytes: trace_bytes,
                working_set_bytes: trace_bytes.min(1 << 22),
            },
        },
        "Trace generation",
    );
    push_commit(&mut g, n, w, inst.rate_bits, "Trace commitment");
    g.push_seq(Kernel::Sponge { num_perms: s, parallel: false }, "Get challenges (α)");

    // Quotient: transition + boundary constraint evaluation on the 2× LDE.
    g.push_seq(
        Kernel::GateEval {
            ops: (s * lde * (3 * inst.num_constraints + 8)) as u64,
            bytes: (lde * 2 * w * 8) as u64, // local + next rows
            run_bytes: u32::try_from(w * 8).expect("circuit width fits u32"),
        },
        "Quotient: constraint evaluation",
    );
    g.push_seq(
        Kernel::Ntt {
            log_n: inst.rows.trailing_zeros() as usize + inst.rate_bits,
            batch: s,
            variant: NttVariant::CosetInverseNn,
            layout: Layout::PolyMajor,
        },
        "Quotient: iNTT",
    );
    push_commit_coeffs(&mut g, n, s, inst.rate_bits, "Quotient commitment");
    g.push_seq(Kernel::Sponge { num_perms: 2, parallel: false }, "Get challenges (ζ)");

    push_fri(&mut g, lde, n, w + s, inst.num_queries, inst.pow_bits);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelClassTag;

    #[test]
    fn plonky2_graph_contains_all_kernel_classes() {
        let g = compile_plonky2(&Plonky2Instance::new(1 << 10, 135));
        let mut seen = std::collections::HashSet::new();
        for node in g.nodes() {
            seen.insert(node.kernel.class());
        }
        assert!(seen.contains(&KernelClassTag::Ntt));
        assert!(seen.contains(&KernelClassTag::Hash));
        assert!(seen.contains(&KernelClassTag::Poly));
        assert!(seen.contains(&KernelClassTag::Transpose));
    }

    #[test]
    fn plonky2_batch_widths() {
        let inst = Plonky2Instance::new(1 << 10, 135);
        assert_eq!(inst.batch_widths(), [140, 135, 40, 16]);
        assert_eq!(inst.total_polys(), 331);
        assert_eq!(inst.num_chunks(), 20);
    }

    #[test]
    fn graph_scales_with_rows() {
        let small = compile_plonky2(&Plonky2Instance::new(1 << 10, 135));
        let large = compile_plonky2(&Plonky2Instance::new(1 << 14, 135));
        // More FRI fold rounds at larger sizes.
        assert!(large.len() > small.len());
    }

    #[test]
    fn starky_graph_compiles() {
        let g = compile_starky(&StarkyInstance::new(1 << 12, 16, 10));
        assert!(g.len() > 10);
        // Starky commits fewer, narrower batches: total Merkle leaves per
        // level are cheaper than Plonky2's at the same rows.
        let merkles = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kernel, Kernel::MerkleTree { .. }))
            .count();
        assert!(merkles >= 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rows_rejected() {
        let _ = Plonky2Instance::new(1000, 135);
    }
}
