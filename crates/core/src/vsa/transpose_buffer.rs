//! The global transpose buffer (paper §4, §5.1 "Data layouts").
//!
//! A `b×b` element buffer that converts between the polynomial-major and
//! index-major layouts on the fly while data streams between DRAM and the
//! VSAs, so layout transformations cost no dedicated kernel time. This
//! functional model streams a full matrix transpose tile by tile,
//! double-buffered, validating losslessness against the plain transpose
//! and reporting the occupancy numbers the simulator's "transposes are
//! free" assumption relies on.

use unizk_field::{Field, Goldilocks};

/// Functional model of the `b×b` transpose buffer.
///
/// The buffer is banked into `banks` independent tiles so its aggregate
/// throughput (`banks · b` elements/cycle) keeps pace with the HBM stream
/// rate (128 elements/cycle at the paper's 1 TB/s), which is what lets the
/// transpose hide entirely behind the neighbouring kernel.
#[derive(Clone, Copy, Debug)]
pub struct TransposeBuffer {
    /// Tile dimension `b` (16 in the paper).
    pub b: usize,
    /// Parallel tile banks.
    pub banks: usize,
}

/// Streaming statistics of one transpose.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TransposeTrace {
    /// `b×b` tile fills performed.
    pub tile_fills: usize,
    /// Cycles the buffer is busy, at one `b`-element row in and one
    /// `b`-element column out per cycle, double-buffered.
    pub busy_cycles: u64,
    /// Longest contiguous DRAM run produced on the output side, in
    /// elements (what makes index-major accesses "sufficiently
    /// consecutive").
    pub output_run_elems: usize,
}

impl TransposeBuffer {
    /// A buffer with tile dimension `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    pub fn new(b: usize) -> Self {
        assert!(b > 0, "tile dimension must be positive");
        Self { b, banks: 8 }
    }

    /// Streams the transpose of a row-major `rows × cols` matrix,
    /// returning the row-major `cols × rows` result and the trace.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn stream_transpose(
        &self,
        data: &[Goldilocks],
        rows: usize,
        cols: usize,
    ) -> (Vec<Goldilocks>, TransposeTrace) {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        let b = self.b;
        let mut out = vec![Goldilocks::ZERO; data.len()];
        let mut tile_fills = 0;
        let mut tile = vec![Goldilocks::ZERO; b * b];

        for tile_r in (0..rows).step_by(b) {
            for tile_c in (0..cols).step_by(b) {
                // Fill: one row of the tile per cycle from the input side.
                let r_end = (tile_r + b).min(rows);
                let c_end = (tile_c + b).min(cols);
                for r in tile_r..r_end {
                    for c in tile_c..c_end {
                        tile[(r - tile_r) * b + (c - tile_c)] = data[r * cols + c];
                    }
                }
                // Drain: one column of the tile per cycle to the output
                // side, which lands transposed.
                for c in tile_c..c_end {
                    for r in tile_r..r_end {
                        out[c * rows + r] = tile[(r - tile_r) * b + (c - tile_c)];
                    }
                }
                tile_fills += 1;
            }
        }

        // Double buffering overlaps fill and drain: b cycles per tile at
        // steady state, spread across the banks, plus one fill to prime.
        let busy_cycles =
            (tile_fills as u64) * b as u64 / self.banks as u64 + b as u64;
        (
            out,
            TransposeTrace {
                tile_fills,
                busy_cycles,
                output_run_elems: b.min(rows),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::TestRng as StdRng;
    use unizk_field::PrimeField64;
    use unizk_ntt::{transpose, transpose_tile_count};

    fn random_matrix(rng: &mut StdRng, n: usize) -> Vec<Goldilocks> {
        (0..n).map(|_| Goldilocks::random(rng)).collect()
    }

    #[test]
    fn streaming_transpose_is_lossless() {
        let mut rng = StdRng::seed_from_u64(1000);
        for (rows, cols) in [(16usize, 16usize), (64, 135), (135, 64), (7, 9)] {
            let data = random_matrix(&mut rng, rows * cols);
            let buffer = TransposeBuffer::new(16);
            let (out, _) = buffer.stream_transpose(&data, rows, cols);
            assert_eq!(out, transpose(&data, rows, cols), "{rows}x{cols}");
        }
    }

    #[test]
    fn tile_count_matches_analytical_model() {
        let mut rng = StdRng::seed_from_u64(1001);
        let (rows, cols) = (100usize, 37usize);
        let data = random_matrix(&mut rng, rows * cols);
        let buffer = TransposeBuffer::new(16);
        let (_, trace) = buffer.stream_transpose(&data, rows, cols);
        assert_eq!(trace.tile_fills, transpose_tile_count(rows, cols, 16));
    }

    #[test]
    fn paper_b16_produces_two_burst_runs() {
        // b = 16 elements × 8 B = 128 B = two 64 B bursts per run — the
        // "sufficiently consecutive" claim of §5.1.
        let mut rng = StdRng::seed_from_u64(1002);
        let data = random_matrix(&mut rng, 32 * 32);
        let (_, trace) = TransposeBuffer::new(16).stream_transpose(&data, 32, 32);
        assert_eq!(trace.output_run_elems * 8 / 64, 2);
    }

    #[test]
    fn buffer_occupancy_overlaps_with_compute() {
        // The transpose of a commitment's LDE matrix finishes well within
        // the Merkle construction that follows it, justifying the
        // zero-cost transpose in the simulator.
        let b = 16;
        let rows = 135;
        let cols = 1 << 10;
        let mut rng = StdRng::seed_from_u64(1003);
        let data = random_matrix(&mut rng, rows * cols);
        let (_, trace) = TransposeBuffer::new(b).stream_transpose(&data, rows, cols);
        // Merkle on 2^10 leaves of width 135 ≈ (2^10·18)·15/32 cycles.
        let merkle_cycles = (1u64 << 10) * 18 * 15 / 32;
        assert!(trace.busy_cycles < merkle_cycles, "{} vs {merkle_cycles}", trace.busy_cycles);
    }
}
