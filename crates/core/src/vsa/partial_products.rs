//! The partial-product schedule of Fig. 6 (paper §5.4, Eqs. 1–2),
//! executed in the three PE-array steps the paper describes.
//!
//! Step A (Fig. 6a): each PE consumes 16 quotient values `q[j]` and
//! accumulates them into 2 chunk products `h[i]` (8-element chunks,
//! bounded by the PE register file).
//!
//! Steps 1–3 (Fig. 6b): chunks are regrouped through the scratchpad into
//! per-PE groups `z_k` of `n = 32` chunks; each PE computes its local
//! prefix products, propagates its last product to the next neighbor PE,
//! and finally multiplies the received carry into its local prefixes.

use unizk_field::{Field, Goldilocks};

/// Functional model of the Fig. 6 schedule on a chain of PEs.
#[derive(Clone, Copy, Debug)]
pub struct PartialProductArray {
    /// Chunk size for Eq. 1 (8 in the paper).
    pub chunk: usize,
    /// Chunks per PE group for Fig. 6b (32 in the paper — bounded by the
    /// register file).
    pub group: usize,
}

impl Default for PartialProductArray {
    fn default() -> Self {
        Self { chunk: 8, group: 32 }
    }
}

/// The step-count breakdown of one execution (for the timing model).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PartialProductTrace {
    /// Multiplications in the chunk-product step (Eq. 1).
    pub chunk_muls: u64,
    /// Multiplications in the local-prefix step.
    pub local_muls: u64,
    /// Sequential neighbor-propagation hops (the Eq. 2 dependency chain —
    /// the only serial part).
    pub propagate_hops: u64,
    /// Multiplications in the final carry-apply step.
    pub final_muls: u64,
}

impl PartialProductArray {
    /// Computes the chunk products `h[i] = Π q[8i..8i+8]` (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` is not a multiple of the chunk size.
    pub fn chunk_products(&self, q: &[Goldilocks]) -> Vec<Goldilocks> {
        assert_eq!(q.len() % self.chunk, 0, "length must be chunk-aligned");
        q.chunks(self.chunk)
            .map(|c| c.iter().copied().product())
            .collect()
    }

    /// Runs the full Fig. 6 schedule: returns `PP[i] = Π_{j≤i} h[j]`
    /// (Eq. 2) plus the step trace.
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` is not a multiple of the chunk size.
    pub fn run(&self, q: &[Goldilocks]) -> (Vec<Goldilocks>, PartialProductTrace) {
        let h = self.chunk_products(q);
        let chunk_muls = q.len() as u64; // one MAC-equivalent per element

        // Regroup into per-PE groups z_k (through the scratchpad).
        let mut pp = vec![Goldilocks::ZERO; h.len()];
        let mut carries = Vec::new();

        // Step 1: local prefix products inside each PE.
        let mut local_muls = 0u64;
        for (k, group) in h.chunks(self.group).enumerate() {
            let base = k * self.group;
            let mut acc = Goldilocks::ONE;
            for (j, &z) in group.iter().enumerate() {
                acc *= z;
                local_muls += 1;
                pp[base + j] = acc;
            }
            carries.push(acc); // Z_k[n−1], to be propagated
        }

        // Step 2: sequential neighbor propagation of the carries
        // (PE k+1 receives Π of all previous groups).
        let mut received = vec![Goldilocks::ONE; carries.len()];
        let mut propagate_hops = 0u64;
        let mut running = Goldilocks::ONE;
        for (k, &c) in carries.iter().enumerate() {
            received[k] = running;
            running *= c;
            propagate_hops += 1;
        }

        // Step 3: each PE multiplies the received carry into its locals.
        let mut final_muls = 0u64;
        for (k, chunk) in pp.chunks_mut(self.group).enumerate() {
            for v in chunk.iter_mut() {
                *v *= received[k];
                final_muls += 1;
            }
        }

        (
            pp,
            PartialProductTrace {
                chunk_muls,
                local_muls,
                propagate_hops,
                final_muls,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::TestRng as StdRng;
    use unizk_field::PrimeField64;

    fn random_q(rng: &mut StdRng, len: usize) -> Vec<Goldilocks> {
        (0..len).map(|_| Goldilocks::random(rng)).collect()
    }

    fn direct_pp(q: &[Goldilocks], chunk: usize) -> Vec<Goldilocks> {
        // Eqs. 1–2 computed directly.
        let h: Vec<Goldilocks> = q.chunks(chunk).map(|c| c.iter().copied().product()).collect();
        let mut acc = Goldilocks::ONE;
        h.iter()
            .map(|&x| {
                acc *= x;
                acc
            })
            .collect()
    }

    #[test]
    fn schedule_matches_direct_computation() {
        let mut rng = StdRng::seed_from_u64(800);
        let array = PartialProductArray::default();
        for len in [64usize, 256, 8 * 32 * 5, 4096] {
            let q = random_q(&mut rng, len);
            let (pp, _) = array.run(&q);
            assert_eq!(pp, direct_pp(&q, 8), "len={len}");
        }
    }

    #[test]
    fn partial_group_at_the_tail() {
        // Lengths that do not fill the last PE group still work.
        let mut rng = StdRng::seed_from_u64(801);
        let array = PartialProductArray::default();
        let q = random_q(&mut rng, 8 * 33); // 33 chunks: one full group + 1
        let (pp, _) = array.run(&q);
        assert_eq!(pp, direct_pp(&q, 8));
    }

    #[test]
    fn serial_chain_is_only_the_propagation() {
        // The whole point of Fig. 6: Eq. 2's long dependency chain shrinks
        // to one hop per PE group.
        let array = PartialProductArray::default();
        let mut rng = StdRng::seed_from_u64(802);
        let len = 8 * 32 * 16; // 16 PE groups
        let q = random_q(&mut rng, len);
        let (_, trace) = array.run(&q);
        assert_eq!(trace.propagate_hops, 16);
        // Naive sequential Eq. 2 would need one dependent multiply per
        // chunk: 512 serial steps vs our 16 + local work.
        assert!(trace.propagate_hops < (len / 8) as u64 / 8);
        assert_eq!(trace.chunk_muls, len as u64);
        assert_eq!(trace.local_muls, (len / 8) as u64);
        assert_eq!(trace.final_muls, (len / 8) as u64);
    }

    #[test]
    #[should_panic(expected = "chunk-aligned")]
    fn unaligned_rejected() {
        let _ = PartialProductArray::default().run(&[Goldilocks::ONE; 13]);
    }

    #[test]
    fn matches_plonk_permutation_semantics() {
        // The same computation the Plonk prover performs per challenge
        // round: PP over 8-element chunk products of the quotient vector.
        let mut rng = StdRng::seed_from_u64(803);
        let q = random_q(&mut rng, 8 * 64);
        let array = PartialProductArray::default();
        let (pp, _) = array.run(&q);
        // Final PP equals the grand product of all q.
        let grand: Goldilocks = q.iter().copied().product();
        assert_eq!(*pp.last().expect("nonempty"), grand);
    }
}
