//! The VSA vector mode (paper §4): each column of the array acts as an
//! independent vector lane, executing chained modular operations on
//! register-file-resident tiles.
//!
//! This functional model executes small vector programs with the PE's
//! real resource constraints — one multiplier and two adders per PE
//! (chaining a multiply with up to two additive ops into one cycle), and
//! a 64-word register file — and reports the cycle count the mapping
//! layer's 1-chained-op/lane/cycle assumption rests on.

use unizk_field::Goldilocks;

/// Register-file capacity per PE in 64-bit words (paper §4: 64×64 bits).
pub const REGISTERS_PER_PE: usize = 64;

/// One chained vector operation over register-resident tiles. Registers
/// are identified by index; each holds one tile element per lane.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VectorOp {
    /// `dst ← a + b`.
    Add { a: usize, b: usize, dst: usize },
    /// `dst ← a − b`.
    Sub { a: usize, b: usize, dst: usize },
    /// `dst ← a · b`.
    Mul { a: usize, b: usize, dst: usize },
    /// `dst ← a · b + c` — one cycle, exercising the chained multiplier +
    /// adder datapath (§5.4 "chained operations to reduce register access
    /// pressure").
    MulAdd { a: usize, b: usize, c: usize, dst: usize },
    /// `dst ← a · b − c`.
    MulSub { a: usize, b: usize, c: usize, dst: usize },
}

impl VectorOp {
    fn registers(&self) -> [usize; 4] {
        match *self {
            VectorOp::Add { a, b, dst } | VectorOp::Sub { a, b, dst } | VectorOp::Mul { a, b, dst } => {
                [a, b, dst, dst]
            }
            VectorOp::MulAdd { a, b, c, dst } | VectorOp::MulSub { a, b, c, dst } => [a, b, c, dst],
        }
    }
}

/// A bank of vector lanes (one per PE column across the chip's VSAs).
#[derive(Clone, Debug)]
pub struct VectorUnit {
    lanes: usize,
}

impl VectorUnit {
    /// A vector unit with `lanes` parallel lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        Self { lanes }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Executes `program` over `registers` (register-major: each register
    /// holds one vector of equal length), returning the cycle count:
    /// `ops · ⌈len / lanes⌉` — one chained op per lane per cycle.
    ///
    /// # Panics
    ///
    /// Panics if a register index exceeds [`REGISTERS_PER_PE`], registers
    /// have unequal lengths, or the program touches a register that was
    /// never written or preloaded.
    pub fn execute(
        &self,
        program: &[VectorOp],
        registers: &mut Vec<Option<Vec<Goldilocks>>>,
    ) -> u64 {
        registers.resize(REGISTERS_PER_PE, None);
        let len = registers
            .iter()
            .flatten()
            .map(|v| v.len())
            .next()
            .unwrap_or(0);
        for v in registers.iter().flatten() {
            assert_eq!(v.len(), len, "register tiles must have equal length");
        }

        for op in program {
            let regs = op.registers();
            for &r in &regs {
                assert!(r < REGISTERS_PER_PE, "register {r} out of range");
            }
            let fetch = |registers: &Vec<Option<Vec<Goldilocks>>>, r: usize| -> Vec<Goldilocks> {
                registers[r]
                    .as_ref()
                    .unwrap_or_else(|| panic!("register {r} read before write"))
                    .clone()
            };
            let out: Vec<Goldilocks> = match *op {
                VectorOp::Add { a, b, .. } => {
                    let (va, vb) = (fetch(registers, a), fetch(registers, b));
                    va.iter().zip(&vb).map(|(&x, &y)| x + y).collect()
                }
                VectorOp::Sub { a, b, .. } => {
                    let (va, vb) = (fetch(registers, a), fetch(registers, b));
                    va.iter().zip(&vb).map(|(&x, &y)| x - y).collect()
                }
                VectorOp::Mul { a, b, .. } => {
                    let (va, vb) = (fetch(registers, a), fetch(registers, b));
                    va.iter().zip(&vb).map(|(&x, &y)| x * y).collect()
                }
                VectorOp::MulAdd { a, b, c, .. } => {
                    let (va, vb, vc) = (fetch(registers, a), fetch(registers, b), fetch(registers, c));
                    va.iter()
                        .zip(&vb)
                        .zip(&vc)
                        .map(|((&x, &y), &z)| x * y + z)
                        .collect()
                }
                VectorOp::MulSub { a, b, c, .. } => {
                    let (va, vb, vc) = (fetch(registers, a), fetch(registers, b), fetch(registers, c));
                    va.iter()
                        .zip(&vb)
                        .zip(&vc)
                        .map(|((&x, &y), &z)| x * y - z)
                        .collect()
                }
            };
            let dst = regs[3];
            registers[dst] = Some(out);
        }

        program.len() as u64 * (len as u64).div_ceil(self.lanes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::TestRng as StdRng;
    use unizk_field::{Field, PrimeField64};

    fn preload(values: &[Vec<Goldilocks>]) -> Vec<Option<Vec<Goldilocks>>> {
        values.iter().cloned().map(Some).collect()
    }

    fn random_tile(rng: &mut StdRng, len: usize) -> Vec<Goldilocks> {
        (0..len).map(|_| Goldilocks::random(rng)).collect()
    }

    #[test]
    fn chained_mul_add_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(900);
        let len = 1000;
        let (a, b, c) = (
            random_tile(&mut rng, len),
            random_tile(&mut rng, len),
            random_tile(&mut rng, len),
        );
        let mut regs = preload(&[a.clone(), b.clone(), c.clone()]);
        let unit = VectorUnit::new(144);
        let cycles = unit.execute(
            &[VectorOp::MulAdd { a: 0, b: 1, c: 2, dst: 3 }],
            &mut regs,
        );
        let got = regs[3].as_ref().expect("written");
        for i in 0..len {
            assert_eq!(got[i], a[i] * b[i] + c[i]);
        }
        // One chained op: ceil(1000/144) = 7 cycles.
        assert_eq!(cycles, 7);
    }

    #[test]
    fn gate_constraint_program() {
        // The Plonk gate q_L·a + q_R·b + q_M·a·b + q_O·c + q_C as a chained
        // vector program — the §5.4 element-wise workload.
        let mut rng = StdRng::seed_from_u64(901);
        let len = 256;
        let tiles: Vec<Vec<Goldilocks>> = (0..8).map(|_| random_tile(&mut rng, len)).collect();
        // regs: 0=a 1=b 2=c 3=qL 4=qR 5=qM 6=qO 7=qC
        let mut regs = preload(&tiles);
        let program = [
            VectorOp::Mul { a: 0, b: 1, dst: 8 },               // ab
            VectorOp::Mul { a: 5, b: 8, dst: 9 },               // qM·ab
            VectorOp::MulAdd { a: 3, b: 0, c: 9, dst: 10 },     // qL·a + ...
            VectorOp::MulAdd { a: 4, b: 1, c: 10, dst: 11 },    // qR·b + ...
            VectorOp::MulAdd { a: 6, b: 2, c: 11, dst: 12 },    // qO·c + ...
            VectorOp::Add { a: 12, b: 7, dst: 13 },             // + qC
        ];
        let unit = VectorUnit::new(4608);
        let cycles = unit.execute(&program, &mut regs);
        let got = regs[13].as_ref().expect("written");
        for i in 0..len {
            let expect = tiles[3][i] * tiles[0][i]
                + tiles[4][i] * tiles[1][i]
                + tiles[5][i] * tiles[0][i] * tiles[1][i]
                + tiles[6][i] * tiles[2][i]
                + tiles[7][i];
            assert_eq!(got[i], expect, "i={i}");
        }
        // 6 chained ops, one pass each.
        assert_eq!(cycles, 6);
    }

    #[test]
    fn cycles_scale_with_lanes() {
        let mut rng = StdRng::seed_from_u64(902);
        let len = 4608 * 4;
        let a = random_tile(&mut rng, len);
        let program = [VectorOp::Add { a: 0, b: 0, dst: 1 }];
        let mut regs = preload(std::slice::from_ref(&a));
        let full = VectorUnit::new(4608).execute(&program, &mut regs);
        let mut regs = preload(&[a]);
        let quarter = VectorUnit::new(1152).execute(&program, &mut regs);
        assert_eq!(full, 4);
        assert_eq!(quarter, 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_capacity_enforced() {
        let unit = VectorUnit::new(4);
        let mut regs = preload(&[vec![Goldilocks::ONE; 4]]);
        unit.execute(&[VectorOp::Add { a: 0, b: 0, dst: 64 }], &mut regs);
    }

    #[test]
    #[should_panic(expected = "read before write")]
    fn uninitialized_register_rejected() {
        let unit = VectorUnit::new(4);
        let mut regs = preload(&[vec![Goldilocks::ONE; 4]]);
        unit.execute(&[VectorOp::Add { a: 0, b: 9, dst: 1 }], &mut regs);
    }
}
