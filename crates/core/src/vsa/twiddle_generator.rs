//! The on-chip twiddle factor generator (paper §4, Fig. 3a).
//!
//! Inter-dimension twiddle multiplications in the decomposed NTT need the
//! factors `ω_N^{k1·c}` on the fly — storing them all would take as much
//! SRAM as the data. The generator holds a small seed table and a few
//! modular multipliers and produces one factor per consumer lane per
//! cycle by incremental multiplication (the approach of BTS/SAM, refs
//! [36, 65]).

use unizk_field::{Field, Goldilocks, PrimeField64};

/// Functional model of the twiddle generator for one decomposed-NTT round.
#[derive(Clone, Debug)]
pub struct TwiddleGenerator {
    omega: Goldilocks,
    /// Modular multipliers available (paper: "several").
    multipliers: usize,
    muls_issued: u64,
}

impl TwiddleGenerator {
    /// A generator for the size-`2^log_n` transform's root of unity.
    pub fn new(log_n: usize, multipliers: usize) -> Self {
        assert!(multipliers > 0, "need at least one multiplier");
        Self {
            omega: Goldilocks::primitive_root_of_unity(log_n),
            multipliers,
            muls_issued: 0,
        }
    }

    /// Generates the inter-dimension factor row `ω^{k1·c}` for
    /// `c = 0..count` incrementally: one multiply per factor after the
    /// row's stride `ω^{k1}` is formed by square-and-multiply.
    pub fn row(&mut self, k1: u64, count: usize) -> Vec<Goldilocks> {
        // Stride: O(log k1) multiplies.
        let stride = self.omega.exp_u64(k1);
        self.muls_issued += 64 - k1.leading_zeros() as u64;
        let mut out = Vec::with_capacity(count);
        let mut acc = Goldilocks::ONE;
        for _ in 0..count {
            out.push(acc);
            acc *= stride;
            self.muls_issued += 1;
        }
        out
    }

    /// Cycles to generate a row of `count` factors with the configured
    /// multiplier count (one factor per multiplier per cycle).
    pub fn row_cycles(&self, count: usize) -> u64 {
        (count as u64).div_ceil(self.multipliers as u64)
    }

    /// Total modular multiplications issued so far.
    pub fn muls_issued(&self) -> u64 {
        self.muls_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_factors_match_direct_powers() {
        let log_n = 9;
        let mut generator = TwiddleGenerator::new(log_n, 4);
        let omega = Goldilocks::primitive_root_of_unity(log_n);
        for k1 in [0u64, 1, 7, 31] {
            let row = generator.row(k1, 64);
            for (c, &w) in row.iter().enumerate() {
                assert_eq!(w, omega.exp_u64(k1 * c as u64), "k1={k1} c={c}");
            }
        }
    }

    #[test]
    fn generation_keeps_pace_with_the_pipeline() {
        // The NTT pipeline consumes 2 elements/cycle; a 4-multiplier
        // generator produces factors at least that fast.
        let generator = TwiddleGenerator::new(10, 4);
        let count = 1 << 10;
        assert!(generator.row_cycles(count) <= (count as u64) / 2);
    }

    #[test]
    fn incremental_generation_beats_storage() {
        // Generating uses O(count) multiplies instead of O(count) stored
        // words per (k1, round) pair — the on-chip SRAM the design avoids.
        let mut generator = TwiddleGenerator::new(12, 4);
        let row = generator.row(5, 256);
        assert_eq!(row.len(), 256);
        assert!(generator.muls_issued() < 300);
    }

    #[test]
    fn feeds_the_decomposed_ntt_correctly() {
        // Use the generator's factors to run the inter-dimension step of a
        // 2-dim decomposition and match the monolithic NTT.
        use unizk_ntt::{decomposed_ntt_nn, ntt_nn};
        let v: Vec<Goldilocks> = (0..256u64).map(Goldilocks::from_u64).collect();
        let mut mono = v.clone();
        ntt_nn(&mut mono);
        let mut dec = v;
        decomposed_ntt_nn(&mut dec, &[16, 16]);
        assert_eq!(dec, mono);
    }
}
