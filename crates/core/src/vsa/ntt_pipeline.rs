//! The MDC (multi-path delay commutator) NTT pipeline of Fig. 4a.
//!
//! A size-`n` DIF NTT maps to a linear sequence of `log2(n)` PEs, each
//! implementing one butterfly stage with its twiddles in the PE register
//! file and a delay buffer that pairs elements at the stage's stride. Two
//! extra PEs at the tail perform the inter-dimension / constant
//! multiplications (`N^{-1}·g^{-i}` for a coset-iNTT round).
//!
//! This functional model validates the mapping against the golden
//! `unizk-ntt` kernels and derives the timing constants the cost model
//! uses: throughput 2 elements/cycle, register buffering bounded by the
//! stage stride.

use unizk_field::{Field, Goldilocks, PrimeField64};

/// Pipeline timing derived from the stage structure.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PipelineTiming {
    /// Cycles before the first output emerges (delay-buffer fills).
    pub fill_latency: u64,
    /// Cycles between transforms at steady state (`n / 2`: two elements
    /// per cycle).
    pub initiation_interval: u64,
    /// Peak 64-bit words of delay buffering across all PEs.
    pub buffer_words: usize,
}

/// One butterfly stage: half-size, per-pair twiddles.
struct Stage {
    half: usize,
    twiddles: Vec<Goldilocks>,
}

/// A size-`2^log_n` DIF pipeline (natural input → bit-reversed output),
/// optionally inverse, with an optional element-wise post-scale stage.
pub struct MdcPipeline {
    log_n: usize,
    stages: Vec<Stage>,
    post_scale: Option<Vec<Goldilocks>>,
}

impl MdcPipeline {
    /// A forward DIF pipeline for size `2^log_n`.
    pub fn forward(log_n: usize) -> Self {
        Self::build(log_n, false)
    }

    /// An inverse DIF pipeline (inverse twiddles; no `1/N` scaling —
    /// attach it with [`MdcPipeline::with_post_scale`], as the hardware
    /// reuses the idle twiddle PE for it).
    pub fn inverse(log_n: usize) -> Self {
        Self::build(log_n, true)
    }

    fn build(log_n: usize, inverse: bool) -> Self {
        let n = 1usize << log_n;
        let mut root = Goldilocks::primitive_root_of_unity(log_n);
        if inverse {
            root = root.inverse();
        }
        let mut stages = Vec::with_capacity(log_n);
        let mut half = n / 2;
        let mut w_m = root;
        while half >= 1 {
            let mut tw = Vec::with_capacity(half);
            let mut w = Goldilocks::ONE;
            for _ in 0..half {
                tw.push(w);
                w *= w_m;
            }
            stages.push(Stage { half, twiddles: tw });
            half /= 2;
            w_m = w_m.square();
        }
        Self {
            log_n,
            stages,
            post_scale: None,
        }
    }

    /// Attaches the tail constant-multiplication PE (e.g. `N^{-1}·g^{-i}`
    /// for the last round of a coset-iNTT). `factors[i]` multiplies the
    /// element whose **natural** index is `i`.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != 2^log_n`.
    pub fn with_post_scale(mut self, factors: Vec<Goldilocks>) -> Self {
        assert_eq!(factors.len(), 1 << self.log_n, "one factor per element");
        self.post_scale = Some(factors);
        self
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        1 << self.log_n
    }

    /// Streams one transform through the pipeline: natural-order input,
    /// bit-reversed-order output (`NTT^NR` dataflow).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != 2^log_n`.
    pub fn process(&self, input: &[Goldilocks]) -> Vec<Goldilocks> {
        assert_eq!(input.len(), self.size(), "wrong input length");
        let mut values = input.to_vec();
        for stage in &self.stages {
            let m = stage.half;
            for block in (0..values.len()).step_by(2 * m) {
                for j in 0..m {
                    let a = values[block + j];
                    let b = values[block + j + m];
                    values[block + j] = a + b;
                    values[block + j + m] = (a - b) * stage.twiddles[j];
                }
            }
        }
        if let Some(scale) = &self.post_scale {
            // The tail PE sees elements in bit-reversed order; index its
            // factor by the natural position.
            for (pos, v) in values.iter_mut().enumerate() {
                let natural = unizk_field::bit_reverse(pos, self.log_n);
                *v *= scale[natural];
            }
        }
        values
    }

    /// The timing constants of this pipeline (paper §5.1: each stage's
    /// delay buffer is bounded by its stride; total register usage is
    /// bounded by the fixed NTT size `n`).
    pub fn timing(&self) -> PipelineTiming {
        let n = self.size() as u64;
        // Each stage delays by its half-size at 2 elements/cycle, plus one
        // cycle of PE latency per stage (including the tail PE).
        let fill: u64 = self
            .stages
            .iter()
            .map(|s| s.half as u64 / 2 + 1)
            .sum::<u64>()
            + self.post_scale.is_some() as u64;
        let buffer_words = self.stages.iter().map(|s| s.half).sum::<usize>()
            + self.stages.iter().map(|s| s.twiddles.len()).sum::<usize>();
        PipelineTiming {
            fill_latency: fill,
            initiation_interval: n / 2,
            buffer_words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::TestRng as StdRng;
    use unizk_field::reverse_index_bits;
    use unizk_ntt::{coset_intt_nn, intt_nn, ntt_nr};

    fn random_vec(rng: &mut StdRng, n: usize) -> Vec<Goldilocks> {
        (0..n).map(|_| Goldilocks::random(rng)).collect()
    }

    #[test]
    fn forward_pipeline_matches_golden_ntt_nr() {
        let mut rng = StdRng::seed_from_u64(600);
        for log_n in [3usize, 5, 8] {
            let input = random_vec(&mut rng, 1 << log_n);
            let pipeline = MdcPipeline::forward(log_n);
            let hw = pipeline.process(&input);
            let mut golden = input.clone();
            ntt_nr(&mut golden);
            assert_eq!(hw, golden, "log_n={log_n}");
        }
    }

    #[test]
    fn inverse_pipeline_with_scale_pe_matches_intt() {
        // The hardware iNTT: inverse DIF pipeline + the tail PE multiplying
        // by N^{-1}, then the bit-reversal absorbed by the writeback.
        let mut rng = StdRng::seed_from_u64(601);
        let log_n = 5;
        let n = 1usize << log_n;
        let n_inv = Goldilocks::from_u64(n as u64).inverse();
        let input = random_vec(&mut rng, n);

        let pipeline = MdcPipeline::inverse(log_n).with_post_scale(vec![n_inv; n]);
        let mut hw = pipeline.process(&input);
        reverse_index_bits(&mut hw);

        let mut golden = input;
        intt_nn(&mut golden);
        assert_eq!(hw, golden);
    }

    #[test]
    fn coset_intt_tail_factors_match_golden() {
        // Coset-iNTT last round: tail factors N^{-1}·g^{-i} (paper Fig. 4a).
        let mut rng = StdRng::seed_from_u64(602);
        let log_n = 5;
        let n = 1usize << log_n;
        let g = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let n_inv = Goldilocks::from_u64(n as u64).inverse();
        let g_inv = g.inverse();
        let factors: Vec<Goldilocks> = (0..n as u64)
            .map(|i| n_inv * g_inv.exp_u64(i))
            .collect();
        let input = random_vec(&mut rng, n);

        let pipeline = MdcPipeline::inverse(log_n).with_post_scale(factors);
        let mut hw = pipeline.process(&input);
        reverse_index_bits(&mut hw);

        let mut golden = input;
        coset_intt_nn(&mut golden, g);
        assert_eq!(hw, golden);
    }

    #[test]
    fn pipeline_length_matches_paper() {
        // "we map a size-n NTT to a sequence of log n + 1 PEs" (§5.1).
        let p = MdcPipeline::forward(5);
        assert_eq!(p.stages.len(), 5); // + 1 tail PE when post-scale is attached
        let with_tail = MdcPipeline::inverse(5).with_post_scale(vec![Goldilocks::ONE; 32]);
        assert_eq!(with_tail.stages.len() + 1, 5 + 1);
    }

    #[test]
    fn throughput_is_two_elements_per_cycle() {
        let timing = MdcPipeline::forward(5).timing();
        assert_eq!(timing.initiation_interval, 16); // 32 elements / 2 per cycle
        assert!(timing.fill_latency > 0);
    }

    #[test]
    fn buffering_is_bounded_by_n() {
        // The paper: "the required register capacity is bound by the fixed
        // NTT size n" — delay buffers sum to n−1 and twiddles to n−1.
        let p = MdcPipeline::forward(5);
        let t = p.timing();
        assert_eq!(t.buffer_words, (32 - 1) + (32 - 1));
        assert!(t.buffer_words < 2 * 32);
    }

    #[test]
    fn pipelined_transforms_share_the_structure() {
        // Several back-to-back transforms produce independent results
        // (stateless stages: the commutator interleaves streams).
        let mut rng = StdRng::seed_from_u64(603);
        let p = MdcPipeline::forward(4);
        let a = random_vec(&mut rng, 16);
        let b = random_vec(&mut rng, 16);
        let ra = p.process(&a);
        let rb = p.process(&b);
        let mut ga = a;
        ntt_nr(&mut ga);
        let mut gb = b;
        ntt_nr(&mut gb);
        assert_eq!(ra, ga);
        assert_eq!(rb, gb);
    }

    #[test]
    #[should_panic(expected = "wrong input length")]
    fn wrong_length_rejected() {
        let _ = MdcPipeline::forward(4).process(&[Goldilocks::ZERO; 8]);
    }
}
