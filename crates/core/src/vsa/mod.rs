//! Functional models of the vector-systolic array's mapping dataflows.
//!
//! The paper's methodology (§6) rests on RTL implementations of the VSA,
//! transpose unit, and twiddle generator that were "extensively verified"
//! for functional correctness, with the performance simulator validated
//! against them. This module is the reproduction's analogue: cycle-
//! structured functional models of each §5 mapping — the MDC NTT pipeline
//! (Fig. 4a), the Poseidon round dataflows (Fig. 5), the partial-product
//! schedule (Fig. 6), and the vector mode — each validated against the
//! golden software kernels in `unizk-ntt` and `unizk-hash`, and each
//! reporting the pipeline constants (initiation interval, fill latency)
//! that the [`crate::mapping`] cost models assume.

pub mod ntt_pipeline;
pub mod partial_products;
pub mod poseidon_dataflow;
pub mod transpose_buffer;
pub mod twiddle_generator;
pub mod vector_unit;

pub use ntt_pipeline::MdcPipeline;
pub use partial_products::PartialProductArray;
pub use poseidon_dataflow::PoseidonDataflow;
pub use transpose_buffer::TransposeBuffer;
pub use twiddle_generator::TwiddleGenerator;
pub use vector_unit::{VectorOp, VectorUnit};
