//! The Poseidon round dataflows of Fig. 5, executed PE-step by PE-step.
//!
//! * **Full round** (Fig. 5a): a row of 4 folded PEs computes the constant
//!   addition and the `x^7` S-box as a 4-step pipeline, then the dense MDS
//!   matrix–vector product runs on the 12×12 array in weight-stationary
//!   systolic order (partial sums accumulate hop by hop).
//! * **Partial round** (Fig. 5b): the first PE column computes the scalar
//!   S-box chain on `state[0]`; the second column's *reverse links*
//!   broadcast the result to all rows and accumulate the `u·state` dot
//!   product bottom-up; the third column computes `state[0]·v + E·state`.
//!
//! Composing these dataflows for the full 8-full/22-partial schedule must
//! (and does — see the tests) reproduce `unizk_hash::poseidon_permute`
//! bit for bit.

use unizk_field::{Field, Goldilocks};
use unizk_hash::poseidon::{constants, FULL_ROUNDS, PARTIAL_ROUNDS, WIDTH};

/// Functional model of the Poseidon mapping on one VSA.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoseidonDataflow;

impl PoseidonDataflow {
    /// A fresh dataflow model.
    pub fn new() -> Self {
        Self
    }

    /// The 4-PE folded S-box row: `((x+c)²)²·(x+c)²·(x+c)` computed in
    /// pipeline steps (PE1: add+square; PE2: square; PE3/4: two multiplies
    /// folded onto two PEs).
    fn sbox_row(x: Goldilocks, c: Goldilocks) -> Goldilocks {
        let t = x + c; // PE 1: constant add
        let t2 = t.square(); // PE 1 (folded second op)
        let t4 = t2.square(); // PE 2
        let t6 = t4 * t2; // PE 3
        t6 * t // PE 4
    }

    /// Weight-stationary systolic matrix–vector product: `out = M · s`,
    /// with partial sums accumulated hop by hop down each column.
    fn systolic_matvec(m: &[[Goldilocks; WIDTH]; WIDTH], s: &[Goldilocks; WIDTH]) -> [Goldilocks; WIDTH] {
        let mut out = [Goldilocks::ZERO; WIDTH];
        // Hop t: every output row accumulates its t-th term — the same
        // MACs a systolic wavefront performs, in wavefront order.
        for t in 0..WIDTH {
            for (row, acc) in out.iter_mut().enumerate() {
                *acc += m[row][t] * s[t];
            }
        }
        out
    }

    /// One full round on the 12×8 folded region (Fig. 5a).
    pub fn full_round(&self, state: &[Goldilocks; WIDTH], r: usize) -> [Goldilocks; WIDTH] {
        let cs = constants();
        let mut sboxed = [Goldilocks::ZERO; WIDTH];
        for (i, out) in sboxed.iter_mut().enumerate() {
            *out = Self::sbox_row(state[i], cs.round_constants[r][i]);
        }
        Self::systolic_matvec(&cs.mds, &sboxed)
    }

    /// The pre-partial round on the full 12×12 array (constant add merged
    /// into the first matmul column, §5.2).
    pub fn pre_partial_round(&self, state: &[Goldilocks; WIDTH]) -> [Goldilocks; WIDTH] {
        let cs = constants();
        let mut added = *state;
        for (x, c) in added.iter_mut().zip(cs.pre_partial_constants.iter()) {
            *x += *c;
        }
        Self::systolic_matvec(&cs.pre_mds, &added)
    }

    /// One partial round on a 12×3 region (Fig. 5b).
    pub fn partial_round(&self, state: &[Goldilocks; WIDTH], r: usize) -> [Goldilocks; WIDTH] {
        let cs = constants();

        // Column 1: scalar pipeline on state[0] (S-box then constant add),
        // flowing top to bottom.
        let t = state[0];
        let t2 = t.square();
        let t4 = t2.square();
        let s0 = t4 * t2 * t + cs.partial_round_constants[r];

        // Column 2, downward pass: the reverse links distribute s0 to all
        // rows while each row forms its u[j]·state[j] term; the terms then
        // accumulate bottom-up along the reverse links into the top PE.
        let mut partial_terms = [Goldilocks::ZERO; WIDTH];
        partial_terms[0] = cs.sparse_u[r][0] * s0;
        for j in 1..WIDTH {
            partial_terms[j] = cs.sparse_u[r][j] * state[j];
        }
        let mut dot = Goldilocks::ZERO;
        for j in (0..WIDTH).rev() {
            // bottom-up accumulation hop
            dot += partial_terms[j];
        }

        // Column 3: scalar–vector multiply-add `s0·v + E·state`, row-wise,
        // with the broadcast s0 from column 2.
        let mut out = [Goldilocks::ZERO; WIDTH];
        out[0] = dot;
        for j in 1..WIDTH {
            out[j] = cs.sparse_v[r][j] * s0 + cs.sparse_diag[r][j] * state[j];
        }
        out
    }

    /// The complete permutation, scheduled as the mapping executes it:
    /// 4 full rounds, the pre-partial round, 22 partial rounds in groups
    /// of four (the 12×3 × 4 arrangement), 4 full rounds.
    pub fn permute(&self, state: &[Goldilocks; WIDTH]) -> [Goldilocks; WIDTH] {
        let mut s = *state;
        for r in 0..FULL_ROUNDS / 2 {
            s = self.full_round(&s, r);
        }
        s = self.pre_partial_round(&s);
        // Groups of four consecutive partial rounds share one array pass.
        let mut r = 0;
        while r < PARTIAL_ROUNDS {
            let group_end = (r + 4).min(PARTIAL_ROUNDS);
            for round in r..group_end {
                s = self.partial_round(&s, round);
            }
            r = group_end;
        }
        for r in FULL_ROUNDS / 2..FULL_ROUNDS {
            s = self.full_round(&s, r);
        }
        s
    }

    /// PEs a full round occupies after folding (12 rows × 8 columns,
    /// §5.2).
    pub const FULL_ROUND_PES: (usize, usize) = (12, 8);
    /// PEs one partial round occupies (12 × 3); four rounds fill the VSA.
    pub const PARTIAL_ROUND_PES: (usize, usize) = (12, 3);
    /// Latency of four chained partial rounds (paper: 145 cycles).
    pub const FOUR_PARTIAL_ROUNDS_LATENCY: u64 = 145;
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::TestRng as StdRng;
    use unizk_field::PrimeField64;
    use unizk_hash::poseidon_permute;

    fn random_state(rng: &mut StdRng) -> [Goldilocks; WIDTH] {
        let mut s = [Goldilocks::ZERO; WIDTH];
        for x in s.iter_mut() {
            *x = Goldilocks::random(rng);
        }
        s
    }

    #[test]
    fn dataflow_permutation_matches_golden() {
        let mut rng = StdRng::seed_from_u64(700);
        let dataflow = PoseidonDataflow::new();
        for _ in 0..50 {
            let state = random_state(&mut rng);
            let mut golden = state;
            poseidon_permute(&mut golden);
            assert_eq!(dataflow.permute(&state), golden);
        }
    }

    #[test]
    fn zero_state_matches_golden() {
        let dataflow = PoseidonDataflow::new();
        let mut golden = [Goldilocks::ZERO; WIDTH];
        poseidon_permute(&mut golden);
        assert_eq!(dataflow.permute(&[Goldilocks::ZERO; WIDTH]), golden);
    }

    #[test]
    fn region_sizes_match_paper() {
        // 12×8 full-round region, 12×3 partial-round region, four partial
        // rounds per 12×12 array, 145-cycle group latency.
        assert_eq!(PoseidonDataflow::FULL_ROUND_PES, (12, 8));
        assert_eq!(PoseidonDataflow::PARTIAL_ROUND_PES, (12, 3));
        assert_eq!(PoseidonDataflow::PARTIAL_ROUND_PES.1 * 4, 12);
        assert_eq!(PoseidonDataflow::FOUR_PARTIAL_ROUNDS_LATENCY, 145);
    }

    #[test]
    fn sbox_row_is_x_to_the_seventh() {
        let x = Goldilocks::from_u64(12345);
        let c = Goldilocks::from_u64(678);
        assert_eq!(PoseidonDataflow::sbox_row(x, c), (x + c).exp_u64(7));
    }

    #[test]
    fn systolic_matvec_matches_direct() {
        let mut rng = StdRng::seed_from_u64(701);
        let cs = constants();
        let s = random_state(&mut rng);
        let hw = PoseidonDataflow::systolic_matvec(&cs.mds, &s);
        for (i, h) in hw.iter().enumerate() {
            let direct: Goldilocks = (0..WIDTH).map(|j| cs.mds[i][j] * s[j]).sum();
            assert_eq!(*h, direct, "row {i}");
        }
    }
}
