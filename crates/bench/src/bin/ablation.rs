//! Ablation studies for UniZK's design choices (beyond the paper's own
//! figures): the fixed NTT pipeline size (§5.1), the transpose buffer tile
//! size (§5.1 "Data layouts"), the partial-round grouping of the Poseidon
//! mapping (§5.2), and the permutation-argument chunk size (§5.4).
//!
//! Run with: `cargo run --release -p unizk-bench --bin ablation`

use unizk_bench::render::table;
use unizk_core::compiler::Plonky2Instance;
use unizk_core::kernels::{Kernel, Layout, NttVariant};
use unizk_core::mapping::map_kernel;
use unizk_core::ChipConfig;
use unizk_explore::{run_sweep, SweepOptions, SweepSpec};
use unizk_workloads::{App, Scale};

/// Runs one single-axis ablation sweep through the exploration engine
/// (serial, uncached — these grids are a handful of points each).
fn sweep(spec: &SweepSpec) -> unizk_explore::SweepResult {
    run_sweep(spec, &SweepOptions::default()).unwrap_or_else(|e| panic!("ablation sweep: {e}"))
}

fn main() {
    let rows = 1 << 14;
    // Ablations 2 and 4 simulate Fibonacci-shaped Plonky2 instances
    // (135 wires) at 2^14 rows = two bits below paper scale.
    let scale = Scale::Shrunk(App::Fibonacci.full_log_rows() - 14);

    // 1. NTT pipeline size: larger fixed pipelines need fewer decomposed
    //    dimensions (fewer passes) but more register space per PE; the
    //    paper picks 2^5 per half-row.
    println!("Ablation 1: fixed NTT pipeline size (size-2^14 NTT, batch 135)\n");
    let mut cells = Vec::new();
    for log_small in [3usize, 4, 5, 6] {
        let mut chip = ChipConfig::default_chip();
        chip.ntt_pipeline_log2 = log_small;
        let cost = map_kernel(
            &Kernel::Ntt {
                log_n: 14,
                batch: 135,
                variant: NttVariant::ForwardNr,
                layout: Layout::PolyMajor,
            },
            &chip,
        );
        let regs_per_pe = 1 << log_small; // data-buffering bound (§5.1)
        cells.push(vec![
            format!("2^{log_small}"),
            format!("{}", cost.compute_cycles),
            format!("{}", cost.read_bytes + cost.write_bytes),
            format!("{regs_per_pe} x 64b"),
        ]);
    }
    println!(
        "{}",
        table(&["pipeline size", "compute cycles", "DRAM bytes", "PE registers"], &cells)
    );

    // 2. Transpose buffer tile b: bigger tiles make index-major NTT
    //    accesses longer runs (better DRAM efficiency) at b² buffer cost.
    println!("Ablation 2: transpose buffer tile size (index-major NTT)\n");
    let transpose = sweep(
        &SweepSpec::new("ablation-transpose")
            .transpose_b([4, 8, 16, 32])
            .workload(App::Fibonacci, scale),
    );
    let cells: Vec<Vec<String>> = transpose
        .points
        .iter()
        .map(|p| {
            let b = p.chip.transpose_b;
            vec![
                format!("{b}x{b}"),
                format!("{}", p.class_cycles("NTT").unwrap()),
                format!("{} B", b * b * 8),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["tile", "NTT cycles", "buffer capacity"], &cells)
    );

    // 3. Poseidon partial-round grouping: the paper maps 4 consecutive
    //    partial rounds onto 12×3 PE regions; fewer rounds per pass means
    //    more passes per permutation.
    println!("Ablation 3: Poseidon partial-round grouping (cycles per permutation)\n");
    let mut cells = Vec::new();
    for group in [1usize, 2, 4] {
        let passes = 8 + 1 + 22usize.div_ceil(group);
        let region_cols = 3 * group; // 12×3 PEs per group of 4 in the paper
        cells.push(vec![
            format!("{group} rounds/pass"),
            format!("{passes}"),
            format!("12 x {region_cols}"),
        ]);
    }
    println!(
        "{}",
        table(&["grouping", "VSA-cycles/permutation", "PE region"], &cells)
    );

    // 4. Permutation chunk size: more factors per chunk means fewer
    //    committed partial-product polynomials but a higher constraint
    //    degree (and therefore a larger LDE blowup requirement).
    println!("Ablation 4: permutation-argument chunk size (135 wires)\n");
    let chunks = sweep(
        &[3usize, 7, 15]
            .into_iter()
            .fold(SweepSpec::new("ablation-chunk"), |s, chunk| {
                s.workload_with_chunk(App::Fibonacci, scale, chunk)
            }),
    );
    let cells: Vec<Vec<String>> = chunks
        .points
        .iter()
        .map(|p| {
            let chunk = p.workload.chunk_size.unwrap();
            let mut inst = Plonky2Instance::new(rows, 135);
            inst.chunk_size = chunk;
            let perm_polys = inst.num_chunks() * inst.num_challenges;
            let degree = chunk + 1;
            let blowup_needed = degree.next_power_of_two();
            vec![
                format!("{chunk}"),
                format!("{perm_polys}"),
                format!("{degree} (blowup ≥ {blowup_needed})"),
                format!("{}", p.total_cycles),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["chunk size", "perm polys", "constraint degree", "total cycles"],
            &cells
        )
    );
    println!("the paper's choice (7 factors, degree 8) matches the blowup-8 LDE exactly");

    // 5. Replacement policy: the compiler's hand-crafted pinning of wire
    //    data during gate evaluation vs plain LRU (§5.4).
    println!("\nAblation 5: scratchpad replacement policy (gate evaluation, 135 wires)\n");
    use std::collections::HashSet;
    use unizk_core::scratchpad::{Policy, PolyProgram, ScratchpadModel};
    let vec_kb = 64u64 << 10;
    let program = PolyProgram::gate_evaluation(135, 60, 4, vec_kb);
    let mut cells = Vec::new();
    for (label, cap_vecs) in [("tight (wires + 2)", 137u64), ("roomy (wires + 32)", 167u64)] {
        let model = ScratchpadModel::new(cap_vecs * vec_kb);
        let lru = model.simulate(&program, &Policy::Lru);
        let pinned: HashSet<usize> = (0..135).collect();
        let crafted = model.simulate(&program, &Policy::PinnedLru { pinned });
        cells.push(vec![
            label.to_string(),
            format!("{} MB", lru.total_bytes() >> 20),
            format!("{} MB", crafted.total_bytes() >> 20),
            format!("{:.2}x", lru.total_bytes() as f64 / crafted.total_bytes() as f64),
        ]);
    }
    println!(
        "{}",
        table(&["scratchpad", "LRU traffic", "pinned traffic", "saving"], &cells)
    );
}
