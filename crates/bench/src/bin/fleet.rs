//! The fleet-scale proving benchmark: sharded multi-chip sweeps over the
//! chips × HBM-bandwidth × batch × shards grid, exported as
//! `BENCH_FLEET.json`.
//!
//! Every number in the artifact is deterministic — fleet simulations run
//! in integer cycles of the modeled clock and the arrival stream is
//! seeded — so `fleet --compare OLD NEW` gates on *exact* equality of the
//! per-point makespans and the single-chip anchor. Three self-checks gate
//! the artifact before a byte is written:
//!
//! * **anchor** — a 1-chip/1-shard/1-job fleet run of the `BENCH_SIM.json`
//!   reference workload (plonky2 4096×135) must reproduce the single-chip
//!   simulator's cycle count exactly;
//! * **verifier** — every per-shard and aggregation schedule at every
//!   swept point must pass the static verifier (single-graph rules plus
//!   the multi-chip M-rules) with zero error diagnostics;
//! * **schema** — the emitted JSON must carry every field EXPERIMENTS.md
//!   Part 4 documents, checked by re-validating the built artifact.
//!
//! `--smoke` runs a tiny grid, performs all self-checks, and writes
//! nothing.

use std::collections::BTreeMap;

use unizk_core::analyze::{check, check_multi, error_count, render_all};
use unizk_core::compiler::{compile_plonky2, Plonky2Instance};
use unizk_core::{ChipConfig, Simulator};
use unizk_explore::{run_sweep, PointResult, SweepOptions, SweepSpec};
use unizk_fleet::{FleetConfig, FleetSim, ShardPlan, StreamSpec};
use unizk_testkit::json::access::{arr_field, f64_field, obj_field, str_field, u64_field};
use unizk_testkit::json::{parse, Json};
use unizk_testkit::render::table;
use unizk_workloads::{App, Scale};

/// Schema identifier embedded in (and required of) the artifact.
const FLEET_SCHEMA: &str = "unizk-bench-fleet/1";

/// The committed benchmark grid: {1,2,4,8} chips × two HBM bandwidths ×
/// two batch sizes × two shard counts over the `BENCH_SIM.json` reference
/// workload (fibonacci shrunk to 2^12 rows).
fn bench_spec() -> SweepSpec {
    SweepSpec::new("bench-fleet")
        .bandwidth_scales([(1, 2), (1, 1)])
        .fleet_axes([1, 2, 4, 8], [1, 4], [1, 4])
        .workload(App::Fibonacci, Scale::Shrunk(4))
}

/// The CI smoke grid: small enough for seconds, still multi-chip,
/// sharded, and batched.
fn smoke_spec() -> SweepSpec {
    SweepSpec::new("bench-fleet-smoke")
        .fleet_axes([1, 2], [1, 2], [1])
        .workload(App::Fibonacci, Scale::Shrunk(6))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--compare") {
        if args.len() != 3 {
            eprintln!("usage: fleet --compare OLD.json NEW.json");
            std::process::exit(2);
        }
        compare(&args[1], &args[2]);
        return;
    }

    let mut out_dir = ".".to_string();
    let mut smoke = false;
    let mut jobs = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => out_dir = expect_value(&mut it, "--out-dir"),
            "--jobs" => jobs = parse_num(&expect_value(&mut it, "--jobs")),
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: fleet [--smoke] [--out-dir DIR] [--jobs N] \
                     | fleet --compare OLD.json NEW.json"
                );
                std::process::exit(2);
            }
        }
    }

    let spec = if smoke { smoke_spec() } else { bench_spec() };
    let artifact = build_artifact(&spec, jobs);
    self_check(&artifact);
    print_surface(&artifact);
    if smoke {
        println!("smoke: anchor, verifier, and schema self-checks passed");
        return;
    }
    let path = format!("{out_dir}/BENCH_FLEET.json");
    std::fs::write(&path, artifact.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

fn expect_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
        .clone()
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s:?}");
        std::process::exit(2);
    })
}

/// Statically verifies every per-shard and aggregation schedule the spec
/// sweeps; refuses (panics) on any error diagnostic. Returns the number
/// of schedules checked.
fn verify_schedules(spec: &SweepSpec) -> usize {
    let mut verified = 0;
    for point in spec.enumerate().expect("spec enumerates") {
        let f = point.fleet.as_ref().expect("fleet benchmark points carry fleet params");
        let plan = ShardPlan::new(point.instance(), f.shards).expect("shard plan");
        let mut diags = check(plan.shard_graph(), &point.chip);
        verified += 1;
        if let Some(agg) = plan.aggregation_graph() {
            diags.extend(check(agg, &point.chip));
            verified += 1;
        }
        diags.extend(check_multi(&plan.multi_schedule(), &point.chip));
        assert_eq!(
            error_count(&diags),
            0,
            "refusing to publish: schedule errors at {}x{}:\n{}",
            f.chips,
            f.shards,
            render_all(&diags)
        );
    }
    verified
}

/// The 1-chip/1-shard/1-job anchor: the fleet simulator degenerates to
/// the single-chip simulator on the `BENCH_SIM.json` reference workload.
/// Returns `(fleet_makespan, simulator_cycles)`; the caller asserts them
/// equal.
fn anchor() -> (u64, u64) {
    let inst = Plonky2Instance::new(1 << 12, 135);
    let chip = ChipConfig::default_chip();
    let sim_cycles = Simulator::new(chip).run(&compile_plonky2(&inst)).total_cycles;
    let plan = ShardPlan::new(inst, 1).expect("anchor plan");
    let stream = StreamSpec { jobs: 1, batch: 1, interarrival_cycles: 0, seed: 0 };
    let report = FleetSim::new(FleetConfig::with_chips(1)).run(&plan, &stream);
    (report.makespan_cycles, sim_cycles)
}

/// Verifies, sweeps, anchors, and assembles the artifact. Panics (writing
/// nothing) on any verifier error or anchor mismatch.
fn build_artifact(spec: &SweepSpec, jobs: usize) -> Json {
    let verified = verify_schedules(spec);
    println!("verifier: {verified} schedules clean");

    let (fleet_makespan, sim_cycles) = anchor();
    assert_eq!(
        fleet_makespan, sim_cycles,
        "refusing to publish: 1-chip/1-shard fleet run diverged from the simulator"
    );
    println!("anchor: 1-chip/1-shard makespan = simulator cycles = {sim_cycles}");

    let opts = SweepOptions { jobs, cache_dir: None, fresh: false, prune: false };
    let result = run_sweep(spec, &opts).expect("fleet sweep runs");

    Json::obj([
        ("schema", Json::str(FLEET_SCHEMA)),
        ("spec", spec.to_json()),
        ("deterministic", Json::Bool(true)),
        (
            "anchor",
            Json::obj([
                ("workload", Json::str("plonky2_4096x135")),
                ("fleet_makespan_cycles", Json::from(fleet_makespan)),
                ("simulator_cycles", Json::from(sim_cycles)),
            ]),
        ),
        ("verified_schedules", Json::from(verified)),
        ("num_points", Json::from(result.points.len())),
        ("points", Json::arr(result.points.iter().map(PointResult::to_json))),
        ("pareto", Json::arr(result.pareto.iter().map(|&i| Json::from(i)))),
    ])
}

/// Prints the chips × bandwidth throughput surface (best shards/batch
/// cell per pair).
fn print_surface(artifact: &Json) {
    let points = arr_field(artifact, "points", "BENCH_FLEET");
    // (chips, channels) -> best proofs/s across the shards × batch cells.
    let mut best: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for p in &points {
        let fleet = Json::Obj(obj_field(p, "fleet", "point"));
        let chip = Json::Obj(obj_field(p, "chip", "point"));
        let key = (
            u64_field(&fleet, "chips", "fleet"),
            u64_field(&chip, "hbm_channels", "chip"),
        );
        let tput = f64_field(&fleet, "throughput_proofs_per_sec", "fleet");
        let cell = best.entry(key).or_insert(0.0);
        if tput > *cell {
            *cell = tput;
        }
    }
    let mut channels: Vec<u64> = best.keys().map(|&(_, ch)| ch).collect();
    channels.sort_unstable();
    channels.dedup();
    let mut chips: Vec<u64> = best.keys().map(|&(c, _)| c).collect();
    chips.sort_unstable();
    chips.dedup();

    let mut headers = vec!["chips".to_string()];
    headers.extend(channels.iter().map(|ch| format!("{ch} ch (proofs/s)")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = chips
        .iter()
        .map(|&c| {
            let mut row = vec![c.to_string()];
            row.extend(channels.iter().map(|&ch| {
                best.get(&(c, ch)).map_or("-".to_string(), |t| format!("{t:.2}"))
            }));
            row
        })
        .collect();
    println!("\nthroughput surface (best shards/batch per cell):");
    print!("{}", table(&header_refs, &rows));
}

/// Validates the artifact against the EXPERIMENTS.md Part 4 schema.
fn self_check(artifact: &Json) {
    let ctx = "BENCH_FLEET";
    assert_eq!(str_field(artifact, "schema", ctx), FLEET_SCHEMA);
    assert_eq!(artifact.get("deterministic"), Some(&Json::Bool(true)));

    let anchor = Json::Obj(obj_field(artifact, "anchor", ctx));
    assert_eq!(str_field(&anchor, "workload", ctx), "plonky2_4096x135");
    assert_eq!(
        u64_field(&anchor, "fleet_makespan_cycles", ctx),
        u64_field(&anchor, "simulator_cycles", ctx),
        "anchor: fleet and simulator cycles must be identical"
    );

    assert!(u64_field(artifact, "verified_schedules", ctx) > 0);
    let points = arr_field(artifact, "points", ctx);
    assert_eq!(
        u64_field(artifact, "num_points", ctx),
        points.len() as u64,
        "num_points must count the points array"
    );

    let mut chips_seen = Vec::new();
    let mut channels_seen = Vec::new();
    let mut batches_seen = Vec::new();
    for p in &points {
        let chip = Json::Obj(obj_field(p, "chip", ctx));
        channels_seen.push(u64_field(&chip, "hbm_channels", ctx));
        let fleet = Json::Obj(obj_field(p, "fleet", ctx));
        chips_seen.push(u64_field(&fleet, "chips", ctx));
        batches_seen.push(u64_field(&fleet, "batch", ctx));

        let shard = u64_field(&fleet, "shard_cycles", ctx);
        let agg = u64_field(&fleet, "agg_cycles", ctx);
        let transfer = u64_field(&fleet, "transfer_cycles", ctx);
        let makespan = u64_field(&fleet, "makespan_cycles", ctx);
        assert!(shard > 0, "shard proofs take cycles");
        assert!(makespan >= shard + agg + transfer, "makespan bounds one job");
        assert_eq!(makespan, u64_field(p, "total_cycles", ctx));
        if u64_field(&fleet, "shards", ctx) > 1 {
            assert!(transfer > 0, "sharding must charge the interconnect");
            assert!(u64_field(&fleet, "payload_bytes", ctx) > 0);
        } else {
            assert_eq!(transfer, 0);
            assert_eq!(agg, 0);
        }
        assert!(f64_field(&fleet, "throughput_proofs_per_sec", ctx) > 0.0);
        for axis in ["utilization_mean", "utilization_min", "utilization_max"] {
            let u = f64_field(&fleet, axis, ctx);
            assert!((0.0..=1.0).contains(&u), "{axis} out of range: {u}");
        }
        for axis in ["sojourn", "service"] {
            let p50 = u64_field(&fleet, &format!("{axis}_p50_cycles"), ctx);
            let p95 = u64_field(&fleet, &format!("{axis}_p95_cycles"), ctx);
            let p99 = u64_field(&fleet, &format!("{axis}_p99_cycles"), ctx);
            assert!(p50 <= p95 && p95 <= p99, "{axis} percentiles not monotone");
        }
    }
    for seen in [&mut chips_seen, &mut channels_seen, &mut batches_seen] {
        seen.sort_unstable();
        seen.dedup();
    }
    assert!(chips_seen.len() >= 2, "need at least two chip counts");
    assert!(!channels_seen.is_empty(), "need a bandwidth axis");
    assert!(!batches_seen.is_empty(), "need a batch axis");
}

/// Diffs two fleet artifacts: the anchor and every per-point makespan are
/// gated on exact equality (the whole artifact is deterministic);
/// throughput deltas are printed per matching point.
fn compare(old_path: &str, new_path: &str) {
    let old = load(old_path);
    let new = load(new_path);
    for (artifact, path) in [(&old, old_path), (&new, new_path)] {
        assert_eq!(
            str_field(artifact, "schema", path),
            FLEET_SCHEMA,
            "{path}: not a fleet artifact"
        );
    }
    self_check(&new);

    let anchor_of = |artifact: &Json, path: &str| {
        let a = Json::Obj(obj_field(artifact, "anchor", path));
        u64_field(&a, "simulator_cycles", path)
    };
    let (a_old, a_new) = (anchor_of(&old, old_path), anchor_of(&new, new_path));
    if a_old != a_new {
        eprintln!("error: anchor drifted: {a_old} -> {a_new} cycles");
        std::process::exit(1);
    }

    // Per-point surface, keyed by the fleet axes + bandwidth.
    let surface = |artifact: &Json, path: &str| -> BTreeMap<String, (u64, f64)> {
        arr_field(artifact, "points", path)
            .iter()
            .map(|p| {
                let fleet = Json::Obj(obj_field(p, "fleet", path));
                let chip = Json::Obj(obj_field(p, "chip", path));
                let key = format!(
                    "chips={} shards={} batch={} ch={}",
                    u64_field(&fleet, "chips", path),
                    u64_field(&fleet, "shards", path),
                    u64_field(&fleet, "batch", path),
                    u64_field(&chip, "hbm_channels", path),
                );
                let makespan = u64_field(&fleet, "makespan_cycles", path);
                let tput = f64_field(&fleet, "throughput_proofs_per_sec", path);
                (key, (makespan, tput))
            })
            .collect()
    };
    let olds = surface(&old, old_path);
    let news = surface(&new, new_path);
    let mut drift = false;
    let mut keys: Vec<&String> = olds.keys().chain(news.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        match (olds.get(key), news.get(key)) {
            (Some((m_old, t_old)), Some((m_new, t_new))) => {
                if m_old != m_new {
                    println!("makespan drift: {key}: {m_old} -> {m_new} cycles");
                    drift = true;
                } else if t_old != t_new {
                    println!("throughput drift: {key}: {t_old:.3} -> {t_new:.3} proofs/s");
                    drift = true;
                }
            }
            (a, b) => {
                println!(
                    "point set drift: {key}: {} -> {}",
                    if a.is_some() { "present" } else { "absent" },
                    if b.is_some() { "present" } else { "absent" },
                );
                drift = true;
            }
        }
    }
    if drift {
        eprintln!("error: fleet surface drifted (see above)");
        std::process::exit(1);
    }
    println!("fleet surface: {} points identical", news.len());
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}
