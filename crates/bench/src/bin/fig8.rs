//! Reproduces Fig. 8: UniZK execution-time breakdown by kernel type.

use unizk_bench::render::{fmt_pct, table};
use unizk_bench::{fig8, scale_from_args};
use unizk_workloads::App;

fn main() {
    let scale = scale_from_args();
    println!("Figure 8: Performance breakdown by kernel types in UniZK");
    println!("scale: {scale:?}\n");
    let bars = fig8(scale, &App::ALL);
    let cells: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.app.to_string(),
                fmt_pct(b.fractions[0]),
                fmt_pct(b.fractions[1]),
                fmt_pct(b.fractions[2]),
            ]
        })
        .collect();
    println!("{}", table(&["App", "NTT", "Poly", "Hash"], &cells));
    println!("paper shape: after acceleration, polynomial kernels become the bottleneck");
}
