//! Reproduces Table 6: Groth16/PipeZK vs Starky+Plonky2/UniZK, including
//! the multi-block 840× throughput comparison.

use unizk_bench::render::{fmt_seconds, fmt_speedup, table};
use unizk_bench::{table6, table6_throughput};

fn main() {
    println!("Table 6: CPU and ASIC comparison across protocols (single data block)\n");
    let rows = table6();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                fmt_seconds(r.groth16_cpu_s),
                fmt_seconds(r.starky_cpu_s),
                fmt_seconds(r.pipezk_s),
                fmt_seconds(r.unizk_s),
                fmt_speedup(r.pipezk_speedup()),
                fmt_speedup(r.unizk_speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["App", "Groth16 CPU", "Starky+Plonky2 CPU", "PipeZK", "UniZK",
              "PipeZK speedup", "UniZK speedup"],
            &cells
        )
    );
    println!("paper: PipeZK 102/97 ms (15×/12×), UniZK 12.6/27.7 ms (159×/123×)\n");

    let tp = table6_throughput(256);
    println!(
        "Multi-block SHA-256 throughput: UniZK {:.0} blocks/s vs PipeZK {:.0} blocks/s -> {}",
        tp.unizk_blocks_per_s,
        tp.pipezk_blocks_per_s,
        fmt_speedup(tp.ratio()),
    );
    println!("paper: >8400 blocks/s vs 10 blocks/s -> 840×");
}
