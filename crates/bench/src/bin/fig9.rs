//! Reproduces Fig. 9: UniZK speedups over the CPU by kernel type.

use unizk_bench::render::{fmt_speedup, table};
use unizk_bench::{fig9, scale_from_args};
use unizk_workloads::App;

fn main() {
    let scale = scale_from_args();
    println!("Figure 9: Speedups by kernel types in UniZK (vs multi-threaded CPU)");
    println!("scale: {scale:?}\n");
    let bars = fig9(scale, &App::ALL);
    let cells: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.app.to_string(),
                fmt_speedup(b.speedups[0]),
                fmt_speedup(b.speedups[1]),
                fmt_speedup(b.speedups[2]),
            ]
        })
        .collect();
    println!("{}", table(&["App", "NTT", "Poly", "Hash"], &cells));
    println!("paper shape: hash > NTT > poly (poly 20–92×, NTT/hash up to 191×)");
}
