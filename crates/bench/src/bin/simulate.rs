//! Artifact-style simulation driver, mirroring the published artifact's
//! command line (paper appendix §A.7):
//!
//! ```text
//! cargo run --release -p unizk-bench --bin simulate -- --app ecdsa -r 8 -t 32 -e 0
//! ```
//!
//! * `--app NAME` — factorial | fibonacci | ecdsa | sha256 | imagecrop | mvm
//! * `-r MB` — scratchpad capacity in MB (default 8)
//! * `-t N` — number of VSAs (default 32)
//! * `-e K` — target kernel: 0 = NTTs only, 1 = hash only; omit for the
//!   entire proof generation
//! * `--shrink N` / `--full` — workload scale (default shrink 6)
//! * `--json [PATH]` — also emit the report as JSON: pretty-printed to
//!   `PATH` if given (e.g. `results/ecdsa.json`), compact to stdout
//!   otherwise
//!
//! Output follows the artifact's log format (`total_num_write_requests`,
//! `total_num_read_requests`, `memory_system_cycles`).

use unizk_core::compiler::compile_plonky2;
use unizk_core::{ChipConfig, Graph, KernelClassTag, Simulator};
use unizk_testkit::json::{Json, ToJson};
use unizk_workloads::{App, Scale};

fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let app = match parse_flag(&args, "--app").as_deref() {
        Some("factorial") | None => App::Factorial,
        Some("fibonacci") => App::Fibonacci,
        Some("ecdsa") => App::Ecdsa,
        Some("sha256") => App::Sha256,
        Some("imagecrop") => App::ImageCrop,
        Some("mvm") => App::Mvm,
        Some(other) => {
            eprintln!("unknown app: {other}");
            std::process::exit(2);
        }
    };
    let scratchpad_mb: usize = parse_flag(&args, "-r")
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let vsas: usize = parse_flag(&args, "-t")
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let kernel_filter: Option<u32> = parse_flag(&args, "-e").and_then(|v| v.parse().ok());
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        parse_flag(&args, "--shrink")
            .and_then(|v| v.parse().ok())
            .map(Scale::Shrunk)
            .unwrap_or(Scale::Shrunk(6))
    };

    let chip = ChipConfig::default_chip()
        .with_vsas(vsas)
        .with_scratchpad_mb(scratchpad_mb);
    let full_graph = compile_plonky2(&app.plonky2_instance(scale));

    // -e 0: NTTs only; -e 1: hash computations only (artifact semantics).
    let graph = match kernel_filter {
        None => full_graph,
        Some(code) => {
            let keep = match code {
                0 => KernelClassTag::Ntt,
                1 => KernelClassTag::Hash,
                other => {
                    eprintln!("unknown -e value: {other} (0 = NTT, 1 = hash)");
                    std::process::exit(2);
                }
            };
            let mut g = Graph::new();
            for node in full_graph.nodes() {
                if node.kernel.class() == keep {
                    g.push_seq(node.kernel.clone(), node.label.clone());
                }
            }
            g
        }
    };

    let (report, trace) = Simulator::new(chip.clone()).run_with_trace(&graph);
    println!(
        "app: {} | scale: {scale:?} | {} kernel nodes | scratchpad {scratchpad_mb} MB | {vsas} VSAs",
        app.name(),
        graph.len()
    );
    if args.iter().any(|a| a == "--trace") {
        println!("\nper-node schedule (paper §5.5):");
        for t in &trace {
            println!(
                "  [{:>12} .. {:>12}] {:<40} {:>5?} {} ({} B, {})",
                t.start_cycle,
                t.end_cycle,
                t.label,
                t.class,
                if t.memory_bound() { "mem-bound" } else { "compute-bound" },
                t.bytes,
                if t.vsas_used > 0 { format!("{} VSAs", t.vsas_used) } else { "overlapped".into() },
            );
        }
        println!();
    }
    print!("{}", report.artifact_log());
    println!(
        "=> {:.3} ms at {} GHz",
        report.seconds(&chip) * 1e3,
        chip.freq_ghz
    );

    if let Some(json_pos) = args.iter().position(|a| a == "--json") {
        let doc = Json::obj([
            ("app", Json::str(app.name())),
            ("scale", Json::str(format!("{scale:?}"))),
            ("scratchpad_mb", Json::from(scratchpad_mb)),
            ("vsas", Json::from(vsas)),
            ("milliseconds", Json::from(report.seconds(&chip) * 1e3)),
            ("report", report.to_json()),
        ]);
        // A bare `--json` (or one followed by another flag) prints to stdout;
        // `--json PATH` writes a pretty-printed file.
        match args.get(json_pos + 1).filter(|p| !p.starts_with('-')) {
            Some(path) => {
                if let Some(dir) = std::path::Path::new(path).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                std::fs::write(path, doc.to_string_pretty() + "\n")
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("wrote {path}");
            }
            None => println!("{doc}"),
        }
    }
}
