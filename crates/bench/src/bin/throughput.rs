//! The proof-serving throughput benchmark: a fixed synthetic job stream
//! pushed through `unizk_serve::Pipeline` at several worker counts and
//! pool modes, exported as `BENCH_THROUGHPUT.json`.
//!
//! Two self-checks gate the artifact:
//!
//! * **identity** — every proof the pipeline produces, in every run, must
//!   be byte-identical to the one-shot `prove` output for the same spec
//!   (the pipeline's determinism contract); the artifact records one
//!   `(bytes, fnv1a64)` digest per distinct spec, and
//! * **schema** — the emitted JSON must carry every field EXPERIMENTS.md
//!   Part 3 documents, checked by re-validating the built artifact.
//!
//! Throughput and latency figures are *informational* (they move with the
//! host); the identity digests are the *invariant* that
//! `throughput --compare OLD NEW` fails on.
//!
//! `--smoke` runs the cheap CI workload (16 small jobs, 2 workers, both
//! pool modes), performs both self-checks, and writes nothing.

// Wall-clock nanoseconds fit u64 for any realistic run length.
#![allow(clippy::cast_possible_truncation)]

use std::collections::BTreeMap;

use unizk_explore::hash::fnv1a64;
use unizk_serve::{Job, Pipeline, PipelineConfig, PipelineReport, PoolMode, TrafficSpec};
use unizk_testkit::json::access::{arr_field, f64_field, obj_field, str_field, u64_field};
use unizk_testkit::json::{parse, Json};
use unizk_testkit::stats::PercentileSummary;

/// Schema identifier embedded in (and required of) the artifact.
const THROUGHPUT_SCHEMA: &str = "unizk-bench-throughput/1";

/// The benchmark job count: enough for several jobs per worker at every
/// tested worker count, small enough to finish in seconds.
const DEFAULT_JOBS: usize = 16;

/// The `(workers, pool)` grid the benchmark sweeps.
const BENCH_RUNS: [(usize, PoolMode); 4] = [
    (1, PoolMode::Off),
    (1, PoolMode::PerWorker),
    (2, PoolMode::PerWorker),
    (4, PoolMode::PerWorker),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--compare") {
        if args.len() != 3 {
            eprintln!("usage: throughput --compare OLD.json NEW.json");
            std::process::exit(2);
        }
        compare(&args[1], &args[2]);
        return;
    }

    let mut out_dir = ".".to_string();
    let mut smoke = false;
    let mut jobs = DEFAULT_JOBS;
    let mut seed: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out-dir" => out_dir = expect_value(&mut it, "--out-dir"),
            "--jobs" => jobs = parse_num(&expect_value(&mut it, "--jobs")),
            "--seed" => seed = Some(parse_num(&expect_value(&mut it, "--seed"))),
            other => {
                eprintln!(
                    "unknown argument {other:?}\n\
                     usage: throughput [--smoke] [--out-dir DIR] [--jobs N] [--seed S] \
                     | throughput --compare OLD.json NEW.json"
                );
                std::process::exit(2);
            }
        }
    }

    let mut traffic = if smoke {
        TrafficSpec::smoke(jobs)
    } else {
        TrafficSpec::baseline(jobs)
    };
    if let Some(s) = seed {
        traffic.seed = s;
    }
    let runs: &[(usize, PoolMode)] = if smoke {
        &[(2, PoolMode::Off), (2, PoolMode::PerWorker)]
    } else {
        &BENCH_RUNS
    };

    let artifact = bench_throughput(&traffic, runs, smoke);
    self_check(&artifact);
    if smoke {
        println!("smoke: identity and schema self-checks passed");
        return;
    }
    let path = format!("{out_dir}/BENCH_THROUGHPUT.json");
    std::fs::write(&path, artifact.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

fn expect_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next()
        .unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
        .clone()
}

fn parse_num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s:?}");
        std::process::exit(2);
    })
}

/// Runs the job stream through every `(workers, pool)` cell, verifies the
/// identity contract against one-shot references, and builds the artifact.
fn bench_throughput(traffic: &TrafficSpec, runs: &[(usize, PoolMode)], smoke: bool) -> Json {
    // Jobs are the parallelism axis of this benchmark: each proof runs
    // single-threaded so worker-count scaling is not confounded by the
    // intra-proof thread pool.
    unizk_field::set_parallelism(1);
    let jobs = traffic.generate();

    // One-shot reference bytes per distinct spec — the identity oracle.
    let mut references: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    for job in &jobs {
        references
            .entry(job.spec.key())
            .or_insert_with(|| job.spec.prove(None).expect("one-shot proves").to_bytes());
    }

    let mut verified_jobs = 0usize;
    let mut run_objs = Vec::new();
    for &(workers, pool) in runs {
        let config = PipelineConfig {
            workers,
            queue_depth: (2 * workers).max(2),
            pool,
        };
        let report = Pipeline::run(jobs.clone(), &config);
        verified_jobs += verify_identity(&jobs, &report, &references, workers, pool);
        println!(
            "workers={workers} pool={}: {:.2} proofs/s, sojourn p50 {:.1} ms p99 {:.1} ms{}",
            pool_name(pool),
            report.throughput_per_sec(),
            report.sojourn_percentile_ns(50) as f64 / 1e6,
            report.sojourn_percentile_ns(99) as f64 / 1e6,
            report.pool_stats().map_or(String::new(), |s| {
                format!(
                    ", pool hit rate {:.1}%",
                    s.hit_rate().unwrap_or(0.0) * 100.0
                )
            }),
        );
        run_objs.push(run_json(&config, &report));
    }
    unizk_field::set_parallelism(0);

    let digests = references.iter().map(|(key, bytes)| {
        (
            key.clone(),
            Json::obj([
                ("bytes", Json::from(bytes.len())),
                ("fnv1a64", Json::str(format!("{:#018x}", fnv1a64(bytes)))),
            ]),
        )
    });
    let mix = traffic.mix.iter().map(|m| {
        Json::obj([
            ("app", Json::str(m.app.name())),
            ("rows", Json::from(m.rows)),
            ("weight", Json::from(m.weight)),
        ])
    });
    Json::obj([
        ("schema", Json::str(THROUGHPUT_SCHEMA)),
        (
            "traffic",
            Json::obj([
                (
                    "profile",
                    Json::str(if smoke { "smoke" } else { "baseline" }),
                ),
                ("jobs", Json::from(traffic.jobs)),
                ("seed", Json::from(traffic.seed)),
                ("threads_per_worker", Json::from(1u64)),
                ("mix", Json::arr(mix)),
                (
                    "fri",
                    Json::obj([
                        ("rate_bits", Json::from(traffic.config.fri.rate_bits)),
                        ("num_queries", Json::from(traffic.config.fri.num_queries)),
                        (
                            "proof_of_work_bits",
                            Json::from(traffic.config.fri.proof_of_work_bits),
                        ),
                        (
                            "final_poly_len",
                            Json::from(traffic.config.fri.final_poly_len),
                        ),
                    ]),
                ),
            ]),
        ),
        (
            "identity",
            Json::obj([
                ("verified_jobs", Json::from(verified_jobs)),
                ("distinct_specs", Json::from(references.len())),
                ("proof_digests", Json::obj(digests)),
            ]),
        ),
        ("runs", Json::arr(run_objs)),
    ])
}

/// Asserts every pipeline proof equals its one-shot reference; returns the
/// number of verified proofs.
fn verify_identity(
    jobs: &[Job],
    report: &PipelineReport,
    references: &BTreeMap<String, Vec<u8>>,
    workers: usize,
    pool: PoolMode,
) -> usize {
    assert_eq!(report.results.len(), jobs.len(), "job lost in the pipeline");
    for (job, result) in jobs.iter().zip(&report.results) {
        assert_eq!(job.id, result.id, "id mapping broken");
        let bytes = result.proof_bytes().expect("pipeline job proves");
        assert_eq!(
            &bytes,
            &references[&job.spec.key()],
            "identity violation: job {} ({}) under workers={workers} pool={}",
            job.id,
            job.spec.key(),
            pool_name(pool),
        );
    }
    jobs.len()
}

fn run_json(config: &PipelineConfig, report: &PipelineReport) -> Json {
    // Both axes go through the shared testkit summary so this artifact,
    // the serve accessors, and the fleet report agree on the estimator.
    let latency = |values: &dyn Fn() -> Vec<u64>| {
        let s = PercentileSummary::from_values(values().into_iter());
        Json::obj([
            ("p50_ns", Json::from(s.p50)),
            ("p95_ns", Json::from(s.p95)),
            ("p99_ns", Json::from(s.p99)),
        ])
    };
    let pool_json = report.pool_stats().map_or(Json::Null, |s| {
        let per_pool = [
            ("gl", s.gl),
            ("ext", s.ext),
            ("digests", s.digests),
            ("gl_tables", s.gl_tables),
        ]
        .map(|(name, p)| {
            (
                name,
                Json::obj([
                    ("hits", Json::from(p.hits)),
                    ("misses", Json::from(p.misses)),
                ]),
            )
        });
        Json::obj([
            ("hits", Json::from(s.total().hits)),
            ("misses", Json::from(s.total().misses)),
            ("hit_rate", Json::from(s.hit_rate().unwrap_or(0.0))),
            ("pools", Json::obj(per_pool)),
        ])
    });
    Json::obj([
        ("workers", Json::from(config.workers)),
        ("pool", Json::str(pool_name(config.pool))),
        ("queue_depth", Json::from(config.queue_depth)),
        ("wall_ns", Json::from(report.wall_ns)),
        (
            "throughput_per_sec",
            Json::from(report.throughput_per_sec()),
        ),
        (
            "latency_ns",
            Json::obj([
                (
                    "sojourn",
                    latency(&|| report.results.iter().map(|r| r.sojourn_ns).collect()),
                ),
                (
                    "service",
                    latency(&|| report.results.iter().map(|r| r.service_ns).collect()),
                ),
            ]),
        ),
        (
            "utilization",
            Json::arr(report.utilization().into_iter().map(Json::from)),
        ),
        (
            "worker_jobs",
            Json::arr(report.workers.iter().map(|w| Json::from(w.jobs))),
        ),
        ("pool_stats", pool_json),
    ])
}

fn pool_name(pool: PoolMode) -> &'static str {
    match pool {
        PoolMode::Off => "off",
        PoolMode::PerWorker => "per_worker",
    }
}

/// Validates the artifact against the EXPERIMENTS.md Part 3 schema: every
/// documented field present and well-typed, latency percentiles monotone,
/// identity digests covering every distinct spec.
fn self_check(artifact: &Json) {
    let ctx = "BENCH_THROUGHPUT";
    assert_eq!(str_field(artifact, "schema", ctx), THROUGHPUT_SCHEMA);

    let traffic = Json::Obj(obj_field(artifact, "traffic", ctx));
    let jobs = u64_field(&traffic, "jobs", ctx);
    assert!(jobs > 0, "traffic.jobs must be positive");
    let _ = u64_field(&traffic, "seed", ctx);
    assert_eq!(u64_field(&traffic, "threads_per_worker", ctx), 1);
    let mix = arr_field(&traffic, "mix", ctx);
    assert!(!mix.is_empty(), "traffic.mix must not be empty");
    for entry in &mix {
        let _ = str_field(entry, "app", ctx);
        assert!(u64_field(entry, "rows", ctx).is_power_of_two());
        let _ = u64_field(entry, "weight", ctx);
    }

    let identity = Json::Obj(obj_field(artifact, "identity", ctx));
    let distinct = u64_field(&identity, "distinct_specs", ctx);
    let digests = obj_field(&identity, "proof_digests", ctx);
    assert_eq!(digests.len() as u64, distinct, "digest per distinct spec");
    for (key, digest) in &digests {
        assert!(u64_field(digest, "bytes", key) > 0);
        let fnv = str_field(digest, "fnv1a64", key);
        assert!(
            fnv.len() == 18 && fnv.starts_with("0x"),
            "digest {key}: fnv1a64 must be 0x + 16 hex digits, got {fnv:?}"
        );
    }

    let runs = arr_field(artifact, "runs", ctx);
    assert!(runs.len() >= 2, "need at least two runs to compare scaling");
    for run in &runs {
        let workers = u64_field(run, "workers", ctx);
        let pool = str_field(run, "pool", ctx);
        assert!(pool == "off" || pool == "per_worker", "bad pool {pool:?}");
        assert!(u64_field(run, "wall_ns", ctx) > 0);
        assert!(f64_field(run, "throughput_per_sec", ctx) > 0.0);
        let latency = Json::Obj(obj_field(run, "latency_ns", ctx));
        for axis in ["sojourn", "service"] {
            let l = Json::Obj(obj_field(&latency, axis, ctx));
            let p50 = u64_field(&l, "p50_ns", ctx);
            let p95 = u64_field(&l, "p95_ns", ctx);
            let p99 = u64_field(&l, "p99_ns", ctx);
            assert!(p50 <= p95 && p95 <= p99, "{axis} percentiles not monotone");
        }
        let util = arr_field(run, "utilization", ctx);
        let worker_jobs = arr_field(run, "worker_jobs", ctx);
        let lanes = workers.max(1) as usize;
        assert_eq!(util.len(), lanes);
        assert_eq!(worker_jobs.len(), lanes);
        assert_eq!(
            worker_jobs.iter().filter_map(Json::as_u64).sum::<u64>(),
            jobs,
            "worker job counts must sum to the stream length"
        );
        let pool_stats = run.get("pool_stats").expect("pool_stats field");
        match (pool.as_str(), pool_stats) {
            ("off", Json::Null) => {}
            ("per_worker", stats) => {
                let hits = u64_field(stats, "hits", ctx);
                let misses = u64_field(stats, "misses", ctx);
                let rate = f64_field(stats, "hit_rate", ctx);
                assert!(hits + misses > 0, "pooled run recorded no takes");
                assert!((0.0..=1.0).contains(&rate));
            }
            (p, s) => panic!("pool {p:?} inconsistent with pool_stats {s}"),
        }
    }
}

/// Diffs two throughput artifacts: identity digests are the gated
/// invariant, throughput/latency deltas are informational.
fn compare(old_path: &str, new_path: &str) {
    let old = load(old_path);
    let new = load(new_path);
    for (artifact, path) in [(&old, old_path), (&new, new_path)] {
        assert_eq!(
            str_field(artifact, "schema", path),
            THROUGHPUT_SCHEMA,
            "{path}: not a throughput artifact"
        );
    }
    self_check(&new);

    // Invariant: the per-spec proof digests. A changed byte count or hash
    // means the serving pipeline changed what it proves — gate failure.
    let digest_map = |artifact: &Json, path: &str| -> BTreeMap<String, (u64, String)> {
        let identity = Json::Obj(obj_field(artifact, "identity", path));
        obj_field(&identity, "proof_digests", path)
            .into_iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    (u64_field(&v, "bytes", &k), str_field(&v, "fnv1a64", &k)),
                )
            })
            .collect()
    };
    let olds = digest_map(&old, old_path);
    let news = digest_map(&new, new_path);
    let mut drift = false;
    let mut keys: Vec<&String> = olds.keys().chain(news.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        match (olds.get(key), news.get(key)) {
            (Some(a), Some(b)) if a == b => {}
            (a, b) => {
                let show = |v: Option<&(u64, String)>| {
                    v.map_or_else(
                        || "absent".to_string(),
                        |(bytes, fnv)| format!("{bytes}B {fnv}"),
                    )
                };
                println!("identity drift: {key} {} -> {}", show(a), show(b));
                drift = true;
            }
        }
    }
    if drift {
        eprintln!("error: proof identity drifted (see above)");
        std::process::exit(1);
    }
    println!("identity: {} spec digests identical", news.len());

    // Informational: throughput and latency per matching run.
    let run_key = |run: &Json, path: &str| {
        format!(
            "workers={} pool={}",
            u64_field(run, "workers", path),
            str_field(run, "pool", path)
        )
    };
    let old_runs = arr_field(&old, "runs", old_path);
    let new_runs = arr_field(&new, "runs", new_path);
    for o in &old_runs {
        let key = run_key(o, old_path);
        let Some(n) = new_runs.iter().find(|r| run_key(r, new_path) == key) else {
            println!("{key}: removed");
            continue;
        };
        let t_old = f64_field(o, "throughput_per_sec", old_path);
        let t_new = f64_field(n, "throughput_per_sec", new_path);
        let pct = if t_old == 0.0 {
            "n/a".to_string()
        } else {
            format!("{:+.1}%", (t_new - t_old) / t_old * 100.0)
        };
        println!("{key}: {t_old:.2} -> {t_new:.2} proofs/s ({pct})");
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}
