//! Reproduces Table 1: single-threaded CPU proving-time breakdown.

use unizk_bench::render::{fmt_pct, fmt_seconds, table};
use unizk_bench::{scale_from_args, table1};
use unizk_workloads::App;

fn main() {
    let scale = scale_from_args();
    println!("Table 1: Plonky2 proof generation time breakdown (single-threaded CPU)");
    println!("scale: {scale:?} (paper runs at full scale; percentages are scale-stable)\n");
    let rows = table1(scale, &App::ALL);
    let mut cells = Vec::new();
    for r in &rows {
        cells.push(vec![
            r.app.to_string(),
            fmt_seconds(r.seconds),
            format!("{} ({})", fmt_pct(r.fractions[0]), fmt_pct(r.paper_fractions[0])),
            format!("{} ({})", fmt_pct(r.fractions[1]), fmt_pct(r.paper_fractions[1])),
            format!("{} ({})", fmt_pct(r.fractions[2]), fmt_pct(r.paper_fractions[2])),
            format!("{} ({})", fmt_pct(r.fractions[3]), fmt_pct(r.paper_fractions[3])),
            format!("{} ({})", fmt_pct(r.fractions[4]), fmt_pct(r.paper_fractions[4])),
        ]);
    }
    println!(
        "{}",
        table(
            &["App", "Time", "Polynomial (paper)", "NTT (paper)", "Merkle (paper)",
              "Other Hash (paper)", "Layout (paper)"],
            &cells
        )
    );
}
