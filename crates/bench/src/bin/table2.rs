//! Reproduces Table 2: area and power breakdown of UniZK.

use unizk_bench::render::table;
use unizk_bench::table2;
use unizk_core::ChipConfig;

fn main() {
    println!("Table 2: Area and power breakdown of UniZK (modeled; see DESIGN.md §2.6)\n");
    let b = table2(&ChipConfig::default_chip());
    let paper = [
        ("32 VSAs", 21.3, 58.0),
        ("8 MB scratchpad", 5.0, 1.0),
        ("Twiddle factor generator", 0.8, 2.6),
        ("Transpose buffer", 0.9, 3.1),
        ("2 HBM PHYs", 29.8, 31.7),
    ];
    let mut cells: Vec<Vec<String>> = b
        .components
        .iter()
        .zip(paper)
        .map(|(c, (pname, parea, ppow))| {
            vec![
                pname.to_string(),
                format!("{:.1}", c.area_mm2),
                format!("{parea:.1}"),
                format!("{:.1}", c.power_w),
                format!("{ppow:.1}"),
            ]
        })
        .collect();
    cells.push(vec![
        "Total".into(),
        format!("{:.1}", b.total_area_mm2()),
        "57.8".into(),
        format!("{:.1}", b.total_power_w()),
        "96.4".into(),
    ]);
    println!(
        "{}",
        table(
            &["Component", "Area (mm²)", "paper", "Power (W)", "paper"],
            &cells
        )
    );
}
