//! Reproduces Fig. 10: performance sensitivity when scaling hardware
//! resources (MVM workload).

use unizk_bench::render::table;
use unizk_bench::{fig10, scale_from_args};

fn main() {
    let scale = scale_from_args();
    println!("Figure 10: Performance sensitivity of UniZK (MVM)");
    println!("scale: {scale:?}; normalized to the default configuration\n");
    for series in fig10(scale) {
        let cells: Vec<Vec<String>> = series
            .points
            .iter()
            .map(|(label, perf)| vec![label.clone(), format!("{perf:.2}")])
            .collect();
        println!("{}", table(&[series.parameter, "Normalized perf"], &cells));
    }
    println!("paper shape: scratchpad/bandwidth move NTT+poly; VSAs move Merkle");
}
