//! Reproduces Table 5: Starky base proofs + Plonky2 recursive compression.

use unizk_bench::render::{fmt_seconds, fmt_speedup, table};
use unizk_bench::{scale_from_args, table5};
use unizk_workloads::starks::StarkApp;

fn main() {
    let scale = scale_from_args();
    println!("Table 5: Starky + Plonky2 performance vs the CPU");
    println!("scale: {scale:?}\n");
    let rows = table5(
        scale,
        &[StarkApp::Factorial, StarkApp::Fibonacci, StarkApp::Sha256],
    );
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.stage.to_string(),
                fmt_seconds(r.cpu_s),
                fmt_seconds(r.unizk_s),
                fmt_speedup(r.cpu_s / r.unizk_s),
                format!("{} kB", r.proof_bytes / 1000),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["App", "Stage", "CPU", "UniZK", "Speedup", "Proof size"],
            &cells
        )
    );
    println!("paper: base speedups 67–267×, recursive 142–167×; sizes 259–778 kB base, ~155 kB recursive");
}
