//! Reproduces Table 4: memory and VSA utilization breakdown in UniZK.

use unizk_bench::render::{fmt_pct, table};
use unizk_bench::{scale_from_args, table4};
use unizk_workloads::App;

fn main() {
    let scale = scale_from_args();
    println!("Table 4: Memory and VSA utilization breakdown in UniZK");
    println!("scale: {scale:?}\n");
    let rows = table4(scale, &App::ALL);
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                fmt_pct(r.ntt.0),
                fmt_pct(r.ntt.1),
                fmt_pct(r.poly.0),
                fmt_pct(r.poly.1),
                fmt_pct(r.hash.0),
                fmt_pct(r.hash.1),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["App", "NTT mem", "NTT VSA", "Poly mem", "Poly VSA", "Hash mem", "Hash VSA"],
            &cells
        )
    );
    println!("paper pattern: NTT mem ≈ 47–56% / VSA ≈ 4–5%; Poly both low; Hash VSA ≈ 95–97%");
}
