//! The perf-trajectory baseline: a fixed prover workload and a fixed
//! simulator configuration, exported as machine-readable JSON.
//!
//! Every future PR is compared against the `BENCH_PROVER.json` /
//! `BENCH_SIM.json` this binary emits (see EXPERIMENTS.md for the schema
//! and `scripts/bench.sh` for the canonical invocation). Two self-checks
//! gate the artifacts:
//!
//! * the five Table 1 kernel classes must sum to within 5% of the total
//!   measured prove time (the trace layer covers the prover), and
//! * two back-to-back simulator runs must be cycle-identical (the
//!   simulator is deterministic).
//!
//! `baseline --compare OLD NEW` diffs two artifacts of the same schema.

// Wall-clock nanoseconds fit u64 for any realistic run length.
#![allow(clippy::cast_possible_truncation)]

use std::time::Instant;

use unizk_core::compiler::{compile_plonky2, compile_starky, Plonky2Instance, StarkyInstance};
use unizk_core::kernels::KernelClassTag;
use unizk_core::sim::SimReport;
use unizk_core::{ChipConfig, Simulator};
use unizk_fri::{kernel_totals_from, KernelClass};
use unizk_hash::sponge::HashField;
use unizk_hash::SpongeBackend;
use unizk_stark::{prove, verify, FibonacciAir, KbStarkConfig, StarkConfig};
use unizk_testkit::json::access::{arr_field, obj_field, str_field, u64_field};
use unizk_testkit::json::{parse, Json, ToJson};
use unizk_testkit::trace;

/// Schema identifiers embedded in (and required of) the artifacts.
const PROVER_SCHEMA: &str = "unizk-bench-prover/1";
const SIM_SCHEMA: &str = "unizk-bench-sim/1";

/// The fixed prover workload: Fibonacci Starky, 2^12 rows, single thread
/// (the paper's Table 1 breakdown methodology).
const LOG_ROWS: usize = 12;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--compare") {
        if args.len() != 3 {
            eprintln!("usage: baseline --compare OLD.json NEW.json");
            std::process::exit(2);
        }
        compare(&args[1], &args[2]);
        return;
    }

    let usage = || -> ! {
        eprintln!(
            "usage: baseline [--out-dir DIR] [--field goldilocks|koalabear] \
             | baseline --compare OLD.json NEW.json"
        );
        std::process::exit(2);
    };
    let mut out_dir = ".".to_string();
    let mut field = "goldilocks".to_string();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--out-dir" => out_dir = value.clone(),
            "--field" => field = value.clone(),
            _ => usage(),
        }
    }

    match field.as_str() {
        "goldilocks" => {
            let prover = bench_prover();
            let prover_path = format!("{out_dir}/BENCH_PROVER.json");
            std::fs::write(&prover_path, prover.to_string_pretty() + "\n")
                .unwrap_or_else(|e| panic!("writing {prover_path}: {e}"));
            println!("wrote {prover_path}");

            let sim = bench_sim();
            let sim_path = format!("{out_dir}/BENCH_SIM.json");
            std::fs::write(&sim_path, sim.to_string_pretty() + "\n")
                .unwrap_or_else(|e| panic!("writing {sim_path}: {e}"));
            println!("wrote {sim_path}");
        }
        // KoalaBear runs the same prover workload over the 31-bit stack.
        // Its artifact is a *separate* trajectory (BENCH_PROVER_KB.json),
        // never compared against the Goldilocks baseline: counters differ
        // by design (4 challenge rounds, degree-4 openings, Poseidon2).
        // The chip simulator models the Goldilocks datapath, so no
        // BENCH_SIM.json is written in this mode.
        "koalabear" => {
            let prover = bench_prover_kb();
            let prover_path = format!("{out_dir}/BENCH_PROVER_KB.json");
            std::fs::write(&prover_path, prover.to_string_pretty() + "\n")
                .unwrap_or_else(|e| panic!("writing {prover_path}: {e}"));
            println!("wrote {prover_path}");
        }
        _ => usage(),
    }
}

/// Proves the fixed Starky instance single-threaded over Goldilocks and
/// reports the Table 1 kernel breakdown plus the full span tree.
fn bench_prover() -> Json {
    bench_prover_over("fibonacci_starky", "goldilocks", &StarkConfig::standard())
}

/// The same workload over the 31-bit KoalaBear stack (Poseidon2 sponge,
/// degree-4 extension openings).
fn bench_prover_kb() -> Json {
    bench_prover_over(
        "fibonacci_starky",
        "koalabear",
        &KbStarkConfig::standard_over(),
    )
}

/// Proves the fixed Starky instance single-threaded over the given
/// `(field, hasher)` stack and reports the Table 1 kernel breakdown plus
/// the full span tree.
fn bench_prover_over<F: HashField, H: SpongeBackend<F = F>>(
    app: &str,
    field: &str,
    config: &StarkConfig<F, H>,
) -> Json {
    let rows = 1 << LOG_ROWS;
    let air = FibonacciAir::new(rows);

    unizk_field::set_parallelism(1);
    trace::reset();
    let start = Instant::now();
    let proof = prove(&air, config).expect("baseline trace satisfies the AIR");
    let total_ns = start.elapsed().as_nanos() as u64;
    let report = trace::snapshot();
    unizk_field::set_parallelism(0);
    verify(&air, &proof, config).expect("baseline proof verifies");

    let totals = kernel_totals_from(&report);
    let covered_ns: u64 = totals.iter().map(|(_, d)| d.as_nanos() as u64).sum();
    let coverage = covered_ns as f64 / total_ns as f64;
    println!(
        "prover: {} rows in {:.1} ms, proof {} bytes, kernel coverage {:.1}%",
        rows,
        total_ns as f64 / 1e6,
        proof.size_bytes(),
        coverage * 100.0
    );
    for (class, d) in &totals {
        println!(
            "  {:<16} {:>10.2} ms  ({:>5.1}%)",
            class.name(),
            d.as_secs_f64() * 1e3,
            d.as_nanos() as f64 / total_ns as f64 * 100.0
        );
    }
    assert!(
        (0.95..=1.05).contains(&coverage),
        "kernel classes must sum to within 5% of total prove time, got {coverage:.3}"
    );

    let classes = totals.iter().map(|(class, d)| {
        let ns = d.as_nanos() as u64;
        (
            class.name(),
            Json::obj([
                ("ns", Json::from(ns)),
                ("fraction", Json::from(ns as f64 / total_ns as f64)),
            ]),
        )
    });
    Json::obj([
        ("schema", Json::str(PROVER_SCHEMA)),
        (
            "workload",
            Json::obj([
                ("app", Json::str(app)),
                ("field", Json::str(field)),
                ("rows", Json::from(rows)),
                ("width", Json::from(air.width())),
                ("threads", Json::from(1u64)),
                (
                    "fri",
                    Json::obj([
                        ("rate_bits", Json::from(config.fri.rate_bits)),
                        ("num_queries", Json::from(config.fri.num_queries)),
                        ("proof_of_work_bits", Json::from(config.fri.proof_of_work_bits)),
                        ("final_poly_len", Json::from(config.fri.final_poly_len)),
                    ]),
                ),
            ]),
        ),
        ("total_ns", Json::from(total_ns)),
        ("proof_bytes", Json::from(proof.size_bytes())),
        ("coverage", Json::from(coverage)),
        ("kernel_classes", Json::obj(classes)),
        ("trace", report.to_json()),
    ])
}

/// Runs the fixed simulator config on two fixed workloads, twice, and
/// reports the (verified cycle-identical) statistics.
fn bench_sim() -> Json {
    let chip = ChipConfig::default_chip();
    let starky = compile_starky(&StarkyInstance::new(1 << LOG_ROWS, 2, 2));
    let plonky2 = compile_plonky2(&Plonky2Instance::new(1 << LOG_ROWS, 135));
    let workloads = [("starky_fib_4096", &starky), ("plonky2_4096x135", &plonky2)];

    // One simulator for the measured pass: DRAM probe patterns memoize, so
    // each pattern's efficiency counter records exactly one measurement.
    trace::reset();
    let sim = Simulator::new(chip.clone());
    let reports: Vec<SimReport> = workloads.iter().map(|(_, g)| sim.run(g)).collect();
    let counters = trace::snapshot().counters;

    // Determinism gate: a fresh simulator must reproduce every statistic.
    let sim2 = Simulator::new(chip.clone());
    for ((name, graph), first) in workloads.iter().zip(&reports) {
        let second = sim2.run(graph);
        assert_eq!(
            (first.total_cycles, first.read_requests, first.write_requests),
            (second.total_cycles, second.read_requests, second.write_requests),
            "simulator must be cycle-identical across runs ({name})"
        );
        for tag in CLASS_TAGS {
            assert_eq!(first.class(tag), second.class(tag), "{name}/{}", tag.name());
        }
        println!(
            "sim: {name}: {} cycles ({:.3} ms at 1 GHz), deterministic",
            first.total_cycles,
            first.seconds(&chip) * 1e3
        );
    }

    let workloads_json = workloads.iter().zip(&reports).map(|((name, _), r)| {
        let utilization = CLASS_TAGS.into_iter().map(|tag| {
            (
                tag.name(),
                Json::obj([
                    ("vsa", Json::from(r.vsa_utilization(tag))),
                    ("memory", Json::from(r.memory_utilization(tag))),
                    ("cycle_fraction", Json::from(r.cycle_fraction(tag))),
                ]),
            )
        });
        let mut obj = vec![("name".to_string(), Json::str(*name))];
        if let Json::Obj(fields) = r.to_json() {
            obj.extend(fields);
        }
        obj.push(("utilization".to_string(), Json::obj(utilization)));
        Json::Obj(obj)
    });

    Json::obj([
        ("schema", Json::str(SIM_SCHEMA)),
        (
            "chip",
            Json::obj([
                ("num_vsas", Json::from(chip.num_vsas)),
                ("peak_bytes_per_cycle", Json::from(chip.hbm.peak_bytes_per_cycle())),
            ]),
        ),
        ("deterministic", Json::from(true)),
        ("workloads", Json::arr(workloads_json)),
        (
            "trace_counters",
            Json::obj(counters.into_iter().map(|(k, v)| (k, Json::from(v)))),
        ),
    ])
}

const CLASS_TAGS: [KernelClassTag; 4] = [
    KernelClassTag::Ntt,
    KernelClassTag::Hash,
    KernelClassTag::Poly,
    KernelClassTag::Transpose,
];

/// Diffs two artifacts of the same schema, printing the headline total and
/// per-class changes.
fn compare(old_path: &str, new_path: &str) {
    let old = load(old_path);
    let new = load(new_path);
    let old_schema = str_field(&old, "schema", old_path);
    let new_schema = str_field(&new, "schema", new_path);
    assert_eq!(
        old_schema, new_schema,
        "cannot compare different schemas ({old_schema} vs {new_schema})"
    );

    match old_schema.as_str() {
        PROVER_SCHEMA => {
            let t_old = u64_field(&old, "total_ns", old_path);
            let t_new = u64_field(&new, "total_ns", new_path);
            println!(
                "total: {:.1} ms -> {:.1} ms ({})",
                t_old as f64 / 1e6,
                t_new as f64 / 1e6,
                delta(t_old, t_new)
            );
            let classes_old = obj_field(&old, "kernel_classes", old_path);
            let classes_new = obj_field(&new, "kernel_classes", new_path);
            // Kernel-class *coverage* is part of the artifact contract: a
            // class that appears on one side but not the other — or loses
            // its `ns`/`fraction` fields — means the instrumentation
            // stopped covering that kernel. That must fail the gate with a
            // readable diff, not panic halfway through printing it. Diff
            // the union of class keys (the known classes plus anything
            // either artifact carries), so vanished *and* newly appeared
            // classes both surface.
            let mut names: Vec<&str> = KernelClass::ALL.iter().map(KernelClass::name).collect();
            for (k, _) in classes_old.iter().chain(classes_new.iter()) {
                if !names.contains(&k.as_str()) {
                    names.push(k);
                }
            }
            let mut coverage_drift = false;
            for name in names {
                let entry = |classes: &[(String, Json)]| {
                    classes.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
                };
                match (entry(&classes_old), entry(&classes_new)) {
                    // Known class measured by neither artifact: coverage
                    // agrees, nothing to diff.
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        let fields = |v: &Json| {
                            match (v.get("ns"), v.get("fraction")) {
                                (Some(&Json::UInt(ns)), Some(f)) if f.as_f64().is_some() => {
                                    Some(ns)
                                }
                                _ => None,
                            }
                        };
                        match (fields(&a), fields(&b)) {
                            (Some(a_ns), Some(b_ns)) => println!(
                                "  {:<16} {:>10.2} ms -> {:>10.2} ms ({})",
                                name,
                                a_ns as f64 / 1e6,
                                b_ns as f64 / 1e6,
                                delta(a_ns, b_ns)
                            ),
                            (a_ok, b_ok) => {
                                let show = |ok: Option<u64>| {
                                    if ok.is_some() { "ns+fraction" } else { "malformed" }
                                };
                                println!(
                                    "coverage drift: {name} {} -> {}",
                                    show(a_ok),
                                    show(b_ok)
                                );
                                coverage_drift = true;
                            }
                        }
                    }
                    (Some(_), None) => {
                        println!("coverage drift: {name} present -> MISSING (class vanished)");
                        coverage_drift = true;
                    }
                    (None, Some(_)) => {
                        println!("coverage drift: {name} MISSING -> present (class appeared)");
                        coverage_drift = true;
                    }
                }
            }
            if coverage_drift {
                eprintln!("error: kernel-class coverage drifted (see above)");
                std::process::exit(1);
            }
            // Deterministic work counters are an *invariant*, not a metric:
            // the time deltas above are informational, counter drift is an
            // error. Report the two separately and fail on any drift.
            let counters_old = trace_counters(&old, old_path);
            let counters_new = trace_counters(&new, new_path);
            let mut drift = false;
            let mut names: Vec<&String> =
                counters_old.keys().chain(counters_new.keys()).collect();
            names.sort();
            names.dedup();
            for name in names {
                match (counters_old.get(name), counters_new.get(name)) {
                    (Some(a), Some(b)) if a == b => {}
                    (a, b) => {
                        let show = |v: Option<&u64>| {
                            v.map_or_else(|| "absent".to_string(), u64::to_string)
                        };
                        println!("counter drift: {name} {} -> {}", show(a), show(b));
                        drift = true;
                    }
                }
            }
            let p_old = u64_field(&old, "proof_bytes", old_path);
            let p_new = u64_field(&new, "proof_bytes", new_path);
            if p_old != p_new {
                println!("counter drift: proof_bytes {p_old} -> {p_new}");
                drift = true;
            }
            if drift {
                eprintln!("error: deterministic counters drifted (see above)");
                std::process::exit(1);
            }
            println!(
                "counters: identical ({} tracked, proof {p_new} bytes)",
                counters_old.len()
            );
        }
        SIM_SCHEMA => {
            let olds = arr_field(&old, "workloads", old_path);
            let news = arr_field(&new, "workloads", new_path);
            for w_old in &olds {
                let name = str_field(w_old, "name", old_path);
                let Some(w_new) = news
                    .iter()
                    .find(|w| str_field(w, "name", new_path) == name)
                else {
                    println!("{name}: removed");
                    continue;
                };
                let a = u64_field(w_old, "total_cycles", old_path);
                let b = u64_field(w_new, "total_cycles", new_path);
                println!("{name}: {a} -> {b} cycles ({})", delta(a, b));
            }
        }
        other => panic!("unknown schema {other:?}"),
    }
}

/// Extracts the deterministic work counters (`trace.counters`) from a
/// prover artifact as a name → value map.
fn trace_counters(artifact: &Json, path: &str) -> std::collections::BTreeMap<String, u64> {
    let trace = obj_field(artifact, "trace", path);
    let (_, counters) = trace
        .iter()
        .find(|(k, _)| k == "counters")
        .unwrap_or_else(|| panic!("{path}: missing trace.counters"));
    match counters {
        Json::Obj(pairs) => pairs
            .iter()
            .map(|(name, v)| match v {
                Json::UInt(n) => (name.clone(), *n),
                other => panic!("{path}: counter {name:?} is not a u64: {other}"),
            })
            .collect(),
        other => panic!("{path}: trace.counters is not an object: {other}"),
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn delta(old: u64, new: u64) -> String {
    if old == 0 {
        return "n/a".to_string();
    }
    let pct = (new as f64 - old as f64) / old as f64 * 100.0;
    format!("{pct:+.1}%")
}
