//! Reproduces Table 3: end-to-end CPU vs GPU vs UniZK comparison.

use unizk_bench::render::{fmt_seconds, fmt_speedup, table};
use unizk_bench::{scale_from_args, table3};
use unizk_workloads::App;

fn main() {
    let scale = scale_from_args();
    println!("Table 3: Overall performance comparison for Plonky2");
    println!("scale: {scale:?}; paper values (full scale) in parentheses\n");
    let rows = table3(scale, &App::ALL);
    let mut cells = Vec::new();
    let mut unizk_speedups = Vec::new();
    let mut gpu_speedups = Vec::new();
    for r in &rows {
        unizk_speedups.push(r.unizk_speedup());
        gpu_speedups.push(r.gpu_speedup());
        cells.push(vec![
            r.app.to_string(),
            format!("{} ({:.3} s)", fmt_seconds(r.cpu_s), r.paper[0]),
            format!("{} ({:.3} s)", fmt_seconds(r.gpu_s), r.paper[1]),
            fmt_speedup(r.gpu_speedup()),
            format!("{} ({:.3} s)", fmt_seconds(r.unizk_s), r.paper[2]),
            fmt_speedup(r.unizk_speedup()),
        ]);
    }
    println!(
        "{}",
        table(
            &["App", "CPU (paper)", "GPU (paper)", "GPU speedup", "UniZK (paper)", "UniZK speedup"],
            &cells
        )
    );
    let geo = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!(
        "geomean speedups: GPU {} | UniZK {} (paper averages: 2.4× / 97×)",
        fmt_speedup(geo(&gpu_speedups)),
        fmt_speedup(geo(&unizk_speedups))
    );
}
