//! Plain-text table rendering for the harness binaries.
//!
//! The implementation lives in [`unizk_testkit::render`] so that library
//! crates (notably `unizk-explore`, which this crate depends on for the
//! ablation harness) can render reports without a dependency cycle; this
//! module re-exports it under the historical `unizk_bench::render` path.
//!
//! # Example
//!
//! ```
//! let out = unizk_bench::render::table(
//!     &["App", "Time"],
//!     &[vec!["Factorial".into(), "0.8".into()]],
//! );
//! assert!(out.contains("Factorial"));
//! ```

pub use unizk_testkit::render::{fmt_pct, fmt_seconds, fmt_speedup, table};
