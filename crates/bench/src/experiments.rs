//! Generators for every table and figure of the paper's evaluation.
//!
//! Each generator returns plain data so the binaries can print it and the
//! integration tests can assert the paper's qualitative claims (who wins,
//! by roughly what factor). DESIGN.md §4 is the experiment index.

use unizk_core::chipmodel::AreaPowerBreakdown;
use unizk_core::compiler::{compile_plonky2, compile_starky};
use unizk_core::{ChipConfig, KernelClassTag, SimReport, Simulator};
use unizk_fri::KernelClass;
use unizk_plonk::CircuitConfig;
use unizk_stark::{aggregate, prove as stark_prove, StarkConfig};
use unizk_workloads::starks::{BitMixAir, FactorialAir, StarkApp};
use unizk_workloads::{run_cpu, App, GpuModel, Groth16Model, PipeZkModel, Scale};

/// Runs the UniZK simulator for an app at a scale.
pub fn simulate_app(app: App, scale: Scale, chip: &ChipConfig) -> SimReport {
    let graph = compile_plonky2(&app.plonky2_instance(scale));
    Simulator::new(chip.clone()).run(&graph)
}

// ---------------------------------------------------------------- Table 1

/// One Table 1 row: measured single-thread CPU breakdown vs the paper's.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Application name.
    pub app: &'static str,
    /// Measured single-thread proving time (s).
    pub seconds: f64,
    /// Measured fractions: `[poly, ntt, merkle, other hash, layout]`.
    pub fractions: [f64; 5],
    /// Paper fractions for the same columns.
    pub paper_fractions: [f64; 5],
}

/// Paper Table 1 percentages, column order `[poly, ntt, merkle, other,
/// layout]`.
fn paper_table1(app: App) -> [f64; 5] {
    match app {
        App::Factorial => [0.134, 0.218, 0.624, 0.000, 0.024],
        App::Fibonacci => [0.121, 0.200, 0.658, 0.001, 0.020],
        App::Ecdsa => [0.249, 0.157, 0.572, 0.002, 0.020],
        App::Sha256 => [0.115, 0.190, 0.670, 0.000, 0.025],
        App::ImageCrop => [0.115, 0.171, 0.688, 0.003, 0.023],
        App::Mvm => [0.137, 0.159, 0.657, 0.001, 0.046],
    }
}

/// Reproduces Table 1: single-threaded CPU proving-time breakdown.
pub fn table1(scale: Scale, apps: &[App]) -> Vec<Table1Row> {
    apps.iter()
        .map(|&app| {
            let run = run_cpu(app, scale, 1);
            let f = |c| run.fraction(c);
            Table1Row {
                app: app.name(),
                seconds: run.total.as_secs_f64(),
                fractions: [
                    f(KernelClass::Polynomial),
                    f(KernelClass::Ntt),
                    f(KernelClass::MerkleTree),
                    f(KernelClass::OtherHash),
                    f(KernelClass::LayoutTransform),
                ],
                paper_fractions: paper_table1(app),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table 2

/// Reproduces Table 2: the chip area/power breakdown.
pub fn table2(chip: &ChipConfig) -> AreaPowerBreakdown {
    AreaPowerBreakdown::for_chip(chip)
}

// ---------------------------------------------------------------- Table 3

/// One Table 3 row.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Application name.
    pub app: &'static str,
    /// Measured multi-threaded CPU time (s).
    pub cpu_s: f64,
    /// Modeled GPU time (s).
    pub gpu_s: f64,
    /// Simulated UniZK time (s).
    pub unizk_s: f64,
    /// Paper's CPU/GPU/UniZK times for reference.
    pub paper: [f64; 3],
}

impl Table3Row {
    /// GPU speedup over the CPU.
    pub fn gpu_speedup(&self) -> f64 {
        self.cpu_s / self.gpu_s
    }

    /// UniZK speedup over the CPU.
    pub fn unizk_speedup(&self) -> f64 {
        self.cpu_s / self.unizk_s
    }
}

/// Reproduces Table 3: end-to-end CPU vs GPU vs UniZK.
pub fn table3(scale: Scale, apps: &[App]) -> Vec<Table3Row> {
    let chip = ChipConfig::default_chip();
    let gpu = GpuModel::a100();
    apps.iter()
        .map(|&app| {
            let cpu = run_cpu(app, scale, 0);
            let inst = app.plonky2_instance(scale);
            let gpu_s = gpu.prove_seconds(&inst);
            let report = simulate_app(app, scale, &chip);
            let p = app.paper();
            Table3Row {
                app: app.name(),
                cpu_s: cpu.total.as_secs_f64(),
                gpu_s,
                unizk_s: report.seconds(&chip),
                paper: [p.cpu_s, p.gpu_s, p.unizk_s],
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table 4

/// One Table 4 row: per-kernel-class utilizations on UniZK.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Application name.
    pub app: &'static str,
    /// `(memory util, VSA util)` for NTT.
    pub ntt: (f64, f64),
    /// `(memory util, VSA util)` for polynomial kernels.
    pub poly: (f64, f64),
    /// `(memory util, VSA util)` for hash kernels.
    pub hash: (f64, f64),
}

/// Reproduces Table 4: memory-bandwidth and VSA utilization per class.
pub fn table4(scale: Scale, apps: &[App]) -> Vec<Table4Row> {
    let chip = ChipConfig::default_chip();
    apps.iter()
        .map(|&app| {
            let r = simulate_app(app, scale, &chip);
            let pick = |t| (r.memory_utilization(t), r.vsa_utilization(t));
            Table4Row {
                app: app.name(),
                ntt: pick(KernelClassTag::Ntt),
                poly: pick(KernelClassTag::Poly),
                hash: pick(KernelClassTag::Hash),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table 5

/// One Table 5 row: a Starky base proof or its recursive compression.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Application name.
    pub app: &'static str,
    /// `"Base"` or `"Recursive"`.
    pub stage: &'static str,
    /// Measured CPU time (s).
    pub cpu_s: f64,
    /// Simulated UniZK time (s).
    pub unizk_s: f64,
    /// Proof size in bytes (from the real proof).
    pub proof_bytes: usize,
}

/// The Starky base proof + CPU measurement for one app at a scale.
fn stark_base(app: StarkApp, scale: Scale) -> (f64, unizk_stark::StarkProof, usize) {
    let (full_log, _) = app.full_dims();
    let log_rows = match scale {
        Scale::Full => full_log,
        Scale::Shrunk(bits) => full_log.saturating_sub(bits).max(10),
    };
    let config = StarkConfig::standard();
    let start = std::time::Instant::now();
    let proof = match app {
        StarkApp::Factorial => stark_prove(&FactorialAir::new(1 << log_rows), &config),
        StarkApp::Fibonacci => {
            stark_prove(&unizk_stark::FibonacciAir::new(1 << log_rows), &config)
        }
        StarkApp::Sha256 | StarkApp::Aes128 => {
            stark_prove(&BitMixAir::new(1 << log_rows, app.full_dims().1), &config)
        }
    }
    .expect("workload AIR must prove");
    (start.elapsed().as_secs_f64(), proof, log_rows)
}

/// Reproduces Table 5: Starky base + Plonky2 recursive stages.
pub fn table5(scale: Scale, apps: &[StarkApp]) -> Vec<Table5Row> {
    let chip = ChipConfig::default_chip();
    let mut rows = Vec::new();
    for &app in apps {
        let (base_cpu, base_proof, log_rows) = stark_base(app, scale);
        let base_report =
            Simulator::new(chip.clone()).run(&compile_starky(&app.instance(log_rows)));
        rows.push(Table5Row {
            app: app.name(),
            stage: "Base",
            cpu_s: base_cpu,
            unizk_s: base_report.seconds(&chip),
            proof_bytes: base_proof.size_bytes(),
        });

        // Recursive aggregation: a fixed-dimension Plonky2 proof
        // (DESIGN.md §2.3).
        let start = std::time::Instant::now();
        let agg = aggregate(&base_proof, CircuitConfig::standard()).expect("aggregates");
        let rec_cpu = start.elapsed().as_secs_f64();
        let rec_inst = unizk_core::compiler::Plonky2Instance::new(
            1 << unizk_stark::aggregate::RECURSIVE_LOG_ROWS,
            135,
        );
        let rec_report = Simulator::new(chip.clone()).run(&compile_plonky2(&rec_inst));
        rows.push(Table5Row {
            app: app.name(),
            stage: "Recursive",
            cpu_s: rec_cpu,
            unizk_s: rec_report.seconds(&chip),
            proof_bytes: agg.size_bytes(),
        });
    }
    rows
}

// ---------------------------------------------------------------- Table 6

/// One Table 6 row.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Application name.
    pub app: &'static str,
    /// Groth16 CPU time (modeled, s).
    pub groth16_cpu_s: f64,
    /// Starky+Plonky2 CPU time (measured, s).
    pub starky_cpu_s: f64,
    /// PipeZK end-to-end time (modeled, s).
    pub pipezk_s: f64,
    /// UniZK end-to-end time (simulated, s).
    pub unizk_s: f64,
}

impl Table6Row {
    /// PipeZK speedup over the Groth16 CPU.
    pub fn pipezk_speedup(&self) -> f64 {
        self.groth16_cpu_s / self.pipezk_s
    }

    /// UniZK speedup over the Starky+Plonky2 CPU.
    pub fn unizk_speedup(&self) -> f64 {
        self.starky_cpu_s / self.unizk_s
    }
}

/// Single-block trace height for the Table 6 workloads.
fn block_log_rows(app: StarkApp) -> usize {
    match app {
        StarkApp::Sha256 => 12,
        StarkApp::Aes128 => 10,
        _ => 12,
    }
}

/// Reproduces Table 6's timing comparison (single data block).
pub fn table6() -> Vec<Table6Row> {
    let chip = ChipConfig::default_chip();
    let groth16 = Groth16Model::cpu();
    let pipezk = PipeZkModel::published();
    [StarkApp::Sha256, StarkApp::Aes128]
        .into_iter()
        .map(|app| {
            let inst = match app {
                StarkApp::Sha256 => unizk_workloads::pipezk::Groth16Instance::sha256_block(),
                _ => unizk_workloads::pipezk::Groth16Instance::aes128_block(),
            };
            let log_rows = block_log_rows(app);

            // Measured Starky base (single block) + recursive stage.
            let config = StarkConfig::standard();
            let air = BitMixAir::new(1 << log_rows, app.full_dims().1);
            let start = std::time::Instant::now();
            let base = stark_prove(&air, &config).expect("proves");
            let _agg = aggregate(&base, CircuitConfig::standard()).expect("aggregates");
            let starky_cpu_s = start.elapsed().as_secs_f64();

            // UniZK: simulated base + recursive.
            let base_report =
                Simulator::new(chip.clone()).run(&compile_starky(&app.instance(log_rows)));
            let rec_inst = unizk_core::compiler::Plonky2Instance::new(
                1 << unizk_stark::aggregate::RECURSIVE_LOG_ROWS,
                135,
            );
            let rec_report = Simulator::new(chip.clone()).run(&compile_plonky2(&rec_inst));
            let unizk_s = base_report.seconds(&chip) + rec_report.seconds(&chip);

            Table6Row {
                app: app.name(),
                groth16_cpu_s: groth16.prove_seconds(inst),
                starky_cpu_s,
                pipezk_s: pipezk.prove_seconds(inst),
                unizk_s,
            }
        })
        .collect()
}

/// Table 6's throughput claim: blocks/s when amortizing the recursive
/// stage over many blocks (the paper: UniZK >8400 SHA-256 blocks/s vs
/// PipeZK's 10 → 840×).
#[derive(Clone, Debug)]
pub struct ThroughputComparison {
    /// UniZK blocks/s with `batch_blocks` per base proof.
    pub unizk_blocks_per_s: f64,
    /// PipeZK blocks/s (published).
    pub pipezk_blocks_per_s: f64,
    /// Blocks amortized per base proof.
    pub batch_blocks: usize,
}

impl ThroughputComparison {
    /// The headline ratio (the paper's 840×).
    pub fn ratio(&self) -> f64 {
        self.unizk_blocks_per_s / self.pipezk_blocks_per_s
    }
}

/// Reproduces the multi-block throughput comparison for SHA-256.
pub fn table6_throughput(batch_blocks: usize) -> ThroughputComparison {
    let chip = ChipConfig::default_chip();
    let single = block_log_rows(StarkApp::Sha256);
    let log_rows = single + batch_blocks.trailing_zeros() as usize;

    let base = Simulator::new(chip.clone())
        .run(&compile_starky(&StarkApp::Sha256.instance(log_rows)));
    let rec_inst = unizk_core::compiler::Plonky2Instance::new(
        1 << unizk_stark::aggregate::RECURSIVE_LOG_ROWS,
        135,
    );
    let rec = Simulator::new(chip.clone()).run(&compile_plonky2(&rec_inst));
    let total_s = base.seconds(&chip) + rec.seconds(&chip);

    let pipezk = PipeZkModel::published();
    ThroughputComparison {
        unizk_blocks_per_s: batch_blocks as f64 / total_s,
        pipezk_blocks_per_s: pipezk
            .blocks_per_second(unizk_workloads::pipezk::Groth16Instance::sha256_block()),
        batch_blocks,
    }
}

// ---------------------------------------------------------------- Fig. 8

/// One Fig. 8 bar: UniZK's execution-time breakdown by kernel class.
#[derive(Clone, Debug)]
pub struct Fig8Bar {
    /// Application name.
    pub app: &'static str,
    /// Fractions `[ntt, poly, hash]` (sum to ~1; transposes are hidden).
    pub fractions: [f64; 3],
}

/// Reproduces Fig. 8.
pub fn fig8(scale: Scale, apps: &[App]) -> Vec<Fig8Bar> {
    let chip = ChipConfig::default_chip();
    apps.iter()
        .map(|&app| {
            let r = simulate_app(app, scale, &chip);
            Fig8Bar {
                app: app.name(),
                fractions: [
                    r.cycle_fraction(KernelClassTag::Ntt),
                    r.cycle_fraction(KernelClassTag::Poly),
                    r.cycle_fraction(KernelClassTag::Hash),
                ],
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 9

/// One Fig. 9 bar group: UniZK speedup over the CPU per kernel class.
#[derive(Clone, Debug)]
pub struct Fig9Bar {
    /// Application name.
    pub app: &'static str,
    /// Speedups `[ntt, poly, hash]`.
    pub speedups: [f64; 3],
}

/// Reproduces Fig. 9: per-kernel-class speedups of UniZK over the CPU.
pub fn fig9(scale: Scale, apps: &[App]) -> Vec<Fig9Bar> {
    let chip = ChipConfig::default_chip();
    apps.iter()
        .map(|&app| {
            let cpu = run_cpu(app, scale, 0);
            let r = simulate_app(app, scale, &chip);
            let cpu_class = |classes: &[KernelClass]| -> f64 {
                classes
                    .iter()
                    .map(|c| {
                        cpu.breakdown
                            .iter()
                            .find(|(k, _)| k == c)
                            .map(|(_, d)| d.as_secs_f64())
                            .unwrap_or(0.0)
                    })
                    .sum()
            };
            let unizk_class =
                |t: KernelClassTag| chip.cycles_to_seconds(r.class(t).cycles).max(1e-12);
            Fig9Bar {
                app: app.name(),
                speedups: [
                    cpu_class(&[KernelClass::Ntt]) / unizk_class(KernelClassTag::Ntt),
                    cpu_class(&[KernelClass::Polynomial]) / unizk_class(KernelClassTag::Poly),
                    cpu_class(&[KernelClass::MerkleTree, KernelClass::OtherHash])
                        / unizk_class(KernelClassTag::Hash),
                ],
            }
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 10

/// One Fig. 10 series: normalized performance across a hardware sweep.
#[derive(Clone, Debug)]
pub struct Fig10Series {
    /// Swept parameter name.
    pub parameter: &'static str,
    /// `(setting label, normalized performance)` pairs; the default
    /// configuration is 1.0.
    pub points: Vec<(String, f64)>,
}

/// Reproduces Fig. 10: performance sensitivity on MVM when scaling the
/// scratchpad, the VSA count, and the memory bandwidth.
pub fn fig10(scale: Scale) -> Vec<Fig10Series> {
    let inst = App::Mvm.plonky2_instance(scale);
    let graph = compile_plonky2(&inst);
    let baseline = {
        let chip = ChipConfig::default_chip();
        let r = Simulator::new(chip).run(&graph);
        r.total_cycles as f64
    };
    let perf = |chip: ChipConfig| {
        let r = Simulator::new(chip).run(&graph);
        baseline / r.total_cycles as f64
    };

    vec![
        Fig10Series {
            parameter: "Scratchpad (MB)",
            points: [1usize, 2, 4, 8, 16, 32]
                .iter()
                .map(|&mb| {
                    (
                        format!("{mb} MB"),
                        perf(ChipConfig::default_chip().with_scratchpad_mb(mb)),
                    )
                })
                .collect(),
        },
        Fig10Series {
            parameter: "VSAs",
            points: [4usize, 8, 16, 32, 64, 128]
                .iter()
                .map(|&n| (format!("{n}"), perf(ChipConfig::default_chip().with_vsas(n))))
                .collect(),
        },
        Fig10Series {
            parameter: "Memory bandwidth",
            points: [(1usize, 4usize), (1, 2), (1, 1), (2, 1), (4, 1)]
                .iter()
                .map(|&(num, den)| {
                    (
                        format!("{num}/{den}×"),
                        perf(ChipConfig::default_chip().with_bandwidth_scale(num, den)),
                    )
                })
                .collect(),
        },
    ]
}
