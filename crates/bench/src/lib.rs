//! Benchmark harness for the UniZK reproduction.
//!
//! Every table and figure of the paper's evaluation (§7) has a generator
//! here, exposed both as a library function (so integration tests can
//! assert the qualitative claims) and as a binary that prints the same
//! rows/series the paper reports:
//!
//! | Paper artifact | Generator | Binary |
//! |---|---|---|
//! | Table 1 (CPU breakdown) | [`experiments::table1`] | `table1` |
//! | Table 2 (area/power) | [`experiments::table2`] | `table2` |
//! | Table 3 (CPU/GPU/UniZK) | [`experiments::table3`] | `table3` |
//! | Table 4 (utilization) | [`experiments::table4`] | `table4` |
//! | Table 5 (Starky + recursion) | [`experiments::table5`] | `table5` |
//! | Table 6 (PipeZK comparison) | [`experiments::table6`] | `table6` |
//! | Fig. 8 (UniZK breakdown) | [`experiments::fig8`] | `fig8` |
//! | Fig. 9 (per-kernel speedups) | [`experiments::fig9`] | `fig9` |
//! | Fig. 10 (design-space sweep) | [`experiments::fig10`] | `fig10` |
//!
//! Binaries accept `--shrink N` (default 6) to scale `log2(rows)` down
//! from the paper's dimensions, or `--full` for paper scale (slow; see
//! DESIGN.md §2.7).

#![forbid(unsafe_code)]

pub mod experiments;
pub mod render;

pub use experiments::*;

/// Parses the common `--shrink N` / `--full` arguments.
pub fn scale_from_args() -> unizk_workloads::Scale {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--full") {
        return unizk_workloads::Scale::Full;
    }
    if let Some(pos) = args.iter().position(|a| a == "--shrink") {
        if let Some(n) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            return unizk_workloads::Scale::Shrunk(n);
        }
    }
    unizk_workloads::Scale::default()
}
