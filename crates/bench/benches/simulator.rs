//! Criterion benchmarks of the accelerator simulator itself: graph
//! compilation and simulation across instance sizes and chip sweeps. These
//! demonstrate the simulator is fast enough for the Fig. 10 design-space
//! exploration.

use unizk_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unizk_core::compiler::{compile_plonky2, compile_starky, Plonky2Instance, StarkyInstance};
use unizk_core::{ChipConfig, Simulator};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for log_rows in [12usize, 16, 20] {
        group.bench_with_input(
            BenchmarkId::new("plonky2", log_rows),
            &log_rows,
            |b, &lr| b.iter(|| compile_plonky2(&Plonky2Instance::new(1 << lr, 135))),
        );
    }
    group.bench_function("starky_2^16", |b| {
        b.iter(|| compile_starky(&StarkyInstance::new(1 << 16, 16, 16)));
    });
    group.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    let chip = ChipConfig::default_chip();
    for log_rows in [12usize, 16, 20] {
        let graph = compile_plonky2(&Plonky2Instance::new(1 << log_rows, 135));
        let sim = Simulator::new(chip.clone());
        group.bench_with_input(BenchmarkId::new("plonky2", log_rows), &graph, |b, g| {
            b.iter(|| sim.run(g));
        });
    }
    group.finish();
}

fn bench_dse_point(c: &mut Criterion) {
    // One full Fig. 10 sweep point: rebuild the memory model + simulate.
    let mut group = c.benchmark_group("dse");
    group.sample_size(10);
    let graph = compile_plonky2(&Plonky2Instance::new(1 << 13, 400));
    group.bench_function("fig10_point", |b| {
        b.iter(|| {
            let chip = ChipConfig::default_chip().with_scratchpad_mb(4);
            Simulator::new(chip).run(&graph)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_simulate, bench_dse_point);
criterion_main!(benches);
