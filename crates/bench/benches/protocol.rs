//! Criterion benchmarks of the protocol layer: FRI commitment and opening,
//! full Plonky2-style proving, and Starky proving — the CPU-baseline
//! building blocks of Tables 3 and 5.

use unizk_testkit::bench::{criterion_group, criterion_main, Criterion};
use unizk_field::{Ext2, Field, Goldilocks, Polynomial};
use unizk_fri::{fri_prove, FriConfig, PolynomialBatch};
use unizk_hash::Challenger;
use unizk_plonk::{CircuitBuilder, CircuitConfig};
use unizk_stark::{prove as stark_prove, FibonacciAir, StarkConfig};

fn bench_fri(c: &mut Criterion) {
    let mut group = c.benchmark_group("fri");
    group.sample_size(10);
    let config = FriConfig::for_testing();
    let polys: Vec<Polynomial<Goldilocks>> = (0..8u64)
        .map(|s| {
            Polynomial::from_coeffs(
                (0..256).map(|i| Goldilocks::from_u64(s * 1000 + i)).collect(),
            )
        })
        .collect();
    group.bench_function("commit_8x256", |b| {
        b.iter(|| PolynomialBatch::from_coeffs(polys.clone(), &config));
    });
    let batch = PolynomialBatch::from_coeffs(polys, &config);
    let zeta = Ext2::from(Goldilocks::from_u64(0xdead_beef));
    group.bench_function("open_8x256", |b| {
        b.iter(|| {
            let mut challenger = Challenger::new();
            challenger.observe_digest(batch.root());
            fri_prove(&[&batch], &[zeta], &mut challenger, &config)
        });
    });
    group.finish();
}

fn bench_plonk(c: &mut Criterion) {
    let mut group = c.benchmark_group("plonk");
    group.sample_size(10);
    let mut b = CircuitBuilder::new(CircuitConfig::for_testing());
    let x = b.add_input();
    let mut acc = x;
    for _ in 0..500 {
        acc = b.mul(acc, x);
    }
    let expected = Goldilocks::from_u64(3).exp_u64(501);
    b.assert_constant(acc, expected);
    let circuit = b.build();
    let inputs = [Goldilocks::from_u64(3)];
    group.bench_function("prove_512_gates", |bch| {
        bch.iter(|| circuit.prove(&inputs).expect("proves"));
    });
    let proof = circuit.prove(&inputs).expect("proves");
    group.bench_function("verify_512_gates", |bch| {
        bch.iter(|| circuit.verify(&proof).expect("verifies"));
    });
    group.finish();
}

fn bench_stark(c: &mut Criterion) {
    let mut group = c.benchmark_group("stark");
    group.sample_size(10);
    let air = FibonacciAir::new(1 << 10);
    let config = StarkConfig::for_testing();
    group.bench_function("prove_fibonacci_2^10", |b| {
        b.iter(|| stark_prove(&air, &config).expect("proves"));
    });
    group.finish();
}

criterion_group!(benches, bench_fri, bench_plonk, bench_stark);
criterion_main!(benches);
