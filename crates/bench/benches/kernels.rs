//! Criterion micro-benchmarks for the ZKP kernels the accelerator maps:
//! NTT variants across sizes, Poseidon permutations, Merkle construction,
//! element-wise polynomial operations, partial products, and the HBM model
//! probes. These back the per-kernel discussion of §7.1 and serve as the
//! performance regression suite for the CPU baseline.

use unizk_testkit::bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unizk_testkit::rng::TestRng as StdRng;
use unizk_dram::{AccessPattern, HbmConfig, MemoryModel, MemorySystem};
use unizk_field::{batch_inverse, Field, Goldilocks, PrimeField64};
use unizk_hash::{hash_no_pad, poseidon_permute, MerkleTree};
use unizk_ntt::{coset_ntt_nr, decomposed_ntt_nn, intt_nn, lde_nr, ntt_nn, NttDecomposition};

fn random_vec(rng: &mut StdRng, n: usize) -> Vec<Goldilocks> {
    (0..n).map(|_| Goldilocks::random(rng)).collect()
}

fn bench_ntt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("ntt");
    for log_n in [10usize, 12, 14, 16] {
        let n = 1 << log_n;
        let data = random_vec(&mut rng, n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("forward_nn", log_n), &data, |b, d| {
            b.iter(|| {
                let mut v = d.clone();
                ntt_nn(&mut v);
                v
            });
        });
        group.bench_with_input(BenchmarkId::new("inverse_nn", log_n), &data, |b, d| {
            b.iter(|| {
                let mut v = d.clone();
                intt_nn(&mut v);
                v
            });
        });
        group.bench_with_input(BenchmarkId::new("coset_nr", log_n), &data, |b, d| {
            b.iter(|| {
                let mut v = d.clone();
                coset_ntt_nr(&mut v, Goldilocks::MULTIPLICATIVE_GENERATOR);
                v
            });
        });
    }
    group.finish();
}

fn bench_ntt_decomposition(c: &mut Criterion) {
    // The hardware-style multi-dimensional decomposition vs monolithic.
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("ntt_decomposition");
    let log_n = 15;
    let data = random_vec(&mut rng, 1 << log_n);
    group.bench_function("monolithic_2^15", |b| {
        b.iter(|| {
            let mut v = data.clone();
            ntt_nn(&mut v);
            v
        });
    });
    let plan = NttDecomposition::plan(log_n, 5);
    group.bench_function("decomposed_2^15_(32,32,32)", |b| {
        b.iter(|| {
            let mut v = data.clone();
            decomposed_ntt_nn(&mut v, &plan.dims);
            v
        });
    });
    group.finish();
}

fn bench_lde(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("lde");
    for (log_n, rate_bits, label) in [(12usize, 3usize, "plonky2_blowup8"), (12, 1, "starky_blowup2")] {
        let data = random_vec(&mut rng, 1 << log_n);
        group.bench_function(label, |b| {
            b.iter(|| lde_nr(&data, rate_bits, Goldilocks::MULTIPLICATIVE_GENERATOR));
        });
    }
    group.finish();
}

fn bench_poseidon(c: &mut Criterion) {
    let mut group = c.benchmark_group("poseidon");
    group.throughput(Throughput::Elements(1));
    group.bench_function("permutation", |b| {
        let mut state = [Goldilocks::from_u64(7); 12];
        b.iter(|| {
            poseidon_permute(&mut state);
            state
        });
    });
    // The paper's leaf width: 135 elements = 17 permutations.
    let leaf: Vec<Goldilocks> = (0..135u64).map(Goldilocks::from_u64).collect();
    group.bench_function("hash_135_elements", |b| b.iter(|| hash_no_pad(&leaf)));
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    group.sample_size(10);
    for (leaves, width) in [(1usize << 10, 4usize), (1 << 10, 135)] {
        let data: Vec<Vec<Goldilocks>> = (0..leaves)
            .map(|i| (0..width).map(|j| Goldilocks::from_u64((i * width + j) as u64)).collect())
            .collect();
        group.bench_function(format!("build_{leaves}x{width}"), |b| {
            b.iter(|| MerkleTree::new(data.clone()));
        });
    }
    group.finish();
}

fn bench_poly_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("poly_ops");
    let n = 1 << 16;
    let a = random_vec(&mut rng, n);
    let b_vec = random_vec(&mut rng, n);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("elementwise_mul_2^16", |b| {
        b.iter(|| {
            a.iter()
                .zip(&b_vec)
                .map(|(&x, &y)| x * y)
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("elementwise_muladd_2^16", |b| {
        b.iter(|| {
            a.iter()
                .zip(&b_vec)
                .map(|(&x, &y)| x * y + x)
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("batch_inverse_2^16", |bch| bch.iter(|| batch_inverse(&a)));
    // The §5.4 partial-product chain (Eqs. 1–2): 8-element chunk products
    // then the running product.
    group.bench_function("partial_products_2^16", |bch| {
        bch.iter(|| {
            let h: Vec<Goldilocks> = a.chunks(8).map(|c| c.iter().copied().product()).collect();
            let mut pp = Vec::with_capacity(h.len());
            let mut acc = Goldilocks::ONE;
            for &x in &h {
                acc *= x;
                pp.push(acc);
            }
            pp
        });
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_model");
    group.sample_size(10);
    group.bench_function("sequential_50k_bursts", |b| {
        b.iter(|| {
            let mut sys = MemorySystem::new(HbmConfig::hbm2e_two_stacks());
            sys.access_stream(0, 64, 50_000, false);
            sys.stats().cycles
        });
    });
    group.bench_function("pattern_probe_memoized", |b| {
        let model = MemoryModel::new(HbmConfig::hbm2e_two_stacks());
        model.efficiency(AccessPattern::Sequential); // warm the cache
        b.iter(|| model.stream_cycles(1 << 24, AccessPattern::Sequential));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ntt,
    bench_ntt_decomposition,
    bench_lde,
    bench_poseidon,
    bench_merkle,
    bench_poly_ops,
    bench_dram
);
criterion_main!(benches);
