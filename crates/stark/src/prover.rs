//! The Stark prover: trace commitment, quotient computation over the
//! blowup-2 LDE, and FRI openings. Generic over the `(field, hasher)`
//! pair; the `StarkConfig` argument pins both, so Goldilocks call sites
//! are unchanged and `KbStarkConfig` selects the KoalaBear stack.

use unizk_field::{
    batch_inverse, bit_reverse, log2_strict, parallel_map, reverse_index_bits, Polynomial,
};
use unizk_fri::batch::domain_point;
use unizk_fri::{fri_prove_in, time_kernel, GenericPolynomialBatch, KernelClass};
use unizk_hash::sponge::HashField;
use unizk_hash::{GenericChallenger, SpongeBackend, Workspace};
use unizk_testkit::trace;

use crate::air::Air;
use crate::config::StarkConfig;
use crate::proof::StarkProof;
use crate::verifier::StarkError;

/// Proves that the AIR's trace satisfies its constraints.
///
/// # Errors
///
/// Returns [`StarkError::UnsatisfiedConstraints`] if the generated trace
/// does not satisfy the AIR (the quotient fails its degree check).
pub fn prove<F, H, A>(air: &A, config: &StarkConfig<F, H>) -> Result<StarkProof<F>, StarkError>
where
    F: HashField,
    H: SpongeBackend<F = F>,
    A: Air<F> + Sync,
{
    prove_in(air, config, None)
}

/// [`prove`] with an optional [`Workspace`]: every large intermediate — LDE
/// codewords, Merkle leaf tables and digest levels, the FRI combined
/// witness and fold layers — is drawn from the workspace pools and shelved
/// back before returning, so a long-lived worker reuses one job's
/// allocations for the next. The proof is bit-identical with and without a
/// workspace; `prove(air, config)` is exactly `prove_in(air, config, None)`.
///
/// # Errors
///
/// Returns [`StarkError::UnsatisfiedConstraints`] under the same conditions
/// as [`prove`], and [`StarkError::InsecureParameters`] if the
/// configuration fails the static P-rule checker (conjectured security
/// short of `config.target_security_bits`, an LDE past the field's
/// two-adicity, a malformed final polynomial, or an unsatisfiable grind).
pub fn prove_in<F, H, A>(
    air: &A,
    config: &StarkConfig<F, H>,
    ws: Option<&Workspace>,
) -> Result<StarkProof<F>, StarkError>
where
    F: HashField,
    H: SpongeBackend<F = F>,
    A: Air<F> + Sync,
{
    let _prove_span = trace::span("stark.prove");
    let n = air.rows();
    assert!(n.is_power_of_two(), "trace height must be a power of two");

    // P-rule gate: never burn cycles on — or hand out — a proof whose
    // parameters the static checker rejects.
    let param_diags = crate::config::check_protocol(n, config);
    if unizk_core::analyze::error_count(&param_diags) > 0 {
        return Err(StarkError::InsecureParameters(
            unizk_core::analyze::render_all(&param_diags),
        ));
    }
    trace::counter("stark.rows", n as u64);
    trace::counter("stark.columns", air.width() as u64);
    let mut challenger = GenericChallenger::<H>::new();

    // 1. Trace generation and commitment.
    let trace = trace::with_span("stark.trace_gen", || {
        time_kernel(KernelClass::Polynomial, || air.generate_trace())
    });
    assert_eq!(trace.len(), air.width(), "trace width mismatch");
    let trace_batch = trace::with_span("stark.trace_commit", || {
        GenericPolynomialBatch::<H>::from_values_in(trace, &config.fri, ws)
    });
    challenger.observe_digest(trace_batch.root());

    // 2. Constraint-combination challenges.
    let alphas: Vec<F> = challenger.challenges(config.num_challenges);

    // 3. Quotient per challenge round.
    let quotient_polys = trace::with_span("stark.quotient", || {
        time_kernel(KernelClass::Polynomial, || {
            compute_quotients(air, &trace_batch, &alphas, n)
        })
    })?;
    let quotient_batch = trace::with_span("stark.quotient_commit", || {
        GenericPolynomialBatch::<H>::from_coeffs_in(quotient_polys, &config.fri, ws)
    });
    challenger.observe_digest(quotient_batch.root());

    // 4. Openings.
    let zeta = challenger.challenge_ext();
    let omega = F::primitive_root_of_unity(log2_strict(n));
    let points = [zeta, zeta * F::Ext::from(omega)];
    let fri = trace::with_span("stark.fri", || {
        fri_prove_in(
            &[&trace_batch, &quotient_batch],
            &points,
            &mut challenger,
            &config.fri,
            ws,
        )
    });

    let proof = StarkProof {
        trace_root: trace_batch.root(),
        quotient_root: quotient_batch.root(),
        fri,
        rows: n,
    };
    // The proof holds copies of everything it needs; shelve both
    // commitments' buffers for the worker's next job.
    if let Some(w) = ws {
        trace_batch.recycle(w);
        quotient_batch.recycle(w);
    }
    Ok(proof)
}

fn compute_quotients<F, H, A>(
    air: &A,
    trace: &GenericPolynomialBatch<H>,
    alphas: &[F],
    n: usize,
) -> Result<Vec<Polynomial<F>>, StarkError>
where
    F: HashField,
    H: SpongeBackend<F = F>,
    A: Air<F> + Sync,
{
    let lde_size = trace.lde_size();
    let bits = log2_strict(lde_size);
    let blowup = lde_size / n;
    let omega = F::primitive_root_of_unity(log2_strict(n));
    let last = omega.exp_u64((n - 1) as u64);
    let boundaries = air.boundaries();

    // Shared per-position quantities.
    let xs: Vec<F> = (0..lde_size).map(|i| domain_point(lde_size, i)).collect();
    let zh: Vec<F> = xs.iter().map(|&x| x.exp_u64(n as u64) - F::ONE).collect();
    let zh_inv = batch_inverse(&zh);
    // (x − ω^row_b) denominators for each boundary, flattened.
    let mut boundary_denoms = Vec::with_capacity(lde_size * boundaries.len());
    for &x in &xs {
        for b in &boundaries {
            boundary_denoms.push(x - omega.exp_u64(b.row as u64));
        }
    }
    let boundary_inv = batch_inverse(&boundary_denoms);

    let threads = unizk_field::current_parallelism();
    let chunk_len = lde_size.div_ceil(threads.max(1)).max(1);
    let ranges: Vec<(usize, usize)> = (0..lde_size)
        .step_by(chunk_len)
        .map(|s| (s, (s + chunk_len).min(lde_size)))
        .collect();

    let s_rounds = alphas.len();
    let per_range: Vec<Vec<Vec<F>>> = parallel_map(ranges, |(start, end)| {
        let mut out = vec![Vec::with_capacity(end - start); s_rounds];
        for i in start..end {
            let local = trace.leaf(i);
            let t = bit_reverse(i, bits);
            let i_next = bit_reverse((t + blowup) % lde_size, bits);
            let next = trace.leaf(i_next);

            let transitions = air.eval_transition(local, next);
            // Transition constraints vanish on all rows but the last:
            // multiply by (x − ω^{n−1}) and divide by Z_H.
            let trans_factor = (xs[i] - last) * zh_inv[i];

            for (s, alpha) in alphas.iter().enumerate() {
                let mut acc = F::ZERO;
                let mut alpha_pow = F::ONE;
                for &c in &transitions {
                    acc += alpha_pow * c * trans_factor;
                    alpha_pow *= *alpha;
                }
                for (bi, b) in boundaries.iter().enumerate() {
                    let num = local[b.col] - b.value;
                    acc += alpha_pow * num * boundary_inv[i * boundaries.len() + bi];
                    alpha_pow *= *alpha;
                }
                out[s].push(acc);
            }
        }
        out
    });

    let mut quotients = Vec::with_capacity(s_rounds);
    for s in 0..s_rounds {
        let mut values = Vec::with_capacity(lde_size);
        for r in &per_range {
            values.extend_from_slice(&r[s]);
        }
        reverse_index_bits(&mut values);
        unizk_ntt::coset_intt_nn(&mut values, unizk_fri::batch::coset_shift());
        // Degree check: a satisfying trace yields degree < n; the upper
        // coefficients must vanish.
        if values[n..].iter().any(|c| !c.is_zero()) {
            return Err(StarkError::UnsatisfiedConstraints);
        }
        values.truncate(n);
        quotients.push(Polynomial::from_coeffs(values));
    }
    Ok(quotients)
}
