//! Starky → Plonky2 recursive aggregation (paper §2.2 and Table 5).
//!
//! The real Plonky2 recursion builds an in-circuit verifier (Poseidon and
//! FRI gadgets) and proves "I verified this Starky proof". Reproducing the
//! gadget library is out of scope (see DESIGN.md §2.3); instead this module
//! models the recursive stage with a real Plonky2-style proof over a
//! circuit whose dimensions match a recursive verifier circuit (2^12 rows ×
//! 135 wires in Plonky2's standard recursion configuration), with the
//! Starky proof's digest bound into the circuit's public constant. The
//! cost, kernel mix, and proof size of this stage therefore match the
//! paper's recursive stage; what is *not* reproduced is the cryptographic
//! link between the two proofs.

use unizk_field::{Field, Goldilocks};
use unizk_hash::hash_no_pad;
use unizk_plonk::{CircuitBuilder, CircuitConfig, CircuitData, PlonkError, Proof};

use crate::proof::StarkProof;

/// `log2` of the recursive verifier circuit's row count (Plonky2's standard
/// recursion threshold).
pub const RECURSIVE_LOG_ROWS: usize = 12;

/// A compressed proof: the Plonky2 proof plus the digest of the Starky
/// proof it attests to.
#[derive(Clone, Debug)]
pub struct AggregatedProof {
    /// The recursive Plonky2 proof.
    pub plonk_proof: Proof,
    /// Digest binding the base Starky proof.
    pub base_digest: [Goldilocks; 4],
}

impl AggregatedProof {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.plonk_proof.size_bytes() + 32
    }
}

/// Builds the dimension-matched recursive verifier circuit: `2^12` rows of
/// hash-like arithmetic over the full wire width, parameterized by the base
/// proof's digest.
pub fn recursive_circuit(config: CircuitConfig, digest: [Goldilocks; 4]) -> CircuitData {
    let mut b = CircuitBuilder::new(config);
    let rows_target = 1 << RECURSIVE_LOG_ROWS;

    // Seed the computation with the digest, then run a long chain of
    // mul-add rounds (the arithmetic shape of in-circuit Poseidon rounds)
    // until the circuit has ~2^12 gates.
    let mut state = [
        b.constant(digest[0]),
        b.constant(digest[1]),
        b.constant(digest[2]),
        b.constant(digest[3]),
    ];
    while b.num_gates() + 8 < rows_target {
        // One "round": s0 = s0*s1 + s2; rotate.
        let prod = b.mul(state[0], state[1]);
        let sum = b.add(prod, state[2]);
        state = [state[1], state[2], state[3], sum];
    }
    // Pin the final state so the witness is fully constrained.
    // The expected value is computed by replaying the same recurrence.
    let mut vals = digest;
    let gates_used = {
        // Count the rounds actually emitted: each round is 2 gates + the 4
        // initial constants; replay until the same gate budget.
        let mut gates = 4;
        let mut rounds = 0;
        while gates + 8 < rows_target {
            gates += 2;
            rounds += 1;
        }
        rounds
    };
    for _ in 0..gates_used {
        let v = vals[0] * vals[1] + vals[2];
        vals = [vals[1], vals[2], vals[3], v];
    }
    b.assert_constant(state[3], vals[3]);
    b.build()
}

/// Compresses a Starky base proof with a recursive Plonky2-style proof.
///
/// # Errors
///
/// Propagates [`PlonkError`] from the inner prover (cannot occur for a
/// well-formed base proof).
pub fn aggregate(base: &StarkProof, config: CircuitConfig) -> Result<AggregatedProof, PlonkError> {
    aggregate_many(std::slice::from_ref(base), config)
}

/// Compresses *many* Starky base proofs with one recursive proof — the
/// amortization that powers the paper's 840× multi-block throughput claim
/// (§7.5: "only the base proof time increases, while the cost of the
/// recursive compression can be amortized").
///
/// # Errors
///
/// Propagates [`PlonkError`] from the inner prover. Panics if `bases` is
/// empty.
pub fn aggregate_many(
    bases: &[StarkProof],
    config: CircuitConfig,
) -> Result<AggregatedProof, PlonkError> {
    assert!(!bases.is_empty(), "need at least one base proof");
    // Bind every base proof into the recursive statement via one digest.
    let mut material = Vec::new();
    for base in bases {
        material.push(Goldilocks::from_u64(base.rows as u64));
        material.extend(base.trace_root.elements());
        material.extend(base.quotient_root.elements());
        material.extend(base.fri.final_poly.iter().flat_map(|e| [e.real(), e.imag()]));
    }
    let digest = hash_no_pad(&material).elements();

    let circuit = recursive_circuit(config, digest);
    let plonk_proof = circuit.prove(&[])?;
    Ok(AggregatedProof {
        plonk_proof,
        base_digest: digest,
    })
}
