//! Example AIRs, including the paper's Fig. 2 Fibonacci trace.

use unizk_field::{Field, ProtocolField};

use crate::air::{Air, Boundary};

/// The paper's Fig. 2 AIR: two columns `(x0, x1)` with transitions
/// `x0' = x1`, `x1' = x0 + x1`, proving the value of a Fibonacci number.
#[derive(Clone, Debug)]
pub struct FibonacciAir {
    rows: usize,
}

impl FibonacciAir {
    /// An AIR whose trace has `rows` steps (a power of two). The claimed
    /// output is `fib(rows)` with `fib(0) = 0, fib(1) = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a power of two or less than 2.
    pub fn new(rows: usize) -> Self {
        assert!(rows.is_power_of_two() && rows >= 2, "rows must be a power of two >= 2");
        Self { rows }
    }

    /// Number of trace columns (the two Fibonacci registers). Inherent so
    /// concrete call sites stay unambiguous despite the blanket
    /// `Air<F>` impl.
    pub fn width(&self) -> usize {
        2
    }

    /// Number of trace rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of transition constraints.
    pub fn num_transition_constraints(&self) -> usize {
        2
    }

    /// The expected final value `fib(rows)`, in whichever base field the
    /// proof runs over.
    pub fn expected_output<F: Field>(&self) -> F {
        let mut a = F::ZERO;
        let mut b = F::ONE;
        for _ in 0..self.rows {
            let next = a + b;
            a = b;
            b = next;
        }
        a
    }
}

impl<F: ProtocolField> Air<F> for FibonacciAir {
    fn width(&self) -> usize {
        2
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn generate_trace(&self) -> Vec<Vec<F>> {
        let mut x0 = Vec::with_capacity(self.rows);
        let mut x1 = Vec::with_capacity(self.rows);
        let mut a = F::ZERO;
        let mut b = F::ONE;
        for _ in 0..self.rows {
            x0.push(a);
            x1.push(b);
            let next = a + b;
            a = b;
            b = next;
        }
        vec![x0, x1]
    }

    fn eval_transition<E: Field + From<F>>(&self, local: &[E], next: &[E]) -> Vec<E> {
        vec![next[0] - local[1], next[1] - local[0] - local[1]]
    }

    fn num_transition_constraints(&self) -> usize {
        2
    }

    fn boundaries(&self) -> Vec<Boundary<F>> {
        vec![
            Boundary { row: 0, col: 0, value: F::ZERO },
            Boundary { row: 0, col: 1, value: F::ONE },
            Boundary {
                row: self.rows - 1,
                col: 1,
                value: self.expected_output(),
            },
        ]
    }
}

/// A counter that decrements to zero: one column, `x' = x − 1`; shows a
/// single degree-1 constraint with input and output boundaries.
#[derive(Clone, Debug)]
pub struct CountdownAir {
    rows: usize,
}

impl CountdownAir {
    /// Counts down from `rows − 1` to `0` over `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a power of two.
    pub fn new(rows: usize) -> Self {
        assert!(rows.is_power_of_two(), "rows must be a power of two");
        Self { rows }
    }

    /// Number of trace columns.
    pub fn width(&self) -> usize {
        1
    }

    /// Number of trace rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of transition constraints.
    pub fn num_transition_constraints(&self) -> usize {
        1
    }
}

impl<F: ProtocolField> Air<F> for CountdownAir {
    fn width(&self) -> usize {
        1
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn generate_trace(&self) -> Vec<Vec<F>> {
        vec![(0..self.rows)
            .rev()
            .map(|v| F::from_u64(v as u64))
            .collect()]
    }

    fn eval_transition<E: Field + From<F>>(&self, local: &[E], next: &[E]) -> Vec<E> {
        vec![local[0] - next[0] - E::ONE]
    }

    fn num_transition_constraints(&self) -> usize {
        1
    }

    fn boundaries(&self) -> Vec<Boundary<F>> {
        vec![
            Boundary {
                row: 0,
                col: 0,
                value: F::from_u64((self.rows - 1) as u64),
            },
            Boundary {
                row: self.rows - 1,
                col: 0,
                value: F::ZERO,
            },
        ]
    }
}

/// A degree-2 AIR: columns `(i, acc)` with `i' = i + 1` and
/// `acc' = acc + i'·i'` (sum of squares) — exercises the quadratic
/// constraint path, the maximum degree blowup-2 Starky supports.
#[derive(Clone, Debug)]
pub struct RangeAccumulatorAir {
    rows: usize,
}

impl RangeAccumulatorAir {
    /// Sums the squares `1² + 2² + … ` across `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a power of two.
    pub fn new(rows: usize) -> Self {
        assert!(rows.is_power_of_two(), "rows must be a power of two");
        Self { rows }
    }

    /// Number of trace columns.
    pub fn width(&self) -> usize {
        2
    }

    /// Number of trace rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of transition constraints.
    pub fn num_transition_constraints(&self) -> usize {
        2
    }

    /// The final accumulator value `Σ_{k=0}^{rows-1} k²`.
    pub fn expected_output<F: Field>(&self) -> F {
        let mut acc = F::ZERO;
        for k in 0..self.rows as u64 {
            acc += F::from_u64(k) * F::from_u64(k);
        }
        acc
    }
}

impl<F: ProtocolField> Air<F> for RangeAccumulatorAir {
    fn width(&self) -> usize {
        2
    }

    fn rows(&self) -> usize {
        self.rows
    }

    fn generate_trace(&self) -> Vec<Vec<F>> {
        let mut idx = Vec::with_capacity(self.rows);
        let mut acc_col = Vec::with_capacity(self.rows);
        let mut acc = F::ZERO;
        for k in 0..self.rows as u64 {
            let kk = F::from_u64(k);
            acc += kk * kk;
            idx.push(kk);
            acc_col.push(acc);
        }
        vec![idx, acc_col]
    }

    fn eval_transition<E: Field + From<F>>(&self, local: &[E], next: &[E]) -> Vec<E> {
        // i' = i + 1; acc' = acc + i'².
        vec![
            next[0] - local[0] - E::ONE,
            next[1] - local[1] - next[0] * next[0],
        ]
    }

    fn num_transition_constraints(&self) -> usize {
        2
    }

    fn boundaries(&self) -> Vec<Boundary<F>> {
        vec![
            Boundary { row: 0, col: 0, value: F::ZERO },
            Boundary { row: 0, col: 1, value: F::ZERO },
            Boundary {
                row: self.rows - 1,
                col: 1,
                value: self.expected_output(),
            },
        ]
    }
}
