//! The Stark verifier.

use core::fmt;

use unizk_field::{log2_strict, Field, ProtocolField};
use unizk_fri::{fri_verify, FriError};
use unizk_hash::sponge::HashField;
use unizk_hash::{GenericChallenger, SpongeBackend};

use crate::air::Air;
use crate::config::StarkConfig;
use crate::proof::StarkProof;

/// Stark proving/verification failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StarkError {
    /// The trace does not satisfy the AIR (prover-side degree check).
    UnsatisfiedConstraints,
    /// Proof shape mismatch.
    Malformed(&'static str),
    /// The constraint identity failed at `ζ`.
    QuotientMismatch { challenge_round: usize },
    /// FRI rejected the openings.
    Fri(FriError),
    /// The configuration failed the static P-rule checker
    /// (`unizk_core::analyze::check_params`); the payload is the rendered
    /// diagnostic list. The prover refuses to run at all — an unsound
    /// proof is worse than no proof.
    InsecureParameters(String),
}

impl fmt::Display for StarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsatisfiedConstraints => write!(f, "trace does not satisfy the constraints"),
            Self::Malformed(what) => write!(f, "malformed proof: {what}"),
            Self::QuotientMismatch { challenge_round } => {
                write!(f, "quotient identity failed in round {challenge_round}")
            }
            Self::Fri(e) => write!(f, "fri: {e}"),
            Self::InsecureParameters(diags) => {
                write!(f, "insecure protocol parameters:\n{diags}")
            }
        }
    }
}

impl std::error::Error for StarkError {}

impl From<FriError> for StarkError {
    fn from(e: FriError) -> Self {
        Self::Fri(e)
    }
}

/// Verifies a Stark proof against its AIR.
///
/// # Errors
///
/// Returns [`StarkError`] describing the first failed check.
pub fn verify<F, H, A>(
    air: &A,
    proof: &StarkProof<F>,
    config: &StarkConfig<F, H>,
) -> Result<(), StarkError>
where
    F: HashField,
    H: SpongeBackend<F = F>,
    A: Air<F>,
{
    type E<F> = <F as ProtocolField>::Ext;
    let n = proof.rows;
    if n != air.rows() || !n.is_power_of_two() {
        return Err(StarkError::Malformed("row count mismatch"));
    }
    let mut challenger = GenericChallenger::<H>::new();
    challenger.observe_digest(proof.trace_root);
    let alphas: Vec<F> = challenger.challenges(config.num_challenges);
    challenger.observe_digest(proof.quotient_root);
    let zeta = challenger.challenge_ext();
    let omega = F::primitive_root_of_unity(log2_strict(n));
    let points = [zeta, zeta * E::<F>::from(omega)];

    fri_verify(
        &[proof.trace_root, proof.quotient_root],
        &[air.width(), config.num_challenges],
        n,
        &points,
        &proof.fri,
        &mut challenger,
        &config.fri,
    )?;

    // Recombine the identity at ζ.
    let local = &proof.fri.openings[0][0];
    let next = &proof.fri.openings[1][0];
    let quotient_at_zeta = &proof.fri.openings[0][1];
    if local.len() != air.width() || quotient_at_zeta.len() != config.num_challenges {
        return Err(StarkError::Malformed("opening widths"));
    }

    let zh = zeta.exp_u64(n as u64) - E::<F>::ONE;
    let zh_inv = zh
        .try_inverse()
        .ok_or(StarkError::Malformed("zeta on domain"))?;
    let last = omega.exp_u64((n - 1) as u64);
    let trans_factor = (zeta - E::<F>::from(last)) * zh_inv;
    let transitions = air.eval_transition(local, next);
    let boundaries = air.boundaries();

    for (s, alpha) in alphas.iter().enumerate() {
        let alpha_e = E::<F>::from(*alpha);
        let mut acc = E::<F>::ZERO;
        let mut alpha_pow = E::<F>::ONE;
        for &c in &transitions {
            acc += alpha_pow * c * trans_factor;
            alpha_pow *= alpha_e;
        }
        for b in &boundaries {
            let denom = zeta - E::<F>::from(omega.exp_u64(b.row as u64));
            let inv = denom
                .try_inverse()
                .ok_or(StarkError::Malformed("zeta hits a boundary row"))?;
            acc += alpha_pow * (local[b.col] - E::<F>::from(b.value)) * inv;
            alpha_pow *= alpha_e;
        }
        if acc != quotient_at_zeta[s] {
            return Err(StarkError::QuotientMismatch { challenge_round: s });
        }
    }
    Ok(())
}
