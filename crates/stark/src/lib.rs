//! A Starky-style STARK prover over algebraic execution traces.
//!
//! Starky (paper §2.2, Fig. 2) represents a computation as an Algebraic
//! Execution Trace (AET): a table whose rows are machine states and whose
//! adjacent rows satisfy *transition constraints*; *boundary constraints*
//! pin inputs and outputs. The FRI commitment uses a blowup of only 2, so
//! base proofs are cheap but large — the paper then compresses them with a
//! recursive Plonky2 proof ([`aggregate()`]).
//!
//! # Example
//!
//! ```
//! use unizk_field::{Field, Goldilocks};
//! use unizk_stark::{prove, verify, FibonacciAir, StarkConfig};
//!
//! // Paper Fig. 2: prove the n-th Fibonacci number.
//! let air = FibonacciAir::new(64);
//! let config = StarkConfig::for_testing();
//! let proof = prove(&air, &config).expect("trace satisfies the AIR");
//! verify(&air, &proof, &config).expect("proof verifies");
//! ```

#![forbid(unsafe_code)]

pub mod air;
pub mod aggregate;
pub mod airs;
pub mod config;
pub mod proof;
pub mod prover;
pub mod verifier;

pub use air::{Air, Boundary};
pub use aggregate::{aggregate, aggregate_many, recursive_circuit, AggregatedProof};
pub use airs::{CountdownAir, FibonacciAir, RangeAccumulatorAir};
pub use config::{check_protocol, KbStarkConfig, StarkConfig};
pub use proof::StarkProof;
pub use prover::{prove, prove_in};
pub use verifier::{verify, StarkError};
