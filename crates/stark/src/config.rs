//! Stark proving configuration, generic over the `(field, hasher)` pair.

use core::marker::PhantomData;

use unizk_core::analyze::{check_params, Diagnostic, ProtocolParams};
use unizk_field::{ExtensionOf, Goldilocks, KoalaBear};
use unizk_fri::FriConfig;
use unizk_hash::sponge::HashField;
use unizk_hash::{Poseidon2KbSponge, SpongeBackend};

/// Parameters of a Starky-style proof over base field `F` hashed with
/// sponge backend `H`. The defaults are the paper's Goldilocks/Poseidon
/// pair; `StarkConfig::<KoalaBear, Poseidon2KbSponge>::standard()` (or the
/// [`KbStarkConfig`] alias) selects the 31-bit stack.
pub struct StarkConfig<F: HashField = Goldilocks, H: SpongeBackend<F = F> = <F as HashField>::Sponge>
{
    /// Independent constraint-combination challenge rounds. Each round
    /// contributes `F::BITS` bits of Schwartz–Zippel entropy: 2 rounds
    /// lift 64-bit Goldilocks challenges to ~100-bit soundness (as in
    /// Plonky2), while 31-bit KoalaBear needs 4.
    pub num_challenges: usize,
    /// FRI parameters; Starky uses blowup 2 (`rate_bits = 1`).
    pub fri: FriConfig,
    /// Conjectured security bits the configuration must deliver; the
    /// P-rule gate in `prove` refuses parameters falling short of it.
    pub target_security_bits: usize,
    #[doc(hidden)]
    pub _marker: PhantomData<fn() -> (F, H)>,
}

/// The KoalaBear/Poseidon2 configuration.
pub type KbStarkConfig = StarkConfig<KoalaBear, Poseidon2KbSponge>;

impl<F: HashField, H: SpongeBackend<F = F>> Clone for StarkConfig<F, H> {
    fn clone(&self) -> Self {
        Self {
            num_challenges: self.num_challenges,
            fri: self.fri.clone(),
            target_security_bits: self.target_security_bits,
            _marker: PhantomData,
        }
    }
}

impl<F: HashField, H: SpongeBackend<F = F>> core::fmt::Debug for StarkConfig<F, H> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StarkConfig")
            .field("num_challenges", &self.num_challenges)
            .field("fri", &self.fri)
            .field("target_security_bits", &self.target_security_bits)
            .field("field", &core::any::type_name::<F>())
            .field("hasher", &H::NAME)
            .finish()
    }
}

impl StarkConfig {
    /// [`StarkConfig::standard_over`] for the default Goldilocks/Poseidon
    /// pair. A concrete inherent impl so that plain
    /// `StarkConfig::standard()` call sites infer the field without
    /// annotation (type-parameter defaults don't drive expression-path
    /// inference).
    pub fn standard() -> Self {
        Self::standard_over()
    }

    /// [`StarkConfig::for_testing_over`] for the Goldilocks/Poseidon pair.
    pub fn for_testing() -> Self {
        Self::for_testing_over()
    }
}

impl<F: HashField, H: SpongeBackend<F = F>> StarkConfig<F, H> {
    /// The paper's Starky configuration over this field: blowup 2,
    /// ~100-bit conjectured security, with enough challenge rounds that
    /// `F::BITS · num_challenges` clears the target (2 over Goldilocks, 4
    /// over KoalaBear). Spell the pair in the type —
    /// `KbStarkConfig::standard_over()` — or use plain
    /// `StarkConfig::standard()` for Goldilocks.
    pub fn standard_over() -> Self {
        Self {
            num_challenges: 100usize.div_ceil(F::BITS),
            fri: FriConfig::starky(),
            target_security_bits: 100,
            _marker: PhantomData,
        }
    }

    /// Cheap parameters for unit tests. The security target drops with
    /// the parameters — tests exercise the protocol, not its hardness.
    pub fn for_testing_over() -> Self {
        Self {
            num_challenges: 2,
            fri: FriConfig {
                rate_bits: 1,
                num_queries: 8,
                proof_of_work_bits: 4,
                final_poly_len: 4,
            },
            target_security_bits: 8,
            _marker: PhantomData,
        }
    }

    /// This configuration at a `2^log_rows`-row trace as a flat
    /// [`ProtocolParams`] record for the static P-rule checker
    /// (`unizk_core::analyze::check_params`), carrying the field's bit
    /// width, extension degree, and two-adicity so the extension-aware
    /// P01/P02/P04 rules see the real entropy budget. A one-proof
    /// configuration has no shards and no aggregation stage.
    pub fn protocol_params(&self, log_rows: usize) -> ProtocolParams {
        ProtocolParams {
            log_rows,
            rate_bits: self.fri.rate_bits,
            num_queries: self.fri.num_queries,
            proof_of_work_bits: self.fri.proof_of_work_bits,
            final_poly_len: self.fri.final_poly_len,
            num_challenges: self.num_challenges,
            target_security_bits: self.target_security_bits,
            shards: 1,
            aggregation_arity: 0,
            field_bits: F::BITS,
            extension_degree: <F::Ext as ExtensionOf<F>>::DEGREE,
            two_adicity: F::TWO_ADICITY,
        }
    }
}

/// Runs the static P-rules over `config` at a `rows`-row trace (`rows`
/// must be a power of two, as everywhere in the prover). An empty result
/// means `prove` will accept the parameters; `serve::Pipeline` gates every
/// job on this before enqueueing it.
///
/// # Panics
///
/// Panics if `rows` is not a power of two.
pub fn check_protocol<F: HashField, H: SpongeBackend<F = F>>(
    rows: usize,
    config: &StarkConfig<F, H>,
) -> Vec<Diagnostic> {
    assert!(rows.is_power_of_two(), "trace height must be a power of two");
    check_params(&config.protocol_params(rows.trailing_zeros() as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_core::analyze::error_count;

    #[test]
    fn standard_is_blowup_two() {
        assert_eq!(1 << StarkConfig::standard().fri.rate_bits, 2);
    }

    #[test]
    fn shipped_configs_pass_the_p_rules() {
        for rows in [1 << 10, 1 << 12, 1 << 14] {
            assert_eq!(error_count(&check_protocol(rows, &StarkConfig::standard())), 0);
            assert_eq!(error_count(&check_protocol(rows, &StarkConfig::for_testing())), 0);
        }
    }

    #[test]
    fn starved_queries_fail_the_p_rules() {
        let mut config = StarkConfig::standard();
        config.fri.num_queries = 10; // 10·1 + 16 = 26 « 100
        assert!(error_count(&check_protocol(1 << 12, &config)) > 0);
    }

    #[test]
    fn koalabear_standard_needs_four_challenge_rounds() {
        let config = KbStarkConfig::standard_over();
        assert_eq!(config.num_challenges, 4);
        for rows in [1 << 10, 1 << 12] {
            assert_eq!(error_count(&check_protocol(rows, &config)), 0, "rows {rows}");
        }
    }

    #[test]
    fn koalabear_with_goldilocks_challenge_count_fails_p01() {
        let mut config = KbStarkConfig::standard_over();
        config.num_challenges = 2; // 2 × 31 = 62 < 100
        let diags = check_protocol(1 << 10, &config);
        assert!(error_count(&diags) > 0);
        assert!(unizk_core::analyze::render_all(&diags).contains("P01"));
    }

    #[test]
    fn koalabear_lde_past_24_bit_two_adicity_fails_p02_cleanly() {
        // log_rows 24 + rate_bits 1 = 25 > 24: a clean diagnostic, not a
        // twiddle-table panic.
        let config = KbStarkConfig::standard_over();
        let diags = check_protocol(1 << 24, &config);
        let rendered = unizk_core::analyze::render_all(&diags);
        assert!(rendered.contains("P02"), "{rendered}");
        // The same geometry over Goldilocks (two-adicity 32) is fine.
        let gl: StarkConfig = StarkConfig::standard();
        assert!(!unizk_core::analyze::render_all(&check_protocol(1 << 24, &gl)).contains("P02"));
    }
}
