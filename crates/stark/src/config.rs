//! Stark proving configuration.

use unizk_fri::FriConfig;

/// Parameters of a Starky-style proof.
#[derive(Clone, Debug)]
pub struct StarkConfig {
    /// Independent constraint-combination challenge rounds (2 lifts the
    /// 64-bit base challenges to ~100-bit soundness, as in Plonky2).
    pub num_challenges: usize,
    /// FRI parameters; Starky uses blowup 2 (`rate_bits = 1`).
    pub fri: FriConfig,
}

impl StarkConfig {
    /// The paper's Starky configuration: blowup 2, ~100-bit conjectured
    /// security.
    pub fn standard() -> Self {
        Self {
            num_challenges: 2,
            fri: FriConfig::starky(),
        }
    }

    /// Cheap parameters for unit tests.
    pub fn for_testing() -> Self {
        Self {
            num_challenges: 2,
            fri: FriConfig {
                rate_bits: 1,
                num_queries: 8,
                proof_of_work_bits: 4,
                final_poly_len: 4,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_is_blowup_two() {
        assert_eq!(1 << StarkConfig::standard().fri.rate_bits, 2);
    }
}
