//! Stark proving configuration.

use unizk_core::analyze::{check_params, Diagnostic, ProtocolParams};
use unizk_fri::FriConfig;

/// Parameters of a Starky-style proof.
#[derive(Clone, Debug)]
pub struct StarkConfig {
    /// Independent constraint-combination challenge rounds (2 lifts the
    /// 64-bit base challenges to ~100-bit soundness, as in Plonky2).
    pub num_challenges: usize,
    /// FRI parameters; Starky uses blowup 2 (`rate_bits = 1`).
    pub fri: FriConfig,
    /// Conjectured security bits the configuration must deliver; the
    /// P-rule gate in `prove` refuses parameters falling short of it.
    pub target_security_bits: usize,
}

impl StarkConfig {
    /// The paper's Starky configuration: blowup 2, ~100-bit conjectured
    /// security.
    pub fn standard() -> Self {
        Self {
            num_challenges: 2,
            fri: FriConfig::starky(),
            target_security_bits: 100,
        }
    }

    /// Cheap parameters for unit tests. The security target drops with
    /// the parameters — tests exercise the protocol, not its hardness.
    pub fn for_testing() -> Self {
        Self {
            num_challenges: 2,
            fri: FriConfig {
                rate_bits: 1,
                num_queries: 8,
                proof_of_work_bits: 4,
                final_poly_len: 4,
            },
            target_security_bits: 8,
        }
    }

    /// This configuration at a `2^log_rows`-row trace as a flat
    /// [`ProtocolParams`] record for the static P-rule checker
    /// (`unizk_core::analyze::check_params`). A one-proof configuration
    /// has no shards and no aggregation stage.
    pub fn protocol_params(&self, log_rows: usize) -> ProtocolParams {
        ProtocolParams {
            log_rows,
            rate_bits: self.fri.rate_bits,
            num_queries: self.fri.num_queries,
            proof_of_work_bits: self.fri.proof_of_work_bits,
            final_poly_len: self.fri.final_poly_len,
            num_challenges: self.num_challenges,
            target_security_bits: self.target_security_bits,
            shards: 1,
            aggregation_arity: 0,
        }
    }
}

/// Runs the static P-rules over `config` at a `rows`-row trace (`rows`
/// must be a power of two, as everywhere in the prover). An empty result
/// means `prove` will accept the parameters; `serve::Pipeline` gates every
/// job on this before enqueueing it.
///
/// # Panics
///
/// Panics if `rows` is not a power of two.
pub fn check_protocol(rows: usize, config: &StarkConfig) -> Vec<Diagnostic> {
    assert!(rows.is_power_of_two(), "trace height must be a power of two");
    check_params(&config.protocol_params(rows.trailing_zeros() as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_core::analyze::error_count;

    #[test]
    fn standard_is_blowup_two() {
        assert_eq!(1 << StarkConfig::standard().fri.rate_bits, 2);
    }

    #[test]
    fn shipped_configs_pass_the_p_rules() {
        for rows in [1 << 10, 1 << 12, 1 << 14] {
            assert_eq!(error_count(&check_protocol(rows, &StarkConfig::standard())), 0);
            assert_eq!(error_count(&check_protocol(rows, &StarkConfig::for_testing())), 0);
        }
    }

    #[test]
    fn starved_queries_fail_the_p_rules() {
        let mut config = StarkConfig::standard();
        config.fri.num_queries = 10; // 10·1 + 16 = 26 « 100
        assert!(error_count(&check_protocol(1 << 12, &config)) > 0);
    }
}
