//! The AIR (algebraic intermediate representation) abstraction — the
//! paper's Algebraic Execution Trace with transition and boundary
//! constraints (Fig. 2).

use unizk_field::{Field, Goldilocks, ProtocolField};

/// A boundary (input/output) constraint: trace column `col` must equal
/// `value` at row `row`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Boundary<F: ProtocolField = Goldilocks> {
    /// Trace row.
    pub row: usize,
    /// Trace column.
    pub col: usize,
    /// Required value.
    pub value: F,
}

/// An algebraic execution trace plus its constraint system, over base
/// field `F` (Goldilocks by default; the same AIR proves over KoalaBear
/// when it implements `Air<KoalaBear>` — the shipped example AIRs
/// implement `Air<F>` for every protocol field).
///
/// Transition constraints are evaluated on `(local, next)` row pairs and
/// must vanish on every row except the last. With Starky's blowup of 2,
/// constraints may have algebraic degree at most 2 in the trace cells.
pub trait Air<F: ProtocolField = Goldilocks> {
    /// Number of trace columns.
    fn width(&self) -> usize;

    /// Number of trace rows (a power of two).
    fn rows(&self) -> usize;

    /// Generates the trace, column-major: `trace[col][row]`.
    fn generate_trace(&self) -> Vec<Vec<F>>;

    /// Evaluates the transition constraints on one `(local, next)` row
    /// pair. Generic so the prover evaluates over the base field on the
    /// LDE and the verifier over the extension at `ζ`.
    fn eval_transition<E: Field + From<F>>(&self, local: &[E], next: &[E]) -> Vec<E>;

    /// Number of transition constraints (must match
    /// [`Air::eval_transition`]'s output length).
    fn num_transition_constraints(&self) -> usize;

    /// The boundary constraints.
    fn boundaries(&self) -> Vec<Boundary<F>>;
}
