//! Stark proof object.

use unizk_field::{Goldilocks, ProtocolField};
use unizk_fri::FriProof;
use unizk_hash::Digest;

/// A Starky-style proof: trace and quotient commitments plus the FRI
/// opening proof. Base proofs with blowup 2 are large — several hundred kB
/// at paper scale (Table 5) — which is why they get recursively compressed.
///
/// Generic over the base field, defaulting to Goldilocks; all wire widths
/// (digests, base and extension elements) follow `F::BYTES`.
#[derive(Clone, Debug)]
pub struct StarkProof<F: ProtocolField = Goldilocks> {
    /// Commitment to the execution trace columns.
    pub trace_root: Digest<F>,
    /// Commitment to the quotient polynomials.
    pub quotient_root: Digest<F>,
    /// FRI opening proof (carries openings at `ζ` and `ζ·ω`).
    pub fri: FriProof<F>,
    /// Trace height, needed by the verifier for domain sizing.
    pub rows: usize,
}

impl<F: ProtocolField> StarkProof<F> {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        2 * Digest::<F>::BYTES + 8 + self.fri.size_bytes()
    }

    /// Encodes the proof to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = unizk_fri::Writer::new();
        w.digest(self.trace_root);
        w.digest(self.quotient_root);
        w.u64(self.rows as u64);
        let mut bytes = w.into_bytes();
        bytes.extend(self.fri.to_bytes());
        bytes
    }

    /// Decodes a proof from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`unizk_fri::WireError`] on truncation or corruption.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, unizk_fri::WireError> {
        let mut r = unizk_fri::Reader::new(bytes);
        let trace_root: Digest<F> = r.digest()?;
        let quotient_root: Digest<F> = r.digest()?;
        let rows = usize::try_from(r.u64()?).expect("row count fits usize");
        let fri = FriProof::<F>::from_bytes(&bytes[2 * Digest::<F>::BYTES + 8..])?;
        Ok(Self {
            trace_root,
            quotient_root,
            fri,
            rows,
        })
    }
}
