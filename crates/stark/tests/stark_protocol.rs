//! End-to-end Stark protocol tests over the example AIRs, plus the
//! Starky→Plonky2 aggregation stage of Table 5.

use unizk_field::{Field, Goldilocks};
use unizk_plonk::CircuitConfig;
use unizk_stark::{
    aggregate, prove, verify, Air, Boundary, CountdownAir, FibonacciAir, RangeAccumulatorAir,
    StarkConfig, StarkError,
};

#[test]
fn fibonacci_proves_and_verifies() {
    let air = FibonacciAir::new(128);
    let config = StarkConfig::for_testing();
    let proof = prove(&air, &config).expect("satisfiable");
    verify(&air, &proof, &config).expect("verifies");
}

#[test]
fn fibonacci_expected_output_is_correct() {
    let air = FibonacciAir::new(8);
    // fib: 0 1 1 2 3 5 8 13 21 -> fib(8) = 21.
    assert_eq!(air.expected_output::<Goldilocks>(), Goldilocks::from_u64(21));
}

#[test]
fn insecure_parameters_are_refused_before_proving() {
    let air = FibonacciAir::new(128);

    // Security shortfall: 2 queries · 1 rate bit + 4 pow bits = 6 < 8.
    let mut starved = StarkConfig::for_testing();
    starved.fri.num_queries = 2;
    match prove(&air, &starved) {
        Err(StarkError::InsecureParameters(diags)) => {
            assert!(diags.contains("P01"), "{diags}");
        }
        other => panic!("expected InsecureParameters, got {other:?}"),
    }

    // Unsatisfiable grind: 64 leading zero bits of a 64-bit challenge.
    let mut grindy = StarkConfig::for_testing();
    grindy.fri.proof_of_work_bits = 64;
    match prove(&air, &grindy) {
        Err(StarkError::InsecureParameters(diags)) => {
            assert!(diags.contains("P04"), "{diags}");
        }
        other => panic!("expected InsecureParameters, got {other:?}"),
    }
}

#[test]
fn countdown_proves_and_verifies() {
    let air = CountdownAir::new(64);
    let config = StarkConfig::for_testing();
    let proof = prove(&air, &config).expect("satisfiable");
    verify(&air, &proof, &config).expect("verifies");
}

#[test]
fn quadratic_air_proves_and_verifies() {
    let air = RangeAccumulatorAir::new(256);
    let config = StarkConfig::for_testing();
    let proof = prove(&air, &config).expect("satisfiable");
    verify(&air, &proof, &config).expect("verifies");
}

/// An AIR whose trace deliberately violates its transition constraints.
#[derive(Clone)]
struct BrokenAir {
    inner: FibonacciAir,
}

impl Air for BrokenAir {
    fn width(&self) -> usize {
        self.inner.width()
    }
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn generate_trace(&self) -> Vec<Vec<Goldilocks>> {
        let mut t = self.inner.generate_trace();
        // Corrupt one interior cell.
        let mid = self.rows() / 2;
        t[1][mid] += Goldilocks::ONE;
        t
    }
    fn eval_transition<E: Field + From<Goldilocks>>(&self, local: &[E], next: &[E]) -> Vec<E> {
        self.inner.eval_transition(local, next)
    }
    fn num_transition_constraints(&self) -> usize {
        self.inner.num_transition_constraints()
    }
    fn boundaries(&self) -> Vec<Boundary> {
        self.inner.boundaries()
    }
}

#[test]
fn unsatisfied_trace_cannot_prove() {
    let air = BrokenAir { inner: FibonacciAir::new(64) };
    let config = StarkConfig::for_testing();
    assert_eq!(prove(&air, &config).unwrap_err(), StarkError::UnsatisfiedConstraints);
}

#[test]
fn wrong_boundary_cannot_prove() {
    // Claim the wrong Fibonacci output: honest trace, wrong boundary.
    #[derive(Clone)]
    struct WrongClaim(FibonacciAir);
    impl Air for WrongClaim {
        fn width(&self) -> usize {
            self.0.width()
        }
        fn rows(&self) -> usize {
            self.0.rows()
        }
        fn generate_trace(&self) -> Vec<Vec<Goldilocks>> {
            self.0.generate_trace()
        }
        fn eval_transition<E: Field + From<Goldilocks>>(&self, l: &[E], n: &[E]) -> Vec<E> {
            self.0.eval_transition(l, n)
        }
        fn num_transition_constraints(&self) -> usize {
            self.0.num_transition_constraints()
        }
        fn boundaries(&self) -> Vec<Boundary> {
            let mut b = self.0.boundaries();
            b[2].value += Goldilocks::ONE; // wrong claimed output
            b
        }
    }
    let air = WrongClaim(FibonacciAir::new(64));
    let config = StarkConfig::for_testing();
    assert_eq!(prove(&air, &config).unwrap_err(), StarkError::UnsatisfiedConstraints);
}

#[test]
fn tampered_proof_rejected() {
    let air = FibonacciAir::new(64);
    let config = StarkConfig::for_testing();
    let mut proof = prove(&air, &config).expect("ok");
    proof.fri.openings[0][0][0] += unizk_field::Ext2::ONE;
    assert!(verify(&air, &proof, &config).is_err());
}

#[test]
fn proof_for_wrong_air_rejected() {
    // A Fibonacci proof should not verify against a different instance
    // size (domain mismatch) or a different AIR.
    let air64 = FibonacciAir::new(64);
    let air128 = FibonacciAir::new(128);
    let config = StarkConfig::for_testing();
    let proof = prove(&air64, &config).expect("ok");
    assert!(verify(&air128, &proof, &config).is_err());

    let countdown = CountdownAir::new(64);
    // Different width -> malformed.
    assert!(verify(&countdown, &proof, &config).is_err());
}

#[test]
fn starky_proofs_are_larger_than_plonky2_style() {
    // Blowup 2 with many queries yields the "several MBs" effect the paper
    // mentions; at test scale we just confirm the monotonic direction:
    // starky-config proofs are larger than plonky2-config proofs of the
    // same trace once queries are accounted for.
    let air = FibonacciAir::new(256);
    let starky = StarkConfig::standard();
    let proof = prove(&air, &starky).expect("ok");
    verify(&air, &proof, &starky).expect("verifies");
    // 84 queries * (trace + quotient + fold paths); must be substantial.
    assert!(proof.size_bytes() > 100_000, "got {}", proof.size_bytes());
}

#[test]
fn aggregation_compresses_large_base_proofs() {
    let air = FibonacciAir::new(256);
    let starky = StarkConfig::standard();
    let base = prove(&air, &starky).expect("ok");

    // Recursive stage with reduced FRI queries for test speed (full config
    // in the Table 5 harness).
    let mut config = CircuitConfig::for_testing();
    config.num_wires = 12;
    let agg = aggregate(&base, config).expect("aggregates");
    agg.plonk_proof.size_bytes();
    assert!(agg.size_bytes() < base.size_bytes());
}

#[test]
fn aggregation_digest_binds_base_proof() {
    let air = FibonacciAir::new(64);
    let starky = StarkConfig::for_testing();
    let base1 = prove(&air, &starky).expect("ok");

    let air2 = FibonacciAir::new(128);
    let base2 = prove(&air2, &starky).expect("ok");

    let cfg = CircuitConfig::for_testing;
    let agg1 = aggregate(&base1, cfg()).expect("ok");
    let agg2 = aggregate(&base2, cfg()).expect("ok");
    assert_ne!(agg1.base_digest, agg2.base_digest);
}

#[test]
fn stark_proof_bytes_roundtrip() {
    let air = FibonacciAir::new(64);
    let config = StarkConfig::for_testing();
    let proof = prove(&air, &config).expect("ok");
    let bytes = proof.to_bytes();
    let back = unizk_stark::StarkProof::from_bytes(&bytes).expect("decodes");
    assert_eq!(back.to_bytes(), bytes);
    verify(&air, &back, &config).expect("verifies after roundtrip");
    assert!(unizk_stark::StarkProof::<Goldilocks>::from_bytes(&bytes[..10]).is_err());
}

#[test]
fn aggregate_many_amortizes_one_recursion() {
    // Two base proofs, one recursive proof — smaller on the wire than the
    // two bases combined (the Table 6 amortization).
    let config = StarkConfig::standard();
    let bases: Vec<_> = [256usize, 512]
        .iter()
        .map(|&n| prove(&FibonacciAir::new(n), &config).expect("ok"))
        .collect();
    let mut rec_config = CircuitConfig::for_testing();
    rec_config.num_wires = 12;
    let agg = unizk_stark::aggregate_many(&bases, rec_config).expect("aggregates");
    let bases_bytes: usize = bases.iter().map(|b| b.size_bytes()).sum();
    assert!(agg.size_bytes() < bases_bytes);
}

mod koalabear_stack {
    //! The 31-bit stack end-to-end: `StarkConfig<KoalaBear, Poseidon2>`
    //! proving and verifying the same AIRs as the Goldilocks tests above,
    //! with the degree-4 extension carrying the FRI openings.

    use unizk_field::{Field, KoalaBear};
    use unizk_stark::{
        prove, verify, FibonacciAir, KbStarkConfig, RangeAccumulatorAir, StarkError,
    };

    #[test]
    fn fibonacci_proves_and_verifies_over_koalabear() {
        let air = FibonacciAir::new(128);
        let config = KbStarkConfig::for_testing_over();
        let proof = prove(&air, &config).expect("satisfiable");
        verify(&air, &proof, &config).expect("verifies");
    }

    #[test]
    fn range_accumulator_proves_and_verifies_over_koalabear() {
        let air = RangeAccumulatorAir::new(256);
        let config = KbStarkConfig::for_testing_over();
        let proof = prove(&air, &config).expect("satisfiable");
        verify(&air, &proof, &config).expect("verifies");
    }

    #[test]
    fn standard_koalabear_config_proves_with_four_challenges() {
        let air = FibonacciAir::new(64);
        let config = KbStarkConfig::standard_over();
        assert_eq!(config.num_challenges, 4);
        let proof = prove(&air, &config).expect("satisfiable");
        verify(&air, &proof, &config).expect("verifies");
    }

    #[test]
    fn koalabear_proof_bytes_roundtrip_uses_narrow_widths() {
        let air = FibonacciAir::new(64);
        let config = KbStarkConfig::for_testing_over();
        let proof = prove(&air, &config).expect("ok");
        let bytes = proof.to_bytes();
        let back = unizk_stark::StarkProof::<KoalaBear>::from_bytes(&bytes).expect("decodes");
        assert_eq!(back.to_bytes(), bytes);
        verify(&air, &back, &config).expect("verifies after roundtrip");
        // Narrow wire widths: digests are 16 bytes, base elements 4; the
        // wire adds a 4-byte length prefix per variable-length vector.
        let prefixes = proof.fri.num_length_prefixes() * 4;
        assert_eq!(proof.size_bytes() + prefixes, bytes.len());
    }

    #[test]
    fn koalabear_tampered_proof_rejected() {
        let air = FibonacciAir::new(64);
        let config = KbStarkConfig::for_testing_over();
        let mut proof = prove(&air, &config).expect("ok");
        proof.fri.openings[0][0][0] += unizk_field::KbExt4::ONE;
        assert!(verify(&air, &proof, &config).is_err());
    }

    #[test]
    fn insecure_koalabear_parameters_refused_with_extension_aware_p01() {
        // 2 challenge rounds of 31-bit challenges cap soundness at 62 bits,
        // short of the 100-bit target: the prover must refuse up front.
        let air = FibonacciAir::new(128);
        let mut config = KbStarkConfig::standard_over();
        config.num_challenges = 2;
        match prove(&air, &config) {
            Err(StarkError::InsecureParameters(diags)) => {
                assert!(diags.contains("P01"), "{diags}");
            }
            other => panic!("expected InsecureParameters, got {other:?}"),
        }
    }
}
