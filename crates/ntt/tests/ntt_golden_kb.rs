//! Golden-vector regression tests for the size-2^10 KoalaBear NTT:
//! forward transform spot values, exact iNTT roundtrip, and the blowup-2
//! coset LDE — the 31-bit mirror of `ntt_golden.rs`.
//!
//! The input vector is reproduced deterministically from a SplitMix64
//! stream (seed `0xD1CE`, the same stream the Goldilocks suite uses), and
//! the expected outputs were derived from the quadratic-time `naive_dft`
//! reference — *not* the fast kernel — then committed as constants. They
//! pin the 24-bit-two-adicity twiddle schedule, the bit-reversal
//! convention, and the coset shift (the KoalaBear multiplicative
//! generator, 3) against accidental change, and anchor the fast kernel to
//! an independent implementation.

use unizk_field::{Field, KoalaBear, PrimeField64};
use unizk_ntt::{intt_nn, lde_nr, ntt_nn};
use unizk_testkit::rng::SplitMix64;

const LOG_N: usize = 10;
const N: usize = 1 << LOG_N;
const SEED: u64 = 0xD1CE;

/// Spot values of `ntt_nn(input)` at fixed indices (derived via
/// `naive_dft`).
const NTT_SPOTS: [(usize, u64); 10] = [
    (0, 0x256b71b4),
    (1, 0x55ad8b0e),
    (2, 0x079a62b5),
    (31, 0x26528d70),
    (257, 0x7a2463e9),
    (511, 0x708a304a),
    (512, 0x22cc2fcf),
    (777, 0x299b4a0c),
    (1022, 0x215de1eb),
    (1023, 0x7e9aaa6c),
];

/// Field sum of all 2^10 forward-transform outputs.
const NTT_SUM: u64 = 0x1547eacd;

/// Spot values of `lde_nr(input, 1, g)` (blowup 2, coset shift g = 3).
const LDE_SPOTS: [(usize, u64); 6] = [
    (0, 0x4c6085a4),
    (1, 0x5541961c),
    (513, 0x6f75c871),
    (1024, 0x0d45d96c),
    (1777, 0x12c8dc77),
    (2047, 0x7e5813c2),
];

/// Field sum of all 2^11 LDE outputs.
const LDE_SUM: u64 = 0x2a8fd59a;

fn golden_input() -> Vec<KoalaBear> {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    (0..N).map(|_| KoalaBear::random(&mut rng)).collect()
}

#[test]
fn coset_shift_is_the_multiplicative_generator() {
    assert_eq!(KoalaBear::MULTIPLICATIVE_GENERATOR.as_u64(), 3);
}

#[test]
fn forward_ntt_matches_golden_spots() {
    let mut v = golden_input();
    ntt_nn(&mut v);
    for (i, expected) in NTT_SPOTS {
        assert_eq!(v[i].as_u64(), expected, "ntt output at index {i}");
    }
    let sum = v.iter().fold(KoalaBear::ZERO, |a, &b| a + b);
    assert_eq!(sum.as_u64(), NTT_SUM);
}

#[test]
fn inverse_ntt_roundtrips_golden_input() {
    let original = golden_input();
    let mut v = original.clone();
    ntt_nn(&mut v);
    intt_nn(&mut v);
    assert_eq!(v, original);
}

#[test]
fn coset_lde_matches_golden_spots() {
    let v = golden_input();
    let lde = lde_nr(&v, 1, KoalaBear::MULTIPLICATIVE_GENERATOR);
    assert_eq!(lde.len(), 2 * N);
    for (i, expected) in LDE_SPOTS {
        assert_eq!(lde[i].as_u64(), expected, "lde output at index {i}");
    }
    let sum = lde.iter().fold(KoalaBear::ZERO, |a, &b| a + b);
    assert_eq!(sum.as_u64(), LDE_SUM);
}
