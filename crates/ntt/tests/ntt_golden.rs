//! Golden-vector regression tests for the size-2^10 NTT: forward transform
//! spot values, exact iNTT roundtrip, and the blowup-2 coset LDE.
//!
//! The input vector is reproduced deterministically from a SplitMix64
//! stream (seed `0xD1CE`), and the expected outputs were produced by this
//! repository's own transforms and committed as constants. They pin the
//! twiddle-factor schedule, the bit-reversal convention, and the coset
//! shift (the Goldilocks multiplicative generator, 7) against accidental
//! change.

use unizk_field::{Field, Goldilocks, PrimeField64};
use unizk_ntt::{intt_nn, lde_nr, ntt_nn};
use unizk_testkit::rng::SplitMix64;

const LOG_N: usize = 10;
const N: usize = 1 << LOG_N;
const SEED: u64 = 0xD1CE;

/// Spot values of `ntt_nn(input)` at fixed indices.
const NTT_SPOTS: [(usize, u64); 10] = [
    (0, 0x9b27d8f9c968accd),
    (1, 0x7524748c36149d3f),
    (2, 0xee7480dcf1e8a5ba),
    (31, 0xb0aac7c358543f68),
    (257, 0x3fd2b8638a68b912),
    (511, 0x8a989b5016e5e39a),
    (512, 0x1bc611adf5ed8ab4),
    (777, 0x9240906627769e92),
    (1022, 0x235aee8a24deef6b),
    (1023, 0x9b34839d2acd0736),
];

/// Field sum of all 2^10 forward-transform outputs.
const NTT_SUM: u64 = 0x0b41813f6247eb59;

/// Spot values of `lde_nr(input, 1, g)` (blowup 2, coset shift g = 7).
const LDE_SPOTS: [(usize, u64); 6] = [
    (0, 0x26976041ec44c9db),
    (1, 0xa2d7e0499476fa9d),
    (513, 0xb98f144b3fd619b6),
    (1024, 0x8e18dfc7dfbe012b),
    (1777, 0x2419f1e89337e0f1),
    (2047, 0x0f5043ea902607d6),
];

/// Field sum of all 2^11 LDE outputs.
const LDE_SUM: u64 = 0x1683027ec48fd6b2;

fn golden_input() -> Vec<Goldilocks> {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    (0..N).map(|_| Goldilocks::random(&mut rng)).collect()
}

#[test]
fn forward_ntt_matches_golden_spots() {
    let mut v = golden_input();
    ntt_nn(&mut v);
    for (i, expected) in NTT_SPOTS {
        assert_eq!(v[i].as_u64(), expected, "ntt output at index {i}");
    }
    let sum: Goldilocks = v.iter().copied().sum();
    assert_eq!(sum.as_u64(), NTT_SUM, "ntt output checksum");
}

#[test]
fn intt_roundtrip_is_exact() {
    let input = golden_input();
    let mut v = input.clone();
    ntt_nn(&mut v);
    intt_nn(&mut v);
    assert_eq!(v, input, "iNTT(NTT(x)) must reproduce x bit-for-bit");
}

#[test]
fn coset_lde_matches_golden_spots() {
    let lde = lde_nr(&golden_input(), 1, Goldilocks::MULTIPLICATIVE_GENERATOR);
    assert_eq!(lde.len(), 2 * N);
    for (i, expected) in LDE_SPOTS {
        assert_eq!(lde[i].as_u64(), expected, "lde output at index {i}");
    }
    let sum: Goldilocks = lde.iter().copied().sum();
    assert_eq!(sum.as_u64(), LDE_SUM, "lde output checksum");
}

#[test]
fn golden_input_is_reproducible() {
    // The committed constants are only meaningful if the input derivation
    // never drifts: regenerate twice and compare, and pin the first value.
    let a = golden_input();
    assert_eq!(a, golden_input());
    let mut rng = SplitMix64::seed_from_u64(SEED);
    assert_eq!(a[0], Goldilocks::random(&mut rng));
}
