//! Golden-vector regression tests for the size-2^10 NTT: forward transform
//! spot values, exact iNTT roundtrip, and the blowup-2 coset LDE.
//!
//! The input vector is reproduced deterministically from a SplitMix64
//! stream (seed `0xD1CE`), and the expected outputs were produced by this
//! repository's own transforms and committed as constants. They pin the
//! twiddle-factor schedule, the bit-reversal convention, and the coset
//! shift (the Goldilocks multiplicative generator, 7) against accidental
//! change.

use unizk_field::{Field, Goldilocks, PrimeField64};
use unizk_ntt::{intt_nn, lde_nr, ntt_nn};
use unizk_testkit::rng::SplitMix64;

const LOG_N: usize = 10;
const N: usize = 1 << LOG_N;
const SEED: u64 = 0xD1CE;

/// Spot values of `ntt_nn(input)` at fixed indices.
const NTT_SPOTS: [(usize, u64); 10] = [
    (0, 0x9b27d8f9c968accd),
    (1, 0x7524748c36149d3f),
    (2, 0xee7480dcf1e8a5ba),
    (31, 0xb0aac7c358543f68),
    (257, 0x3fd2b8638a68b912),
    (511, 0x8a989b5016e5e39a),
    (512, 0x1bc611adf5ed8ab4),
    (777, 0x9240906627769e92),
    (1022, 0x235aee8a24deef6b),
    (1023, 0x9b34839d2acd0736),
];

/// Field sum of all 2^10 forward-transform outputs.
const NTT_SUM: u64 = 0x0b41813f6247eb59;

/// Spot values of `lde_nr(input, 1, g)` (blowup 2, coset shift g = 7).
const LDE_SPOTS: [(usize, u64); 6] = [
    (0, 0x26976041ec44c9db),
    (1, 0xa2d7e0499476fa9d),
    (513, 0xb98f144b3fd619b6),
    (1024, 0x8e18dfc7dfbe012b),
    (1777, 0x2419f1e89337e0f1),
    (2047, 0x0f5043ea902607d6),
];

/// Field sum of all 2^11 LDE outputs.
const LDE_SUM: u64 = 0x1683027ec48fd6b2;

fn golden_input() -> Vec<Goldilocks> {
    let mut rng = SplitMix64::seed_from_u64(SEED);
    (0..N).map(|_| Goldilocks::random(&mut rng)).collect()
}

#[test]
fn forward_ntt_matches_golden_spots() {
    let mut v = golden_input();
    ntt_nn(&mut v);
    for (i, expected) in NTT_SPOTS {
        assert_eq!(v[i].as_u64(), expected, "ntt output at index {i}");
    }
    let sum: Goldilocks = v.iter().copied().sum();
    assert_eq!(sum.as_u64(), NTT_SUM, "ntt output checksum");
}

#[test]
fn intt_roundtrip_is_exact() {
    let input = golden_input();
    let mut v = input.clone();
    ntt_nn(&mut v);
    intt_nn(&mut v);
    assert_eq!(v, input, "iNTT(NTT(x)) must reproduce x bit-for-bit");
}

#[test]
fn coset_lde_matches_golden_spots() {
    let lde = lde_nr(&golden_input(), 1, Goldilocks::MULTIPLICATIVE_GENERATOR);
    assert_eq!(lde.len(), 2 * N);
    for (i, expected) in LDE_SPOTS {
        assert_eq!(lde[i].as_u64(), expected, "lde output at index {i}");
    }
    let sum: Goldilocks = lde.iter().copied().sum();
    assert_eq!(sum.as_u64(), LDE_SUM, "lde output checksum");
}

#[test]
fn golden_input_is_reproducible() {
    // The committed constants are only meaningful if the input derivation
    // never drifts: regenerate twice and compare, and pin the first value.
    let a = golden_input();
    assert_eq!(a, golden_input());
    let mut rng = SplitMix64::seed_from_u64(SEED);
    assert_eq!(a[0], Goldilocks::random(&mut rng));
}

// --------------------------------------------------------------------------
// Size-2^12 golden vectors, derived from the quadratic-time reference in
// `naive.rs` (NOT from the fast kernel, so a twiddle-schedule bug in the
// radix-2 path cannot re-certify itself). They lock the cached-twiddle
// serial kernel and the decomposed parallel path to the same schedule.

const LOG_N_12: usize = 12;
const N_12: usize = 1 << LOG_N_12;
const SEED_12: u64 = 0xD1CE_2A12;

/// Spot values of `naive_dft(input_12)` at fixed indices.
const NTT12_SPOTS: [(usize, u64); 10] = [
    (0, 0xa7c5440fdaeb151c),
    (1, 0x32e58df317618d8c),
    (2, 0x11aad68c08e6948e),
    (63, 0x7baacb0f7e376adb),
    (1025, 0xc7bbbf96af79051d),
    (2047, 0xd7f8e773a965c0d9),
    (2048, 0xf55d9d93ff9bd36a),
    (3333, 0x2bf8e7c641b0f432),
    (4094, 0x53a14539beb9c23e),
    (4095, 0x62eea0f0e4748367),
];

/// Field sum of all 2^12 forward-transform outputs.
const NTT12_SUM: u64 = 0xee7f1c271a71485b;

fn golden_input_12() -> Vec<Goldilocks> {
    let mut rng = SplitMix64::seed_from_u64(SEED_12);
    (0..N_12).map(|_| Goldilocks::random(&mut rng)).collect()
}

fn check_against_golden_12(out: &[Goldilocks], what: &str) {
    for (i, expected) in NTT12_SPOTS {
        assert_eq!(out[i].as_u64(), expected, "{what} output at index {i}");
    }
    let sum: Goldilocks = out.iter().copied().sum();
    assert_eq!(sum.as_u64(), NTT12_SUM, "{what} output checksum");
}

#[test]
fn forward_ntt_2_12_matches_naive_derived_golden() {
    let mut v = golden_input_12();
    ntt_nn(&mut v);
    check_against_golden_12(&v, "radix-2 kernel");
}

#[test]
fn decomposed_parallel_2_12_matches_naive_derived_golden() {
    for dims in [[64usize, 64], [16, 256], [256, 16]] {
        let mut v = golden_input_12();
        unizk_ntt::parallel_decomposed_ntt_nn(&mut v, &dims);
        check_against_golden_12(&v, "decomposed parallel path");
    }
}

#[test]
fn intt_roundtrip_2_12_is_exact() {
    let input = golden_input_12();
    let mut v = input.clone();
    ntt_nn(&mut v);
    intt_nn(&mut v);
    assert_eq!(v, input, "iNTT(NTT(x)) must reproduce x bit-for-bit at 2^12");
}
