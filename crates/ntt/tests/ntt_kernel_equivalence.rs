//! Kernel-equivalence wall for the accelerated NTT paths.
//!
//! The cached-twiddle serial kernel, the decomposed parallel route, and
//! the order/coset/direction variants must all compute the same transform.
//! Sizes sweep `2^1..=2^14` (the full range the prover uses, crossing both
//! routing thresholds); comparisons against the quadratic-time reference
//! are capped at `2^10` to keep the suite fast, with the larger sizes
//! covered by cross-kernel equality and exact roundtrips.
//!
//! Nothing here mutates process-global knobs: the decomposed path is
//! exercised through its explicit entry point
//! ([`unizk_ntt::parallel_decomposed_ntt_nn`]), so this binary can share a
//! process with any other test.

use unizk_testkit::prop::prelude::*;
use unizk_field::{bit_reverse, reverse_index_bits, Field, Goldilocks, PrimeField64};
use unizk_ntt::{
    coset_intt_nn, coset_ntt_nn, coset_ntt_nr, decomposed_ntt_nn, intt_nn, intt_rn, naive_dft,
    naive_idft, ntt_nn, ntt_nr, ntt_rn, parallel_decomposed_ntt_nn,
};

fn arb_fields(n: usize) -> impl Strategy<Value = Vec<Goldilocks>> {
    prop::collection::vec(any::<u64>().prop_map(Goldilocks::from_u64), n)
}

/// A balanced-ish split of `2^log_n` into two power-of-two dimensions.
fn dims_for(log_n: usize, split: usize) -> [usize; 2] {
    let lo = split % (log_n + 1);
    [1 << lo, 1 << (log_n - lo)]
}

prop! {
    #![cases(12)]

    // ---- cached-twiddle serial kernel vs the quadratic reference ----

    fn forward_matches_naive_small(log_n in 1usize..=10, seed_vec in arb_fields(1 << 10)) {
        let v = &seed_vec[..1 << log_n];
        let mut fast = v.to_vec();
        ntt_nn(&mut fast);
        prop_assert_eq!(fast, naive_dft(v));
    }

    fn inverse_matches_naive_small(log_n in 1usize..=10, seed_vec in arb_fields(1 << 10)) {
        let v = &seed_vec[..1 << log_n];
        let mut fast = v.to_vec();
        intt_nn(&mut fast);
        prop_assert_eq!(fast, naive_idft(v));
    }

    // ---- order variants agree at every size up to 2^14 ----

    fn nr_is_bit_reversed_nn(log_n in 1usize..=14, seed_vec in arb_fields(1 << 14)) {
        let v = &seed_vec[..1 << log_n];
        let mut nn = v.to_vec();
        ntt_nn(&mut nn);
        let mut nr = v.to_vec();
        ntt_nr(&mut nr);
        for (i, x) in nr.iter().enumerate() {
            prop_assert_eq!(*x, nn[bit_reverse(i, log_n)]);
        }
    }

    fn rn_undoes_input_bit_reversal(log_n in 1usize..=14, seed_vec in arb_fields(1 << 14)) {
        let v = &seed_vec[..1 << log_n];
        let mut nn = v.to_vec();
        ntt_nn(&mut nn);
        let mut rn = v.to_vec();
        reverse_index_bits(&mut rn);
        ntt_rn(&mut rn);
        prop_assert_eq!(rn, nn);
    }

    // ---- both directions roundtrip exactly at every size ----

    fn nn_roundtrip(log_n in 1usize..=14, seed_vec in arb_fields(1 << 14)) {
        let v = &seed_vec[..1 << log_n];
        let mut x = v.to_vec();
        ntt_nn(&mut x);
        intt_nn(&mut x);
        prop_assert_eq!(x.as_slice(), v);
    }

    fn nr_rn_roundtrip(log_n in 1usize..=14, seed_vec in arb_fields(1 << 14)) {
        let v = &seed_vec[..1 << log_n];
        let mut x = v.to_vec();
        ntt_nr(&mut x);
        intt_rn(&mut x);
        prop_assert_eq!(x.as_slice(), v);
    }

    // ---- coset variants, both shifts and directions ----

    fn coset_forward_matches_shifted_naive(
        log_n in 1usize..=8,
        seed_vec in arb_fields(1 << 8),
        s in 1u64..10_000,
    ) {
        let shift = Goldilocks::from_u64(s);
        prop_assume!(!shift.is_zero());
        let v = &seed_vec[..1 << log_n];
        // coset-NTT(x) == NTT of coefficients pre-scaled by shift^i.
        let scaled: Vec<Goldilocks> = v
            .iter()
            .enumerate()
            .map(|(i, &c)| c * shift.exp_u64(i as u64))
            .collect();
        let mut fast = v.to_vec();
        coset_ntt_nn(&mut fast, shift);
        prop_assert_eq!(fast, naive_dft(&scaled));
    }

    fn coset_roundtrip_all_sizes(log_n in 1usize..=14, seed_vec in arb_fields(1 << 14)) {
        let shift = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let v = &seed_vec[..1 << log_n];
        let mut x = v.to_vec();
        coset_ntt_nn(&mut x, shift);
        coset_intt_nn(&mut x, shift);
        prop_assert_eq!(x.as_slice(), v);
    }

    fn coset_nr_is_bit_reversed_coset_nn(log_n in 1usize..=12, seed_vec in arb_fields(1 << 12)) {
        let shift = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let v = &seed_vec[..1 << log_n];
        let mut nn = v.to_vec();
        coset_ntt_nn(&mut nn, shift);
        let mut nr = v.to_vec();
        coset_ntt_nr(&mut nr, shift);
        reverse_index_bits(&mut nr);
        prop_assert_eq!(nr, nn);
    }

    // ---- decomposed paths (serial model and parallel route) ----

    fn decomposed_parallel_matches_serial_kernel(
        log_n in 1usize..=14,
        split in 0usize..15,
        seed_vec in arb_fields(1 << 14),
    ) {
        let v = &seed_vec[..1 << log_n];
        let mut mono = v.to_vec();
        ntt_nn(&mut mono);
        let mut par = v.to_vec();
        parallel_decomposed_ntt_nn(&mut par, &dims_for(log_n, split));
        prop_assert_eq!(par, mono);
    }

    fn decomposed_parallel_matches_serial_model(
        log_n in 1usize..=12,
        split in 0usize..13,
        seed_vec in arb_fields(1 << 12),
    ) {
        let v = &seed_vec[..1 << log_n];
        let dims = dims_for(log_n, split);
        let mut serial = v.to_vec();
        decomposed_ntt_nn(&mut serial, &dims);
        let mut par = v.to_vec();
        parallel_decomposed_ntt_nn(&mut par, &dims);
        prop_assert_eq!(par, serial);
    }
}
