//! Cross-field kernel-equivalence wall for the accelerated NTT paths.
//!
//! The cached-twiddle serial kernel, the decomposed parallel route, and
//! the order/coset/direction variants must all compute the same transform
//! — over **both** supported base fields. Every property draws one vector
//! of `u64` seeds and runs the identical check over 64-bit Goldilocks and
//! 31-bit KoalaBear, so a kernel bug that only manifests in one field's
//! reduction or twiddle table fails the same case.
//!
//! Sizes sweep `2^1..=2^14` over Goldilocks (the full range the prover
//! uses, crossing both routing thresholds) and `2^1..=2^12` over KoalaBear;
//! comparisons against the quadratic-time reference are capped at `2^10`
//! to keep the suite fast, with the larger sizes covered by cross-kernel
//! equality and exact roundtrips.
//!
//! Nothing here mutates process-global knobs: the decomposed path is
//! exercised through its explicit entry point
//! ([`unizk_ntt::parallel_decomposed_ntt_nn`]), so this binary can share a
//! process with any other test.

use unizk_field::{bit_reverse, reverse_index_bits, Goldilocks, KoalaBear, PrimeField64};
use unizk_ntt::{
    coset_intt_nn, coset_ntt_nn, coset_ntt_nr, decomposed_ntt_nn, intt_nn, intt_rn, naive_dft,
    naive_idft, ntt_nn, ntt_nr, ntt_rn, parallel_decomposed_ntt_nn,
};
use unizk_testkit::prop::prelude::*;
use unizk_testkit::prop::CaseResult;

fn arb_seeds(n: usize) -> impl Strategy<Value = Vec<u64>> {
    collection::vec(any::<u64>(), n)
}

/// One seed vector rendered into field `F` (reduction differs per field —
/// that is the point of the differential).
fn to_field<F: PrimeField64>(seeds: &[u64]) -> Vec<F> {
    seeds.iter().map(|&s| F::from_u64(s)).collect()
}

/// A balanced-ish split of `2^log_n` into two power-of-two dimensions.
fn dims_for(log_n: usize, split: usize) -> [usize; 2] {
    let lo = split % (log_n + 1);
    [1 << lo, 1 << (log_n - lo)]
}

/// KoalaBear mirrors the Goldilocks sweep up to `2^12`.
const KB_MAX_LOG: usize = 12;

// ---- generic single-field checks, shared by both instantiations ----

fn check_forward_naive<F: PrimeField64>(seeds: &[u64]) -> CaseResult {
    let v = to_field::<F>(seeds);
    let mut fast = v.clone();
    ntt_nn(&mut fast);
    prop_assert_eq!(fast, naive_dft(&v));
    Ok(())
}

fn check_inverse_naive<F: PrimeField64>(seeds: &[u64]) -> CaseResult {
    let v = to_field::<F>(seeds);
    let mut fast = v.clone();
    intt_nn(&mut fast);
    prop_assert_eq!(fast, naive_idft(&v));
    Ok(())
}

fn check_nr_is_bit_reversed_nn<F: PrimeField64>(seeds: &[u64], log_n: usize) -> CaseResult {
    let v = to_field::<F>(&seeds[..1 << log_n]);
    let mut nn = v.clone();
    ntt_nn(&mut nn);
    let mut nr = v;
    ntt_nr(&mut nr);
    for (i, x) in nr.iter().enumerate() {
        prop_assert_eq!(*x, nn[bit_reverse(i, log_n)]);
    }
    Ok(())
}

fn check_rn_undoes_input_bit_reversal<F: PrimeField64>(seeds: &[u64]) -> CaseResult {
    let v = to_field::<F>(seeds);
    let mut nn = v.clone();
    ntt_nn(&mut nn);
    let mut rn = v;
    reverse_index_bits(&mut rn);
    ntt_rn(&mut rn);
    prop_assert_eq!(rn, nn);
    Ok(())
}

fn check_nn_roundtrip<F: PrimeField64>(seeds: &[u64]) -> CaseResult {
    let v = to_field::<F>(seeds);
    let mut x = v.clone();
    ntt_nn(&mut x);
    intt_nn(&mut x);
    prop_assert_eq!(x, v);
    Ok(())
}

fn check_nr_rn_roundtrip<F: PrimeField64>(seeds: &[u64]) -> CaseResult {
    let v = to_field::<F>(seeds);
    let mut x = v.clone();
    ntt_nr(&mut x);
    intt_rn(&mut x);
    prop_assert_eq!(x, v);
    Ok(())
}

fn check_coset_forward_naive<F: PrimeField64>(seeds: &[u64], s: u64) -> CaseResult {
    let shift = F::from_u64(s);
    prop_assume!(!shift.is_zero());
    let v = to_field::<F>(seeds);
    // coset-NTT(x) == NTT of coefficients pre-scaled by shift^i.
    let scaled: Vec<F> = v
        .iter()
        .enumerate()
        .map(|(i, &c)| c * shift.exp_u64(i as u64))
        .collect();
    let mut fast = v;
    coset_ntt_nn(&mut fast, shift);
    prop_assert_eq!(fast, naive_dft(&scaled));
    Ok(())
}

fn check_coset_roundtrip<F: PrimeField64>(seeds: &[u64]) -> CaseResult {
    let shift = F::MULTIPLICATIVE_GENERATOR;
    let v = to_field::<F>(seeds);
    let mut x = v.clone();
    coset_ntt_nn(&mut x, shift);
    coset_intt_nn(&mut x, shift);
    prop_assert_eq!(x, v);
    Ok(())
}

fn check_coset_nr_is_bit_reversed_coset_nn<F: PrimeField64>(seeds: &[u64]) -> CaseResult {
    let shift = F::MULTIPLICATIVE_GENERATOR;
    let v = to_field::<F>(seeds);
    let mut nn = v.clone();
    coset_ntt_nn(&mut nn, shift);
    let mut nr = v;
    coset_ntt_nr(&mut nr, shift);
    reverse_index_bits(&mut nr);
    prop_assert_eq!(nr, nn);
    Ok(())
}

fn check_parallel_matches_serial_kernel<F: PrimeField64>(
    seeds: &[u64],
    dims: &[usize],
) -> CaseResult {
    let v = to_field::<F>(seeds);
    let mut mono = v.clone();
    ntt_nn(&mut mono);
    let mut par = v;
    parallel_decomposed_ntt_nn(&mut par, dims);
    prop_assert_eq!(par, mono);
    Ok(())
}

fn check_parallel_matches_serial_model<F: PrimeField64>(
    seeds: &[u64],
    dims: &[usize],
) -> CaseResult {
    let v = to_field::<F>(seeds);
    let mut serial = v.clone();
    decomposed_ntt_nn(&mut serial, dims);
    let mut par = v;
    parallel_decomposed_ntt_nn(&mut par, dims);
    prop_assert_eq!(par, serial);
    Ok(())
}

prop! {
    #![cases(12)]

    // ---- cached-twiddle serial kernel vs the quadratic reference ----

    fn forward_matches_naive_small(log_n in 1usize..=10, seeds in arb_seeds(1 << 10)) {
        check_forward_naive::<Goldilocks>(&seeds[..1 << log_n])?;
        check_forward_naive::<KoalaBear>(&seeds[..1 << log_n])?;
    }

    fn inverse_matches_naive_small(log_n in 1usize..=10, seeds in arb_seeds(1 << 10)) {
        check_inverse_naive::<Goldilocks>(&seeds[..1 << log_n])?;
        check_inverse_naive::<KoalaBear>(&seeds[..1 << log_n])?;
    }

    // ---- order variants agree at every size up to 2^14 ----

    fn nr_is_bit_reversed_nn(log_n in 1usize..=14, seeds in arb_seeds(1 << 14)) {
        check_nr_is_bit_reversed_nn::<Goldilocks>(&seeds, log_n)?;
        check_nr_is_bit_reversed_nn::<KoalaBear>(&seeds, log_n.min(KB_MAX_LOG))?;
    }

    fn rn_undoes_input_bit_reversal(log_n in 1usize..=14, seeds in arb_seeds(1 << 14)) {
        check_rn_undoes_input_bit_reversal::<Goldilocks>(&seeds[..1 << log_n])?;
        check_rn_undoes_input_bit_reversal::<KoalaBear>(&seeds[..1 << log_n.min(KB_MAX_LOG)])?;
    }

    // ---- both directions roundtrip exactly at every size ----

    fn nn_roundtrip(log_n in 1usize..=14, seeds in arb_seeds(1 << 14)) {
        check_nn_roundtrip::<Goldilocks>(&seeds[..1 << log_n])?;
        check_nn_roundtrip::<KoalaBear>(&seeds[..1 << log_n.min(KB_MAX_LOG)])?;
    }

    fn nr_rn_roundtrip(log_n in 1usize..=14, seeds in arb_seeds(1 << 14)) {
        check_nr_rn_roundtrip::<Goldilocks>(&seeds[..1 << log_n])?;
        check_nr_rn_roundtrip::<KoalaBear>(&seeds[..1 << log_n.min(KB_MAX_LOG)])?;
    }

    // ---- coset variants, both shifts and directions ----

    fn coset_forward_matches_shifted_naive(
        log_n in 1usize..=8,
        seeds in arb_seeds(1 << 8),
        s in 1u64..10_000,
    ) {
        check_coset_forward_naive::<Goldilocks>(&seeds[..1 << log_n], s)?;
        check_coset_forward_naive::<KoalaBear>(&seeds[..1 << log_n], s)?;
    }

    fn coset_roundtrip_all_sizes(log_n in 1usize..=14, seeds in arb_seeds(1 << 14)) {
        check_coset_roundtrip::<Goldilocks>(&seeds[..1 << log_n])?;
        check_coset_roundtrip::<KoalaBear>(&seeds[..1 << log_n.min(KB_MAX_LOG)])?;
    }

    fn coset_nr_is_bit_reversed_coset_nn(log_n in 1usize..=12, seeds in arb_seeds(1 << 12)) {
        check_coset_nr_is_bit_reversed_coset_nn::<Goldilocks>(&seeds[..1 << log_n])?;
        check_coset_nr_is_bit_reversed_coset_nn::<KoalaBear>(&seeds[..1 << log_n])?;
    }

    // ---- decomposed paths (serial model and parallel route) ----

    fn decomposed_parallel_matches_serial_kernel(
        log_n in 1usize..=14,
        split in 0usize..15,
        seeds in arb_seeds(1 << 14),
    ) {
        check_parallel_matches_serial_kernel::<Goldilocks>(
            &seeds[..1 << log_n], &dims_for(log_n, split))?;
        let kb_log = log_n.min(KB_MAX_LOG);
        check_parallel_matches_serial_kernel::<KoalaBear>(
            &seeds[..1 << kb_log], &dims_for(kb_log, split))?;
    }

    fn decomposed_parallel_matches_serial_model(
        log_n in 1usize..=12,
        split in 0usize..13,
        seeds in arb_seeds(1 << 12),
    ) {
        let dims = dims_for(log_n, split);
        check_parallel_matches_serial_model::<Goldilocks>(&seeds[..1 << log_n], &dims)?;
        check_parallel_matches_serial_model::<KoalaBear>(&seeds[..1 << log_n], &dims)?;
    }
}
