//! Property-based tests for the NTT layer: roundtrips, equivalence of all
//! variants against the naive DFT, and decomposition correctness for
//! arbitrary dimension splits.

use unizk_testkit::prop::prelude::*;
use unizk_field::{Field, Goldilocks};
use unizk_ntt::{
    coset_intt_nn, coset_ntt_nn, decomposed_ntt_nn, intt_nn, intt_rn, lde, naive_dft, ntt_nn,
    ntt_nr, NttDecomposition,
};

fn arb_fields(log_n: usize) -> impl Strategy<Value = Vec<Goldilocks>> {
    prop::collection::vec(any::<u64>().prop_map(Goldilocks::from_u64), 1 << log_n)
}

prop! {
    #![cases(32)]

    fn roundtrip_nn(log_n in 0usize..9, seed_vec in arb_fields(8)) {
        let v = &seed_vec[..1 << log_n];
        let mut x = v.to_vec();
        ntt_nn(&mut x);
        intt_nn(&mut x);
        prop_assert_eq!(x.as_slice(), v);
    }

    fn roundtrip_nr_rn(log_n in 0usize..9, seed_vec in arb_fields(8)) {
        let v = &seed_vec[..1 << log_n];
        let mut x = v.to_vec();
        ntt_nr(&mut x);
        intt_rn(&mut x);
        prop_assert_eq!(x.as_slice(), v);
    }

    fn matches_naive(log_n in 0usize..7, seed_vec in arb_fields(6)) {
        let v = &seed_vec[..1 << log_n];
        let mut x = v.to_vec();
        ntt_nn(&mut x);
        prop_assert_eq!(x, naive_dft(v));
    }

    fn coset_roundtrip(log_n in 0usize..8, seed_vec in arb_fields(7), s in 1u64..1000) {
        let shift = Goldilocks::from_u64(s);
        prop_assume!(!shift.is_zero());
        let v = &seed_vec[..1 << log_n];
        let mut x = v.to_vec();
        coset_ntt_nn(&mut x, shift);
        coset_intt_nn(&mut x, shift);
        prop_assert_eq!(x.as_slice(), v);
    }

    fn decomposition_invariant_to_split(seed_vec in arb_fields(8), split in 1usize..8) {
        // Any 2-way split of 2^8 computes the same transform.
        let mut mono = seed_vec.clone();
        ntt_nn(&mut mono);
        let mut dec = seed_vec;
        decomposed_ntt_nn(&mut dec, &[1 << split, 1 << (8 - split)]);
        prop_assert_eq!(dec, mono);
    }

    fn planned_decomposition_correct(log_small in 1usize..6, seed_vec in arb_fields(8)) {
        let plan = NttDecomposition::plan(8, log_small);
        let mut mono = seed_vec.clone();
        ntt_nn(&mut mono);
        let mut dec = seed_vec;
        decomposed_ntt_nn(&mut dec, &plan.dims);
        prop_assert_eq!(dec, mono);
    }

    fn lde_prefix_property(seed_vec in arb_fields(4), rate in 1usize..4) {
        // An LDE with shift 1 restricted to stride-k points equals the
        // original evaluations on H.
        let coeffs = seed_vec;
        let ext = lde(&coeffs, rate, Goldilocks::ONE);
        let mut base = coeffs;
        ntt_nn(&mut base);
        let k = 1 << rate;
        for (i, &b) in base.iter().enumerate() {
            prop_assert_eq!(ext[i * k], b);
        }
    }

    fn parseval_like_energy_preservation(seed_vec in arb_fields(5)) {
        // NTT is a bijection: distinct inputs give distinct outputs (checked
        // indirectly: transform then inverse is identity even after
        // perturbation).
        let mut x = seed_vec.clone();
        ntt_nn(&mut x);
        let mut y = x.clone();
        y[0] += Goldilocks::ONE;
        intt_nn(&mut x);
        intt_rn(&mut {
            let mut t = y.clone();
            unizk_field::reverse_index_bits(&mut t);
            t
        });
        prop_assert_eq!(x, seed_vec);
    }
}
