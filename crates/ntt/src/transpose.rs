//! Data-layout transformations between the polynomial-major and index-major
//! layouts the protocol uses (paper §5.1 "Data layouts").
//!
//! In hardware these are handled implicitly by the global transpose buffer
//! while fetching from memory; in software we provide explicit helpers, plus
//! a tiled variant that mirrors the `b×b` buffer operation so the simulator
//! cost model can be validated against a functional implementation.

/// Transposes a row-major `rows × cols` matrix into a row-major
/// `cols × rows` matrix.
///
/// With polynomials as rows, this converts the polynomial-major layout
/// (each polynomial contiguous) into index-major (same position of all
/// polynomials contiguous) and back.
///
/// # Panics
///
/// Panics if `values.len() != rows * cols`.
pub fn transpose<T: Copy>(values: &[T], rows: usize, cols: usize) -> Vec<T> {
    assert_eq!(values.len(), rows * cols, "shape mismatch");
    let mut out = Vec::with_capacity(values.len());
    for c in 0..cols {
        for r in 0..rows {
            out.push(values[r * cols + c]);
        }
    }
    out
}

/// Transposes via `b × b` tiles, the access pattern of the hardware
/// transpose buffer (the paper uses `b = 16`).
///
/// Functionally identical to [`transpose`]; exists so tests can confirm the
/// tiled schedule is lossless and so the number of tile fills can be
/// reasoned about (`⌈rows/b⌉·⌈cols/b⌉`).
///
/// # Panics
///
/// Panics if `values.len() != rows * cols` or `b == 0`.
pub fn transpose_tiled<T: Copy + Default>(values: &[T], rows: usize, cols: usize, b: usize) -> Vec<T> {
    assert_eq!(values.len(), rows * cols, "shape mismatch");
    assert!(b > 0, "tile size must be positive");
    let mut out = vec![T::default(); values.len()];
    for tile_r in (0..rows).step_by(b) {
        for tile_c in (0..cols).step_by(b) {
            let r_end = (tile_r + b).min(rows);
            let c_end = (tile_c + b).min(cols);
            for r in tile_r..r_end {
                for c in tile_c..c_end {
                    out[c * rows + r] = values[r * cols + c];
                }
            }
        }
    }
    out
}

/// Number of `b × b` tile operations a tiled transpose performs, the unit
/// the simulator charges transpose-buffer occupancy in.
pub fn transpose_tile_count(rows: usize, cols: usize, b: usize) -> usize {
    rows.div_ceil(b) * cols.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_small() {
        // 2x3 -> 3x2
        let m = vec![1, 2, 3, 4, 5, 6];
        assert_eq!(transpose(&m, 2, 3), vec![1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn transpose_is_involution() {
        let m: Vec<u32> = (0..12 * 7).collect();
        let t = transpose(&m, 12, 7);
        let back = transpose(&t, 7, 12);
        assert_eq!(back, m);
    }

    #[test]
    fn tiled_matches_plain() {
        let m: Vec<u32> = (0..64 * 24).collect();
        let plain = transpose(&m, 64, 24);
        for b in [1, 3, 16, 100] {
            assert_eq!(transpose_tiled(&m, 64, 24, b), plain, "b={b}");
        }
    }

    #[test]
    fn tile_count() {
        assert_eq!(transpose_tile_count(32, 32, 16), 4);
        assert_eq!(transpose_tile_count(33, 32, 16), 6);
        assert_eq!(transpose_tile_count(1, 1, 16), 1);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn transpose_rejects_bad_shape() {
        let _ = transpose(&[1, 2, 3], 2, 2);
    }
}
