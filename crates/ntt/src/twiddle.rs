//! Process-global twiddle cache.
//!
//! The accelerator generates twiddle factors on the fly with a dedicated
//! hardware generator (paper §5.1); software has no such luxury, and before
//! this cache existed every NTT invocation rebuilt its per-stage tables from
//! scratch — `n - 1` field multiplications per transform that SZKP and
//! zkPHIRE both identify as the first-order software overhead. The cache
//! memoizes stage tables per `(field, log_n, direction)` and coset-power
//! tables per `(field, log_n, shift)`, built lazily on first use and shared
//! by `Arc` reference afterwards.
//!
//! # Lifetime and concurrency
//!
//! Entries live for the remainder of the process once built (they are pure
//! functions of the field and the key, so they never invalidate) and the
//! maps are guarded by plain mutexes: the lock is held only for the lookup
//! or the insert, never while a table is being built, so concurrent misses
//! on the same key may build the table twice but always publish identical
//! values. Reads are one lock + one `Arc` clone — negligible next to even
//! the smallest transform. Interaction with
//! [`unizk_field::par::set_parallelism`] is documented in ARCHITECTURE.md:
//! the cache is shared across whatever thread count is configured, and a
//! table built under one setting is byte-identical to one built under any
//! other, so measurement modes can be switched freely mid-process.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use unizk_field::{log2_strict, PrimeField64};

/// Key for per-stage butterfly tables: field type, `log2` of the transform
/// size, and direction (`true` = inverse).
type StageKey = (TypeId, usize, bool);

/// Key for coset-power tables: field type, `log2` of the vector length, and
/// the canonical representative of the shift.
type CosetKey = (TypeId, usize, u64);

type ErasedMap<K> = Mutex<HashMap<K, Arc<dyn Any + Send + Sync>>>;

fn stage_cache() -> &'static ErasedMap<StageKey> {
    static CACHE: OnceLock<ErasedMap<StageKey>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn coset_cache() -> &'static ErasedMap<CosetKey> {
    static CACHE: OnceLock<ErasedMap<CosetKey>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Builds the per-stage twiddle tables for a size-`n` transform.
///
/// Table layout (shared by the DIF and DIT dataflows): entry `s` of the
/// result serves the stage with butterfly half-size `m = n / 2^(s+1)` and
/// holds `ω_{2m}^j` for `j < m`, where `ω` is the forward (or inverse)
/// primitive `n`-th root of unity.
fn build_stage_tables<F: PrimeField64>(n: usize, inverse: bool) -> Vec<Vec<F>> {
    let log_n = log2_strict(n);
    let mut root = F::primitive_root_of_unity(log_n);
    if inverse {
        root = root.inverse();
    }
    // For each stage half-size m = n/2, n/4, ..., 1 the generator is
    // root^(n/(2m)).
    let mut tables = Vec::with_capacity(log_n);
    let mut m = n / 2;
    let mut w_m = root;
    while m >= 1 {
        let mut tw = Vec::with_capacity(m);
        let mut w = F::ONE;
        for _ in 0..m {
            tw.push(w);
            w *= w_m;
        }
        tables.push(tw);
        m /= 2;
        w_m = w_m.square();
    }
    tables
}

/// The cached per-stage twiddle tables for a size-`n` transform (see
/// `build_stage_tables` for the layout), built on first use.
///
/// # Panics
///
/// Panics if `n` is not a power of two or exceeds the field's two-adicity.
pub fn stage_tables<F: PrimeField64>(n: usize, inverse: bool) -> Arc<Vec<Vec<F>>> {
    let key: StageKey = (TypeId::of::<F>(), log2_strict(n), inverse);
    if let Some(hit) = stage_cache().lock().expect("twiddle cache poisoned").get(&key) {
        return Arc::clone(hit)
            .downcast::<Vec<Vec<F>>>()
            .expect("stage table type matches its key");
    }
    // Build outside the lock; a racing builder publishes identical data.
    let built: Arc<Vec<Vec<F>>> = Arc::new(build_stage_tables(n, inverse));
    let mut map = stage_cache().lock().expect("twiddle cache poisoned");
    let entry = map
        .entry(key)
        .or_insert_with(|| Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
    Arc::clone(entry)
        .downcast::<Vec<Vec<F>>>()
        .expect("stage table type matches its key")
}

/// The cached coset-power table `[1, shift, shift^2, …, shift^(n-1)]`,
/// built on first use.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn coset_powers<F: PrimeField64>(n: usize, shift: F) -> Arc<Vec<F>> {
    let key: CosetKey = (TypeId::of::<F>(), log2_strict(n), shift.as_u64());
    if let Some(hit) = coset_cache().lock().expect("twiddle cache poisoned").get(&key) {
        return Arc::clone(hit)
            .downcast::<Vec<F>>()
            .expect("coset table type matches its key");
    }
    let mut powers = Vec::with_capacity(n);
    let mut p = F::ONE;
    for _ in 0..n {
        powers.push(p);
        p *= shift;
    }
    let built: Arc<Vec<F>> = Arc::new(powers);
    let mut map = coset_cache().lock().expect("twiddle cache poisoned");
    let entry = map
        .entry(key)
        .or_insert_with(|| Arc::clone(&built) as Arc<dyn Any + Send + Sync>);
    Arc::clone(entry)
        .downcast::<Vec<F>>()
        .expect("coset table type matches its key")
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::{Field, Goldilocks};

    #[test]
    fn repeated_lookups_share_one_table() {
        let a = stage_tables::<Goldilocks>(64, false);
        let b = stage_tables::<Goldilocks>(64, false);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(a.len(), 6);
        for (s, tw) in a.iter().enumerate() {
            assert_eq!(tw.len(), 64 >> (s + 1), "stage {s}");
        }
    }

    #[test]
    fn directions_and_sizes_are_distinct_entries() {
        let fwd = stage_tables::<Goldilocks>(32, false);
        let inv = stage_tables::<Goldilocks>(32, true);
        assert!(!Arc::ptr_eq(&fwd, &inv));
        // Forward and inverse generators are mutual inverses at every stage.
        for (f, i) in fwd.iter().zip(inv.iter()) {
            for (wf, wi) in f.iter().zip(i.iter()) {
                assert_eq!(*wf * *wi, Goldilocks::ONE);
            }
        }
        let other = stage_tables::<Goldilocks>(64, false);
        assert_ne!(fwd.len(), other.len());
    }

    #[test]
    fn cached_tables_match_a_fresh_build() {
        let cached = stage_tables::<Goldilocks>(128, true);
        assert_eq!(*cached, build_stage_tables::<Goldilocks>(128, true));
    }

    #[test]
    #[should_panic(expected = "exceeds two-adicity 24")]
    fn koalabear_tables_past_two_adicity_panic_with_field_limit() {
        // The cache must surface the *field's* two-adic limit, not an
        // implicit Goldilocks 2^32: a 2^25 KoalaBear table request dies in
        // the root-of-unity assert before anything is built or cached.
        let _ = stage_tables::<unizk_field::KoalaBear>(1 << 25, false);
    }

    #[test]
    fn tables_at_each_fields_two_adicity_frontier_build() {
        // 2^12 is comfortably inside both fields' two-adic subgroups; the
        // cache keys by (field, log_n, dir) so the entries are distinct.
        let gl = stage_tables::<Goldilocks>(1 << 12, false);
        let kb = stage_tables::<unizk_field::KoalaBear>(1 << 12, false);
        assert_eq!(gl.len(), 12);
        assert_eq!(kb.len(), 12);
    }

    #[test]
    fn coset_powers_are_the_geometric_series() {
        use unizk_field::PrimeField64;
        let shift = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let tbl = coset_powers::<Goldilocks>(16, shift);
        let again = coset_powers::<Goldilocks>(16, shift);
        assert!(Arc::ptr_eq(&tbl, &again));
        let mut p = Goldilocks::ONE;
        for (i, &v) in tbl.iter().enumerate() {
            assert_eq!(v, p, "power {i}");
            p *= shift;
        }
        // A different shift is a distinct entry.
        let other = coset_powers::<Goldilocks>(16, shift.inverse());
        assert!(!Arc::ptr_eq(&tbl, &other));
    }
}
