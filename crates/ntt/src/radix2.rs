//! In-place radix-2 NTT kernels (DIF and DIT dataflows) and their coset /
//! bit-reverse-order variants.
//!
//! The paper's hardware supports both DIT and DIF dataflows (§5.1); here DIF
//! produces bit-reversed output from natural input (`NTT^NR`) and DIT
//! consumes bit-reversed input producing natural output (`NTT^RN`), exactly
//! the combinations the FRI pipeline needs.
//!
//! # Twiddles and parallelism
//!
//! Twiddle tables come from the process-global [`crate::twiddle`] cache, so
//! repeated transforms of one size pay the table build exactly once. Large
//! transforms additionally split their butterfly work across the worker
//! threads configured by [`unizk_field::set_parallelism`]:
//!
//! * at or above [`stage_parallel_threshold`] (log₂ size), the in-place
//!   kernels run their straddling early/late stages as parallel half-block
//!   windows and the remaining stages as independent per-segment serial
//!   transforms;
//! * at or above [`decompose_parallel_threshold`], the forward natural-order
//!   entry points route through the multi-dimensional split in
//!   [`crate::decompose`], which runs whole rows/columns per work item.
//!
//! Both thresholds are throughput knobs, not correctness parameters: every
//! path performs the identical field operations in the identical order per
//! element, so results — and the `ntt.*` trace counters, which are bumped
//! once per logical transform before any path choice — are bit-identical
//! for every thread count. The determinism suite pins this down.

use std::sync::atomic::{AtomicUsize, Ordering};

use unizk_field::{log2_strict, reverse_index_bits, PrimeField64};

use crate::twiddle;

/// Default log₂ size at which in-place kernels split stages across workers.
const DEFAULT_STAGE_PARALLEL_LOG2: usize = 12;
/// Default log₂ size at which forward transforms use the k-dimensional
/// decomposition instead of stage splitting.
const DEFAULT_DECOMPOSE_PARALLEL_LOG2: usize = 16;

static STAGE_PARALLEL_MIN_LOG2: AtomicUsize = AtomicUsize::new(DEFAULT_STAGE_PARALLEL_LOG2);
static DECOMPOSE_PARALLEL_MIN_LOG2: AtomicUsize =
    AtomicUsize::new(DEFAULT_DECOMPOSE_PARALLEL_LOG2);

/// Sets the minimum log₂ transform size for intra-transform stage
/// parallelism (`usize::MAX` disables it). Process-global; latched at the
/// entry of each transform.
pub fn set_stage_parallel_threshold(log_n: usize) {
    STAGE_PARALLEL_MIN_LOG2.store(log_n, Ordering::SeqCst);
}

/// The current stage-parallelism threshold (log₂ size).
pub fn stage_parallel_threshold() -> usize {
    STAGE_PARALLEL_MIN_LOG2.load(Ordering::SeqCst)
}

/// Sets the minimum log₂ transform size at which forward natural-order
/// transforms route through the k-dimensional decomposition
/// (`usize::MAX` disables the route). Process-global.
pub fn set_decompose_parallel_threshold(log_n: usize) {
    DECOMPOSE_PARALLEL_MIN_LOG2.store(log_n, Ordering::SeqCst);
}

/// The current decomposition-routing threshold (log₂ size).
pub fn decompose_parallel_threshold() -> usize {
    DECOMPOSE_PARALLEL_MIN_LOG2.load(Ordering::SeqCst)
}

/// True when a size-`n` transform should split work across workers at all.
fn wants_stage_parallel(n: usize, threads: usize) -> bool {
    threads > 1 && log2_strict(n) >= stage_parallel_threshold()
}

/// True when a forward size-`n` transform should take the decomposed route.
fn wants_decompose(n: usize, threads: usize) -> bool {
    threads > 1 && log2_strict(n) >= decompose_parallel_threshold()
}

/// Records one transform in the trace layer: total count, element volume,
/// and butterfly volume (`n/2·log₂ n`, the unit Fig. 9's NTT speedups are
/// normalized over). One bump per transform, so the cost is negligible
/// even for the smallest sizes.
pub(crate) fn count_transform(n: usize) {
    use unizk_testkit::trace;
    trace::counter("ntt.transforms", 1);
    trace::counter("ntt.elements", n as u64);
    trace::counter("ntt.butterflies", (n as u64 / 2) * log2_strict(n) as u64);
}

/// Serial DIF stage loop over `values`, using `tables[s]` for the stage
/// with half-size `values.len() / 2^(s+1)`.
///
/// Because a stage's twiddles depend only on the butterfly index `j` within
/// a block (never on the block), a length-`L` *segment* of a larger
/// transform runs its remaining stages with exactly the tail `&tables[s..]`
/// of the full table set — the property the parallel split relies on.
fn dif_stages<F: PrimeField64>(values: &mut [F], tables: &[Vec<F>]) {
    let n = values.len();
    let mut m = n / 2;
    let mut stage = 0;
    while m >= 1 {
        let tw = &tables[stage];
        for block in (0..n).step_by(2 * m) {
            for j in 0..m {
                let a = values[block + j];
                let b = values[block + j + m];
                values[block + j] = a + b;
                values[block + j + m] = (a - b) * tw[j];
            }
        }
        m /= 2;
        stage += 1;
    }
}

/// Serial DIT stage loop over `values` (mirror of [`dif_stages`]).
fn dit_stages<F: PrimeField64>(values: &mut [F], tables: &[Vec<F>]) {
    let n = values.len();
    let log_n = log2_strict(n);
    let mut m = 1;
    let mut stage = log_n;
    while m < n {
        stage -= 1;
        let tw = &tables[stage];
        for block in (0..n).step_by(2 * m) {
            for j in 0..m {
                let a = values[block + j];
                let b = values[block + j + m] * tw[j];
                values[block + j] = a + b;
                values[block + j + m] = a - b;
            }
        }
        m *= 2;
    }
}

/// Parallel DIF: the first `log₂(segments)` stages have blocks straddling
/// worker segments, so each block parallelizes over aligned windows of its
/// low/high halves; every later stage is local to one of the independent
/// segments, which then run as whole serial sub-transforms in parallel.
fn dif_stages_parallel<F: PrimeField64>(values: &mut [F], tables: &[Vec<F>], threads: usize) {
    let n = values.len();
    let log_n = log2_strict(n);
    let log_segs = (threads.next_power_of_two().trailing_zeros() as usize).min(log_n - 1);
    let segs = 1usize << log_segs;

    let mut m = n / 2;
    for tw in &tables[..log_segs] {
        let chunk = m.div_ceil(threads).max(1);
        for block in (0..n).step_by(2 * m) {
            let (lo, hi) = values[block..block + 2 * m].split_at_mut(m);
            unizk_field::parallel_zip_mut(lo, hi, chunk, |off, a, b| {
                for j in 0..a.len() {
                    let x = a[j];
                    let y = b[j];
                    a[j] = x + y;
                    b[j] = (x - y) * tw[off + j];
                }
            });
        }
        m /= 2;
    }

    unizk_field::parallel_chunks_mut(values, n / segs, |_, seg| {
        dif_stages(seg, &tables[log_segs..]);
    });
}

/// Parallel DIT (mirror of [`dif_stages_parallel`]): independent segments
/// run first, then the straddling late stages parallelize within blocks.
fn dit_stages_parallel<F: PrimeField64>(values: &mut [F], tables: &[Vec<F>], threads: usize) {
    let n = values.len();
    let log_n = log2_strict(n);
    let log_segs = (threads.next_power_of_two().trailing_zeros() as usize).min(log_n - 1);
    let segs = 1usize << log_segs;

    unizk_field::parallel_chunks_mut(values, n / segs, |_, seg| {
        dit_stages(seg, &tables[log_segs..]);
    });

    let mut m = n >> log_segs;
    for tw in tables[..log_segs].iter().rev() {
        let chunk = m.div_ceil(threads).max(1);
        for block in (0..n).step_by(2 * m) {
            let (lo, hi) = values[block..block + 2 * m].split_at_mut(m);
            unizk_field::parallel_zip_mut(lo, hi, chunk, |off, a, b| {
                for j in 0..a.len() {
                    let x = a[j];
                    let y = b[j] * tw[off + j];
                    a[j] = x + y;
                    b[j] = x - y;
                }
            });
        }
        m *= 2;
    }
}

/// DIF butterfly network: natural input → bit-reversed output.
fn dif_in_place<F: PrimeField64>(values: &mut [F], inverse: bool) {
    let n = values.len();
    if n <= 1 {
        return;
    }
    count_transform(n);
    let tables = twiddle::stage_tables::<F>(n, inverse);
    let threads = unizk_field::current_parallelism();
    if wants_stage_parallel(n, threads) {
        dif_stages_parallel(values, &tables, threads);
    } else {
        dif_stages(values, &tables);
    }
}

/// DIT butterfly network: bit-reversed input → natural output.
fn dit_in_place<F: PrimeField64>(values: &mut [F], inverse: bool) {
    let n = values.len();
    if n <= 1 {
        return;
    }
    count_transform(n);
    let tables = twiddle::stage_tables::<F>(n, inverse);
    let threads = unizk_field::current_parallelism();
    if wants_stage_parallel(n, threads) {
        dit_stages_parallel(values, &tables, threads);
    } else {
        dit_stages(values, &tables);
    }
}

/// Serial `NTT^NN` kernel with no counter bump and no routing — the worker
/// primitive the decomposed paths build their small row/column transforms
/// out of (the enclosing decomposition accounts the whole transform once).
pub(crate) fn ntt_nn_uncounted<F: PrimeField64>(values: &mut [F]) {
    let n = values.len();
    if n <= 1 {
        return;
    }
    let tables = twiddle::stage_tables::<F>(n, false);
    dif_stages(values, &tables);
    reverse_index_bits(values);
}

fn scale_by_n_inv<F: PrimeField64>(values: &mut [F]) {
    let n_inv = F::from_u64(values.len() as u64).inverse();
    for v in values.iter_mut() {
        *v *= n_inv;
    }
}

/// Forward NTT, natural input, bit-reversed output (`NTT^NR`).
///
/// This is the transform FRI applies after zero-padding in the LDE step
/// (paper Fig. 1, step ②).
///
/// # Panics
///
/// Panics if the length is not a power of two or exceeds the field's
/// two-adic subgroup order `2^TWO_ADICITY` (`2^32` for Goldilocks, `2^24`
/// for KoalaBear).
pub fn ntt_nr<F: PrimeField64>(values: &mut [F]) {
    let n = values.len();
    if n > 1 && wants_decompose(n, unizk_field::current_parallelism()) {
        crate::decompose::parallel_decomposed_ntt_nn(values, &balanced_dims(n));
        reverse_index_bits(values);
        return;
    }
    dif_in_place(values, false);
}

/// Forward NTT, bit-reversed input, natural output (`NTT^RN`).
pub fn ntt_rn<F: PrimeField64>(values: &mut [F]) {
    dit_in_place(values, false);
}

/// Forward NTT, natural input and output (`NTT^NN`).
pub fn ntt_nn<F: PrimeField64>(values: &mut [F]) {
    let n = values.len();
    if n > 1 && wants_decompose(n, unizk_field::current_parallelism()) {
        crate::decompose::parallel_decomposed_ntt_nn(values, &balanced_dims(n));
        return;
    }
    dif_in_place(values, false);
    reverse_index_bits(values);
}

/// The balanced two-dimensional split `n = n1 · n2` with `n1 ≤ n2`, the
/// shape that maximizes both the column-round work grain and the row sizes
/// when the decomposed route is taken for parallelism (rather than to model
/// a fixed hardware pipeline width).
fn balanced_dims(n: usize) -> [usize; 2] {
    let log_n = log2_strict(n);
    let log_n1 = log_n / 2;
    [1 << log_n1, 1 << (log_n - log_n1)]
}

/// Inverse NTT, natural input and output (`iNTT^NN`).
///
/// This is the transform FRI applies first to move polynomials from value
/// to coefficient representation (paper Fig. 1, step ①).
pub fn intt_nn<F: PrimeField64>(values: &mut [F]) {
    dif_in_place(values, true);
    reverse_index_bits(values);
    scale_by_n_inv(values);
}

/// Inverse NTT, bit-reversed input, natural output (`iNTT^RN`).
pub fn intt_rn<F: PrimeField64>(values: &mut [F]) {
    dit_in_place(values, true);
    scale_by_n_inv(values);
}

/// Coset forward NTT: evaluates the polynomial on the coset `shift·H`,
/// natural order in and out.
///
/// Implemented as the paper describes: element-wise pre-multiplication by
/// `shift^i` (mapped to the idle PE of the first DIT round in hardware)
/// followed by a standard NTT.
pub fn coset_ntt_nn<F: PrimeField64>(values: &mut [F], shift: F) {
    apply_coset_powers(values, shift);
    ntt_nn(values);
}

/// Coset forward NTT with bit-reversed output (`coset-NTT^NR`).
pub fn coset_ntt_nr<F: PrimeField64>(values: &mut [F], shift: F) {
    apply_coset_powers(values, shift);
    ntt_nr(values);
}

/// Coset inverse NTT: recovers coefficients from evaluations on `shift·H`.
///
/// The trailing `N^{-1}·shift^{-i}` multiplications are the ones the paper
/// folds into the reserved inter-dimension twiddle PEs (§5.1).
pub fn coset_intt_nn<F: PrimeField64>(values: &mut [F], shift: F) {
    intt_nn(values);
    apply_coset_powers(values, shift.inverse());
}

fn apply_coset_powers<F: PrimeField64>(values: &mut [F], shift: F) {
    let n = values.len();
    if n <= 1 {
        return;
    }
    let powers = twiddle::coset_powers::<F>(n, shift);
    let threads = unizk_field::current_parallelism();
    if wants_stage_parallel(n, threads) {
        let chunk = n.div_ceil(threads).max(1);
        unizk_field::parallel_chunks_mut(values, chunk, |off, seg| {
            for (j, v) in seg.iter_mut().enumerate() {
                *v *= powers[off + j];
            }
        });
    } else {
        for (v, &p) in values.iter_mut().zip(powers.iter()) {
            *v *= p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{naive_coset_dft, naive_dft};
    use unizk_field::{bit_reverse, Goldilocks};
    use unizk_testkit::rng::TestRng as StdRng;

    fn random_vec(rng: &mut StdRng, n: usize) -> Vec<Goldilocks> {
        (0..n).map(|_| Goldilocks::random(rng)).collect()
    }

    #[test]
    fn ntt_nn_matches_naive_dft() {
        let mut rng = StdRng::seed_from_u64(100);
        for log_n in 0..9 {
            let n = 1 << log_n;
            let coeffs = random_vec(&mut rng, n);
            let mut fast = coeffs.clone();
            ntt_nn(&mut fast);
            assert_eq!(fast, naive_dft(&coeffs), "n={n}");
        }
    }

    #[test]
    fn ntt_nr_is_bit_reversed_nn() {
        let mut rng = StdRng::seed_from_u64(101);
        let n = 64;
        let coeffs = random_vec(&mut rng, n);
        let mut nn = coeffs.clone();
        ntt_nn(&mut nn);
        let mut nr = coeffs;
        ntt_nr(&mut nr);
        for i in 0..n {
            assert_eq!(nr[i], nn[bit_reverse(i, 6)]);
        }
    }

    #[test]
    fn ntt_rn_consumes_bit_reversed_input() {
        let mut rng = StdRng::seed_from_u64(102);
        let n = 32;
        let coeffs = random_vec(&mut rng, n);
        let mut rev = coeffs.clone();
        unizk_field::reverse_index_bits(&mut rev);
        ntt_rn(&mut rev);
        assert_eq!(rev, naive_dft(&coeffs));
    }

    #[test]
    fn intt_nn_inverts_ntt_nn() {
        let mut rng = StdRng::seed_from_u64(103);
        for log_n in 0..10 {
            let n = 1 << log_n;
            let coeffs = random_vec(&mut rng, n);
            let mut v = coeffs.clone();
            ntt_nn(&mut v);
            intt_nn(&mut v);
            assert_eq!(v, coeffs, "n={n}");
        }
    }

    #[test]
    fn intt_rn_inverts_ntt_nr() {
        // The FRI pipeline pairing: NTT^NR then iNTT^RN round-trips without
        // any explicit reordering.
        let mut rng = StdRng::seed_from_u64(104);
        let n = 128;
        let coeffs = random_vec(&mut rng, n);
        let mut v = coeffs.clone();
        ntt_nr(&mut v);
        intt_rn(&mut v);
        assert_eq!(v, coeffs);
    }

    #[test]
    fn coset_ntt_matches_naive_coset_dft() {
        use unizk_field::PrimeField64;
        let mut rng = StdRng::seed_from_u64(105);
        let n = 64;
        let shift = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let coeffs = random_vec(&mut rng, n);
        let mut v = coeffs.clone();
        coset_ntt_nn(&mut v, shift);
        assert_eq!(v, naive_coset_dft(&coeffs, shift));
    }

    #[test]
    fn coset_intt_inverts_coset_ntt() {
        use unizk_field::PrimeField64;
        let mut rng = StdRng::seed_from_u64(106);
        let n = 256;
        let shift = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let coeffs = random_vec(&mut rng, n);
        let mut v = coeffs.clone();
        coset_ntt_nn(&mut v, shift);
        coset_intt_nn(&mut v, shift);
        assert_eq!(v, coeffs);
    }

    #[test]
    fn ntt_of_delta_is_all_ones() {
        use unizk_field::Field;
        let n = 16;
        let mut v = vec![Goldilocks::ZERO; n];
        v[0] = Goldilocks::ONE;
        ntt_nn(&mut v);
        assert!(v.iter().all(|&x| x == Goldilocks::ONE));
    }

    #[test]
    fn ntt_of_constant_is_scaled_delta() {
        use unizk_field::Field;
        let n = 16;
        let c = Goldilocks::from_u64(5);
        let mut v = vec![c; n];
        intt_nn(&mut v);
        assert_eq!(v[0], c);
        assert!(v[1..].iter().all(|x| x.is_zero()));
    }

    #[test]
    fn size_one_and_two() {
        use unizk_field::Field;
        let mut one = vec![Goldilocks::from_u64(9)];
        ntt_nn(&mut one);
        assert_eq!(one[0].as_u64(), 9);

        let mut two = vec![Goldilocks::from_u64(3), Goldilocks::from_u64(4)];
        ntt_nn(&mut two);
        assert_eq!(two[0].as_u64(), 7);
        // ω_2 = -1, so second eval is 3 - 4 = -1.
        assert_eq!(two[1], -Goldilocks::ONE);
    }

    #[test]
    fn linearity() {
        let mut rng = StdRng::seed_from_u64(107);
        let n = 32;
        let a = random_vec(&mut rng, n);
        let b = random_vec(&mut rng, n);
        let mut sum: Vec<Goldilocks> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        ntt_nn(&mut sum);
        let mut fa = a;
        ntt_nn(&mut fa);
        let mut fb = b;
        ntt_nn(&mut fb);
        let expect: Vec<Goldilocks> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_eq!(sum, expect);
    }

    #[test]
    fn convolution_theorem() {
        // Pointwise product in value domain == cyclic convolution of coeffs.
        let mut rng = StdRng::seed_from_u64(108);
        let n = 16;
        let a = random_vec(&mut rng, n);
        let b = random_vec(&mut rng, n);
        let mut fa = a.clone();
        ntt_nn(&mut fa);
        let mut fb = b.clone();
        ntt_nn(&mut fb);
        let mut prod: Vec<Goldilocks> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
        intt_nn(&mut prod);
        // Reference cyclic convolution.
        use unizk_field::Field;
        for k in 0..n {
            let mut acc = Goldilocks::ZERO;
            for i in 0..n {
                acc += a[i] * b[(k + n - i) % n];
            }
            assert_eq!(prod[k], acc, "k={k}");
        }
    }

    // -- Parallel stage kernels, exercised directly with explicit worker
    // counts so the tests neither depend on nor mutate the process-global
    // parallelism override.

    #[test]
    fn dif_stage_split_matches_serial() {
        let mut rng = StdRng::seed_from_u64(109);
        for log_n in [2usize, 5, 8, 11] {
            let n = 1 << log_n;
            let tables = twiddle::stage_tables::<Goldilocks>(n, false);
            for threads in [2usize, 3, 4, 7] {
                let input = random_vec(&mut rng, n);
                let mut serial = input.clone();
                dif_stages(&mut serial, &tables);
                let mut par = input;
                dif_stages_parallel(&mut par, &tables, threads);
                assert_eq!(par, serial, "log_n={log_n} threads={threads}");
            }
        }
    }

    #[test]
    fn dit_stage_split_matches_serial() {
        let mut rng = StdRng::seed_from_u64(110);
        for log_n in [2usize, 5, 8, 11] {
            let n = 1 << log_n;
            for inverse in [false, true] {
                let tables = twiddle::stage_tables::<Goldilocks>(n, inverse);
                for threads in [2usize, 4, 5] {
                    let input = random_vec(&mut rng, n);
                    let mut serial = input.clone();
                    dit_stages(&mut serial, &tables);
                    let mut par = input;
                    dit_stages_parallel(&mut par, &tables, threads);
                    assert_eq!(par, serial, "log_n={log_n} threads={threads} inv={inverse}");
                }
            }
        }
    }

    #[test]
    fn segment_tail_tables_match_fresh_small_tables() {
        // The invariant the split rests on: a segment of length L = n/2^s
        // sees the same twiddles through &tables[s..] as a standalone
        // size-L transform builds for itself.
        let full = twiddle::stage_tables::<Goldilocks>(256, false);
        let small = twiddle::stage_tables::<Goldilocks>(32, false);
        assert_eq!(full[3..], small[..]);
    }

    #[test]
    fn uncounted_kernel_matches_public_entry() {
        let mut rng = StdRng::seed_from_u64(111);
        let input = random_vec(&mut rng, 128);
        let mut a = input.clone();
        ntt_nn(&mut a);
        let mut b = input;
        ntt_nn_uncounted(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn threshold_knobs_round_trip() {
        let stage = stage_parallel_threshold();
        let dec = decompose_parallel_threshold();
        set_stage_parallel_threshold(20);
        set_decompose_parallel_threshold(25);
        assert_eq!(stage_parallel_threshold(), 20);
        assert_eq!(decompose_parallel_threshold(), 25);
        set_stage_parallel_threshold(stage);
        set_decompose_parallel_threshold(dec);
    }
}
