//! In-place radix-2 NTT kernels (DIF and DIT dataflows) and their coset /
//! bit-reverse-order variants.
//!
//! The paper's hardware supports both DIT and DIF dataflows (§5.1); here DIF
//! produces bit-reversed output from natural input (`NTT^NR`) and DIT
//! consumes bit-reversed input producing natural output (`NTT^RN`), exactly
//! the combinations the FRI pipeline needs.

use unizk_field::{log2_strict, reverse_index_bits, PrimeField64};

/// Precomputed twiddle tables for a size-`n` transform.
///
/// The accelerator generates these on the fly with its twiddle factor
/// generator; in software we build the per-stage tables once per call. Table
/// layout: for stage with half-size `m`, twiddles `ω_{2m}^j` for `j < m`.
fn stage_twiddles<F: PrimeField64>(n: usize, inverse: bool) -> Vec<Vec<F>> {
    let log_n = log2_strict(n);
    let mut root = F::primitive_root_of_unity(log_n);
    if inverse {
        root = root.inverse();
    }
    // For each stage half-size m = n/2, n/4, ..., 1 the generator is
    // root^(n/(2m)).
    let mut tables = Vec::with_capacity(log_n);
    let mut m = n / 2;
    let mut w_m = root;
    while m >= 1 {
        let mut tw = Vec::with_capacity(m);
        let mut w = F::ONE;
        for _ in 0..m {
            tw.push(w);
            w *= w_m;
        }
        tables.push(tw);
        m /= 2;
        w_m = w_m.square();
    }
    tables
}

/// Records one transform in the trace layer: total count, element volume,
/// and butterfly volume (`n/2·log₂ n`, the unit Fig. 9's NTT speedups are
/// normalized over). One bump per transform, so the cost is negligible
/// even for the smallest sizes.
fn count_transform(n: usize) {
    use unizk_testkit::trace;
    trace::counter("ntt.transforms", 1);
    trace::counter("ntt.elements", n as u64);
    trace::counter("ntt.butterflies", (n as u64 / 2) * log2_strict(n) as u64);
}

/// DIF butterfly network: natural input → bit-reversed output.
fn dif_in_place<F: PrimeField64>(values: &mut [F], inverse: bool) {
    let n = values.len();
    if n <= 1 {
        return;
    }
    count_transform(n);
    let tables = stage_twiddles::<F>(n, inverse);
    let mut m = n / 2;
    let mut stage = 0;
    while m >= 1 {
        let tw = &tables[stage];
        for block in (0..n).step_by(2 * m) {
            for j in 0..m {
                let a = values[block + j];
                let b = values[block + j + m];
                values[block + j] = a + b;
                values[block + j + m] = (a - b) * tw[j];
            }
        }
        m /= 2;
        stage += 1;
    }
}

/// DIT butterfly network: bit-reversed input → natural output.
fn dit_in_place<F: PrimeField64>(values: &mut [F], inverse: bool) {
    let n = values.len();
    if n <= 1 {
        return;
    }
    count_transform(n);
    let tables = stage_twiddles::<F>(n, inverse);
    let log_n = log2_strict(n);
    let mut m = 1;
    let mut stage = log_n;
    while m < n {
        stage -= 1;
        let tw = &tables[stage];
        for block in (0..n).step_by(2 * m) {
            for j in 0..m {
                let a = values[block + j];
                let b = values[block + j + m] * tw[j];
                values[block + j] = a + b;
                values[block + j + m] = a - b;
            }
        }
        m *= 2;
    }
}

fn scale_by_n_inv<F: PrimeField64>(values: &mut [F]) {
    let n_inv = F::from_u64(values.len() as u64).inverse();
    for v in values.iter_mut() {
        *v *= n_inv;
    }
}

/// Forward NTT, natural input, bit-reversed output (`NTT^NR`).
///
/// This is the transform FRI applies after zero-padding in the LDE step
/// (paper Fig. 1, step ②).
///
/// # Panics
///
/// Panics if the length is not a power of two or exceeds `2^32`.
pub fn ntt_nr<F: PrimeField64>(values: &mut [F]) {
    dif_in_place(values, false);
}

/// Forward NTT, bit-reversed input, natural output (`NTT^RN`).
pub fn ntt_rn<F: PrimeField64>(values: &mut [F]) {
    dit_in_place(values, false);
}

/// Forward NTT, natural input and output (`NTT^NN`).
pub fn ntt_nn<F: PrimeField64>(values: &mut [F]) {
    dif_in_place(values, false);
    reverse_index_bits(values);
}

/// Inverse NTT, natural input and output (`iNTT^NN`).
///
/// This is the transform FRI applies first to move polynomials from value
/// to coefficient representation (paper Fig. 1, step ①).
pub fn intt_nn<F: PrimeField64>(values: &mut [F]) {
    dif_in_place(values, true);
    reverse_index_bits(values);
    scale_by_n_inv(values);
}

/// Inverse NTT, bit-reversed input, natural output (`iNTT^RN`).
pub fn intt_rn<F: PrimeField64>(values: &mut [F]) {
    dit_in_place(values, true);
    scale_by_n_inv(values);
}

/// Coset forward NTT: evaluates the polynomial on the coset `shift·H`,
/// natural order in and out.
///
/// Implemented as the paper describes: element-wise pre-multiplication by
/// `shift^i` (mapped to the idle PE of the first DIT round in hardware)
/// followed by a standard NTT.
pub fn coset_ntt_nn<F: PrimeField64>(values: &mut [F], shift: F) {
    apply_coset_powers(values, shift);
    ntt_nn(values);
}

/// Coset forward NTT with bit-reversed output (`coset-NTT^NR`).
pub fn coset_ntt_nr<F: PrimeField64>(values: &mut [F], shift: F) {
    apply_coset_powers(values, shift);
    ntt_nr(values);
}

/// Coset inverse NTT: recovers coefficients from evaluations on `shift·H`.
///
/// The trailing `N^{-1}·shift^{-i}` multiplications are the ones the paper
/// folds into the reserved inter-dimension twiddle PEs (§5.1).
pub fn coset_intt_nn<F: PrimeField64>(values: &mut [F], shift: F) {
    intt_nn(values);
    apply_coset_powers(values, shift.inverse());
}

fn apply_coset_powers<F: PrimeField64>(values: &mut [F], shift: F) {
    let mut power = F::ONE;
    for v in values.iter_mut() {
        *v *= power;
        power *= shift;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{naive_coset_dft, naive_dft};
    use unizk_testkit::rng::TestRng as StdRng;
    use unizk_field::{bit_reverse, Goldilocks};

    fn random_vec(rng: &mut StdRng, n: usize) -> Vec<Goldilocks> {
        (0..n).map(|_| Goldilocks::random(rng)).collect()
    }

    #[test]
    fn ntt_nn_matches_naive_dft() {
        let mut rng = StdRng::seed_from_u64(100);
        for log_n in 0..9 {
            let n = 1 << log_n;
            let coeffs = random_vec(&mut rng, n);
            let mut fast = coeffs.clone();
            ntt_nn(&mut fast);
            assert_eq!(fast, naive_dft(&coeffs), "n={n}");
        }
    }

    #[test]
    fn ntt_nr_is_bit_reversed_nn() {
        let mut rng = StdRng::seed_from_u64(101);
        let n = 64;
        let coeffs = random_vec(&mut rng, n);
        let mut nn = coeffs.clone();
        ntt_nn(&mut nn);
        let mut nr = coeffs;
        ntt_nr(&mut nr);
        for i in 0..n {
            assert_eq!(nr[i], nn[bit_reverse(i, 6)]);
        }
    }

    #[test]
    fn ntt_rn_consumes_bit_reversed_input() {
        let mut rng = StdRng::seed_from_u64(102);
        let n = 32;
        let coeffs = random_vec(&mut rng, n);
        let mut rev = coeffs.clone();
        unizk_field::reverse_index_bits(&mut rev);
        ntt_rn(&mut rev);
        assert_eq!(rev, naive_dft(&coeffs));
    }

    #[test]
    fn intt_nn_inverts_ntt_nn() {
        let mut rng = StdRng::seed_from_u64(103);
        for log_n in 0..10 {
            let n = 1 << log_n;
            let coeffs = random_vec(&mut rng, n);
            let mut v = coeffs.clone();
            ntt_nn(&mut v);
            intt_nn(&mut v);
            assert_eq!(v, coeffs, "n={n}");
        }
    }

    #[test]
    fn intt_rn_inverts_ntt_nr() {
        // The FRI pipeline pairing: NTT^NR then iNTT^RN round-trips without
        // any explicit reordering.
        let mut rng = StdRng::seed_from_u64(104);
        let n = 128;
        let coeffs = random_vec(&mut rng, n);
        let mut v = coeffs.clone();
        ntt_nr(&mut v);
        intt_rn(&mut v);
        assert_eq!(v, coeffs);
    }

    #[test]
    fn coset_ntt_matches_naive_coset_dft() {
        use unizk_field::PrimeField64;
        let mut rng = StdRng::seed_from_u64(105);
        let n = 64;
        let shift = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let coeffs = random_vec(&mut rng, n);
        let mut v = coeffs.clone();
        coset_ntt_nn(&mut v, shift);
        assert_eq!(v, naive_coset_dft(&coeffs, shift));
    }

    #[test]
    fn coset_intt_inverts_coset_ntt() {
        use unizk_field::PrimeField64;
        let mut rng = StdRng::seed_from_u64(106);
        let n = 256;
        let shift = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let coeffs = random_vec(&mut rng, n);
        let mut v = coeffs.clone();
        coset_ntt_nn(&mut v, shift);
        coset_intt_nn(&mut v, shift);
        assert_eq!(v, coeffs);
    }

    #[test]
    fn ntt_of_delta_is_all_ones() {
        use unizk_field::Field;
        let n = 16;
        let mut v = vec![Goldilocks::ZERO; n];
        v[0] = Goldilocks::ONE;
        ntt_nn(&mut v);
        assert!(v.iter().all(|&x| x == Goldilocks::ONE));
    }

    #[test]
    fn ntt_of_constant_is_scaled_delta() {
        use unizk_field::Field;
        let n = 16;
        let c = Goldilocks::from_u64(5);
        let mut v = vec![c; n];
        intt_nn(&mut v);
        assert_eq!(v[0], c);
        assert!(v[1..].iter().all(|x| x.is_zero()));
    }

    #[test]
    fn size_one_and_two() {
        use unizk_field::Field;
        let mut one = vec![Goldilocks::from_u64(9)];
        ntt_nn(&mut one);
        assert_eq!(one[0].as_u64(), 9);

        let mut two = vec![Goldilocks::from_u64(3), Goldilocks::from_u64(4)];
        ntt_nn(&mut two);
        assert_eq!(two[0].as_u64(), 7);
        // ω_2 = -1, so second eval is 3 - 4 = -1.
        assert_eq!(two[1], -Goldilocks::ONE);
    }

    #[test]
    fn linearity() {
        let mut rng = StdRng::seed_from_u64(107);
        let n = 32;
        let a = random_vec(&mut rng, n);
        let b = random_vec(&mut rng, n);
        let mut sum: Vec<Goldilocks> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        ntt_nn(&mut sum);
        let mut fa = a;
        ntt_nn(&mut fa);
        let mut fb = b;
        ntt_nn(&mut fb);
        let expect: Vec<Goldilocks> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_eq!(sum, expect);
    }

    #[test]
    fn convolution_theorem() {
        // Pointwise product in value domain == cyclic convolution of coeffs.
        let mut rng = StdRng::seed_from_u64(108);
        let n = 16;
        let a = random_vec(&mut rng, n);
        let b = random_vec(&mut rng, n);
        let mut fa = a.clone();
        ntt_nn(&mut fa);
        let mut fb = b.clone();
        ntt_nn(&mut fb);
        let mut prod: Vec<Goldilocks> = fa.iter().zip(&fb).map(|(&x, &y)| x * y).collect();
        intt_nn(&mut prod);
        // Reference cyclic convolution.
        use unizk_field::Field;
        for k in 0..n {
            let mut acc = Goldilocks::ZERO;
            for i in 0..n {
                acc += a[i] * b[(k + n - i) % n];
            }
            assert_eq!(prod[k], acc, "k={k}");
        }
    }
}
