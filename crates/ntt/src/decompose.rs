//! Multi-dimensional NTT decomposition (SAM-style, paper §5.1 and Fig. 4).
//!
//! The accelerator cannot instantiate a variable-size NTT datapath, so a
//! size-`N` transform is decomposed into `k` rounds of fixed size-`n` NTTs
//! with element-wise inter-dimension twiddle multiplications between rounds
//! (`k-1` of them) and data transposes handled by the transpose buffer.
//!
//! [`decomposed_ntt_nn`] is the software golden model of that dataflow: it
//! produces bit-identical results to the monolithic [`crate::ntt_nn`] and is
//! used both to test the mapping logic and to derive the cost model in
//! `unizk-core`.

use unizk_field::{log2_strict, reverse_index_bits, PrimeField64};

use crate::radix2::{count_transform, ntt_nn_uncounted};
use crate::transpose::transpose;

/// Computes a natural-order NTT via the multi-dimensional decomposition
/// `len = dims[0] · dims[1] · …`.
///
/// Matches [`crate::ntt_nn`] exactly; the intermediate steps mirror the
/// hardware dataflow (column NTTs → twiddles → recursive row NTTs →
/// dimension gather).
///
/// The `ntt.*` trace counters account the whole transform **once** (as one
/// size-`N` transform), not per constituent small NTT — the decomposition
/// is an execution strategy for a single logical transform, and butterfly
/// volume is conserved by it ([`NttDecomposition::total_butterflies`]), so
/// the counters stay identical to the monolithic path.
///
/// # Panics
///
/// Panics if the product of `dims` does not equal `values.len()`, or any
/// dimension is not a power of two.
pub fn decomposed_ntt_nn<F: PrimeField64>(values: &mut [F], dims: &[usize]) {
    let n: usize = dims.iter().product();
    assert_eq!(n, values.len(), "dims product must equal input length");
    if n <= 1 {
        return;
    }
    count_transform(n);
    decompose_recursive(values, dims);
}

/// Like [`decomposed_ntt_nn`] but leaves the output in bit-reversed order,
/// matching the `NTT^NR` variant FRI needs. The paper notes (§5.1) that the
/// decomposition makes the bit-reversed writeback naturally contiguous.
pub fn decomposed_ntt_nr<F: PrimeField64>(values: &mut [F], dims: &[usize]) {
    decomposed_ntt_nn(values, dims);
    reverse_index_bits(values);
}

fn decompose_recursive<F: PrimeField64>(values: &mut [F], dims: &[usize]) {
    if dims.len() <= 1 {
        ntt_nn_uncounted(values);
        return;
    }
    let n = values.len();
    let n1 = dims[0];
    let n2 = n / n1;
    let log_n = log2_strict(n);
    let omega = F::primitive_root_of_unity(log_n);

    // Round 1: size-n1 NTTs along the strided first dimension.
    let mut column = vec![F::ZERO; n1];
    for c in 0..n2 {
        for (r, col) in column.iter_mut().enumerate() {
            *col = values[r * n2 + c];
        }
        ntt_nn_uncounted(&mut column);
        for (r, col) in column.iter().enumerate() {
            values[r * n2 + c] = *col;
        }
    }

    // Inter-dimension twiddles: values[k1*n2 + c] *= ω_N^{k1·c}.
    // (In hardware these come from the on-the-fly twiddle factor generator.)
    for k1 in 0..n1 {
        let step = omega.exp_u64(k1 as u64);
        let mut tw = F::ONE;
        for c in 0..n2 {
            values[k1 * n2 + c] *= tw;
            tw *= step;
        }
    }

    // Remaining rounds: recurse on each contiguous row.
    for k1 in 0..n1 {
        decompose_recursive(&mut values[k1 * n2..(k1 + 1) * n2], &dims[1..]);
    }

    // Dimension gather: out[k1 + n1·k2] = values[k1·n2 + k2].
    let snapshot = values.to_vec();
    for k1 in 0..n1 {
        for k2 in 0..n2 {
            values[k1 + n1 * k2] = snapshot[k1 * n2 + k2];
        }
    }
}

/// The parallel execution of [`decomposed_ntt_nn`]: identical arithmetic
/// and identical (count-once) trace accounting, but each round distributes
/// whole rows or columns across the configured worker threads. This is the
/// route [`crate::ntt_nn`] / [`crate::ntt_nr`] take for transforms at or
/// above [`crate::decompose_parallel_threshold`].
///
/// The work items are the same size-`n_i` sub-transforms the serial model
/// runs, in the same per-element operation order, so the output is
/// bit-identical for every thread count (the fallback inside the `par`
/// helpers makes `set_parallelism(1)` literally the serial loop).
///
/// # Panics
///
/// Panics if the product of `dims` does not equal `values.len()`, or any
/// dimension is not a power of two.
pub fn parallel_decomposed_ntt_nn<F: PrimeField64>(values: &mut [F], dims: &[usize]) {
    let n: usize = dims.iter().product();
    assert_eq!(n, values.len(), "dims product must equal input length");
    if n <= 1 {
        return;
    }
    count_transform(n);
    parallel_recursive(values, dims);
}

fn parallel_recursive<F: PrimeField64>(values: &mut [F], dims: &[usize]) {
    if dims.len() <= 1 {
        ntt_nn_uncounted(values);
        return;
    }
    let n = values.len();
    let n1 = dims[0];
    let n2 = n / n1;
    let log_n = log2_strict(n);
    let omega = F::primitive_root_of_unity(log_n);

    // Round 1: size-n1 NTTs along the strided first dimension. Transposing
    // to n2×n1 makes each column contiguous (the software stand-in for the
    // hardware transpose buffer), so one column is one work item.
    let cols = transpose(values, n1, n2);
    values.copy_from_slice(&cols);
    unizk_field::parallel_chunks_mut(values, n1, |_, column| ntt_nn_uncounted(column));
    let rows = transpose(values, n2, n1);
    values.copy_from_slice(&rows);

    // Inter-dimension twiddles: values[k1·n2 + c] *= ω_N^{k1·c}, one row
    // per work item (each row is an independent geometric series).
    unizk_field::parallel_chunks_mut(values, n2, |offset, row| {
        let k1 = offset / n2;
        let step = omega.exp_u64(k1 as u64);
        let mut tw = F::ONE;
        for v in row.iter_mut() {
            *v *= tw;
            tw *= step;
        }
    });

    // Remaining rounds: each contiguous row is independent. At the last
    // level the rows themselves are the parallel work items; deeper plans
    // recurse so their inner rounds distribute the same way.
    if dims.len() == 2 {
        unizk_field::parallel_chunks_mut(values, n2, |_, row| ntt_nn_uncounted(row));
    } else {
        for k1 in 0..n1 {
            parallel_recursive(&mut values[k1 * n2..(k1 + 1) * n2], &dims[1..]);
        }
    }

    // Dimension gather: out[k1 + n1·k2] = values[k1·n2 + k2] — exactly the
    // transpose of the n1×n2 row-major view.
    let gathered = transpose(values, n1, n2);
    values.copy_from_slice(&gathered);
}

/// A plan for decomposing a size-`N` NTT onto hardware pipelines of fixed
/// size `n = 2^log_small`, plus the derived operation counts the simulator's
/// cost model consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NttDecomposition {
    /// `log2` of the total transform size.
    pub log_n: usize,
    /// The decomposed dimensions, e.g. `[32, 32, 32, 4]` for `N = 2^17` on
    /// size-32 pipelines.
    pub dims: Vec<usize>,
}

impl NttDecomposition {
    /// Plans a size-`2^log_n` NTT on pipelines of size `2^log_small`.
    ///
    /// All dimensions equal `2^log_small` except possibly the last, which
    /// absorbs the remainder (as SAM does).
    ///
    /// # Panics
    ///
    /// Panics if `log_small` is zero.
    pub fn plan(log_n: usize, log_small: usize) -> Self {
        assert!(log_small > 0, "pipeline size must be at least 2");
        let mut dims = Vec::new();
        let mut remaining = log_n;
        while remaining > log_small {
            dims.push(1 << log_small);
            remaining -= log_small;
        }
        dims.push(1 << remaining);
        Self { log_n, dims }
    }

    /// Total transform size `N`.
    pub fn size(&self) -> usize {
        1 << self.log_n
    }

    /// Number of decomposed dimensions `k` (rounds of small NTTs).
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Total count of small NTT instances across all rounds: each round
    /// processes all `N` elements in groups of its dimension size.
    pub fn total_small_ntts(&self) -> usize {
        self.dims.iter().map(|&d| self.size() / d).sum()
    }

    /// Element-wise inter-dimension twiddle multiplications: `(k-1)·N`
    /// (twiddles are applied between rounds only, paper §5.1).
    pub fn twiddle_muls(&self) -> usize {
        (self.num_dims() - 1) * self.size()
    }

    /// Butterfly operations summed over every small NTT: `N/2·log2(N)`
    /// regardless of the split (the decomposition conserves work).
    pub fn total_butterflies(&self) -> usize {
        self.dims
            .iter()
            .map(|&d| (self.size() / d) * (d / 2) * log2_strict(d))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix2::ntt_nn;
    use unizk_testkit::rng::TestRng as StdRng;
    use unizk_field::{Field, Goldilocks};

    fn random_vec(rng: &mut StdRng, n: usize) -> Vec<Goldilocks> {
        (0..n).map(|_| Goldilocks::random(rng)).collect()
    }

    #[test]
    fn two_dim_matches_monolithic() {
        let mut rng = StdRng::seed_from_u64(300);
        let v = random_vec(&mut rng, 64);
        let mut mono = v.clone();
        ntt_nn(&mut mono);
        let mut dec = v;
        decomposed_ntt_nn(&mut dec, &[8, 8]);
        assert_eq!(dec, mono);
    }

    #[test]
    fn three_dim_matches_monolithic() {
        // The paper's Fig. 4 example: size-512 as 8×8×8.
        let mut rng = StdRng::seed_from_u64(301);
        let v = random_vec(&mut rng, 512);
        let mut mono = v.clone();
        ntt_nn(&mut mono);
        let mut dec = v;
        decomposed_ntt_nn(&mut dec, &[8, 8, 8]);
        assert_eq!(dec, mono);
    }

    #[test]
    fn uneven_dims_match() {
        let mut rng = StdRng::seed_from_u64(302);
        let v = random_vec(&mut rng, 256);
        let mut mono = v.clone();
        ntt_nn(&mut mono);
        for dims in [vec![32, 8], vec![8, 32], vec![4, 4, 16], vec![2, 128]] {
            let mut dec = v.clone();
            decomposed_ntt_nn(&mut dec, &dims);
            assert_eq!(dec, mono, "dims={dims:?}");
        }
    }

    #[test]
    fn nr_variant_matches() {
        let mut rng = StdRng::seed_from_u64(303);
        let v = random_vec(&mut rng, 128);
        let mut mono = v.clone();
        crate::radix2::ntt_nr(&mut mono);
        let mut dec = v;
        decomposed_ntt_nr(&mut dec, &[16, 8]);
        assert_eq!(dec, mono);
    }

    #[test]
    #[should_panic(expected = "dims product")]
    fn wrong_dims_rejected() {
        let mut v = vec![Goldilocks::from_u64(1); 16];
        decomposed_ntt_nn(&mut v, &[8, 4]);
    }

    #[test]
    fn parallel_path_matches_monolithic() {
        let mut rng = StdRng::seed_from_u64(305);
        for (n, dims) in [
            (64usize, vec![8usize, 8]),
            (256, vec![16, 16]),
            (256, vec![4, 64]),
            (512, vec![8, 8, 8]),
            (1024, vec![32, 32]),
        ] {
            let v = random_vec(&mut rng, n);
            let mut mono = v.clone();
            ntt_nn(&mut mono);
            let mut par = v;
            parallel_decomposed_ntt_nn(&mut par, &dims);
            assert_eq!(par, mono, "n={n} dims={dims:?}");
        }
    }

    #[test]
    fn parallel_path_matches_serial_model() {
        let mut rng = StdRng::seed_from_u64(306);
        let v = random_vec(&mut rng, 128);
        let mut serial = v.clone();
        decomposed_ntt_nn(&mut serial, &[16, 8]);
        let mut par = v;
        parallel_decomposed_ntt_nn(&mut par, &[16, 8]);
        assert_eq!(par, serial);
    }

    #[test]
    #[should_panic(expected = "dims product")]
    fn parallel_wrong_dims_rejected() {
        let mut v = vec![Goldilocks::from_u64(1); 16];
        parallel_decomposed_ntt_nn(&mut v, &[4, 8]);
    }

    #[test]
    fn plan_splits_as_expected() {
        // Paper: a row of PEs is split into two size-2^5 pipelines.
        let plan = NttDecomposition::plan(17, 5);
        assert_eq!(plan.dims, vec![32, 32, 32, 4]);
        assert_eq!(plan.size(), 1 << 17);
        assert_eq!(plan.num_dims(), 4);

        let exact = NttDecomposition::plan(15, 5);
        assert_eq!(exact.dims, vec![32, 32, 32]);
    }

    #[test]
    fn plan_conserves_butterflies() {
        for log_n in [5, 9, 13, 20] {
            let plan = NttDecomposition::plan(log_n, 5);
            let n = 1usize << log_n;
            assert_eq!(plan.total_butterflies(), n / 2 * log_n, "log_n={log_n}");
        }
    }

    #[test]
    fn plan_twiddle_count() {
        let plan = NttDecomposition::plan(15, 5); // 3 dims
        assert_eq!(plan.twiddle_muls(), 2 * (1 << 15));
    }

    #[test]
    fn plan_small_sizes() {
        let plan = NttDecomposition::plan(3, 5); // smaller than pipeline
        assert_eq!(plan.dims, vec![8]);
        assert_eq!(plan.twiddle_muls(), 0);
    }

    #[test]
    fn planned_dims_compute_correctly() {
        let mut rng = StdRng::seed_from_u64(304);
        let plan = NttDecomposition::plan(10, 5);
        let v = random_vec(&mut rng, 1 << 10);
        let mut mono = v.clone();
        ntt_nn(&mut mono);
        let mut dec = v;
        decomposed_ntt_nn(&mut dec, &plan.dims);
        assert_eq!(dec, mono);
    }
}
