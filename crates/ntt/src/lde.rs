//! Low-degree extension (LDE), step ② of the FRI flow (paper Fig. 1).
//!
//! Given a degree-`< N` polynomial, the LDE evaluates it on a coset of a
//! subgroup `k·N` elements long, where `k = 2^rate_bits` is the blowup
//! factor (at least 8 in Plonky2, 2 in Starky). The coset shift keeps the
//! evaluation domain disjoint from the original trace domain, which the
//! protocol needs to divide by the vanishing polynomial safely.

use unizk_field::{Field, PrimeField64};

use crate::radix2::{coset_ntt_nn, coset_ntt_nr, intt_nn};

/// Extends coefficients to evaluations on the coset `shift·H'` of size
/// `coeffs.len() << rate_bits`, natural order.
///
/// # Panics
///
/// Panics if `coeffs.len()` is not a power of two.
pub fn lde<F: PrimeField64>(coeffs: &[F], rate_bits: usize, shift: F) -> Vec<F> {
    let mut padded = zero_pad(coeffs, rate_bits);
    coset_ntt_nn(&mut padded, shift);
    padded
}

/// Extends coefficients to evaluations on the coset, **bit-reversed** order.
///
/// This is the exact `NTT^NR` layout that FRI commits to Merkle trees in
/// (paper Fig. 1 step ② + ③), so leaves of the same query index sit together.
///
/// # Panics
///
/// Panics if `coeffs.len()` is not a power of two.
pub fn lde_nr<F: PrimeField64>(coeffs: &[F], rate_bits: usize, shift: F) -> Vec<F> {
    let mut padded = zero_pad(coeffs, rate_bits);
    coset_ntt_nr(&mut padded, shift);
    padded
}

/// Extends *values on the subgroup H* (not coefficients): performs the
/// `iNTT^NN` first (step ① of the FRI flow), then the coset LDE.
///
/// # Panics
///
/// Panics if `values.len()` is not a power of two.
pub fn lde_of_values<F: PrimeField64>(values: &[F], rate_bits: usize, shift: F) -> Vec<F> {
    let mut coeffs = values.to_vec();
    intt_nn(&mut coeffs);
    lde(&coeffs, rate_bits, shift)
}

fn zero_pad<F: Field>(coeffs: &[F], rate_bits: usize) -> Vec<F> {
    let n = coeffs.len();
    let mut padded = Vec::with_capacity(n << rate_bits);
    padded.extend_from_slice(coeffs);
    padded.resize(n << rate_bits, F::ZERO);
    padded
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::TestRng as StdRng;
    use unizk_field::{bit_reverse, log2_strict, Goldilocks, Polynomial, PrimeField64};

    type F = Goldilocks;

    #[test]
    fn lde_agrees_with_direct_evaluation() {
        let mut rng = StdRng::seed_from_u64(200);
        let n = 16;
        let rate_bits = 3;
        let shift = F::MULTIPLICATIVE_GENERATOR;
        let coeffs: Vec<F> = (0..n).map(|_| F::random(&mut rng)).collect();
        let poly = Polynomial::from_coeffs(coeffs.clone());

        let ext = lde(&coeffs, rate_bits, shift);
        let big_n = n << rate_bits;
        let omega = F::primitive_root_of_unity(log2_strict(big_n));
        for (j, &v) in ext.iter().enumerate() {
            let x = shift * omega.exp_u64(j as u64);
            assert_eq!(v, poly.eval(x), "j={j}");
        }
    }

    #[test]
    fn lde_nr_is_bit_reversed_lde() {
        let mut rng = StdRng::seed_from_u64(201);
        let n = 8;
        let rate_bits = 3;
        let shift = F::MULTIPLICATIVE_GENERATOR;
        let coeffs: Vec<F> = (0..n).map(|_| F::random(&mut rng)).collect();
        let natural = lde(&coeffs, rate_bits, shift);
        let reversed = lde_nr(&coeffs, rate_bits, shift);
        let bits = log2_strict(n << rate_bits);
        for i in 0..natural.len() {
            assert_eq!(reversed[i], natural[bit_reverse(i, bits)]);
        }
    }

    #[test]
    fn lde_of_values_preserves_low_degree() {
        // LDE of trace values must agree with the interpolating polynomial.
        let mut rng = StdRng::seed_from_u64(202);
        let n = 8usize;
        let shift = F::MULTIPLICATIVE_GENERATOR;
        let coeffs: Vec<F> = (0..n).map(|_| F::random(&mut rng)).collect();
        let poly = Polynomial::from_coeffs(coeffs);
        // Values on H.
        let omega = F::primitive_root_of_unity(log2_strict(n));
        let values: Vec<F> = (0..n)
            .map(|j| poly.eval(omega.exp_u64(j as u64)))
            .collect();

        let ext = lde_of_values(&values, 1, shift);
        let big_omega = F::primitive_root_of_unity(log2_strict(2 * n));
        for (j, &v) in ext.iter().enumerate() {
            let x = shift * big_omega.exp_u64(j as u64);
            assert_eq!(v, poly.eval(x));
        }
    }

    #[test]
    fn blowup_factor_one_is_just_coset_eval() {
        let coeffs: Vec<F> = (1..=4u64).map(F::from_u64).collect();
        let ext = lde(&coeffs, 0, F::ONE);
        let mut direct = coeffs;
        crate::radix2::ntt_nn(&mut direct);
        assert_eq!(ext, direct);
    }
}
