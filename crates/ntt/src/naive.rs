//! Quadratic-time reference transforms used as golden models in tests.

use unizk_field::{log2_strict, PrimeField64};

/// Evaluates the polynomial with coefficients `coeffs` at all `N` powers of
/// the primitive root: `out[j] = Σ_i coeffs[i]·ω^{ij}`. `O(N^2)`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn naive_dft<F: PrimeField64>(coeffs: &[F]) -> Vec<F> {
    naive_coset_dft(coeffs, F::ONE)
}

/// Evaluates on the coset `shift·H`: `out[j] = Σ_i coeffs[i]·(shift·ω^j)^i`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn naive_coset_dft<F: PrimeField64>(coeffs: &[F], shift: F) -> Vec<F> {
    let n = coeffs.len();
    if n == 0 {
        return Vec::new();
    }
    let log_n = log2_strict(n);
    let omega = F::primitive_root_of_unity(log_n);
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        let x = shift * omega.exp_u64(j as u64);
        let mut acc = F::ZERO;
        let mut pow = F::ONE;
        for &c in coeffs {
            acc += c * pow;
            pow *= x;
        }
        out.push(acc);
    }
    out
}

/// Recovers coefficients from evaluations on the subgroup. `O(N^2)`.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn naive_idft<F: PrimeField64>(values: &[F]) -> Vec<F> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let log_n = log2_strict(n);
    let omega_inv = F::primitive_root_of_unity(log_n).inverse();
    let n_inv = F::from_u64(n as u64).inverse();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let x = omega_inv.exp_u64(i as u64);
        let mut acc = F::ZERO;
        let mut pow = F::ONE;
        for &v in values {
            acc += v * pow;
            pow *= x;
        }
        out.push(acc * n_inv);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::{Field, Goldilocks};

    #[test]
    fn naive_roundtrip() {
        let coeffs: Vec<Goldilocks> = (1..=8u64).map(Goldilocks::from_u64).collect();
        let values = naive_dft(&coeffs);
        assert_eq!(naive_idft(&values), coeffs);
    }

    #[test]
    fn empty_input() {
        assert!(naive_dft::<Goldilocks>(&[]).is_empty());
        assert!(naive_idft::<Goldilocks>(&[]).is_empty());
    }
}
