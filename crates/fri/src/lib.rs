//! FRI — the Fast Reed–Solomon IOP of Proximity — as the polynomial
//! commitment scheme of Plonky2 and Starky (paper Fig. 1, right).
//!
//! The flow matches the paper's three FRI steps:
//!
//! 1. **Commit** ([`PolynomialBatch`]): `iNTT^NN` to coefficients, low-degree
//!    extension with blowup `k` (8 for Plonky2, 2 for Starky), `NTT^NR` onto
//!    a multiplicative coset, then a Merkle tree whose leaf `i` concatenates
//!    the values of every polynomial at LDE point `i`.
//! 2. **Open** ([`prover::fri_prove`]): batch all committed polynomials and
//!    out-of-domain points into one low-degree claim, then run the FRI
//!    commit phase (arity-2 folds, one Merkle tree per round), a
//!    proof-of-work grind, and the query phase with authentication paths.
//! 3. **Verify** ([`verifier::fri_verify`]): replay the transcript, check
//!    the grind, and for each query check every Merkle opening and fold
//!    step down to the final polynomial.
//!
//! # Example
//!
//! ```
//! use unizk_field::{Ext2, Field, Goldilocks, Polynomial, PrimeField64};
//! use unizk_fri::{fri_prove, fri_verify, FriConfig, PolynomialBatch};
//! use unizk_hash::Challenger;
//!
//! let config = FriConfig::for_testing();
//! let polys: Vec<Polynomial<Goldilocks>> = (0..3u64)
//!     .map(|s| Polynomial::from_coeffs(
//!         (0..16).map(|i| Goldilocks::from_u64(s + i)).collect()))
//!     .collect();
//! let batch = PolynomialBatch::from_coeffs(polys, &config);
//!
//! let mut challenger = Challenger::new();
//! challenger.observe_digest(batch.root());
//! let zeta = Ext2::from(Goldilocks::from_u64(12345));
//! let proof = fri_prove(&[&batch], &[zeta], &mut challenger, &config);
//!
//! let mut v = Challenger::new();
//! v.observe_digest(batch.root());
//! fri_verify(&[batch.root()], &[batch.num_polys()], 16, &[zeta], &proof, &mut v, &config)
//!     .expect("honest proof verifies");
//! ```

#![forbid(unsafe_code)]

pub mod batch;
pub mod config;
pub mod proof;
pub mod prover;
pub mod serialization;
pub mod timing;
pub mod verifier;

pub use batch::{GenericPolynomialBatch, PolynomialBatch};
pub use config::FriConfig;
pub use proof::{FriProof, FriQueryRound};
pub use prover::{fri_prove, fri_prove_in, grind, pow_ok};
pub use serialization::{Reader, WireError, Writer};
pub use timing::{kernel_totals, kernel_totals_from, reset_kernel_timers, time_kernel, KernelClass};
pub use verifier::{fri_verify, FriError};
