//! The FRI prover: batch combination, commit phase (folding), grinding, and
//! query phase.
//!
//! Every function is generic over the sponge backend `B` (and hence the
//! base field `B::F` and its extension `<B::F as ProtocolField>::Ext`);
//! the Goldilocks/Poseidon aliases make existing call sites infer
//! `B = PoseidonSponge` with no changes.

use unizk_field::{
    batch_inverse, bit_reverse, log2_strict, parallel_first_block, ExtensionOf, Field, Goldilocks,
    Polynomial, PrimeField64, ProtocolField,
};
use unizk_hash::sponge::HashField;
use unizk_hash::workspace::Workspace;
use unizk_hash::{GenericChallenger, GenericMerkleTree, GenericSpeculativeChallenger, SpongeBackend};
use unizk_testkit::trace;

use crate::batch::{coset_shift, domain_point, GenericPolynomialBatch};
use crate::config::FriConfig;
use crate::proof::{FriFoldOpening, FriInitialOpening, FriProof, FriQueryRound};
use crate::timing::{time_kernel, KernelClass};

/// A fold-layer evaluation domain: a multiplicative coset `shift·H` of size
/// `size`, with values stored in bit-reversed order. Folding squares the
/// domain: `shift → shift²`, `size → size/2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct FoldDomain<F: PrimeField64 = Goldilocks> {
    pub size: usize,
    pub shift: F,
}

impl<F: PrimeField64> FoldDomain<F> {
    /// The initial LDE domain of size `lde_size`.
    pub fn initial(lde_size: usize) -> Self {
        Self {
            size: lde_size,
            shift: coset_shift::<F>(),
        }
    }

    /// The point stored at bit-reversed position `pos`.
    pub fn point(&self, pos: usize) -> F {
        let bits = log2_strict(self.size);
        let omega = F::primitive_root_of_unity(bits);
        self.shift * omega.exp_u64(bit_reverse(pos, bits) as u64)
    }

    /// The domain after one arity-2 fold.
    pub fn fold(&self) -> Self {
        Self {
            size: self.size / 2,
            shift: self.shift.square(),
        }
    }
}

/// Produces a FRI opening proof for `batches`, all opened at every point in
/// `points`.
///
/// The caller must already have observed the batch commitments into
/// `challenger` (as the enclosing protocol dictates); this function then
/// owns the rest of the transcript: opened values, fold commitments, final
/// polynomial, grinding, and query sampling.
///
/// # Panics
///
/// Panics if the batches have differing degrees or LDE sizes, or if
/// `points` is empty.
pub fn fri_prove<B: SpongeBackend>(
    batches: &[&GenericPolynomialBatch<B>],
    points: &[<B::F as ProtocolField>::Ext],
    challenger: &mut GenericChallenger<B>,
    config: &FriConfig,
) -> FriProof<B::F> {
    fri_prove_in(batches, points, challenger, config, None)
}

/// [`fri_prove`] with an optional [`Workspace`]: the combined witness, the
/// fold layers, and every fold tree's leaf table and digest levels are
/// drawn from the workspace pools and shelved back before returning. The
/// proof is bit-identical with and without a workspace — pooling only
/// changes where the backing allocations come from.
///
/// # Panics
///
/// Panics under the same conditions as [`fri_prove`].
pub fn fri_prove_in<B: SpongeBackend>(
    batches: &[&GenericPolynomialBatch<B>],
    points: &[<B::F as ProtocolField>::Ext],
    challenger: &mut GenericChallenger<B>,
    config: &FriConfig,
    ws: Option<&Workspace>,
) -> FriProof<B::F> {
    assert!(!batches.is_empty(), "need at least one batch");
    assert!(!points.is_empty(), "need at least one opening point");
    let degree = batches[0].degree();
    let lde_size = batches[0].lde_size();
    for b in batches {
        assert_eq!(b.degree(), degree, "all batches must share a degree");
        assert_eq!(b.lde_size(), lde_size, "all batches must share an LDE size");
    }

    // 1. Open every polynomial at every point; observing the claimed values
    //    binds them into the transcript.
    let _fri_span = trace::span("fri.prove");
    let openings: Vec<Vec<Vec<<B::F as ProtocolField>::Ext>>> = trace::with_span("fri.open", || {
        time_kernel(KernelClass::Polynomial, || {
            points
                .iter()
                .map(|&z| batches.iter().map(|b| b.eval_all_ext(z)).collect())
                .collect()
        })
    });
    time_kernel(KernelClass::OtherHash, || {
        for per_point in &openings {
            for per_batch in per_point {
                for &y in per_batch {
                    challenger.observe_ext(y);
                }
            }
        }
    });

    // 2. Combination challenges: α across polynomials, β across points.
    let alpha = challenger.challenge_ext();
    let beta = challenger.challenge_ext();

    // 3. Build the combined low-degree witness over the LDE domain:
    //    v0(x) = Σ_t β^t · (S(x) − Y_t) / (x − z_t),
    //    with S(x) = Σ_j α^j p_j(x) over the global polynomial index.
    let mut values = trace::with_span("fri.combine", || {
        time_kernel(KernelClass::Polynomial, || {
            combine_initial(batches, points, &openings, alpha, beta, lde_size, ws)
        })
    });

    // 4. Commit phase: arity-2 folds, one Merkle tree per round.
    let num_rounds = config.num_reduction_rounds(degree);
    trace::counter("fri.reduction_rounds", num_rounds as u64);
    let mut fold_trees: Vec<GenericMerkleTree<B>> = Vec::with_capacity(num_rounds);
    let mut commit_roots = Vec::with_capacity(num_rounds);
    let mut layers: Vec<Vec<<B::F as ProtocolField>::Ext>> = Vec::with_capacity(num_rounds);
    let mut domain = FoldDomain::<B::F>::initial(lde_size);
    {
        let _commit_span = trace::span("fri.commit_fold");
        for _ in 0..num_rounds {
            let tree = time_kernel(KernelClass::MerkleTree, || commit_fold_layer::<B>(&values, ws));
            challenger.observe_digest(tree.root());
            commit_roots.push(tree.root());
            fold_trees.push(tree);

            let fold_beta = challenger.challenge_ext();
            let folded = time_kernel(KernelClass::Polynomial, || {
                fold_layer_in(&values, domain, fold_beta, ws)
            });
            layers.push(std::mem::replace(&mut values, folded));
            domain = domain.fold();
        }
    }

    // 5. Final polynomial: interpolate the remaining layer and send the
    //    coefficients in the clear.
    let final_poly = trace::with_span("fri.final_poly", || {
        time_kernel(KernelClass::Polynomial, || {
            interpolate_final(&values, domain, config.final_poly_len)
        })
    });
    for &c in &final_poly {
        challenger.observe_ext(c);
    }

    // 6. Proof-of-work grind.
    let pow_witness = trace::with_span("fri.grind", || {
        time_kernel(KernelClass::OtherHash, || grind(challenger, config.proof_of_work_bits))
    });
    challenger.observe(pow_witness);
    let pow_response = challenger.challenge();
    debug_assert!(pow_ok(pow_response, config.proof_of_work_bits));

    // 7. Query phase: sampling indices hashes (Other Hash); assembling the
    //    openings is pure data movement (Layout Transform).
    let _query_span = trace::span("fri.query");
    trace::counter("fri.queries", config.num_queries as u64);
    let index_bits = log2_strict(lde_size);
    let mut queries = Vec::with_capacity(config.num_queries);
    for _ in 0..config.num_queries {
        let mut idx = time_kernel(KernelClass::OtherHash, || challenger.challenge_bits(index_bits));
        let round = time_kernel(KernelClass::LayoutTransform, || {
            let initial = batches
                .iter()
                .map(|b| FriInitialOpening {
                    leaf: b.leaf(idx).to_vec(),
                    proof: b.prove_leaf(idx),
                })
                .collect();
            let mut folds = Vec::with_capacity(num_rounds);
            for (round, tree) in fold_trees.iter().enumerate() {
                let pair_index = idx >> 1;
                let layer = &layers[round];
                folds.push(FriFoldOpening {
                    pair: [layer[pair_index * 2], layer[pair_index * 2 + 1]],
                    proof: tree.prove(pair_index),
                });
                idx = pair_index;
            }
            FriQueryRound { initial, folds }
        });
        queries.push(round);
    }
    drop(_query_span);

    // Everything the queries referenced has been copied into the proof;
    // hand the layer buffers and fold-tree allocations back for the next
    // job on this worker.
    if let Some(w) = ws {
        for layer in layers {
            B::F::put_ext_elems(Some(w), layer);
        }
        B::F::put_ext_elems(Some(w), values);
        for tree in fold_trees {
            tree.recycle(w);
        }
    }

    FriProof {
        openings,
        commit_roots,
        final_poly,
        pow_witness,
        queries,
    }
}

/// Evaluates the combined witness over the whole LDE domain.
fn combine_initial<B: SpongeBackend>(
    batches: &[&GenericPolynomialBatch<B>],
    points: &[<B::F as ProtocolField>::Ext],
    openings: &[Vec<Vec<<B::F as ProtocolField>::Ext>>],
    alpha: <B::F as ProtocolField>::Ext,
    beta: <B::F as ProtocolField>::Ext,
    lde_size: usize,
    ws: Option<&Workspace>,
) -> Vec<<B::F as ProtocolField>::Ext> {
    type E<B> = <<B as SpongeBackend>::F as ProtocolField>::Ext;
    // S(x_i) for every domain position i.
    let mut s_values = B::F::take_ext_elems(ws, lde_size);
    s_values.resize(lde_size, E::<B>::ZERO);
    let mut alpha_pow = E::<B>::ONE;
    for batch in batches {
        for j in 0..batch.num_polys() {
            for (i, s) in s_values.iter_mut().enumerate() {
                *s += alpha_pow.scale(batch.leaf(i)[j]);
            }
            alpha_pow *= alpha;
        }
    }

    // Y_t = Σ_j α^j y_{j,t} with the same global α powers.
    let mut y_combined = vec![E::<B>::ZERO; points.len()];
    for (t, per_point) in openings.iter().enumerate() {
        let mut alpha_pow = E::<B>::ONE;
        for per_batch in per_point {
            for &y in per_batch {
                y_combined[t] += alpha_pow * y;
                alpha_pow *= alpha;
            }
        }
    }

    // Denominators (x_i − z_t), batch-inverted per point.
    let mut values = B::F::take_ext_elems(ws, lde_size);
    values.resize(lde_size, E::<B>::ZERO);
    let mut beta_pow = E::<B>::ONE;
    for (t, &z) in points.iter().enumerate() {
        let mut denoms = B::F::take_ext_elems(ws, lde_size);
        denoms.extend((0..lde_size).map(|i| E::<B>::from(domain_point::<B::F>(lde_size, i)) - z));
        let inv = batch_inverse(&denoms);
        for i in 0..lde_size {
            values[i] += beta_pow * (s_values[i] - y_combined[t]) * inv[i];
        }
        beta_pow *= beta;
        B::F::put_ext_elems(ws, denoms);
        B::F::put_ext_elems(ws, inv);
    }
    B::F::put_ext_elems(ws, s_values);
    values
}

/// Builds the Merkle tree over fold pairs of a layer: leaf `k` holds the
/// base limbs of `(v[2k], v[2k+1])`.
fn commit_fold_layer<B: SpongeBackend>(
    values: &[<B::F as ProtocolField>::Ext],
    ws: Option<&Workspace>,
) -> GenericMerkleTree<B> {
    let mut leaves = B::F::take_table(ws, values.len() / 2);
    for (pair, leaf) in values.chunks(2).zip(leaves.iter_mut()) {
        leaf.extend(pair[0].to_base_slice());
        leaf.extend(pair[1].to_base_slice());
    }
    GenericMerkleTree::<B>::new_in(leaves, ws)
}

/// Performs one arity-2 fold of a bit-reversed layer over `domain`.
///
/// With `p(x) = p_e(x²) + x·p_o(x²)` and the sibling pair `(v(x), v(−x))`
/// adjacent in bit-reversed order, the folded value at `y = x²` is
/// `p_e(y) + β·p_o(y)`.
#[cfg(test)]
pub(crate) fn fold_layer<F: ProtocolField + HashField>(
    values: &[F::Ext],
    domain: FoldDomain<F>,
    fold_beta: F::Ext,
) -> Vec<F::Ext> {
    fold_layer_in::<F>(values, domain, fold_beta, None)
}

/// [`fold_layer`] writing into (and scratching from) workspace buffers.
fn fold_layer_in<F: ProtocolField + HashField>(
    values: &[F::Ext],
    domain: FoldDomain<F>,
    fold_beta: F::Ext,
    ws: Option<&Workspace>,
) -> Vec<F::Ext> {
    debug_assert_eq!(values.len(), domain.size);
    let half = domain.size / 2;
    let two_inv = F::TWO.inverse();
    // Batch-invert the pair points.
    let mut xs = F::take_elems(ws, half);
    xs.extend((0..half).map(|k| domain.point(2 * k)));
    let x_invs = batch_inverse(&xs);
    let mut out = F::take_ext_elems(ws, half);
    out.extend((0..half).map(|k| {
        let a = values[2 * k];
        let b = values[2 * k + 1];
        let even = (a + b).scale(two_inv);
        let odd = (a - b).scale(two_inv * x_invs[k]);
        even + fold_beta * odd
    }));
    F::put_elems(ws, xs);
    F::put_elems(ws, x_invs);
    out
}

/// Evaluates the fold-consistency step the verifier performs for a single
/// pair, shared with [`crate::verifier`].
pub(crate) fn fold_pair<F: ProtocolField>(pair: [F::Ext; 2], x: F, fold_beta: F::Ext) -> F::Ext {
    let two_inv = F::TWO.inverse();
    let even = (pair[0] + pair[1]).scale(two_inv);
    let odd = (pair[0] - pair[1]).scale(two_inv * x.inverse());
    even + fold_beta * odd
}

/// Interpolates the final layer (bit-reversed values over `domain`) into
/// exactly `max_len` coefficients.
///
/// # Panics
///
/// Panics if the layer does not actually have degree `< max_len` — an
/// honest prover never hits this.
fn interpolate_final<F: ProtocolField>(
    values: &[F::Ext],
    domain: FoldDomain<F>,
    max_len: usize,
) -> Vec<F::Ext> {
    debug_assert_eq!(values.len(), domain.size);
    let xs: Vec<F::Ext> = (0..domain.size)
        .map(|i| F::Ext::from(domain.point(i)))
        .collect();
    let poly = Polynomial::interpolate(&xs, values);
    let coeffs = poly.into_coeffs();
    for (i, c) in coeffs.iter().enumerate() {
        assert!(
            i < max_len || c.is_zero(),
            "final polynomial exceeds the degree bound (prover bug)"
        );
    }
    let mut out: Vec<F::Ext> = coeffs.into_iter().take(max_len).collect();
    out.resize(max_len, F::Ext::ZERO);
    out
}

/// Nonces scanned per grind block. A multiple of every supported lane
/// width ([`unizk_hash::MAX_LANES`] divides it), so blocks decompose into
/// whole lane groups; it is also the unit of the deterministic parallel
/// search — see [`scan_block`].
const GRIND_BLOCK: u64 = 512;

/// Searches for a grinding witness: the **smallest** nonce whose
/// speculative challenge passes [`pow_ok`].
///
/// The scan is organised for two axes of parallelism while staying
/// bit-deterministic:
///
/// * **Lanes** — within a block, candidate nonces run through the
///   backend's lane-packed engine ([`unizk_hash::hash_lanes`] nonces per
///   dispatch), evaluating only the challenge row of the output state.
/// * **Threads** — blocks of `GRIND_BLOCK` (512) nonces are searched with
///   [`parallel_first_block`], which returns the lowest-indexed successful
///   block under every `set_parallelism` setting.
///
/// Both axes overshoot: lanes past the winner within a group, blocks past
/// the winning block within a wave. Nothing is counted per attempt;
/// instead the *logical* attempt count — `winner + 1`, exactly what the
/// serial one-bump-per-attempt scan totalled — lands on the backend's
/// permutation counter once at the end, keeping the counter byte-identical
/// for every lane width, block size, and thread count (count-once
/// discipline, as for the NTT routing knobs).
pub fn grind<B: SpongeBackend>(challenger: &GenericChallenger<B>, bits: usize) -> B::F {
    // Rule P04 upstream: a `BITS`-bit challenge cannot show `BITS` leading
    // zeros, so the scan below would walk the whole nonce space and never
    // return.
    assert!(
        bits < B::F::BITS,
        "grind demands {bits} leading zero bits of a {}-bit challenge",
        B::F::BITS
    );
    let speculative = challenger.speculative_challenger();
    let lanes = unizk_hash::hash_lanes();
    let winner = parallel_first_block(|k| scan_block(&speculative, k as u64 * GRIND_BLOCK, bits, lanes));
    trace::counter(B::COUNTER, winner + 1);
    B::F::from_u64(winner)
}

/// Scans the block of nonces `[start, start + GRIND_BLOCK)` and returns the
/// lowest qualifying nonce in it, if any. Dispatches on the configured lane
/// width; every width returns the identical result (the packed kernels are
/// bit-identical to scalar and groups are checked in nonce order).
fn scan_block<B: SpongeBackend>(
    speculative: &GenericSpeculativeChallenger<B>,
    start: u64,
    bits: usize,
    lanes: usize,
) -> Option<u64> {
    match lanes {
        2 => scan_lanes::<B, 2>(speculative, start, bits),
        4 => scan_lanes::<B, 4>(speculative, start, bits),
        8 => scan_lanes::<B, 8>(speculative, start, bits),
        _ => scan_lanes::<B, 1>(speculative, start, bits),
    }
}

/// Lane-width-monomorphised block scan: `LANES` consecutive nonces per
/// packed dispatch, groups walked in ascending order, lowest hit wins.
fn scan_lanes<B: SpongeBackend, const LANES: usize>(
    speculative: &GenericSpeculativeChallenger<B>,
    start: u64,
    bits: usize,
) -> Option<u64> {
    debug_assert_eq!(GRIND_BLOCK % LANES as u64, 0);
    let mut nonce = start;
    while nonce < start + GRIND_BLOCK {
        let mut xs = [B::F::ZERO; LANES];
        for (l, x) in xs.iter_mut().enumerate() {
            *x = B::F::from_u64(nonce + l as u64);
        }
        let responses = speculative.challenge_batch_uncounted(&xs);
        for (l, &r) in responses.iter().enumerate() {
            if pow_ok(r, bits) {
                return Some(nonce + l as u64);
            }
        }
        nonce += LANES as u64;
    }
    None
}

/// The grinding condition: the response's low `bits` bits are zero.
pub fn pow_ok<F: PrimeField64>(response: F, bits: usize) -> bool {
    response.as_u64() & ((1u64 << bits) - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::Ext2;
    use unizk_hash::Challenger;

    #[test]
    fn fold_domain_squares() {
        let d = FoldDomain::<Goldilocks>::initial(64);
        let f = d.fold();
        assert_eq!(f.size, 32);
        assert_eq!(f.shift, coset_shift::<Goldilocks>().square());
        // The folded point at position k is the square of the parent pair's
        // point.
        for k in 0..32 {
            assert_eq!(f.point(k), d.point(2 * k).square());
        }
    }

    #[test]
    fn pair_points_are_negatives() {
        let d = FoldDomain::<Goldilocks>::initial(64);
        for k in 0..32 {
            assert_eq!(d.point(2 * k + 1), -d.point(2 * k));
        }
    }

    #[test]
    fn koalabear_pair_points_are_negatives() {
        use unizk_field::KoalaBear;
        let d = FoldDomain::<KoalaBear>::initial(64);
        for k in 0..32 {
            assert_eq!(d.point(2 * k + 1), -d.point(2 * k));
            assert_eq!(d.fold().point(k), d.point(2 * k).square());
        }
    }

    #[test]
    fn fold_layer_preserves_low_degree() {
        use unizk_testkit::rng::TestRng as StdRng;
        // Take a random degree-<16 polynomial over a size-64 domain, fold,
        // and check the result matches p_e + β·p_o evaluated on the squared
        // domain.
        let mut rng = StdRng::seed_from_u64(500);
        let coeffs: Vec<Ext2> = (0..16)
            .map(|_| Ext2::from(Goldilocks::random(&mut rng)))
            .collect();
        let poly = Polynomial::from_coeffs(coeffs.clone());
        let domain = FoldDomain::<Goldilocks>::initial(64);
        let values: Vec<Ext2> = (0..64)
            .map(|i| poly.eval(Ext2::from(domain.point(i))))
            .collect();
        let beta = Ext2::new(Goldilocks::from_u64(3), Goldilocks::from_u64(5));
        let folded = fold_layer(&values, domain, beta);

        let even = Polynomial::from_coeffs(coeffs.iter().copied().step_by(2).collect::<Vec<_>>());
        let odd = Polynomial::from_coeffs(coeffs.iter().copied().skip(1).step_by(2).collect::<Vec<_>>());
        let next = domain.fold();
        for (k, f) in folded.iter().enumerate().take(32) {
            let y = Ext2::from(next.point(k));
            assert_eq!(*f, even.eval(y) + beta * odd.eval(y), "k={k}");
        }
    }

    #[test]
    fn koalabear_fold_layer_preserves_low_degree() {
        use unizk_field::{KbExt4, KoalaBear};
        use unizk_testkit::rng::TestRng as StdRng;
        let mut rng = StdRng::seed_from_u64(501);
        let coeffs: Vec<KbExt4> = (0..16)
            .map(|_| KbExt4::from(KoalaBear::random(&mut rng)))
            .collect();
        let poly = Polynomial::from_coeffs(coeffs.clone());
        let domain = FoldDomain::<KoalaBear>::initial(64);
        let values: Vec<KbExt4> = (0..64)
            .map(|i| poly.eval(KbExt4::from(domain.point(i))))
            .collect();
        let beta = KbExt4::from(KoalaBear::from_u64(7)) + KbExt4::X;
        let folded = fold_layer(&values, domain, beta);

        let even = Polynomial::from_coeffs(coeffs.iter().copied().step_by(2).collect::<Vec<_>>());
        let odd =
            Polynomial::from_coeffs(coeffs.iter().copied().skip(1).step_by(2).collect::<Vec<_>>());
        let next = domain.fold();
        for (k, f) in folded.iter().enumerate().take(32) {
            let y = KbExt4::from(next.point(k));
            assert_eq!(*f, even.eval(y) + beta * odd.eval(y), "k={k}");
        }
    }

    #[test]
    fn grinding_finds_valid_witness() {
        let challenger = Challenger::new();
        let w = grind(&challenger, 6);
        let mut c = challenger;
        c.observe(w);
        assert!(pow_ok(c.challenge(), 6));
    }

    #[test]
    fn koalabear_grinding_finds_valid_witness() {
        use unizk_hash::Poseidon2KbSponge;
        let challenger = GenericChallenger::<Poseidon2KbSponge>::new();
        let w = grind(&challenger, 6);
        let mut c = challenger;
        c.observe(w);
        assert!(pow_ok(c.challenge(), 6));
    }
}
