//! Byte-level proof serialization.
//!
//! Proof size is a first-class metric in the evaluation (Table 5 reports
//! kB; the artifact logs proof sizes in bytes), so proofs must actually
//! serialize. This module defines a simple self-describing little-endian
//! wire format for the FRI proof and its components, and guarantees that
//! [`crate::FriProof::size_bytes`] equals the encoded length exactly —
//! tested for every proof the test suite generates.

use unizk_field::{ExtensionOf, PrimeField64, ProtocolField};
use unizk_hash::{Digest, MerkleProof};

use crate::proof::{FriFoldOpening, FriInitialOpening, FriProof, FriQueryRound};

/// Serialization/deserialization failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-structure.
    Truncated,
    /// A length prefix exceeded sane bounds.
    LengthOutOfRange(u64),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated => write!(f, "unexpected end of proof bytes"),
            Self::LengthOutOfRange(n) => write!(f, "length prefix {n} out of range"),
        }
    }
}

impl std::error::Error for WireError {}

/// A little-endian byte writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a raw `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length prefix (stored as `u32`, counted separately from the
    /// payload in size accounting).
    pub fn len_prefix(&mut self, n: usize) {
        let n = u32::try_from(n).expect("length prefix fits u32");
        self.buf.extend_from_slice(&n.to_le_bytes());
    }

    /// Writes a field element: the canonical representative's low
    /// `F::BYTES` little-endian bytes (8 over Goldilocks, 4 over
    /// KoalaBear).
    pub fn field<F: PrimeField64>(&mut self, v: F) {
        self.buf
            .extend_from_slice(&v.as_u64().to_le_bytes()[..F::BYTES]);
    }

    /// Writes an extension element as its `DEGREE` base limbs, lowest
    /// degree first (16 bytes over either shipped field).
    pub fn ext<F: ProtocolField>(&mut self, v: F::Ext) {
        for limb in v.to_base_slice() {
            self.field(limb);
        }
    }

    /// Writes a digest (`4 × F::BYTES` bytes).
    pub fn digest<F: PrimeField64>(&mut self, d: Digest<F>) {
        for e in d.elements() {
            self.field(e);
        }
    }
}

/// A little-endian byte reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reads from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads a raw `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a length prefix.
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        let end = self.pos.checked_add(4).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        let n = u32::from_le_bytes(bytes.try_into().expect("4 bytes")) as u64;
        if n > (1 << 30) {
            return Err(WireError::LengthOutOfRange(n));
        }
        Ok(usize::try_from(n).expect("bounded length fits usize"))
    }

    /// Reads a field element (`F::BYTES` bytes, zero-extended).
    pub fn field<F: PrimeField64>(&mut self) -> Result<F, WireError> {
        let end = self.pos.checked_add(F::BYTES).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        let mut wide = [0u8; 8];
        wide[..F::BYTES].copy_from_slice(bytes);
        Ok(F::from_u64(u64::from_le_bytes(wide)))
    }

    /// Reads an extension element (`DEGREE` base limbs).
    pub fn ext<F: ProtocolField>(&mut self) -> Result<F::Ext, WireError> {
        let mut limbs = Vec::with_capacity(<F::Ext as ExtensionOf<F>>::DEGREE);
        for _ in 0..<F::Ext as ExtensionOf<F>>::DEGREE {
            limbs.push(self.field::<F>()?);
        }
        Ok(F::Ext::from_base_slice(&limbs))
    }

    /// Reads a digest.
    pub fn digest<F: PrimeField64>(&mut self) -> Result<Digest<F>, WireError> {
        Ok(Digest([
            self.field()?,
            self.field()?,
            self.field()?,
            self.field()?,
        ]))
    }
}

fn write_merkle_proof<F: PrimeField64>(w: &mut Writer, p: &MerkleProof<F>) {
    w.len_prefix(p.siblings.len());
    for &s in &p.siblings {
        w.digest(s);
    }
}

fn read_merkle_proof<F: PrimeField64>(r: &mut Reader<'_>) -> Result<MerkleProof<F>, WireError> {
    let n = r.len_prefix()?;
    let mut siblings = Vec::with_capacity(n);
    for _ in 0..n {
        siblings.push(r.digest()?);
    }
    Ok(MerkleProof { siblings })
}

impl<F: ProtocolField> FriProof<F> {
    /// Encodes the proof to bytes. The payload (excluding the 4-byte
    /// length prefixes, which a fixed-shape instance doesn't need) is
    /// exactly [`FriProof::size_bytes`] long.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.len_prefix(self.openings.len());
        for per_point in &self.openings {
            w.len_prefix(per_point.len());
            for per_batch in per_point {
                w.len_prefix(per_batch.len());
                for &y in per_batch {
                    w.ext::<F>(y);
                }
            }
        }
        w.len_prefix(self.commit_roots.len());
        for &root in &self.commit_roots {
            w.digest(root);
        }
        w.len_prefix(self.final_poly.len());
        for &c in &self.final_poly {
            w.ext::<F>(c);
        }
        w.field(self.pow_witness);
        w.len_prefix(self.queries.len());
        for q in &self.queries {
            w.len_prefix(q.initial.len());
            for init in &q.initial {
                w.len_prefix(init.leaf.len());
                for &v in &init.leaf {
                    w.field(v);
                }
                write_merkle_proof(&mut w, &init.proof);
            }
            w.len_prefix(q.folds.len());
            for fold in &q.folds {
                w.ext::<F>(fold.pair[0]);
                w.ext::<F>(fold.pair[1]);
                write_merkle_proof(&mut w, &fold.proof);
            }
        }
        w.into_bytes()
    }

    /// Decodes a proof from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or corrupt length prefixes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let num_points = r.len_prefix()?;
        let mut openings = Vec::with_capacity(num_points);
        for _ in 0..num_points {
            let num_batches = r.len_prefix()?;
            let mut per_point = Vec::with_capacity(num_batches);
            for _ in 0..num_batches {
                let num_polys = r.len_prefix()?;
                let mut per_batch = Vec::with_capacity(num_polys);
                for _ in 0..num_polys {
                    per_batch.push(r.ext::<F>()?);
                }
                per_point.push(per_batch);
            }
            openings.push(per_point);
        }
        let num_roots = r.len_prefix()?;
        let mut commit_roots = Vec::with_capacity(num_roots);
        for _ in 0..num_roots {
            commit_roots.push(r.digest()?);
        }
        let final_len = r.len_prefix()?;
        let mut final_poly = Vec::with_capacity(final_len);
        for _ in 0..final_len {
            final_poly.push(r.ext::<F>()?);
        }
        let pow_witness = r.field()?;
        let num_queries = r.len_prefix()?;
        let mut queries = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            let num_initial = r.len_prefix()?;
            let mut initial = Vec::with_capacity(num_initial);
            for _ in 0..num_initial {
                let leaf_len = r.len_prefix()?;
                let mut leaf = Vec::with_capacity(leaf_len);
                for _ in 0..leaf_len {
                    leaf.push(r.field()?);
                }
                let proof = read_merkle_proof(&mut r)?;
                initial.push(FriInitialOpening { leaf, proof });
            }
            let num_folds = r.len_prefix()?;
            let mut folds = Vec::with_capacity(num_folds);
            for _ in 0..num_folds {
                let pair = [r.ext::<F>()?, r.ext::<F>()?];
                let proof = read_merkle_proof(&mut r)?;
                folds.push(FriFoldOpening { pair, proof });
            }
            queries.push(FriQueryRound { initial, folds });
        }
        Ok(Self {
            openings,
            commit_roots,
            final_poly,
            pow_witness,
            queries,
        })
    }

    /// Count of 4-byte length prefixes the encoding adds on top of
    /// [`FriProof::size_bytes`] of payload.
    pub fn num_length_prefixes(&self) -> usize {
        let mut n = 4; // openings, commit_roots, final_poly, queries
        for per_point in &self.openings {
            n += 1 + per_point.len();
        }
        for q in &self.queries {
            n += 2; // initial, folds
            n += q.initial.len() * 2; // leaf len + merkle len
            n += q.folds.len(); // merkle len
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::{Ext2, Goldilocks, Polynomial};
    use unizk_hash::Challenger;

    fn sample_proof() -> FriProof {
        use unizk_testkit::rng::TestRng as StdRng;
        let mut rng = StdRng::seed_from_u64(1200);
        let config = crate::FriConfig::for_testing();
        let polys: Vec<Polynomial<Goldilocks>> = (0..3)
            .map(|_| {
                Polynomial::from_coeffs((0..32).map(|_| Goldilocks::random(&mut rng)).collect())
            })
            .collect();
        let batch = crate::PolynomialBatch::from_coeffs(polys, &config);
        let mut challenger = Challenger::new();
        challenger.observe_digest(batch.root());
        crate::fri_prove(
            &[&batch],
            &[Ext2::random(&mut rng)],
            &mut challenger,
            &config,
        )
    }

    #[test]
    fn roundtrip_preserves_the_proof() {
        let proof = sample_proof();
        let bytes = proof.to_bytes();
        let back = FriProof::<Goldilocks>::from_bytes(&bytes).expect("decodes");
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.commit_roots, proof.commit_roots);
        assert_eq!(back.final_poly, proof.final_poly);
        assert_eq!(back.pow_witness, proof.pow_witness);
        assert_eq!(back.queries.len(), proof.queries.len());
    }

    #[test]
    fn size_bytes_matches_encoded_payload() {
        let proof = sample_proof();
        let encoded = proof.to_bytes().len();
        let payload = proof.size_bytes();
        let prefixes = proof.num_length_prefixes() * 4;
        assert_eq!(encoded, payload + prefixes, "payload {payload} prefixes {prefixes}");
    }

    #[test]
    fn truncated_bytes_rejected() {
        let bytes = sample_proof().to_bytes();
        for cut in [0usize, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(FriProof::<Goldilocks>::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        let mut bytes = sample_proof().to_bytes();
        bytes[0] = 0xFF;
        bytes[1] = 0xFF;
        bytes[2] = 0xFF;
        bytes[3] = 0x7F;
        assert!(matches!(
            FriProof::<Goldilocks>::from_bytes(&bytes),
            Err(WireError::LengthOutOfRange(_)) | Err(WireError::Truncated)
        ));
    }
}
