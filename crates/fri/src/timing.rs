//! Per-kernel wall-clock accounting for the CPU baseline — a thin shim
//! over [`unizk_testkit::trace`].
//!
//! Table 1 of the paper breaks single-threaded Plonky2 proving time into
//! five kernel classes; the prover stack wraps each code region in a
//! [`time_kernel`] guard so the same breakdown can be reproduced here.
//!
//! Historically this module kept its own process-global `Mutex<[Duration;
//! 5]>`, which double-counted when a `time_kernel` region ran *inside*
//! another one on a `parallel_map` worker (both the outer region and each
//! worker's inner region charged the globals). It is now a façade over the
//! testkit's span tracing: `time_kernel(class, f)` opens a span named
//! `kernel:<class>`, and [`kernel_totals`] sums, for each class, only the
//! **outermost** `kernel:*` spans — a kernel span nested under another
//! kernel span (e.g. per-worker NTTs inside a committed batch's
//! `Polynomial` region) is already included in its ancestor's total and is
//! not counted again.

use std::time::Duration;

use unizk_testkit::trace;

/// The kernel classes of Table 1 (and Figs. 8–9).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Element-wise and miscellaneous polynomial computation.
    Polynomial,
    /// Forward/inverse NTTs, including LDE transforms.
    Ntt,
    /// Merkle tree construction (leaf + interior hashing).
    MerkleTree,
    /// Hashing outside Merkle trees: Fiat–Shamir duplexing, grinding.
    OtherHash,
    /// Data layout transformations (transposes, leaf gathering).
    LayoutTransform,
}

impl KernelClass {
    /// All classes, in Table 1's column order.
    pub const ALL: [KernelClass; 5] = [
        KernelClass::Polynomial,
        KernelClass::Ntt,
        KernelClass::MerkleTree,
        KernelClass::OtherHash,
        KernelClass::LayoutTransform,
    ];

    /// The Table 1 column header.
    pub fn name(&self) -> &'static str {
        match self {
            KernelClass::Polynomial => "Polynomial",
            KernelClass::Ntt => "NTT",
            KernelClass::MerkleTree => "Merkle Tree",
            KernelClass::OtherHash => "Other Hash",
            KernelClass::LayoutTransform => "Layout Transform",
        }
    }

    /// The span name this class records under in the trace tree
    /// (`"kernel:<Table-1 name>"`).
    pub fn span_name(&self) -> &'static str {
        match self {
            KernelClass::Polynomial => "kernel:Polynomial",
            KernelClass::Ntt => "kernel:NTT",
            KernelClass::MerkleTree => "kernel:Merkle Tree",
            KernelClass::OtherHash => "kernel:Other Hash",
            KernelClass::LayoutTransform => "kernel:Layout Transform",
        }
    }

    /// The inverse of [`span_name`](Self::span_name).
    pub fn from_span_name(name: &str) -> Option<KernelClass> {
        KernelClass::ALL.into_iter().find(|c| c.span_name() == name)
    }
}

/// Starts a fresh kernel measurement. Call before a measured proving run.
///
/// This resets the **whole** trace layer (it forwards to
/// [`trace::reset`]), so phase spans recorded by the same run are cleared
/// too.
pub fn reset_kernel_timers() {
    trace::reset();
}

/// A snapshot of accumulated time per kernel class, in Table 1 order.
///
/// Sums only *outermost* `kernel:*` spans: a kernel region nested inside
/// another kernel region (however deep, and across `parallel_map` worker
/// threads) is part of its ancestor's wall time and is not double-counted.
pub fn kernel_totals() -> [(KernelClass, Duration); 5] {
    kernel_totals_from(&trace::snapshot())
}

/// [`kernel_totals`] computed from an already-taken snapshot.
pub fn kernel_totals_from(report: &trace::TraceReport) -> [(KernelClass, Duration); 5] {
    let mut ns = [0u64; 5];
    report.walk(&mut |path, node| {
        let Some(class) = KernelClass::from_span_name(&node.name) else {
            return;
        };
        let nested = path[..path.len() - 1]
            .iter()
            .any(|p| KernelClass::from_span_name(p).is_some());
        if !nested {
            let index = KernelClass::ALL
                .iter()
                .position(|c| *c == class)
                .expect("class in ALL");
            ns[index] += node.ns;
        }
    });
    let mut out = [(KernelClass::Polynomial, Duration::ZERO); 5];
    for (i, (slot, class)) in out.iter_mut().zip(KernelClass::ALL).enumerate() {
        *slot = (class, Duration::from_nanos(ns[i]));
    }
    out
}

/// Times `f`, charging its wall-clock duration to `class`.
///
/// Safe to nest (inner kernel regions are absorbed into the outermost
/// one's total) and safe to call from `parallel_map` workers (per-thread
/// collectors merge on worker exit — see `unizk_testkit::trace`).
pub fn time_kernel<T>(class: KernelClass, f: impl FnOnce() -> T) -> T {
    trace::with_span(class.span_name(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `accumulates_and_resets` resets the global trace store, which would
    /// discard a sibling test's in-flight spans — so the trace-sensitive
    /// tests serialize on this lock.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Other tests in this binary open `kernel:*` spans concurrently
    /// (batch commits, prover tests), so these tests never assert on the
    /// *global* totals. Each wraps its work in a uniquely-named span and
    /// computes totals from that subtree only.
    fn subtree_totals(root: &'static str) -> [(KernelClass, Duration); 5] {
        let report = trace::snapshot();
        let node = report.node(&[root]).expect("test root span recorded");
        kernel_totals_from(&trace::TraceReport {
            roots: node.children.clone(),
            counters: Vec::new(),
        })
    }

    fn get(totals: &[(KernelClass, Duration); 5], class: KernelClass) -> Duration {
        totals.iter().find(|(c, _)| *c == class).expect("class row").1
    }

    #[test]
    fn accumulates_and_resets() {
        let _x = exclusive();
        trace::with_span("test.timing_acc", || {
            time_kernel(KernelClass::Ntt, || std::thread::sleep(Duration::from_millis(2)));
            time_kernel(KernelClass::Ntt, || std::thread::sleep(Duration::from_millis(2)));
        });
        let totals = subtree_totals("test.timing_acc");
        assert!(get(&totals, KernelClass::Ntt) >= Duration::from_millis(4));
        reset_kernel_timers();
        // Nothing else in this binary uses this span name, so after reset
        // it must be gone from the global store.
        assert!(trace::snapshot().node(&["test.timing_acc"]).is_none());
    }

    #[test]
    fn returns_closure_value() {
        assert_eq!(time_kernel(KernelClass::Polynomial, || 7), 7);
    }

    #[test]
    fn class_names_match_table1() {
        assert_eq!(KernelClass::ALL.len(), 5);
        assert_eq!(KernelClass::MerkleTree.name(), "Merkle Tree");
        for class in KernelClass::ALL {
            assert_eq!(KernelClass::from_span_name(class.span_name()), Some(class));
            assert_eq!(class.span_name(), format!("kernel:{}", class.name()));
        }
        assert_eq!(KernelClass::from_span_name("stark.prove"), None);
    }

    #[test]
    fn nested_kernel_regions_do_not_double_count() {
        let _x = exclusive();
        // The old Mutex timers charged 2 ms to MerkleTree *and* 2 ms to the
        // nested OtherHash region, so the per-class sum exceeded wall time.
        trace::with_span("test.timing_nested", || {
            time_kernel(KernelClass::MerkleTree, || {
                time_kernel(KernelClass::OtherHash, || {
                    std::thread::sleep(Duration::from_millis(2));
                });
            });
        });
        let totals = subtree_totals("test.timing_nested");
        assert!(get(&totals, KernelClass::MerkleTree) >= Duration::from_millis(2));
        assert_eq!(
            get(&totals, KernelClass::OtherHash),
            Duration::ZERO,
            "nested kernel span must fold into its ancestor"
        );
    }

    #[test]
    fn worker_thread_regions_merge_without_double_count() {
        let _x = exclusive();
        // An outer kernel region fans out to workers that open their own
        // kernel regions — the paper's commit path shape. With handle
        // attachment the workers' spans nest under the outer one.
        trace::with_span("test.timing_workers", || {
            time_kernel(KernelClass::Ntt, || {
                let handle = trace::SpanHandle::current();
                std::thread::scope(|scope| {
                    for _ in 0..4 {
                        let handle = handle.clone();
                        scope.spawn(move || {
                            let _ctx = handle.attach();
                            time_kernel(KernelClass::Ntt, || {
                                std::thread::sleep(Duration::from_millis(2));
                            });
                        });
                    }
                });
            });
        });
        let totals = subtree_totals("test.timing_workers");
        let ntt = get(&totals, KernelClass::Ntt);
        // Outermost span's wall time only: ~2 ms (workers run in parallel),
        // never the old behavior's outer + 4 × inner ≈ 10 ms.
        assert!(ntt >= Duration::from_millis(2));
        assert!(ntt < Duration::from_millis(9), "workers double-counted: {ntt:?}");

        // The workers' spans are recorded, nested under the outer one.
        let report = trace::snapshot();
        let inner = report
            .node(&["test.timing_workers", "kernel:NTT", "kernel:NTT"])
            .expect("worker spans nest under the outer kernel span");
        assert_eq!(inner.count, 4);
    }
}
