//! Per-kernel wall-clock accounting for the CPU baseline.
//!
//! Table 1 of the paper breaks single-threaded Plonky2 proving time into
//! five kernel classes; the prover stack wraps each code region in a
//! [`time_kernel`] guard so the same breakdown can be reproduced here.
//! Timers are process-global and explicitly reset around a measured run.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The kernel classes of Table 1 (and Figs. 8–9).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Element-wise and miscellaneous polynomial computation.
    Polynomial,
    /// Forward/inverse NTTs, including LDE transforms.
    Ntt,
    /// Merkle tree construction (leaf + interior hashing).
    MerkleTree,
    /// Hashing outside Merkle trees: Fiat–Shamir duplexing, grinding.
    OtherHash,
    /// Data layout transformations (transposes, leaf gathering).
    LayoutTransform,
}

impl KernelClass {
    /// All classes, in Table 1's column order.
    pub const ALL: [KernelClass; 5] = [
        KernelClass::Polynomial,
        KernelClass::Ntt,
        KernelClass::MerkleTree,
        KernelClass::OtherHash,
        KernelClass::LayoutTransform,
    ];

    /// The Table 1 column header.
    pub fn name(&self) -> &'static str {
        match self {
            KernelClass::Polynomial => "Polynomial",
            KernelClass::Ntt => "NTT",
            KernelClass::MerkleTree => "Merkle Tree",
            KernelClass::OtherHash => "Other Hash",
            KernelClass::LayoutTransform => "Layout Transform",
        }
    }

    fn index(&self) -> usize {
        match self {
            KernelClass::Polynomial => 0,
            KernelClass::Ntt => 1,
            KernelClass::MerkleTree => 2,
            KernelClass::OtherHash => 3,
            KernelClass::LayoutTransform => 4,
        }
    }
}

static TOTALS: Mutex<[Duration; 5]> = Mutex::new([Duration::ZERO; 5]);

/// Zeroes all kernel totals. Call before a measured proving run.
pub fn reset_kernel_timers() {
    *TOTALS.lock().expect("timer mutex") = [Duration::ZERO; 5];
}

/// A snapshot of accumulated time per kernel class, in Table 1 order.
pub fn kernel_totals() -> [(KernelClass, Duration); 5] {
    let totals = *TOTALS.lock().expect("timer mutex");
    let mut out = [(KernelClass::Polynomial, Duration::ZERO); 5];
    for (slot, class) in out.iter_mut().zip(KernelClass::ALL) {
        *slot = (class, totals[class.index()]);
    }
    out
}

/// Times `f`, charging its wall-clock duration to `class`.
///
/// Nested calls charge the inner region to the inner class only is *not*
/// attempted — regions are expected to be disjoint, as they are in the
/// prover (outer regions subtract nothing; keep regions leaf-level).
pub fn time_kernel<T>(class: KernelClass, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    let elapsed = start.elapsed();
    TOTALS.lock().expect("timer mutex")[class.index()] += elapsed;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets() {
        reset_kernel_timers();
        time_kernel(KernelClass::Ntt, || std::thread::sleep(Duration::from_millis(2)));
        time_kernel(KernelClass::Ntt, || std::thread::sleep(Duration::from_millis(2)));
        let totals = kernel_totals();
        let ntt = totals
            .iter()
            .find(|(c, _)| *c == KernelClass::Ntt)
            .expect("ntt row")
            .1;
        assert!(ntt >= Duration::from_millis(4));
        reset_kernel_timers();
        assert!(kernel_totals().iter().all(|(_, d)| d.is_zero()));
    }

    #[test]
    fn returns_closure_value() {
        assert_eq!(time_kernel(KernelClass::Polynomial, || 7), 7);
    }

    #[test]
    fn class_names_match_table1() {
        assert_eq!(KernelClass::ALL.len(), 5);
        assert_eq!(KernelClass::MerkleTree.name(), "Merkle Tree");
    }
}
