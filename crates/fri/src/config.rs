//! FRI parameter sets.


/// Parameters of a FRI instance.
///
/// The two presets mirror the paper's protocols: Plonky2 uses a blowup of at
/// least 8 (`rate_bits = 3`); Starky uses a blowup of 2 (`rate_bits = 1`).
/// Both target ~100 bits of conjectured security via
/// `num_queries · rate_bits + proof_of_work_bits`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FriConfig {
    /// `log2` of the LDE blowup factor `k`.
    pub rate_bits: usize,
    /// Number of query rounds.
    pub num_queries: usize,
    /// Leading-zero bits required of the grinding challenge.
    pub proof_of_work_bits: usize,
    /// Stop folding once the claimed polynomial degree is at most this.
    pub final_poly_len: usize,
}

impl FriConfig {
    /// Plonky2's standard configuration (blowup 8).
    pub fn plonky2() -> Self {
        Self {
            rate_bits: 3,
            num_queries: 28,
            proof_of_work_bits: 16,
            final_poly_len: 8,
        }
    }

    /// Starky's standard configuration (blowup 2). More queries compensate
    /// for the lower rate; this is why Starky proofs are large (Table 5).
    pub fn starky() -> Self {
        Self {
            rate_bits: 1,
            num_queries: 84,
            proof_of_work_bits: 16,
            final_poly_len: 8,
        }
    }

    /// A cheap configuration for unit tests (few queries, tiny grind).
    pub fn for_testing() -> Self {
        Self {
            rate_bits: 3,
            num_queries: 6,
            proof_of_work_bits: 4,
            final_poly_len: 4,
        }
    }

    /// Conjectured security level in bits (the heuristic Plonky2 quotes:
    /// one `rate_bits` per query plus the grinding bits).
    pub fn conjectured_security_bits(&self) -> usize {
        self.num_queries * self.rate_bits + self.proof_of_work_bits
    }

    /// Number of arity-2 folding rounds for an initial degree bound
    /// `degree` (a power of two).
    pub fn num_reduction_rounds(&self, degree: usize) -> usize {
        let mut rounds = 0;
        let mut d = degree;
        while d > self.final_poly_len {
            d /= 2;
            rounds += 1;
        }
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_hit_security_targets() {
        assert!(FriConfig::plonky2().conjectured_security_bits() >= 100);
        assert!(FriConfig::starky().conjectured_security_bits() >= 100);
    }

    #[test]
    fn reduction_round_count() {
        let c = FriConfig::plonky2();
        assert_eq!(c.num_reduction_rounds(8), 0);
        assert_eq!(c.num_reduction_rounds(16), 1);
        assert_eq!(c.num_reduction_rounds(1 << 13), 10);
    }

    #[test]
    fn starky_blowup_is_two() {
        assert_eq!(1 << FriConfig::starky().rate_bits, 2);
        assert_eq!(1 << FriConfig::plonky2().rate_bits, 8);
    }
}
