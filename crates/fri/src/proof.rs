//! FRI proof structures and size accounting.
//!
//! Proof size matters in the evaluation: Table 5 reports Starky base proofs
//! of hundreds of kB compressed to ~155 kB by a recursive Plonky2 proof;
//! [`FriProof::size_bytes`] reproduces that accounting.
//!
//! All structures are generic over the base field (`F: ProtocolField`,
//! defaulting to Goldilocks) — extension elements are `F::Ext`, and the
//! per-element wire widths follow `F::BYTES`.

use unizk_field::{ExtensionOf, Goldilocks, ProtocolField};
use unizk_hash::{Digest, MerkleProof};

/// One batch opening at one query position: the leaf contents plus the
/// authentication path.
#[derive(Clone, Debug)]
pub struct FriInitialOpening<F: ProtocolField = Goldilocks> {
    /// Values of every polynomial in the batch at the queried LDE point.
    pub leaf: Vec<F>,
    /// Merkle path in the batch's commitment tree.
    pub proof: MerkleProof<F>,
}

/// One commit-phase opening at one query position: the fold pair plus path.
#[derive(Clone, Debug)]
pub struct FriFoldOpening<F: ProtocolField = Goldilocks> {
    /// The two sibling values `v(x)`, `v(-x)` that fold together.
    pub pair: [F::Ext; 2],
    /// Merkle path in this round's tree.
    pub proof: MerkleProof<F>,
}

/// All openings for a single query index.
#[derive(Clone, Debug)]
pub struct FriQueryRound<F: ProtocolField = Goldilocks> {
    /// One opening per committed batch.
    pub initial: Vec<FriInitialOpening<F>>,
    /// One opening per folding round.
    pub folds: Vec<FriFoldOpening<F>>,
}

/// A complete FRI opening proof.
#[derive(Clone, Debug)]
pub struct FriProof<F: ProtocolField = Goldilocks> {
    /// Claimed evaluations: `openings[t][b][j]` is polynomial `j` of batch
    /// `b` evaluated at out-of-domain point `t`.
    pub openings: Vec<Vec<Vec<F::Ext>>>,
    /// Merkle roots of the commit-phase (fold) trees.
    pub commit_roots: Vec<Digest<F>>,
    /// Coefficients of the final low-degree polynomial.
    pub final_poly: Vec<F::Ext>,
    /// The grinding witness nonce.
    pub pow_witness: F,
    /// Per-query openings.
    pub queries: Vec<FriQueryRound<F>>,
}

impl<F: ProtocolField> FriProof<F> {
    /// Serialized proof size in bytes. Per-element widths follow the
    /// field: `F::BYTES` per base element (8 over Goldilocks, 4 over
    /// KoalaBear), `DEGREE × F::BYTES` per extension element, and
    /// `4 × F::BYTES` per digest.
    pub fn size_bytes(&self) -> usize {
        let ext = <F::Ext as ExtensionOf<F>>::DEGREE * F::BYTES;
        let base = F::BYTES;
        let mut total = 0;
        for per_point in &self.openings {
            for per_batch in per_point {
                total += per_batch.len() * ext;
            }
        }
        total += self.commit_roots.len() * Digest::<F>::BYTES;
        total += self.final_poly.len() * ext;
        total += base; // pow witness
        for q in &self.queries {
            for init in &q.initial {
                total += init.leaf.len() * base + init.proof.size_bytes();
            }
            for fold in &q.folds {
                total += 2 * ext + fold.proof.size_bytes();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::{Ext2, Field};

    #[test]
    fn size_accounting() {
        let proof = FriProof {
            openings: vec![vec![vec![Ext2::ONE; 3]]],
            commit_roots: vec![Digest::ZERO; 2],
            final_poly: vec![Ext2::ONE; 4],
            pow_witness: Goldilocks::ZERO,
            queries: vec![FriQueryRound {
                initial: vec![FriInitialOpening {
                    leaf: vec![Goldilocks::ONE; 5],
                    proof: MerkleProof { siblings: vec![Digest::ZERO; 3] },
                }],
                folds: vec![FriFoldOpening {
                    pair: [Ext2::ONE; 2],
                    proof: MerkleProof { siblings: vec![Digest::ZERO; 2] },
                }],
            }],
        };
        let expect = 3 * 16 + 2 * 32 + 4 * 16 + 8 + (5 * 8 + 3 * 32) + (2 * 16 + 2 * 32);
        assert_eq!(proof.size_bytes(), expect);
    }

    #[test]
    fn koalabear_size_accounting_uses_narrow_widths() {
        use unizk_field::{KbExt4, KoalaBear};
        let proof: FriProof<KoalaBear> = FriProof {
            openings: vec![vec![vec![KbExt4::ONE; 3]]],
            commit_roots: vec![Digest::ZERO; 2],
            final_poly: vec![KbExt4::ONE; 4],
            pow_witness: KoalaBear::ZERO,
            queries: vec![FriQueryRound {
                initial: vec![FriInitialOpening {
                    leaf: vec![KoalaBear::ONE; 5],
                    proof: MerkleProof { siblings: vec![Digest::ZERO; 3] },
                }],
                folds: vec![FriFoldOpening {
                    pair: [KbExt4::ONE; 2],
                    proof: MerkleProof { siblings: vec![Digest::ZERO; 2] },
                }],
            }],
        };
        // ext = 4 limbs × 4 bytes = 16, base = 4, digest = 16.
        let expect = 3 * 16 + 2 * 16 + 4 * 16 + 4 + (5 * 4 + 3 * 16) + (2 * 16 + 2 * 16);
        assert_eq!(proof.size_bytes(), expect);
    }
}
