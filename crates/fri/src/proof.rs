//! FRI proof structures and size accounting.
//!
//! Proof size matters in the evaluation: Table 5 reports Starky base proofs
//! of hundreds of kB compressed to ~155 kB by a recursive Plonky2 proof;
//! [`FriProof::size_bytes`] reproduces that accounting.

use unizk_field::{Ext2, Goldilocks};
use unizk_hash::{Digest, MerkleProof};

/// One batch opening at one query position: the leaf contents plus the
/// authentication path.
#[derive(Clone, Debug)]
pub struct FriInitialOpening {
    /// Values of every polynomial in the batch at the queried LDE point.
    pub leaf: Vec<Goldilocks>,
    /// Merkle path in the batch's commitment tree.
    pub proof: MerkleProof,
}

/// One commit-phase opening at one query position: the fold pair plus path.
#[derive(Clone, Debug)]
pub struct FriFoldOpening {
    /// The two sibling values `v(x)`, `v(-x)` that fold together.
    pub pair: [Ext2; 2],
    /// Merkle path in this round's tree.
    pub proof: MerkleProof,
}

/// All openings for a single query index.
#[derive(Clone, Debug)]
pub struct FriQueryRound {
    /// One opening per committed batch.
    pub initial: Vec<FriInitialOpening>,
    /// One opening per folding round.
    pub folds: Vec<FriFoldOpening>,
}

/// A complete FRI opening proof.
#[derive(Clone, Debug)]
pub struct FriProof {
    /// Claimed evaluations: `openings[t][b][j]` is polynomial `j` of batch
    /// `b` evaluated at out-of-domain point `t`.
    pub openings: Vec<Vec<Vec<Ext2>>>,
    /// Merkle roots of the commit-phase (fold) trees.
    pub commit_roots: Vec<Digest>,
    /// Coefficients of the final low-degree polynomial.
    pub final_poly: Vec<Ext2>,
    /// The grinding witness nonce.
    pub pow_witness: Goldilocks,
    /// Per-query openings.
    pub queries: Vec<FriQueryRound>,
}

impl FriProof {
    /// Serialized proof size in bytes (8 bytes per base element, 16 per
    /// extension element, 32 per digest).
    pub fn size_bytes(&self) -> usize {
        let ext = 16;
        let base = 8;
        let mut total = 0;
        for per_point in &self.openings {
            for per_batch in per_point {
                total += per_batch.len() * ext;
            }
        }
        total += self.commit_roots.len() * Digest::BYTES;
        total += self.final_poly.len() * ext;
        total += base; // pow witness
        for q in &self.queries {
            for init in &q.initial {
                total += init.leaf.len() * base + init.proof.size_bytes();
            }
            for fold in &q.folds {
                total += 2 * ext + fold.proof.size_bytes();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::Field;

    #[test]
    fn size_accounting() {
        let proof = FriProof {
            openings: vec![vec![vec![Ext2::ONE; 3]]],
            commit_roots: vec![Digest::ZERO; 2],
            final_poly: vec![Ext2::ONE; 4],
            pow_witness: Goldilocks::ZERO,
            queries: vec![FriQueryRound {
                initial: vec![FriInitialOpening {
                    leaf: vec![Goldilocks::ONE; 5],
                    proof: MerkleProof { siblings: vec![Digest::ZERO; 3] },
                }],
                folds: vec![FriFoldOpening {
                    pair: [Ext2::ONE; 2],
                    proof: MerkleProof { siblings: vec![Digest::ZERO; 2] },
                }],
            }],
        };
        let expect = 3 * 16 + 2 * 32 + 4 * 16 + 8 + (5 * 8 + 3 * 32) + (2 * 16 + 2 * 32);
        assert_eq!(proof.size_bytes(), expect);
    }
}
