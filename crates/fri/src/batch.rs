//! Batched polynomial commitments — the "Wires Commitment"-style nodes in
//! the paper's computation graph (Fig. 7): `iNTT` → `LDE` → `NTT^NR` →
//! Merkle tree.
//!
//! The batch is generic over the sponge backend (and hence the base
//! field): [`PolynomialBatch`] is the Goldilocks/Poseidon alias of
//! [`GenericPolynomialBatch`]; the KoalaBear path instantiates the same
//! code over `Poseidon2KbSponge`.

use unizk_field::{bit_reverse, log2_strict, Field, Polynomial, PrimeField64, ProtocolField};
use unizk_hash::sponge::HashField;
use unizk_hash::workspace::Workspace;
use unizk_hash::{Digest, GenericMerkleTree, PoseidonSponge, SpongeBackend};
use unizk_ntt::{coset_ntt_nr, intt_nn};

use crate::config::FriConfig;
use crate::timing::KernelClass;

/// The coset shift `g` every LDE in the protocol uses: the field's
/// multiplicative generator.
pub fn coset_shift<F: PrimeField64>() -> F {
    F::MULTIPLICATIVE_GENERATOR
}

/// A batch of equal-length polynomials committed in one Merkle tree.
///
/// Leaf `i` of the tree concatenates the values of all polynomials at LDE
/// point `i` (bit-reversed order) — "taking values from the same position
/// of all the polynomials and concatenating them" (paper Fig. 1 step ③).
#[derive(Clone, Debug)]
pub struct GenericPolynomialBatch<B: SpongeBackend> {
    polys: Vec<Polynomial<B::F>>,
    tree: GenericMerkleTree<B>,
    degree: usize,
    rate_bits: usize,
}

/// The default (Goldilocks, Poseidon) batch.
pub type PolynomialBatch = GenericPolynomialBatch<PoseidonSponge>;

impl<B: SpongeBackend> GenericPolynomialBatch<B> {
    /// Commits to polynomials given in coefficient form.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or lengths differ / are not powers of
    /// two.
    pub fn from_coeffs(polys: Vec<Polynomial<B::F>>, config: &FriConfig) -> Self {
        Self::from_coeffs_in(polys, config, None)
    }

    /// [`GenericPolynomialBatch::from_coeffs`] with an optional
    /// [`Workspace`]: the LDE codewords, the Merkle leaf table, and the
    /// tree's digest levels are drawn from (and sized for return to) the
    /// workspace pools. The commitment is bit-identical with and without a
    /// workspace.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or lengths differ / are not powers of
    /// two.
    pub fn from_coeffs_in(
        polys: Vec<Polynomial<B::F>>,
        config: &FriConfig,
        ws: Option<&Workspace>,
    ) -> Self {
        assert!(!polys.is_empty(), "cannot commit to an empty batch");
        let degree = polys[0].len();
        assert!(degree.is_power_of_two(), "degree must be a power of two");
        for p in &polys {
            assert_eq!(p.len(), degree, "all polynomials must have equal length");
        }

        // LDE of every polynomial (NTT kernel), then gather the values at
        // each domain position into Merkle leaves (a layout transform — the
        // index-major view of §5.1), then hash the tree.
        let shift = coset_shift::<B::F>();
        let lde_size = degree << config.rate_bits;
        let ldes: Vec<Vec<B::F>> = crate::timing::time_kernel(KernelClass::Ntt, || {
            let coeff_refs: Vec<&[B::F]> = polys.iter().map(|p| p.coeffs()).collect();
            unizk_field::parallel_map(coeff_refs, |c| {
                // `lde_nr` on a pooled buffer: zero-pad, then NTT^NR on the
                // coset (identical values and transform counters).
                let mut padded = B::F::take_elems(ws, lde_size);
                padded.extend_from_slice(c);
                padded.resize(lde_size, B::F::ZERO);
                coset_ntt_nr(&mut padded, shift);
                padded
            })
        });

        let leaves: Vec<Vec<B::F>> =
            crate::timing::time_kernel(KernelClass::LayoutTransform, || {
                let mut table = B::F::take_table(ws, lde_size);
                let chunk = lde_size
                    .div_ceil(unizk_field::current_parallelism().max(1))
                    .max(1);
                unizk_field::parallel_chunks_mut(&mut table, chunk, |offset, rows| {
                    for (k, row) in rows.iter_mut().enumerate() {
                        row.extend(ldes.iter().map(|l| l[offset + k]));
                    }
                });
                table
            });
        // The codewords have been transposed into the leaf table; shelve
        // them for the next commitment.
        for lde in ldes {
            B::F::put_elems(ws, lde);
        }

        let tree = crate::timing::time_kernel(KernelClass::MerkleTree, || {
            GenericMerkleTree::<B>::new_in(leaves, ws)
        });
        Self {
            polys,
            tree,
            degree,
            rate_bits: config.rate_bits,
        }
    }

    /// Commits to polynomials given as values over the size-`N` subgroup
    /// (the trace representation): applies `iNTT^NN` first.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`GenericPolynomialBatch::from_coeffs`].
    pub fn from_values(columns: Vec<Vec<B::F>>, config: &FriConfig) -> Self {
        Self::from_values_in(columns, config, None)
    }

    /// [`GenericPolynomialBatch::from_values`] with an optional
    /// [`Workspace`] (see [`GenericPolynomialBatch::from_coeffs_in`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`GenericPolynomialBatch::from_coeffs`].
    pub fn from_values_in(
        columns: Vec<Vec<B::F>>,
        config: &FriConfig,
        ws: Option<&Workspace>,
    ) -> Self {
        let polys = crate::timing::time_kernel(KernelClass::Ntt, || {
            unizk_field::parallel_map(columns, |mut v| {
                intt_nn(&mut v);
                Polynomial::from_coeffs(v)
            })
        });
        Self::from_coeffs_in(polys, config, ws)
    }

    /// Consumes the batch, shelving its polynomial coefficient buffers and
    /// the Merkle tree's allocations in `ws` for the next job.
    pub fn recycle(self, ws: &Workspace) {
        for p in self.polys {
            B::F::put_elems(Some(ws), p.into_coeffs());
        }
        self.tree.recycle(ws);
    }

    /// The Merkle root (the commitment).
    pub fn root(&self) -> Digest<B::F> {
        self.tree.root()
    }

    /// Number of committed polynomials.
    pub fn num_polys(&self) -> usize {
        self.polys.len()
    }

    /// The degree bound `N` (coefficient count per polynomial).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The LDE domain size `N · 2^rate_bits`.
    pub fn lde_size(&self) -> usize {
        self.degree << self.rate_bits
    }

    /// The committed polynomials (coefficient form).
    pub fn polys(&self) -> &[Polynomial<B::F>] {
        &self.polys
    }

    /// The values of all polynomials at LDE position `index` (bit-reversed
    /// order), i.e. the contents of leaf `index`.
    pub fn leaf(&self, index: usize) -> &[B::F] {
        self.tree.leaf(index)
    }

    /// Merkle authentication path for leaf `index`.
    pub fn prove_leaf(&self, index: usize) -> unizk_hash::MerkleProof<B::F> {
        self.tree.prove(index)
    }

    /// Evaluates every polynomial at an out-of-domain extension point.
    pub fn eval_all_ext(&self, zeta: <B::F as ProtocolField>::Ext) -> Vec<<B::F as ProtocolField>::Ext> {
        self.polys.iter().map(|p| p.eval_ext(zeta)).collect()
    }

    /// The LDE domain point (in the base field) at bit-reversed position
    /// `index`: `g · ω^{rev(index)}`.
    pub fn domain_point(&self, index: usize) -> B::F {
        domain_point(self.lde_size(), index)
    }
}

/// The point of the standard coset LDE domain of size `lde_size` stored at
/// bit-reversed position `index`.
pub fn domain_point<F: PrimeField64>(lde_size: usize, index: usize) -> F {
    let bits = log2_strict(lde_size);
    let omega = F::primitive_root_of_unity(bits);
    coset_shift::<F>() * omega.exp_u64(bit_reverse(index, bits) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::{Ext2, Goldilocks};
    use unizk_testkit::rng::TestRng as StdRng;

    fn random_polys(rng: &mut StdRng, count: usize, degree: usize) -> Vec<Polynomial<Goldilocks>> {
        (0..count)
            .map(|_| {
                Polynomial::from_coeffs((0..degree).map(|_| Goldilocks::random(rng)).collect())
            })
            .collect()
    }

    #[test]
    fn leaf_values_match_polynomial_evaluation() {
        let mut rng = StdRng::seed_from_u64(400);
        let config = FriConfig::for_testing();
        let polys = random_polys(&mut rng, 3, 8);
        let batch = PolynomialBatch::from_coeffs(polys.clone(), &config);

        for index in [0usize, 1, 17, 63] {
            let x = batch.domain_point(index);
            let leaf = batch.leaf(index);
            assert_eq!(leaf.len(), 3);
            for (j, p) in polys.iter().enumerate() {
                assert_eq!(leaf[j], p.eval(x), "poly {j} at index {index}");
            }
        }
    }

    #[test]
    fn from_values_interpolates() {
        let mut rng = StdRng::seed_from_u64(401);
        let config = FriConfig::for_testing();
        let polys = random_polys(&mut rng, 2, 16);
        // Evaluate on H, then recommit from values.
        let mut columns = Vec::new();
        for p in &polys {
            let mut v = p.coeffs().to_vec();
            unizk_ntt::ntt_nn(&mut v);
            columns.push(v);
        }
        let from_vals = PolynomialBatch::from_values(columns, &config);
        let from_coeffs = PolynomialBatch::from_coeffs(polys, &config);
        assert_eq!(from_vals.root(), from_coeffs.root());
    }

    #[test]
    fn commitment_binds_contents() {
        let mut rng = StdRng::seed_from_u64(402);
        let config = FriConfig::for_testing();
        let polys = random_polys(&mut rng, 2, 8);
        let mut tweaked = polys.clone();
        let mut coeffs = tweaked[1].coeffs().to_vec();
        coeffs[3] += Goldilocks::ONE;
        tweaked[1] = Polynomial::from_coeffs(coeffs);
        let a = PolynomialBatch::from_coeffs(polys, &config);
        let b = PolynomialBatch::from_coeffs(tweaked, &config);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn eval_all_ext_matches_base_eval_on_base_points() {
        let mut rng = StdRng::seed_from_u64(403);
        let config = FriConfig::for_testing();
        let polys = random_polys(&mut rng, 4, 8);
        let batch = PolynomialBatch::from_coeffs(polys.clone(), &config);
        let x = Goldilocks::from_u64(999);
        let evals = batch.eval_all_ext(Ext2::from(x));
        for (e, p) in evals.iter().zip(&polys) {
            assert_eq!(*e, Ext2::from(p.eval(x)));
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let _ = PolynomialBatch::from_coeffs(vec![], &FriConfig::for_testing());
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_rejected() {
        let p1 = Polynomial::from_coeffs(vec![Goldilocks::ONE; 8]);
        let p2 = Polynomial::from_coeffs(vec![Goldilocks::ONE; 16]);
        let _ = PolynomialBatch::from_coeffs(vec![p1, p2], &FriConfig::for_testing());
    }

    #[test]
    fn lde_size_accounts_for_blowup() {
        let config = FriConfig::plonky2();
        let polys = vec![Polynomial::from_coeffs(vec![Goldilocks::ONE; 16])];
        let batch = PolynomialBatch::from_coeffs(polys, &config);
        assert_eq!(batch.lde_size(), 16 * 8);
        assert_eq!(batch.degree(), 16);
    }

    #[test]
    fn koalabear_batch_commits_and_evaluates() {
        use unizk_field::{KbExt4, KoalaBear};
        use unizk_hash::Poseidon2KbSponge;

        type KbBatch = GenericPolynomialBatch<Poseidon2KbSponge>;
        let mut rng = StdRng::seed_from_u64(404);
        let config = FriConfig::for_testing();
        let polys: Vec<Polynomial<KoalaBear>> = (0..3)
            .map(|_| {
                Polynomial::from_coeffs((0..8).map(|_| KoalaBear::random(&mut rng)).collect())
            })
            .collect();
        let batch = KbBatch::from_coeffs(polys.clone(), &config);
        for index in [0usize, 1, 17, 63] {
            let x = batch.domain_point(index);
            let leaf = batch.leaf(index);
            for (j, p) in polys.iter().enumerate() {
                assert_eq!(leaf[j], p.eval(x), "poly {j} at index {index}");
            }
        }
        let z = KbExt4::from(KoalaBear::from_u64(31337));
        let evals = batch.eval_all_ext(z);
        assert_eq!(evals.len(), 3);
    }
}
