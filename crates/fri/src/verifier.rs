//! The FRI verifier: transcript replay, grinding check, and per-query
//! Merkle/fold consistency checks.

use core::fmt;

use unizk_field::{log2_strict, ExtensionOf, Field, Polynomial, ProtocolField};
use unizk_hash::{Digest, GenericChallenger, GenericMerkleTree, SpongeBackend};

use crate::config::FriConfig;
use crate::proof::FriProof;
use crate::prover::{fold_pair, pow_ok, FoldDomain};

/// Reasons a FRI proof can be rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FriError {
    /// Proof shape does not match the instance (counts, lengths).
    Malformed(&'static str),
    /// The grinding witness does not satisfy the proof-of-work condition.
    InvalidPow,
    /// A Merkle authentication path failed.
    BadMerkleProof { query: usize, what: &'static str },
    /// A fold step was inconsistent with the committed next layer.
    FoldMismatch { query: usize, round: usize },
    /// The last fold does not match the final polynomial.
    FinalPolyMismatch { query: usize },
}

impl fmt::Display for FriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed proof: {what}"),
            Self::InvalidPow => write!(f, "proof-of-work witness rejected"),
            Self::BadMerkleProof { query, what } => {
                write!(f, "bad merkle proof in query {query}: {what}")
            }
            Self::FoldMismatch { query, round } => {
                write!(f, "fold inconsistency in query {query}, round {round}")
            }
            Self::FinalPolyMismatch { query } => {
                write!(f, "final polynomial mismatch in query {query}")
            }
        }
    }
}

impl std::error::Error for FriError {}

/// Verifies a FRI opening proof.
///
/// `batch_roots` and `batch_num_polys` describe the committed batches (the
/// enclosing protocol has already checked/observed the roots), `degree` is
/// the common degree bound `N`, and `points` the out-of-domain opening
/// points. The `challenger` must be in the same state the prover's was when
/// [`crate::fri_prove`] was called.
///
/// # Errors
///
/// Returns a [`FriError`] describing the first check that failed.
pub fn fri_verify<B: SpongeBackend>(
    batch_roots: &[Digest<B::F>],
    batch_num_polys: &[usize],
    degree: usize,
    points: &[<B::F as ProtocolField>::Ext],
    proof: &FriProof<B::F>,
    challenger: &mut GenericChallenger<B>,
    config: &FriConfig,
) -> Result<(), FriError> {
    type E<B> = <<B as SpongeBackend>::F as ProtocolField>::Ext;
    if batch_roots.len() != batch_num_polys.len() {
        return Err(FriError::Malformed("batch descriptor length mismatch"));
    }
    if proof.openings.len() != points.len() {
        return Err(FriError::Malformed("openings/points mismatch"));
    }
    let lde_size = degree << config.rate_bits;
    let num_rounds = config.num_reduction_rounds(degree);
    if proof.commit_roots.len() != num_rounds {
        return Err(FriError::Malformed("wrong number of fold commitments"));
    }
    if proof.final_poly.len() != config.final_poly_len {
        return Err(FriError::Malformed("wrong final polynomial length"));
    }
    if proof.queries.len() != config.num_queries {
        return Err(FriError::Malformed("wrong number of queries"));
    }

    // Replay the transcript.
    for (t, per_point) in proof.openings.iter().enumerate() {
        if per_point.len() != batch_roots.len() {
            return Err(FriError::Malformed("openings/batches mismatch"));
        }
        for (b, per_batch) in per_point.iter().enumerate() {
            if per_batch.len() != batch_num_polys[b] {
                return Err(FriError::Malformed("openings/polys mismatch"));
            }
            let _ = t;
            for &y in per_batch {
                challenger.observe_ext(y);
            }
        }
    }
    let alpha = challenger.challenge_ext();
    let beta = challenger.challenge_ext();

    let mut fold_betas = Vec::with_capacity(num_rounds);
    for &root in &proof.commit_roots {
        challenger.observe_digest(root);
        fold_betas.push(challenger.challenge_ext());
    }

    for &c in &proof.final_poly {
        challenger.observe_ext(c);
    }

    challenger.observe(proof.pow_witness);
    if !pow_ok(challenger.challenge(), config.proof_of_work_bits) {
        return Err(FriError::InvalidPow);
    }

    // Precompute Y_t = Σ_j α^j y_{j,t}.
    let mut y_combined = vec![E::<B>::ZERO; points.len()];
    for (t, per_point) in proof.openings.iter().enumerate() {
        let mut alpha_pow = E::<B>::ONE;
        for per_batch in per_point {
            for &y in per_batch {
                y_combined[t] += alpha_pow * y;
                alpha_pow *= alpha;
            }
        }
    }

    let final_poly = Polynomial::from_coeffs(proof.final_poly.clone());
    let index_bits = log2_strict(lde_size);
    let initial_domain = FoldDomain::<B::F>::initial(lde_size);

    for (qi, query) in proof.queries.iter().enumerate() {
        let mut idx = challenger.challenge_bits(index_bits);
        if query.initial.len() != batch_roots.len() {
            return Err(FriError::Malformed("query initial openings mismatch"));
        }
        if query.folds.len() != num_rounds {
            return Err(FriError::Malformed("query fold openings mismatch"));
        }

        // Check batch openings and recompute S(x_idx).
        let x = initial_domain.point(idx);
        let mut s_value = E::<B>::ZERO;
        let mut alpha_pow = E::<B>::ONE;
        for (b, opening) in query.initial.iter().enumerate() {
            if opening.leaf.len() != batch_num_polys[b] {
                return Err(FriError::Malformed("query leaf width mismatch"));
            }
            if !GenericMerkleTree::<B>::verify(batch_roots[b], idx, &opening.leaf, &opening.proof) {
                return Err(FriError::BadMerkleProof {
                    query: qi,
                    what: "initial batch",
                });
            }
            for &v in &opening.leaf {
                s_value += alpha_pow.scale(v);
                alpha_pow *= alpha;
            }
        }

        // Combined witness value at x.
        let mut value = E::<B>::ZERO;
        let mut beta_pow = E::<B>::ONE;
        for (t, &z) in points.iter().enumerate() {
            let denom = E::<B>::from(x) - z;
            let inv = denom
                .try_inverse()
                .ok_or(FriError::Malformed("opening point lies on the domain"))?;
            value += beta_pow * (s_value - y_combined[t]) * inv;
            beta_pow *= beta;
        }

        // Fold rounds.
        let mut domain = initial_domain;
        for (round, fold) in query.folds.iter().enumerate() {
            let pair_index = idx >> 1;
            let mut leaf = fold.pair[0].to_base_slice();
            leaf.extend(fold.pair[1].to_base_slice());
            if !GenericMerkleTree::<B>::verify(proof.commit_roots[round], pair_index, &leaf, &fold.proof) {
                return Err(FriError::BadMerkleProof {
                    query: qi,
                    what: "fold layer",
                });
            }
            if fold.pair[idx & 1] != value {
                return Err(FriError::FoldMismatch { query: qi, round });
            }
            value = fold_pair(fold.pair, domain.point(pair_index * 2), fold_betas[round]);
            idx = pair_index;
            domain = domain.fold();
        }

        // Final check against the in-the-clear polynomial.
        let y = E::<B>::from(domain.point(idx));
        if final_poly.eval(y) != value {
            return Err(FriError::FinalPolyMismatch { query: qi });
        }
    }

    Ok(())
}
