//! End-to-end FRI tests: honest proofs verify across configurations, and
//! every class of tampering is rejected — over **both** proving stacks.
//!
//! The whole suite is one field-generic harness over the sponge backend
//! `B`, stamped out for `(Goldilocks, Poseidon)` and
//! `(KoalaBear, Poseidon2)` by the `field_suite!` macro at the bottom: the
//! honest-prover paths and all the corruption cases run identically over
//! the 64-bit degree-2 stack and the 31-bit degree-4 stack.

use unizk_field::{ExtensionOf, Field, Polynomial, ProtocolField};
use unizk_fri::{fri_prove, fri_verify, FriConfig, FriError, GenericPolynomialBatch};
use unizk_hash::sponge::HashField;
use unizk_hash::{Digest, GenericChallenger, Poseidon2KbSponge, PoseidonSponge, SpongeBackend};
use unizk_testkit::rng::TestRng as StdRng;

type E<B> = <<B as SpongeBackend>::F as ProtocolField>::Ext;

/// What one honest proving run hands the verifier: the proof, the batch
/// commitment roots, and the per-batch polynomial counts.
type Proven<B> = (
    unizk_fri::FriProof<<B as SpongeBackend>::F>,
    Vec<Digest<<B as SpongeBackend>::F>>,
    Vec<usize>,
);

fn random_polys<F: HashField>(rng: &mut StdRng, count: usize, degree: usize) -> Vec<Polynomial<F>> {
    (0..count)
        .map(|_| Polynomial::from_coeffs((0..degree).map(|_| F::random(rng)).collect()))
        .collect()
}

fn random_ext<F: ProtocolField>(rng: &mut StdRng) -> F::Ext {
    let limbs: Vec<F> = (0..<F::Ext as ExtensionOf<F>>::DEGREE)
        .map(|_| F::random(rng))
        .collect();
    <F::Ext as ExtensionOf<F>>::from_base_slice(&limbs)
}

struct Instance<B: SpongeBackend> {
    batches: Vec<GenericPolynomialBatch<B>>,
    points: Vec<E<B>>,
    config: FriConfig,
    degree: usize,
}

impl<B: SpongeBackend> Instance<B> {
    fn new(seed: u64, config: FriConfig, batch_sizes: &[usize], degree: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let batches: Vec<GenericPolynomialBatch<B>> = batch_sizes
            .iter()
            .map(|&m| {
                GenericPolynomialBatch::from_coeffs(random_polys(&mut rng, m, degree), &config)
            })
            .collect();
        let points = vec![random_ext::<B::F>(&mut rng), random_ext::<B::F>(&mut rng)];
        Self {
            batches,
            points,
            config,
            degree,
        }
    }

    fn prove(&self) -> Proven<B> {
        let mut challenger = GenericChallenger::<B>::new();
        let roots: Vec<Digest<B::F>> = self.batches.iter().map(|b| b.root()).collect();
        for &r in &roots {
            challenger.observe_digest(r);
        }
        let refs: Vec<&GenericPolynomialBatch<B>> = self.batches.iter().collect();
        let proof = fri_prove(&refs, &self.points, &mut challenger, &self.config);
        let sizes = self.batches.iter().map(|b| b.num_polys()).collect();
        (proof, roots, sizes)
    }

    fn verify(
        &self,
        proof: &unizk_fri::FriProof<B::F>,
        roots: &[Digest<B::F>],
        sizes: &[usize],
    ) -> Result<(), FriError> {
        let mut challenger = GenericChallenger::<B>::new();
        for &r in roots {
            challenger.observe_digest(r);
        }
        fri_verify(
            roots,
            sizes,
            self.degree,
            &self.points,
            proof,
            &mut challenger,
            &self.config,
        )
    }
}

// ---- the generic test bodies, one per property ----

fn honest_proof_verifies_single_batch<B: SpongeBackend>() {
    let inst = Instance::<B>::new(1, FriConfig::for_testing(), &[4], 32);
    let (proof, roots, sizes) = inst.prove();
    inst.verify(&proof, &roots, &sizes).expect("should verify");
}

fn honest_proof_verifies_multiple_batches<B: SpongeBackend>() {
    let inst = Instance::<B>::new(2, FriConfig::for_testing(), &[3, 5, 2], 64);
    let (proof, roots, sizes) = inst.prove();
    inst.verify(&proof, &roots, &sizes).expect("should verify");
}

fn honest_proof_verifies_starky_rate<B: SpongeBackend>() {
    let mut config = FriConfig::starky();
    config.num_queries = 8; // keep the test fast
    config.proof_of_work_bits = 4;
    let inst = Instance::<B>::new(3, config, &[4], 64);
    let (proof, roots, sizes) = inst.prove();
    inst.verify(&proof, &roots, &sizes).expect("should verify");
}

fn honest_proof_verifies_no_fold_rounds<B: SpongeBackend>() {
    // Degree equal to final_poly_len: zero reduction rounds.
    let config = FriConfig::for_testing(); // final_poly_len = 4
    let inst = Instance::<B>::new(4, config, &[2], 4);
    let (proof, roots, sizes) = inst.prove();
    assert!(proof.commit_roots.is_empty());
    inst.verify(&proof, &roots, &sizes).expect("should verify");
}

fn tampered_opening_value_rejected<B: SpongeBackend>() {
    let inst = Instance::<B>::new(5, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.openings[0][0][1] += E::<B>::ONE;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

fn tampered_final_poly_rejected<B: SpongeBackend>() {
    let inst = Instance::<B>::new(6, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.final_poly[0] += E::<B>::ONE;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

fn tampered_query_leaf_rejected<B: SpongeBackend>() {
    let inst = Instance::<B>::new(7, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.queries[0].initial[0].leaf[0] += B::F::ONE;
    let err = inst.verify(&proof, &roots, &sizes).unwrap_err();
    assert!(matches!(err, FriError::BadMerkleProof { .. }), "{err:?}");
}

fn tampered_fold_pair_rejected<B: SpongeBackend>() {
    let inst = Instance::<B>::new(8, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.queries[2].folds[0].pair[0] += E::<B>::ONE;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

fn tampered_commit_root_rejected<B: SpongeBackend>() {
    let inst = Instance::<B>::new(9, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.commit_roots[0] = Digest::ZERO;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

fn wrong_batch_root_rejected<B: SpongeBackend>() {
    let inst = Instance::<B>::new(10, FriConfig::for_testing(), &[3], 32);
    let (proof, mut roots, sizes) = inst.prove();
    roots[0] = Digest::ZERO;
    // The wrong root diverges the transcript before the Merkle checks, so
    // any of several checks may fire; rejection is what matters.
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

fn bad_pow_witness_rejected<B: SpongeBackend>() {
    let inst = Instance::<B>::new(11, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.pow_witness += B::F::ONE;
    // Either the PoW check fires, or (with tiny probability for 4 bits) the
    // transcript diverges and a later check fires.
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

fn truncated_queries_rejected<B: SpongeBackend>() {
    let inst = Instance::<B>::new(12, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.queries.pop();
    assert_eq!(
        inst.verify(&proof, &roots, &sizes),
        Err(FriError::Malformed("wrong number of queries"))
    );
}

fn proof_for_different_points_rejected<B: SpongeBackend>() {
    let mut inst = Instance::<B>::new(13, FriConfig::for_testing(), &[3], 32);
    let (proof, roots, sizes) = inst.prove();
    inst.points[0] += E::<B>::ONE;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

fn proof_sizes_scale_with_queries<B: SpongeBackend>() {
    let small = Instance::<B>::new(14, FriConfig::for_testing(), &[3], 32);
    let (proof_small, ..) = small.prove();
    let mut big_config = FriConfig::for_testing();
    big_config.num_queries *= 2;
    let big = Instance::<B>::new(14, big_config, &[3], 32);
    let (proof_big, ..) = big.prove();
    assert!(proof_big.size_bytes() > proof_small.size_bytes());
}

fn high_degree_witness_cannot_be_proven<B: SpongeBackend>() {
    // A cheating "batch" would need to survive folding; here we check the
    // honest prover asserts if handed a polynomial over the degree bound
    // relative to its own final layer — i.e. the degree check is real. We
    // emulate by committing degree-64 polys but claiming degree 32 at
    // verification: shapes no longer match.
    let inst = Instance::<B>::new(15, FriConfig::for_testing(), &[2], 64);
    let (proof, roots, sizes) = inst.prove();
    let mut challenger = GenericChallenger::<B>::new();
    for &r in &roots {
        challenger.observe_digest(r);
    }
    let result = fri_verify(
        &roots,
        &sizes,
        32, // wrong degree claim
        &inst.points,
        &proof,
        &mut challenger,
        &inst.config,
    );
    assert!(result.is_err());
}

fn malformed_shapes_rejected<B: SpongeBackend>() {
    // Table-driven shape checks: every structural field of the proof is
    // validated before any cryptography runs.
    let inst = Instance::<B>::new(20, FriConfig::for_testing(), &[3], 32);
    let (proof, roots, sizes) = inst.prove();

    // Wrong number of fold commitments.
    let mut p = proof.clone();
    p.commit_roots.pop();
    assert!(matches!(inst.verify(&p, &roots, &sizes), Err(FriError::Malformed(_))));

    // Wrong final polynomial length.
    let mut p = proof.clone();
    p.final_poly.push(E::<B>::ZERO);
    assert!(matches!(inst.verify(&p, &roots, &sizes), Err(FriError::Malformed(_))));

    // Openings for the wrong number of points.
    let mut p = proof.clone();
    p.openings.pop();
    assert!(matches!(inst.verify(&p, &roots, &sizes), Err(FriError::Malformed(_))));

    // A query with a missing fold round.
    let mut p = proof.clone();
    p.queries[0].folds.pop();
    assert!(inst.verify(&p, &roots, &sizes).is_err());

    // A query leaf with the wrong width.
    let mut p = proof.clone();
    p.queries[0].initial[0].leaf.push(B::F::ZERO);
    assert!(inst.verify(&p, &roots, &sizes).is_err());

    // Batch descriptor length mismatch at the API boundary.
    let mut challenger = GenericChallenger::<B>::new();
    for &r in &roots {
        challenger.observe_digest(r);
    }
    assert_eq!(
        fri_verify(&roots, &[3, 5], 32, &inst.points, &proof, &mut challenger, &inst.config),
        Err(FriError::Malformed("batch descriptor length mismatch"))
    );
}

fn serialized_proof_verifies_after_roundtrip<B: SpongeBackend>() {
    let inst = Instance::<B>::new(21, FriConfig::for_testing(), &[2, 3], 64);
    let (proof, roots, sizes) = inst.prove();
    let bytes = proof.to_bytes();
    let back = unizk_fri::FriProof::<B::F>::from_bytes(&bytes).expect("decodes");
    inst.verify(&back, &roots, &sizes).expect("verifies after roundtrip");
}

// ---- stamp the suite out per backend ----

macro_rules! field_suite {
    ($modname:ident, $backend:ty) => {
        mod $modname {
            use super::*;

            #[test]
            fn honest_proof_verifies_single_batch() {
                super::honest_proof_verifies_single_batch::<$backend>();
            }
            #[test]
            fn honest_proof_verifies_multiple_batches() {
                super::honest_proof_verifies_multiple_batches::<$backend>();
            }
            #[test]
            fn honest_proof_verifies_starky_rate() {
                super::honest_proof_verifies_starky_rate::<$backend>();
            }
            #[test]
            fn honest_proof_verifies_no_fold_rounds() {
                super::honest_proof_verifies_no_fold_rounds::<$backend>();
            }
            #[test]
            fn tampered_opening_value_rejected() {
                super::tampered_opening_value_rejected::<$backend>();
            }
            #[test]
            fn tampered_final_poly_rejected() {
                super::tampered_final_poly_rejected::<$backend>();
            }
            #[test]
            fn tampered_query_leaf_rejected() {
                super::tampered_query_leaf_rejected::<$backend>();
            }
            #[test]
            fn tampered_fold_pair_rejected() {
                super::tampered_fold_pair_rejected::<$backend>();
            }
            #[test]
            fn tampered_commit_root_rejected() {
                super::tampered_commit_root_rejected::<$backend>();
            }
            #[test]
            fn wrong_batch_root_rejected() {
                super::wrong_batch_root_rejected::<$backend>();
            }
            #[test]
            fn bad_pow_witness_rejected() {
                super::bad_pow_witness_rejected::<$backend>();
            }
            #[test]
            fn truncated_queries_rejected() {
                super::truncated_queries_rejected::<$backend>();
            }
            #[test]
            fn proof_for_different_points_rejected() {
                super::proof_for_different_points_rejected::<$backend>();
            }
            #[test]
            fn proof_sizes_scale_with_queries() {
                super::proof_sizes_scale_with_queries::<$backend>();
            }
            #[test]
            fn high_degree_witness_cannot_be_proven() {
                super::high_degree_witness_cannot_be_proven::<$backend>();
            }
            #[test]
            fn malformed_shapes_rejected() {
                super::malformed_shapes_rejected::<$backend>();
            }
            #[test]
            fn serialized_proof_verifies_after_roundtrip() {
                super::serialized_proof_verifies_after_roundtrip::<$backend>();
            }
        }
    };
}

field_suite!(goldilocks_poseidon, PoseidonSponge);
field_suite!(koalabear_poseidon2, Poseidon2KbSponge);
