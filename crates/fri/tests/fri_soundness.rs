//! End-to-end FRI tests: honest proofs verify across configurations, and
//! every class of tampering is rejected.

use unizk_testkit::rng::TestRng as StdRng;
use unizk_field::{Ext2, Field, Goldilocks, Polynomial, PrimeField64};
use unizk_fri::{fri_prove, fri_verify, FriConfig, FriError, PolynomialBatch};
use unizk_hash::{Challenger, Digest};

fn random_polys(rng: &mut StdRng, count: usize, degree: usize) -> Vec<Polynomial<Goldilocks>> {
    (0..count)
        .map(|_| Polynomial::from_coeffs((0..degree).map(|_| Goldilocks::random(rng)).collect()))
        .collect()
}

struct Instance {
    batches: Vec<PolynomialBatch>,
    points: Vec<Ext2>,
    config: FriConfig,
    degree: usize,
}

impl Instance {
    fn new(seed: u64, config: FriConfig, batch_sizes: &[usize], degree: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let batches: Vec<PolynomialBatch> = batch_sizes
            .iter()
            .map(|&m| PolynomialBatch::from_coeffs(random_polys(&mut rng, m, degree), &config))
            .collect();
        let points = vec![
            Ext2::random(&mut rng),
            Ext2::random(&mut rng),
        ];
        Self {
            batches,
            points,
            config,
            degree,
        }
    }

    fn prove(&self) -> (unizk_fri::FriProof, Vec<Digest>, Vec<usize>) {
        let mut challenger = Challenger::new();
        let roots: Vec<Digest> = self.batches.iter().map(|b| b.root()).collect();
        for &r in &roots {
            challenger.observe_digest(r);
        }
        let refs: Vec<&PolynomialBatch> = self.batches.iter().collect();
        let proof = fri_prove(&refs, &self.points, &mut challenger, &self.config);
        let sizes = self.batches.iter().map(|b| b.num_polys()).collect();
        (proof, roots, sizes)
    }

    fn verify(
        &self,
        proof: &unizk_fri::FriProof,
        roots: &[Digest],
        sizes: &[usize],
    ) -> Result<(), FriError> {
        let mut challenger = Challenger::new();
        for &r in roots {
            challenger.observe_digest(r);
        }
        fri_verify(
            roots,
            sizes,
            self.degree,
            &self.points,
            proof,
            &mut challenger,
            &self.config,
        )
    }
}

#[test]
fn honest_proof_verifies_single_batch() {
    let inst = Instance::new(1, FriConfig::for_testing(), &[4], 32);
    let (proof, roots, sizes) = inst.prove();
    inst.verify(&proof, &roots, &sizes).expect("should verify");
}

#[test]
fn honest_proof_verifies_multiple_batches() {
    let inst = Instance::new(2, FriConfig::for_testing(), &[3, 5, 2], 64);
    let (proof, roots, sizes) = inst.prove();
    inst.verify(&proof, &roots, &sizes).expect("should verify");
}

#[test]
fn honest_proof_verifies_starky_rate() {
    let mut config = FriConfig::starky();
    config.num_queries = 8; // keep the test fast
    config.proof_of_work_bits = 4;
    let inst = Instance::new(3, config, &[4], 64);
    let (proof, roots, sizes) = inst.prove();
    inst.verify(&proof, &roots, &sizes).expect("should verify");
}

#[test]
fn honest_proof_verifies_no_fold_rounds() {
    // Degree equal to final_poly_len: zero reduction rounds.
    let config = FriConfig::for_testing(); // final_poly_len = 4
    let inst = Instance::new(4, config, &[2], 4);
    let (proof, roots, sizes) = inst.prove();
    assert!(proof.commit_roots.is_empty());
    inst.verify(&proof, &roots, &sizes).expect("should verify");
}

#[test]
fn tampered_opening_value_rejected() {
    let inst = Instance::new(5, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.openings[0][0][1] += Ext2::ONE;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

#[test]
fn tampered_final_poly_rejected() {
    let inst = Instance::new(6, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.final_poly[0] += Ext2::ONE;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

#[test]
fn tampered_query_leaf_rejected() {
    let inst = Instance::new(7, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.queries[0].initial[0].leaf[0] += Goldilocks::ONE;
    let err = inst.verify(&proof, &roots, &sizes).unwrap_err();
    assert!(matches!(err, FriError::BadMerkleProof { .. }), "{err:?}");
}

#[test]
fn tampered_fold_pair_rejected() {
    let inst = Instance::new(8, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.queries[2].folds[0].pair[0] += Ext2::ONE;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

#[test]
fn tampered_commit_root_rejected() {
    let inst = Instance::new(9, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.commit_roots[0] = Digest::ZERO;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

#[test]
fn wrong_batch_root_rejected() {
    let inst = Instance::new(10, FriConfig::for_testing(), &[3], 32);
    let (proof, mut roots, sizes) = inst.prove();
    roots[0] = Digest::ZERO;
    // The wrong root diverges the transcript before the Merkle checks, so
    // any of several checks may fire; rejection is what matters.
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

#[test]
fn bad_pow_witness_rejected() {
    let inst = Instance::new(11, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.pow_witness += Goldilocks::ONE;
    // Either the PoW check fires, or (with tiny probability for 4 bits) the
    // transcript diverges and a later check fires.
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

#[test]
fn truncated_queries_rejected() {
    let inst = Instance::new(12, FriConfig::for_testing(), &[3], 32);
    let (mut proof, roots, sizes) = inst.prove();
    proof.queries.pop();
    assert_eq!(
        inst.verify(&proof, &roots, &sizes),
        Err(FriError::Malformed("wrong number of queries"))
    );
}

#[test]
fn proof_for_different_points_rejected() {
    let mut inst = Instance::new(13, FriConfig::for_testing(), &[3], 32);
    let (proof, roots, sizes) = inst.prove();
    inst.points[0] += Ext2::ONE;
    assert!(inst.verify(&proof, &roots, &sizes).is_err());
}

#[test]
fn proof_sizes_scale_with_queries() {
    let small = Instance::new(14, FriConfig::for_testing(), &[3], 32);
    let (proof_small, ..) = small.prove();
    let mut big_config = FriConfig::for_testing();
    big_config.num_queries *= 2;
    let big = Instance::new(14, big_config, &[3], 32);
    let (proof_big, ..) = big.prove();
    assert!(proof_big.size_bytes() > proof_small.size_bytes());
}

#[test]
fn high_degree_witness_cannot_be_proven() {
    // A cheating "batch" would need to survive folding; here we check the
    // honest prover asserts if handed a polynomial over the degree bound
    // relative to its own final layer — i.e. the degree check is real. We
    // emulate by committing degree-64 polys but claiming degree 32 at
    // verification: shapes no longer match.
    let inst = Instance::new(15, FriConfig::for_testing(), &[2], 64);
    let (proof, roots, sizes) = inst.prove();
    let mut challenger = Challenger::new();
    for &r in &roots {
        challenger.observe_digest(r);
    }
    let result = fri_verify(
        &roots,
        &sizes,
        32, // wrong degree claim
        &inst.points,
        &proof,
        &mut challenger,
        &inst.config,
    );
    assert!(result.is_err());
}

#[test]
fn malformed_shapes_rejected() {
    // Table-driven shape checks: every structural field of the proof is
    // validated before any cryptography runs.
    let inst = Instance::new(20, FriConfig::for_testing(), &[3], 32);
    let (proof, roots, sizes) = inst.prove();

    // Wrong number of fold commitments.
    let mut p = proof.clone();
    p.commit_roots.pop();
    assert!(matches!(inst.verify(&p, &roots, &sizes), Err(FriError::Malformed(_))));

    // Wrong final polynomial length.
    let mut p = proof.clone();
    p.final_poly.push(Ext2::ZERO);
    assert!(matches!(inst.verify(&p, &roots, &sizes), Err(FriError::Malformed(_))));

    // Openings for the wrong number of points.
    let mut p = proof.clone();
    p.openings.pop();
    assert!(matches!(inst.verify(&p, &roots, &sizes), Err(FriError::Malformed(_))));

    // A query with a missing fold round.
    let mut p = proof.clone();
    p.queries[0].folds.pop();
    assert!(inst.verify(&p, &roots, &sizes).is_err());

    // A query leaf with the wrong width.
    let mut p = proof.clone();
    p.queries[0].initial[0].leaf.push(Goldilocks::ZERO);
    assert!(inst.verify(&p, &roots, &sizes).is_err());

    // Batch descriptor length mismatch at the API boundary.
    let mut challenger = Challenger::new();
    for &r in &roots {
        challenger.observe_digest(r);
    }
    assert_eq!(
        fri_verify(&roots, &[3, 5], 32, &inst.points, &proof, &mut challenger, &inst.config),
        Err(FriError::Malformed("batch descriptor length mismatch"))
    );
}

#[test]
fn serialized_proof_verifies_after_roundtrip() {
    let inst = Instance::new(21, FriConfig::for_testing(), &[2, 3], 64);
    let (proof, roots, sizes) = inst.prove();
    let bytes = proof.to_bytes();
    let back = unizk_fri::FriProof::from_bytes(&bytes).expect("decodes");
    inst.verify(&back, &roots, &sizes).expect("verifies after roundtrip");
}
