//! Determinism wall for the proof-of-work grind.
//!
//! [`unizk_fri::grind`] searches nonces with two overshooting parallel
//! axes — packed Poseidon lanes within a block, worker threads across
//! blocks — yet the protocol pins the witness to the **smallest**
//! qualifying nonce and charges `poseidon.permutations` exactly
//! `winner + 1`. This suite checks that contract against a transparent
//! serial scan for transcripts whose winning nonce lands at the very
//! first candidate, inside the first lane group, deep inside one block,
//! and across block boundaries (several parallel waves), under every
//! lane-width × thread-count combination.
//!
//! Like `tests/thread_invariance.rs`, everything here mutates
//! process-global knobs and therefore serializes on one lock, restoring
//! defaults before releasing it.

use std::sync::{Mutex, PoisonError};

use unizk_field::{set_parallelism, Field, Goldilocks};
use unizk_fri::{grind, pow_ok};
use unizk_hash::{set_hash_lanes, Challenger};
use unizk_testkit::trace;

static KNOBS: Mutex<()> = Mutex::new(());

struct Restore;

impl Drop for Restore {
    fn drop(&mut self) {
        set_parallelism(0);
        set_hash_lanes(0);
    }
}

/// Transparent reference: scan nonces 0, 1, 2, … one speculative
/// challenge at a time and return the first that passes.
fn serial_scan(challenger: &Challenger, bits: usize) -> u64 {
    let speculative = challenger.speculative_challenger();
    (0u64..)
        .find(|&nonce| pow_ok(speculative.challenge(Goldilocks::from_u64(nonce)), bits))
        .expect("some nonce qualifies")
}

/// A challenger whose transcript is derived from `seed`.
fn seeded_challenger(seed: u64) -> Challenger {
    let mut challenger = Challenger::new();
    for i in 0..7 {
        challenger.observe(Goldilocks::from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i));
    }
    challenger
}

/// For each difficulty, find transcripts whose reference winner falls in
/// the wanted region, then require `grind` to reproduce both the winner
/// and the counter under every knob combination.
#[test]
fn grind_matches_serial_scan_under_every_knob() {
    let _lock = KNOBS.lock().unwrap_or_else(PoisonError::into_inner);
    let _restore = Restore;

    // (difficulty bits, predicate the reference winner must satisfy,
    //  descriptive region). Regions chosen to cover: an instant hit
    //  (winner 0, "many qualifying nonces" in every block), a hit inside
    //  the first lane group, a hit deep inside the first 512-nonce block,
    //  and a hit past the first block (so several parallel waves run and
    //  early blocks find *no* qualifying nonce).
    type Region = (usize, fn(u64) -> bool, &'static str);
    let regions: [Region; 4] = [
        (0, |w| w == 0, "every nonce qualifies"),
        (2, |w| (1..8).contains(&w), "inside the first lane group"),
        (7, |w| (8..512).contains(&w), "inside the first block"),
        (11, |w| w >= 512, "past the first block"),
    ];

    for (bits, in_region, desc) in regions {
        // Deterministically hunt for a transcript in the region.
        let (seed, want) = (0u64..200)
            .find_map(|seed| {
                let winner = serial_scan(&seeded_challenger(seed), bits);
                in_region(winner).then_some((seed, winner))
            })
            .unwrap_or_else(|| panic!("no transcript found with a winner {desc}"));

        for lanes in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 3, 0] {
                set_hash_lanes(lanes);
                set_parallelism(threads);
                trace::reset();
                let witness = grind(&seeded_challenger(seed), bits);
                assert_eq!(
                    witness.as_u64(),
                    want,
                    "witness drift ({desc}) at lanes={lanes} threads={threads}"
                );
                assert_eq!(
                    trace::snapshot().counters,
                    vec![("poseidon.permutations".to_string(), want + 1)],
                    "counter drift ({desc}) at lanes={lanes} threads={threads}"
                );
            }
        }
    }
}

/// The witness the grind returns must itself satisfy the condition it was
/// mined for — and difficulty 0 must accept nonce zero immediately.
#[test]
fn grind_witness_is_valid() {
    let _lock = KNOBS.lock().unwrap_or_else(PoisonError::into_inner);
    let _restore = Restore;
    set_parallelism(1);

    for bits in [0usize, 3, 9] {
        let challenger = seeded_challenger(0xBEEF);
        let witness = grind(&challenger, bits);
        let response = challenger.speculative_challenger().challenge(witness);
        assert!(pow_ok(response, bits), "witness fails its own check at bits={bits}");
    }
    let zero = grind(&seeded_challenger(1), 0);
    assert_eq!(zero.as_u64(), 0, "difficulty 0 must accept the first nonce");
}
