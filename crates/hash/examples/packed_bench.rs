//! Micro-benchmark: scalar vs lane-packed Poseidon permutation throughput.
//!
//! Run with `cargo run --release -p unizk-hash --example packed_bench`.
//! Prints ns/permutation for the scalar kernel and each supported lane
//! width, both for the full-state batch kernel and the grind-shaped
//! single-row nonce kernel.

use std::time::Instant;

use unizk_field::{Field, Goldilocks};
use unizk_hash::poseidon::poseidon_permute;
use unizk_hash::{NoncePermutation, PackedPermutation, SPONGE_RATE, WIDTH};

const ITERS: usize = 20_000;

fn seed_state(tag: u64) -> [Goldilocks; WIDTH] {
    let mut st = [Goldilocks::ZERO; WIDTH];
    for (i, x) in st.iter_mut().enumerate() {
        *x = Goldilocks::from_u64(tag.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64));
    }
    st
}

fn bench_scalar() -> f64 {
    let mut st = seed_state(1);
    let start = Instant::now();
    for _ in 0..ITERS {
        poseidon_permute(&mut st);
    }
    let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
    std::hint::black_box(st[0].as_canonical_u64());
    ns
}

fn bench_packed<const LANES: usize>() -> f64 {
    let mut states = [[Goldilocks::ZERO; WIDTH]; LANES];
    for (l, st) in states.iter_mut().enumerate() {
        *st = seed_state(l as u64 + 2);
    }
    let rounds = ITERS / LANES;
    let start = Instant::now();
    for _ in 0..rounds {
        PackedPermutation::<LANES>::permute(&mut states);
    }
    let ns = start.elapsed().as_nanos() as f64 / (rounds * LANES) as f64;
    std::hint::black_box(states[0][0].as_canonical_u64());
    ns
}

fn bench_nonce_scalar() -> f64 {
    let perm = NoncePermutation::new(&seed_state(7), SPONGE_RATE - 1);
    let start = Instant::now();
    let mut acc = 0u64;
    for n in 0..ITERS as u64 {
        acc ^= perm.permute_with(Goldilocks::from_u64(n))[SPONGE_RATE - 1].as_canonical_u64();
    }
    let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
    std::hint::black_box(acc);
    ns
}

fn bench_nonce_packed<const LANES: usize>() -> f64 {
    let perm = NoncePermutation::new(&seed_state(7), SPONGE_RATE - 1);
    let rounds = ITERS / LANES;
    let start = Instant::now();
    let mut acc = 0u64;
    for r in 0..rounds as u64 {
        let mut xs = [Goldilocks::ZERO; LANES];
        for (l, x) in xs.iter_mut().enumerate() {
            *x = Goldilocks::from_u64(r * LANES as u64 + l as u64);
        }
        let out = perm.permute_many_row(&xs, SPONGE_RATE - 1);
        for v in out {
            acc ^= v.as_canonical_u64();
        }
    }
    let ns = start.elapsed().as_nanos() as f64 / (rounds * LANES) as f64;
    std::hint::black_box(acc);
    ns
}

fn main() {
    // Warm up constants and the CPU.
    let _ = bench_scalar();

    let scalar = bench_scalar();
    println!("full-state permutation, ns per state:");
    println!("  scalar : {scalar:8.1}");
    for (name, ns) in [
        ("lanes=2", bench_packed::<2>()),
        ("lanes=4", bench_packed::<4>()),
        ("lanes=8", bench_packed::<8>()),
    ] {
        println!("  {name}: {ns:8.1}  ({:.2}x)", scalar / ns);
    }

    let _ = bench_nonce_scalar();
    let nonce_scalar = bench_nonce_scalar();
    println!("grind-shaped nonce permutation (single output row), ns per nonce:");
    println!("  scalar : {nonce_scalar:8.1}");
    for (name, ns) in [
        ("lanes=2", bench_nonce_packed::<2>()),
        ("lanes=4", bench_nonce_packed::<4>()),
        ("lanes=8", bench_nonce_packed::<8>()),
    ] {
        println!("  {name}: {ns:8.1}  ({:.2}x)", nonce_scalar / ns);
    }
}
