//! Known-answer tests for the width-16 Poseidon2 permutation over
//! KoalaBear (4 + 4 external rounds, 20 internal rounds) — the 31-bit
//! mirror of `poseidon2_kat.rs`.
//!
//! Two independent anchors pin the permutation:
//!
//! 1. **Committed golden vectors** — outputs recorded from this
//!    repository's implementation, so any future edit to the round
//!    constants, the `M_E = circ(2·M4, M4, M4, M4)` external matrix, the
//!    `J + diag(d)` internal layer, or the round schedule is a loud
//!    compatibility break.
//! 2. **A naive in-test reference implementation** — plain canonical
//!    `u64 % p` arithmetic (no Montgomery form, no shared-sum factoring),
//!    deriving its matrices from the published [`Poseidon2KbConstants`].
//!    The optimized kernel and the transparent one must agree on random
//!    states, which checks the Montgomery arithmetic end to end, not just
//!    frozen bytes.

use unizk_field::{Field, KoalaBear, PrimeField64};
use unizk_hash::poseidon2_kb::{constants_kb, KB_FULL_ROUNDS, KB_PARTIAL_ROUNDS, KB_WIDTH};
use unizk_hash::poseidon2_kb_permute;
use unizk_testkit::rng::SplitMix64;

/// (input description, input state, expected permutation output).
const KAT: [(&str, [u64; KB_WIDTH], [u64; KB_WIDTH]); 3] = [
    (
        "all-zero state",
        [0; KB_WIDTH],
        [
            0x27ff519c, 0x429b62f1, 0x5ea27edb, 0x51684d82, 0x3015f569, 0x2c848535, 0x0b32a263,
            0x6c3ecdf0, 0x38dad0dc, 0x0eafac0f, 0x78931227, 0x3c6ff442, 0x730f7f31, 0x32274691,
            0x7b6e2426, 0x79b71ccd,
        ],
    ),
    (
        "counting state 0..15",
        [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
        [
            0x070ec9af, 0x4b15880a, 0x04781ce6, 0x4338887b, 0x0f06cfaa, 0x67ad1b76, 0x1121e578,
            0x06777e2b, 0x64f14732, 0x4ee4ce30, 0x356f39ce, 0x0f3dbd48, 0x6925f437, 0x106a92d8,
            0x53e23a5b, 0x4cf5da40,
        ],
    ),
    (
        "near-modulus descending state",
        [
            0x7f000000, 0x7effffff, 0x7efffffe, 0x7efffffd, 0x7efffffc, 0x7efffffb, 0x7efffffa,
            0x7efffff9, 0x7efffff8, 0x7efffff7, 0x7efffff6, 0x7efffff5, 0x7efffff4, 0x7efffff3,
            0x7efffff2, 0x7efffff1,
        ],
        [
            0x1f85124c, 0x548d4265, 0x11ab0666, 0x770f4cac, 0x71728dd1, 0x4935c91a, 0x4f274a52,
            0x2f0d3a87, 0x072d6f4e, 0x2f998143, 0x7969ab52, 0x70d0afcc, 0x2f0c795b, 0x1410a011,
            0x011aeb85, 0x26bee0dd,
        ],
    ),
];

#[test]
fn committed_golden_vectors() {
    for (what, input, expected) in KAT {
        let mut state: [KoalaBear; KB_WIDTH] =
            core::array::from_fn(|i| KoalaBear::from_u64(input[i]));
        poseidon2_kb_permute(&mut state);
        for (i, (got, want)) in state.iter().zip(expected.iter()).enumerate() {
            assert_eq!(got.as_u64(), *want, "{what}: lane {i}");
        }
    }
}

// ---- naive reference: canonical u64 arithmetic mod p ----

const P: u64 = 0x7f00_0001;

fn add(a: u64, b: u64) -> u64 {
    (a + b) % P
}

fn mul(a: u64, b: u64) -> u64 {
    a * b % P
}

fn cube(x: u64) -> u64 {
    mul(mul(x, x), x)
}

/// The published constants rendered to canonical integers.
struct NaiveConstants {
    external_constants: Vec<[u64; KB_WIDTH]>,
    internal_constants: Vec<u64>,
    external_mat: Vec<[u64; KB_WIDTH]>,
    internal_diag: [u64; KB_WIDTH],
}

fn naive_constants() -> NaiveConstants {
    let cs = constants_kb();
    NaiveConstants {
        external_constants: cs
            .external_constants
            .iter()
            .map(|row| core::array::from_fn(|i| row[i].as_u64()))
            .collect(),
        internal_constants: cs.internal_constants.iter().map(|c| c.as_u64()).collect(),
        external_mat: cs
            .external_mat
            .iter()
            .map(|row| core::array::from_fn(|i| row[i].as_u64()))
            .collect(),
        internal_diag: core::array::from_fn(|i| cs.internal_diag[i].as_u64()),
    }
}

fn naive_external_matvec(cs: &NaiveConstants, state: &[u64; KB_WIDTH]) -> [u64; KB_WIDTH] {
    core::array::from_fn(|i| {
        let mut acc = 0;
        for (c, &x) in cs.external_mat[i].iter().zip(state.iter()) {
            acc = add(acc, mul(*c, x));
        }
        acc
    })
}

fn naive_permute(state: &mut [u64; KB_WIDTH]) {
    let cs = naive_constants();
    *state = naive_external_matvec(&cs, state);
    let half = KB_FULL_ROUNDS / 2;
    for r in 0..KB_FULL_ROUNDS {
        if r == half {
            // The internal run sits between the two external halves.
            for ir in 0..KB_PARTIAL_ROUNDS {
                state[0] = cube(add(state[0], cs.internal_constants[ir]));
                let sum = state.iter().fold(0, |a, &b| add(a, b));
                // J + diag(d): every output is the full sum plus d_i·x_i.
                *state = core::array::from_fn(|i| add(sum, mul(cs.internal_diag[i], state[i])));
            }
        }
        for (x, c) in state.iter_mut().zip(cs.external_constants[r].iter()) {
            *x = cube(add(*x, *c));
        }
        *state = naive_external_matvec(&cs, state);
    }
}

#[test]
fn naive_reference_matches_golden_vectors() {
    for (what, input, expected) in KAT {
        let mut state = input;
        naive_permute(&mut state);
        assert_eq!(state, expected, "{what}");
    }
}

#[test]
fn optimized_matches_naive_on_random_states() {
    let mut rng = SplitMix64::seed_from_u64(0x4B41_5431);
    for case in 0..50 {
        let fast_in: [KoalaBear; KB_WIDTH] =
            core::array::from_fn(|_| KoalaBear::random(&mut rng));
        let mut naive: [u64; KB_WIDTH] = core::array::from_fn(|i| fast_in[i].as_u64());
        let mut fast = fast_in;
        poseidon2_kb_permute(&mut fast);
        naive_permute(&mut naive);
        for i in 0..KB_WIDTH {
            assert_eq!(fast[i].as_u64(), naive[i], "case {case}, lane {i}");
        }
    }
}

#[test]
fn outputs_are_canonical() {
    for (what, input, _) in KAT {
        let mut state: [KoalaBear; KB_WIDTH] =
            core::array::from_fn(|i| KoalaBear::from_u64(input[i]));
        poseidon2_kb_permute(&mut state);
        for (i, x) in state.iter().enumerate() {
            assert!(x.as_u64() < P, "{what}: lane {i} not canonical");
        }
    }
}
