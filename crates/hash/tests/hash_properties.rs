//! Property-based tests for the hash layer: Merkle trees over arbitrary
//! shapes, challenger determinism, and sponge collision resistance
//! smoke checks.

use unizk_testkit::prop::prelude::*;
use unizk_field::{Field, Goldilocks};
use unizk_hash::{hash_no_pad, Challenger, MerkleTree};

fn arb_leaf() -> impl Strategy<Value = Vec<Goldilocks>> {
    prop::collection::vec(any::<u64>().prop_map(Goldilocks::from_u64), 1..20)
}

prop! {
    #![cases(24)]

    fn merkle_all_openings_verify(
        log_leaves in 0usize..6,
        seed_leaves in prop::collection::vec(arb_leaf(), 32),
        query in any::<prop::sample::Index>(),
    ) {
        let n = 1 << log_leaves;
        let leaves: Vec<Vec<Goldilocks>> = seed_leaves.into_iter().take(n).collect();
        prop_assume!(leaves.len() == n);
        let tree = MerkleTree::new(leaves.clone());
        let idx = query.index(n);
        let proof = tree.prove(idx);
        prop_assert!(MerkleTree::verify(tree.root(), idx, &leaves[idx], &proof));
        // Wrong index fails (when there is another index).
        if n > 1 {
            prop_assert!(!MerkleTree::verify(tree.root(), (idx + 1) % n, &leaves[idx], &proof));
        }
    }

    fn merkle_root_changes_with_any_leaf(
        log_leaves in 1usize..5,
        seed_leaves in prop::collection::vec(arb_leaf(), 16),
        victim in any::<prop::sample::Index>(),
    ) {
        let n = 1 << log_leaves;
        let leaves: Vec<Vec<Goldilocks>> = seed_leaves.into_iter().take(n).collect();
        prop_assume!(leaves.len() == n);
        let tree = MerkleTree::new(leaves.clone());
        let mut tweaked = leaves;
        let i = victim.index(n);
        tweaked[i][0] += Goldilocks::ONE;
        prop_assert_ne!(MerkleTree::new(tweaked).root(), tree.root());
    }

    fn hash_distinguishes_inputs(a in arb_leaf(), b in arb_leaf()) {
        if a != b {
            prop_assert_ne!(hash_no_pad(&a), hash_no_pad(&b));
        }
    }

    fn challenger_transcript_determinism(
        observations in prop::collection::vec(any::<u64>(), 0..40),
        draws in 1usize..10,
    ) {
        let mut c1 = Challenger::new();
        let mut c2 = Challenger::new();
        for &o in &observations {
            c1.observe(Goldilocks::from_u64(o));
            c2.observe(Goldilocks::from_u64(o));
        }
        prop_assert_eq!(c1.challenges(draws), c2.challenges(draws));
    }

    fn challenger_sensitive_to_any_observation(
        observations in prop::collection::vec(any::<u64>(), 1..20),
        victim in any::<prop::sample::Index>(),
    ) {
        let mut honest = Challenger::new();
        let mut tampered = Challenger::new();
        let i = victim.index(observations.len());
        for (j, &o) in observations.iter().enumerate() {
            honest.observe(Goldilocks::from_u64(o));
            let v = if j == i { o.wrapping_add(1) } else { o };
            tampered.observe(Goldilocks::from_u64(v));
        }
        prop_assert_ne!(honest.challenge(), tampered.challenge());
    }
}
