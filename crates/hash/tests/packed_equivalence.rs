//! Differential wall: the lane-packed Poseidon engine against the scalar
//! permutation.
//!
//! The packed engine is an *execution strategy*, not a different hash:
//! every lane width (1, 2, 4, 8), every batch-size threshold, partial
//! final lane groups, and every absorb length 0..=24 must produce results
//! bit-identical to the scalar `poseidon_permute` path, and the
//! deterministic `poseidon.permutations` counter must not depend on the
//! routing. These properties are what let the prover flip
//! [`set_hash_lanes`] freely without invalidating committed proof bytes.
//!
//! The lane/batch knobs are process-global, so every test here holds one
//! lock and restores the defaults before releasing it (same discipline as
//! `tests/thread_invariance.rs`).

use std::sync::{Mutex, PoisonError};

use unizk_testkit::prop::prelude::*;
use unizk_testkit::trace;

use unizk_field::{Field, Goldilocks};
use unizk_hash::packed::permute_batch;
use unizk_hash::sponge::{compress_level, hash_many, hash_no_pad};
use unizk_hash::{
    poseidon_permute, set_hash_lanes, set_packed_min_batch, Challenger, Digest, NoncePermutation,
    PackedPermutation, SPONGE_RATE, WIDTH,
};

/// Lane widths the dispatchers accept.
const LANE_WIDTHS: [usize; 4] = [1, 2, 4, 8];

static KNOBS: Mutex<()> = Mutex::new(());

/// Runs `f` with the hash knobs set, restoring the defaults afterwards
/// (also on panic, so one failing case cannot poison later tests).
fn with_knobs<T>(lanes: usize, min_batch: usize, f: impl FnOnce() -> T) -> T {
    let _lock = KNOBS.lock().unwrap_or_else(PoisonError::into_inner);
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_hash_lanes(0);
            set_packed_min_batch(0);
        }
    }
    let _restore = Restore;
    set_hash_lanes(lanes);
    set_packed_min_batch(min_batch);
    f()
}

fn arb_elem() -> impl Strategy<Value = Goldilocks> {
    any::<u64>().prop_map(Goldilocks::from_u64)
}

fn arb_state() -> impl Strategy<Value = [Goldilocks; WIDTH]> {
    prop::collection::vec(arb_elem(), WIDTH)
        .prop_map(|v| std::array::from_fn(|i| v[i]))
}

/// Scalar reference for a batch: one `poseidon_permute` per state.
fn scalar_batch(states: &[[Goldilocks; WIDTH]]) -> Vec<[Goldilocks; WIDTH]> {
    let mut out = states.to_vec();
    for s in out.iter_mut() {
        poseidon_permute(s);
    }
    out
}

fn check_packed_width<const L: usize>(pool: &[[Goldilocks; WIDTH]]) {
    let mut lanes: [[Goldilocks; WIDTH]; L] = std::array::from_fn(|i| pool[i]);
    PackedPermutation::<L>::permute(&mut lanes);
    let want = scalar_batch(&pool[..L]);
    for (l, st) in lanes.iter().enumerate() {
        assert_eq!(*st, want[l], "lane {l} of {L} diverged from scalar");
    }
}

prop! {
    #![cases(16)]

    /// Every lane of every packed width equals the scalar permutation of
    /// that lane's input.
    fn packed_permutation_matches_scalar(
        pool in prop::collection::vec(arb_state(), 8),
    ) {
        check_packed_width::<2>(&pool);
        check_packed_width::<4>(&pool);
        check_packed_width::<8>(&pool);
    }

    /// The batched dispatcher is bit-identical to the scalar loop for
    /// every lane knob, threshold, and batch length — including lengths
    /// that leave partial final lane groups behind the chunked dispatch.
    fn permute_batch_matches_scalar_for_every_knob(
        states in prop::collection::vec(arb_state(), 0..20),
    ) {
        let want = scalar_batch(&states);
        for lanes in LANE_WIDTHS {
            for min_batch in [1usize, 2, 4, 1000] {
                let got = with_knobs(lanes, min_batch, || {
                    let mut batch = states.clone();
                    permute_batch(&mut batch);
                    batch
                });
                assert_eq!(
                    got, want,
                    "lanes={lanes} min_batch={min_batch} len={}",
                    states.len()
                );
            }
        }
    }

    /// Leaf hashing through the grouped dispatcher matches per-leaf
    /// absorbs for every lane knob and leaf length.
    fn hash_many_matches_scalar_for_every_knob(
        leaves in prop::collection::vec(prop::collection::vec(arb_elem(), 0..25), 1..13),
    ) {
        let refs: Vec<&[Goldilocks]> = leaves.iter().map(Vec::as_slice).collect();
        let want = with_knobs(1, 2, || hash_many(&refs));
        for lanes in LANE_WIDTHS {
            let got = with_knobs(lanes, 2, || hash_many(&refs));
            assert_eq!(got, want, "lanes={lanes}");
        }
    }

    /// Interior-level compression matches for every lane knob.
    fn compress_level_matches_scalar_for_every_knob(
        pool in prop::collection::vec(arb_state(), 2..14),
    ) {
        let digests: Vec<Digest> = pool
            .iter()
            .map(|st| Digest([st[0], st[1], st[2], st[3]]))
            .collect();
        let even = &digests[..digests.len() & !1];
        let want = with_knobs(1, 2, || compress_level(even));
        for lanes in LANE_WIDTHS {
            let got = with_knobs(lanes, 2, || compress_level(even));
            assert_eq!(got, want, "lanes={lanes}");
        }
    }

    /// The hoisted nonce permutation (grind kernel) matches the scalar
    /// per-nonce path on every lane, for both the full-state and the
    /// single-output-row variants.
    fn nonce_permutation_matches_scalar(
        base in arb_state(),
        nonces in prop::collection::vec(arb_elem(), 8),
        lane_idx in 0usize..SPONGE_RATE,
    ) {
        let hoisted = NoncePermutation::new(&base, lane_idx);
        let xs: [Goldilocks; 8] = std::array::from_fn(|i| nonces[i]);

        let full = hoisted.permute_many::<8>(&xs);
        let pair = hoisted.permute_many::<2>(&[xs[0], xs[1]]);
        let rows = hoisted.permute_many_row::<8>(&xs, SPONGE_RATE - 1);
        for (l, &x) in xs.iter().enumerate() {
            let want = hoisted.permute_with(x);
            assert_eq!(full[l], want, "full-state lane {l}");
            assert_eq!(rows[l], want[SPONGE_RATE - 1], "row lane {l}");
            if l < 2 {
                assert_eq!(pair[l], want, "pair lane {l}");
            }
        }
    }
}

/// Absorb lengths 0..=24 cover zero, sub-rate, exact-rate, and multi-chunk
/// inputs; the digest must not depend on the lane knob for any of them.
#[test]
fn absorb_lengths_zero_to_24_knob_invariant() {
    for len in 0..=24usize {
        let input: Vec<Goldilocks> = (0..len as u64).map(Goldilocks::from_u64).collect();
        let want = with_knobs(1, 2, || hash_no_pad(&input));
        for lanes in LANE_WIDTHS {
            let got = with_knobs(lanes, 2, || hash_no_pad(&input));
            assert_eq!(got, want, "lanes={lanes} absorb length {len}");
        }
    }
}

/// The speculative challenger's uncounted lane batch is the packed edition
/// of its scalar `challenge`: same transcript, same nonce, same element.
#[test]
fn speculative_challenge_batch_matches_scalar() {
    let mut challenger = Challenger::new();
    for i in 0..13u64 {
        challenger.observe(Goldilocks::from_u64(i.wrapping_mul(0x9E37_79B9)));
    }
    let speculative = challenger.speculative_challenger();
    let xs: [Goldilocks; 4] = std::array::from_fn(|i| Goldilocks::from_u64(1000 + i as u64));
    let batch = speculative.challenge_batch_uncounted::<4>(&xs);
    for (l, &x) in xs.iter().enumerate() {
        assert_eq!(batch[l], speculative.challenge(x), "lane {l}");
    }
}

/// The deterministic permutation counter is a *logical* count: identical
/// for every lane width and batch threshold (count-once semantics, like
/// the NTT routing knobs).
#[test]
fn permutation_counter_identical_across_knobs() {
    let leaves: Vec<Vec<Goldilocks>> = (0..9u64)
        .map(|i| (0..(3 + 5 * i) % 25).map(Goldilocks::from_u64).collect())
        .collect();
    let refs: Vec<&[Goldilocks]> = leaves.iter().map(Vec::as_slice).collect();

    let mut reference: Option<Vec<(String, u64)>> = None;
    for lanes in LANE_WIDTHS {
        for min_batch in [1usize, 2, 1000] {
            let counts = with_knobs(lanes, min_batch, || {
                trace::reset();
                let digests = hash_many(&refs);
                let even = &digests[..8];
                let _ = compress_level(even);
                trace::snapshot().counters
            });
            match &reference {
                None => reference = Some(counts),
                Some(want) => assert_eq!(
                    &counts, want,
                    "counter drift at lanes={lanes} min_batch={min_batch}"
                ),
            }
        }
    }
}
