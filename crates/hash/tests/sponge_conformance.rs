//! Backend-generic conformance suite for [`SpongeBackend`].
//!
//! Every shipped backend — the default Poseidon engine (scalar +
//! lane-packed batch dispatch), the non-default Poseidon2 engine, and the
//! KoalaBear-field Poseidon2 engine — must satisfy the same sponge
//! contract: batch permutation bit-identical to the scalar loop,
//! absorb/compress dispatchers equivalent to their one-at-a-time forms,
//! and the usual hash hygiene (determinism, input sensitivity, order
//! sensitivity). Running the identical checks over all backends — across
//! two different base fields — is what makes [`SpongeBackend`] a real
//! seam rather than a single-implementation indirection.

use unizk_field::{Field, Goldilocks, PrimeField64};
use unizk_hash::sponge::{compress_level_with, hash_many_with, hash_no_pad_with, two_to_one_with};
use unizk_hash::{Digest, Poseidon2KbSponge, Poseidon2Sponge, PoseidonSponge, SpongeBackend};
use unizk_testkit::rng::SplitMix64;

fn random_elems<B: SpongeBackend>(rng: &mut SplitMix64, n: usize) -> Vec<B::F> {
    (0..n).map(|_| B::F::random(rng)).collect()
}

fn random_state<B: SpongeBackend>(rng: &mut SplitMix64) -> B::State {
    let mut st = B::zeroed();
    for x in st.as_mut().iter_mut() {
        *x = B::F::random(rng);
    }
    st
}

/// Batch permutation must equal the scalar loop for every batch length,
/// including lengths that leave partial final lane groups.
fn batch_matches_scalar_loop<B: SpongeBackend>() {
    let mut rng = SplitMix64::seed_from_u64(0xC0F0);
    for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31] {
        let states: Vec<B::State> = (0..len).map(|_| random_state::<B>(&mut rng)).collect();
        let mut batched = states.clone();
        B::permute_batch(&mut batched);
        let mut scalar = states;
        for s in scalar.iter_mut() {
            B::permute(s);
        }
        for (i, (b, s)) in batched.iter().zip(scalar.iter()).enumerate() {
            assert_eq!(
                b.as_ref(),
                s.as_ref(),
                "backend {} batch len {len} state {i}",
                B::NAME
            );
        }
    }
}

/// The grouped dispatcher must hash exactly like one absorb per input —
/// across equal-length runs (which it batches) and ragged lengths (which
/// it splits), covering absorb lengths 0..=24.
fn hash_many_matches_hash_no_pad<B: SpongeBackend>() {
    let mut rng = SplitMix64::seed_from_u64(0xC0F1);
    // Ragged lengths 0..=24 plus equal-length runs of each chunk shape.
    let mut lens: Vec<usize> = (0..=24).collect();
    lens.extend([8, 8, 8, 5, 5, 16, 16, 16, 16, 0, 0]);
    let inputs: Vec<Vec<B::F>> = lens
        .iter()
        .map(|&n| random_elems::<B>(&mut rng, n))
        .collect();
    let refs: Vec<&[B::F]> = inputs.iter().map(Vec::as_slice).collect();
    let grouped = hash_many_with::<B>(&refs);
    for (input, digest) in inputs.iter().zip(grouped.iter()) {
        assert_eq!(
            *digest,
            hash_no_pad_with::<B>(input),
            "backend {} input length {}",
            B::NAME,
            input.len()
        );
    }
}

/// Level compression must equal pairwise two-to-one hashing.
fn compress_level_matches_two_to_one<B: SpongeBackend>() {
    let mut rng = SplitMix64::seed_from_u64(0xC0F2);
    for pairs in [1usize, 2, 3, 4, 8, 13] {
        let digests: Vec<Digest<B::F>> = (0..2 * pairs)
            .map(|_| {
                let st = random_state::<B>(&mut rng);
                let s = st.as_ref();
                Digest([s[0], s[1], s[2], s[3]])
            })
            .collect();
        let level = compress_level_with::<B>(&digests);
        assert_eq!(level.len(), pairs);
        for (i, parent) in level.iter().enumerate() {
            assert_eq!(
                *parent,
                two_to_one_with::<B>(digests[2 * i], digests[2 * i + 1]),
                "backend {} pair {i}",
                B::NAME
            );
        }
    }
}

/// Determinism plus sensitivity to content, length, and child order.
fn hash_hygiene<B: SpongeBackend>() {
    let mut rng = SplitMix64::seed_from_u64(0xC0F3);
    let input = random_elems::<B>(&mut rng, 11);

    assert_eq!(
        hash_no_pad_with::<B>(&input),
        hash_no_pad_with::<B>(&input),
        "backend {} must be deterministic",
        B::NAME
    );

    let mut tweaked = input.clone();
    tweaked[3] += B::F::ONE;
    assert_ne!(
        hash_no_pad_with::<B>(&input),
        hash_no_pad_with::<B>(&tweaked),
        "backend {} must be content-sensitive",
        B::NAME
    );

    assert_ne!(
        hash_no_pad_with::<B>(&input),
        hash_no_pad_with::<B>(&input[..10]),
        "backend {} must be length-sensitive",
        B::NAME
    );

    let a = hash_no_pad_with::<B>(&input);
    let b = hash_no_pad_with::<B>(&tweaked);
    assert_ne!(
        two_to_one_with::<B>(a, b),
        two_to_one_with::<B>(b, a),
        "backend {} two-to-one must be order-sensitive",
        B::NAME
    );
}

/// Sanity on the geometry the dispatchers assume: the 4+4 digest packing
/// must fit inside the rate, and the rate inside the width.
fn geometry_sane<B: SpongeBackend>() {
    assert!(B::RATE >= 8, "backend {} rate too small for 4+4 packing", B::NAME);
    assert!(B::RATE < B::WIDTH, "backend {} needs nonzero capacity", B::NAME);
    assert_eq!(B::zeroed().as_ref().len(), B::WIDTH);
}

fn conformance<B: SpongeBackend>() {
    geometry_sane::<B>();
    batch_matches_scalar_loop::<B>();
    hash_many_matches_hash_no_pad::<B>();
    compress_level_matches_two_to_one::<B>();
    hash_hygiene::<B>();
}

#[test]
fn poseidon_backend_conforms() {
    conformance::<PoseidonSponge>();
}

#[test]
fn poseidon2_backend_conforms() {
    conformance::<Poseidon2Sponge>();
}

#[test]
fn poseidon2_kb_backend_conforms() {
    conformance::<Poseidon2KbSponge>();
}

#[test]
fn backends_are_distinct_permutations() {
    let input: Vec<Goldilocks> = (0..8u64).map(Goldilocks::from_u64).collect();
    assert_ne!(
        hash_no_pad_with::<PoseidonSponge>(&input),
        hash_no_pad_with::<Poseidon2Sponge>(&input),
        "the two backends must not collide on trivial inputs"
    );
}

#[test]
fn backend_metadata_is_distinct() {
    assert_ne!(PoseidonSponge::NAME, Poseidon2Sponge::NAME);
    assert_ne!(PoseidonSponge::COUNTER, Poseidon2Sponge::COUNTER);
    assert_ne!(PoseidonSponge::NAME, Poseidon2KbSponge::NAME);
    assert_ne!(PoseidonSponge::COUNTER, Poseidon2KbSponge::COUNTER);
    assert_ne!(Poseidon2Sponge::NAME, Poseidon2KbSponge::NAME);
}
