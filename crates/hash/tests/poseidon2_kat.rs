//! Known-answer tests for the width-12 Poseidon2 permutation (4 + 4
//! external rounds, 22 internal rounds over Goldilocks).
//!
//! Two independent anchors pin the permutation:
//!
//! 1. **Committed golden vectors** — outputs recorded from this
//!    repository's implementation, so any future edit to the round
//!    constants, the `M_E = circ(2·M4, M4, M4)` external matrix, the
//!    `J + diag(d)` internal layer, or the round schedule is a loud
//!    compatibility break.
//! 2. **A naive in-test reference implementation** — plain canonical
//!    field arithmetic (no residue-domain tricks, no shared-sum
//!    factoring), deriving its matrices from the published
//!    [`Poseidon2Constants`]. The optimized kernel and the transparent
//!    one must agree on random states, which checks the *lazy-reduction
//!    budget reasoning*, not just frozen bytes.

use unizk_field::{Field, Goldilocks, PrimeField64};
use unizk_hash::poseidon::{FULL_ROUNDS, PARTIAL_ROUNDS, WIDTH};
use unizk_hash::poseidon2::constants2;
use unizk_hash::poseidon2_permute;
use unizk_testkit::rng::SplitMix64;

/// (input description, input state, expected permutation output).
const KAT: [(&str, [u64; WIDTH], [u64; WIDTH]); 3] = [
    (
        "all-zero state",
        [0; WIDTH],
        [
            0xf4aaee2c5c6c948b, 0x648275006fee080e, 0xe8c7e6518929d453, 0x97bec0e59d3bc0c5,
            0x0b49c836e8452bb2, 0xc37a6847020bd3c6, 0x2346624d9b063b04, 0x6b012017b86d0000,
            0x507bfb232d51f065, 0xb46da5ddc80e0390, 0x6e521066ea3b9fac, 0xa49d9225018cd4ff,
        ],
    ),
    (
        "counting state 0..11",
        [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
        [
            0xbc4eb2e44246eb8a, 0x51ea2767612e77b0, 0xe44840f4325ee6c4, 0x30e28229b6fc3ceb,
            0x4e0ebd652e0bd94a, 0xa8030a78ac3147bb, 0xc1cb76f37497be42, 0x9de4337b5a676631,
            0x874e47f3a8c2d67e, 0xeb80b9c0e1859be1, 0x01099d98b53d8d23, 0xf9f6508f12f17e69,
        ],
    ),
    (
        "high canonical values u64::MAX - i (reduced mod p)",
        [
            u64::MAX,
            u64::MAX - 1,
            u64::MAX - 2,
            u64::MAX - 3,
            u64::MAX - 4,
            u64::MAX - 5,
            u64::MAX - 6,
            u64::MAX - 7,
            u64::MAX - 8,
            u64::MAX - 9,
            u64::MAX - 10,
            u64::MAX - 11,
        ],
        [
            0xb042195e618dee51, 0x931f832b3c844334, 0x0409623faf2cc65c, 0x4335df67c6ec5ee8,
            0xd881cbb95d00081a, 0xd278ef89e2afe65b, 0x5de8484634f55a83, 0x4c3267bbc27454b9,
            0x765afa8f41498505, 0xc494440a0465b841, 0x332fbc7d51dd70ee, 0x4e811f9796ea4bd7,
        ],
    ),
];

/// Transparent reference: dense matrix–vector products and the `x^7`
/// S-box in canonical field arithmetic. Mirrors the Poseidon2 round
/// schedule — initial `M_E` pre-mix, external rounds, internal rounds
/// with the internal matrix built *densely* as `J + diag(d)` — without
/// any of the optimized kernel's shared sums or residue laziness.
fn naive_poseidon2(state: &mut [Goldilocks; WIDTH]) {
    let cs = constants2();

    let matvec = |m: &[[Goldilocks; WIDTH]; WIDTH], s: &[Goldilocks; WIDTH]| {
        let mut out = [Goldilocks::ZERO; WIDTH];
        for (o, row) in out.iter_mut().zip(m.iter()) {
            for (c, x) in row.iter().zip(s.iter()) {
                *o += *c * *x;
            }
        }
        out
    };
    let sbox = |x: Goldilocks| {
        let x2 = x * x;
        let x4 = x2 * x2;
        x4 * x2 * x
    };

    // Internal matrix, materialized densely: all-ones plus the diagonal.
    let mut internal_mat = [[Goldilocks::ONE; WIDTH]; WIDTH];
    for (i, row) in internal_mat.iter_mut().enumerate() {
        row[i] += cs.internal_diag[i];
    }

    *state = matvec(&cs.external_mat, state);
    for r in 0..FULL_ROUNDS / 2 {
        for (x, c) in state.iter_mut().zip(cs.external_constants[r].iter()) {
            *x = sbox(*x + *c);
        }
        *state = matvec(&cs.external_mat, state);
    }
    for r in 0..PARTIAL_ROUNDS {
        state[0] = sbox(state[0] + cs.internal_constants[r]);
        *state = matvec(&internal_mat, state);
    }
    for r in FULL_ROUNDS / 2..FULL_ROUNDS {
        for (x, c) in state.iter_mut().zip(cs.external_constants[r].iter()) {
            *x = sbox(*x + *c);
        }
        *state = matvec(&cs.external_mat, state);
    }
}

#[test]
fn round_structure_matches_poseidon() {
    // The backends are cost-model-identical: same width, same round counts.
    assert_eq!(WIDTH, 12);
    assert_eq!(FULL_ROUNDS, 8);
    assert_eq!(PARTIAL_ROUNDS, 22);
}

#[test]
fn permutation_matches_golden_vectors() {
    for (desc, input, expected) in KAT {
        let mut state: [Goldilocks; WIDTH] = input.map(Goldilocks::from_u64);
        poseidon2_permute(&mut state);
        let got: [u64; WIDTH] = state.map(|x| x.as_u64());
        assert_eq!(got, expected, "KAT mismatch for {desc}");
    }
}

#[test]
fn naive_reference_matches_golden_vectors() {
    for (desc, input, expected) in KAT {
        let mut state: [Goldilocks; WIDTH] = input.map(Goldilocks::from_u64);
        naive_poseidon2(&mut state);
        let got: [u64; WIDTH] = state.map(|x| x.as_u64());
        assert_eq!(got, expected, "naive reference mismatch for {desc}");
    }
}

#[test]
fn optimized_matches_naive_on_random_states() {
    let mut rng = SplitMix64::seed_from_u64(0x5053_4432);
    for case in 0..64 {
        let mut fast = [Goldilocks::ZERO; WIDTH];
        for x in fast.iter_mut() {
            *x = Goldilocks::random(&mut rng);
        }
        let mut slow = fast;
        poseidon2_permute(&mut fast);
        naive_poseidon2(&mut slow);
        assert_eq!(fast, slow, "case {case}");
    }
}

#[test]
fn outputs_are_canonical() {
    const P: u64 = 0xffff_ffff_0000_0001;
    for (desc, _, expected) in KAT {
        for limb in expected {
            assert!(limb < P, "non-canonical golden limb in {desc}");
        }
    }
}
