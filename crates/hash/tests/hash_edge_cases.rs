//! Edge cases for the hash substrate: degenerate Merkle trees, openings at
//! the domain boundaries, chunked-vs-unchunked leaf hashing, and duplex
//! challenger absorb lengths crossing every buffer boundary.
//!
//! The chunked hashing paths in `merkle` are execution strategies; this
//! suite pins the claim that chunk size and worker count are invisible in
//! every digest. Tests that flip the process-global parallelism override
//! serialize on a lock and restore the default before releasing it.

use std::sync::Mutex;

use unizk_field::{set_parallelism, Field, Goldilocks};
use unizk_hash::merkle::hash_leaves;
use unizk_hash::{hash_no_pad, two_to_one, Challenger, MerkleTree, SPONGE_RATE};

static PARALLELISM_KNOB: Mutex<()> = Mutex::new(());

/// Restores the parallelism override even on assertion failure.
struct KnobGuard;

impl Drop for KnobGuard {
    fn drop(&mut self) {
        set_parallelism(0);
    }
}

fn g(n: u64) -> Goldilocks {
    Goldilocks::from_u64(n)
}

/// Deterministic variable-width leaves: leaf `i` has `3 + (i % 5)` elements.
fn leaves(n: usize) -> Vec<Vec<Goldilocks>> {
    (0..n)
        .map(|i| (0..3 + i % 5).map(|j| g((i * 100 + j) as u64)).collect())
        .collect()
}

#[test]
fn single_leaf_tree_is_the_leaf_hash() {
    let data = leaves(1);
    let tree = MerkleTree::new(data.clone());
    assert_eq!(tree.height(), 0);
    assert_eq!(tree.num_leaves(), 1);
    // With no interior nodes the commitment is the leaf digest itself.
    assert_eq!(tree.root(), hash_no_pad(&data[0]));
    let proof = tree.prove(0);
    assert!(proof.siblings.is_empty());
    assert_eq!(proof.size_bytes(), 0);
    assert!(MerkleTree::verify(tree.root(), 0, &data[0], &proof));
    // An out-of-range index must be rejected, not wrap around.
    assert!(!MerkleTree::verify(tree.root(), 1, &data[0], &proof));
}

#[test]
fn two_leaf_tree_is_one_compression() {
    let data = leaves(2);
    let tree = MerkleTree::new(data.clone());
    assert_eq!(tree.height(), 1);
    let (h0, h1) = (hash_no_pad(&data[0]), hash_no_pad(&data[1]));
    assert_eq!(tree.root(), two_to_one(h0, h1));
    // Each opening is exactly the sibling digest.
    assert_eq!(tree.prove(0).siblings, vec![h1]);
    assert_eq!(tree.prove(1).siblings, vec![h0]);
    for i in [0, 1] {
        assert!(MerkleTree::verify(tree.root(), i, &data[i], &tree.prove(i)));
    }
    // The two openings are not interchangeable: position is authenticated.
    assert!(!MerkleTree::verify(tree.root(), 1, &data[0], &tree.prove(0)));
    assert!(!MerkleTree::verify(tree.root(), 0, &data[1], &tree.prove(1)));
}

#[test]
fn openings_at_first_and_last_leaf() {
    for n in [2usize, 4, 32, 128] {
        let data = leaves(n);
        let tree = MerkleTree::new(data.clone());
        for index in [0, n - 1] {
            let proof = tree.prove(index);
            assert_eq!(proof.siblings.len(), tree.height());
            assert!(
                MerkleTree::verify(tree.root(), index, &data[index], &proof),
                "opening at index {index} of {n} leaves"
            );
        }
        // A boundary proof replayed at the opposite boundary must fail.
        assert!(!MerkleTree::verify(tree.root(), n - 1, &data[0], &tree.prove(0)));
        assert!(!MerkleTree::verify(tree.root(), 0, &data[n - 1], &tree.prove(n - 1)));
    }
}

#[test]
fn hash_leaves_chunking_is_invisible() {
    let _lock = PARALLELISM_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = KnobGuard;
    // 37 leaves: not a multiple of any tested chunk size, so ragged final
    // chunks are exercised; 128 leaves covers the exact-multiple case.
    for n in [37usize, 128] {
        let data = leaves(n);
        let reference: Vec<_> = data.iter().map(|l| hash_no_pad(l)).collect();
        for threads in [1usize, 3, 8] {
            set_parallelism(threads);
            for chunk_size in [1usize, 2, 3, 5, 7, 16, 37, 64, 128, 1000] {
                assert_eq!(
                    hash_leaves(&data, chunk_size),
                    reference,
                    "n={n} threads={threads} chunk_size={chunk_size}"
                );
            }
        }
    }
}

#[test]
fn merkle_root_invariant_under_parallelism() {
    let _lock = PARALLELISM_KNOB.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = KnobGuard;
    let data = leaves(256);
    set_parallelism(1);
    let serial = MerkleTree::new(data.clone());
    for threads in [2usize, 4, 0] {
        set_parallelism(threads);
        let tree = MerkleTree::new(data.clone());
        assert_eq!(tree.root(), serial.root(), "root differs at threads={threads}");
        assert_eq!(
            tree.prove(255).siblings,
            serial.prove(255).siblings,
            "proof differs at threads={threads}"
        );
    }
}

#[test]
fn challenger_absorb_lengths_match_unbatched_reference() {
    // Lengths 0..=24 cross the empty transcript, partial buffers, exact
    // rate multiples (8, 16, 24), and every off-by-one around them.
    for len in 0usize..=24 {
        let xs: Vec<Goldilocks> = (0..len).map(|i| g((i as u64 + 1) * 0x9E37)).collect();

        let mut batched = Challenger::new();
        batched.observe_slice(&xs);

        let mut unbatched = Challenger::new();
        for &x in &xs {
            unbatched.observe(x);
        }

        // The speculative fast paths must agree with the plain transcript
        // at every pending-buffer depth (len % SPONGE_RATE).
        let probe = g(0xFEED);
        let speculative = batched.speculative_challenge(probe);
        let reusable = batched.speculative_challenger().challenge(probe);
        {
            let mut t = unbatched.clone();
            t.observe(probe);
            assert_eq!(speculative, t.challenge(), "speculative at len={len}");
            assert_eq!(reusable, speculative, "nonce permutation at len={len}");
        }

        assert_eq!(
            batched.challenges(SPONGE_RATE + 2),
            unbatched.challenges(SPONGE_RATE + 2),
            "challenge stream diverges at absorb length {len}"
        );
    }
}

#[test]
fn challenger_digest_and_slice_observation_agree() {
    let d = hash_no_pad(&[g(7), g(8)]);
    let mut via_digest = Challenger::new();
    via_digest.observe_digest(d);
    let mut via_slice = Challenger::new();
    via_slice.observe_slice(&d.0);
    assert_eq!(via_digest.challenge(), via_slice.challenge());
}
