//! Known-answer tests for the width-12 Poseidon permutation (8 full + 22
//! partial rounds over Goldilocks).
//!
//! The reference outputs were produced by this repository's own
//! implementation and committed as constants, pinning the permutation —
//! round constants, MDS matrix, sparse partial-round matrices, and the
//! x^7 S-box schedule — against accidental change. Any future edit to the
//! hash stack that alters these outputs is a compatibility break and must
//! be flagged, not silently absorbed.

use unizk_field::{Field, Goldilocks};
use unizk_hash::poseidon::{poseidon_permute, FULL_ROUNDS, PARTIAL_ROUNDS, WIDTH};

/// (input description, input state, expected permutation output).
const KAT: [(&str, [u64; WIDTH], [u64; WIDTH]); 3] = [
    (
        "all-zero state",
        [0; WIDTH],
        [
            0x3ccd24594289f9fc, 0x50d2f5d990940c17, 0x41db33842788ffeb, 0xa64f5928a8ace7d5,
            0xd424466c4e966c56, 0xaf0a88e8ad36ae31, 0xbdfcf40d7a3fdd9f, 0xc6961d24244e6eed,
            0x6c7a77ceca1537da, 0x80c6a53ba2d3a972, 0x29a09b900aaf2a37, 0xec9eeaa20b0582bf,
        ],
    ),
    (
        "counting state 0..11",
        [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11],
        [
            0x847b77ecddcef749, 0x957f5e3e763a33db, 0x61533bb1d7f78dde, 0x13ab4c99ca7b6d9b,
            0x804222554e0588d5, 0x99b3bb45368f0f56, 0x42d1c13885d43b95, 0xb52174b6aa3e3749,
            0x6bdd20265062eeaf, 0xe542e5c7ba8b11cf, 0x12ac313f77c57f15, 0xafc0808c9b428af3,
        ],
    ),
    (
        "high canonical values u64::MAX - i (reduced mod p)",
        [
            u64::MAX,
            u64::MAX - 1,
            u64::MAX - 2,
            u64::MAX - 3,
            u64::MAX - 4,
            u64::MAX - 5,
            u64::MAX - 6,
            u64::MAX - 7,
            u64::MAX - 8,
            u64::MAX - 9,
            u64::MAX - 10,
            u64::MAX - 11,
        ],
        [
            0x52afb6394d481369, 0x313dc4a367d8b86d, 0x62fce2382e1794a9, 0x08f6c31fa49790c6,
            0xee7cb90d07f4d7a0, 0x34fac6a5d8517197, 0xb7b7f57181379359, 0xf71930e87e5a3032,
            0x2f43ef58ad177545, 0x05b861a311c65153, 0x5d91b3636b1a3d61, 0xab47250a047cfa41,
        ],
    ),
];

#[test]
fn round_structure_matches_paper() {
    assert_eq!(WIDTH, 12);
    assert_eq!(FULL_ROUNDS, 8);
    assert_eq!(PARTIAL_ROUNDS, 22);
}

#[test]
fn permutation_matches_golden_vectors() {
    for (desc, input, expected) in KAT {
        let mut state: [Goldilocks; WIDTH] = input.map(Goldilocks::from_u64);
        poseidon_permute(&mut state);
        let got: [u64; WIDTH] = state.map(|x| x.as_u64());
        assert_eq!(got, expected, "KAT mismatch for {desc}");
    }
}

#[test]
fn outputs_are_canonical() {
    const P: u64 = 0xffff_ffff_0000_0001;
    for (desc, _, expected) in KAT {
        for limb in expected {
            assert!(limb < P, "non-canonical golden limb in {desc}");
        }
    }
}

#[test]
fn permutation_is_not_identity_or_constant() {
    // Sanity on the KAT table itself: distinct inputs map to distinct
    // outputs, and no output equals its input.
    for (desc, input, expected) in KAT {
        assert_ne!(input, expected, "{desc}");
    }
    assert_ne!(KAT[0].2, KAT[1].2);
    assert_ne!(KAT[1].2, KAT[2].2);
}
