//! Sponge hashing and the duplex challenger for Fiat–Shamir transforms.
//!
//! Plonky2 hashes arbitrary-length inputs with the "absorb" method (paper
//! §5.3): chunks of `SPONGE_RATE = 8` elements overwrite the state prefix,
//! followed by a permutation. The challenger is a duplex construction that
//! alternately absorbs protocol messages and squeezes verifier randomness —
//! the "Get Challenges" nodes in the paper's Fig. 7 computation graph.

use unizk_field::{Ext2, Field, Goldilocks};

use crate::digest::Digest;
use crate::poseidon::{poseidon_permute, NoncePermutation, SPONGE_RATE, WIDTH};

/// A width-12 permutation a sponge can be built over.
///
/// The default proof path always runs [`PoseidonSponge`]; the trait exists
/// so alternative permutations ([`crate::poseidon2::Poseidon2Sponge`]) plug
/// into the same absorb/compress dispatchers — including the batched,
/// lane-packed ones — without touching the protocol code. Implementations
/// must keep [`SpongeBackend::permute_batch`] bit-identical to a loop of
/// [`SpongeBackend::permute`]; the conformance suite checks this for every
/// shipped backend.
pub trait SpongeBackend {
    /// Human-readable backend name.
    const NAME: &'static str;
    /// Trace-counter key for logical permutation counts.
    const COUNTER: &'static str;

    /// Applies the permutation to one sponge state in place.
    fn permute(state: &mut [Goldilocks; WIDTH]);

    /// Applies the permutation to a batch of independent sponge states.
    ///
    /// The default runs the scalar permutation per state; backends with a
    /// packed engine override this with a lane-parallel dispatch. Either
    /// way the results must be bit-identical to the scalar loop, and trace
    /// counters are the caller's responsibility (batched dispatchers
    /// account logical permutations once, not per strategy).
    fn permute_batch(states: &mut [[Goldilocks; WIDTH]]) {
        for s in states.iter_mut() {
            Self::permute(s);
        }
    }
}

/// The default backend: the Poseidon permutation of
/// [`crate::poseidon`], with batches routed through the lane-packed engine
/// in [`crate::packed`].
#[derive(Clone, Copy, Debug)]
pub struct PoseidonSponge;

impl SpongeBackend for PoseidonSponge {
    const NAME: &'static str = "poseidon";
    const COUNTER: &'static str = "poseidon.permutations";

    fn permute(state: &mut [Goldilocks; WIDTH]) {
        poseidon_permute(state);
    }

    fn permute_batch(states: &mut [[Goldilocks; WIDTH]]) {
        crate::packed::permute_batch(states);
    }
}

/// Absorbs `input` into a zero state with backend `B`, without touching
/// trace counters (callers account logical permutations).
fn absorb_no_pad<B: SpongeBackend>(input: &[Goldilocks]) -> Digest {
    let mut state = [Goldilocks::ZERO; WIDTH];
    for chunk in input.chunks(SPONGE_RATE) {
        state[..chunk.len()].copy_from_slice(chunk);
        B::permute(&mut state);
    }
    Digest([state[0], state[1], state[2], state[3]])
}

/// [`hash_no_pad`] over an arbitrary sponge backend.
pub fn hash_no_pad_with<B: SpongeBackend>(input: &[Goldilocks]) -> Digest {
    unizk_testkit::trace::counter(B::COUNTER, input.len().div_ceil(SPONGE_RATE) as u64);
    absorb_no_pad::<B>(input)
}

/// Hashes a slice of field elements to a [`Digest`] with the absorb method,
/// no padding (lengths are fixed by the protocol, as in Plonky2).
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
/// use unizk_hash::hash_no_pad;
///
/// let a = hash_no_pad(&[Goldilocks::ONE]);
/// let b = hash_no_pad(&[Goldilocks::TWO]);
/// assert_ne!(a, b);
/// ```
pub fn hash_no_pad(input: &[Goldilocks]) -> Digest {
    hash_no_pad_with::<PoseidonSponge>(input)
}

/// Number of Poseidon permutations [`hash_no_pad`] performs for an input of
/// `len` elements — the unit the simulator's Merkle cost model charges.
pub fn permutation_count(len: usize) -> usize {
    len.div_ceil(SPONGE_RATE).max(1)
}

/// [`two_to_one`] over an arbitrary sponge backend.
pub fn two_to_one_with<B: SpongeBackend>(left: Digest, right: Digest) -> Digest {
    unizk_testkit::trace::counter(B::COUNTER, 1);
    let mut state = [Goldilocks::ZERO; WIDTH];
    state[..4].copy_from_slice(&left.0);
    state[4..8].copy_from_slice(&right.0);
    B::permute(&mut state);
    Digest([state[0], state[1], state[2], state[3]])
}

/// Hashes two child digests into a parent digest: 4 + 4 elements, zero
/// padded to a full state (paper §5.3).
pub fn two_to_one(left: Digest, right: Digest) -> Digest {
    two_to_one_with::<PoseidonSponge>(left, right)
}

/// Hashes many inputs with backend `B` in one batched dispatch: runs of
/// equal-length inputs absorb in lockstep through
/// [`SpongeBackend::permute_batch`], so lane-packed backends permute 4–8
/// sponges per schedule walk instead of one.
///
/// Digest-for-digest identical to mapping [`hash_no_pad_with`] over
/// `inputs`, with the identical total `B::COUNTER` accounting (counted
/// once per logical permutation, independent of lane width or batch
/// grouping).
pub fn hash_many_with<B: SpongeBackend>(inputs: &[&[Goldilocks]]) -> Vec<Digest> {
    let total: u64 = inputs
        .iter()
        .map(|input| input.len().div_ceil(SPONGE_RATE) as u64)
        .sum();
    unizk_testkit::trace::counter(B::COUNTER, total);

    let mut out = Vec::with_capacity(inputs.len());
    let mut i = 0;
    while i < inputs.len() {
        let len = inputs[i].len();
        let mut j = i + 1;
        while j < inputs.len() && inputs[j].len() == len {
            j += 1;
        }
        hash_equal_run::<B>(&inputs[i..j], len, &mut out);
        i = j;
    }
    out
}

/// Absorbs a run of equal-length inputs in lockstep.
fn hash_equal_run<B: SpongeBackend>(run: &[&[Goldilocks]], len: usize, out: &mut Vec<Digest>) {
    if run.len() < 2 || len == 0 {
        out.extend(run.iter().map(|input| absorb_no_pad::<B>(input)));
        return;
    }
    let mut states = vec![[Goldilocks::ZERO; WIDTH]; run.len()];
    let mut pos = 0;
    while pos < len {
        let take = (len - pos).min(SPONGE_RATE);
        for (state, input) in states.iter_mut().zip(run.iter()) {
            state[..take].copy_from_slice(&input[pos..pos + take]);
        }
        B::permute_batch(&mut states);
        pos += take;
    }
    out.extend(states.iter().map(|s| Digest([s[0], s[1], s[2], s[3]])));
}

/// [`hash_many_with`] over the default Poseidon backend.
pub fn hash_many(inputs: &[&[Goldilocks]]) -> Vec<Digest> {
    hash_many_with::<PoseidonSponge>(inputs)
}

/// Compresses one interior Merkle level in a single batched dispatch:
/// digest pairs `(prev[2k], prev[2k+1])` become parents via the same
/// 4+4+zero-pad rule as [`two_to_one_with`], absorbed in lockstep through
/// [`SpongeBackend::permute_batch`].
///
/// Digest-for-digest and counter-for-counter identical to mapping
/// [`two_to_one_with`] over the pairs.
///
/// # Panics
///
/// Panics if `prev.len()` is odd.
pub fn compress_level_with<B: SpongeBackend>(prev: &[Digest]) -> Vec<Digest> {
    assert!(prev.len().is_multiple_of(2), "pair compression needs an even level");
    let n = prev.len() / 2;
    unizk_testkit::trace::counter(B::COUNTER, n as u64);
    let mut states = vec![[Goldilocks::ZERO; WIDTH]; n];
    for (state, pair) in states.iter_mut().zip(prev.chunks_exact(2)) {
        state[..4].copy_from_slice(&pair[0].0);
        state[4..8].copy_from_slice(&pair[1].0);
    }
    B::permute_batch(&mut states);
    states.iter().map(|s| Digest([s[0], s[1], s[2], s[3]])).collect()
}

/// [`compress_level_with`] over the default Poseidon backend.
pub fn compress_level(prev: &[Digest]) -> Vec<Digest> {
    compress_level_with::<PoseidonSponge>(prev)
}

/// A duplex-sponge transcript for the Fiat–Shamir transform.
///
/// Both prover and verifier drive an identical `Challenger` with the same
/// observations; the squeezed challenges then agree, making the protocol
/// non-interactive.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
/// use unizk_hash::Challenger;
///
/// let mut prover = Challenger::new();
/// prover.observe(Goldilocks::from_u64(99));
/// let c1 = prover.challenge();
///
/// let mut verifier = Challenger::new();
/// verifier.observe(Goldilocks::from_u64(99));
/// assert_eq!(c1, verifier.challenge());
/// ```
#[derive(Clone, Debug)]
pub struct Challenger {
    state: [Goldilocks; WIDTH],
    input_buffer: Vec<Goldilocks>,
    output_buffer: Vec<Goldilocks>,
}

impl Default for Challenger {
    fn default() -> Self {
        Self::new()
    }
}

impl Challenger {
    /// A fresh transcript with zero state.
    pub fn new() -> Self {
        Self {
            state: [Goldilocks::ZERO; WIDTH],
            input_buffer: Vec::new(),
            output_buffer: Vec::new(),
        }
    }

    /// Absorbs one field element.
    pub fn observe(&mut self, x: Goldilocks) {
        // New inputs invalidate any cached outputs.
        self.output_buffer.clear();
        self.input_buffer.push(x);
        if self.input_buffer.len() == SPONGE_RATE {
            self.duplex();
        }
    }

    /// Absorbs a slice of elements.
    pub fn observe_slice(&mut self, xs: &[Goldilocks]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Absorbs a digest (e.g. a Merkle cap entry).
    pub fn observe_digest(&mut self, d: Digest) {
        self.observe_slice(&d.0);
    }

    /// Absorbs an extension-field element limb by limb.
    pub fn observe_ext(&mut self, x: Ext2) {
        self.observe(x.real());
        self.observe(x.imag());
    }

    /// Squeezes one base-field challenge.
    pub fn challenge(&mut self) -> Goldilocks {
        if !self.input_buffer.is_empty() || self.output_buffer.is_empty() {
            self.duplex();
        }
        self.output_buffer
            .pop()
            .expect("duplex always refills the output buffer")
    }

    /// Squeezes `n` base-field challenges.
    pub fn challenges(&mut self, n: usize) -> Vec<Goldilocks> {
        (0..n).map(|_| self.challenge()).collect()
    }

    /// Squeezes one extension-field challenge (two base challenges).
    pub fn challenge_ext(&mut self) -> Ext2 {
        let a = self.challenge();
        let b = self.challenge();
        Ext2::new(a, b)
    }

    /// Squeezes challenge bits for query-index sampling: a base challenge
    /// reduced to `bits` low bits.
    pub fn challenge_bits(&mut self, bits: usize) -> usize {
        assert!(bits < 64, "at most 63 challenge bits");
        usize::try_from(self.challenge().as_u64() & ((1 << bits) - 1))
            .expect("query-index bits fit usize")
    }

    /// The challenge that `{ let mut t = self.clone(); t.observe(x);
    /// t.challenge() }` would produce, computed without cloning the
    /// transcript or touching the heap.
    ///
    /// The proof-of-work grind evaluates this once per candidate nonce, so
    /// the per-attempt cost must be one permutation and nothing else.
    /// Correctness: after any public-API call the input buffer holds
    /// `k <= 7` pending elements, so observing one more element followed by
    /// a squeeze performs exactly one duplex — either inside `observe`
    /// (`k == 7` fills the rate) or inside `challenge` (`k < 7` leaves the
    /// input buffer non-empty) — absorbing `pending ++ [x]` over the state
    /// prefix and popping the last rate element. Counter parity matches:
    /// one `poseidon.permutations` bump per call.
    pub fn speculative_challenge(&self, x: Goldilocks) -> Goldilocks {
        unizk_testkit::trace::counter("poseidon.permutations", 1);
        let mut state = self.state;
        state[..self.input_buffer.len()].copy_from_slice(&self.input_buffer);
        state[self.input_buffer.len()] = x;
        poseidon_permute(&mut state);
        state[SPONGE_RATE - 1]
    }

    /// A reusable form of [`Self::speculative_challenge`] for loops that
    /// probe many candidates against one transcript state — the FRI grind.
    ///
    /// Every candidate sees the identical permutation input except the one
    /// lane holding the candidate itself, so the static lanes' first-round
    /// work is hoisted once into a [`NoncePermutation`]; each
    /// [`SpeculativeChallenger::challenge`] then costs one (logical)
    /// permutation, bit-identical to `speculative_challenge` and with the
    /// same one-bump counter parity.
    pub fn speculative_challenger(&self) -> SpeculativeChallenger {
        let mut state = self.state;
        state[..self.input_buffer.len()].copy_from_slice(&self.input_buffer);
        SpeculativeChallenger {
            permutation: NoncePermutation::new(&state, self.input_buffer.len()),
        }
    }

    fn duplex(&mut self) {
        unizk_testkit::trace::counter("poseidon.permutations", 1);
        for (i, x) in self.input_buffer.drain(..).enumerate() {
            debug_assert!(i < SPONGE_RATE);
            self.state[i] = x;
        }
        poseidon_permute(&mut self.state);
        self.output_buffer.clear();
        self.output_buffer.extend_from_slice(&self.state[..SPONGE_RATE]);
    }
}

/// A frozen transcript state that can answer "what challenge would `x`
/// produce?" for many candidate `x` — see
/// [`Challenger::speculative_challenger`]. Holds no reference to the
/// challenger it came from; it captures the transcript state by value.
#[derive(Clone, Debug)]
pub struct SpeculativeChallenger {
    permutation: NoncePermutation,
}

impl SpeculativeChallenger {
    /// The challenge the source transcript would emit after observing `x`.
    ///
    /// Equals `Challenger::speculative_challenge(x)` bit-for-bit, at the
    /// cost of one logical permutation (minus the hoisted static round-0
    /// work), with the same single `poseidon.permutations` bump.
    pub fn challenge(&self, x: Goldilocks) -> Goldilocks {
        unizk_testkit::trace::counter("poseidon.permutations", 1);
        self.permutation.permute_with(x)[SPONGE_RATE - 1]
    }

    /// The challenges `LANES` candidates would each produce, permuted in
    /// lockstep through the lane-packed engine — the per-attempt kernel of
    /// the parallel grind.
    ///
    /// Lane `l` equals [`Self::challenge`]`(xs[l])` bit-for-bit, but **no
    /// trace counter is bumped**: grind-style callers scan past the winning
    /// nonce in blocks, so they account the *logical* attempt count
    /// (`winner + 1`) once at the end — the count-once discipline the NTT
    /// routing knobs established — keeping `poseidon.permutations`
    /// byte-identical to the serial scan for every lane width, block size,
    /// and thread count.
    pub fn challenge_batch_uncounted<const LANES: usize>(
        &self,
        xs: &[Goldilocks; LANES],
    ) -> [Goldilocks; LANES] {
        self.permutation.permute_many_row(xs, SPONGE_RATE - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u64) -> Goldilocks {
        Goldilocks::from_u64(n)
    }

    #[test]
    fn hash_no_pad_is_deterministic_and_sensitive() {
        let input: Vec<Goldilocks> = (0..135u64).map(g).collect();
        let d1 = hash_no_pad(&input);
        let d2 = hash_no_pad(&input);
        assert_eq!(d1, d2);

        let mut tweaked = input.clone();
        tweaked[134] += Goldilocks::ONE;
        assert_ne!(hash_no_pad(&tweaked), d1);

        // Length sensitivity within the same rate block.
        assert_ne!(hash_no_pad(&input[..8]), hash_no_pad(&input[..9]));
    }

    #[test]
    fn permutation_count_matches_absorb_rule() {
        assert_eq!(permutation_count(0), 1);
        assert_eq!(permutation_count(1), 1);
        assert_eq!(permutation_count(8), 1);
        assert_eq!(permutation_count(9), 2);
        // The paper's leaf example: 135 elements -> ceil(135/8) = 17.
        assert_eq!(permutation_count(135), 17);
    }

    #[test]
    fn two_to_one_is_order_sensitive() {
        let a = hash_no_pad(&[g(1)]);
        let b = hash_no_pad(&[g(2)]);
        assert_ne!(two_to_one(a, b), two_to_one(b, a));
    }

    #[test]
    fn challenger_reproducible_across_instances() {
        let mut c1 = Challenger::new();
        let mut c2 = Challenger::new();
        for i in 0..20u64 {
            c1.observe(g(i));
            c2.observe(g(i));
        }
        assert_eq!(c1.challenges(5), c2.challenges(5));
    }

    #[test]
    fn challenger_diverges_on_different_transcripts() {
        let mut c1 = Challenger::new();
        let mut c2 = Challenger::new();
        c1.observe(g(1));
        c2.observe(g(2));
        assert_ne!(c1.challenge(), c2.challenge());
    }

    #[test]
    fn challenger_observation_order_matters() {
        let mut c1 = Challenger::new();
        c1.observe(g(1));
        c1.observe(g(2));
        let mut c2 = Challenger::new();
        c2.observe(g(2));
        c2.observe(g(1));
        assert_ne!(c1.challenge(), c2.challenge());
    }

    #[test]
    fn challenge_then_observe_then_challenge() {
        // Interleaved duplexing: later challenges must depend on the new
        // observation.
        let mut c1 = Challenger::new();
        c1.observe(g(7));
        let first = c1.challenge();
        c1.observe(g(8));
        let second = c1.challenge();
        assert_ne!(first, second);

        let mut c2 = Challenger::new();
        c2.observe(g(7));
        assert_eq!(c2.challenge(), first);
        c2.observe(g(9));
        assert_ne!(c2.challenge(), second);
    }

    #[test]
    fn challenge_bits_in_range() {
        let mut c = Challenger::new();
        c.observe(g(3));
        for bits in 1..20 {
            let idx = c.challenge_bits(bits);
            assert!(idx < (1 << bits));
        }
    }

    #[test]
    fn ext_challenge_consumes_two() {
        let mut c1 = Challenger::new();
        c1.observe(g(5));
        let e = c1.challenge_ext();
        let mut c2 = Challenger::new();
        c2.observe(g(5));
        let a = c2.challenge();
        let b = c2.challenge();
        assert_eq!(e, Ext2::new(a, b));
    }

    #[test]
    fn many_observations_spanning_blocks() {
        // More than one rate block absorbed before squeezing.
        let mut c = Challenger::new();
        for i in 0..100u64 {
            c.observe(g(i));
        }
        let ch = c.challenge();
        assert_ne!(ch, Goldilocks::ZERO);
    }

    #[test]
    fn speculative_challenge_matches_clone_observe_challenge() {
        // Every possible pending-buffer fill (0..=7 after a public call).
        for pending in 0..8u64 {
            let mut c = Challenger::new();
            c.observe(g(99));
            let _ = c.challenge(); // drain the buffer
            for i in 0..pending {
                c.observe(g(i));
            }
            for x in [0u64, 1, 17, u64::MAX] {
                let mut reference = c.clone();
                reference.observe(g(x));
                let expect = reference.challenge();
                assert_eq!(c.speculative_challenge(g(x)), expect, "pending={pending} x={x}");
            }
        }
    }

    #[test]
    fn speculative_challenger_matches_speculative_challenge() {
        for pending in 0..8u64 {
            let mut c = Challenger::new();
            for i in 0..pending {
                c.observe(g(1000 + i));
            }
            let spec = c.speculative_challenger();
            for x in [0u64, 5, 1 << 40, u64::MAX] {
                assert_eq!(
                    spec.challenge(g(x)),
                    c.speculative_challenge(g(x)),
                    "pending={pending} x={x}"
                );
            }
        }
    }
}
