//! Sponge hashing and the duplex challenger for Fiat–Shamir transforms.
//!
//! Plonky2 hashes arbitrary-length inputs with the "absorb" method (paper
//! §5.3): chunks of `RATE` elements overwrite the state prefix, followed
//! by a permutation. The challenger is a duplex construction that
//! alternately absorbs protocol messages and squeezes verifier randomness —
//! the "Get Challenges" nodes in the paper's Fig. 7 computation graph.
//!
//! Everything here is generic over a [`SpongeBackend`]: the permutation,
//! its width/rate, and — through the backend's associated field type — the
//! base field itself. The Goldilocks proof path runs [`PoseidonSponge`]
//! (width 12, rate 8); the KoalaBear path runs
//! [`crate::poseidon2_kb::Poseidon2KbSponge`] (width 16, rate 8). The
//! concrete [`Challenger`] / [`hash_no_pad`] names are aliases and
//! wrappers over the Goldilocks instantiation, so the pre-generic API (and
//! its exact trace-counter accounting) is unchanged.

use unizk_field::{ExtensionOf, Field, Goldilocks, PrimeField64, ProtocolField};

use crate::digest::Digest;
use crate::poseidon::{poseidon_permute, NoncePermutation, SPONGE_RATE, WIDTH};
use crate::workspace::Workspace;

/// A cryptographic permutation a sponge can be built over, together with
/// the base field it permutes.
///
/// The default proof path always runs [`PoseidonSponge`]; the trait exists
/// so alternative permutations ([`crate::poseidon2::Poseidon2Sponge`],
/// the KoalaBear-field [`crate::poseidon2_kb::Poseidon2KbSponge`]) plug
/// into the same absorb/compress dispatchers — including the batched,
/// lane-packed ones — without touching the protocol code. Implementations
/// must keep [`SpongeBackend::permute_batch`] bit-identical to a loop of
/// [`SpongeBackend::permute`]; the conformance suite checks this for every
/// shipped backend.
pub trait SpongeBackend {
    /// The base field the permutation operates on.
    type F: HashField;
    /// The permutation state: `[Self::F; WIDTH]` in practice, abstracted
    /// so backends of different widths share the dispatchers.
    type State: Copy + Clone + Send + Sync + core::fmt::Debug + AsRef<[Self::F]> + AsMut<[Self::F]>;
    /// Sponge state width in field elements.
    const WIDTH: usize;
    /// Absorption rate in field elements (the capacity is `WIDTH - RATE`).
    const RATE: usize;
    /// Human-readable backend name.
    const NAME: &'static str;
    /// Trace-counter key for logical permutation counts.
    const COUNTER: &'static str;

    /// The all-zero state.
    fn zeroed() -> Self::State;

    /// Applies the permutation to one sponge state in place.
    fn permute(state: &mut Self::State);

    /// Applies the permutation to a batch of independent sponge states.
    ///
    /// The default runs the scalar permutation per state; backends with a
    /// packed engine override this with a lane-parallel dispatch. Either
    /// way the results must be bit-identical to the scalar loop, and trace
    /// counters are the caller's responsibility (batched dispatchers
    /// account logical permutations once, not per strategy).
    fn permute_batch(states: &mut [Self::State]) {
        for s in states.iter_mut() {
            Self::permute(s);
        }
    }

    /// A frozen "state + pending-lane" snapshot for speculative squeezes —
    /// the per-candidate kernel of the proof-of-work grind. Backends with
    /// hoistable round structure (Poseidon's [`NoncePermutation`]) cache
    /// the static lanes' first-round work here; others store the raw state.
    type Speculative: Clone + Send + Sync + core::fmt::Debug;

    /// Freezes `state` (with any pending transcript elements already
    /// written into its prefix) for candidates injected at lane `pending`.
    fn speculative(state: &Self::State, pending: usize) -> Self::Speculative;

    /// One speculative squeeze: the value of `state[RATE - 1]` after a
    /// permutation with candidate `x` at the pending lane. Must be
    /// bit-identical to writing `x` and running [`SpongeBackend::permute`].
    /// No trace counter is bumped — callers account logical attempts.
    fn speculative_one(spec: &Self::Speculative, x: Self::F) -> Self::F;

    /// [`SpongeBackend::speculative_one`] over `LANES` candidates in
    /// lockstep. The default loops the scalar kernel; lane-packed backends
    /// override it. Lane `l` must equal `speculative_one(spec, xs[l])`
    /// bit-for-bit.
    fn speculative_rows<const LANES: usize>(
        spec: &Self::Speculative,
        xs: &[Self::F; LANES],
    ) -> [Self::F; LANES] {
        let mut out = [Self::F::ZERO; LANES];
        for (o, &x) in out.iter_mut().zip(xs.iter()) {
            *o = Self::speculative_one(spec, x);
        }
        out
    }
}

/// A base field wired into the hashing layer: knows its default sponge
/// and how to route its buffer shapes through a [`Workspace`].
///
/// This is the type-level switch that picks the whole `(field, hasher)`
/// stack: `StarkConfig<Goldilocks>` resolves to Poseidon over Goldilocks,
/// `StarkConfig<KoalaBear>` to Poseidon2 over KoalaBear. The pooling hooks
/// exist because [`Workspace`] holds *concrete* Goldilocks-shaped pools —
/// the Goldilocks impl routes through them (bit-identical to the
/// pre-generic helpers), while small-field impls fall back to the default
/// bodies below, which allocate fresh and drop (`None`-workspace
/// semantics).
pub trait HashField: ProtocolField {
    /// The field's default sponge backend.
    type Sponge: SpongeBackend<F = Self>;

    /// Takes an empty base-element buffer (pool hit or fresh allocation).
    fn take_elems(ws: Option<&Workspace>, capacity: usize) -> Vec<Self> {
        let _ = ws;
        Vec::with_capacity(capacity)
    }

    /// Recycles a base-element buffer (or drops it).
    fn put_elems(ws: Option<&Workspace>, v: Vec<Self>) {
        let _ = (ws, v);
    }

    /// Takes an empty extension-element buffer.
    fn take_ext_elems(ws: Option<&Workspace>, capacity: usize) -> Vec<Self::Ext> {
        let _ = ws;
        Vec::with_capacity(capacity)
    }

    /// Recycles an extension-element buffer.
    fn put_ext_elems(ws: Option<&Workspace>, v: Vec<Self::Ext>) {
        let _ = (ws, v);
    }

    /// Takes an empty digest buffer.
    fn take_digests(ws: Option<&Workspace>, capacity: usize) -> Vec<Digest<Self>> {
        let _ = ws;
        Vec::with_capacity(capacity)
    }

    /// Recycles a digest buffer.
    fn put_digests(ws: Option<&Workspace>, v: Vec<Digest<Self>>) {
        let _ = (ws, v);
    }

    /// Takes a leaf table with exactly `rows` empty rows.
    fn take_table(ws: Option<&Workspace>, rows: usize) -> Vec<Vec<Self>> {
        let _ = ws;
        let mut t = Vec::with_capacity(rows);
        t.resize_with(rows, Vec::new);
        t
    }

    /// Recycles a leaf table.
    fn put_table(ws: Option<&Workspace>, t: Vec<Vec<Self>>) {
        let _ = (ws, t);
    }
}

impl HashField for Goldilocks {
    type Sponge = PoseidonSponge;

    fn take_elems(ws: Option<&Workspace>, capacity: usize) -> Vec<Self> {
        crate::workspace::take_gl(ws, capacity)
    }
    fn put_elems(ws: Option<&Workspace>, v: Vec<Self>) {
        crate::workspace::put_gl(ws, v);
    }
    fn take_ext_elems(ws: Option<&Workspace>, capacity: usize) -> Vec<Self::Ext> {
        crate::workspace::take_ext(ws, capacity)
    }
    fn put_ext_elems(ws: Option<&Workspace>, v: Vec<Self::Ext>) {
        crate::workspace::put_ext(ws, v);
    }
    fn take_digests(ws: Option<&Workspace>, capacity: usize) -> Vec<Digest<Self>> {
        crate::workspace::take_digests(ws, capacity)
    }
    fn put_digests(ws: Option<&Workspace>, v: Vec<Digest<Self>>) {
        if let Some(w) = ws {
            w.put_digests(v);
        }
    }
    fn take_table(ws: Option<&Workspace>, rows: usize) -> Vec<Vec<Self>> {
        crate::workspace::take_gl_table(ws, rows)
    }
    fn put_table(ws: Option<&Workspace>, t: Vec<Vec<Self>>) {
        if let Some(w) = ws {
            w.put_gl_table(t);
        }
    }
}

impl HashField for unizk_field::KoalaBear {
    // Small-field buffers use the default fresh-alloc bodies: the
    // Workspace's pools are Goldilocks-shaped, and the serve pipeline
    // (the pooling customer) is a Goldilocks deployment.
    type Sponge = crate::poseidon2_kb::Poseidon2KbSponge;
}

/// The default backend: the Poseidon permutation of
/// [`crate::poseidon`], with batches routed through the lane-packed engine
/// in [`crate::packed`].
#[derive(Clone, Copy, Debug)]
pub struct PoseidonSponge;

impl SpongeBackend for PoseidonSponge {
    type F = Goldilocks;
    type State = [Goldilocks; WIDTH];
    const WIDTH: usize = WIDTH;
    const RATE: usize = SPONGE_RATE;
    const NAME: &'static str = "poseidon";
    const COUNTER: &'static str = "poseidon.permutations";

    fn zeroed() -> Self::State {
        [Goldilocks::ZERO; WIDTH]
    }

    fn permute(state: &mut Self::State) {
        poseidon_permute(state);
    }

    fn permute_batch(states: &mut [Self::State]) {
        crate::packed::permute_batch(states);
    }

    type Speculative = NoncePermutation;

    fn speculative(state: &Self::State, pending: usize) -> NoncePermutation {
        NoncePermutation::new(state, pending)
    }

    fn speculative_one(spec: &NoncePermutation, x: Goldilocks) -> Goldilocks {
        spec.permute_with(x)[SPONGE_RATE - 1]
    }

    fn speculative_rows<const LANES: usize>(
        spec: &NoncePermutation,
        xs: &[Goldilocks; LANES],
    ) -> [Goldilocks; LANES] {
        spec.permute_many_row(xs, SPONGE_RATE - 1)
    }
}

/// Absorbs `input` into a zero state with backend `B`, without touching
/// trace counters (callers account logical permutations).
fn absorb_no_pad<B: SpongeBackend>(input: &[B::F]) -> Digest<B::F> {
    let mut state = B::zeroed();
    for chunk in input.chunks(B::RATE) {
        state.as_mut()[..chunk.len()].copy_from_slice(chunk);
        B::permute(&mut state);
    }
    let s = state.as_ref();
    Digest([s[0], s[1], s[2], s[3]])
}

/// [`hash_no_pad`] over an arbitrary sponge backend (and hence an
/// arbitrary base field).
pub fn hash_no_pad_with<B: SpongeBackend>(input: &[B::F]) -> Digest<B::F> {
    unizk_testkit::trace::counter(B::COUNTER, input.len().div_ceil(B::RATE) as u64);
    absorb_no_pad::<B>(input)
}

/// Hashes a slice of field elements to a [`Digest`] with the absorb method,
/// no padding (lengths are fixed by the protocol, as in Plonky2).
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
/// use unizk_hash::hash_no_pad;
///
/// let a = hash_no_pad(&[Goldilocks::ONE]);
/// let b = hash_no_pad(&[Goldilocks::TWO]);
/// assert_ne!(a, b);
/// ```
pub fn hash_no_pad(input: &[Goldilocks]) -> Digest {
    hash_no_pad_with::<PoseidonSponge>(input)
}

/// Number of Poseidon permutations [`hash_no_pad`] performs for an input of
/// `len` elements — the unit the simulator's Merkle cost model charges.
/// (Both shipped sponge widths share `RATE = 8`, so the count is
/// field-independent.)
pub fn permutation_count(len: usize) -> usize {
    len.div_ceil(SPONGE_RATE).max(1)
}

/// [`two_to_one`] over an arbitrary sponge backend.
pub fn two_to_one_with<B: SpongeBackend>(left: Digest<B::F>, right: Digest<B::F>) -> Digest<B::F> {
    unizk_testkit::trace::counter(B::COUNTER, 1);
    let mut state = B::zeroed();
    state.as_mut()[..4].copy_from_slice(&left.0);
    state.as_mut()[4..8].copy_from_slice(&right.0);
    B::permute(&mut state);
    let s = state.as_ref();
    Digest([s[0], s[1], s[2], s[3]])
}

/// Hashes two child digests into a parent digest: 4 + 4 elements, zero
/// padded to a full state (paper §5.3).
pub fn two_to_one(left: Digest, right: Digest) -> Digest {
    two_to_one_with::<PoseidonSponge>(left, right)
}

/// Hashes many inputs with backend `B` in one batched dispatch: runs of
/// equal-length inputs absorb in lockstep through
/// [`SpongeBackend::permute_batch`], so lane-packed backends permute 4–8
/// sponges per schedule walk instead of one.
///
/// Digest-for-digest identical to mapping [`hash_no_pad_with`] over
/// `inputs`, with the identical total `B::COUNTER` accounting (counted
/// once per logical permutation, independent of lane width or batch
/// grouping).
pub fn hash_many_with<B: SpongeBackend>(inputs: &[&[B::F]]) -> Vec<Digest<B::F>> {
    let total: u64 = inputs
        .iter()
        .map(|input| input.len().div_ceil(B::RATE) as u64)
        .sum();
    unizk_testkit::trace::counter(B::COUNTER, total);

    let mut out = Vec::with_capacity(inputs.len());
    let mut i = 0;
    while i < inputs.len() {
        let len = inputs[i].len();
        let mut j = i + 1;
        while j < inputs.len() && inputs[j].len() == len {
            j += 1;
        }
        hash_equal_run::<B>(&inputs[i..j], len, &mut out);
        i = j;
    }
    out
}

/// Absorbs a run of equal-length inputs in lockstep.
fn hash_equal_run<B: SpongeBackend>(run: &[&[B::F]], len: usize, out: &mut Vec<Digest<B::F>>) {
    if run.len() < 2 || len == 0 {
        out.extend(run.iter().map(|input| absorb_no_pad::<B>(input)));
        return;
    }
    let mut states = vec![B::zeroed(); run.len()];
    let mut pos = 0;
    while pos < len {
        let take = (len - pos).min(B::RATE);
        for (state, input) in states.iter_mut().zip(run.iter()) {
            state.as_mut()[..take].copy_from_slice(&input[pos..pos + take]);
        }
        B::permute_batch(&mut states);
        pos += take;
    }
    out.extend(states.iter().map(|s| {
        let s = s.as_ref();
        Digest([s[0], s[1], s[2], s[3]])
    }));
}

/// [`hash_many_with`] over the default Poseidon backend.
pub fn hash_many(inputs: &[&[Goldilocks]]) -> Vec<Digest> {
    hash_many_with::<PoseidonSponge>(inputs)
}

/// Compresses one interior Merkle level in a single batched dispatch:
/// digest pairs `(prev[2k], prev[2k+1])` become parents via the same
/// 4+4+zero-pad rule as [`two_to_one_with`], absorbed in lockstep through
/// [`SpongeBackend::permute_batch`].
///
/// Digest-for-digest and counter-for-counter identical to mapping
/// [`two_to_one_with`] over the pairs.
///
/// # Panics
///
/// Panics if `prev.len()` is odd.
pub fn compress_level_with<B: SpongeBackend>(prev: &[Digest<B::F>]) -> Vec<Digest<B::F>> {
    assert!(prev.len().is_multiple_of(2), "pair compression needs an even level");
    let n = prev.len() / 2;
    unizk_testkit::trace::counter(B::COUNTER, n as u64);
    let mut states = vec![B::zeroed(); n];
    for (state, pair) in states.iter_mut().zip(prev.chunks_exact(2)) {
        state.as_mut()[..4].copy_from_slice(&pair[0].0);
        state.as_mut()[4..8].copy_from_slice(&pair[1].0);
    }
    B::permute_batch(&mut states);
    states
        .iter()
        .map(|s| {
            let s = s.as_ref();
            Digest([s[0], s[1], s[2], s[3]])
        })
        .collect()
}

/// [`compress_level_with`] over the default Poseidon backend.
pub fn compress_level(prev: &[Digest]) -> Vec<Digest> {
    compress_level_with::<PoseidonSponge>(prev)
}

/// A duplex-sponge transcript for the Fiat–Shamir transform, generic over
/// the sponge backend (and hence the field).
///
/// Both prover and verifier drive an identical challenger with the same
/// observations; the squeezed challenges then agree, making the protocol
/// non-interactive. The Goldilocks instantiation is aliased as
/// [`Challenger`].
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
/// use unizk_hash::Challenger;
///
/// let mut prover = Challenger::new();
/// prover.observe(Goldilocks::from_u64(99));
/// let c1 = prover.challenge();
///
/// let mut verifier = Challenger::new();
/// verifier.observe(Goldilocks::from_u64(99));
/// assert_eq!(c1, verifier.challenge());
/// ```
#[derive(Clone, Debug)]
pub struct GenericChallenger<B: SpongeBackend> {
    state: B::State,
    input_buffer: Vec<B::F>,
    output_buffer: Vec<B::F>,
}

/// The default (Goldilocks, Poseidon) transcript.
pub type Challenger = GenericChallenger<PoseidonSponge>;

impl<B: SpongeBackend> Default for GenericChallenger<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: SpongeBackend> GenericChallenger<B> {
    /// A fresh transcript with zero state.
    pub fn new() -> Self {
        Self {
            state: B::zeroed(),
            input_buffer: Vec::new(),
            output_buffer: Vec::new(),
        }
    }

    /// Absorbs one field element.
    pub fn observe(&mut self, x: B::F) {
        // New inputs invalidate any cached outputs.
        self.output_buffer.clear();
        self.input_buffer.push(x);
        if self.input_buffer.len() == B::RATE {
            self.duplex();
        }
    }

    /// Absorbs a slice of elements.
    pub fn observe_slice(&mut self, xs: &[B::F]) {
        for &x in xs {
            self.observe(x);
        }
    }

    /// Absorbs a digest (e.g. a Merkle cap entry).
    pub fn observe_digest(&mut self, d: Digest<B::F>) {
        self.observe_slice(&d.0);
    }

    /// Absorbs an extension-field element limb by limb, lowest first.
    pub fn observe_ext(&mut self, x: <B::F as ProtocolField>::Ext) {
        for limb in x.to_base_slice() {
            self.observe(limb);
        }
    }

    /// Squeezes one base-field challenge.
    pub fn challenge(&mut self) -> B::F {
        if !self.input_buffer.is_empty() || self.output_buffer.is_empty() {
            self.duplex();
        }
        self.output_buffer
            .pop()
            .expect("duplex always refills the output buffer")
    }

    /// Squeezes `n` base-field challenges.
    pub fn challenges(&mut self, n: usize) -> Vec<B::F> {
        (0..n).map(|_| self.challenge()).collect()
    }

    /// Squeezes one extension-field challenge (`DEGREE` base challenges,
    /// lowest limb first).
    pub fn challenge_ext(&mut self) -> <B::F as ProtocolField>::Ext {
        let limbs = self.challenges(<B::F as ProtocolField>::Ext::DEGREE);
        <B::F as ProtocolField>::Ext::from_base_slice(&limbs)
    }

    /// Squeezes challenge bits for query-index sampling: a base challenge
    /// reduced to `bits` low bits.
    pub fn challenge_bits(&mut self, bits: usize) -> usize {
        assert!(
            bits < B::F::BITS,
            "at most {} challenge bits from one {} element",
            B::F::BITS - 1,
            B::NAME
        );
        usize::try_from(self.challenge().as_u64() & ((1 << bits) - 1))
            .expect("query-index bits fit usize")
    }

    /// The challenge that `{ let mut t = self.clone(); t.observe(x);
    /// t.challenge() }` would produce, computed without cloning the
    /// transcript or touching the heap.
    ///
    /// The proof-of-work grind evaluates this once per candidate nonce, so
    /// the per-attempt cost must be one permutation and nothing else.
    /// Correctness: after any public-API call the input buffer holds
    /// `k <= RATE - 1` pending elements, so observing one more element
    /// followed by a squeeze performs exactly one duplex — either inside
    /// `observe` (`k == RATE - 1` fills the rate) or inside `challenge`
    /// (`k < RATE - 1` leaves the input buffer non-empty) — absorbing
    /// `pending ++ [x]` over the state prefix and popping the last rate
    /// element. Counter parity matches: one `B::COUNTER` bump per call.
    pub fn speculative_challenge(&self, x: B::F) -> B::F {
        unizk_testkit::trace::counter(B::COUNTER, 1);
        let mut state = self.state;
        state.as_mut()[..self.input_buffer.len()].copy_from_slice(&self.input_buffer);
        state.as_mut()[self.input_buffer.len()] = x;
        B::permute(&mut state);
        state.as_ref()[B::RATE - 1]
    }

    /// A reusable form of [`Self::speculative_challenge`] for loops that
    /// probe many candidates against one transcript state — the FRI grind.
    ///
    /// Every candidate sees the identical permutation input except the one
    /// lane holding the candidate itself, so backends may hoist the static
    /// lanes' first-round work once into their
    /// [`SpongeBackend::Speculative`] snapshot (Poseidon's
    /// [`NoncePermutation`]); each
    /// [`GenericSpeculativeChallenger::challenge`] then costs one
    /// (logical) permutation, bit-identical to `speculative_challenge` and
    /// with the same one-bump counter parity.
    pub fn speculative_challenger(&self) -> GenericSpeculativeChallenger<B> {
        let mut state = self.state;
        state.as_mut()[..self.input_buffer.len()].copy_from_slice(&self.input_buffer);
        GenericSpeculativeChallenger {
            spec: B::speculative(&state, self.input_buffer.len()),
        }
    }

    fn duplex(&mut self) {
        unizk_testkit::trace::counter(B::COUNTER, 1);
        for (i, x) in self.input_buffer.drain(..).enumerate() {
            debug_assert!(i < B::RATE);
            self.state.as_mut()[i] = x;
        }
        B::permute(&mut self.state);
        self.output_buffer.clear();
        self.output_buffer.extend_from_slice(&self.state.as_ref()[..B::RATE]);
    }
}

/// A frozen transcript state that can answer "what challenge would `x`
/// produce?" for many candidate `x` — see
/// [`GenericChallenger::speculative_challenger`]. Holds no reference to
/// the challenger it came from; it captures the transcript state by value.
#[derive(Clone, Debug)]
pub struct GenericSpeculativeChallenger<B: SpongeBackend> {
    spec: B::Speculative,
}

/// The default (Goldilocks, Poseidon) speculative challenger.
pub type SpeculativeChallenger = GenericSpeculativeChallenger<PoseidonSponge>;

impl<B: SpongeBackend> GenericSpeculativeChallenger<B> {
    /// The challenge the source transcript would emit after observing `x`.
    ///
    /// Equals `GenericChallenger::speculative_challenge(x)` bit-for-bit,
    /// at the cost of one logical permutation (minus any hoisted static
    /// round work), with the same single `B::COUNTER` bump.
    pub fn challenge(&self, x: B::F) -> B::F {
        unizk_testkit::trace::counter(B::COUNTER, 1);
        B::speculative_one(&self.spec, x)
    }

    /// The challenges `LANES` candidates would each produce, permuted in
    /// lockstep through the backend's packed engine — the per-attempt
    /// kernel of the parallel grind.
    ///
    /// Lane `l` equals [`Self::challenge`]`(xs[l])` bit-for-bit, but **no
    /// trace counter is bumped**: grind-style callers scan past the winning
    /// nonce in blocks, so they account the *logical* attempt count
    /// (`winner + 1`) once at the end — the count-once discipline the NTT
    /// routing knobs established — keeping `B::COUNTER` byte-identical to
    /// the serial scan for every lane width, block size, and thread count.
    pub fn challenge_batch_uncounted<const LANES: usize>(
        &self,
        xs: &[B::F; LANES],
    ) -> [B::F; LANES] {
        B::speculative_rows(&self.spec, xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::Ext2;

    fn g(n: u64) -> Goldilocks {
        Goldilocks::from_u64(n)
    }

    #[test]
    fn hash_no_pad_is_deterministic_and_sensitive() {
        let input: Vec<Goldilocks> = (0..135u64).map(g).collect();
        let d1 = hash_no_pad(&input);
        let d2 = hash_no_pad(&input);
        assert_eq!(d1, d2);

        let mut tweaked = input.clone();
        tweaked[134] += Goldilocks::ONE;
        assert_ne!(hash_no_pad(&tweaked), d1);

        // Length sensitivity within the same rate block.
        assert_ne!(hash_no_pad(&input[..8]), hash_no_pad(&input[..9]));
    }

    #[test]
    fn permutation_count_matches_absorb_rule() {
        assert_eq!(permutation_count(0), 1);
        assert_eq!(permutation_count(1), 1);
        assert_eq!(permutation_count(8), 1);
        assert_eq!(permutation_count(9), 2);
        // The paper's leaf example: 135 elements -> ceil(135/8) = 17.
        assert_eq!(permutation_count(135), 17);
    }

    #[test]
    fn two_to_one_is_order_sensitive() {
        let a = hash_no_pad(&[g(1)]);
        let b = hash_no_pad(&[g(2)]);
        assert_ne!(two_to_one(a, b), two_to_one(b, a));
    }

    #[test]
    fn challenger_reproducible_across_instances() {
        let mut c1 = Challenger::new();
        let mut c2 = Challenger::new();
        for i in 0..20u64 {
            c1.observe(g(i));
            c2.observe(g(i));
        }
        assert_eq!(c1.challenges(5), c2.challenges(5));
    }

    #[test]
    fn challenger_diverges_on_different_transcripts() {
        let mut c1 = Challenger::new();
        let mut c2 = Challenger::new();
        c1.observe(g(1));
        c2.observe(g(2));
        assert_ne!(c1.challenge(), c2.challenge());
    }

    #[test]
    fn challenger_observation_order_matters() {
        let mut c1 = Challenger::new();
        c1.observe(g(1));
        c1.observe(g(2));
        let mut c2 = Challenger::new();
        c2.observe(g(2));
        c2.observe(g(1));
        assert_ne!(c1.challenge(), c2.challenge());
    }

    #[test]
    fn challenge_then_observe_then_challenge() {
        // Interleaved duplexing: later challenges must depend on the new
        // observation.
        let mut c1 = Challenger::new();
        c1.observe(g(7));
        let first = c1.challenge();
        c1.observe(g(8));
        let second = c1.challenge();
        assert_ne!(first, second);

        let mut c2 = Challenger::new();
        c2.observe(g(7));
        assert_eq!(c2.challenge(), first);
        c2.observe(g(9));
        assert_ne!(c2.challenge(), second);
    }

    #[test]
    fn challenge_bits_in_range() {
        let mut c = Challenger::new();
        c.observe(g(3));
        for bits in 1..20 {
            let idx = c.challenge_bits(bits);
            assert!(idx < (1 << bits));
        }
    }

    #[test]
    fn ext_challenge_consumes_two() {
        let mut c1 = Challenger::new();
        c1.observe(g(5));
        let e = c1.challenge_ext();
        let mut c2 = Challenger::new();
        c2.observe(g(5));
        let a = c2.challenge();
        let b = c2.challenge();
        assert_eq!(e, Ext2::new(a, b));
    }

    #[test]
    fn many_observations_spanning_blocks() {
        // More than one rate block absorbed before squeezing.
        let mut c = Challenger::new();
        for i in 0..100u64 {
            c.observe(g(i));
        }
        let ch = c.challenge();
        assert_ne!(ch, Goldilocks::ZERO);
    }

    #[test]
    fn speculative_challenge_matches_clone_observe_challenge() {
        // Every possible pending-buffer fill (0..=7 after a public call).
        for pending in 0..8u64 {
            let mut c = Challenger::new();
            c.observe(g(99));
            let _ = c.challenge(); // drain the buffer
            for i in 0..pending {
                c.observe(g(i));
            }
            for x in [0u64, 1, 17, u64::MAX] {
                let mut reference = c.clone();
                reference.observe(g(x));
                let expect = reference.challenge();
                assert_eq!(c.speculative_challenge(g(x)), expect, "pending={pending} x={x}");
            }
        }
    }

    #[test]
    fn speculative_challenger_matches_speculative_challenge() {
        for pending in 0..8u64 {
            let mut c = Challenger::new();
            for i in 0..pending {
                c.observe(g(1000 + i));
            }
            let spec = c.speculative_challenger();
            for x in [0u64, 5, 1 << 40, u64::MAX] {
                assert_eq!(
                    spec.challenge(g(x)),
                    c.speculative_challenge(g(x)),
                    "pending={pending} x={x}"
                );
            }
        }
    }

    #[test]
    fn koalabear_challenger_duplexes() {
        use crate::poseidon2_kb::Poseidon2KbSponge;
        use unizk_field::{KbExt4, KoalaBear};

        let k = KoalaBear::from_u64;
        let mut c1 = GenericChallenger::<Poseidon2KbSponge>::new();
        let mut c2 = GenericChallenger::<Poseidon2KbSponge>::new();
        for i in 0..20u64 {
            c1.observe(k(i));
            c2.observe(k(i));
        }
        assert_eq!(c1.challenges(5), c2.challenges(5));
        // Extension challenges consume four base squeezes, lowest first.
        c1.observe(k(5));
        c2.observe(k(5));
        let e = c1.challenge_ext();
        let limbs = [c2.challenge(), c2.challenge(), c2.challenge(), c2.challenge()];
        assert_eq!(e, KbExt4::new(limbs));
    }

    #[test]
    fn koalabear_speculative_matches_reference() {
        use crate::poseidon2_kb::Poseidon2KbSponge;
        use unizk_field::KoalaBear;

        let k = KoalaBear::from_u64;
        for pending in 0..8u64 {
            let mut c = GenericChallenger::<Poseidon2KbSponge>::new();
            for i in 0..pending {
                c.observe(k(1000 + i));
            }
            let spec = c.speculative_challenger();
            for x in [0u64, 5, 12345, 1 << 30] {
                let mut reference = c.clone();
                reference.observe(k(x));
                let expect = reference.challenge();
                assert_eq!(c.speculative_challenge(k(x)), expect, "pending={pending} x={x}");
                assert_eq!(spec.challenge(k(x)), expect, "spec pending={pending} x={x}");
            }
        }
    }

    #[test]
    fn koalabear_challenge_bits_cap_below_field_bits() {
        use crate::poseidon2_kb::Poseidon2KbSponge;
        use unizk_field::KoalaBear;

        let mut c = GenericChallenger::<Poseidon2KbSponge>::new();
        c.observe(KoalaBear::from_u64(3));
        for bits in 1..25 {
            assert!(c.challenge_bits(bits) < (1 << bits));
        }
    }
}
