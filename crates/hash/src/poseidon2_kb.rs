//! The Poseidon2 permutation over 16 KoalaBear elements — the hash backend
//! of the 31-bit small-field proof path.
//!
//! Small-field STARK stacks (Plonky3-style) pair a 31-bit base field with a
//! wider sponge: 16 lanes × 31 bits keeps the capacity (8 lanes ≈ 248
//! bits) comfortably above the security target even though each lane
//! carries a quarter of Goldilocks' entropy. The structure mirrors
//! [`crate::poseidon2`]:
//!
//! * **External (full) rounds** multiply by the block-circulant matrix
//!   `M_E = circ(2·M4, M4, M4, M4)` built from the same fixed 4×4 `M4`,
//!   with an extra `M_E` applied to the input before the first round.
//! * **Internal (partial) rounds** use the `J + diag(d)` layer: one shared
//!   16-term sum plus a diagonal multiply per element.
//!
//! The S-box is `x^3` — valid over KoalaBear because
//! `gcd(3, p - 1) = 1` (`p - 1 = 2^24 · 127` and `127 ≡ 1 (mod 3)`),
//! checked by a unit test. Round counts are 4 + 4 external and 20
//! internal, in the neighbourhood of the Poseidon2 reference
//! instantiations for 31-bit fields.
//!
//! **Substitution note (see DESIGN.md):** round constants and the internal
//! diagonal are generated deterministically from a seed, like every other
//! constant set in this repository; `M4` uses the literal entries from the
//! Poseidon2 reference instantiation.

use unizk_field::{Field, KoalaBear};

use crate::sponge::SpongeBackend;

/// Sponge width in field elements.
pub const KB_WIDTH: usize = 16;
/// Absorption rate (the capacity is the other 8 lanes).
pub const KB_RATE: usize = 8;
/// Number of external (full) rounds, split evenly around the internal run.
pub const KB_FULL_ROUNDS: usize = 8;
/// Number of internal (partial) rounds.
pub const KB_PARTIAL_ROUNDS: usize = 20;

/// Deterministic constant generator — the same splitmix64 core as
/// [`crate::poseidon`], seeded independently.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fixed 4×4 block of the external matrix (Poseidon2's reference `M4`).
const M4: [[u64; 4]; 4] = [
    [5, 7, 1, 3],
    [4, 6, 1, 1],
    [1, 3, 5, 7],
    [1, 1, 4, 6],
];

/// All constants the KoalaBear Poseidon2 permutation needs, generated once.
#[derive(Clone, Debug)]
pub struct Poseidon2KbConstants {
    /// Per-round constant vectors for the 8 external rounds.
    pub external_constants: [[KoalaBear; KB_WIDTH]; KB_FULL_ROUNDS],
    /// Per-round constants (added to element 0) for the 20 internal rounds.
    pub internal_constants: [KoalaBear; KB_PARTIAL_ROUNDS],
    /// Dense external matrix `M_E = circ(2·M4, M4, M4, M4)` (row-major).
    pub external_mat: [[KoalaBear; KB_WIDTH]; KB_WIDTH],
    /// Internal-layer diagonal `d`: the internal matrix is `J + diag(d)`
    /// with `J` the all-ones matrix (entries in `1..=96`).
    pub internal_diag: [KoalaBear; KB_WIDTH],
}

impl Poseidon2KbConstants {
    fn generate() -> Self {
        let mut s: u64 = 0x4B42_5053_4432_3235; // "KB PSD2 25"-ish seed

        let mut external_constants = [[KoalaBear::ZERO; KB_WIDTH]; KB_FULL_ROUNDS];
        for row in external_constants.iter_mut() {
            for c in row.iter_mut() {
                *c = KoalaBear::from_u64(splitmix64(&mut s));
            }
        }
        let mut internal_constants = [KoalaBear::ZERO; KB_PARTIAL_ROUNDS];
        for c in internal_constants.iter_mut() {
            *c = KoalaBear::from_u64(splitmix64(&mut s));
        }

        let mut external_mat = [[KoalaBear::ZERO; KB_WIDTH]; KB_WIDTH];
        for (i, row) in external_mat.iter_mut().enumerate() {
            for (j, c) in row.iter_mut().enumerate() {
                let block_scale = if i / 4 == j / 4 { 2 } else { 1 };
                *c = KoalaBear::from_u64(block_scale * M4[i % 4][j % 4]);
            }
        }

        let mut internal_diag = [KoalaBear::ZERO; KB_WIDTH];
        for d in internal_diag.iter_mut() {
            *d = KoalaBear::from_u64(splitmix64(&mut s) % 96 + 1);
        }

        Self {
            external_constants,
            internal_constants,
            external_mat,
            internal_diag,
        }
    }
}

/// The process-wide KoalaBear Poseidon2 constant set.
pub fn constants_kb() -> &'static Poseidon2KbConstants {
    use std::sync::OnceLock;
    static CONSTANTS: OnceLock<Poseidon2KbConstants> = OnceLock::new();
    CONSTANTS.get_or_init(Poseidon2KbConstants::generate)
}

/// The `x^3` S-box (a permutation since `gcd(3, p - 1) = 1`).
#[inline]
fn sbox(x: KoalaBear) -> KoalaBear {
    x.square() * x
}

fn external_matvec(cs: &Poseidon2KbConstants, state: &[KoalaBear; KB_WIDTH]) -> [KoalaBear; KB_WIDTH] {
    let mut out = [KoalaBear::ZERO; KB_WIDTH];
    for (o, row) in out.iter_mut().zip(cs.external_mat.iter()) {
        let mut acc = KoalaBear::ZERO;
        for (c, &x) in row.iter().zip(state.iter()) {
            acc += *c * x;
        }
        *o = acc;
    }
    out
}

fn external_round(cs: &Poseidon2KbConstants, state: &mut [KoalaBear; KB_WIDTH], r: usize) {
    for (x, c) in state.iter_mut().zip(cs.external_constants[r].iter()) {
        *x = sbox(*x + *c);
    }
    *state = external_matvec(cs, state);
}

/// One internal round: S-box on element 0, then the `J + diag(d)` layer —
/// the 16-term sum is shared across rows, so a partial round costs one sum
/// and one multiply per element.
fn internal_round(cs: &Poseidon2KbConstants, state: &mut [KoalaBear; KB_WIDTH], r: usize) {
    state[0] = sbox(state[0] + cs.internal_constants[r]);
    let mut sum = KoalaBear::ZERO;
    for &x in state.iter() {
        sum += x;
    }
    for (x, d) in state.iter_mut().zip(cs.internal_diag.iter()) {
        *x = sum + *d * *x;
    }
}

/// Applies the full KoalaBear Poseidon2 permutation in place.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, KoalaBear};
/// use unizk_hash::poseidon2_kb_permute;
///
/// let mut state = [KoalaBear::ZERO; 16];
/// poseidon2_kb_permute(&mut state);
/// assert_ne!(state[0], KoalaBear::ZERO);
/// ```
pub fn poseidon2_kb_permute(state: &mut [KoalaBear; KB_WIDTH]) {
    let cs = constants_kb();
    // Poseidon2 pre-mixes the input with the external matrix.
    *state = external_matvec(cs, state);
    for r in 0..KB_FULL_ROUNDS / 2 {
        external_round(cs, state, r);
    }
    for r in 0..KB_PARTIAL_ROUNDS {
        internal_round(cs, state, r);
    }
    for r in KB_FULL_ROUNDS / 2..KB_FULL_ROUNDS {
        external_round(cs, state, r);
    }
}

/// Permutes a block of states in lockstep: one walk of the round schedule
/// serves every state in the block, so constant and matrix-row fetches are
/// amortized across lanes — the KoalaBear analogue of the packed Poseidon
/// engine. Bit-identical to the scalar permutation per state.
fn permute_lockstep(states: &mut [[KoalaBear; KB_WIDTH]]) {
    let cs = constants_kb();
    for state in states.iter_mut() {
        *state = external_matvec(cs, state);
    }
    for r in 0..KB_FULL_ROUNDS / 2 {
        for state in states.iter_mut() {
            external_round(cs, state, r);
        }
    }
    for r in 0..KB_PARTIAL_ROUNDS {
        for state in states.iter_mut() {
            internal_round(cs, state, r);
        }
    }
    for r in KB_FULL_ROUNDS / 2..KB_FULL_ROUNDS {
        for state in states.iter_mut() {
            external_round(cs, state, r);
        }
    }
}

/// The KoalaBear Poseidon2 sponge backend — the default hasher of the
/// 31-bit proof path (`StarkConfig<KoalaBear>`). Batches run the lockstep
/// engine in blocks of [`crate::packed::hash_lanes`] states, honouring the
/// same lane-width knob as the Goldilocks packed engine.
#[derive(Clone, Copy, Debug)]
pub struct Poseidon2KbSponge;

impl SpongeBackend for Poseidon2KbSponge {
    type F = KoalaBear;
    type State = [KoalaBear; KB_WIDTH];
    const WIDTH: usize = KB_WIDTH;
    const RATE: usize = KB_RATE;
    const NAME: &'static str = "poseidon2-kb";
    const COUNTER: &'static str = "poseidon2_kb.permutations";

    fn zeroed() -> Self::State {
        [KoalaBear::ZERO; KB_WIDTH]
    }

    fn permute(state: &mut Self::State) {
        poseidon2_kb_permute(state);
    }

    fn permute_batch(states: &mut [Self::State]) {
        let lanes = crate::packed::hash_lanes().max(1);
        for block in states.chunks_mut(lanes) {
            permute_lockstep(block);
        }
    }

    // The snapshot is the raw prefix-filled state plus the pending lane.
    type Speculative = ([KoalaBear; KB_WIDTH], usize);

    fn speculative(state: &Self::State, pending: usize) -> Self::Speculative {
        (*state, pending)
    }

    fn speculative_one(spec: &Self::Speculative, x: KoalaBear) -> KoalaBear {
        let mut s = spec.0;
        s[spec.1] = x;
        poseidon2_kb_permute(&mut s);
        s[KB_RATE - 1]
    }

    fn speculative_rows<const LANES: usize>(
        spec: &Self::Speculative,
        xs: &[KoalaBear; LANES],
    ) -> [KoalaBear; LANES] {
        let mut states = [spec.0; LANES];
        for (s, &x) in states.iter_mut().zip(xs.iter()) {
            s[spec.1] = x;
        }
        permute_lockstep(&mut states);
        let mut out = [KoalaBear::ZERO; LANES];
        for (o, s) in out.iter_mut().zip(states.iter()) {
            *o = s[KB_RATE - 1];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::PrimeField64;

    fn k(n: u64) -> KoalaBear {
        KoalaBear::from_u64(n)
    }

    #[test]
    fn cube_is_a_permutation() {
        // gcd(3, p - 1) = 1: p - 1 = 2^24 · 127 ≡ 1·1 ≡ 1 (mod 3).
        assert_eq!((KoalaBear::ORDER - 1) % 3, 1);
        // Injectivity spot check via the inverse exponent.
        let e_inv = {
            // Solve 3·e ≡ 1 (mod p - 1) by search over small k in
            // e = (k(p-1)+1)/3.
            let m = KoalaBear::ORDER - 1;
            (1..3u64).find_map(|i| {
                let num = i * m + 1;
                (num % 3 == 0).then_some(num / 3)
            })
            .expect("3 is invertible mod p - 1")
        };
        for n in [1u64, 2, 17, 123_456_789] {
            assert_eq!(sbox(k(n)).exp_u64(e_inv), k(n));
        }
    }

    #[test]
    fn permutation_is_deterministic_and_sensitive() {
        let mut a = [k(3); KB_WIDTH];
        let mut b = [k(3); KB_WIDTH];
        poseidon2_kb_permute(&mut a);
        poseidon2_kb_permute(&mut b);
        assert_eq!(a, b);

        let mut c = [k(3); KB_WIDTH];
        c[5] += KoalaBear::ONE;
        poseidon2_kb_permute(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn full_diffusion() {
        let mut base = [k(42); KB_WIDTH];
        let mut flipped = base;
        flipped[KB_WIDTH - 1] += KoalaBear::ONE;
        poseidon2_kb_permute(&mut base);
        poseidon2_kb_permute(&mut flipped);
        for i in 0..KB_WIDTH {
            assert_ne!(base[i], flipped[i], "lane {i} did not diffuse");
        }
    }

    #[test]
    fn external_matrix_is_block_circulant_of_m4() {
        let cs = constants_kb();
        for i in 0..KB_WIDTH {
            for j in 0..KB_WIDTH {
                let scale = if i / 4 == j / 4 { 2 } else { 1 };
                assert_eq!(
                    u64::from(cs.external_mat[i][j].as_canonical_u32()),
                    scale * M4[i % 4][j % 4],
                    "entry ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn internal_diag_entries_small_and_nonzero() {
        for d in constants_kb().internal_diag {
            let v = d.as_canonical_u32();
            assert!((1..=96).contains(&v));
        }
    }

    #[test]
    fn lockstep_matches_scalar() {
        let mut scalar: Vec<[KoalaBear; KB_WIDTH]> = (0..13u64)
            .map(|i| core::array::from_fn(|j| k(i * 100 + j as u64)))
            .collect();
        let mut batched = scalar.clone();
        for s in scalar.iter_mut() {
            poseidon2_kb_permute(s);
        }
        Poseidon2KbSponge::permute_batch(&mut batched);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn speculative_rows_match_speculative_one() {
        let mut state = [KoalaBear::ZERO; KB_WIDTH];
        for (i, s) in state.iter_mut().enumerate() {
            *s = k(7 + i as u64);
        }
        for pending in [0usize, 3, KB_RATE - 1] {
            let spec = Poseidon2KbSponge::speculative(&state, pending);
            let xs: [KoalaBear; 4] = core::array::from_fn(|l| k(1000 + l as u64));
            let rows = Poseidon2KbSponge::speculative_rows(&spec, &xs);
            for (l, &x) in xs.iter().enumerate() {
                assert_eq!(rows[l], Poseidon2KbSponge::speculative_one(&spec, x), "lane {l}");
            }
        }
    }
}
