//! The [`Workspace`] — the buffer-recycling seam the proof-serving
//! pipeline threads through the prover.
//!
//! A `Workspace` bundles typed [`Pool`]s for every large buffer shape a
//! STARK proof allocates:
//!
//! | pool        | element           | recycled buffers                       |
//! |-------------|-------------------|----------------------------------------|
//! | `gl`        | `Goldilocks`      | coefficients, LDE codewords, quotients |
//! | `ext`       | `Ext2`            | FRI combined witness and fold layers   |
//! | `digests`   | `Digest`          | Merkle tree levels                     |
//! | `gl_tables` | `Vec<Goldilocks>` | Merkle leaf tables (row-major)         |
//!
//! The prover entry points (`unizk_stark::prove_in`, `unizk_fri`'s
//! `fri_prove_in`, [`MerkleTree::new_in`](crate::MerkleTree::new_in))
//! accept an `Option<&Workspace>`; passing `None` is the one-shot path and
//! allocates exactly as before. Passing `Some` makes every large buffer a
//! pool round-trip: taken at the allocation site, given back when the
//! owning structure is consumed (`recycle`). Pooling is value-invisible —
//! the proof bytes and every deterministic trace counter are bit-identical
//! with and without a workspace, which the serve differential suite pins.
//!
//! A `Workspace` is `Sync` (pools are internally locked), but the intended
//! deployment is **one workspace per pipeline worker**: buffers then stay
//! cache- and thread-local and the locks are uncontended.
//!
//! # Example
//!
//! ```
//! use unizk_hash::Workspace;
//!
//! let ws = Workspace::new();
//! let mut buf = ws.take_gl(256);   // miss — fresh allocation
//! buf.resize(256, unizk_field::Field::ZERO);
//! ws.put_gl(buf);
//! let again = ws.take_gl(256);     // hit — recycled capacity
//! assert!(again.is_empty() && again.capacity() >= 256);
//! assert_eq!(ws.stats().total().hits, 1);
//! ```

use unizk_field::pool::{Pool, PoolStats, TablePool};
use unizk_field::{Ext2, Goldilocks};

use crate::digest::Digest;

/// Per-pool hit/miss counters of one [`Workspace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Flat `Goldilocks` buffers.
    pub gl: PoolStats,
    /// Flat `Ext2` buffers.
    pub ext: PoolStats,
    /// Flat `Digest` buffers.
    pub digests: PoolStats,
    /// `Goldilocks` leaf tables.
    pub gl_tables: PoolStats,
}

impl WorkspaceStats {
    /// Sum over all four pools.
    pub fn total(&self) -> PoolStats {
        self.gl
            .merged(&self.ext)
            .merged(&self.digests)
            .merged(&self.gl_tables)
    }

    /// Aggregate hit rate over all pools, or `None` before any take.
    pub fn hit_rate(&self) -> Option<f64> {
        self.total().hit_rate()
    }

    /// Component-wise sum, for aggregating per-worker workspaces.
    #[must_use]
    pub fn merged(&self, other: &WorkspaceStats) -> WorkspaceStats {
        WorkspaceStats {
            gl: self.gl.merged(&other.gl),
            ext: self.ext.merged(&other.ext),
            digests: self.digests.merged(&other.digests),
            gl_tables: self.gl_tables.merged(&other.gl_tables),
        }
    }
}

/// Recyclable buffer arenas for one prover worker (see the module docs).
#[derive(Debug, Default)]
pub struct Workspace {
    gl: Pool<Goldilocks>,
    ext: Pool<Ext2>,
    digests: Pool<Digest>,
    gl_tables: TablePool<Goldilocks>,
}

impl Workspace {
    /// An empty workspace; pools fill as the first job recycles into it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an empty `Goldilocks` buffer with capacity at least `capacity`.
    pub fn take_gl(&self, capacity: usize) -> Vec<Goldilocks> {
        self.gl.take(capacity)
    }

    /// Recycles a `Goldilocks` buffer.
    pub fn put_gl(&self, v: Vec<Goldilocks>) {
        self.gl.put(v);
    }

    /// Takes an empty `Ext2` buffer with capacity at least `capacity`.
    pub fn take_ext(&self, capacity: usize) -> Vec<Ext2> {
        self.ext.take(capacity)
    }

    /// Recycles an `Ext2` buffer.
    pub fn put_ext(&self, v: Vec<Ext2>) {
        self.ext.put(v);
    }

    /// Takes an empty `Digest` buffer with capacity at least `capacity`.
    pub fn take_digests(&self, capacity: usize) -> Vec<Digest> {
        self.digests.take(capacity)
    }

    /// Recycles a `Digest` buffer.
    pub fn put_digests(&self, v: Vec<Digest>) {
        self.digests.put(v);
    }

    /// Takes a leaf table with exactly `rows` empty rows.
    pub fn take_gl_table(&self, rows: usize) -> Vec<Vec<Goldilocks>> {
        self.gl_tables.take(rows)
    }

    /// Recycles a leaf table (row capacities survive for the next job).
    pub fn put_gl_table(&self, table: Vec<Vec<Goldilocks>>) {
        self.gl_tables.put(table);
    }

    /// Cumulative per-pool hit/miss counters.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            gl: self.gl.stats(),
            ext: self.ext.stats(),
            digests: self.digests.stats(),
            gl_tables: self.gl_tables.stats(),
        }
    }
}

/// [`Workspace::take_gl`] through an optional workspace: `None` allocates.
pub fn take_gl(ws: Option<&Workspace>, capacity: usize) -> Vec<Goldilocks> {
    ws.map_or_else(|| Vec::with_capacity(capacity), |w| w.take_gl(capacity))
}

/// [`Workspace::put_gl`] through an optional workspace: `None` drops.
pub fn put_gl(ws: Option<&Workspace>, v: Vec<Goldilocks>) {
    if let Some(w) = ws {
        w.put_gl(v);
    }
}

/// [`Workspace::take_ext`] through an optional workspace: `None` allocates.
pub fn take_ext(ws: Option<&Workspace>, capacity: usize) -> Vec<Ext2> {
    ws.map_or_else(|| Vec::with_capacity(capacity), |w| w.take_ext(capacity))
}

/// [`Workspace::put_ext`] through an optional workspace: `None` drops.
pub fn put_ext(ws: Option<&Workspace>, v: Vec<Ext2>) {
    if let Some(w) = ws {
        w.put_ext(v);
    }
}

/// [`Workspace::take_digests`] through an optional workspace: `None`
/// allocates.
pub fn take_digests(ws: Option<&Workspace>, capacity: usize) -> Vec<Digest> {
    ws.map_or_else(
        || Vec::with_capacity(capacity),
        |w| w.take_digests(capacity),
    )
}

/// [`Workspace::take_gl_table`] through an optional workspace: `None`
/// builds a fresh table of `rows` empty rows.
pub fn take_gl_table(ws: Option<&Workspace>, rows: usize) -> Vec<Vec<Goldilocks>> {
    ws.map_or_else(
        || {
            let mut t = Vec::with_capacity(rows);
            t.resize_with(rows, Vec::new);
            t
        },
        |w| w.take_gl_table(rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::Field;

    #[test]
    fn round_trip_every_pool() {
        let ws = Workspace::new();
        ws.put_gl(vec![Goldilocks::ONE; 8]);
        ws.put_ext(vec![Ext2::ONE; 8]);
        ws.put_digests(vec![Digest::ZERO; 8]);
        ws.put_gl_table(vec![vec![Goldilocks::ONE; 4]; 8]);

        assert!(ws.take_gl(8).is_empty());
        assert!(ws.take_ext(8).is_empty());
        assert!(ws.take_digests(8).is_empty());
        let t = ws.take_gl_table(8);
        assert_eq!(t.len(), 8);
        assert!(t.iter().all(|r| r.is_empty() && r.capacity() >= 4));

        let stats = ws.stats();
        assert_eq!(stats.total(), unizk_field::PoolStats { hits: 4, misses: 0 });
        assert_eq!(stats.hit_rate(), Some(1.0));
    }

    #[test]
    fn optional_helpers_allocate_without_workspace() {
        let v = take_gl(None, 16);
        assert!(v.is_empty() && v.capacity() >= 16);
        put_gl(None, v); // dropped, no panic
        let t = take_gl_table(None, 3);
        assert_eq!(t.len(), 3);
        assert!(take_ext(None, 4).is_empty());
        assert!(take_digests(None, 4).is_empty());
        put_ext(None, Vec::new());
    }

    #[test]
    fn merged_stats_aggregate() {
        let a = Workspace::new();
        let b = Workspace::new();
        let _ = a.take_gl(4);
        let _ = b.take_ext(4);
        let merged = a.stats().merged(&b.stats());
        assert_eq!(merged.total().misses, 2);
    }
}
