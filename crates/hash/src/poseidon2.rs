//! The Poseidon2 permutation over 12 Goldilocks elements — an alternative
//! sponge backend with matrix-based partial-round linear layers.
//!
//! Poseidon2 (Grassi–Khovratovich–Schofnegger; the permutation Ziren's
//! Poseidon2 chip implements) restructures Poseidon's linear algebra:
//!
//! * **External (full) rounds** multiply by a block-circulant matrix
//!   `M_E = circ(2·M4, M4, M4)` built from a fixed 4×4 matrix `M4`, and an
//!   extra `M_E` is applied to the input before the first round.
//! * **Internal (partial) rounds** replace the sparse factored matrices
//!   with one dense-but-cheap layer: `out[i] = Σ_j state[j] + d_i·state[i]`
//!   — the all-ones matrix plus a diagonal, so a round costs one shared
//!   12-term sum and one multiply per element.
//!
//! The round counts (4 + 4 external, 22 internal) and the `x^7` S-box
//! match [`crate::poseidon`], so the two backends are cost-model-identical
//! for the simulator while exercising genuinely different linear layers.
//!
//! **Status:** Poseidon2 is *not* wired into the default proof path — the
//! committed proof-bytes/counter contract is pinned to Poseidon. It plugs
//! in behind [`SpongeBackend`] for the conformance suite, benchmarks, and
//! future backend-generic protocol work.
//!
//! **Substitution note (see DESIGN.md):** round constants and the internal
//! diagonal are generated deterministically from a seed, like every other
//! constant set in this repository; `M4` uses the literal entries from the
//! Poseidon2 reference instantiation.

use unizk_field::{Field, Goldilocks};

use crate::poseidon::{sbox_residue, FULL_ROUNDS, PARTIAL_ROUNDS, SPONGE_RATE, WIDTH};
use crate::sponge::SpongeBackend;

/// Deterministic constant generator — same splitmix64 core as
/// [`crate::poseidon`], seeded independently.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fixed 4×4 block of the external matrix (Poseidon2's reference
/// `M4`); entries are tiny, keeping every external row sum far below the
/// `reduce96` budget.
const M4: [[u64; 4]; 4] = [
    [5, 7, 1, 3],
    [4, 6, 1, 1],
    [1, 3, 5, 7],
    [1, 1, 4, 6],
];

/// All constants the Poseidon2 permutation needs, generated once.
#[derive(Clone, Debug)]
pub struct Poseidon2Constants {
    /// Per-round constant vectors for the 8 external rounds.
    pub external_constants: [[Goldilocks; WIDTH]; FULL_ROUNDS],
    /// Per-round constants (added to element 0) for the 22 internal rounds.
    pub internal_constants: [Goldilocks; PARTIAL_ROUNDS],
    /// Dense external matrix `M_E = circ(2·M4, M4, M4)` (row-major; entries
    /// `< 2^4`).
    pub external_mat: [[Goldilocks; WIDTH]; WIDTH],
    /// Internal-layer diagonal `d`: the internal matrix is `J + diag(d)`
    /// with `J` the all-ones matrix (entries `< 2^7`, nonzero).
    pub internal_diag: [Goldilocks; WIDTH],
}

impl Poseidon2Constants {
    fn generate() -> Self {
        let mut s: u64 = 0x5053_4432_4B32_3032; // "PD2K2025"-ish seed

        let mut external_constants = [[Goldilocks::ZERO; WIDTH]; FULL_ROUNDS];
        for row in external_constants.iter_mut() {
            for c in row.iter_mut() {
                *c = Goldilocks::from_u64(splitmix64(&mut s));
            }
        }
        let mut internal_constants = [Goldilocks::ZERO; PARTIAL_ROUNDS];
        for c in internal_constants.iter_mut() {
            *c = Goldilocks::from_u64(splitmix64(&mut s));
        }

        let mut external_mat = [[Goldilocks::ZERO; WIDTH]; WIDTH];
        for (i, row) in external_mat.iter_mut().enumerate() {
            for (j, c) in row.iter_mut().enumerate() {
                let block_scale = if i / 4 == j / 4 { 2 } else { 1 };
                *c = Goldilocks::from_u64(block_scale * M4[i % 4][j % 4]);
            }
        }

        let mut internal_diag = [Goldilocks::ZERO; WIDTH];
        for d in internal_diag.iter_mut() {
            *d = Goldilocks::from_u64(splitmix64(&mut s) % 96 + 1);
        }

        Self {
            external_constants,
            internal_constants,
            external_mat,
            internal_diag,
        }
    }
}

/// The process-wide Poseidon2 constant set.
pub fn constants2() -> &'static Poseidon2Constants {
    use std::sync::OnceLock;
    static CONSTANTS: OnceLock<Poseidon2Constants> = OnceLock::new();
    CONSTANTS.get_or_init(Poseidon2Constants::generate)
}

/// External matrix–vector product over residues: 12 terms of a `< 2^4`
/// constant times a `< 2^64` residue sum below `2^72`, one `reduce96` per
/// row.
fn external_matvec(cs: &Poseidon2Constants, state: &[u64; WIDTH]) -> [u64; WIDTH] {
    let mut out = [0u64; WIDTH];
    for (o, row) in out.iter_mut().zip(cs.external_mat.iter()) {
        let mut acc: u128 = 0;
        for (c, &x) in row.iter().zip(state.iter()) {
            acc += u128::from(c.as_canonical_u64()) * u128::from(x);
        }
        *o = Goldilocks::reduce96_residue(acc);
    }
    out
}

fn external_round(cs: &Poseidon2Constants, state: &mut [u64; WIDTH], r: usize) {
    for (x, c) in state.iter_mut().zip(cs.external_constants[r].iter()) {
        *x = sbox_residue(Goldilocks::add_residue(*x, c.as_canonical_u64()));
    }
    *state = external_matvec(cs, state);
}

/// One internal round: S-box on element 0, then the `J + diag(d)` layer —
/// the 12-term sum is shared across rows, so the matrix-based partial
/// round costs 12 + 1 multiplies instead of Poseidon's factored sparse
/// product.
fn internal_round(cs: &Poseidon2Constants, state: &mut [u64; WIDTH], r: usize) {
    state[0] = sbox_residue(Goldilocks::add_residue(
        state[0],
        cs.internal_constants[r].as_canonical_u64(),
    ));
    // Σ_j state[j]: 12 residues < 2^64 sum below 2^68.
    let mut sum: u128 = 0;
    for &x in state.iter() {
        sum += u128::from(x);
    }
    for (x, d) in state.iter_mut().zip(cs.internal_diag.iter()) {
        // sum + d·x < 2^68 + 2^71 — comfortably inside the reduce96 budget.
        *x = Goldilocks::reduce96_residue(sum + u128::from(d.as_canonical_u64()) * u128::from(*x));
    }
}

/// Applies the full Poseidon2 permutation in place.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
/// use unizk_hash::poseidon2_permute;
///
/// let mut state = [Goldilocks::ZERO; 12];
/// poseidon2_permute(&mut state);
/// assert_ne!(state[0], Goldilocks::ZERO);
/// ```
pub fn poseidon2_permute(state: &mut [Goldilocks; WIDTH]) {
    let cs = constants2();
    let mut lanes = [0u64; WIDTH];
    for (l, x) in lanes.iter_mut().zip(state.iter()) {
        *l = x.as_canonical_u64();
    }
    // Poseidon2 pre-mixes the input with the external matrix before the
    // first round.
    lanes = external_matvec(cs, &lanes);
    for r in 0..FULL_ROUNDS / 2 {
        external_round(cs, &mut lanes, r);
    }
    for r in 0..PARTIAL_ROUNDS {
        internal_round(cs, &mut lanes, r);
    }
    for r in FULL_ROUNDS / 2..FULL_ROUNDS {
        external_round(cs, &mut lanes, r);
    }
    for (x, l) in state.iter_mut().zip(lanes.iter()) {
        *x = Goldilocks::from_residue(*l);
    }
}

/// The Poseidon2 sponge backend. Not part of the default proof path (see
/// the module docs); batches use the default scalar loop.
#[derive(Clone, Copy, Debug)]
pub struct Poseidon2Sponge;

impl SpongeBackend for Poseidon2Sponge {
    type F = Goldilocks;
    type State = [Goldilocks; WIDTH];
    const WIDTH: usize = WIDTH;
    const RATE: usize = SPONGE_RATE;
    const NAME: &'static str = "poseidon2";
    const COUNTER: &'static str = "poseidon2.permutations";

    fn zeroed() -> Self::State {
        [Goldilocks::ZERO; WIDTH]
    }

    fn permute(state: &mut Self::State) {
        poseidon2_permute(state);
    }

    // No hoisted grind kernel: the snapshot is the raw state + pending lane
    // and each speculative squeeze runs a full permutation.
    type Speculative = ([Goldilocks; WIDTH], usize);

    fn speculative(state: &Self::State, pending: usize) -> Self::Speculative {
        (*state, pending)
    }

    fn speculative_one(spec: &Self::Speculative, x: Goldilocks) -> Goldilocks {
        let mut s = spec.0;
        s[spec.1] = x;
        poseidon2_permute(&mut s);
        s[SPONGE_RATE - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_deterministic_and_sensitive() {
        let mut a = [Goldilocks::from_u64(3); WIDTH];
        let mut b = [Goldilocks::from_u64(3); WIDTH];
        poseidon2_permute(&mut a);
        poseidon2_permute(&mut b);
        assert_eq!(a, b);

        let mut c = [Goldilocks::from_u64(3); WIDTH];
        c[5] += Goldilocks::ONE;
        poseidon2_permute(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn differs_from_poseidon() {
        let mut p1 = [Goldilocks::from_u64(9); WIDTH];
        let mut p2 = p1;
        crate::poseidon::poseidon_permute(&mut p1);
        poseidon2_permute(&mut p2);
        assert_ne!(p1, p2, "the two backends must be distinct permutations");
    }

    #[test]
    fn full_diffusion() {
        let mut base = [Goldilocks::from_u64(42); WIDTH];
        let mut flipped = base;
        flipped[11] += Goldilocks::ONE;
        poseidon2_permute(&mut base);
        poseidon2_permute(&mut flipped);
        for i in 0..WIDTH {
            assert_ne!(base[i], flipped[i], "lane {i} did not diffuse");
        }
    }

    #[test]
    fn external_matrix_is_block_circulant_of_m4() {
        let cs = constants2();
        for i in 0..WIDTH {
            for j in 0..WIDTH {
                let scale = if i / 4 == j / 4 { 2 } else { 1 };
                assert_eq!(
                    cs.external_mat[i][j].as_canonical_u64(),
                    scale * M4[i % 4][j % 4],
                    "entry ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn internal_diag_entries_small_and_nonzero() {
        for d in constants2().internal_diag {
            let v = d.as_canonical_u64();
            assert!((1..=96).contains(&v));
        }
    }
}
