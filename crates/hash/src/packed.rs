//! Lane-packed Poseidon: many width-12 sponges permuted in lockstep.
//!
//! This is the software analogue of the paper's VSA vector mode (§5): one
//! shared round-constant / MDS schedule drives `LANES` independent sponge
//! states laid out struct-of-arrays — `state[i][l]` is lane `l`'s element
//! `i` — so every field operation of the round schedule is issued once per
//! *element row* and executed across all lanes. The scalar permutation's
//! round structure is latency-bound (22 partial rounds form one serial
//! s-box chain); packing gives the core `LANES` independent chains to
//! overlap, which is where the throughput comes from.
//!
//! Every packed kernel performs, per lane, the identical residue-domain
//! operation sequence as the scalar kernels in [`crate::poseidon`], so
//! outputs are bit-identical to `LANES` scalar permutations (pinned by the
//! `packed_equivalence` differential wall).
//!
//! # Routing knobs
//!
//! [`set_hash_lanes`] selects the lane width (1 = scalar, 2/4/8 = packed)
//! and [`set_packed_min_batch`] the minimum batch size at which batched
//! dispatches engage packing — both process-global throughput knobs in the
//! style of the NTT thresholds: no setting changes any digest, proof byte,
//! or deterministic trace counter.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use unizk_field::{Field, Goldilocks};

use crate::poseidon::{
    constants, poseidon_permute, sbox_residue, NoncePermutation, PoseidonConstants, FULL_ROUNDS,
    PARTIAL_ROUNDS, WIDTH,
};

/// Widest supported lane count.
pub const MAX_LANES: usize = 8;

/// Lane width used when no override is set and `UNIZK_HASH_LANES` is unset.
/// 8 lanes measured fastest on the reference host (deepest independent
/// multiply chains per reduction-latency bubble); see EXPERIMENTS.md.
const DEFAULT_HASH_LANES: usize = 8;

/// Default minimum batch size for packed batched dispatches.
const DEFAULT_PACKED_MIN_BATCH: usize = 2;

static HASH_LANES: AtomicUsize = AtomicUsize::new(0);
static PACKED_MIN_BATCH: AtomicUsize = AtomicUsize::new(0);

/// The compiled-in / environment default lane width, read once per process.
fn default_hash_lanes() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("UNIZK_HASH_LANES") {
        Ok(s) => {
            let n: usize = s
                .parse()
                .unwrap_or_else(|_| panic!("UNIZK_HASH_LANES must be a number, got {s:?}"));
            assert!(
                matches!(n, 1 | 2 | 4 | 8),
                "UNIZK_HASH_LANES must be 1, 2, 4, or 8, got {n}"
            );
            n
        }
        Err(_) => DEFAULT_HASH_LANES,
    })
}

/// Sets the process-global Poseidon lane width: `1` forces the scalar
/// permutation everywhere, `2`/`4`/`8` select a packed width, and `0`
/// restores the default (the `UNIZK_HASH_LANES` environment variable if
/// set, otherwise 8).
///
/// Like the NTT routing thresholds, this is a throughput knob with
/// count-once counter semantics: every lane width produces bit-identical
/// digests, proofs, and deterministic trace counters.
///
/// # Panics
///
/// Panics if `n` is not one of `0, 1, 2, 4, 8`.
pub fn set_hash_lanes(n: usize) {
    assert!(
        matches!(n, 0 | 1 | 2 | 4 | 8),
        "hash lane width must be 0 (default), 1, 2, 4, or 8, got {n}"
    );
    HASH_LANES.store(n, Ordering::SeqCst);
}

/// The currently effective Poseidon lane width (always one of 1, 2, 4, 8).
pub fn hash_lanes() -> usize {
    match HASH_LANES.load(Ordering::SeqCst) {
        0 => default_hash_lanes(),
        n => n,
    }
}

/// Sets the minimum number of sponges a batched dispatch must contain
/// before the packed path engages (`0` restores the default of
/// 2). Smaller batches run the scalar permutation per state.
pub fn set_packed_min_batch(n: usize) {
    PACKED_MIN_BATCH.store(n, Ordering::SeqCst);
}

/// The current minimum batch size for packed dispatch.
pub fn packed_min_batch() -> usize {
    match PACKED_MIN_BATCH.load(Ordering::SeqCst) {
        0 => DEFAULT_PACKED_MIN_BATCH,
        n => n,
    }
}

// ----------------------------------------------------------- SoA kernels
//
// All kernels operate on `[[u64; LANES]; WIDTH]` residue lanes: row `i`
// holds element `i` of every lane. Constants are shared; the innermost
// loops run over lanes, which the compiler fully unrolls for the fixed
// `LANES` widths the dispatchers instantiate.

/// `x^7` on every lane, interleaved so the four-multiply chains of all
/// lanes overlap (the scalar chain is the permutation's latency
/// bottleneck). Identical multiply order per lane as the scalar s-box.
#[inline]
fn sbox_lanes<const LANES: usize>(xs: &mut [u64; LANES]) {
    let mut x2 = [0u64; LANES];
    for (y, &x) in x2.iter_mut().zip(xs.iter()) {
        *y = Goldilocks::mul_residue(x, x);
    }
    let mut x4 = [0u64; LANES];
    for (y, &x) in x4.iter_mut().zip(x2.iter()) {
        *y = Goldilocks::mul_residue(x, x);
    }
    let mut x6 = [0u64; LANES];
    for (y, (&a, &b)) in x6.iter_mut().zip(x4.iter().zip(x2.iter())) {
        *y = Goldilocks::mul_residue(a, b);
    }
    for (x, &a) in xs.iter_mut().zip(x6.iter()) {
        *x = Goldilocks::mul_residue(a, *x);
    }
}

/// Accumulator block width for lane dot products. Four `u128`
/// accumulators fit the general-purpose register file, so the inner
/// multiply-accumulate loop runs without accumulator spill traffic while
/// still overlapping enough independent multiply chains to hide latency;
/// an 8-lane accumulator array, by contrast, lives in memory and pays a
/// load/store pair per fused multiply-add.
const DOT_BLOCK: usize = 4;

/// Small-constant dot product of one matrix row against every lane,
/// processed [`DOT_BLOCK`] lanes at a time: the same sub-`2^96` `reduce96`
/// budget argument as the scalar [`crate::poseidon`] fast path, applied
/// per lane.
#[inline]
fn row_dot_lanes<const LANES: usize>(
    row: &[Goldilocks; WIDTH],
    state: &[[u64; LANES]; WIDTH],
    out: &mut [u64; LANES],
) {
    let mut l = 0;
    while l + DOT_BLOCK <= LANES {
        let mut acc = [0u128; DOT_BLOCK];
        for (c, xs) in row.iter().zip(state.iter()) {
            let c = u128::from(c.as_canonical_u64());
            for (a, x) in acc.iter_mut().zip(xs[l..l + DOT_BLOCK].iter()) {
                *a += c * u128::from(*x);
            }
        }
        for (y, &a) in out[l..l + DOT_BLOCK].iter_mut().zip(acc.iter()) {
            *y = Goldilocks::reduce96_residue(a);
        }
        l += DOT_BLOCK;
    }
    while l < LANES {
        let mut acc = 0u128;
        for (c, xs) in row.iter().zip(state.iter()) {
            acc += u128::from(c.as_canonical_u64()) * u128::from(xs[l]);
        }
        out[l] = Goldilocks::reduce96_residue(acc);
        l += 1;
    }
}

/// Dense small-entry matrix–vector product across lanes.
#[inline]
fn mat_lanes<const LANES: usize>(
    m: &[[Goldilocks; WIDTH]; WIDTH],
    state: &[[u64; LANES]; WIDTH],
) -> [[u64; LANES]; WIDTH] {
    let mut out = [[0u64; LANES]; WIDTH];
    for (o, row) in out.iter_mut().zip(m.iter()) {
        row_dot_lanes(row, state, o);
    }
    out
}

/// One output row of the dense matrix–vector product — the final full
/// round of a grind attempt only needs the squeezed lane, so the other 11
/// rows' accumulations are skipped.
#[inline]
fn mat_row_lanes<const LANES: usize>(
    m: &[[Goldilocks; WIDTH]; WIDTH],
    state: &[[u64; LANES]; WIDTH],
    row: usize,
) -> [u64; LANES] {
    let mut out = [0u64; LANES];
    row_dot_lanes(&m[row], state, &mut out);
    out
}

/// The add-constant + s-box layer of full round `r`.
#[inline]
fn sbox_layer_lanes<const LANES: usize>(
    cs: &PoseidonConstants,
    state: &mut [[u64; LANES]; WIDTH],
    r: usize,
) {
    for (xs, c) in state.iter_mut().zip(cs.round_constants[r].iter()) {
        let c = c.as_canonical_u64();
        for x in xs.iter_mut() {
            *x = Goldilocks::add_residue(*x, c);
        }
        sbox_lanes(xs);
    }
}

fn full_round_lanes<const LANES: usize>(
    cs: &PoseidonConstants,
    state: &mut [[u64; LANES]; WIDTH],
    r: usize,
) {
    sbox_layer_lanes(cs, state, r);
    *state = mat_lanes(&cs.mds, state);
}

fn pre_partial_lanes<const LANES: usize>(
    cs: &PoseidonConstants,
    state: &mut [[u64; LANES]; WIDTH],
) {
    for (xs, c) in state.iter_mut().zip(cs.pre_partial_constants.iter()) {
        let c = c.as_canonical_u64();
        for x in xs.iter_mut() {
            *x = Goldilocks::add_residue(*x, c);
        }
    }
    *state = mat_lanes(&cs.pre_mds, state);
}

fn partial_round_lanes<const LANES: usize>(
    cs: &PoseidonConstants,
    state: &mut [[u64; LANES]; WIDTH],
    r: usize,
) {
    let rc = cs.partial_round_constants[r].as_canonical_u64();
    sbox_lanes(&mut state[0]);
    for x in state[0].iter_mut() {
        *x = Goldilocks::add_residue(*x, rc);
    }

    // Sparse MDS, per lane: out[0] = u·state; out[i] = v[i]·state[0] +
    // E[i]·state[i] — the same sub-2^96 accumulations as the scalar round.
    let u = &cs.sparse_u[r];
    let v = &cs.sparse_v[r];
    let e = &cs.sparse_diag[r];
    let mut dot = [0u64; LANES];
    row_dot_lanes(u, state, &mut dot);
    let s0 = state[0];
    for i in 1..WIDTH {
        let vi = u128::from(v[i].as_canonical_u64());
        let ei = u128::from(e[i].as_canonical_u64());
        let row = &mut state[i];
        for (x, &s) in row.iter_mut().zip(s0.iter()) {
            *x = Goldilocks::reduce96_residue(vi * u128::from(s) + ei * u128::from(*x));
        }
    }
    state[0] = dot;
}

/// Runs the full round schedule on a struct-of-arrays residue state.
pub(crate) fn permute_soa<const LANES: usize>(state: &mut [[u64; LANES]; WIDTH]) {
    let cs = constants();
    for r in 0..FULL_ROUNDS / 2 {
        full_round_lanes(cs, state, r);
    }
    pre_partial_lanes(cs, state);
    for r in 0..PARTIAL_ROUNDS {
        partial_round_lanes(cs, state, r);
    }
    for r in FULL_ROUNDS / 2..FULL_ROUNDS {
        full_round_lanes(cs, state, r);
    }
}

// -------------------------------------------------------------- public API

/// `LANES` width-12 Poseidon sponges permuted in lockstep.
///
/// The type is a compile-time dispatch handle: lane data lives in the
/// caller's arrays, and [`PackedPermutation::permute`] transposes them
/// through the struct-of-arrays round kernels.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
/// use unizk_hash::{poseidon_permute, PackedPermutation, WIDTH};
///
/// let mut lanes = [[Goldilocks::from_u64(7); WIDTH]; 4];
/// PackedPermutation::<4>::permute(&mut lanes);
///
/// let mut scalar = [Goldilocks::from_u64(7); WIDTH];
/// poseidon_permute(&mut scalar);
/// assert_eq!(lanes[0], scalar); // lockstep lanes equal the scalar path
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PackedPermutation<const LANES: usize>;

impl<const LANES: usize> PackedPermutation<LANES> {
    /// The lane count of this instantiation.
    pub const LANES: usize = LANES;

    /// Applies the Poseidon permutation to every lane in lockstep.
    ///
    /// Bit-identical to `LANES` calls of
    /// [`poseidon_permute`].
    pub fn permute(states: &mut [[Goldilocks; WIDTH]; LANES]) {
        let mut soa = [[0u64; LANES]; WIDTH];
        for (l, st) in states.iter().enumerate() {
            for (row, x) in soa.iter_mut().zip(st.iter()) {
                row[l] = x.as_canonical_u64();
            }
        }
        permute_soa(&mut soa);
        for (l, st) in states.iter_mut().enumerate() {
            for (row, x) in soa.iter().zip(st.iter_mut()) {
                *x = Goldilocks::from_residue(row[l]);
            }
        }
    }
}

/// Permutes a batch of sponge states, routing groups of [`hash_lanes`]
/// states through the packed kernels and any remainder (or a batch below
/// [`packed_min_batch`]) through the scalar permutation.
///
/// Bit-identical to permuting each state with
/// [`poseidon_permute`] for every knob
/// setting. Does not touch trace counters — batched sponge dispatchers
/// account their own logical permutation counts.
pub fn permute_batch(states: &mut [[Goldilocks; WIDTH]]) {
    let lanes = hash_lanes();
    if lanes <= 1 || states.len() < packed_min_batch().max(2) {
        for s in states.iter_mut() {
            poseidon_permute(s);
        }
        return;
    }
    match lanes {
        2 => permute_batch_lanes::<2>(states),
        8 => permute_batch_lanes::<8>(states),
        _ => permute_batch_lanes::<4>(states),
    }
}

fn permute_batch_lanes<const LANES: usize>(states: &mut [[Goldilocks; WIDTH]]) {
    let mut chunks = states.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        let mut soa = [[0u64; LANES]; WIDTH];
        for (l, st) in chunk.iter().enumerate() {
            for (row, x) in soa.iter_mut().zip(st.iter()) {
                row[l] = x.as_canonical_u64();
            }
        }
        permute_soa(&mut soa);
        for (l, st) in chunk.iter_mut().enumerate() {
            for (row, x) in soa.iter().zip(st.iter_mut()) {
                *x = Goldilocks::from_residue(row[l]);
            }
        }
    }
    for s in chunks.into_remainder() {
        poseidon_permute(s);
    }
}

impl NoncePermutation {
    /// Runs `LANES` nonce-lane permutations in lockstep, sharing the
    /// hoisted static round-0 work across every candidate.
    ///
    /// Lane `l` of the result equals
    /// [`permute_with`](NoncePermutation::permute_with)`(xs[l])`.
    pub fn permute_many<const LANES: usize>(
        &self,
        xs: &[Goldilocks; LANES],
    ) -> [[Goldilocks; WIDTH]; LANES] {
        let cs = constants();
        let mut state = self.round_zero_lanes(xs);
        Self::middle_rounds_lanes(cs, &mut state);
        full_round_lanes(cs, &mut state, FULL_ROUNDS - 1);
        let mut out = [[Goldilocks::ZERO; WIDTH]; LANES];
        for (l, st) in out.iter_mut().enumerate() {
            for (row, x) in state.iter().zip(st.iter_mut()) {
                *x = Goldilocks::from_residue(row[l]);
            }
        }
        out
    }

    /// [`permute_many`](NoncePermutation::permute_many), but computes only
    /// output element `row` — the shape of the grind, which squeezes one
    /// rate element per attempt, so the final round's MDS pays one row
    /// instead of twelve.
    ///
    /// # Panics
    ///
    /// Panics if `row >= WIDTH`.
    pub fn permute_many_row<const LANES: usize>(
        &self,
        xs: &[Goldilocks; LANES],
        row: usize,
    ) -> [Goldilocks; LANES] {
        assert!(row < WIDTH, "output row out of range");
        let cs = constants();
        let mut state = self.round_zero_lanes(xs);
        Self::middle_rounds_lanes(cs, &mut state);
        sbox_layer_lanes(cs, &mut state, FULL_ROUNDS - 1);
        let lanes = mat_row_lanes(&cs.mds, &state, row);
        let mut out = [Goldilocks::ZERO; LANES];
        for (x, &l) in out.iter_mut().zip(lanes.iter()) {
            *x = Goldilocks::from_residue(l);
        }
        out
    }

    /// Round 0 with the static lanes hoisted: one s-box and one
    /// accumulator join per nonce candidate, identical to the scalar
    /// [`permute_with`](NoncePermutation::permute_with) entry.
    fn round_zero_lanes<const LANES: usize>(
        &self,
        xs: &[Goldilocks; LANES],
    ) -> [[u64; LANES]; WIDTH] {
        let mut sx = [0u64; LANES];
        for (s, x) in sx.iter_mut().zip(xs.iter()) {
            *s = sbox_residue(Goldilocks::add_residue(x.as_canonical_u64(), self.nonce_rc));
        }
        let mut state = [[0u64; LANES]; WIDTH];
        for ((row, &acc), &col) in state
            .iter_mut()
            .zip(self.static_acc.iter())
            .zip(self.nonce_col.iter())
        {
            let col = u128::from(col);
            for (y, &s) in row.iter_mut().zip(sx.iter()) {
                *y = Goldilocks::reduce96_residue(acc + col * u128::from(s));
            }
        }
        state
    }

    /// Rounds 1 through `FULL_ROUNDS - 2` plus the partial block — shared
    /// by the full-state and single-row exits.
    fn middle_rounds_lanes<const LANES: usize>(
        cs: &PoseidonConstants,
        state: &mut [[u64; LANES]; WIDTH],
    ) {
        for r in 1..FULL_ROUNDS / 2 {
            full_round_lanes(cs, state, r);
        }
        pre_partial_lanes(cs, state);
        for r in 0..PARTIAL_ROUNDS {
            partial_round_lanes(cs, state, r);
        }
        for r in FULL_ROUNDS / 2..FULL_ROUNDS - 1 {
            full_round_lanes(cs, state, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::PrimeField64;
    use unizk_testkit::rng::SplitMix64;

    /// Serializes tests that mutate the process-global lane knobs.
    static KNOBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn random_state(rng: &mut SplitMix64) -> [Goldilocks; WIDTH] {
        let mut st = [Goldilocks::ZERO; WIDTH];
        for x in st.iter_mut() {
            *x = Goldilocks::random(rng);
        }
        st
    }

    fn packed_case<const LANES: usize>(rng: &mut SplitMix64) {
        let mut lanes = [[Goldilocks::ZERO; WIDTH]; LANES];
        for st in lanes.iter_mut() {
            *st = random_state(rng);
        }
        let mut expected = lanes;
        for st in expected.iter_mut() {
            poseidon_permute(st);
        }
        PackedPermutation::<LANES>::permute(&mut lanes);
        assert_eq!(lanes, expected, "LANES={LANES}");
    }

    #[test]
    fn packed_matches_scalar_for_every_width() {
        let mut rng = SplitMix64::seed_from_u64(0x9ACCED);
        for _ in 0..4 {
            packed_case::<1>(&mut rng);
            packed_case::<2>(&mut rng);
            packed_case::<3>(&mut rng);
            packed_case::<4>(&mut rng);
            packed_case::<8>(&mut rng);
        }
    }

    #[test]
    fn permute_batch_matches_scalar_with_remainder() {
        let _lock = KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = SplitMix64::seed_from_u64(0xBA7C);
        // 11 states: with 4 lanes that's two packed groups + a 3-state tail.
        let mut states: Vec<[Goldilocks; WIDTH]> = (0..11).map(|_| random_state(&mut rng)).collect();
        let mut expected = states.clone();
        for st in expected.iter_mut() {
            poseidon_permute(st);
        }
        set_hash_lanes(4);
        permute_batch(&mut states);
        set_hash_lanes(0);
        assert_eq!(states, expected);
    }

    #[test]
    fn nonce_lanes_match_scalar_nonce_permutation() {
        let mut rng = SplitMix64::seed_from_u64(0x40CE);
        let base = random_state(&mut rng);
        let hoisted = NoncePermutation::new(&base, 3);
        let xs = [0u64, 1, 42, u64::MAX].map(Goldilocks::from_u64);
        let packed = hoisted.permute_many(&xs);
        for (l, &x) in xs.iter().enumerate() {
            assert_eq!(packed[l], hoisted.permute_with(x), "lane {l}");
        }
        for row in 0..WIDTH {
            let rows = hoisted.permute_many_row(&xs, row);
            let expected: Vec<Goldilocks> = packed.iter().map(|lane| lane[row]).collect();
            assert_eq!(rows.to_vec(), expected, "row {row}");
        }
    }

    #[test]
    #[should_panic(expected = "output row out of range")]
    fn permute_many_row_rejects_bad_row() {
        let hoisted = NoncePermutation::new(&[Goldilocks::ZERO; WIDTH], 0);
        let _ = hoisted.permute_many_row(&[Goldilocks::ZERO; 2], WIDTH);
    }

    #[test]
    fn lane_knob_validates_and_round_trips() {
        let _lock = KNOBS.lock().unwrap_or_else(|e| e.into_inner());
        set_hash_lanes(8);
        assert_eq!(hash_lanes(), 8);
        set_hash_lanes(1);
        assert_eq!(hash_lanes(), 1);
        set_hash_lanes(0);
        assert!(matches!(hash_lanes(), 1 | 2 | 4 | 8));
        set_packed_min_batch(16);
        assert_eq!(packed_min_batch(), 16);
        set_packed_min_batch(0);
        assert_eq!(packed_min_batch(), 2);
    }

    #[test]
    #[should_panic(expected = "hash lane width")]
    fn lane_knob_rejects_unsupported_width() {
        set_hash_lanes(3);
    }
}
