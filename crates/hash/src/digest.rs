//! The 4-element hash digest type (256 bits of Goldilocks elements).

use core::fmt;

use unizk_field::{Field, Goldilocks};

/// A hash output: four Goldilocks elements (~256 bits), the digest width
/// Plonky2 uses for Merkle nodes and Fiat–Shamir observations.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct Digest(pub [Goldilocks; 4]);

impl Digest {
    /// The all-zero digest (used as padding, never produced by hashing).
    pub const ZERO: Self = Self([Goldilocks::new(0); 4]);

    /// Builds a digest from exactly four elements.
    ///
    /// # Panics
    ///
    /// Panics if `elems.len() != 4`.
    pub fn from_slice(elems: &[Goldilocks]) -> Self {
        assert_eq!(elems.len(), 4, "digest needs exactly 4 elements");
        Self([elems[0], elems[1], elems[2], elems[3]])
    }

    /// The digest's elements.
    pub fn elements(&self) -> [Goldilocks; 4] {
        self.0
    }

    /// Serialized size in bytes (4 × 8).
    pub const BYTES: usize = 32;
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Digest({:016x}{:016x}{:016x}{:016x})",
            self.0[0].as_u64(),
            self.0[1].as_u64(),
            self.0[2].as_u64(),
            self.0[3].as_u64()
        )
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_slice_roundtrip() {
        let elems: Vec<Goldilocks> = (1..=4u64).map(Goldilocks::from_u64).collect();
        let d = Digest::from_slice(&elems);
        assert_eq!(d.elements().to_vec(), elems);
    }

    #[test]
    #[should_panic(expected = "exactly 4")]
    fn from_slice_wrong_len() {
        let _ = Digest::from_slice(&[Goldilocks::ZERO; 3]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Digest::ZERO).is_empty());
    }
}
