//! The 4-element hash digest type, generic over the base field.

use core::fmt;

use unizk_field::{Goldilocks, PrimeField64};

/// A hash output: four base-field elements, the digest width Plonky2 uses
/// for Merkle nodes and Fiat–Shamir observations.
///
/// The limb count is four for *every* field: the 4+4 `two_to_one` packing
/// then fits the rate of both the width-12 Goldilocks sponge and the
/// width-16 KoalaBear sponge, and the wire layout stays uniform. Over
/// Goldilocks that is ~256 bits; over KoalaBear it is 4 × 31 = 124 bits —
/// a deliberate modeling simplification (production small-field stacks
/// widen the digest to 8 limbs; see ARCHITECTURE.md §generic stack).
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct Digest<F: PrimeField64 = Goldilocks>(pub [F; 4]);

impl<F: PrimeField64> Digest<F> {
    /// The all-zero digest (used as padding, never produced by hashing).
    pub const ZERO: Self = Self([F::ZERO; 4]);

    /// Serialized size in bytes (4 × the field's wire width: 32 over
    /// Goldilocks, 16 over KoalaBear).
    pub const BYTES: usize = 4 * F::BYTES;

    /// Builds a digest from exactly four elements.
    ///
    /// # Panics
    ///
    /// Panics if `elems.len() != 4`.
    pub fn from_slice(elems: &[F]) -> Self {
        assert_eq!(elems.len(), 4, "digest needs exactly 4 elements");
        Self([elems[0], elems[1], elems[2], elems[3]])
    }

    /// The digest's elements.
    pub fn elements(&self) -> [F; 4] {
        self.0
    }
}

impl<F: PrimeField64> fmt::Debug for Digest<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Digest({:016x}{:016x}{:016x}{:016x})",
            self.0[0].as_u64(),
            self.0[1].as_u64(),
            self.0[2].as_u64(),
            self.0[3].as_u64()
        )
    }
}

impl<F: PrimeField64> fmt::Display for Digest<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::{Field, KoalaBear};

    #[test]
    fn from_slice_roundtrip() {
        let elems: Vec<Goldilocks> = (1..=4u64).map(Goldilocks::from_u64).collect();
        let d = Digest::from_slice(&elems);
        assert_eq!(d.elements().to_vec(), elems);
    }

    #[test]
    #[should_panic(expected = "exactly 4")]
    fn from_slice_wrong_len() {
        let _ = Digest::from_slice(&[Goldilocks::ZERO; 3]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Digest::<Goldilocks>::ZERO).is_empty());
    }

    #[test]
    fn per_field_wire_widths() {
        assert_eq!(Digest::<Goldilocks>::BYTES, 32);
        assert_eq!(Digest::<KoalaBear>::BYTES, 16);
    }
}
