//! The Poseidon permutation over 12 Goldilocks elements (paper Algorithm 1).
//!
//! Round structure (identical to Plonky2's):
//!
//! ```text
//! for r in 0..4  { FullRound(r) }        // add const, x^7, × MDS
//! PrePartialRound                        // add const vector, × pre-MDS
//! for r in 0..22 { PartialRound(r) }     // x^7 on state[0], add const, × sparse MDS
//! for r in 4..8  { FullRound(r) }
//! ```
//!
//! The sparse MDS matrix of the partial rounds decomposes into a first row
//! `u`, a first column `v`, and a diagonal `E` (paper Fig. 5b) — exactly the
//! structure UniZK's 12×3-PE partial-round mapping exploits.

use unizk_field::{Field, Goldilocks};

/// Poseidon state width in field elements.
pub const WIDTH: usize = 12;
/// Sponge rate: elements absorbed/squeezed per permutation.
pub const SPONGE_RATE: usize = 8;
/// Sponge capacity (`WIDTH - SPONGE_RATE`).
pub const SPONGE_CAPACITY: usize = WIDTH - SPONGE_RATE;
/// Number of full rounds (split 4 + 4 around the partial rounds).
pub const FULL_ROUNDS: usize = 8;
/// Number of partial rounds.
pub const PARTIAL_ROUNDS: usize = 22;

/// Deterministic constant generator (splitmix64). See the crate-level
/// substitution note: these replace Plonky2's Grain-LFSR constants while
/// preserving the permutation's structure.
const fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const fn gen_field(state: &mut u64) -> Goldilocks {
    // Same reduction as `Field::from_u64` (which is not `const`).
    Goldilocks::new(splitmix64(state) % unizk_field::goldilocks::P)
}

/// Small nonzero matrix entry (< 2^7), enabling lazy-reduction
/// matrix–vector products — the structure real optimized Poseidon
/// instances (including Plonky2's "fast" partial rounds) rely on.
const fn gen_small(state: &mut u64) -> Goldilocks {
    Goldilocks::new(splitmix64(state) % 96 + 1)
}

/// All constants the permutation needs, generated once.
#[derive(Clone, Debug)]
pub struct PoseidonConstants {
    /// `RoundConst[r][i]` for the 8 full rounds.
    pub round_constants: [[Goldilocks; WIDTH]; FULL_ROUNDS],
    /// `PartialRoundConst[r]` for the 22 partial rounds.
    pub partial_round_constants: [Goldilocks; PARTIAL_ROUNDS],
    /// The constant vector added by the pre-partial round.
    pub pre_partial_constants: [Goldilocks; WIDTH],
    /// Dense MDS matrix (row-major) for full rounds.
    pub mds: [[Goldilocks; WIDTH]; WIDTH],
    /// Dense matrix for the pre-partial round.
    pub pre_mds: [[Goldilocks; WIDTH]; WIDTH],
    /// Sparse-MDS first rows `u` per partial round.
    pub sparse_u: [[Goldilocks; WIDTH]; PARTIAL_ROUNDS],
    /// Sparse-MDS first columns `v` (index 0 unused) per partial round.
    pub sparse_v: [[Goldilocks; WIDTH]; PARTIAL_ROUNDS],
    /// Sparse-MDS diagonals `E` (index 0 unused) per partial round.
    pub sparse_diag: [[Goldilocks; WIDTH]; PARTIAL_ROUNDS],
}

impl PoseidonConstants {
    // `const` (index-based `while` loops: `for`/iterators are not usable in
    // const eval) so the whole table lands in a `static` at compile time and
    // the hot kernels read matrix entries the optimizer can treat as
    // immediates rather than opaque `OnceLock` loads.
    const fn generate() -> Self {
        let mut s: u64 = 0x556E_695A_4B32_3032; // "UniZK2025"-ish seed

        let mut round_constants = [[Goldilocks::ZERO; WIDTH]; FULL_ROUNDS];
        let mut r = 0;
        while r < FULL_ROUNDS {
            let mut i = 0;
            while i < WIDTH {
                round_constants[r][i] = gen_field(&mut s);
                i += 1;
            }
            r += 1;
        }

        let mut partial_round_constants = [Goldilocks::ZERO; PARTIAL_ROUNDS];
        let mut r = 0;
        while r < PARTIAL_ROUNDS {
            partial_round_constants[r] = gen_field(&mut s);
            r += 1;
        }

        let mut pre_partial_constants = [Goldilocks::ZERO; WIDTH];
        let mut i = 0;
        while i < WIDTH {
            pre_partial_constants[i] = gen_field(&mut s);
            i += 1;
        }

        // Circulant MDS from a row of small nonzero entries, mirroring the
        // circulant structure real Poseidon instances use.
        let mut first_row = [Goldilocks::ZERO; WIDTH];
        let mut i = 0;
        while i < WIDTH {
            first_row[i] = Goldilocks::new(splitmix64(&mut s) % 61 + 1);
            i += 1;
        }
        let mut mds = [[Goldilocks::ZERO; WIDTH]; WIDTH];
        let mut i = 0;
        while i < WIDTH {
            let mut j = 0;
            while j < WIDTH {
                mds[i][j] = first_row[(j + WIDTH - i) % WIDTH];
                j += 1;
            }
            i += 1;
        }

        let mut pre_mds = [[Goldilocks::ZERO; WIDTH]; WIDTH];
        let mut i = 0;
        while i < WIDTH {
            let mut j = 0;
            while j < WIDTH {
                pre_mds[i][j] = gen_small(&mut s);
                j += 1;
            }
            i += 1;
        }

        let mut sparse_u = [[Goldilocks::ZERO; WIDTH]; PARTIAL_ROUNDS];
        let mut sparse_v = [[Goldilocks::ZERO; WIDTH]; PARTIAL_ROUNDS];
        let mut sparse_diag = [[Goldilocks::ZERO; WIDTH]; PARTIAL_ROUNDS];
        let mut r = 0;
        while r < PARTIAL_ROUNDS {
            let mut i = 0;
            while i < WIDTH {
                sparse_u[r][i] = gen_small(&mut s);
                i += 1;
            }
            let mut i = 1;
            while i < WIDTH {
                sparse_v[r][i] = gen_small(&mut s);
                sparse_diag[r][i] = gen_small(&mut s);
                i += 1;
            }
            r += 1;
        }

        Self {
            round_constants,
            partial_round_constants,
            pre_partial_constants,
            mds,
            pre_mds,
            sparse_u,
            sparse_v,
            sparse_diag,
        }
    }
}

/// The process-wide constant set, evaluated at compile time.
static CONSTANTS: PoseidonConstants = PoseidonConstants::generate();

/// The process-wide constant set.
pub fn constants() -> &'static PoseidonConstants {
    &CONSTANTS
}

/// `x^7` over lazy residues (see [`Goldilocks::reduce128_residue`]): the
/// three intermediate products stay in `[0, 2^64)` without the final
/// canonicalizing subtraction, which every multiply in the chain would
/// otherwise pay.
#[inline]
pub(crate) fn sbox_residue(x: u64) -> u64 {
    // x^7 = x^4 · x^2 · x  (3 squarings/multiplies, as in hardware).
    let x2 = Goldilocks::mul_residue(x, x);
    let x4 = Goldilocks::mul_residue(x2, x2);
    Goldilocks::mul_residue(Goldilocks::mul_residue(x4, x2), x)
}

#[cfg(test)]
fn mat_mul(m: &[[Goldilocks; WIDTH]; WIDTH], state: &[Goldilocks; WIDTH]) -> [Goldilocks; WIDTH] {
    let mut out = [Goldilocks::ZERO; WIDTH];
    for (o, row) in out.iter_mut().zip(m.iter()) {
        let mut acc = Goldilocks::ZERO;
        for (c, x) in row.iter().zip(state.iter()) {
            acc += *c * *x;
        }
        *o = acc;
    }
    out
}

/// MDS matrix–vector product over residue lanes, exploiting the small
/// matrix entries (< 2^7): twelve `u128` partial products of a `< 2^7`
/// constant and a `< 2^64` residue sum to under `2^75 < 2^96`, so each
/// output row pays one [`Goldilocks::reduce96_residue`] instead of twelve
/// modular multiplies plus a full 128-bit reduction. This is the software
/// analogue of the cheap constant multipliers the hardware MDS step enjoys.
fn mds_residue(m: &[[Goldilocks; WIDTH]; WIDTH], state: &[u64; WIDTH]) -> [u64; WIDTH] {
    let mut out = [0u64; WIDTH];
    for (o, row) in out.iter_mut().zip(m.iter()) {
        let mut acc: u128 = 0;
        for (c, x) in row.iter().zip(state.iter()) {
            acc += u128::from(c.as_canonical_u64()) * u128::from(*x);
        }
        *o = Goldilocks::reduce96_residue(acc);
    }
    out
}

fn full_round(cs: &PoseidonConstants, state: &mut [u64; WIDTH], r: usize) {
    for (x, c) in state.iter_mut().zip(cs.round_constants[r].iter()) {
        *x = sbox_residue(Goldilocks::add_residue(*x, c.as_canonical_u64()));
    }
    *state = mds_residue(&cs.mds, state);
}

fn pre_partial_round(cs: &PoseidonConstants, state: &mut [u64; WIDTH]) {
    for (x, c) in state.iter_mut().zip(cs.pre_partial_constants.iter()) {
        *x = Goldilocks::add_residue(*x, c.as_canonical_u64());
    }
    *state = mds_residue(&cs.pre_mds, state);
}

fn partial_round(cs: &PoseidonConstants, state: &mut [u64; WIDTH], r: usize) {
    state[0] = Goldilocks::add_residue(
        sbox_residue(state[0]),
        cs.partial_round_constants[r].as_canonical_u64(),
    );

    // Sparse MDS: out[0] = u·state; out[i] = v[i]·state[0] + E[i]·state[i].
    // All entries are < 2^7, so both the 12-term dot and each two-term row
    // update stay below 2^96 and take the short reduction.
    let u = &cs.sparse_u[r];
    let v = &cs.sparse_v[r];
    let e = &cs.sparse_diag[r];
    let mut dot: u128 = 0;
    for (c, x) in u.iter().zip(state.iter()) {
        dot += u128::from(c.as_canonical_u64()) * u128::from(*x);
    }
    let s0 = state[0];
    for i in 1..WIDTH {
        let acc = u128::from(v[i].as_canonical_u64()) * u128::from(s0)
            + u128::from(e[i].as_canonical_u64()) * u128::from(state[i]);
        state[i] = Goldilocks::reduce96_residue(acc);
    }
    state[0] = Goldilocks::reduce96_residue(dot);
}

/// Applies the full Poseidon permutation in place.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
/// use unizk_hash::poseidon_permute;
///
/// let mut state = [Goldilocks::ZERO; 12];
/// poseidon_permute(&mut state);
/// assert_ne!(state[0], Goldilocks::ZERO); // zero state does not stay zero
/// ```
pub fn poseidon_permute(state: &mut [Goldilocks; WIDTH]) {
    let cs = constants();
    // Rounds run over lazy residues (< 2^64, possibly non-canonical) and the
    // canonicalizing subtraction is paid exactly once per lane on exit; the
    // outputs are bit-identical to a fully-reduced evaluation (pinned by the
    // KAT suite).
    let mut lanes = [0u64; WIDTH];
    for (l, x) in lanes.iter_mut().zip(state.iter()) {
        *l = x.as_canonical_u64();
    }
    for r in 0..FULL_ROUNDS / 2 {
        full_round(cs, &mut lanes, r);
    }
    pre_partial_round(cs, &mut lanes);
    for r in 0..PARTIAL_ROUNDS {
        partial_round(cs, &mut lanes, r);
    }
    for r in FULL_ROUNDS / 2..FULL_ROUNDS {
        full_round(cs, &mut lanes, r);
    }
    for (x, l) in state.iter_mut().zip(lanes.iter()) {
        *x = Goldilocks::from_residue(*l);
    }
}

/// A permutation with every input lane fixed except one, with the static
/// lanes' first-round work precomputed.
///
/// This is the shape of the FRI grind (proof-of-work) loop: thousands of
/// permutations whose inputs differ only in the nonce lane. Round 0 applies
/// the round constants and s-box to each lane independently before the MDS
/// mix, so for the 11 static lanes both steps — and their contributions to
/// every MDS output accumulator — are attempt-invariant. [`Self::new`]
/// hoists them; [`Self::permute_with`] then pays one s-box, `WIDTH`
/// constant-by-residue products, and the remaining rounds per attempt.
///
/// Output is bit-identical to [`poseidon_permute`] on the same full input
/// (pinned by `nonce_permutation_matches_full_permutation`); this is purely
/// a common-subexpression hoist, not an approximation.
#[derive(Clone, Debug)]
pub struct NoncePermutation {
    /// Per-output-row MDS accumulators over the 11 static sboxed lanes.
    /// Bound: 11 terms of `< 2^7 · 2^64`, comfortably below the `2^96`
    /// budget even after the nonce term joins.
    pub(crate) static_acc: [u128; WIDTH],
    /// `mds[i][lane]` for each output row `i` (canonical, `< 2^7`).
    pub(crate) nonce_col: [u64; WIDTH],
    /// Round-0 constant for the nonce lane.
    pub(crate) nonce_rc: u64,
}

impl NoncePermutation {
    /// Precomputes the static round-0 work for a permutation whose input
    /// equals `state` everywhere except index `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= WIDTH`.
    pub fn new(state: &[Goldilocks; WIDTH], lane: usize) -> Self {
        assert!(lane < WIDTH, "nonce lane out of range");
        let cs = constants();
        let mut sboxed = [0u64; WIDTH];
        for (i, (x, c)) in state.iter().zip(cs.round_constants[0].iter()).enumerate() {
            if i != lane {
                sboxed[i] = sbox_residue(Goldilocks::add_residue(
                    x.as_canonical_u64(),
                    c.as_canonical_u64(),
                ));
            }
        }
        let mut static_acc = [0u128; WIDTH];
        let mut nonce_col = [0u64; WIDTH];
        for ((acc, col), row) in static_acc
            .iter_mut()
            .zip(nonce_col.iter_mut())
            .zip(cs.mds.iter())
        {
            for (j, (c, x)) in row.iter().zip(sboxed.iter()).enumerate() {
                if j != lane {
                    *acc += u128::from(c.as_canonical_u64()) * u128::from(*x);
                }
            }
            *col = row[lane].as_canonical_u64();
        }
        Self {
            static_acc,
            nonce_col,
            nonce_rc: cs.round_constants[0][lane].as_canonical_u64(),
        }
    }

    /// Runs the permutation with `x` in the nonce lane, returning the full
    /// output state.
    pub fn permute_with(&self, x: Goldilocks) -> [Goldilocks; WIDTH] {
        let cs = constants();
        let sx = sbox_residue(Goldilocks::add_residue(x.as_canonical_u64(), self.nonce_rc));
        let mut lanes = [0u64; WIDTH];
        for ((l, acc), c) in lanes
            .iter_mut()
            .zip(self.static_acc.iter())
            .zip(self.nonce_col.iter())
        {
            *l = Goldilocks::reduce96_residue(*acc + u128::from(*c) * u128::from(sx));
        }
        for r in 1..FULL_ROUNDS / 2 {
            full_round(cs, &mut lanes, r);
        }
        pre_partial_round(cs, &mut lanes);
        for r in 0..PARTIAL_ROUNDS {
            partial_round(cs, &mut lanes, r);
        }
        for r in FULL_ROUNDS / 2..FULL_ROUNDS {
            full_round(cs, &mut lanes, r);
        }
        let mut out = [Goldilocks::ZERO; WIDTH];
        for (o, l) in out.iter_mut().zip(lanes.iter()) {
            *o = Goldilocks::from_residue(*l);
        }
        out
    }
}

/// Static operation counts of one permutation, used by the accelerator cost
/// model (`unizk-core`) and the CPU-baseline roofline estimates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoseidonCost {
    /// Modular multiplications per permutation.
    pub muls: usize,
    /// Modular additions per permutation.
    pub adds: usize,
}

impl PoseidonCost {
    /// Derives the counts from the round structure.
    pub const fn of_permutation() -> Self {
        // Full round: WIDTH s-boxes (4 muls each: sq, sq, mul, mul) + dense
        // mat-vec (WIDTH^2 muls, WIDTH*(WIDTH-1) adds) + WIDTH const adds.
        let full_muls = WIDTH * 4 + WIDTH * WIDTH;
        let full_adds = WIDTH + WIDTH * (WIDTH - 1);
        // Pre-partial: dense mat-vec + const adds.
        let pre_muls = WIDTH * WIDTH;
        let pre_adds = WIDTH + WIDTH * (WIDTH - 1);
        // Partial round: 1 s-box (4 muls) + 1 const add + sparse mat-vec
        // (u-dot: WIDTH muls + WIDTH-1 adds; rows: 2(WIDTH-1) muls +
        // (WIDTH-1) adds).
        let partial_muls = 4 + WIDTH + 2 * (WIDTH - 1);
        let partial_adds = 1 + (WIDTH - 1) + (WIDTH - 1);
        Self {
            muls: FULL_ROUNDS * full_muls + pre_muls + PARTIAL_ROUNDS * partial_muls,
            adds: FULL_ROUNDS * full_adds + pre_adds + PARTIAL_ROUNDS * partial_adds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical-domain s-box wrapper over the residue kernel.
    fn sbox(x: Goldilocks) -> Goldilocks {
        Goldilocks::from_residue(sbox_residue(x.as_canonical_u64()))
    }

    fn to_residues(state: &[Goldilocks; WIDTH]) -> [u64; WIDTH] {
        let mut out = [0u64; WIDTH];
        for (o, x) in out.iter_mut().zip(state.iter()) {
            *o = x.as_canonical_u64();
        }
        out
    }

    fn from_residues(lanes: &[u64; WIDTH]) -> [Goldilocks; WIDTH] {
        let mut out = [Goldilocks::ZERO; WIDTH];
        for (o, l) in out.iter_mut().zip(lanes.iter()) {
            *o = Goldilocks::from_residue(*l);
        }
        out
    }

    #[test]
    fn permutation_is_deterministic() {
        let mut a = [Goldilocks::from_u64(3); WIDTH];
        let mut b = [Goldilocks::from_u64(3); WIDTH];
        poseidon_permute(&mut a);
        poseidon_permute(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_differs_on_different_inputs() {
        let mut a = [Goldilocks::ZERO; WIDTH];
        let mut b = [Goldilocks::ZERO; WIDTH];
        b[0] = Goldilocks::ONE;
        poseidon_permute(&mut a);
        poseidon_permute(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn single_bit_diffusion() {
        // After the permutation, flipping one input element should change
        // every output element (full diffusion).
        let mut base = [Goldilocks::from_u64(42); WIDTH];
        let mut flipped = base;
        flipped[7] += Goldilocks::ONE;
        poseidon_permute(&mut base);
        poseidon_permute(&mut flipped);
        for i in 0..WIDTH {
            assert_ne!(base[i], flipped[i], "lane {i} did not diffuse");
        }
    }

    #[test]
    fn sbox_is_x_to_the_7() {
        let x = Goldilocks::from_u64(5);
        assert_eq!(sbox(x), x.exp_u64(7));
        assert_eq!(sbox(Goldilocks::ZERO), Goldilocks::ZERO);
        assert_eq!(sbox(Goldilocks::ONE), Goldilocks::ONE);
    }

    #[test]
    fn sparse_round_matches_dense_equivalent() {
        // Build the dense matrix from (u, v, E) and check partial_round's
        // sparse evaluation agrees with a dense mat-vec.
        let cs = constants();
        let r = 5;
        let mut dense = [[Goldilocks::ZERO; WIDTH]; WIDTH];
        dense[0] = cs.sparse_u[r];
        for (i, row) in dense.iter_mut().enumerate().skip(1) {
            row[0] = cs.sparse_v[r][i];
            row[i] = cs.sparse_diag[r][i];
        }

        let mut state = [Goldilocks::ZERO; WIDTH];
        for (i, x) in state.iter_mut().enumerate() {
            *x = Goldilocks::from_u64(i as u64 + 1);
        }

        // Expected: apply s-box + const, then dense multiply.
        let mut expected = state;
        expected[0] = sbox(expected[0]) + cs.partial_round_constants[r];
        let expected = mat_mul(&dense, &expected);

        let mut got = to_residues(&state);
        partial_round(cs, &mut got, r);
        assert_eq!(from_residues(&got), expected);
    }

    #[test]
    fn mds_fast_path_matches_generic() {
        let cs = constants();
        let mut state = [Goldilocks::ZERO; WIDTH];
        for (i, x) in state.iter_mut().enumerate() {
            *x = Goldilocks::from_u64(u64::MAX - i as u64); // near-p values
        }
        let fast = mds_residue(&cs.mds, &to_residues(&state));
        assert_eq!(from_residues(&fast), mat_mul(&cs.mds, &state));
    }

    #[test]
    fn residue_rounds_accept_noncanonical_lanes() {
        // Feed each round kernel a lane pinned at u64::MAX (the worst legal
        // residue) next to its canonical equivalent and check congruence.
        let cs = constants();
        let mut canonical = [Goldilocks::ZERO; WIDTH];
        for (i, x) in canonical.iter_mut().enumerate() {
            *x = Goldilocks::from_u64(u64::MAX).mul_pow2(i); // u64::MAX ≡ MAX - p
        }
        let mut lazy = to_residues(&canonical);
        lazy[0] = u64::MAX; // ≡ canonical[0], but non-canonical form

        let mut a = to_residues(&canonical);
        let mut b = lazy;
        full_round(cs, &mut a, 0);
        full_round(cs, &mut b, 0);
        assert_eq!(from_residues(&a), from_residues(&b));

        let mut a = to_residues(&canonical);
        let mut b = lazy;
        partial_round(cs, &mut a, 3);
        partial_round(cs, &mut b, 3);
        assert_eq!(from_residues(&a), from_residues(&b));
    }

    #[test]
    fn nonce_permutation_matches_full_permutation() {
        let mut s = 0xBEEF;
        let mut base = [Goldilocks::ZERO; WIDTH];
        for x in base.iter_mut() {
            *x = gen_field(&mut s);
        }
        for lane in 0..WIDTH {
            let hoisted = NoncePermutation::new(&base, lane);
            for nonce in [0u64, 1, 42, u64::MAX] {
                let x = Goldilocks::from_u64(nonce);
                let mut full = base;
                full[lane] = x;
                poseidon_permute(&mut full);
                assert_eq!(hoisted.permute_with(x), full, "lane={lane} nonce={nonce}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonce lane out of range")]
    fn nonce_permutation_rejects_bad_lane() {
        let _ = NoncePermutation::new(&[Goldilocks::ZERO; WIDTH], WIDTH);
    }

    #[test]
    fn mds_is_circulant() {
        let cs = constants();
        for i in 0..WIDTH {
            for j in 0..WIDTH {
                assert_eq!(cs.mds[i][j], cs.mds[(i + 1) % WIDTH][(j + 1) % WIDTH]);
            }
        }
    }

    #[test]
    fn cost_counts_are_sane() {
        let cost = PoseidonCost::of_permutation();
        // 8 full rounds dominate: 8 * (48 + 144) = 1536 muls, plus pre and
        // partial contributions.
        assert_eq!(
            cost.muls,
            8 * (12 * 4 + 144) + 144 + 22 * (4 + 12 + 22)
        );
        assert!(cost.adds > 1000);
    }
}
