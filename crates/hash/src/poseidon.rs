//! The Poseidon permutation over 12 Goldilocks elements (paper Algorithm 1).
//!
//! Round structure (identical to Plonky2's):
//!
//! ```text
//! for r in 0..4  { FullRound(r) }        // add const, x^7, × MDS
//! PrePartialRound                        // add const vector, × pre-MDS
//! for r in 0..22 { PartialRound(r) }     // x^7 on state[0], add const, × sparse MDS
//! for r in 4..8  { FullRound(r) }
//! ```
//!
//! The sparse MDS matrix of the partial rounds decomposes into a first row
//! `u`, a first column `v`, and a diagonal `E` (paper Fig. 5b) — exactly the
//! structure UniZK's 12×3-PE partial-round mapping exploits.

use unizk_field::{Field, Goldilocks};

/// Poseidon state width in field elements.
pub const WIDTH: usize = 12;
/// Sponge rate: elements absorbed/squeezed per permutation.
pub const SPONGE_RATE: usize = 8;
/// Sponge capacity (`WIDTH - SPONGE_RATE`).
pub const SPONGE_CAPACITY: usize = WIDTH - SPONGE_RATE;
/// Number of full rounds (split 4 + 4 around the partial rounds).
pub const FULL_ROUNDS: usize = 8;
/// Number of partial rounds.
pub const PARTIAL_ROUNDS: usize = 22;

/// Deterministic constant generator (splitmix64). See the crate-level
/// substitution note: these replace Plonky2's Grain-LFSR constants while
/// preserving the permutation's structure.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn gen_field(state: &mut u64) -> Goldilocks {
    Goldilocks::from_u64(splitmix64(state))
}

/// Small nonzero matrix entry (< 2^7), enabling lazy-reduction
/// matrix–vector products — the structure real optimized Poseidon
/// instances (including Plonky2's "fast" partial rounds) rely on.
fn gen_small(state: &mut u64) -> Goldilocks {
    Goldilocks::from_u64(splitmix64(state) % 96 + 1)
}

/// All constants the permutation needs, generated once.
#[derive(Clone, Debug)]
pub struct PoseidonConstants {
    /// `RoundConst[r][i]` for the 8 full rounds.
    pub round_constants: [[Goldilocks; WIDTH]; FULL_ROUNDS],
    /// `PartialRoundConst[r]` for the 22 partial rounds.
    pub partial_round_constants: [Goldilocks; PARTIAL_ROUNDS],
    /// The constant vector added by the pre-partial round.
    pub pre_partial_constants: [Goldilocks; WIDTH],
    /// Dense MDS matrix (row-major) for full rounds.
    pub mds: [[Goldilocks; WIDTH]; WIDTH],
    /// Dense matrix for the pre-partial round.
    pub pre_mds: [[Goldilocks; WIDTH]; WIDTH],
    /// Sparse-MDS first rows `u` per partial round.
    pub sparse_u: [[Goldilocks; WIDTH]; PARTIAL_ROUNDS],
    /// Sparse-MDS first columns `v` (index 0 unused) per partial round.
    pub sparse_v: [[Goldilocks; WIDTH]; PARTIAL_ROUNDS],
    /// Sparse-MDS diagonals `E` (index 0 unused) per partial round.
    pub sparse_diag: [[Goldilocks; WIDTH]; PARTIAL_ROUNDS],
}

impl PoseidonConstants {
    fn generate() -> Self {
        let mut s: u64 = 0x556E_695A_4B32_3032; // "UniZK2025"-ish seed

        let mut round_constants = [[Goldilocks::ZERO; WIDTH]; FULL_ROUNDS];
        for row in round_constants.iter_mut() {
            for c in row.iter_mut() {
                *c = gen_field(&mut s);
            }
        }

        let mut partial_round_constants = [Goldilocks::ZERO; PARTIAL_ROUNDS];
        for c in partial_round_constants.iter_mut() {
            *c = gen_field(&mut s);
        }

        let mut pre_partial_constants = [Goldilocks::ZERO; WIDTH];
        for c in pre_partial_constants.iter_mut() {
            *c = gen_field(&mut s);
        }

        // Circulant MDS from a row of small nonzero entries, mirroring the
        // circulant structure real Poseidon instances use.
        let mut first_row = [Goldilocks::ZERO; WIDTH];
        for c in first_row.iter_mut() {
            *c = Goldilocks::from_u64(splitmix64(&mut s) % 61 + 1);
        }
        let mut mds = [[Goldilocks::ZERO; WIDTH]; WIDTH];
        for (i, row) in mds.iter_mut().enumerate() {
            for (j, c) in row.iter_mut().enumerate() {
                *c = first_row[(j + WIDTH - i) % WIDTH];
            }
        }

        let mut pre_mds = [[Goldilocks::ZERO; WIDTH]; WIDTH];
        for row in pre_mds.iter_mut() {
            for c in row.iter_mut() {
                *c = gen_small(&mut s);
            }
        }

        let mut sparse_u = [[Goldilocks::ZERO; WIDTH]; PARTIAL_ROUNDS];
        let mut sparse_v = [[Goldilocks::ZERO; WIDTH]; PARTIAL_ROUNDS];
        let mut sparse_diag = [[Goldilocks::ZERO; WIDTH]; PARTIAL_ROUNDS];
        for r in 0..PARTIAL_ROUNDS {
            for u in sparse_u[r].iter_mut() {
                *u = gen_small(&mut s);
            }
            for i in 1..WIDTH {
                sparse_v[r][i] = gen_small(&mut s);
                sparse_diag[r][i] = gen_small(&mut s);
            }
        }

        Self {
            round_constants,
            partial_round_constants,
            pre_partial_constants,
            mds,
            pre_mds,
            sparse_u,
            sparse_v,
            sparse_diag,
        }
    }
}

/// The process-wide constant set.
pub fn constants() -> &'static PoseidonConstants {
    use std::sync::OnceLock;
    static CONSTANTS: OnceLock<PoseidonConstants> = OnceLock::new();
    CONSTANTS.get_or_init(PoseidonConstants::generate)
}

#[inline]
fn sbox(x: Goldilocks) -> Goldilocks {
    // x^7 = x^4 · x^2 · x  (3 squarings/multiplies, as in hardware).
    let x2 = x.square();
    let x4 = x2.square();
    x4 * x2 * x
}

#[cfg(test)]
fn mat_mul(m: &[[Goldilocks; WIDTH]; WIDTH], state: &[Goldilocks; WIDTH]) -> [Goldilocks; WIDTH] {
    let mut out = [Goldilocks::ZERO; WIDTH];
    for (o, row) in out.iter_mut().zip(m.iter()) {
        let mut acc = Goldilocks::ZERO;
        for (c, x) in row.iter().zip(state.iter()) {
            acc += *c * *x;
        }
        *o = acc;
    }
    out
}

/// MDS matrix–vector product exploiting the small circulant entries
/// (< 2^7): twelve `u128` partial products sum to < 2^75, so one lazy
/// reduction per output row replaces twelve modular multiplies. This is
/// the software analogue of the cheap constant multipliers the hardware
/// MDS step enjoys.
fn mds_mat_mul(m: &[[Goldilocks; WIDTH]; WIDTH], state: &[Goldilocks; WIDTH]) -> [Goldilocks; WIDTH] {
    let mut out = [Goldilocks::ZERO; WIDTH];
    for (o, row) in out.iter_mut().zip(m.iter()) {
        let mut acc: u128 = 0;
        for (c, x) in row.iter().zip(state.iter()) {
            acc += (c.as_canonical_u64() as u128) * (x.as_canonical_u64() as u128);
        }
        *o = Goldilocks::reduce128(acc);
    }
    out
}

fn full_round(state: &mut [Goldilocks; WIDTH], r: usize) {
    let cs = constants();
    for (x, c) in state.iter_mut().zip(cs.round_constants[r].iter()) {
        *x = sbox(*x + *c);
    }
    *state = mds_mat_mul(&cs.mds, state);
}

fn pre_partial_round(state: &mut [Goldilocks; WIDTH]) {
    let cs = constants();
    for (x, c) in state.iter_mut().zip(cs.pre_partial_constants.iter()) {
        *x += *c;
    }
    *state = mds_mat_mul(&cs.pre_mds, state);
}

fn partial_round(state: &mut [Goldilocks; WIDTH], r: usize) {
    let cs = constants();
    state[0] = sbox(state[0]);
    state[0] += cs.partial_round_constants[r];

    // Sparse MDS: out[0] = u·state; out[i] = v[i]·state[0] + E[i]·state[i].
    let u = &cs.sparse_u[r];
    let v = &cs.sparse_v[r];
    let e = &cs.sparse_diag[r];
    let mut dot: u128 = 0;
    for (c, x) in u.iter().zip(state.iter()) {
        dot += (c.as_canonical_u64() as u128) * (x.as_canonical_u64() as u128);
    }
    let s0 = state[0];
    for i in 1..WIDTH {
        // Both entries are small: one lazy reduction covers the pair.
        let acc = (v[i].as_canonical_u64() as u128) * (s0.as_canonical_u64() as u128)
            + (e[i].as_canonical_u64() as u128) * (state[i].as_canonical_u64() as u128);
        state[i] = Goldilocks::reduce128(acc);
    }
    state[0] = Goldilocks::reduce128(dot);
}

/// Applies the full Poseidon permutation in place.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
/// use unizk_hash::poseidon_permute;
///
/// let mut state = [Goldilocks::ZERO; 12];
/// poseidon_permute(&mut state);
/// assert_ne!(state[0], Goldilocks::ZERO); // zero state does not stay zero
/// ```
pub fn poseidon_permute(state: &mut [Goldilocks; WIDTH]) {
    for r in 0..FULL_ROUNDS / 2 {
        full_round(state, r);
    }
    pre_partial_round(state);
    for r in 0..PARTIAL_ROUNDS {
        partial_round(state, r);
    }
    for r in FULL_ROUNDS / 2..FULL_ROUNDS {
        full_round(state, r);
    }
}

/// Static operation counts of one permutation, used by the accelerator cost
/// model (`unizk-core`) and the CPU-baseline roofline estimates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoseidonCost {
    /// Modular multiplications per permutation.
    pub muls: usize,
    /// Modular additions per permutation.
    pub adds: usize,
}

impl PoseidonCost {
    /// Derives the counts from the round structure.
    pub const fn of_permutation() -> Self {
        // Full round: WIDTH s-boxes (4 muls each: sq, sq, mul, mul) + dense
        // mat-vec (WIDTH^2 muls, WIDTH*(WIDTH-1) adds) + WIDTH const adds.
        let full_muls = WIDTH * 4 + WIDTH * WIDTH;
        let full_adds = WIDTH + WIDTH * (WIDTH - 1);
        // Pre-partial: dense mat-vec + const adds.
        let pre_muls = WIDTH * WIDTH;
        let pre_adds = WIDTH + WIDTH * (WIDTH - 1);
        // Partial round: 1 s-box (4 muls) + 1 const add + sparse mat-vec
        // (u-dot: WIDTH muls + WIDTH-1 adds; rows: 2(WIDTH-1) muls +
        // (WIDTH-1) adds).
        let partial_muls = 4 + WIDTH + 2 * (WIDTH - 1);
        let partial_adds = 1 + (WIDTH - 1) + (WIDTH - 1);
        Self {
            muls: FULL_ROUNDS * full_muls + pre_muls + PARTIAL_ROUNDS * partial_muls,
            adds: FULL_ROUNDS * full_adds + pre_adds + PARTIAL_ROUNDS * partial_adds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_deterministic() {
        let mut a = [Goldilocks::from_u64(3); WIDTH];
        let mut b = [Goldilocks::from_u64(3); WIDTH];
        poseidon_permute(&mut a);
        poseidon_permute(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_differs_on_different_inputs() {
        let mut a = [Goldilocks::ZERO; WIDTH];
        let mut b = [Goldilocks::ZERO; WIDTH];
        b[0] = Goldilocks::ONE;
        poseidon_permute(&mut a);
        poseidon_permute(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn single_bit_diffusion() {
        // After the permutation, flipping one input element should change
        // every output element (full diffusion).
        let mut base = [Goldilocks::from_u64(42); WIDTH];
        let mut flipped = base;
        flipped[7] += Goldilocks::ONE;
        poseidon_permute(&mut base);
        poseidon_permute(&mut flipped);
        for i in 0..WIDTH {
            assert_ne!(base[i], flipped[i], "lane {i} did not diffuse");
        }
    }

    #[test]
    fn sbox_is_x_to_the_7() {
        let x = Goldilocks::from_u64(5);
        assert_eq!(sbox(x), x.exp_u64(7));
        assert_eq!(sbox(Goldilocks::ZERO), Goldilocks::ZERO);
        assert_eq!(sbox(Goldilocks::ONE), Goldilocks::ONE);
    }

    #[test]
    fn sparse_round_matches_dense_equivalent() {
        // Build the dense matrix from (u, v, E) and check partial_round's
        // sparse evaluation agrees with a dense mat-vec.
        let cs = constants();
        let r = 5;
        let mut dense = [[Goldilocks::ZERO; WIDTH]; WIDTH];
        dense[0] = cs.sparse_u[r];
        for (i, row) in dense.iter_mut().enumerate().skip(1) {
            row[0] = cs.sparse_v[r][i];
            row[i] = cs.sparse_diag[r][i];
        }

        let mut state = [Goldilocks::ZERO; WIDTH];
        for (i, x) in state.iter_mut().enumerate() {
            *x = Goldilocks::from_u64(i as u64 + 1);
        }

        // Expected: apply s-box + const, then dense multiply.
        let mut expected = state;
        expected[0] = sbox(expected[0]) + cs.partial_round_constants[r];
        let expected = mat_mul(&dense, &expected);

        let mut got = state;
        partial_round(&mut got, r);
        assert_eq!(got, expected);
    }

    #[test]
    fn mds_fast_path_matches_generic() {
        let cs = constants();
        let mut state = [Goldilocks::ZERO; WIDTH];
        for (i, x) in state.iter_mut().enumerate() {
            *x = Goldilocks::from_u64(u64::MAX - i as u64); // near-p values
        }
        assert_eq!(mds_mat_mul(&cs.mds, &state), mat_mul(&cs.mds, &state));
    }

    #[test]
    fn mds_is_circulant() {
        let cs = constants();
        for i in 0..WIDTH {
            for j in 0..WIDTH {
                assert_eq!(cs.mds[i][j], cs.mds[(i + 1) % WIDTH][(j + 1) % WIDTH]);
            }
        }
    }

    #[test]
    fn cost_counts_are_sane() {
        let cost = PoseidonCost::of_permutation();
        // 8 full rounds dominate: 8 * (48 + 144) = 1536 muls, plus pre and
        // partial contributions.
        assert_eq!(
            cost.muls,
            8 * (12 * 4 + 144) + 144 + 22 * (4 + 12 + 22)
        );
        assert!(cost.adds > 1000);
    }
}
