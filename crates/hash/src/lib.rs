//! Cryptographic hashing for the UniZK reproduction.
//!
//! Implements the hash substrate of Plonky2/Starky that the paper's
//! accelerator spends most of its cycles on (Table 1: Merkle tree
//! construction alone is ~60% of CPU proving time):
//!
//! * [`poseidon`] — the Poseidon permutation over 12 Goldilocks elements,
//!   with the exact round structure of the paper's Algorithm 1 (4 full
//!   rounds, a pre-partial round, 22 partial rounds with a sparse MDS
//!   matrix, 4 full rounds; `x^7` S-box).
//! * [`sponge`] — sponge hashing (`rate = 8`) and the duplex
//!   [`sponge::Challenger`] used for Fiat–Shamir transforms.
//! * [`merkle`] — Merkle tree construction with the paper's leaf-absorb and
//!   4+4+zero-pad interior-node rule (§5.3), plus opening proofs.
//! * [`workspace`] — the [`Workspace`] buffer-recycling seam the
//!   proof-serving pipeline threads through tree construction and the
//!   prover layers above.
//!
//! **Substitution note (see DESIGN.md):** round constants and matrix entries
//! are generated deterministically from a seed rather than copied from
//! Plonky2's Grain-LFSR output. The computational *structure* — what the
//! accelerator maps and what the simulator costs — is identical.
//!
//! # Example
//!
//! ```
//! use unizk_field::{Field, Goldilocks};
//! use unizk_hash::sponge::hash_no_pad;
//!
//! let input: Vec<Goldilocks> = (0..20u64).map(Goldilocks::from_u64).collect();
//! let digest = hash_no_pad(&input);
//! assert_ne!(digest.0[0], Goldilocks::ZERO);
//! ```

#![forbid(unsafe_code)]

pub mod digest;
pub mod merkle;
pub mod packed;
pub mod poseidon;
pub mod poseidon2;
pub mod poseidon2_kb;
pub mod sponge;
pub mod workspace;

pub use digest::Digest;
pub use merkle::{GenericMerkleTree, MerkleProof, MerkleTree};
pub use packed::{
    hash_lanes, packed_min_batch, set_hash_lanes, set_packed_min_batch, PackedPermutation,
    MAX_LANES,
};
pub use poseidon::{
    poseidon_permute, NoncePermutation, PoseidonCost, SPONGE_CAPACITY, SPONGE_RATE, WIDTH,
};
pub use poseidon2::{poseidon2_permute, Poseidon2Constants, Poseidon2Sponge};
pub use poseidon2_kb::{poseidon2_kb_permute, Poseidon2KbConstants, Poseidon2KbSponge};
pub use sponge::{
    compress_level, compress_level_with, hash_many, hash_many_with, hash_no_pad, hash_no_pad_with,
    two_to_one, two_to_one_with, Challenger, GenericChallenger, GenericSpeculativeChallenger,
    HashField, PoseidonSponge, SpeculativeChallenger, SpongeBackend,
};
pub use workspace::{Workspace, WorkspaceStats};
