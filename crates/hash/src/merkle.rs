//! Merkle tree construction and opening proofs (paper §5.3).
//!
//! Leaves hold arbitrary-length element vectors (in FRI, the concatenated
//! values of all polynomials at one LDE point) hashed via the absorb method.
//! Interior nodes hash the concatenation of the two child digests (4 + 4
//! elements, zero padded). Nodes are stored in level order — the layout the
//! paper chooses so that tree construction streams sequentially through
//! memory and subtrees can be processed scratchpad-resident.
//!
//! The tree is generic over the sponge backend (and hence the field):
//! [`MerkleTree`] is the Goldilocks/Poseidon alias of
//! [`GenericMerkleTree`], and the KoalaBear proof path instantiates the
//! same code with [`crate::poseidon2_kb::Poseidon2KbSponge`].

use unizk_field::{log2_strict, Goldilocks, PrimeField64};

use crate::digest::Digest;
use crate::sponge::{
    compress_level_with, hash_many_with, hash_no_pad_with, two_to_one_with, HashField,
    PoseidonSponge, SpongeBackend,
};
use crate::workspace::Workspace;

/// Leaves (or interior pairs) hashed per parallel work item. Chunking
/// amortizes worker dispatch over many hashes instead of paying it per
/// leaf; the value is a throughput knob, not a correctness parameter
/// (any chunk size yields identical digests and counters).
const HASH_CHUNK: usize = 128;

/// Hashes every leaf through the batched sponge dispatcher
/// ([`hash_many_with`]), which absorbs runs of equal-length leaves in
/// lockstep through the backend's packed engine. Under multi-threading,
/// workers receive `chunk_size` leaves at a time and batch-hash them, so
/// per-item dispatch overhead is paid once per chunk rather than once per
/// leaf.
///
/// Equivalent to `leaves.iter().map(|l| hash_no_pad_with::<B>(l))` for
/// every chunk size, lane width, and thread count (the per-leaf
/// `B::COUNTER` accounting is preserved exactly), which the edge-case
/// suite pins down.
///
/// # Panics
///
/// Panics if `chunk_size` is zero.
pub fn hash_leaves_with<B: SpongeBackend>(
    leaves: &[Vec<B::F>],
    chunk_size: usize,
) -> Vec<Digest<B::F>> {
    let mut out = Vec::with_capacity(leaves.len());
    hash_leaves_into::<B>(leaves, chunk_size, &mut out);
    out
}

/// [`hash_leaves_with`] over the default Poseidon backend.
pub fn hash_leaves(leaves: &[Vec<Goldilocks>], chunk_size: usize) -> Vec<Digest> {
    hash_leaves_with::<PoseidonSponge>(leaves, chunk_size)
}

/// [`hash_leaves_with`] writing into a caller-supplied (typically pooled)
/// buffer, so the level-0 digest vector — the largest in the tree — can be
/// recycled across jobs.
fn hash_leaves_into<B: SpongeBackend>(
    leaves: &[Vec<B::F>],
    chunk_size: usize,
    out: &mut Vec<Digest<B::F>>,
) {
    assert!(chunk_size > 0, "chunk size must be positive");
    if unizk_field::par::current_parallelism() == 1 || leaves.len() <= chunk_size {
        let refs: Vec<&[B::F]> = leaves.iter().map(Vec::as_slice).collect();
        out.extend(hash_many_with::<B>(&refs));
        return;
    }
    let ranges: Vec<(usize, usize)> = (0..leaves.len())
        .step_by(chunk_size)
        .map(|s| (s, (s + chunk_size).min(leaves.len())))
        .collect();
    let chunks = unizk_field::parallel_map(ranges, |(s, e)| {
        let refs: Vec<&[B::F]> = leaves[s..e].iter().map(Vec::as_slice).collect();
        hash_many_with::<B>(&refs)
    });
    for c in chunks {
        out.extend(c);
    }
}

/// One interior Merkle level: compresses adjacent digest pairs of `prev`
/// into `out` through the batched dispatcher ([`compress_level_with`]),
/// chunked across workers exactly like [`hash_leaves_with`].
fn hash_pairs_into<B: SpongeBackend>(
    prev: &[Digest<B::F>],
    chunk_size: usize,
    out: &mut Vec<Digest<B::F>>,
) {
    debug_assert!(prev.len().is_multiple_of(2));
    let n = prev.len() / 2;
    if unizk_field::par::current_parallelism() == 1 || n <= chunk_size {
        out.extend(compress_level_with::<B>(prev));
        return;
    }
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk_size)
        .map(|s| (s, (s + chunk_size).min(n)))
        .collect();
    let chunks =
        unizk_field::parallel_map(ranges, |(s, e)| compress_level_with::<B>(&prev[2 * s..2 * e]));
    for c in chunks {
        out.extend(c);
    }
}

/// A binary Merkle tree over element-vector leaves, generic over the
/// sponge backend.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
/// use unizk_hash::MerkleTree;
///
/// let leaves: Vec<Vec<Goldilocks>> = (0..8u64)
///     .map(|i| vec![Goldilocks::from_u64(i)])
///     .collect();
/// let tree = MerkleTree::new(leaves.clone());
/// let proof = tree.prove(3);
/// assert!(MerkleTree::verify(tree.root(), 3, &leaves[3], &proof));
/// ```
#[derive(Clone, Debug)]
pub struct GenericMerkleTree<B: SpongeBackend> {
    /// The original leaf data, kept so openings can return leaf contents.
    leaves: Vec<Vec<B::F>>,
    /// `levels[0]` = leaf digests, `levels.last()` = `[root]`.
    levels: Vec<Vec<Digest<B::F>>>,
}

/// The default (Goldilocks, Poseidon) Merkle tree.
pub type MerkleTree = GenericMerkleTree<PoseidonSponge>;

/// An authentication path from a leaf to the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof<F: PrimeField64 = Goldilocks> {
    /// Sibling digests, leaf level first.
    pub siblings: Vec<Digest<F>>,
}

impl<F: PrimeField64> MerkleProof<F> {
    /// Serialized size in bytes (each digest is [`Digest::BYTES`] bytes:
    /// 32 over Goldilocks, 16 over KoalaBear).
    pub fn size_bytes(&self) -> usize {
        self.siblings.len() * Digest::<F>::BYTES
    }
}

impl<B: SpongeBackend> GenericMerkleTree<B> {
    /// Builds a tree over `leaves`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len()` is not a power of two (the protocol always
    /// commits to power-of-two LDE domains).
    pub fn new(leaves: Vec<Vec<B::F>>) -> Self {
        Self::new_in(leaves, None)
    }

    /// Builds a tree over `leaves`, drawing each level's digest buffer from
    /// `ws` when one is supplied (the proof-serving path). Digests are
    /// bit-identical either way; only the provenance of the backing
    /// allocations differs. Give the buffers back with
    /// [`recycle`](GenericMerkleTree::recycle) once the tree is no longer
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len()` is not a power of two.
    pub fn new_in(leaves: Vec<Vec<B::F>>, ws: Option<&Workspace>) -> Self {
        assert!(
            leaves.len().is_power_of_two(),
            "leaf count must be a power of two, got {}",
            leaves.len()
        );
        let _build_span = unizk_testkit::trace::span("merkle.build");
        unizk_testkit::trace::counter("merkle.trees", 1);
        unizk_testkit::trace::counter("merkle.leaves", leaves.len() as u64);
        // Hashes at one level are independent (paper §5.3), so both the leaf
        // digests and each interior level parallelize trivially; work is
        // distributed in chunks of HASH_CHUNK hashes per worker item.
        let mut levels = Vec::with_capacity(log2_strict(leaves.len()) + 1);
        let mut first = B::F::take_digests(ws, leaves.len());
        hash_leaves_into::<B>(&leaves, HASH_CHUNK, &mut first);
        levels.push(first);
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = B::F::take_digests(ws, prev.len() / 2);
            hash_pairs_into::<B>(prev, HASH_CHUNK, &mut next);
            levels.push(next);
        }
        Self { leaves, levels }
    }

    /// Consumes the tree, shelving its leaf table and every level's digest
    /// buffer in `ws` for the next job on this worker. Call this instead of
    /// dropping when serving many proofs from one process.
    pub fn recycle(self, ws: &Workspace) {
        B::F::put_table(Some(ws), self.leaves);
        for level in self.levels {
            B::F::put_digests(Some(ws), level);
        }
    }

    /// The root digest (the commitment sent to the verifier).
    pub fn root(&self) -> Digest<B::F> {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Tree height (number of sibling digests in a proof).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// The raw contents of leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn leaf(&self, index: usize) -> &[B::F] {
        &self.leaves[index]
    }

    /// Produces the authentication path for leaf `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn prove(&self, index: usize) -> MerkleProof<B::F> {
        assert!(index < self.leaves.len(), "leaf index out of bounds");
        let mut siblings = Vec::with_capacity(self.height());
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            siblings.push(level[idx ^ 1]);
            idx >>= 1;
        }
        MerkleProof { siblings }
    }

    /// Verifies that `leaf_data` is the content of leaf `index` under
    /// `root`.
    pub fn verify(
        root: Digest<B::F>,
        index: usize,
        leaf_data: &[B::F],
        proof: &MerkleProof<B::F>,
    ) -> bool {
        let mut digest = hash_no_pad_with::<B>(leaf_data);
        let mut idx = index;
        for &sibling in &proof.siblings {
            digest = if idx & 1 == 0 {
                two_to_one_with::<B>(digest, sibling)
            } else {
                two_to_one_with::<B>(sibling, digest)
            };
            idx >>= 1;
        }
        idx == 0 && digest == root
    }

    /// Total sponge permutations needed to build a tree with these leaf
    /// lengths — the simulator's hash-kernel work unit (§5.3). Both shipped
    /// backends share `RATE = 8`, so the count is field-independent.
    pub fn permutation_cost(leaf_lens: &[usize]) -> usize {
        let leaf_perms: usize = leaf_lens
            .iter()
            .map(|&l| crate::sponge::permutation_count(l))
            .sum();
        // Interior nodes: one permutation each; a full binary tree with L
        // leaves has L - 1 interior nodes.
        leaf_perms + leaf_lens.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_field::Field;

    fn leaves(n: usize, width: usize) -> Vec<Vec<Goldilocks>> {
        (0..n)
            .map(|i| {
                (0..width)
                    .map(|j| Goldilocks::from_u64((i * width + j) as u64))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn all_proofs_verify() {
        let data = leaves(16, 5);
        let tree = MerkleTree::new(data.clone());
        for (i, leaf) in data.iter().enumerate() {
            let proof = tree.prove(i);
            assert!(MerkleTree::verify(tree.root(), i, leaf, &proof), "leaf {i}");
            assert_eq!(proof.siblings.len(), 4);
        }
    }

    #[test]
    fn wrong_leaf_data_rejected() {
        let data = leaves(8, 3);
        let tree = MerkleTree::new(data.clone());
        let proof = tree.prove(2);
        let mut bad = data[2].clone();
        bad[0] += Goldilocks::ONE;
        assert!(!MerkleTree::verify(tree.root(), 2, &bad, &proof));
    }

    #[test]
    fn wrong_index_rejected() {
        let data = leaves(8, 3);
        let tree = MerkleTree::new(data.clone());
        let proof = tree.prove(2);
        assert!(!MerkleTree::verify(tree.root(), 3, &data[2], &proof));
        // Out-of-range index (beyond tree size) must also fail, not panic.
        assert!(!MerkleTree::verify(tree.root(), 8 + 2, &data[2], &proof));
    }

    #[test]
    fn tampered_sibling_rejected() {
        let data = leaves(8, 3);
        let tree = MerkleTree::new(data.clone());
        let mut proof = tree.prove(5);
        proof.siblings[1] = Digest::ZERO;
        assert!(!MerkleTree::verify(tree.root(), 5, &data[5], &proof));
    }

    #[test]
    fn wrong_root_rejected() {
        let data = leaves(8, 3);
        let tree = MerkleTree::new(data.clone());
        let proof = tree.prove(0);
        assert!(!MerkleTree::verify(Digest::ZERO, 0, &data[0], &proof));
    }

    #[test]
    fn single_leaf_tree() {
        let data = leaves(1, 4);
        let tree = MerkleTree::new(data.clone());
        assert_eq!(tree.height(), 0);
        let proof = tree.prove(0);
        assert!(proof.siblings.is_empty());
        assert!(MerkleTree::verify(tree.root(), 0, &data[0], &proof));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = MerkleTree::new(leaves(3, 2));
    }

    #[test]
    fn root_depends_on_every_leaf() {
        let data = leaves(16, 2);
        let tree = MerkleTree::new(data.clone());
        for i in 0..16 {
            let mut tweaked = data.clone();
            tweaked[i][0] += Goldilocks::ONE;
            let other = MerkleTree::new(tweaked);
            assert_ne!(other.root(), tree.root(), "leaf {i}");
        }
    }

    #[test]
    fn variable_length_leaves() {
        // The paper's leaf example: length-135 leaves (circuit width).
        let data: Vec<Vec<Goldilocks>> = (0..4u64)
            .map(|i| (0..135).map(|j| Goldilocks::from_u64(i * 1000 + j)).collect())
            .collect();
        let tree = MerkleTree::new(data.clone());
        let proof = tree.prove(1);
        assert!(MerkleTree::verify(tree.root(), 1, &data[1], &proof));
    }

    #[test]
    fn permutation_cost_formula() {
        // 4 leaves of length 135: 4*17 leaf perms + 3 interior = 71.
        assert_eq!(MerkleTree::permutation_cost(&[135; 4]), 4 * 17 + 3);
        assert_eq!(MerkleTree::permutation_cost(&[8]), 1);
    }

    #[test]
    fn pooled_tree_is_bit_identical_and_recycles() {
        let data = leaves(16, 5);
        let plain = MerkleTree::new(data.clone());
        let ws = Workspace::new();
        // Poison the pools: stale contents must never leak into digests.
        ws.put_digests(vec![Digest::ZERO; 64]);
        ws.put_gl_table(vec![vec![Goldilocks::from_u64(u64::MAX); 9]; 16]);

        let pooled = MerkleTree::new_in(data.clone(), Some(&ws));
        assert_eq!(pooled.root(), plain.root());
        for i in 0..16 {
            assert_eq!(pooled.prove(i), plain.prove(i), "leaf {i}");
        }
        pooled.recycle(&ws);
        // Second build reuses the recycled buffers.
        let before = ws.stats().total();
        let again = MerkleTree::new_in(data, Some(&ws));
        assert_eq!(again.root(), plain.root());
        let after = ws.stats().total();
        assert!(after.hits > before.hits, "recycled buffers should hit");
    }

    #[test]
    fn proof_size_bytes() {
        let data = leaves(16, 1);
        let tree = MerkleTree::new(data);
        assert_eq!(tree.prove(0).size_bytes(), 4 * 32);
    }

    #[test]
    fn koalabear_tree_proves_and_verifies() {
        use crate::poseidon2_kb::Poseidon2KbSponge;
        use unizk_field::KoalaBear;

        type KbTree = GenericMerkleTree<Poseidon2KbSponge>;
        let data: Vec<Vec<KoalaBear>> = (0..16u64)
            .map(|i| (0..5u64).map(|j| KoalaBear::from_u64(i * 5 + j)).collect())
            .collect();
        let tree = KbTree::new(data.clone());
        for (i, leaf) in data.iter().enumerate() {
            let proof = tree.prove(i);
            assert!(KbTree::verify(tree.root(), i, leaf, &proof), "leaf {i}");
            assert_eq!(proof.size_bytes(), 4 * 16);
        }
        let mut bad = data[3].clone();
        bad[0] += KoalaBear::ONE;
        assert!(!KbTree::verify(tree.root(), 3, &bad, &tree.prove(3)));
    }
}
