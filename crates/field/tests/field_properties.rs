//! Property-based tests for the field layer: ring/field axioms for
//! Goldilocks and Ext2, and algebraic identities for the polynomial type.

use unizk_testkit::prop::prelude::*;
use unizk_field::{batch_inverse, Ext2, Field, Goldilocks, Polynomial};

fn arb_goldilocks() -> impl Strategy<Value = Goldilocks> {
    any::<u64>().prop_map(Goldilocks::from_u64)
}

fn arb_ext2() -> impl Strategy<Value = Ext2> {
    (arb_goldilocks(), arb_goldilocks()).prop_map(|(a, b)| Ext2::new(a, b))
}

fn arb_poly(max_len: usize) -> impl Strategy<Value = Polynomial<Goldilocks>> {
    prop::collection::vec(arb_goldilocks(), 0..max_len).prop_map(Polynomial::from_coeffs)
}

prop! {
    fn goldilocks_add_commutes(a in arb_goldilocks(), b in arb_goldilocks()) {
        prop_assert_eq!(a + b, b + a);
    }

    fn goldilocks_mul_commutes(a in arb_goldilocks(), b in arb_goldilocks()) {
        prop_assert_eq!(a * b, b * a);
    }

    fn goldilocks_mul_associates(
        a in arb_goldilocks(), b in arb_goldilocks(), c in arb_goldilocks()
    ) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    fn goldilocks_distributes(
        a in arb_goldilocks(), b in arb_goldilocks(), c in arb_goldilocks()
    ) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    fn goldilocks_add_inverse(a in arb_goldilocks()) {
        prop_assert_eq!(a + (-a), Goldilocks::ZERO);
        prop_assert_eq!(a - a, Goldilocks::ZERO);
    }

    fn goldilocks_mul_inverse(a in arb_goldilocks()) {
        if !a.is_zero() {
            prop_assert_eq!(a * a.inverse(), Goldilocks::ONE);
        }
    }

    fn goldilocks_square_matches_mul(a in arb_goldilocks()) {
        prop_assert_eq!(a.square(), a * a);
        prop_assert_eq!(a.double(), a + a);
    }

    fn goldilocks_exp_is_homomorphic(a in arb_goldilocks(), e1 in 0u64..64, e2 in 0u64..64) {
        prop_assert_eq!(a.exp_u64(e1) * a.exp_u64(e2), a.exp_u64(e1 + e2));
    }

    fn ext2_field_axioms(a in arb_ext2(), b in arb_ext2(), c in arb_ext2()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    fn ext2_inverse(a in arb_ext2()) {
        if a != Ext2::ZERO {
            prop_assert_eq!(a * a.inverse(), Ext2::ONE);
        }
    }

    fn batch_inverse_agrees(xs in prop::collection::vec(arb_goldilocks(), 1..50)) {
        let xs: Vec<Goldilocks> = xs.into_iter().filter(|x| !x.is_zero()).collect();
        let invs = batch_inverse(&xs);
        for (x, inv) in xs.iter().zip(&invs) {
            prop_assert_eq!(*x * *inv, Goldilocks::ONE);
        }
    }

    fn poly_mul_eval_homomorphism(
        a in arb_poly(12), b in arb_poly(12), x in arb_goldilocks()
    ) {
        let prod = a.mul_naive(&b);
        prop_assert_eq!(prod.eval(x), a.eval(x) * b.eval(x));
    }

    fn poly_add_eval_homomorphism(
        a in arb_poly(12), b in arb_poly(12), x in arb_goldilocks()
    ) {
        let sum = &a + &b;
        prop_assert_eq!(sum.eval(x), a.eval(x) + b.eval(x));
    }

    fn poly_divide_by_linear_roundtrip(q in arb_poly(10), a in arb_goldilocks()) {
        let p = q.mul_naive(&Polynomial::x_minus(a));
        let q2 = p.divide_by_linear(a);
        let x = Goldilocks::from_u64(987654321);
        prop_assert_eq!(q2.eval(x), q.eval(x));
    }
}
