//! Trace-layer integration with the fork/join primitives: spans opened by
//! `parallel_map` workers must aggregate under the caller's open span, and
//! counters must merge deterministically regardless of thread count.

use unizk_field::{parallel_map, parallel_ranges, set_parallelism};
use unizk_testkit::trace;

/// Runs `f` under a uniquely-named wrapper span and returns that span's
/// subtree from a fresh snapshot. Assertions go through the subtree so
/// concurrently-running tests (which share the process-global trace store)
/// cannot interfere.
fn under_span<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, trace::TraceNode) {
    let out = {
        let _s = trace::span(name);
        f()
    };
    trace::flush();
    let report = trace::snapshot();
    let node = report
        .node(&[name])
        .unwrap_or_else(|| panic!("wrapper span {name} missing from snapshot"))
        .clone();
    (out, node)
}

#[test]
fn worker_spans_nest_under_caller() {
    let items: Vec<u64> = (0..64).collect();
    let (_, node) = under_span("field_test.nest", || {
        parallel_map(items.clone(), |x| {
            let _inner = trace::span("field_test.worker");
            x * 2
        })
    });
    let worker = node
        .child("field_test.worker")
        .expect("worker spans must merge under the caller's span");
    assert_eq!(worker.count, 64, "one span entry per item");
    assert!(worker.ns <= node.ns, "children cannot exceed the parent");
}

#[test]
fn counters_merge_deterministically_across_thread_counts() {
    let items: Vec<u64> = (0..97).collect();
    let count_under = |threads: usize, tag: &'static str| {
        set_parallelism(threads);
        let ((), _node) = under_span(tag, || {
            parallel_map(items.clone(), |x| {
                trace::counter("field_test.items", 1);
                trace::counter("field_test.sum", x);
            });
        });
        set_parallelism(0);
    };
    let baseline = trace::snapshot();
    count_under(1, "field_test.counters_seq");
    count_under(4, "field_test.counters_par");
    let after = trace::snapshot();
    // Counters are global and monotonic; the two runs added identical
    // amounts, so the delta is exactly twice one run's contribution.
    let delta = |name: &str| after.counter(name) - baseline.counter(name);
    assert_eq!(delta("field_test.items"), 2 * 97);
    assert_eq!(delta("field_test.sum"), 2 * (0..97).sum::<u64>());
}

#[test]
fn parallel_ranges_inherits_span_context() {
    let (_, node) = under_span("field_test.ranges", || {
        parallel_ranges(256, |start, end| {
            trace::counter("field_test.range_len", (end - start) as u64);
            let _chunk = trace::span("field_test.chunk");
        });
    });
    let chunk = node
        .child("field_test.chunk")
        .expect("chunk spans must attach to the caller's span");
    assert!(chunk.count >= 1);
}
