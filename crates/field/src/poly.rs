//! Dense univariate polynomials over a [`Field`].
//!
//! This is the coefficient-representation type flowing through the protocol:
//! witness columns after `iNTT^NN`, quotient chunks, FRI fold results, etc.
//! Heavy transforms (NTT-based multiplication, LDE) live in `unizk-ntt`;
//! this module provides the representation plus the schoolbook operations
//! the protocol needs at small sizes.

use core::ops::{Add, Mul, Sub};

use crate::traits::Field;

/// A dense polynomial `c[0] + c[1]·x + … + c[n-1]·x^(n-1)`.
///
/// Trailing zero coefficients are allowed (the protocol often keeps
/// power-of-two-length vectors); [`Polynomial::degree`] ignores them.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks, Polynomial};
///
/// // (x + 1)(x + 2) = x^2 + 3x + 2
/// let p = Polynomial::from_coeffs(vec![
///     Goldilocks::from_u64(1), Goldilocks::ONE,
/// ]);
/// let q = Polynomial::from_coeffs(vec![
///     Goldilocks::from_u64(2), Goldilocks::ONE,
/// ]);
/// let r = &p * &q;
/// assert_eq!(r.eval(Goldilocks::from_u64(10)), Goldilocks::from_u64(132));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Polynomial<F> {
    coeffs: Vec<F>,
}

impl<F: Field> Polynomial<F> {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// Builds a polynomial from coefficients, lowest degree first.
    pub fn from_coeffs(coeffs: Vec<F>) -> Self {
        Self { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Self { coeffs: vec![c] }
    }

    /// The monic linear polynomial `x - a`.
    pub fn x_minus(a: F) -> Self {
        Self {
            coeffs: vec![-a, F::ONE],
        }
    }

    /// The coefficients, lowest degree first (including trailing zeros).
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// Consumes the polynomial, returning its coefficient vector.
    pub fn into_coeffs(self) -> Vec<F> {
        self.coeffs
    }

    /// The number of stored coefficients (may exceed `degree + 1`).
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether no coefficients are stored.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The degree, treating the zero polynomial as degree 0.
    pub fn degree(&self) -> usize {
        self.coeffs
            .iter()
            .rposition(|c| !c.is_zero())
            .unwrap_or(0)
    }

    /// Whether every coefficient is zero.
    pub fn is_zero_poly(&self) -> bool {
        self.coeffs.iter().all(|c| c.is_zero())
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: F) -> F {
        self.coeffs
            .iter()
            .rev()
            .fold(F::ZERO, |acc, &c| acc * x + c)
    }

    /// Evaluates at a point of a (possibly) larger field `E ⊇ F`.
    pub fn eval_ext<E: Field + From<F>>(&self, x: E) -> E {
        self.coeffs
            .iter()
            .rev()
            .fold(E::ZERO, |acc, &c| acc * x + E::from(c))
    }

    /// Pads (or truncates) the coefficient vector to exactly `n` entries.
    ///
    /// # Panics
    ///
    /// Panics if truncation would drop a nonzero coefficient.
    pub fn resize(&mut self, n: usize) {
        if n < self.coeffs.len() {
            assert!(
                self.coeffs[n..].iter().all(|c| c.is_zero()),
                "resize would truncate nonzero coefficients"
            );
        }
        self.coeffs.resize(n, F::ZERO);
    }

    /// Multiplies every coefficient by `s`.
    pub fn scale(&self, s: F) -> Self {
        Self {
            coeffs: self.coeffs.iter().map(|&c| c * s).collect(),
        }
    }

    /// Substitutes `x → g·x`, i.e. returns `p(g·x)` — the coset shift used
    /// by coset-NTTs (coefficient `c_i` becomes `c_i · g^i`).
    pub fn coset_shift(&self, g: F) -> Self {
        let mut power = F::ONE;
        let coeffs = self
            .coeffs
            .iter()
            .map(|&c| {
                let r = c * power;
                power *= g;
                r
            })
            .collect();
        Self { coeffs }
    }

    /// Divides by the linear factor `(x - a)`, returning the quotient.
    ///
    /// Used for opening arguments: if `p(a) = y` then `(p - y)/(x - a)` is a
    /// polynomial.
    ///
    /// # Panics
    ///
    /// Panics if the remainder is nonzero, i.e. `p(a) != 0`.
    pub fn divide_by_linear(&self, a: F) -> Self {
        if self.coeffs.is_empty() {
            return Self::zero();
        }
        // Synthetic division from the top coefficient down.
        let mut quotient = vec![F::ZERO; self.coeffs.len().saturating_sub(1)];
        let mut carry = F::ZERO;
        for i in (0..self.coeffs.len()).rev() {
            let cur = self.coeffs[i] + carry * a;
            if i == 0 {
                assert!(cur.is_zero(), "divide_by_linear: nonzero remainder");
            } else {
                quotient[i - 1] = cur;
                carry = cur;
            }
        }
        Self { coeffs: quotient }
    }

    /// Schoolbook product; fine for the small fixed-size products in the
    /// protocol glue. Large products go through `unizk-ntt`.
    pub fn mul_naive(&self, other: &Self) -> Self {
        if self.is_zero_poly() || other.is_zero_poly() {
            return Self::zero();
        }
        let mut out = vec![F::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Self { coeffs: out }
    }

    /// Evaluates the vanishing polynomial `Z_H(x) = x^n - 1` of the size-`n`
    /// subgroup at `x`.
    pub fn eval_vanishing(n: usize, x: F) -> F {
        x.exp_u64(n as u64) - F::ONE
    }

    /// Lagrange interpolation through `(xs[i], ys[i])` — `O(n^2)`, intended
    /// for the handful of small interpolations in the verifier.
    ///
    /// # Panics
    ///
    /// Panics if `xs` contains duplicates or lengths differ.
    pub fn interpolate(xs: &[F], ys: &[F]) -> Self {
        assert_eq!(xs.len(), ys.len(), "point/value length mismatch");
        let mut acc = Self::zero();
        for (i, (&xi, &yi)) in xs.iter().zip(ys).enumerate() {
            // Basis polynomial l_i scaled by y_i.
            let mut num = Self::constant(F::ONE);
            let mut denom = F::ONE;
            for (j, &xj) in xs.iter().enumerate() {
                if i == j {
                    continue;
                }
                num = num.mul_naive(&Self::x_minus(xj));
                let d = xi - xj;
                assert!(!d.is_zero(), "interpolate: duplicate x values");
                denom *= d;
            }
            acc = &acc + &num.scale(yi * denom.inverse());
        }
        acc
    }
}

impl<F: Field> Add for &Polynomial<F> {
    type Output = Polynomial<F>;

    fn add(self, rhs: Self) -> Polynomial<F> {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![F::ZERO; n];
        for (o, &c) in out.iter_mut().zip(&self.coeffs) {
            *o = c;
        }
        for (o, &c) in out.iter_mut().zip(&rhs.coeffs) {
            *o += c;
        }
        Polynomial { coeffs: out }
    }
}

impl<F: Field> Sub for &Polynomial<F> {
    type Output = Polynomial<F>;

    fn sub(self, rhs: Self) -> Polynomial<F> {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut out = vec![F::ZERO; n];
        for (o, &c) in out.iter_mut().zip(&self.coeffs) {
            *o = c;
        }
        for (o, &c) in out.iter_mut().zip(&rhs.coeffs) {
            *o -= c;
        }
        Polynomial { coeffs: out }
    }
}

impl<F: Field> Mul for &Polynomial<F> {
    type Output = Polynomial<F>;

    fn mul(self, rhs: Self) -> Polynomial<F> {
        self.mul_naive(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goldilocks::Goldilocks;
    use crate::traits::PrimeField64;
    use unizk_testkit::rng::TestRng as StdRng;

    type P = Polynomial<Goldilocks>;

    fn g(n: u64) -> Goldilocks {
        Goldilocks::from_u64(n)
    }

    fn random_poly(rng: &mut StdRng, len: usize) -> P {
        P::from_coeffs((0..len).map(|_| Goldilocks::random(rng)).collect())
    }

    #[test]
    fn eval_constant_and_linear() {
        assert_eq!(P::constant(g(5)).eval(g(100)), g(5));
        assert_eq!(P::x_minus(g(3)).eval(g(3)), Goldilocks::ZERO);
        assert_eq!(P::x_minus(g(3)).eval(g(10)), g(7));
        assert_eq!(P::zero().eval(g(42)), Goldilocks::ZERO);
    }

    #[test]
    fn degree_ignores_trailing_zeros() {
        let p = P::from_coeffs(vec![g(1), g(2), Goldilocks::ZERO, Goldilocks::ZERO]);
        assert_eq!(p.degree(), 1);
        assert_eq!(P::zero().degree(), 0);
    }

    #[test]
    fn add_sub_are_inverse() {
        let mut rng = StdRng::seed_from_u64(31);
        let a = random_poly(&mut rng, 9);
        let b = random_poly(&mut rng, 5);
        let sum = &a + &b;
        let back = &sum - &b;
        // Compare by evaluation to ignore length differences.
        let x = g(12345);
        assert_eq!(back.eval(x), a.eval(x));
    }

    #[test]
    fn mul_matches_evaluation() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = random_poly(&mut rng, 7);
        let b = random_poly(&mut rng, 6);
        let prod = a.mul_naive(&b);
        for i in 0..10u64 {
            let x = g(1000 + i);
            assert_eq!(prod.eval(x), a.eval(x) * b.eval(x));
        }
    }

    #[test]
    fn divide_by_linear_roundtrip() {
        let mut rng = StdRng::seed_from_u64(33);
        let q = random_poly(&mut rng, 8);
        let a = g(77);
        let p = q.mul_naive(&P::x_minus(a));
        let q2 = p.divide_by_linear(a);
        let x = g(5);
        assert_eq!(q2.eval(x), q.eval(x));
    }

    #[test]
    #[should_panic(expected = "nonzero remainder")]
    fn divide_by_linear_rejects_nonroot() {
        let p = P::from_coeffs(vec![g(1), g(1)]); // x + 1
        let _ = p.divide_by_linear(g(5)); // 5 is not a root
    }

    #[test]
    fn coset_shift_matches_substitution() {
        let mut rng = StdRng::seed_from_u64(34);
        let p = random_poly(&mut rng, 10);
        let gshift = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let shifted = p.coset_shift(gshift);
        for i in 0..5u64 {
            let x = g(31 + i);
            assert_eq!(shifted.eval(x), p.eval(gshift * x));
        }
    }

    #[test]
    fn interpolate_recovers_poly() {
        let mut rng = StdRng::seed_from_u64(35);
        let p = random_poly(&mut rng, 6);
        let xs: Vec<Goldilocks> = (0..6).map(|i| g(i + 1)).collect();
        let ys: Vec<Goldilocks> = xs.iter().map(|&x| p.eval(x)).collect();
        let q = P::interpolate(&xs, &ys);
        for i in 0..10u64 {
            let x = g(100 + i);
            assert_eq!(q.eval(x), p.eval(x));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn interpolate_rejects_duplicates() {
        let xs = vec![g(1), g(1)];
        let ys = vec![g(2), g(3)];
        let _ = P::interpolate(&xs, &ys);
    }

    #[test]
    fn vanishing_polynomial_on_subgroup() {
        let n = 16usize;
        let w = Goldilocks::primitive_root_of_unity(4);
        for k in 0..n as u64 {
            let x = w.exp_u64(k);
            assert_eq!(P::eval_vanishing(n, x), Goldilocks::ZERO);
        }
        assert_ne!(
            P::eval_vanishing(n, Goldilocks::MULTIPLICATIVE_GENERATOR),
            Goldilocks::ZERO
        );
    }

    #[test]
    fn resize_pads_with_zeros() {
        let mut p = P::from_coeffs(vec![g(1)]);
        p.resize(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.degree(), 0);
    }

    #[test]
    #[should_panic(expected = "truncate nonzero")]
    fn resize_rejects_lossy_truncation() {
        let mut p = P::from_coeffs(vec![g(1), g(2)]);
        p.resize(1);
    }

    #[test]
    fn eval_ext_agrees_with_base() {
        use crate::extension::Ext2;
        let p = P::from_coeffs(vec![g(3), g(5), g(7)]);
        let x = g(11);
        let ext = p.eval_ext(Ext2::from(x));
        assert_eq!(ext, Ext2::from(p.eval(x)));
    }
}
