//! The Goldilocks field `p = 2^64 - 2^32 + 1`.
//!
//! This is the base field of Plonky2 and Starky, and the word size of every
//! modular adder/multiplier in the UniZK processing elements (paper §4).
//! The special form of `p` makes reduction cheap: `2^64 ≡ 2^32 - 1 (mod p)`
//! and `2^96 ≡ -1 (mod p)`, so a 128-bit product reduces with a handful of
//! 64-bit adds — the same trick the paper's "simplified Goldilocks field
//! operations" exploit in hardware.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};


use crate::traits::{Field, PrimeField64};

/// The field order `p = 2^64 - 2^32 + 1`.
pub const P: u64 = 0xFFFF_FFFF_0000_0001;

/// `2^32 - 1`, i.e. `2^64 mod p`.
const EPSILON: u64 = 0xFFFF_FFFF;

/// An element of the Goldilocks field, stored in canonical form `0 <= x < p`.
///
/// # Invariant
///
/// The inner `u64` is always reduced: constructors reduce on entry
/// ([`Field::from_u64`], [`Goldilocks::from_canonical`]) or
/// debug-assert canonicity ([`Goldilocks::new`]), and every arithmetic
/// result is reduced before it is stored. Because representatives are
/// unique, the derived `PartialEq`/`Ord`/`Hash` agree with field equality
/// and [`Field::as_u64`] round-trips losslessly.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
///
/// let x = Goldilocks::from_u64(u64::MAX); // reduced mod p on entry
/// assert!(x.as_u64() < 0xFFFF_FFFF_0000_0001);
/// assert_eq!(Goldilocks::from_u64(2) + Goldilocks::NEG_ONE + Goldilocks::ONE,
///            Goldilocks::from_u64(2));
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Goldilocks(u64);

impl Goldilocks {
    /// `p - 1`, i.e. `-1` in the field.
    pub const NEG_ONE: Self = Self(P - 1);

    /// Creates an element from a canonical value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `value >= p`. Use [`Field::from_u64`] for
    /// values that may need reduction.
    #[inline]
    pub const fn new(value: u64) -> Self {
        debug_assert!(value < P);
        Self(value)
    }

    /// Creates an element, reducing `value` modulo `p`.
    #[inline]
    pub const fn from_canonical(value: u64) -> Self {
        if value >= P {
            Self(value - P)
        } else {
            Self(value)
        }
    }

    /// Reduces a 128-bit integer modulo `p`.
    ///
    /// Writes `n = lo + mid * 2^64 + hi * 2^96` with `mid` the bits 64..96
    /// and `hi` the bits 96..128; then `n ≡ lo + mid * (2^32 - 1) - hi`.
    #[inline]
    pub fn reduce128(n: u128) -> Self {
        Self::from_residue(Self::reduce128_residue(n))
    }

    /// Reduces a 128-bit integer to a *residue*: a value `< 2^64` congruent
    /// to `n` mod `p`, but not necessarily canonical (it may lie in
    /// `[p, 2^64)`).
    ///
    /// Residues are the lazy-reduction currency of the Poseidon hot path:
    /// chains of multiplies and small-constant dot products stay in residue
    /// form and pay the final `r >= p` correction once, via
    /// [`Goldilocks::from_residue`], when a canonical element is needed.
    #[inline]
    #[allow(clippy::cast_possible_truncation)] // word splitting is the reduction
    pub fn reduce128_residue(n: u128) -> u64 {
        let lo = n as u64;
        let high = (n >> 64) as u64;
        let mid = high & EPSILON; // bits 64..96
        let hi = high >> 32; // bits 96..128

        // t = lo - hi  (mod p)
        let (mut t, borrow) = lo.overflowing_sub(hi);
        if borrow {
            // lo < hi <= 2^32 - 1, so adding p back cannot overflow.
            t = t.wrapping_add(P);
        }
        // t += mid * (2^32 - 1) = (mid << 32) - mid; the addend is < 2^64 - 2^32
        // so a single conditional correction suffices after a wrapping add.
        let addend = (mid << 32) - mid;
        let (res, carry) = t.overflowing_add(addend);
        if carry {
            // 2^64 ≡ 2^32 - 1: fold the carry back in. Cannot carry again
            // because res < 2^64 - 2^32 after an overflowing add whose addend
            // is < 2^64 - 2^32.
            res.wrapping_add(EPSILON)
        } else {
            res
        }
    }

    /// Reduces an integer `n < 2^96` to a residue `< 2^64` (see
    /// [`Goldilocks::reduce128_residue`] for the residue contract).
    ///
    /// Skipping the `hi * 2^96` limb drops the borrow-correction step of the
    /// full reduction, which is what makes small-constant dot products (MDS
    /// rows, sparse partial-round updates) cheaper than generic products.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `n < 2^96`.
    #[inline]
    #[allow(clippy::cast_possible_truncation)] // word splitting is the reduction
    pub fn reduce96_residue(n: u128) -> u64 {
        let lo = n as u64;
        let mid = (n >> 64) as u64; // bits 64..96
        debug_assert!(mid <= EPSILON, "reduce96_residue input has bits above 2^96");
        let addend = (mid << 32) - mid;
        let (res, carry) = lo.overflowing_add(addend);
        if carry {
            res.wrapping_add(EPSILON)
        } else {
            res
        }
    }

    /// Multiplies two residues (`< 2^64`, not necessarily canonical) into a
    /// residue `< 2^64`.
    #[inline]
    pub fn mul_residue(a: u64, b: u64) -> u64 {
        Self::reduce128_residue(u128::from(a) * u128::from(b))
    }

    /// Adds a **canonical** constant `c < p` to a residue `a < 2^64`,
    /// yielding a residue `< 2^64`.
    ///
    /// One overflow fold suffices: the wrapped sum is `< p < 2^64 - 2^32`,
    /// so folding `2^32 - 1` back in cannot overflow again. The bound does
    /// *not* hold for two arbitrary residues — that is why `c` must be
    /// canonical (debug-asserted).
    #[inline]
    pub fn add_residue(a: u64, c: u64) -> u64 {
        debug_assert!(c < P, "add_residue constant must be canonical");
        let (sum, over) = a.overflowing_add(c);
        if over {
            sum.wrapping_add(EPSILON)
        } else {
            sum
        }
    }

    /// Canonicalizes a residue `r < 2^64` into a field element.
    ///
    /// A single conditional subtraction suffices because `2^64 < 2p`.
    #[inline]
    pub fn from_residue(r: u64) -> Self {
        Self(if r >= P { r - P } else { r })
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    pub const fn as_canonical_u64(&self) -> u64 {
        self.0
    }

    /// Interprets the low 32 bits of `value` as a field element.
    #[inline]
    pub const fn from_u32(value: u32) -> Self {
        Self(value as u64)
    }

    /// `x * 2^exp` without materialising the power of two.
    #[inline]
    pub fn mul_pow2(&self, exp: usize) -> Self {
        let mut r = *self;
        for _ in 0..exp {
            r = r.double();
        }
        r
    }

    /// Euler-criterion quadratic-residue test: `x^((p-1)/2) == 1`.
    pub fn is_quadratic_residue(&self) -> bool {
        if self.is_zero() {
            return true;
        }
        self.exp_u64((P - 1) / 2) == Self::ONE
    }
}

impl Field for Goldilocks {
    const ZERO: Self = Self(0);
    const ONE: Self = Self(1);
    const TWO: Self = Self(2);

    #[inline]
    fn from_u64(n: u64) -> Self {
        Self(n % P)
    }

    #[inline]
    fn as_u64(&self) -> u64 {
        self.0
    }

    fn try_inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        // Fermat: x^(p-2). Fine for a simulator; hardware would use the same
        // multiplier datapath.
        Some(self.exp_u64(P - 2))
    }
}

impl PrimeField64 for Goldilocks {
    const ORDER: u64 = P;
    const TWO_ADICITY: usize = 32;
    const MULTIPLICATIVE_GENERATOR: Self = Self(7);
    const BITS: usize = 64;
    const BYTES: usize = 8;

    fn primitive_root_of_unity(bits: usize) -> Self {
        assert!(
            bits <= Self::TWO_ADICITY,
            "requested 2^{bits}-th root of unity but two-adicity is {}",
            Self::TWO_ADICITY
        );
        // g^((p-1) / 2^TWO_ADICITY) has order exactly 2^TWO_ADICITY; square
        // down to the requested order.
        let exp = (P - 1) >> Self::TWO_ADICITY;
        let mut root = Self::MULTIPLICATIVE_GENERATOR.exp_u64(exp);
        for _ in bits..Self::TWO_ADICITY {
            root = root.square();
        }
        root
    }

    fn random<R: unizk_testkit::rng::Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling keeps the distribution uniform.
        loop {
            let v: u64 = rng.next_u64();
            if v < P {
                return Self(v);
            }
        }
    }
}

impl Add for Goldilocks {
    type Output = Self;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        let (sum, over) = self.0.overflowing_add(rhs.0);
        let mut r = sum;
        if over {
            // Both operands < p < 2^64, so the folded value is < p.
            r = r.wrapping_add(EPSILON);
        }
        if r >= P {
            r -= P;
        }
        Self(r)
    }
}

impl Sub for Goldilocks {
    type Output = Self;

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        Self(if borrow { diff.wrapping_add(P) } else { diff })
    }
}

impl Mul for Goldilocks {
    type Output = Self;

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::reduce128((self.0 as u128) * (rhs.0 as u128))
    }
}

impl Div for Goldilocks {
    type Output = Self;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inverse()
    }
}

impl Neg for Goldilocks {
    type Output = Self;

    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Self(P - self.0)
        }
    }
}

impl AddAssign for Goldilocks {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Goldilocks {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Goldilocks {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Goldilocks {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl Product for Goldilocks {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl From<u32> for Goldilocks {
    fn from(value: u32) -> Self {
        Self(value as u64)
    }
}

impl From<u64> for Goldilocks {
    fn from(value: u64) -> Self {
        Self::from_u64(value)
    }
}

impl From<Goldilocks> for u64 {
    fn from(value: Goldilocks) -> Self {
        value.0
    }
}

impl fmt::Debug for Goldilocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Goldilocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::LowerHex for Goldilocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Goldilocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // reference results are < p, which fits u64
mod tests {
    use super::*;
    use unizk_testkit::rng::{Rng, TestRng as StdRng};

    fn ref_mul(a: u64, b: u64) -> u64 {
        (((a as u128) * (b as u128)) % (P as u128)) as u64
    }

    fn ref_add(a: u64, b: u64) -> u64 {
        (((a as u128) + (b as u128)) % (P as u128)) as u64
    }

    #[test]
    fn p_has_expected_form() {
        assert_eq!(P as u128, (1u128 << 64) - (1u128 << 32) + 1);
    }

    #[test]
    fn add_matches_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a: u64 = rng.gen_range(0..P);
            let b: u64 = rng.gen_range(0..P);
            assert_eq!(
                (Goldilocks(a) + Goldilocks(b)).0,
                ref_add(a, b),
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn mul_matches_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a: u64 = rng.gen_range(0..P);
            let b: u64 = rng.gen_range(0..P);
            assert_eq!(
                (Goldilocks(a) * Goldilocks(b)).0,
                ref_mul(a, b),
                "a={a} b={b}"
            );
        }
    }

    #[test]
    fn mul_edge_cases() {
        let edge = [0, 1, 2, EPSILON, EPSILON + 1, P - 2, P - 1];
        for &a in &edge {
            for &b in &edge {
                assert_eq!((Goldilocks(a) * Goldilocks(b)).0, ref_mul(a, b));
            }
        }
    }

    #[test]
    fn reduce128_edge_cases() {
        for n in [
            0u128,
            1,
            P as u128,
            (P as u128) + 1,
            u64::MAX as u128,
            (u64::MAX as u128) + 1,
            u128::MAX,
            (P as u128) * (P as u128), // largest product of canonical values
            ((P - 1) as u128) * ((P - 1) as u128),
        ] {
            assert_eq!(
                Goldilocks::reduce128(n).0,
                (n % (P as u128)) as u64,
                "n={n}"
            );
        }
    }

    #[test]
    fn residue_ops_match_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            // Residue inputs may be anywhere in [0, 2^64), not just [0, p).
            let a: u64 = rng.next_u64();
            let b: u64 = rng.next_u64();
            let want = ((a as u128) * (b as u128) % (P as u128)) as u64;
            let r = Goldilocks::mul_residue(a, b);
            assert_eq!(r % P, want, "a={a} b={b}");
            assert_eq!(Goldilocks::from_residue(r).0, want);

            let c: u64 = rng.gen_range(0..P);
            let s = Goldilocks::add_residue(a, c);
            assert_eq!(s % P, ((a as u128 + c as u128) % (P as u128)) as u64);
        }
    }

    #[test]
    fn reduce96_residue_matches_full_reduction() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            // Any value below 2^96 is in contract; bias toward the top.
            let n = (rng.next_u64() as u128) | ((rng.gen_range(0..=u32::MAX as u64) as u128) << 64);
            assert_eq!(
                Goldilocks::reduce96_residue(n) % P,
                (n % (P as u128)) as u64,
                "n={n}"
            );
        }
        for n in [0u128, 1, (1 << 96) - 1, P as u128, u64::MAX as u128 + 1] {
            assert_eq!(Goldilocks::reduce96_residue(n) % P, (n % (P as u128)) as u64);
        }
    }

    #[test]
    fn from_residue_canonicalizes() {
        assert_eq!(Goldilocks::from_residue(0).0, 0);
        assert_eq!(Goldilocks::from_residue(P - 1).0, P - 1);
        assert_eq!(Goldilocks::from_residue(P).0, 0);
        assert_eq!(Goldilocks::from_residue(u64::MAX).0, u64::MAX - P);
    }

    #[test]
    fn sub_and_neg() {
        let a = Goldilocks::from_u64(3);
        let b = Goldilocks::from_u64(10);
        assert_eq!(a - b, -(b - a));
        assert_eq!((a - b) + (b - a), Goldilocks::ZERO);
        assert_eq!(-Goldilocks::ZERO, Goldilocks::ZERO);
        assert_eq!(-Goldilocks::ONE, Goldilocks::NEG_ONE);
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let a = Goldilocks::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.inverse(), Goldilocks::ONE);
        }
        assert!(Goldilocks::ZERO.try_inverse().is_none());
        assert_eq!(Goldilocks::ONE.inverse(), Goldilocks::ONE);
    }

    #[test]
    fn exponentiation() {
        let g = Goldilocks::from_u64(3);
        assert_eq!(g.exp_u64(0), Goldilocks::ONE);
        assert_eq!(g.exp_u64(1), g);
        assert_eq!(g.exp_u64(5), g * g * g * g * g);
        // Fermat's little theorem.
        assert_eq!(g.exp_u64(P - 1), Goldilocks::ONE);
    }

    #[test]
    fn roots_of_unity_have_exact_order() {
        for bits in 0..=16 {
            let w = Goldilocks::primitive_root_of_unity(bits);
            assert_eq!(w.exp_u64(1 << bits), Goldilocks::ONE, "bits={bits}");
            if bits > 0 {
                assert_ne!(w.exp_u64(1 << (bits - 1)), Goldilocks::ONE, "bits={bits}");
            }
        }
        // The maximal two-adic root.
        let w = Goldilocks::primitive_root_of_unity(32);
        assert_eq!(w.exp_u64(1 << 32), Goldilocks::ONE);
    }

    #[test]
    #[should_panic(expected = "two-adicity")]
    fn root_of_unity_too_large_panics() {
        let _ = Goldilocks::primitive_root_of_unity(33);
    }

    #[test]
    fn generator_is_not_a_residue() {
        // 7 generates the full group, so it cannot be a square.
        assert!(!Goldilocks::MULTIPLICATIVE_GENERATOR.is_quadratic_residue());
        assert!(Goldilocks::from_u64(4).is_quadratic_residue());
    }

    #[test]
    fn display_and_hex() {
        let x = Goldilocks::from_u64(255);
        assert_eq!(format!("{x}"), "255");
        assert_eq!(format!("{x:x}"), "ff");
        assert_eq!(format!("{x:X}"), "FF");
        assert_eq!(format!("{x:?}"), "255");
    }

    #[test]
    fn from_u64_reduces() {
        assert_eq!(Goldilocks::from_u64(P).0, 0);
        assert_eq!(Goldilocks::from_u64(P + 5).0, 5);
        assert_eq!(Goldilocks::from_u64(u64::MAX).0, u64::MAX - P);
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs: Vec<Goldilocks> = (1..=5u64).map(Goldilocks::from_u64).collect();
        assert_eq!(xs.iter().copied().sum::<Goldilocks>().0, 15);
        assert_eq!(xs.iter().copied().product::<Goldilocks>().0, 120);
    }

    #[test]
    fn random_is_canonical() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(Goldilocks::random(&mut rng).0 < P);
        }
    }

    #[test]
    fn mul_pow2_matches_shift() {
        let x = Goldilocks::from_u64(12345);
        for e in 0..80 {
            assert_eq!(x.mul_pow2(e), x * Goldilocks::TWO.exp_u64(e as u64));
        }
    }

    #[test]
    fn serde_roundtrip() {
        // serde is plumbed through harness output; check the transparent repr.
        let x = Goldilocks::from_u64(42);
        let v = serde_json_like(x);
        assert_eq!(v, 42);
    }

    fn serde_json_like(x: Goldilocks) -> u64 {
        // Avoid a serde_json dependency: the transparent newtype round-trips
        // through its inner u64.
        x.as_canonical_u64()
    }
}
