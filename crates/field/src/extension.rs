//! The quadratic extension field `Fp[x] / (x^2 - W)` over Goldilocks.
//!
//! Plonky2 draws its soundness-critical random challenges from this degree-2
//! extension (paper §4: "usually a quadratic extension with D=2 is
//! employed"). We use `W = 7`, which is a non-residue in Goldilocks (checked
//! by a unit test via Euler's criterion), so `x^2 - W` is irreducible.
//!
//! In the accelerator each extension element is processed as two 64-bit
//! limbs on the base-field datapath; this type mirrors that layout.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};


use crate::goldilocks::Goldilocks;
use crate::traits::{ExtensionOf, Field, PrimeField64, ProtocolField};

impl ProtocolField for Goldilocks {
    type Ext = Ext2;
}

/// The non-residue `W` defining the extension `x^2 = W`.
pub const W: Goldilocks = Goldilocks::new(7);

/// An element `a0 + a1·x` of the quadratic extension of Goldilocks.
///
/// # Example
///
/// ```
/// use unizk_field::{Ext2, Field, Goldilocks};
///
/// let x = Ext2::X;
/// // x^2 = W = 7 in the base field.
/// assert_eq!(x * x, Ext2::from(Goldilocks::from_u64(7)));
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct Ext2(pub [Goldilocks; 2]);

impl Ext2 {
    /// The generator `x` of the extension (a square root of `W`).
    pub const X: Self = Self([Goldilocks::new(0), Goldilocks::new(1)]);

    /// Builds an element from its two limbs `a0 + a1·x`.
    pub const fn new(a0: Goldilocks, a1: Goldilocks) -> Self {
        Self([a0, a1])
    }

    /// The degree-0 limb.
    pub const fn real(&self) -> Goldilocks {
        self.0[0]
    }

    /// The degree-1 limb.
    pub const fn imag(&self) -> Goldilocks {
        self.0[1]
    }

    /// The norm `a0^2 - W·a1^2`, an element of the base field.
    pub fn norm(&self) -> Goldilocks {
        self.0[0].square() - W * self.0[1].square()
    }

    /// Samples a uniform element.
    pub fn random<R: unizk_testkit::rng::Rng + ?Sized>(rng: &mut R) -> Self {
        Self([Goldilocks::random(rng), Goldilocks::random(rng)])
    }
}

impl Field for Ext2 {
    const ZERO: Self = Self([Goldilocks::new(0), Goldilocks::new(0)]);
    const ONE: Self = Self([Goldilocks::new(1), Goldilocks::new(0)]);
    const TWO: Self = Self([Goldilocks::new(2), Goldilocks::new(0)]);

    fn from_u64(n: u64) -> Self {
        Self([Goldilocks::from_u64(n), Goldilocks::ZERO])
    }

    fn as_u64(&self) -> u64 {
        self.0[0].as_u64()
    }

    fn try_inverse(&self) -> Option<Self> {
        // (a0 + a1 x)^-1 = (a0 - a1 x) / norm.
        let norm_inv = self.norm().try_inverse()?;
        Some(Self([self.0[0] * norm_inv, -self.0[1] * norm_inv]))
    }
}

impl ExtensionOf<Goldilocks> for Ext2 {
    const DEGREE: usize = 2;

    fn to_base_slice(&self) -> Vec<Goldilocks> {
        self.0.to_vec()
    }

    fn from_base_slice(limbs: &[Goldilocks]) -> Self {
        assert_eq!(limbs.len(), 2, "Ext2 needs exactly 2 limbs");
        Self([limbs[0], limbs[1]])
    }

    fn scale(&self, s: Goldilocks) -> Self {
        Self([self.0[0] * s, self.0[1] * s])
    }
}

impl From<Goldilocks> for Ext2 {
    fn from(value: Goldilocks) -> Self {
        Self([value, Goldilocks::ZERO])
    }
}

impl Add for Ext2 {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self([self.0[0] + rhs.0[0], self.0[1] + rhs.0[1]])
    }
}

impl Sub for Ext2 {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self([self.0[0] - rhs.0[0], self.0[1] - rhs.0[1]])
    }
}

impl Mul for Ext2 {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        let [a0, a1] = self.0;
        let [b0, b1] = rhs.0;
        Self([a0 * b0 + W * a1 * b1, a0 * b1 + a1 * b0])
    }
}

impl Div for Ext2 {
    type Output = Self;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inverse()
    }
}

impl Neg for Ext2 {
    type Output = Self;

    fn neg(self) -> Self {
        Self([-self.0[0], -self.0[1]])
    }
}

impl AddAssign for Ext2 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ext2 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Ext2 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Ext2 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl Product for Ext2 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl fmt::Debug for Ext2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} + {}·x)", self.0[0], self.0[1])
    }
}

impl fmt::Display for Ext2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::TestRng as StdRng;

    #[test]
    fn w_is_a_non_residue() {
        // x^2 - W must be irreducible for Ext2 to be a field.
        assert!(!W.is_quadratic_residue());
    }

    #[test]
    fn x_squares_to_w() {
        assert_eq!(Ext2::X * Ext2::X, Ext2::from(W));
    }

    #[test]
    fn field_axioms_spot_checks() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a = Ext2::random(&mut rng);
            let b = Ext2::random(&mut rng);
            let c = Ext2::random(&mut rng);
            assert_eq!(a + b, b + a);
            assert_eq!(a * b, b * a);
            assert_eq!((a + b) * c, a * c + b * c);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a + Ext2::ZERO, a);
            assert_eq!(a * Ext2::ONE, a);
            assert_eq!(a - a, Ext2::ZERO);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..200 {
            let a = Ext2::random(&mut rng);
            if a == Ext2::ZERO {
                continue;
            }
            assert_eq!(a * a.inverse(), Ext2::ONE);
        }
        assert!(Ext2::ZERO.try_inverse().is_none());
    }

    #[test]
    fn embedding_is_a_homomorphism() {
        let a = Goldilocks::from_u64(123);
        let b = Goldilocks::from_u64(456);
        assert_eq!(Ext2::from(a) * Ext2::from(b), Ext2::from(a * b));
        assert_eq!(Ext2::from(a) + Ext2::from(b), Ext2::from(a + b));
    }

    #[test]
    fn scale_matches_mul_by_embedded() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Ext2::random(&mut rng);
        let s = Goldilocks::from_u64(99);
        assert_eq!(a.scale(s), a * Ext2::from(s));
    }

    #[test]
    fn base_slice_roundtrip() {
        let a = Ext2::new(Goldilocks::from_u64(1), Goldilocks::from_u64(2));
        let limbs = a.to_base_slice();
        assert_eq!(limbs.len(), 2);
        assert_eq!(Ext2::from_base_slice(&limbs), a);
    }

    #[test]
    fn norm_is_multiplicative() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let a = Ext2::random(&mut rng);
            let b = Ext2::random(&mut rng);
            assert_eq!((a * b).norm(), a.norm() * b.norm());
        }
    }

    #[test]
    fn exp_in_extension() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Ext2::random(&mut rng);
        assert_eq!(a.exp_u64(3), a * a * a);
    }
}
