//! The quartic extension field `Fp[x] / (x^4 - W)` over KoalaBear.
//!
//! A 31-bit base field offers nowhere near enough challenge entropy for
//! FRI — a single KoalaBear element carries ~31 bits, so Schwartz–Zippel
//! over the base field caps soundness at 31 bits. The Plonky3 stacks
//! therefore draw challenges from a *degree-4* binomial extension
//! (4 × 31 = 124 bits), and this type mirrors that choice: `W = 3`, the
//! field's multiplicative generator, which is a quadratic non-residue
//! (`p ≡ 5 (mod 12)`). For `p ≡ 1 (mod 4)` and `W` a non-square, `x^4 - W`
//! is irreducible over `Fp`, so the quotient ring is a field — both facts
//! are pinned by unit tests below.
//!
//! Inversion uses the Frobenius-conjugate method: with `φ = W^((p-1)/4)` a
//! primitive 4th root of unity, the map `a_i·x^i ↦ a_i·φ^i·x^i` is the
//! Frobenius `a ↦ a^p`; the product of the three conjugates times `a`
//! lands in the base field (the norm), leaving one base-field inversion.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::koalabear::KoalaBear;
use crate::traits::{ExtensionOf, Field, PrimeField64, ProtocolField};

impl ProtocolField for KoalaBear {
    type Ext = KbExt4;
}

/// The non-residue `W = 3` defining the extension `x^4 = W`.
pub const W4: KoalaBear = KoalaBear::new(3);

/// An element `a0 + a1·x + a2·x^2 + a3·x^3` of the quartic extension of
/// KoalaBear.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, KbExt4, KoalaBear};
///
/// let x = KbExt4::X;
/// // x^4 = W = 3 in the base field.
/// assert_eq!(x * x * x * x, KbExt4::from(KoalaBear::from_u64(3)));
/// ```
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct KbExt4(pub [KoalaBear; 4]);

impl KbExt4 {
    /// The generator `x` of the extension (a fourth root of `W`).
    pub const X: Self = Self([
        KoalaBear::new(0),
        KoalaBear::new(1),
        KoalaBear::new(0),
        KoalaBear::new(0),
    ]);

    /// Builds an element from its four limbs, lowest degree first.
    pub const fn new(limbs: [KoalaBear; 4]) -> Self {
        Self(limbs)
    }

    /// Samples a uniform element.
    pub fn random<R: unizk_testkit::rng::Rng + ?Sized>(rng: &mut R) -> Self {
        Self([
            KoalaBear::random(rng),
            KoalaBear::random(rng),
            KoalaBear::random(rng),
            KoalaBear::random(rng),
        ])
    }

    /// The Frobenius `a ↦ a^(p^count)`: multiplies limb `i` by `φ^(i·count)`
    /// where `φ = W^((p-1)/4)` (a primitive 4th root of unity, so `φ^2 = -1`).
    fn repeated_frobenius(&self, count: usize) -> Self {
        let phi = W4.exp_u64((KoalaBear::ORDER - 1) / 4);
        let step = phi.exp_u64(count as u64);
        let mut mult = KoalaBear::ONE;
        let mut out = [KoalaBear::ZERO; 4];
        for (o, a) in out.iter_mut().zip(self.0.iter()) {
            *o = *a * mult;
            mult *= step;
        }
        Self(out)
    }

    /// The norm `a · a^p · a^(p^2) · a^(p^3)`, an element of the base field.
    pub fn norm(&self) -> KoalaBear {
        let conj = self.repeated_frobenius(1) * self.repeated_frobenius(2) * self.repeated_frobenius(3);
        let n = *self * conj;
        debug_assert!(
            n.0[1].is_zero() && n.0[2].is_zero() && n.0[3].is_zero(),
            "norm must be a base-field element"
        );
        n.0[0]
    }
}

impl Field for KbExt4 {
    const ZERO: Self = Self([KoalaBear::new(0); 4]);
    const ONE: Self = Self([
        KoalaBear::new(1),
        KoalaBear::new(0),
        KoalaBear::new(0),
        KoalaBear::new(0),
    ]);
    const TWO: Self = Self([
        KoalaBear::new(2),
        KoalaBear::new(0),
        KoalaBear::new(0),
        KoalaBear::new(0),
    ]);

    fn from_u64(n: u64) -> Self {
        Self::from(KoalaBear::from_u64(n))
    }

    fn as_u64(&self) -> u64 {
        self.0[0].as_u64()
    }

    fn try_inverse(&self) -> Option<Self> {
        if *self == Self::ZERO {
            return None;
        }
        // a^-1 = (a^p · a^(p^2) · a^(p^3)) / N(a).
        let conj = self.repeated_frobenius(1) * self.repeated_frobenius(2) * self.repeated_frobenius(3);
        let n = *self * conj;
        let norm_inv = n.0[0].try_inverse()?;
        Some(conj.scale(norm_inv))
    }
}

impl ExtensionOf<KoalaBear> for KbExt4 {
    const DEGREE: usize = 4;

    fn to_base_slice(&self) -> Vec<KoalaBear> {
        self.0.to_vec()
    }

    fn from_base_slice(limbs: &[KoalaBear]) -> Self {
        assert_eq!(limbs.len(), 4, "KbExt4 needs exactly 4 limbs");
        Self([limbs[0], limbs[1], limbs[2], limbs[3]])
    }

    fn scale(&self, s: KoalaBear) -> Self {
        Self([self.0[0] * s, self.0[1] * s, self.0[2] * s, self.0[3] * s])
    }
}

impl From<KoalaBear> for KbExt4 {
    fn from(value: KoalaBear) -> Self {
        Self([value, KoalaBear::ZERO, KoalaBear::ZERO, KoalaBear::ZERO])
    }
}

impl Add for KbExt4 {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl Sub for KbExt4 {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
            self.0[3] - rhs.0[3],
        ])
    }
}

impl Mul for KbExt4 {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        // Schoolbook product folded by x^4 = W.
        let [a0, a1, a2, a3] = self.0;
        let [b0, b1, b2, b3] = rhs.0;
        Self([
            a0 * b0 + W4 * (a1 * b3 + a2 * b2 + a3 * b1),
            a0 * b1 + a1 * b0 + W4 * (a2 * b3 + a3 * b2),
            a0 * b2 + a1 * b1 + a2 * b0 + W4 * (a3 * b3),
            a0 * b3 + a1 * b2 + a2 * b1 + a3 * b0,
        ])
    }
}

impl Div for KbExt4 {
    type Output = Self;

    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inverse()
    }
}

impl Neg for KbExt4 {
    type Output = Self;

    fn neg(self) -> Self {
        Self([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

impl AddAssign for KbExt4 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for KbExt4 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for KbExt4 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for KbExt4 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl Product for KbExt4 {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl fmt::Debug for KbExt4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({} + {}·x + {}·x² + {}·x³)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::Display for KbExt4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::TestRng as StdRng;

    #[test]
    fn w_is_a_non_residue() {
        // For p ≡ 1 (mod 4), x^4 - W is irreducible iff W is a non-square
        // (its square roots then live in the quadratic layer, not Fp).
        assert_eq!(KoalaBear::ORDER % 4, 1);
        assert!(!W4.is_quadratic_residue());
    }

    #[test]
    fn x_to_the_fourth_is_w() {
        let x = KbExt4::X;
        assert_eq!(x * x * x * x, KbExt4::from(W4));
    }

    #[test]
    fn phi_is_a_primitive_fourth_root() {
        let phi = W4.exp_u64((KoalaBear::ORDER - 1) / 4);
        assert_eq!(phi * phi, -KoalaBear::ONE);
        assert_ne!(phi, KoalaBear::ONE);
    }

    #[test]
    fn frobenius_is_the_p_power_map() {
        let mut rng = StdRng::seed_from_u64(40);
        for _ in 0..16 {
            let a = KbExt4::random(&mut rng);
            let frob = a.repeated_frobenius(1);
            // a^p via square-and-multiply in the extension.
            let mut pow = KbExt4::ONE;
            let mut base = a;
            let mut e = KoalaBear::ORDER;
            while e != 0 {
                if e & 1 == 1 {
                    pow *= base;
                }
                base = base.square();
                e >>= 1;
            }
            assert_eq!(frob, pow);
        }
    }

    #[test]
    fn field_axioms_spot_checks() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..200 {
            let a = KbExt4::random(&mut rng);
            let b = KbExt4::random(&mut rng);
            let c = KbExt4::random(&mut rng);
            assert_eq!(a + b, b + a);
            assert_eq!(a * b, b * a);
            assert_eq!((a + b) * c, a * c + b * c);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a + KbExt4::ZERO, a);
            assert_eq!(a * KbExt4::ONE, a);
            assert_eq!(a - a, KbExt4::ZERO);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let a = KbExt4::random(&mut rng);
            if a == KbExt4::ZERO {
                continue;
            }
            assert_eq!(a * a.inverse(), KbExt4::ONE);
        }
        assert!(KbExt4::ZERO.try_inverse().is_none());
        // Base-field embeddings invert to embedded base inverses.
        let s = KoalaBear::from_u64(1234);
        assert_eq!(KbExt4::from(s).inverse(), KbExt4::from(s.inverse()));
    }

    #[test]
    fn embedding_is_a_homomorphism() {
        let a = KoalaBear::from_u64(123);
        let b = KoalaBear::from_u64(456);
        assert_eq!(KbExt4::from(a) * KbExt4::from(b), KbExt4::from(a * b));
        assert_eq!(KbExt4::from(a) + KbExt4::from(b), KbExt4::from(a + b));
    }

    #[test]
    fn scale_matches_mul_by_embedded() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = KbExt4::random(&mut rng);
        let s = KoalaBear::from_u64(99);
        assert_eq!(a.scale(s), a * KbExt4::from(s));
    }

    #[test]
    fn base_slice_roundtrip() {
        let a = KbExt4::new([
            KoalaBear::from_u64(1),
            KoalaBear::from_u64(2),
            KoalaBear::from_u64(3),
            KoalaBear::from_u64(4),
        ]);
        let limbs = a.to_base_slice();
        assert_eq!(limbs.len(), 4);
        assert_eq!(KbExt4::from_base_slice(&limbs), a);
    }

    #[test]
    fn norm_is_multiplicative_and_base_valued() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..100 {
            let a = KbExt4::random(&mut rng);
            let b = KbExt4::random(&mut rng);
            assert_eq!((a * b).norm(), a.norm() * b.norm());
        }
    }

    #[test]
    fn multiplicative_order_sanity() {
        // The unit group has order p^4 - 1; a random element to that power
        // is one (Lagrange), which exercises mul deeply.
        let mut rng = StdRng::seed_from_u64(45);
        let a = KbExt4::random(&mut rng);
        // a^(p^4) = a — equivalently frobenius^4 = id.
        assert_eq!(a.repeated_frobenius(4), a);
    }
}
