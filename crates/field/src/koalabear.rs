//! The KoalaBear field: `p = 2^31 - 2^24 + 1` in Montgomery form.
//!
//! KoalaBear is the 31-bit prime the Plonky3 zkVM stacks (SP1-class
//! provers, Ziren) run their chip inventories on: small enough that four
//! limbs fit a SIMD word where one Goldilocks limb does, yet with a
//! generous `2^24` two-adic subgroup for NTTs. `p - 1 = 2^24 · 127`, so
//! [`PrimeField64::TWO_ADICITY`] is 24 (versus 32 for Goldilocks) and the
//! analyzer's P02 rule must consult the *field's* two-adicity rather than
//! a baked-in 32 — see `unizk_core::analyze::ProtocolParams::two_adicity`.
//!
//! Unlike [`crate::Goldilocks`], which exploits its `2^64 - 2^32 + 1`
//! shape for reduction-by-folding, KoalaBear uses classic Montgomery
//! arithmetic with `R = 2^32`: elements are stored as `x·R mod p` in a
//! `u32`, multiplication is one 64-bit product plus a Montgomery
//! reduction, and the constants (`p^{-1} mod 2^32`, `R^2 mod p`) are
//! derived in `const fn`s rather than transcribed, so the compiler itself
//! checks the arithmetic identities at build time.
//!
//! # Example
//!
//! ```
//! use unizk_field::{Field, KoalaBear};
//!
//! let a = KoalaBear::from_u64(3);
//! let b = a.inverse();
//! assert_eq!(a * b, KoalaBear::ONE);
//! ```

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::traits::{Field, PrimeField64};

/// The KoalaBear prime `2^31 - 2^24 + 1`.
pub const P: u32 = 0x7f00_0001;

const P64: u64 = P as u64;

/// `-p^{-1} mod 2^32`, by Newton iteration (each step doubles the number
/// of correct low bits; five steps cover 32).
const MU: u32 = {
    let mut inv: u32 = P;
    let mut i = 0;
    while i < 5 {
        inv = inv.wrapping_mul(2u32.wrapping_sub(P.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
};

/// `R = 2^32 mod p` — the Montgomery representation of one.
const R: u32 = ((1u64 << 32) % P64) as u32;

/// `R^2 mod p`, the conversion factor into Montgomery form.
const R2: u32 = (((R as u64) * (R as u64)) % P64) as u32;

/// Montgomery reduction: maps `x < p·2^32` to `x·R^{-1} mod p`, canonical.
// The `as u32` casts are the algorithm: `x as u32` *is* the low-word
// extraction REDC needs, and the final cast follows `>> 32` of a sum
// bounded below 2^64.
#[allow(clippy::cast_possible_truncation)]
#[inline(always)]
const fn mont_reduce(x: u64) -> u32 {
    let m = (x as u32).wrapping_mul(MU);
    // x + m·p < p·2^32 + 2^32·p < 2^64 (p < 2^31), so the sum cannot wrap.
    let t = ((x + (m as u64) * P64) >> 32) as u32;
    if t >= P {
        t - P
    } else {
        t
    }
}

/// Montgomery product of two canonical residues.
#[inline(always)]
const fn mont_mul(a: u32, b: u32) -> u32 {
    mont_reduce((a as u64) * (b as u64))
}

/// An element of the KoalaBear field, stored as a Montgomery residue
/// `x·2^32 mod p` in `[0, p)`.
///
/// `Eq`/`Hash` derive on the residue: the Montgomery map is a bijection
/// on `[0, p)`, so residue equality is field equality. `Ord` compares
/// *canonical* values so that ordering matches [`Field::as_u64`].
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct KoalaBear(u32);

impl KoalaBear {
    /// Builds an element from a canonical value.
    ///
    /// Usable in `const` contexts; the conversion into Montgomery form is
    /// a compile-time `mont_mul` by `R^2`.
    ///
    /// # Panics
    ///
    /// Panics (at compile time, for `const` uses) if `value >= P`.
    pub const fn new(value: u32) -> Self {
        assert!(value < P, "value out of range for KoalaBear");
        Self(mont_mul(value, R2))
    }

    /// The canonical value in `[0, p)`.
    #[inline]
    pub const fn as_canonical_u32(self) -> u32 {
        mont_reduce(self.0 as u64)
    }

    /// The raw Montgomery residue (test-support; not the canonical value).
    #[inline]
    pub const fn to_montgomery(self) -> u32 {
        self.0
    }

    /// Whether the element is a square in the field, by Euler's criterion.
    pub fn is_quadratic_residue(self) -> bool {
        if self.is_zero() {
            return true;
        }
        self.exp_u64((P64 - 1) / 2) == Self::ONE
    }
}

impl Field for KoalaBear {
    const ZERO: Self = Self(0);
    const ONE: Self = Self(R);
    const TWO: Self = Self::new(2);

    #[inline]
    fn from_u64(n: u64) -> Self {
        Self(mont_mul((n % P64) as u32, R2))
    }

    #[inline]
    fn as_u64(&self) -> u64 {
        self.as_canonical_u32() as u64
    }

    fn try_inverse(&self) -> Option<Self> {
        if self.is_zero() {
            return None;
        }
        // Fermat: x^(p-2).
        Some(self.exp_u64(P64 - 2))
    }
}

impl PrimeField64 for KoalaBear {
    const ORDER: u64 = P64;
    // p - 1 = 2^24 · 127.
    const TWO_ADICITY: usize = 24;
    /// `3` generates the full multiplicative group (pinned by a test
    /// checking `3^((p-1)/q) != 1` for both prime factors `q` of `p-1`).
    const MULTIPLICATIVE_GENERATOR: Self = Self::new(3);
    const BITS: usize = 31;
    const BYTES: usize = 4;

    fn primitive_root_of_unity(bits: usize) -> Self {
        assert!(
            bits <= Self::TWO_ADICITY,
            "no primitive 2^{bits}-th root of unity: exceeds two-adicity {}",
            Self::TWO_ADICITY
        );
        // g^((p-1) / 2^TWO_ADICITY) has exact order 2^TWO_ADICITY; square
        // down to the requested order.
        let mut root = Self::MULTIPLICATIVE_GENERATOR.exp_u64((P64 - 1) >> Self::TWO_ADICITY);
        for _ in bits..Self::TWO_ADICITY {
            root = root.square();
        }
        root
    }

    fn random<R: unizk_testkit::rng::Rng + ?Sized>(rng: &mut R) -> Self {
        // Rejection sampling on the low 31 bits keeps the distribution
        // uniform (acceptance probability ≈ 0.992).
        loop {
            let v = rng.next_u64() & 0x7fff_ffff;
            if v < P64 {
                return Self::new(v as u32);
            }
        }
    }
}

impl Ord for KoalaBear {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.as_canonical_u32().cmp(&other.as_canonical_u32())
    }
}

impl PartialOrd for KoalaBear {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for KoalaBear {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        // Both residues are < p < 2^31, so the u32 sum cannot wrap.
        let s = self.0 + rhs.0;
        Self(if s >= P { s - P } else { s })
    }
}

impl Sub for KoalaBear {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        Self(if borrow { d.wrapping_add(P) } else { d })
    }
}

impl Mul for KoalaBear {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(mont_mul(self.0, rhs.0))
    }
}

impl Neg for KoalaBear {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Self(P - self.0)
        }
    }
}

impl AddAssign for KoalaBear {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for KoalaBear {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for KoalaBear {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for KoalaBear {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl Product for KoalaBear {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ONE, |a, b| a * b)
    }
}

impl From<u32> for KoalaBear {
    fn from(n: u32) -> Self {
        Self::from_u64(n as u64)
    }
}

impl From<u64> for KoalaBear {
    fn from(n: u64) -> Self {
        Self::from_u64(n)
    }
}

impl From<KoalaBear> for u64 {
    fn from(x: KoalaBear) -> u64 {
        x.as_u64()
    }
}

impl fmt::Debug for KoalaBear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_canonical_u32())
    }
}

impl fmt::Display for KoalaBear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_canonical_u32())
    }
}

impl fmt::LowerHex for KoalaBear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.as_canonical_u32(), f)
    }
}

impl fmt::UpperHex for KoalaBear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.as_canonical_u32(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unizk_testkit::rng::{Rng, SplitMix64, TestRng as StdRng};

    /// Reference arithmetic straight from the definition, via u64.
    fn ref_mul(a: u64, b: u64) -> u64 {
        (a * b) % P64
    }

    fn ref_add(a: u64, b: u64) -> u64 {
        (a + b) % P64
    }

    fn edge_values() -> Vec<u64> {
        vec![
            0,
            1,
            2,
            3,
            126,
            127,
            (1 << 24) - 1,
            1 << 24,
            (1 << 24) + 1,
            P64 / 2,
            P64 - 3,
            P64 - 2,
            P64 - 1,
        ]
    }

    #[test]
    fn montgomery_constants_are_consistent() {
        // MU · p ≡ -1 (mod 2^32).
        assert_eq!(MU.wrapping_mul(P), u32::MAX);
        assert_eq!(R as u64, (1u64 << 32) % P64);
        assert_eq!(R2 as u64, ((R as u64) * (R as u64)) % P64);
        // p - 1 = 2^24 · 127, so the two-adicity really is 24.
        assert_eq!(P64 - 1, (1 << 24) * 127);
    }

    #[test]
    fn roundtrip_through_montgomery_form() {
        for v in edge_values() {
            let x = KoalaBear::from_u64(v);
            assert_eq!(x.as_u64(), v % P64, "v={v}");
        }
        // from_u64 reduces values past p.
        assert_eq!(KoalaBear::from_u64(P64).as_u64(), 0);
        assert_eq!(KoalaBear::from_u64(P64 + 5).as_u64(), 5);
        assert_eq!(KoalaBear::from_u64(u64::MAX).as_u64(), u64::MAX % P64);
    }

    #[test]
    fn add_sub_mul_match_reference() {
        for &a in &edge_values() {
            for &b in &edge_values() {
                let x = KoalaBear::from_u64(a);
                let y = KoalaBear::from_u64(b);
                assert_eq!((x + y).as_u64(), ref_add(a, b), "{a}+{b}");
                assert_eq!((x * y).as_u64(), ref_mul(a, b), "{a}*{b}");
                assert_eq!((x - y).as_u64(), (P64 + a - b) % P64, "{a}-{b}");
            }
        }
    }

    #[test]
    fn randomized_arithmetic_matches_reference() {
        let mut rng = SplitMix64::seed_from_u64(0x4b42_2026);
        for _ in 0..4096 {
            let a = rng.next_u64() % P64;
            let b = rng.next_u64() % P64;
            let x = KoalaBear::from_u64(a);
            let y = KoalaBear::from_u64(b);
            assert_eq!((x + y).as_u64(), ref_add(a, b));
            assert_eq!((x * y).as_u64(), ref_mul(a, b));
            assert_eq!((-x).as_u64(), (P64 - a) % P64);
        }
    }

    #[test]
    fn neg_and_sub_agree() {
        for &a in &edge_values() {
            let x = KoalaBear::from_u64(a);
            assert_eq!(KoalaBear::ZERO - x, -x);
            assert_eq!(x + (-x), KoalaBear::ZERO);
        }
    }

    #[test]
    fn inverse_roundtrips() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(KoalaBear::ZERO.try_inverse().is_none());
        for _ in 0..256 {
            let x = KoalaBear::random(&mut rng);
            if x.is_zero() {
                continue;
            }
            assert_eq!(x * x.inverse(), KoalaBear::ONE);
        }
        assert_eq!(KoalaBear::ONE.inverse(), KoalaBear::ONE);
    }

    #[test]
    fn generator_has_full_order() {
        // ord(3) divides p-1 = 2^24 · 127; it is all of it iff
        // 3^((p-1)/2) != 1 and 3^((p-1)/127) != 1.
        let g = KoalaBear::MULTIPLICATIVE_GENERATOR;
        assert_eq!(g.as_u64(), 3);
        assert_ne!(g.exp_u64((P64 - 1) / 2), KoalaBear::ONE);
        assert_ne!(g.exp_u64((P64 - 1) / 127), KoalaBear::ONE);
        assert_eq!(g.exp_u64(P64 - 1), KoalaBear::ONE);
    }

    #[test]
    fn three_is_not_a_square() {
        // p ≡ 5 (mod 12), so 3 is a quadratic non-residue — the fact the
        // degree-4 extension x^4 - 3 is built on.
        assert_eq!(P64 % 12, 5);
        assert!(!KoalaBear::MULTIPLICATIVE_GENERATOR.is_quadratic_residue());
        assert!(KoalaBear::from_u64(4).is_quadratic_residue());
    }

    #[test]
    fn roots_of_unity_have_exact_order() {
        for bits in 0..=24usize {
            let w = KoalaBear::primitive_root_of_unity(bits);
            assert_eq!(w.exp_u64(1 << bits), KoalaBear::ONE, "bits={bits}");
            if bits > 0 {
                assert_ne!(w.exp_u64(1 << (bits - 1)), KoalaBear::ONE, "bits={bits}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "two-adicity")]
    fn root_of_unity_too_large_panics() {
        let _ = KoalaBear::primitive_root_of_unity(25);
    }

    #[test]
    fn random_is_canonical_and_varied() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..128 {
            let x = KoalaBear::random(&mut rng);
            assert!(x.as_u64() < P64);
            seen.insert(x);
        }
        assert!(seen.len() > 100, "suspiciously repetitive sampling");
    }

    #[test]
    fn ordering_is_canonical_not_montgomery() {
        let one = KoalaBear::ONE;
        let two = KoalaBear::TWO;
        assert!(one < two);
        let big = KoalaBear::from_u64(P64 - 1);
        assert!(two < big);
    }

    #[test]
    fn exp_and_square_consistency() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..64 {
            let x = KoalaBear::random(&mut rng);
            assert_eq!(x.square(), x * x);
            assert_eq!(x.double(), x + x);
            assert_eq!(x.exp_u64(5), x * x * x * x * x);
        }
    }
}
