//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The CPU-baseline prover uses these to mirror the paper's multi-threaded
//! Plonky2 baseline (§6 uses 80 threads). A process-wide override supports
//! the single-threaded runs Table 1's breakdown methodology requires.
//!
//! Both helpers are **trace-aware**: they capture the calling thread's
//! open [`unizk_testkit::trace`] span path and re-attach it inside each
//! worker, so spans and counters recorded by workers aggregate under the
//! caller's spans (one merged total, no double counting) instead of
//! appearing as orphaned top-level entries.

use std::sync::atomic::{AtomicUsize, Ordering};

use unizk_testkit::trace::SpanHandle;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces all [`parallel_map`] calls to use exactly `n` threads
/// (`0` restores the default of one thread per available core).
///
/// # Semantics
///
/// * The override is **process-global** and takes effect for calls that
///   *start* after the store; helpers already running keep the thread
///   count they latched at entry.
/// * `set_parallelism(1)` is the measurement mode: helpers run their
///   closure serially on the calling thread, so wall time equals CPU time
///   and kernel spans nest exactly as the call tree does. The Table 1
///   harness and `bench/baseline` both use it, matching the paper's
///   single-threaded breakdown methodology.
/// * The value is a worker-thread *cap*, not a floor — small inputs use
///   fewer threads (at most one item per worker).
///
/// # Examples
///
/// ```
/// use unizk_field::par::{current_parallelism, set_parallelism};
///
/// set_parallelism(2);
/// assert_eq!(current_parallelism(), 2);
/// set_parallelism(0); // back to one thread per available core
/// assert!(current_parallelism() >= 1);
/// ```
pub fn set_parallelism(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of worker threads [`parallel_map`] will use.
pub fn current_parallelism() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        forced
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Falls back to a plain serial map when one thread is configured or the
/// input is small. Worker threads inherit the caller's open trace-span
/// path (see the module docs), and their collectors merge into the global
/// trace store when the scope joins — so a snapshot taken after
/// `parallel_map` returns always includes the workers' spans and counters.
///
/// # Examples
///
/// ```
/// use unizk_field::par::parallel_map;
///
/// let squares = parallel_map((0u64..100).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
///
/// Trace counters bumped inside workers sum deterministically:
///
/// ```
/// use unizk_field::par::parallel_map;
/// use unizk_testkit::trace;
///
/// trace::reset();
/// let _ = parallel_map((0..32).collect::<Vec<u32>>(), |x| {
///     trace::counter("items", 1);
///     x
/// });
/// assert_eq!(trace::snapshot().counter("items"), 32);
/// ```
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_parallelism().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into owned chunks, one per worker, preserving order.
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }

    let span = SpanHandle::current();
    std::thread::scope(|scope| {
        let f = &f;
        let span = &span;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(move || {
                    let _trace_ctx = span.attach();
                    c.into_iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
}

/// Runs `f(start, end)` over disjoint subranges of `0..n` in parallel.
///
/// Workers inherit the caller's trace-span path, exactly as in
/// [`parallel_map`].
pub fn parallel_ranges<F>(n: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = current_parallelism();
    if threads <= 1 || n < 2 {
        f(0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    let span = SpanHandle::current();
    std::thread::scope(|scope| {
        let f = &f;
        let span = &span;
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            scope.spawn(move || {
                let _trace_ctx = span.attach();
                f(start, end);
            });
            start = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(items, |x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn parallel_map_with_allocations() {
        // Non-Copy payloads exercise the move-out path.
        let items: Vec<Vec<u64>> = (0..64).map(|i| vec![i; 10]).collect();
        let out = parallel_map(items, |v| v.iter().sum::<u64>());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 10);
        }
    }

    #[test]
    fn serial_override() {
        set_parallelism(1);
        assert_eq!(current_parallelism(), 1);
        let out = parallel_map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        set_parallelism(0);
    }

    #[test]
    fn parallel_ranges_covers_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        parallel_ranges(1001, |s, e| {
            hits.fetch_add((e - s) as u64, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1001);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
