//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The CPU-baseline prover uses these to mirror the paper's multi-threaded
//! Plonky2 baseline (§6 uses 80 threads). A process-wide override supports
//! the single-threaded runs Table 1's breakdown methodology requires.
//!
//! Both helpers are **trace-aware**: they capture the calling thread's
//! open [`unizk_testkit::trace`] span path and re-attach it inside each
//! worker, so spans and counters recorded by workers aggregate under the
//! caller's spans (one merged total, no double counting) instead of
//! appearing as orphaned top-level entries.

use std::sync::atomic::{AtomicUsize, Ordering};

use unizk_testkit::trace::SpanHandle;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces all [`parallel_map`] calls to use exactly `n` threads
/// (`0` restores the default of one thread per available core).
///
/// # Semantics
///
/// * The override is **process-global** and takes effect for calls that
///   *start* after the store; helpers already running keep the thread
///   count they latched at entry.
/// * `set_parallelism(1)` is the measurement mode: helpers run their
///   closure serially on the calling thread, so wall time equals CPU time
///   and kernel spans nest exactly as the call tree does. The Table 1
///   harness and `bench/baseline` both use it, matching the paper's
///   single-threaded breakdown methodology.
/// * The value is a worker-thread *cap*, not a floor — small inputs use
///   fewer threads (at most one item per worker).
///
/// # Examples
///
/// ```
/// use unizk_field::par::{current_parallelism, set_parallelism};
///
/// set_parallelism(2);
/// assert_eq!(current_parallelism(), 2);
/// set_parallelism(0); // back to one thread per available core
/// assert!(current_parallelism() >= 1);
/// ```
pub fn set_parallelism(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The number of worker threads [`parallel_map`] will use.
pub fn current_parallelism() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        forced
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Falls back to a plain serial map when one thread is configured or the
/// input is small. Worker threads inherit the caller's open trace-span
/// path (see the module docs), and their collectors merge into the global
/// trace store when the scope joins — so a snapshot taken after
/// `parallel_map` returns always includes the workers' spans and counters.
///
/// # Examples
///
/// ```
/// use unizk_field::par::parallel_map;
///
/// let squares = parallel_map((0u64..100).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
///
/// Trace counters bumped inside workers sum deterministically:
///
/// ```
/// use unizk_field::par::parallel_map;
/// use unizk_testkit::trace;
///
/// trace::reset();
/// let _ = parallel_map((0..32).collect::<Vec<u32>>(), |x| {
///     trace::counter("items", 1);
///     x
/// });
/// assert_eq!(trace::snapshot().counter("items"), 32);
/// ```
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_parallelism().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into owned chunks, one per worker, preserving order.
    let chunk = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }

    let span = SpanHandle::current();
    std::thread::scope(|scope| {
        let f = &f;
        let span = &span;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(move || {
                    let _trace_ctx = span.attach();
                    c.into_iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
}

/// Applies `f` to disjoint consecutive chunks of `values` in parallel.
///
/// `values` is cut into `chunk`-sized pieces (the last may be shorter); each
/// invocation receives the chunk's starting offset within `values` and a
/// mutable view of the chunk. Chunks are distributed contiguously over the
/// configured worker threads, and workers inherit the caller's trace-span
/// path exactly as in [`parallel_map`]. With one thread configured the
/// chunks are processed in order on the calling thread with zero dispatch
/// overhead — the property the in-place parallel NTT stages rely on to make
/// `set_parallelism(1)` a true serial-measurement mode.
///
/// # Panics
///
/// Panics if `chunk` is zero.
///
/// # Examples
///
/// ```
/// use unizk_field::par::parallel_chunks_mut;
///
/// let mut v: Vec<u64> = (0..100).collect();
/// parallel_chunks_mut(&mut v, 16, |offset, chunk| {
///     for (i, x) in chunk.iter_mut().enumerate() {
///         *x += (offset + i) as u64; // every element doubled
///     }
/// });
/// assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
/// ```
pub fn parallel_chunks_mut<T, F>(values: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let threads = current_parallelism();
    if threads <= 1 || values.len() <= chunk {
        let mut start = 0;
        for c in values.chunks_mut(chunk) {
            let len = c.len();
            f(start, c);
            start += len;
        }
        return;
    }

    let mut chunks: Vec<(usize, &mut [T])> = Vec::new();
    let mut start = 0;
    for c in values.chunks_mut(chunk) {
        let len = c.len();
        chunks.push((start, c));
        start += len;
    }
    let per_worker = chunks.len().div_ceil(threads);
    let span = SpanHandle::current();
    std::thread::scope(|scope| {
        let f = &f;
        let span = &span;
        let mut it = chunks.into_iter();
        loop {
            let group: Vec<(usize, &mut [T])> = it.by_ref().take(per_worker).collect();
            if group.is_empty() {
                break;
            }
            scope.spawn(move || {
                let _trace_ctx = span.attach();
                for (offset, c) in group {
                    f(offset, c);
                }
            });
        }
    });
}

/// Processes two equal-length slices as aligned chunk pairs in parallel:
/// `f(offset, a_chunk, b_chunk)` where both chunks cover
/// `offset..offset + chunk` of their slice.
///
/// This is the safe decomposition of a butterfly stage whose blocks straddle
/// worker segments: the caller splits the block into its low and high
/// halves, and each worker owns one aligned window of both halves. Same
/// dispatch, trace-propagation, and serial-fallback behavior as
/// [`parallel_chunks_mut`].
///
/// # Panics
///
/// Panics if the slices differ in length or `chunk` is zero.
pub fn parallel_zip_mut<T, F>(a: &mut [T], b: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T], &mut [T]) + Sync,
{
    assert_eq!(a.len(), b.len(), "parallel_zip_mut slices must match");
    assert!(chunk > 0, "chunk size must be positive");
    let threads = current_parallelism();
    if threads <= 1 || a.len() <= chunk {
        f(0, a, b);
        return;
    }

    let pairs: Vec<(usize, &mut [T], &mut [T])> = a
        .chunks_mut(chunk)
        .zip(b.chunks_mut(chunk))
        .scan(0, |start, (ca, cb)| {
            let offset = *start;
            *start += ca.len();
            Some((offset, ca, cb))
        })
        .collect();
    let per_worker = pairs.len().div_ceil(threads);
    let span = SpanHandle::current();
    std::thread::scope(|scope| {
        let f = &f;
        let span = &span;
        let mut it = pairs.into_iter();
        loop {
            let group: Vec<(usize, &mut [T], &mut [T])> = it.by_ref().take(per_worker).collect();
            if group.is_empty() {
                break;
            }
            scope.spawn(move || {
                let _trace_ctx = span.attach();
                for (offset, ca, cb) in group {
                    f(offset, ca, cb);
                }
            });
        }
    });
}

/// Finds the first block index `k` (in ascending order) for which
/// `f(k)` returns `Some`, evaluating blocks in *waves* of the configured
/// parallelism, and returns that `Some`.
///
/// This is the deterministic search primitive behind the FRI grind: the
/// result is the answer of the **lowest-indexed** successful block, no
/// matter how many threads raced within a wave — wave `w` evaluates blocks
/// `w·t .. (w+1)·t` concurrently (`t` = thread count), then takes the first
/// `Some` in block order, so every parallelism setting (including the
/// serial fallback) agrees bit-for-bit. Blocks past the first success
/// within a wave may still be *evaluated* (speculative overshoot); callers
/// whose `f` has side effects must make them idempotent or account for the
/// overshoot themselves.
///
/// `f` must return `Some` for some `k` — the search runs unboundedly
/// upward, mirroring a `loop` over a serial scan.
///
/// Workers inherit the caller's trace-span path, exactly as in
/// [`parallel_map`].
///
/// # Examples
///
/// ```
/// use unizk_field::par::parallel_first_block;
///
/// // First block whose index squares past 50, regardless of thread count.
/// let hit = parallel_first_block(|k| if k * k >= 50 { Some(k) } else { None });
/// assert_eq!(hit, 8);
/// ```
pub fn parallel_first_block<U, F>(f: F) -> U
where
    U: Send,
    F: Fn(usize) -> Option<U> + Sync,
{
    let threads = current_parallelism();
    if threads <= 1 {
        return (0..)
            .find_map(f)
            .expect("unbounded search cannot exhaust usize");
    }
    let mut wave = 0;
    loop {
        let blocks: Vec<usize> = (wave * threads..(wave + 1) * threads).collect();
        let results = parallel_map(blocks, &f);
        if let Some(hit) = results.into_iter().flatten().next() {
            return hit;
        }
        wave += 1;
    }
}

/// Runs `f(start, end)` over disjoint subranges of `0..n` in parallel.
///
/// Workers inherit the caller's trace-span path, exactly as in
/// [`parallel_map`].
pub fn parallel_ranges<F>(n: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = current_parallelism();
    if threads <= 1 || n < 2 {
        f(0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    let span = SpanHandle::current();
    std::thread::scope(|scope| {
        let f = &f;
        let span = &span;
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            scope.spawn(move || {
                let _trace_ctx = span.attach();
                f(start, end);
            });
            start = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(items, |x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn parallel_map_with_allocations() {
        // Non-Copy payloads exercise the move-out path.
        let items: Vec<Vec<u64>> = (0..64).map(|i| vec![i; 10]).collect();
        let out = parallel_map(items, |v| v.iter().sum::<u64>());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 10);
        }
    }

    #[test]
    fn serial_override() {
        set_parallelism(1);
        assert_eq!(current_parallelism(), 1);
        let out = parallel_map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        set_parallelism(0);
    }

    #[test]
    fn parallel_ranges_covers_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        parallel_ranges(1001, |s, e| {
            hits.fetch_add((e - s) as u64, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1001);
    }

    #[test]
    fn first_block_deterministic_across_parallelism() {
        // The qualifying predicate has many hits; the lowest block must win
        // under every thread count.
        for threads in [1usize, 2, 3, 5, 8] {
            set_parallelism(threads);
            let hit = parallel_first_block(|k| if k >= 13 { Some(k) } else { None });
            assert_eq!(hit, 13, "threads={threads}");
        }
        set_parallelism(0);
        let hit = parallel_first_block(|k| if k >= 13 { Some(k) } else { None });
        assert_eq!(hit, 13, "default parallelism");
    }

    #[test]
    fn first_block_immediate_hit() {
        set_parallelism(4);
        let hit = parallel_first_block(|k| Some(k * 10));
        assert_eq!(hit, 0);
        set_parallelism(0);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_mut_covers_all_offsets() {
        for n in [0usize, 1, 7, 64, 1000] {
            let mut v = vec![0u64; n];
            parallel_chunks_mut(&mut v, 13, |offset, chunk| {
                for (i, x) in chunk.iter_mut().enumerate() {
                    *x = (offset + i) as u64;
                }
            });
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(x, i as u64, "n={n}");
            }
        }
    }

    #[test]
    fn zip_mut_windows_stay_aligned() {
        let mut a: Vec<u64> = (0..500).collect();
        let mut b: Vec<u64> = (1000..1500).collect();
        parallel_zip_mut(&mut a, &mut b, 37, |offset, ca, cb| {
            assert_eq!(ca.len(), cb.len());
            for (i, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                assert_eq!(*y - *x, 1000, "offset={offset} i={i}");
                core::mem::swap(x, y);
            }
        });
        assert_eq!(a[0], 1000);
        assert_eq!(b[499], 499);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn zip_mut_rejects_length_mismatch() {
        let mut a = [0u8; 3];
        let mut b = [0u8; 4];
        parallel_zip_mut(&mut a, &mut b, 1, |_, _, _| {});
    }
}
