//! Finite-field arithmetic for the UniZK reproduction.
//!
//! This crate implements the algebra that every other layer of the system is
//! built on:
//!
//! * [`Goldilocks`] — the 64-bit prime field `p = 2^64 - 2^32 + 1` used by
//!   Plonky2 and Starky. All accelerator datapaths in the paper operate on
//!   64-bit Goldilocks elements (§4 of the paper).
//! * [`Ext2`] — the quadratic extension field (`D = 2`) used for soundness
//!   in the protocol's random challenges.
//! * [`KoalaBear`] — the 31-bit prime field `p = 2^31 - 2^24 + 1` the
//!   Plonky3-style zkVM stacks run on, with [`KbExt4`] as its degree-4
//!   challenge extension (a 31-bit field needs `D = 4` for ~124 bits of
//!   Schwartz–Zippel room). [`ProtocolField`] is the seam that lets the
//!   FRI/STARK layers stay generic over the `(base, extension)` pair.
//! * [`Polynomial`] — a dense univariate polynomial over any [`Field`].
//! * [`batch_inverse`] — Montgomery's batch-inversion trick, used heavily by
//!   the quotient computation in the Plonk phase.
//! * [`bit_reverse`] / [`reverse_index_bits`] — the bit-reversal permutations
//!   that the NTT variants (`NN`, `NR`, …) are defined in terms of.
//! * [`parallel_map`] / [`parallel_ranges`] — the fork/join primitives the
//!   prover's hot loops run on, governed by the process-global
//!   [`set_parallelism`] override (`1` = single-threaded measurement mode).
//!   Workers inherit the caller's open `unizk_testkit::trace` span, so
//!   timings recorded inside parallel regions aggregate under the right
//!   parent instead of double-counting.
//! * [`Pool`] / [`TablePool`] — recyclable buffer free-lists. The
//!   proof-serving pipeline bundles them into a `unizk_hash::Workspace`
//!   and threads that through the prover so concurrent jobs reuse
//!   polynomial, codeword, and Merkle allocations instead of churning the
//!   allocator.
//!
//! # Invariants
//!
//! * Every [`Goldilocks`] value is kept in **canonical form** `0 <= x < p`
//!   at all times — constructors reduce on entry, and all arithmetic
//!   returns reduced results, so `==`/`Ord`/`Hash` agree with field
//!   equality and serialized bytes are unique per element.
//! * [`set_parallelism`] is a process-global override latched at the entry
//!   of each parallel call; it caps, never raises, the worker count.
//!
//! # Example
//!
//! ```
//! use unizk_field::{Field, Goldilocks};
//!
//! let a = Goldilocks::from_u64(5);
//! let b = Goldilocks::from_u64(7);
//! assert_eq!((a * b).as_u64(), 35);
//! let inv = b.inverse();
//! assert_eq!(b * inv, Goldilocks::ONE);
//! ```

#![forbid(unsafe_code)]

pub mod ext4;
pub mod extension;
pub mod goldilocks;
pub mod koalabear;
pub mod par;
pub mod poly;
pub mod pool;
pub mod traits;
pub mod util;

pub use ext4::KbExt4;
pub use extension::Ext2;
pub use goldilocks::Goldilocks;
pub use koalabear::KoalaBear;
pub use par::{
    current_parallelism, parallel_chunks_mut, parallel_first_block, parallel_map, parallel_ranges,
    parallel_zip_mut, set_parallelism,
};
pub use poly::Polynomial;
pub use pool::{Pool, PoolStats, TablePool};
pub use traits::{ExtensionOf, Field, PrimeField64, ProtocolField};
pub use util::{batch_inverse, bit_reverse, log2_strict, reverse_index_bits};
