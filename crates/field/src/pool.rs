//! Recyclable buffer pools for the proof-serving pipeline.
//!
//! A prover job allocates the same large buffers every time it runs: LDE
//! codewords, Merkle levels, FRI fold layers, leaf tables. When one process
//! serves many jobs back to back, that allocation churn is pure overhead —
//! the software analogue of the paper's observation that a unified
//! accelerator must keep its datapath busy *across* kernels, not optimise
//! one in isolation. These pools let a job return its buffers when it
//! finishes so the next job on the same worker reuses the capacity.
//!
//! Two shapes are covered:
//!
//! * [`Pool`] — flat `Vec<T>` buffers (field elements, digests).
//! * [`TablePool`] — `Vec<Vec<T>>` tables (Merkle leaf tables), where the
//!   *inner* capacities are the valuable part and must survive recycling.
//!
//! # Contract
//!
//! * [`Pool::take`] always returns an **empty** vector (`len == 0`); any
//!   contents a buffer held when it was shelved are truncated away at take
//!   time, never observable by the next user. [`Pool::put`] deliberately
//!   does *not* clear — the stale contents act as a poisoned-buffer canary:
//!   a consumer that peeks past its own writes (e.g. by resizing without
//!   clearing first) produces wrong values that the differential test walls
//!   catch immediately.
//! * Pooling is **value-invisible**: a computation produces bit-identical
//!   results whether its buffers come from a pool or from the allocator.
//!   The pools carry no data across jobs, only capacity.
//! * All methods are thread-safe; `take`/`put` from concurrent workers only
//!   contend on a short critical section.
//!
//! # Example
//!
//! ```
//! use unizk_field::pool::Pool;
//!
//! let pool: Pool<u64> = Pool::new();
//! let mut buf = pool.take(1024);       // miss: nothing shelved yet
//! buf.extend(0..1024u64);
//! pool.put(buf);                        // shelve the capacity
//! let again = pool.take(1024);          // hit: same allocation back
//! assert!(again.is_empty());            // ...but cleared
//! assert!(again.capacity() >= 1024);
//! let s = pool.stats();
//! assert_eq!((s.hits, s.misses), (1, 1));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum buffers shelved per pool; `put` beyond this drops the incoming
/// buffer (bounding worst-case idle memory, not correctness).
const MAX_SHELVES: usize = 64;

/// Hit/miss counters of one pool (or an aggregate over several).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls satisfied from a shelved buffer of sufficient capacity.
    pub hits: u64,
    /// `take` calls that fell through to a fresh allocation.
    pub misses: u64,
}

impl PoolStats {
    /// Fraction of takes served from the shelf, or `None` before any take.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        #[allow(clippy::cast_precision_loss)] // counters stay far below 2^52
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Component-wise sum, for aggregating per-worker pools.
    #[must_use]
    pub fn merged(&self, other: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// A thread-safe free list of `Vec<T>` buffers, reused by capacity.
#[derive(Debug, Default)]
pub struct Pool<T> {
    shelves: Mutex<Vec<Vec<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Pool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            shelves: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns an empty vector with capacity at least `capacity`.
    ///
    /// A shelved buffer with sufficient capacity is a *hit* (its previous
    /// contents are truncated away before it is handed out); otherwise a
    /// fresh vector is allocated and counted as a *miss*.
    pub fn take(&self, capacity: usize) -> Vec<T> {
        let mut shelves = self
            .shelves
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Best fit: the smallest shelved buffer that is large enough, so
        // oversized buffers stay available for the requests that need them.
        let best = shelves
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= capacity)
            .min_by_key(|(_, v)| v.capacity())
            .map(|(i, _)| i);
        match best {
            Some(i) => {
                let mut v = shelves.swap_remove(i);
                drop(shelves);
                self.hits.fetch_add(1, Ordering::Relaxed);
                v.clear();
                v
            }
            None => {
                drop(shelves);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Shelves a buffer for reuse. Contents are kept as-is until the next
    /// [`take`](Pool::take) clears them (see the module docs for why), so
    /// `put` is O(1). Buffers beyond the shelf bound are dropped.
    pub fn put(&self, v: Vec<T>) {
        if v.capacity() == 0 {
            return;
        }
        let mut shelves = self
            .shelves
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shelves.len() < MAX_SHELVES {
            shelves.push(v);
        }
    }

    /// Number of buffers currently shelved.
    pub fn shelved(&self) -> usize {
        self.shelves
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// A thread-safe free list of `Vec<Vec<T>>` tables.
///
/// The valuable capacity of a leaf table is in its *rows* — thousands of
/// small inner vectors. Dropping the table frees every row; this pool
/// shelves the whole table so row capacities survive from job to job.
///
/// # Example
///
/// ```
/// use unizk_field::pool::TablePool;
///
/// let pool: TablePool<u32> = TablePool::new();
/// let mut t = pool.take(4);
/// assert_eq!(t.len(), 4);
/// t[0].extend([1, 2, 3]);
/// pool.put(t);
/// let t2 = pool.take(4);                // same rows back, cleared
/// assert!(t2.iter().all(Vec::is_empty));
/// assert!(t2[0].capacity() >= 3);
/// ```
#[derive(Debug, Default)]
pub struct TablePool<T> {
    shelves: Mutex<Vec<Vec<Vec<T>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> TablePool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            shelves: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns a table with exactly `rows` empty rows (row capacities from
    /// a shelved table are preserved). A *hit* is a shelved table that
    /// already had at least `rows` rows; a shorter or absent table counts
    /// as a *miss* (missing rows are freshly allocated).
    pub fn take(&self, rows: usize) -> Vec<Vec<T>> {
        let mut shelves = self
            .shelves
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let best = shelves
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| t.len())
            .map(|(i, _)| i);
        let mut table = match best {
            Some(i) => {
                let t = shelves.swap_remove(i);
                drop(shelves);
                if t.len() >= rows {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                t
            }
            None => {
                drop(shelves);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(rows)
            }
        };
        table.truncate(rows);
        for row in &mut table {
            row.clear();
        }
        table.resize_with(rows, Vec::new);
        table
    }

    /// Shelves a table for reuse; row contents are cleared by the next
    /// [`take`](TablePool::take), not here.
    pub fn put(&self, table: Vec<Vec<T>>) {
        if table.is_empty() {
            return;
        }
        let mut shelves = self
            .shelves
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shelves.len() < MAX_SHELVES {
            shelves.push(table);
        }
    }

    /// Number of tables currently shelved.
    pub fn shelved(&self) -> usize {
        self.shelves
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_prefers_best_fit() {
        let pool: Pool<u8> = Pool::new();
        pool.put(Vec::with_capacity(100));
        pool.put(Vec::with_capacity(10));
        let v = pool.take(8);
        assert!(
            v.capacity() >= 8 && v.capacity() < 100,
            "small shelf should win"
        );
        assert_eq!(pool.shelved(), 1);
    }

    #[test]
    fn take_clears_poisoned_contents() {
        let pool: Pool<u64> = Pool::new();
        pool.put(vec![0xDEAD; 32]);
        let v = pool.take(16);
        assert!(v.is_empty());
        assert!(v.capacity() >= 32);
    }

    #[test]
    fn miss_when_nothing_fits() {
        let pool: Pool<u64> = Pool::new();
        pool.put(Vec::with_capacity(4));
        let v = pool.take(1000);
        assert!(v.capacity() >= 1000);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (0, 1));
        // The undersized shelf is still there for a smaller request.
        assert_eq!(pool.shelved(), 1);
    }

    #[test]
    fn shelf_bound_is_enforced() {
        let pool: Pool<u8> = Pool::new();
        for _ in 0..(MAX_SHELVES + 10) {
            pool.put(Vec::with_capacity(1));
        }
        assert_eq!(pool.shelved(), MAX_SHELVES);
    }

    #[test]
    fn table_take_normalises_row_count() {
        let pool: TablePool<u64> = TablePool::new();
        let mut t = pool.take(3);
        assert_eq!(t.len(), 3);
        for row in &mut t {
            row.extend([7, 7, 7]);
        }
        pool.put(t);
        // Fewer rows: extra rows dropped, survivors cleared.
        let t2 = pool.take(2);
        assert_eq!(t2.len(), 2);
        assert!(t2.iter().all(|r| r.is_empty() && r.capacity() >= 3));
        pool.put(t2);
        // More rows: shelved rows reused, missing ones fresh.
        let t3 = pool.take(5);
        assert_eq!(t3.len(), 5);
        assert!(t3.iter().all(Vec::is_empty));
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 3);
    }

    #[test]
    fn stats_hit_rate() {
        assert_eq!(PoolStats::default().hit_rate(), None);
        let s = PoolStats { hits: 3, misses: 1 };
        assert!((s.hit_rate().unwrap() - 0.75).abs() < 1e-12);
        let merged = s.merged(&PoolStats { hits: 1, misses: 3 });
        assert_eq!(merged, PoolStats { hits: 4, misses: 4 });
    }

    #[test]
    fn concurrent_take_put() {
        let pool: Pool<u64> = Pool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let mut v = pool.take(64);
                        v.push(1);
                        pool.put(v);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, 400);
    }
}
