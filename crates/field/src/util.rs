//! Small utilities shared by the NTT and protocol layers: bit-reversal
//! permutations, strict log2, and batch inversion.

use crate::traits::Field;

/// Reverses the lowest `bits` bits of `index`.
///
/// # Example
///
/// ```
/// use unizk_field::bit_reverse;
/// assert_eq!(bit_reverse(0b001, 3), 0b100);
/// assert_eq!(bit_reverse(0b110, 3), 0b011);
/// ```
#[inline]
pub fn bit_reverse(index: usize, bits: usize) -> usize {
    if bits == 0 {
        return 0;
    }
    index.reverse_bits() >> (usize::BITS as usize - bits)
}

/// Permutes `values` in place into bit-reversed index order.
///
/// This is the `N`↔`R` order change that the paper's `NTT^NR` / `iNTT^NN`
/// variants are defined by (§5.1).
///
/// # Panics
///
/// Panics if `values.len()` is not a power of two.
pub fn reverse_index_bits<T>(values: &mut [T]) {
    let n = values.len();
    if n <= 1 {
        return;
    }
    let bits = log2_strict(n);
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            values.swap(i, j);
        }
    }
}

/// `log2(n)` for exact powers of two.
///
/// # Panics
///
/// Panics if `n` is zero or not a power of two.
#[inline]
pub fn log2_strict(n: usize) -> usize {
    assert!(n.is_power_of_two(), "{n} is not a power of two");
    n.trailing_zeros() as usize
}

/// Computes the multiplicative inverse of every element using Montgomery's
/// trick: one field inversion plus `3(n-1)` multiplications.
///
/// Used by the Plonk quotient computation, where millions of per-row
/// divisions would otherwise dominate (paper §5.4, Eq. 1).
///
/// # Panics
///
/// Panics if any element is zero.
pub fn batch_inverse<F: Field>(values: &[F]) -> Vec<F> {
    if values.is_empty() {
        return Vec::new();
    }
    // Prefix products.
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = F::ONE;
    for &v in values {
        assert!(!v.is_zero(), "batch_inverse of zero element");
        acc *= v;
        prefix.push(acc);
    }
    // Invert the total product once, then sweep backwards.
    let mut inv = acc.inverse();
    let mut out = vec![F::ZERO; values.len()];
    for i in (1..values.len()).rev() {
        out[i] = inv * prefix[i - 1];
        inv *= values[i];
    }
    out[0] = inv;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goldilocks::Goldilocks;
    use crate::traits::PrimeField64;
    use unizk_testkit::rng::TestRng as StdRng;

    #[test]
    fn bit_reverse_small() {
        assert_eq!(bit_reverse(0, 0), 0);
        assert_eq!(bit_reverse(0, 4), 0);
        assert_eq!(bit_reverse(1, 4), 8);
        assert_eq!(bit_reverse(0b1011, 4), 0b1101);
    }

    #[test]
    fn bit_reverse_is_involution() {
        for bits in 1..10 {
            for i in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(i, bits), bits), i);
            }
        }
    }

    #[test]
    fn reverse_index_bits_size8() {
        let mut v: Vec<usize> = (0..8).collect();
        reverse_index_bits(&mut v);
        assert_eq!(v, vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }

    #[test]
    fn reverse_index_bits_is_involution() {
        let mut v: Vec<usize> = (0..64).collect();
        let orig = v.clone();
        reverse_index_bits(&mut v);
        reverse_index_bits(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn reverse_index_bits_rejects_non_power_of_two() {
        let mut v = vec![1, 2, 3];
        reverse_index_bits(&mut v);
    }

    #[test]
    fn log2_strict_values() {
        assert_eq!(log2_strict(1), 0);
        assert_eq!(log2_strict(2), 1);
        assert_eq!(log2_strict(1 << 20), 20);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn log2_strict_rejects_zero() {
        let _ = log2_strict(0);
    }

    #[test]
    fn batch_inverse_matches_individual() {
        use crate::traits::Field;
        let mut rng = StdRng::seed_from_u64(21);
        let xs: Vec<Goldilocks> = (0..100)
            .map(|_| loop {
                let x = Goldilocks::random(&mut rng);
                if !x.is_zero() {
                    break x;
                }
            })
            .collect();
        let invs = batch_inverse(&xs);
        for (x, inv) in xs.iter().zip(&invs) {
            assert_eq!(*x * *inv, Goldilocks::ONE);
        }
    }

    #[test]
    fn batch_inverse_empty_and_single() {
        use crate::traits::Field;
        assert!(batch_inverse::<Goldilocks>(&[]).is_empty());
        let one = batch_inverse(&[Goldilocks::from_u64(4)]);
        assert_eq!(one[0] * Goldilocks::from_u64(4), Goldilocks::ONE);
    }

    #[test]
    #[should_panic(expected = "zero element")]
    fn batch_inverse_rejects_zero() {
        use crate::traits::Field;
        let _ = batch_inverse(&[Goldilocks::ONE, Goldilocks::ZERO]);
    }
}
