//! Field abstractions shared by the base field and its extension.

use core::fmt::{Debug, Display};
use core::hash::Hash;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A finite field with the operations the protocol stack needs.
///
/// Implemented by [`crate::Goldilocks`] and [`crate::Ext2`]. The trait is
/// deliberately small: enough for polynomial arithmetic, NTT-independent
/// protocol math, and constraint evaluation, without pulling in a big
/// numeric-trait ecosystem.
///
/// # Example
///
/// ```
/// use unizk_field::{Field, Goldilocks};
///
/// fn square_plus_one<F: Field>(x: F) -> F {
///     x * x + F::ONE
/// }
/// assert_eq!(square_plus_one(Goldilocks::from_u64(3)).as_u64(), 10);
/// ```
pub trait Field:
    'static
    + Copy
    + Clone
    + Debug
    + Display
    + Default
    + Eq
    + PartialEq
    + Hash
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// `2`, handy for halving in folding schemes.
    const TWO: Self;

    /// Returns `true` for the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Returns `true` for the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::ONE
    }

    /// The field element corresponding to a small integer.
    fn from_u64(n: u64) -> Self;

    /// The canonical `u64` representation of this element.
    ///
    /// For extension fields this is the representation of the degree-0 limb;
    /// callers that need the full element should use the concrete type.
    fn as_u64(&self) -> u64;

    /// Squares the element.
    fn square(&self) -> Self {
        *self * *self
    }

    /// Doubles the element.
    fn double(&self) -> Self {
        *self + *self
    }

    /// Raises the element to the power `exp` by square-and-multiply.
    fn exp_u64(&self, exp: u64) -> Self {
        let mut base = *self;
        let mut acc = Self::ONE;
        let mut e = exp;
        while e != 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base = base.square();
            e >>= 1;
        }
        acc
    }

    /// The multiplicative inverse, if it exists.
    fn try_inverse(&self) -> Option<Self>;

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the element is zero.
    fn inverse(&self) -> Self {
        self.try_inverse().expect("inverse of zero field element")
    }
}

/// A 64-bit prime field with two-adic structure, i.e. the base field that
/// NTTs and the accelerator's modular datapaths operate on.
pub trait PrimeField64: Field + Ord + PartialOrd {
    /// The field order `p`.
    const ORDER: u64;
    /// `v` in `p - 1 = 2^v * odd`; the maximum supported NTT size is `2^v`.
    const TWO_ADICITY: usize;
    /// A generator of the full multiplicative group.
    const MULTIPLICATIVE_GENERATOR: Self;
    /// Bits in `p - 1`: the entropy one uniformly random element carries.
    /// Drives challenge-bit budgeting (grind targets, the analyzer's
    /// extension-aware `P01` rule) — 64 for Goldilocks, 31 for KoalaBear.
    const BITS: usize;
    /// Bytes one canonical element occupies on the wire (8 for Goldilocks,
    /// 4 for KoalaBear). Proof serialization is sized by this.
    const BYTES: usize;

    /// A primitive `2^bits`-th root of unity.
    ///
    /// # Panics
    ///
    /// Panics if `bits > Self::TWO_ADICITY`.
    fn primitive_root_of_unity(bits: usize) -> Self;

    /// Samples a uniform field element.
    fn random<R: unizk_testkit::rng::Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A base field paired with the extension its protocol challenges are
/// drawn from. This is the seam that lets the FRI and STARK layers stay
/// generic over the `(base, extension)` pair: Goldilocks carries the
/// quadratic [`crate::Ext2`] (2 × 64 bits), KoalaBear the quartic
/// [`crate::KbExt4`] (4 × 31 bits) — both clear the ~100-bit
/// Schwartz–Zippel budget the analyzer's extension-aware `P01` rule
/// demands, where a degree-1 "extension" of a 31-bit field would not.
pub trait ProtocolField: PrimeField64 {
    /// The challenge extension field.
    type Ext: ExtensionOf<Self>;
}

/// An extension field over a [`PrimeField64`] base.
pub trait ExtensionOf<F: PrimeField64>: Field + From<F> {
    /// Extension degree `D`.
    const DEGREE: usize;

    /// The base-field limbs, lowest degree first.
    fn to_base_slice(&self) -> Vec<F>;

    /// Builds an element from base-field limbs, lowest degree first.
    ///
    /// # Panics
    ///
    /// Panics if `limbs.len() != Self::DEGREE`.
    fn from_base_slice(limbs: &[F]) -> Self;

    /// Multiplies by a base-field scalar.
    fn scale(&self, s: F) -> Self;
}
