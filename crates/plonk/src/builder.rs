//! The circuit builder: gates, copy constraints, and witness generators.
//!
//! Builds the matrices of the paper's Fig. 1: the selector matrix `Q`, the
//! index/permutation matrices `id`/`σ` (from the copy-constraint sets), and
//! the recipe for filling the witness matrix `W`.

use std::collections::HashMap;

use unizk_field::{Field, Goldilocks, PrimeField64};

use crate::circuit::{commit_constants, CircuitConfig, CircuitData, NUM_SELECTORS};

/// A wire slot: row `row`, wire column `col`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Target {
    /// Gate row.
    pub row: usize,
    /// Wire column.
    pub col: usize,
}

/// A witness-generation step.
#[derive(Copy, Clone, Debug)]
pub enum Op {
    /// `dst ← inputs[index]`.
    Input { dst: Target, index: usize },
    /// `dst ← value`.
    Const { dst: Target, value: Goldilocks },
    /// `dst ← a + b`.
    Add { a: Target, b: Target, dst: Target },
    /// `dst ← a · b`.
    Mul { a: Target, b: Target, dst: Target },
    /// `dst ← k·a + c`.
    Affine {
        a: Target,
        k: Goldilocks,
        c: Goldilocks,
        dst: Target,
    },
}

struct SelectorRow {
    ql: Goldilocks,
    qr: Goldilocks,
    qm: Goldilocks,
    qo: Goldilocks,
    qc: Goldilocks,
}

/// Incrementally builds a circuit; `build` freezes it into [`CircuitData`].
///
/// See the crate-level example for the paper's `(x0+x1)·(x2·x3) = 99`
/// statement.
pub struct CircuitBuilder {
    config: CircuitConfig,
    rows: Vec<SelectorRow>,
    pending_unions: Vec<((usize, usize), (usize, usize))>,
    ops: Vec<Op>,
    num_inputs: usize,
    pi_rows: Vec<usize>,
}

impl CircuitBuilder {
    /// Starts an empty circuit.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than 3 wires.
    pub fn new(config: CircuitConfig) -> Self {
        assert!(config.num_wires >= 3, "need at least 3 wire columns");
        Self {
            config,
            rows: Vec::new(),
            pending_unions: Vec::new(),
            ops: Vec::new(),
            num_inputs: 0,
            pi_rows: Vec::new(),
        }
    }

    /// Number of gate rows so far.
    pub fn num_gates(&self) -> usize {
        self.rows.len()
    }

    fn new_row(&mut self, sel: SelectorRow) -> usize {
        self.rows.push(sel);
        self.rows.len() - 1
    }

    /// A prover-supplied input value.
    pub fn add_input(&mut self) -> Target {
        let row = self.new_row(SelectorRow {
            ql: Goldilocks::ZERO,
            qr: Goldilocks::ZERO,
            qm: Goldilocks::ZERO,
            qo: Goldilocks::ZERO,
            qc: Goldilocks::ZERO,
        });
        let dst = Target { row, col: 0 };
        let index = self.num_inputs;
        self.num_inputs += 1;
        self.ops.push(Op::Input { dst, index });
        dst
    }

    /// The constant `c` as a circuit value (gate: `a − c = 0`).
    pub fn constant(&mut self, c: Goldilocks) -> Target {
        let row = self.new_row(SelectorRow {
            ql: Goldilocks::ONE,
            qr: Goldilocks::ZERO,
            qm: Goldilocks::ZERO,
            qo: Goldilocks::ZERO,
            qc: -c,
        });
        let dst = Target { row, col: 0 };
        self.ops.push(Op::Const { dst, value: c });
        dst
    }

    /// `x + y` (gate: `a + b − c = 0`).
    pub fn add(&mut self, x: Target, y: Target) -> Target {
        let row = self.new_row(SelectorRow {
            ql: Goldilocks::ONE,
            qr: Goldilocks::ONE,
            qm: Goldilocks::ZERO,
            qo: -Goldilocks::ONE,
            qc: Goldilocks::ZERO,
        });
        self.connect(Target { row, col: 0 }, x);
        self.connect(Target { row, col: 1 }, y);
        let dst = Target { row, col: 2 };
        self.ops.push(Op::Add {
            a: Target { row, col: 0 },
            b: Target { row, col: 1 },
            dst,
        });
        dst
    }

    /// `x · y` (gate: `a·b − c = 0`).
    pub fn mul(&mut self, x: Target, y: Target) -> Target {
        let row = self.new_row(SelectorRow {
            ql: Goldilocks::ZERO,
            qr: Goldilocks::ZERO,
            qm: Goldilocks::ONE,
            qo: -Goldilocks::ONE,
            qc: Goldilocks::ZERO,
        });
        self.connect(Target { row, col: 0 }, x);
        self.connect(Target { row, col: 1 }, y);
        let dst = Target { row, col: 2 };
        self.ops.push(Op::Mul {
            a: Target { row, col: 0 },
            b: Target { row, col: 1 },
            dst,
        });
        dst
    }

    /// `x − y` via `x + (−1)·y`.
    pub fn sub(&mut self, x: Target, y: Target) -> Target {
        let neg_y = self.mul_const(y, -Goldilocks::ONE);
        self.add(x, neg_y)
    }

    /// `k·x + c` (gate: `k·a + c − out = 0`).
    pub fn affine(&mut self, x: Target, k: Goldilocks, c: Goldilocks) -> Target {
        let row = self.new_row(SelectorRow {
            ql: k,
            qr: Goldilocks::ZERO,
            qm: Goldilocks::ZERO,
            qo: -Goldilocks::ONE,
            qc: c,
        });
        self.connect(Target { row, col: 0 }, x);
        let dst = Target { row, col: 2 };
        self.ops.push(Op::Affine {
            a: Target { row, col: 0 },
            k,
            c,
            dst,
        });
        dst
    }

    /// `k·x`.
    pub fn mul_const(&mut self, x: Target, k: Goldilocks) -> Target {
        self.affine(x, k, Goldilocks::ZERO)
    }

    /// `x + c` for a constant `c`.
    pub fn add_const(&mut self, x: Target, c: Goldilocks) -> Target {
        self.affine(x, Goldilocks::ONE, c)
    }

    /// `x·y + z` (two gates).
    pub fn mul_add(&mut self, x: Target, y: Target, z: Target) -> Target {
        let p = self.mul(x, y);
        self.add(p, z)
    }

    /// Copy-constrains two targets to carry the same value.
    pub fn connect(&mut self, x: Target, y: Target) {
        let (a, b) = (x, y);
        self.union(a, b);
    }

    /// Asserts `x == c` (gate: `a − c = 0`, with `a` routed to `x`).
    pub fn assert_constant(&mut self, x: Target, c: Goldilocks) {
        let row = self.new_row(SelectorRow {
            ql: Goldilocks::ONE,
            qr: Goldilocks::ZERO,
            qm: Goldilocks::ZERO,
            qo: Goldilocks::ZERO,
            qc: -c,
        });
        self.connect(Target { row, col: 0 }, x);
    }

    /// Asserts `x == y` via a copy constraint.
    pub fn assert_equal(&mut self, x: Target, y: Target) {
        self.connect(x, y);
    }

    /// Exposes `x` as a public input: a dedicated row whose gate
    /// constraint `a + PI(x) = 0` binds the wire to the value the verifier
    /// checks against. Returns the public-input index.
    pub fn register_public_input(&mut self, x: Target) -> usize {
        let row = self.new_row(SelectorRow {
            ql: Goldilocks::ONE,
            qr: Goldilocks::ZERO,
            qm: Goldilocks::ZERO,
            qo: Goldilocks::ZERO,
            qc: Goldilocks::ZERO,
        });
        self.connect(Target { row, col: 0 }, x);
        self.pi_rows.push(row);
        self.pi_rows.len() - 1
    }

    // -- union-find over sparse slot keys ------------------------------

    fn key(t: Target) -> (usize, usize) {
        (t.row, t.col)
    }

    fn union(&mut self, a: Target, b: Target) {
        // Deferred: unions are recorded and resolved at build time, keeping
        // the builder allocation-light. Store as pseudo-op pairs.
        self.pending_unions.push((Self::key(a), Self::key(b)));
    }

    /// Freezes the circuit: pads rows to a power of two, resolves copy sets
    /// into the permutation `σ`, and commits the constants.
    pub fn build(mut self) -> CircuitData {
        let min_rows = self.config.fri.final_poly_len.max(8);
        let rows = self.rows.len().max(min_rows).next_power_of_two();
        let w = self.config.num_wires;

        // Selector columns, padded with zero rows.
        let mut selectors = vec![vec![Goldilocks::ZERO; rows]; NUM_SELECTORS];
        for (r, sel) in self.rows.iter().enumerate() {
            selectors[0][r] = sel.ql;
            selectors[1][r] = sel.qr;
            selectors[2][r] = sel.qm;
            selectors[3][r] = sel.qo;
            selectors[4][r] = sel.qc;
        }

        // Resolve copy sets with a dense union-find over col·rows + row.
        let num_slots = w * rows;
        let mut parent: Vec<usize> = (0..num_slots).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let slot = |row: usize, col: usize| col * rows + row;
        for &((r1, c1), (r2, c2)) in &self.pending_unions {
            let a = find(&mut parent, slot(r1, c1));
            let b = find(&mut parent, slot(r2, c2));
            if a != b {
                parent[a] = b;
            }
        }

        // Group slots by representative, then wire each group into a cycle:
        // σ(slot_i) = slot_{i+1 mod len}.
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for s in 0..num_slots {
            let rep = find(&mut parent, s);
            groups.entry(rep).or_default().push(s);
        }
        let omega = Goldilocks::primitive_root_of_unity(unizk_field::log2_strict(rows));
        let g = Goldilocks::MULTIPLICATIVE_GENERATOR;
        let ks: Vec<Goldilocks> = (0..w).map(|j| g.exp_u64(j as u64)).collect();
        // Precompute ω^i.
        let mut omega_pows = Vec::with_capacity(rows);
        let mut acc = Goldilocks::ONE;
        for _ in 0..rows {
            omega_pows.push(acc);
            acc *= omega;
        }
        let id_value = |s: usize| {
            let col = s / rows;
            let row = s % rows;
            ks[col] * omega_pows[row]
        };
        let mut sigma_flat: Vec<Goldilocks> = (0..num_slots).map(id_value).collect();
        for members in groups.values() {
            if members.len() < 2 {
                continue;
            }
            for i in 0..members.len() {
                let next = members[(i + 1) % members.len()];
                sigma_flat[members[i]] = id_value(next);
            }
        }
        let sigmas: Vec<Vec<Goldilocks>> = (0..w)
            .map(|c| sigma_flat[c * rows..(c + 1) * rows].to_vec())
            .collect();

        // Slot representatives for witness materialization.
        let slot_reps: Vec<usize> = (0..num_slots).map(|s| find(&mut parent, s)).collect();

        let constants = commit_constants(&selectors, &sigmas, &self.config.fri);
        CircuitData {
            config: self.config,
            rows,
            selectors,
            sigmas,
            ks,
            slot_reps,
            ops: std::mem::take(&mut self.ops),
            num_inputs: self.num_inputs,
            pi_rows: std::mem::take(&mut self.pi_rows),
            constants,
        }
    }
}
