//! Circuit data shared by prover and verifier: configuration, selector and
//! permutation columns, and the constraint system itself.

use unizk_field::{Field, Goldilocks, Polynomial, PrimeField64};
use unizk_fri::{FriConfig, PolynomialBatch};

use crate::builder::Op;
use crate::error::PlonkError;
use crate::proof::Proof;

/// Factors per partial-product chunk. With 7 wire factors the chunk
/// constraint `P_m·G_m − P_{m-1}·F_m` has degree 8, matching the blowup-8
/// LDE (the paper's Eq. 1 uses 8-element chunks of the quotient values; the
/// committed-constraint formulation needs one slot for the carried product).
pub const CHUNK_SIZE: usize = 7;

/// Number of selector columns (`q_L, q_R, q_M, q_O, q_C`).
pub const NUM_SELECTORS: usize = 5;

/// Circuit-level configuration.
#[derive(Clone, Debug)]
pub struct CircuitConfig {
    /// Number of wire columns `W ≥ 3`. Plonky2 uses 135 (the paper's leaf
    /// width); small tests use 3.
    pub num_wires: usize,
    /// Independent permutation-argument repetitions. Plonky2 uses 2 so the
    /// 64-bit base-field challenges reach ~100-bit soundness.
    pub num_challenges: usize,
    /// FRI parameters (blowup, queries, grinding).
    pub fri: FriConfig,
}

impl CircuitConfig {
    /// The standard Plonky2-like configuration: 135 wires, 2 challenge
    /// rounds, blowup 8.
    pub fn standard() -> Self {
        Self {
            num_wires: 135,
            num_challenges: 2,
            fri: FriConfig::plonky2(),
        }
    }

    /// A narrow, fast configuration for unit tests.
    pub fn for_testing() -> Self {
        Self {
            num_wires: 3,
            num_challenges: 2,
            fri: FriConfig::for_testing(),
        }
    }

    /// Number of partial-product chunks `c = ⌈W / CHUNK_SIZE⌉`.
    pub fn num_chunks(&self) -> usize {
        self.num_wires.div_ceil(CHUNK_SIZE)
    }

    /// Committed polynomials per challenge round: `Z` plus `c − 1` partial
    /// products.
    pub fn perm_polys_per_challenge(&self) -> usize {
        self.num_chunks()
    }

    /// Quotient chunks per challenge round (the blowup factor).
    pub fn quotient_chunks_per_challenge(&self) -> usize {
        1 << self.fri.rate_bits
    }
}

/// A compiled circuit: everything both parties know.
#[derive(Clone, Debug)]
pub struct CircuitData {
    /// Configuration this circuit was built with.
    pub config: CircuitConfig,
    /// Number of rows `n` (a power of two).
    pub rows: usize,
    /// Selector columns, `selectors[s][row]`.
    pub selectors: Vec<Vec<Goldilocks>>,
    /// Permutation columns `σ_j` encoded as field elements `k_{j'}·ω^{i'}`.
    pub sigmas: Vec<Vec<Goldilocks>>,
    /// Coset representatives `k_j = g^j` for the wire columns.
    pub ks: Vec<Goldilocks>,
    /// Copy-constraint set representative for every slot (`col·rows + row`),
    /// used by witness generation.
    pub slot_reps: Vec<usize>,
    /// Witness-generation operations, in execution order.
    pub ops: Vec<Op>,
    /// Number of prover inputs expected.
    pub num_inputs: usize,
    /// Rows carrying public inputs (wire 0 of each row holds the value;
    /// the gate constraint `a + PI(x) = 0` binds it).
    pub pi_rows: Vec<usize>,
    /// Commitment to selectors + sigmas (the verification key).
    pub constants: PolynomialBatch,
}

impl CircuitData {
    /// Generates a witness and produces a proof.
    ///
    /// # Errors
    ///
    /// Returns [`PlonkError`] if the inputs do not satisfy the circuit
    /// (wrong count, copy-constraint conflicts, or failed assertions).
    pub fn prove(&self, inputs: &[Goldilocks]) -> Result<Proof, PlonkError> {
        crate::prover::prove(self, inputs)
    }

    /// Verifies a proof against this circuit.
    ///
    /// # Errors
    ///
    /// Returns [`PlonkError`] describing the first failed check.
    pub fn verify(&self, proof: &Proof) -> Result<(), PlonkError> {
        crate::verifier::verify(self, proof)
    }

    /// The trace-domain generator `ω` (order `rows`).
    pub fn omega(&self) -> Goldilocks {
        Goldilocks::primitive_root_of_unity(unizk_field::log2_strict(self.rows))
    }

    /// Evaluates `L_1` (the Lagrange basis polynomial of row 0) at a point
    /// off the domain: `(x^n − 1) / (n·(x − 1))`.
    pub fn eval_l1<E: Field + From<Goldilocks>>(&self, x: E) -> E {
        let n = E::from(Goldilocks::from_u64(self.rows as u64));
        let zh = x.exp_u64(self.rows as u64) - E::ONE;
        zh * (n * (x - E::ONE)).inverse()
    }

    /// Evaluates the vanishing polynomial `Z_H(x) = x^n − 1`.
    pub fn eval_zh<E: Field + From<Goldilocks>>(&self, x: E) -> E {
        x.exp_u64(self.rows as u64) - E::ONE
    }

    /// Total committed polynomials in each proof batch, in FRI batch order:
    /// `[constants, wires, permutation, quotient]`.
    pub fn batch_widths(&self) -> [usize; 4] {
        [
            NUM_SELECTORS + self.config.num_wires,
            self.config.num_wires,
            self.config.num_challenges * self.config.perm_polys_per_challenge(),
            self.config.num_challenges * self.config.quotient_chunks_per_challenge(),
        ]
    }
}

/// Builds the constants batch (selectors then sigmas) — the verification
/// key material.
pub fn commit_constants(
    selectors: &[Vec<Goldilocks>],
    sigmas: &[Vec<Goldilocks>],
    fri: &FriConfig,
) -> PolynomialBatch {
    let columns: Vec<Vec<Goldilocks>> = selectors.iter().chain(sigmas.iter()).cloned().collect();
    let _ = Polynomial::<Goldilocks>::zero(); // keep Polynomial in scope for doc links
    PolynomialBatch::from_values(columns, fri)
}

/// Everything needed to evaluate the constraint set at one point, over the
/// base field (quotient computation) or the extension (verifier).
#[derive(Clone, Debug)]
pub struct ConstraintInputs<E> {
    /// Selector values `q_L, q_R, q_M, q_O, q_C`.
    pub selectors: [E; NUM_SELECTORS],
    /// Wire values `w_0..w_{W-1}`.
    pub wires: Vec<E>,
    /// Permutation values `σ_0..σ_{W-1}`.
    pub sigmas: Vec<E>,
    /// `Z(x)`.
    pub z: E,
    /// `Z(ω·x)`.
    pub z_next: E,
    /// Partial products `P_0..P_{c-2}` (the last chunk's output is
    /// `z_next`).
    pub partials: Vec<E>,
    /// The evaluation point `x`.
    pub x: E,
    /// `L_1(x)`.
    pub l1: E,
    /// The public-input polynomial `PI(x)` evaluated at `x` (zero when the
    /// circuit has no public inputs).
    pub pi: E,
    /// Permutation challenges.
    pub beta: E,
    /// Permutation challenges.
    pub gamma: E,
}

/// Evaluates every constraint polynomial at one point. Order:
/// `[gate, chunk_0, …, chunk_{c-1}, L_1·(Z−1)]`.
///
/// This single implementation serves both the prover (over `Goldilocks`,
/// across the whole LDE domain) and the verifier (over `Ext2`, at `ζ`),
/// guaranteeing they agree.
#[allow(clippy::needless_range_loop)]
pub fn eval_constraints<E: Field + From<Goldilocks>>(
    ks: &[Goldilocks],
    inputs: &ConstraintInputs<E>,
) -> Vec<E> {
    let w = inputs.wires.len();
    let num_chunks = w.div_ceil(CHUNK_SIZE);
    let mut out = Vec::with_capacity(num_chunks + 2);

    // Gate constraint on the first three wires, plus the public-input
    // polynomial (PI(x) = −v on each public-input row, 0 elsewhere).
    let [ql, qr, qm, qo, qc] = inputs.selectors;
    let (a, b, c) = (inputs.wires[0], inputs.wires[1], inputs.wires[2]);
    out.push(ql * a + qr * b + qm * a * b + qo * c + qc + inputs.pi);

    // Permutation chunks: P_m·G_m − P_{m-1}·F_m, with P_{-1} = Z and
    // P_{c-1} = Z(ωx).
    for m in 0..num_chunks {
        let lo = m * CHUNK_SIZE;
        let hi = ((m + 1) * CHUNK_SIZE).min(w);
        let mut f = E::ONE;
        let mut g = E::ONE;
        for j in lo..hi {
            f *= inputs.wires[j] + inputs.beta * E::from(ks[j]) * inputs.x + inputs.gamma;
            g *= inputs.wires[j] + inputs.beta * inputs.sigmas[j] + inputs.gamma;
        }
        let prev = if m == 0 { inputs.z } else { inputs.partials[m - 1] };
        let cur = if m == num_chunks - 1 {
            inputs.z_next
        } else {
            inputs.partials[m]
        };
        out.push(cur * g - prev * f);
    }

    // Z starts at 1.
    out.push(inputs.l1 * (inputs.z - E::ONE));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_counts() {
        let mut cfg = CircuitConfig::for_testing();
        assert_eq!(cfg.num_chunks(), 1); // 3 wires -> 1 chunk
        cfg.num_wires = 135;
        assert_eq!(cfg.num_chunks(), 20); // ceil(135/7)
        cfg.num_wires = 7;
        assert_eq!(cfg.num_chunks(), 1);
        cfg.num_wires = 8;
        assert_eq!(cfg.num_chunks(), 2);
    }

    #[test]
    fn constraint_count_matches_layout() {
        let ks: Vec<Goldilocks> = (0..3)
            .map(|j| Goldilocks::MULTIPLICATIVE_GENERATOR.exp_u64(j))
            .collect();
        let inputs = ConstraintInputs {
            selectors: [Goldilocks::ZERO; 5],
            wires: vec![Goldilocks::ZERO; 3],
            sigmas: vec![Goldilocks::ONE; 3],
            z: Goldilocks::ONE,
            z_next: Goldilocks::ONE,
            partials: vec![],
            x: Goldilocks::from_u64(5),
            l1: Goldilocks::ZERO,
            pi: Goldilocks::ZERO,
            beta: Goldilocks::ZERO,
            gamma: Goldilocks::ONE,
        };
        let cs = eval_constraints(&ks, &inputs);
        // gate + 1 chunk + L1
        assert_eq!(cs.len(), 3);
        // With β=0, γ=1: every factor is w+1, F=G, Z=Z_next → all zero.
        assert!(cs.iter().all(|c| c.is_zero()));
    }
}
