//! A Plonky2-style Plonk prover and verifier over the Goldilocks field.
//!
//! This is the protocol whose proof generation the UniZK accelerator targets
//! (paper §2.2, Fig. 1). The pipeline:
//!
//! 1. **Circuit** ([`builder::CircuitBuilder`]) — rows of arithmetic gates
//!    with selector columns `q_L, q_R, q_M, q_O, q_C` and wire columns
//!    `w_0..w_{W-1}`; copy constraints connect gates through wires.
//! 2. **Witness** — generators fill the wire matrix `W` from the prover's
//!    inputs.
//! 3. **Permutation argument** ([`permutation`]) — the copy constraints
//!    become a running-product polynomial `Z` plus partial-product columns
//!    in 7-factor chunks, the exact computation the paper maps in §5.4
//!    (Eqs. 1–2).
//! 4. **Quotient** ([`quotient`]) — all constraints are combined and divided
//!    by the vanishing polynomial on an 8× coset LDE.
//! 5. **FRI openings** — everything is committed in Merkle trees and opened
//!    at a random extension point `ζ` (and `ζ·ω` for `Z`).
//!
//! # Example
//!
//! ```
//! use unizk_field::{Field, Goldilocks};
//! use unizk_plonk::{CircuitBuilder, CircuitConfig};
//!
//! // Prove knowledge of (x0..x3) with (x0 + x1) * (x2 * x3) = 99 — the
//! // paper's running example (Fig. 1).
//! let mut builder = CircuitBuilder::new(CircuitConfig::for_testing());
//! let x0 = builder.add_input();
//! let x1 = builder.add_input();
//! let x2 = builder.add_input();
//! let x3 = builder.add_input();
//! let sum = builder.add(x0, x1);
//! let prod = builder.mul(x2, x3);
//! let out = builder.mul(sum, prod);
//! builder.assert_constant(out, Goldilocks::from_u64(99));
//! let circuit = builder.build();
//!
//! let inputs: Vec<Goldilocks> = [2u64, 7, 3, 11] // (2+7)*(3*11) = 297? no:
//!     .iter().map(|&x| Goldilocks::from_u64(x)).collect();
//! // pick a satisfying witness: (4+5) * (1*11) = 99
//! let inputs: Vec<Goldilocks> = [4u64, 5, 1, 11]
//!     .iter().map(|&x| Goldilocks::from_u64(x)).collect();
//! let proof = circuit.prove(&inputs).expect("satisfiable witness");
//! circuit.verify(&proof).expect("proof verifies");
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod circuit;
pub mod error;
pub mod gadgets;
pub mod permutation;
pub mod proof;
pub mod prover;
pub mod quotient;
pub mod verifier;

pub use builder::{CircuitBuilder, Target};
pub use circuit::{CircuitConfig, CircuitData};
pub use error::PlonkError;
pub use proof::Proof;
