//! The Plonk verifier: transcript replay, FRI verification, and the
//! constraint identity check at `ζ`.

use unizk_field::{Ext2, Field, Goldilocks};
use unizk_fri::fri_verify;
use unizk_hash::Challenger;

use crate::circuit::{eval_constraints, CircuitData, ConstraintInputs, NUM_SELECTORS};
use crate::error::PlonkError;
use crate::proof::Proof;

/// Verifies a proof against the circuit.
///
/// # Errors
///
/// Returns [`PlonkError`] describing the first failed check.
pub fn verify(data: &CircuitData, proof: &Proof) -> Result<(), PlonkError> {
    if proof.public_inputs.len() != data.pi_rows.len() {
        return Err(PlonkError::WrongInputCount {
            expected: data.pi_rows.len(),
            got: proof.public_inputs.len(),
        });
    }
    let mut challenger = Challenger::new();
    challenger.observe_digest(data.constants.root());
    challenger.observe_slice(&proof.public_inputs);
    challenger.observe_digest(proof.wires_root);

    let s_rounds = data.config.num_challenges;
    let mut betas = Vec::with_capacity(s_rounds);
    let mut gammas = Vec::with_capacity(s_rounds);
    for _ in 0..s_rounds {
        betas.push(challenger.challenge());
        gammas.push(challenger.challenge());
    }
    challenger.observe_digest(proof.perm_root);
    let alphas: Vec<Goldilocks> = challenger.challenges(s_rounds);
    challenger.observe_digest(proof.quotient_root);
    let zeta = challenger.challenge_ext();
    let omega = data.omega();
    let points = [zeta, zeta * Ext2::from(omega)];

    // ζ must avoid the trace domain so Z_H(ζ) is invertible.
    let zh_zeta = data.eval_zh(zeta);
    if zh_zeta == Ext2::ZERO {
        return Err(PlonkError::DegenerateChallenge);
    }

    // FRI checks the commitments and binds the claimed openings.
    let widths = data.batch_widths();
    fri_verify(
        &[
            data.constants.root(),
            proof.wires_root,
            proof.perm_root,
            proof.quotient_root,
        ],
        &widths,
        data.rows,
        &points,
        &proof.fri,
        &mut challenger,
        &data.config.fri,
    )?;

    // Recombine the constraint identity at ζ from the opened values.
    let w = data.config.num_wires;
    let num_chunks = data.config.num_chunks();
    let at_zeta = &proof.fri.openings[0];
    let at_zeta_omega = &proof.fri.openings[1];
    let consts = &at_zeta[0];
    let wires = &at_zeta[1];
    let perm = &at_zeta[2];
    let quotient = &at_zeta[3];
    let perm_next = &at_zeta_omega[2];

    let l1 = data.eval_l1(zeta);
    let zeta_pow_n = zeta.exp_u64(data.rows as u64);

    // PI(ζ) = Σ_i (−v_i)·L_{row_i}(ζ), with
    // L_r(ζ) = ω^r·(ζ^n − 1) / (n·(ζ − ω^r)).
    let n_elem = Ext2::from(Goldilocks::from_u64(data.rows as u64));
    let zh_over_n = zh_zeta * n_elem.inverse();
    let mut pi_at_zeta = Ext2::ZERO;
    for (&row, &v) in data.pi_rows.iter().zip(&proof.public_inputs) {
        let omega_r = Ext2::from(omega.exp_u64(row as u64));
        let denom = (zeta - omega_r)
            .try_inverse()
            .ok_or(PlonkError::DegenerateChallenge)?;
        pi_at_zeta += Ext2::from(-v) * omega_r * zh_over_n * denom;
    }

    for s in 0..s_rounds {
        let base = s * num_chunks;
        let inputs = ConstraintInputs {
            selectors: [consts[0], consts[1], consts[2], consts[3], consts[4]],
            wires: wires.clone(),
            sigmas: consts[NUM_SELECTORS..NUM_SELECTORS + w].to_vec(),
            z: perm[base],
            z_next: perm_next[base],
            partials: perm[base + 1..base + num_chunks].to_vec(),
            x: zeta,
            l1,
            pi: pi_at_zeta,
            beta: Ext2::from(betas[s]),
            gamma: Ext2::from(gammas[s]),
        };
        let constraints = eval_constraints(&data.ks, &inputs);
        let mut combined = Ext2::ZERO;
        let mut alpha_pow = Ext2::ONE;
        for c in constraints {
            combined += alpha_pow * c;
            alpha_pow *= Ext2::from(alphas[s]);
        }

        // t_s(ζ) from the chunk openings.
        let blowup = data.config.quotient_chunks_per_challenge();
        let mut t = Ext2::ZERO;
        let mut zeta_chunk_pow = Ext2::ONE;
        for m in 0..blowup {
            t += zeta_chunk_pow * quotient[s * blowup + m];
            zeta_chunk_pow *= zeta_pow_n;
        }

        if combined != zh_zeta * t {
            return Err(PlonkError::QuotientMismatch { challenge_round: s });
        }
    }

    Ok(())
}
