//! The permutation argument: running product `Z` and partial products.
//!
//! This is the computation the paper singles out in §5.4 (Eqs. 1–2): per
//! row, the quotients `f_j/g_j` are accumulated in chunks (`h` in Eq. 1),
//! and the chunk products are chained into running partial products (`PP`
//! in Eq. 2). The divisions are batched with Montgomery inversion — the
//! same restructuring that lets UniZK parallelize Eq. 1 while pipelining
//! Eq. 2's sequential chain across PEs.

use unizk_field::{batch_inverse, Field, Goldilocks};

use crate::circuit::{CircuitData, CHUNK_SIZE};

/// The committed columns of one challenge round: `Z` first, then the
/// `c − 1` intermediate partial products.
#[derive(Clone, Debug)]
pub struct PermutationColumns {
    /// `columns[0] = Z`, `columns[1..] = P_0..P_{c-2}`; each of length `n`.
    pub columns: Vec<Vec<Goldilocks>>,
}

/// Computes `Z` and the partial-product columns for one `(β, γ)` round.
///
/// `wires[j][i]` is wire column `j` at row `i`.
#[allow(clippy::needless_range_loop)]
pub fn compute_permutation(
    data: &CircuitData,
    wires: &[Vec<Goldilocks>],
    beta: Goldilocks,
    gamma: Goldilocks,
) -> PermutationColumns {
    let n = data.rows;
    let w = data.config.num_wires;
    let num_chunks = data.config.num_chunks();
    let omega = data.omega();

    // Precompute ω^i.
    let mut omega_pows = Vec::with_capacity(n);
    let mut acc = Goldilocks::ONE;
    for _ in 0..n {
        omega_pows.push(acc);
        acc *= omega;
    }

    // All denominators g_j(i) = w_j(i) + β·σ_j(i) + γ, batch-inverted at
    // once (Eq. 1's divisions).
    let mut denoms = Vec::with_capacity(n * w);
    for i in 0..n {
        for j in 0..w {
            denoms.push(wires[j][i] + beta * data.sigmas[j][i] + gamma);
        }
    }
    let denom_invs = batch_inverse(&denoms);

    // Chunked quotient products per row (the h values), then the global
    // running product (the PP chain).
    let mut z = Vec::with_capacity(n);
    let mut partials = vec![Vec::with_capacity(n); num_chunks.saturating_sub(1)];
    let mut running = Goldilocks::ONE;
    for i in 0..n {
        z.push(running);
        let mut row_acc = running;
        for m in 0..num_chunks {
            let lo = m * CHUNK_SIZE;
            let hi = ((m + 1) * CHUNK_SIZE).min(w);
            let mut chunk = Goldilocks::ONE;
            for j in lo..hi {
                let num = wires[j][i] + beta * data.ks[j] * omega_pows[i] + gamma;
                chunk *= num * denom_invs[i * w + j];
            }
            row_acc *= chunk;
            if m + 1 < num_chunks {
                partials[m].push(row_acc);
            }
        }
        running = row_acc;
    }

    let mut columns = Vec::with_capacity(num_chunks);
    columns.push(z);
    columns.extend(partials);
    PermutationColumns { columns }
}

impl PermutationColumns {
    /// The final running product after the last row; `1` iff the copy
    /// constraints hold (the grand product telescopes).
    #[allow(clippy::needless_range_loop)]
    pub fn final_product(
        &self,
        data: &CircuitData,
        wires: &[Vec<Goldilocks>],
        beta: Goldilocks,
        gamma: Goldilocks,
    ) -> Goldilocks {
        // Recompute the last row's full quotient product on top of Z[n-1].
        let n = data.rows;
        let w = data.config.num_wires;
        let omega = data.omega();
        let x = omega.exp_u64((n - 1) as u64);
        let mut acc = self.columns[0][n - 1];
        for j in 0..w {
            let num = wires[j][n - 1] + beta * data.ks[j] * x + gamma;
            let den = wires[j][n - 1] + beta * data.sigmas[j][n - 1] + gamma;
            acc *= num * den.inverse();
        }
        acc
    }
}
