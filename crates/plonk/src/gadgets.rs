//! In-circuit gadgets: Poseidon hashing and Merkle-path verification
//! inside a Plonk circuit.
//!
//! Hash-based ZKP protocols exist precisely because Poseidon is cheap *in
//! circuit* (paper §2.1) — proving statements about Merkle membership is
//! the canonical blockchain workload (§1). These gadgets build the
//! arithmetic-circuit form of `unizk-hash`'s Poseidon permutation and
//! Merkle verification, and the tests check the in-circuit computation
//! agrees with the native implementation bit for bit.

use unizk_field::{Field, Goldilocks};
use unizk_hash::poseidon::{constants, FULL_ROUNDS, PARTIAL_ROUNDS, WIDTH};

use crate::builder::{CircuitBuilder, Target};

/// `x^7` as four multiplication gates.
fn sbox_gadget(b: &mut CircuitBuilder, x: Target) -> Target {
    let x2 = b.mul(x, x);
    let x4 = b.mul(x2, x2);
    let x6 = b.mul(x4, x2);
    b.mul(x6, x)
}

/// Dense matrix–vector product: `out[i] = Σ_j m[i][j]·s[j]` via
/// `mul_const` + `add` chains.
fn mat_mul_gadget(
    b: &mut CircuitBuilder,
    m: &[[Goldilocks; WIDTH]; WIDTH],
    state: &[Target; WIDTH],
) -> [Target; WIDTH] {
    core::array::from_fn(|i| {
        let mut acc = b.mul_const(state[0], m[i][0]);
        for j in 1..WIDTH {
            let term = b.mul_const(state[j], m[i][j]);
            acc = b.add(acc, term);
        }
        acc
    })
}

/// The full Poseidon permutation as circuit gates, mirroring
/// [`unizk_hash::poseidon_permute`].
#[allow(clippy::needless_range_loop)]
pub fn poseidon_permutation_gadget(
    b: &mut CircuitBuilder,
    state: [Target; WIDTH],
) -> [Target; WIDTH] {
    let cs = constants();
    let mut s = state;

    let full_round = |b: &mut CircuitBuilder, s: [Target; WIDTH], r: usize| {
        let sboxed: [Target; WIDTH] = core::array::from_fn(|i| {
            let t = b.add_const(s[i], cs.round_constants[r][i]);
            sbox_gadget(b, t)
        });
        mat_mul_gadget(b, &cs.mds, &sboxed)
    };

    for r in 0..FULL_ROUNDS / 2 {
        s = full_round(b, s, r);
    }

    // Pre-partial round.
    let added: [Target; WIDTH] =
        core::array::from_fn(|i| b.add_const(s[i], cs.pre_partial_constants[i]));
    s = mat_mul_gadget(b, &cs.pre_mds, &added);

    // Partial rounds: sparse structure keeps these cheap in circuit too.
    for r in 0..PARTIAL_ROUNDS {
        let sboxed0 = sbox_gadget(b, s[0]);
        let s0 = b.add_const(sboxed0, cs.partial_round_constants[r]);
        // out[0] = u·state (with the updated s0).
        let mut dot = b.mul_const(s0, cs.sparse_u[r][0]);
        for j in 1..WIDTH {
            let term = b.mul_const(s[j], cs.sparse_u[r][j]);
            dot = b.add(dot, term);
        }
        let mut out = s;
        out[0] = dot;
        for j in 1..WIDTH {
            let vj = b.mul_const(s0, cs.sparse_v[r][j]);
            let ej = b.mul_const(s[j], cs.sparse_diag[r][j]);
            out[j] = b.add(vj, ej);
        }
        s = out;
    }

    for r in FULL_ROUNDS / 2..FULL_ROUNDS {
        s = full_round(b, s, r);
    }
    s
}

/// Hashes up to 8 elements to a 4-element digest in circuit (one absorb of
/// [`unizk_hash::hash_no_pad`]).
///
/// # Panics
///
/// Panics if `input` is empty or longer than the sponge rate (8).
pub fn hash_no_pad_gadget(b: &mut CircuitBuilder, input: &[Target]) -> [Target; 4] {
    assert!(
        !input.is_empty() && input.len() <= 8,
        "single-absorb gadget takes 1..=8 elements"
    );
    let zero = b.constant(Goldilocks::ZERO);
    let state: [Target; WIDTH] =
        core::array::from_fn(|i| if i < input.len() { input[i] } else { zero });
    let out = poseidon_permutation_gadget(b, state);
    [out[0], out[1], out[2], out[3]]
}

/// Hashes two digests into their parent (the Merkle interior-node rule of
/// paper §5.3: 4 + 4 elements, zero padded).
pub fn two_to_one_gadget(
    b: &mut CircuitBuilder,
    left: [Target; 4],
    right: [Target; 4],
) -> [Target; 4] {
    let zero = b.constant(Goldilocks::ZERO);
    let state: [Target; WIDTH] = core::array::from_fn(|i| match i {
        0..=3 => left[i],
        4..=7 => right[i - 4],
        _ => zero,
    });
    let out = poseidon_permutation_gadget(b, state);
    [out[0], out[1], out[2], out[3]]
}

/// Constrains `bit` to be boolean (`b² = b`).
pub fn assert_boolean(b: &mut CircuitBuilder, bit: Target) {
    let sq = b.mul(bit, bit);
    b.assert_equal(sq, bit);
}

/// `if bit { x } else { y }` as `bit·(x − y) + y`.
pub fn select(b: &mut CircuitBuilder, bit: Target, x: Target, y: Target) -> Target {
    let diff = b.sub(x, y);
    let scaled = b.mul(bit, diff);
    b.add(scaled, y)
}

/// Recomputes a Merkle root from a leaf digest, the path bits (LSB first:
/// `1` = current node is the right child), and the sibling digests, then
/// constrains it to equal `expected_root`.
///
/// # Panics
///
/// Panics if `bits.len() != siblings.len()`.
pub fn merkle_membership_gadget(
    b: &mut CircuitBuilder,
    leaf_digest: [Target; 4],
    bits: &[Target],
    siblings: &[[Target; 4]],
    expected_root: [Target; 4],
) {
    assert_eq!(bits.len(), siblings.len(), "one bit per level");
    let mut current = leaf_digest;
    for (&bit, sibling) in bits.iter().zip(siblings) {
        assert_boolean(b, bit);
        // left = bit ? sibling : current; right = bit ? current : sibling.
        let left: [Target; 4] =
            core::array::from_fn(|i| select(b, bit, sibling[i], current[i]));
        let right: [Target; 4] =
            core::array::from_fn(|i| select(b, bit, current[i], sibling[i]));
        current = two_to_one_gadget(b, left, right);
    }
    for i in 0..4 {
        b.assert_equal(current[i], expected_root[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitConfig;
    use unizk_hash::{hash_no_pad, poseidon_permute, MerkleTree};

    fn g(n: u64) -> Goldilocks {
        Goldilocks::from_u64(n)
    }

    #[test]
    fn in_circuit_permutation_matches_native() {
        let mut b = CircuitBuilder::new(CircuitConfig::for_testing());
        let inputs: [Target; WIDTH] = core::array::from_fn(|_| b.add_input());
        let out = poseidon_permutation_gadget(&mut b, inputs);
        // Pin the outputs to the native permutation of a known state.
        let mut native: [Goldilocks; WIDTH] = core::array::from_fn(|i| g(100 + i as u64));
        let witness: Vec<Goldilocks> = native.to_vec();
        poseidon_permute(&mut native);
        for (t, v) in out.iter().zip(native.iter()) {
            b.assert_constant(*t, *v);
        }
        let circuit = b.build();
        let proof = circuit.prove(&witness).expect("in-circuit == native");
        circuit.verify(&proof).expect("verifies");
    }

    #[test]
    fn in_circuit_permutation_rejects_wrong_output() {
        let mut b = CircuitBuilder::new(CircuitConfig::for_testing());
        let inputs: [Target; WIDTH] = core::array::from_fn(|_| b.add_input());
        let out = poseidon_permutation_gadget(&mut b, inputs);
        let mut native: [Goldilocks; WIDTH] = core::array::from_fn(|i| g(100 + i as u64));
        let witness: Vec<Goldilocks> = native.to_vec();
        poseidon_permute(&mut native);
        // Claim a wrong first output element.
        b.assert_constant(out[0], native[0] + Goldilocks::ONE);
        let circuit = b.build();
        assert!(circuit.prove(&witness).is_err());
    }

    #[test]
    fn hash_gadget_matches_native() {
        let mut b = CircuitBuilder::new(CircuitConfig::for_testing());
        let inputs: Vec<Target> = (0..5).map(|_| b.add_input()).collect();
        let digest = hash_no_pad_gadget(&mut b, &inputs);
        let values: Vec<Goldilocks> = (0..5u64).map(|i| g(7 * i + 1)).collect();
        let native = hash_no_pad(&values);
        for (t, v) in digest.iter().zip(native.elements()) {
            b.assert_constant(*t, v);
        }
        let circuit = b.build();
        let proof = circuit.prove(&values).expect("proves");
        circuit.verify(&proof).expect("verifies");
    }

    #[test]
    fn merkle_membership_proves_a_real_tree_opening() {
        // Build a native tree, open leaf 5, and prove membership in circuit.
        let leaves: Vec<Vec<Goldilocks>> =
            (0..8u64).map(|i| vec![g(1000 + i), g(2000 + i)]).collect();
        let tree = MerkleTree::new(leaves.clone());
        let index = 5usize;
        let opening = tree.prove(index);

        let mut b = CircuitBuilder::new(CircuitConfig::for_testing());
        // Private: the leaf contents and the path.
        let leaf_targets: Vec<Target> = (0..2).map(|_| b.add_input()).collect();
        let leaf_digest = hash_no_pad_gadget(&mut b, &leaf_targets);
        let bit_targets: Vec<Target> = (0..3).map(|_| b.add_input()).collect();
        let sibling_targets: Vec<[Target; 4]> = (0..3)
            .map(|_| core::array::from_fn(|_| b.add_input()))
            .collect();
        // Public: the root.
        let root_targets: [Target; 4] = core::array::from_fn(|_| b.add_input());
        for &t in &root_targets {
            b.register_public_input(t);
        }
        merkle_membership_gadget(&mut b, leaf_digest, &bit_targets, &sibling_targets, root_targets);
        let circuit = b.build();

        // Witness: leaf, bits (LSB first), siblings, root.
        let mut witness: Vec<Goldilocks> = leaves[index].clone();
        for level in 0..3 {
            witness.push(g(((index >> level) & 1) as u64));
        }
        // placeholder: siblings follow bits in input order
        let mut sibs = Vec::new();
        for s in &opening.siblings {
            sibs.extend(s.elements());
        }
        witness.extend(sibs);
        witness.extend(tree.root().elements());

        let proof = circuit.prove(&witness).expect("membership holds");
        assert_eq!(proof.public_inputs, tree.root().elements().to_vec());
        circuit.verify(&proof).expect("verifies");

        // A wrong root must not prove.
        let mut bad = witness.clone();
        let n = bad.len();
        bad[n - 1] += Goldilocks::ONE;
        assert!(circuit.prove(&bad).is_err());
    }

    #[test]
    fn select_and_boolean_gadgets() {
        let mut b = CircuitBuilder::new(CircuitConfig::for_testing());
        let bit = b.add_input();
        assert_boolean(&mut b, bit);
        let x = b.constant(g(10));
        let y = b.constant(g(20));
        let sel = select(&mut b, bit, x, y);
        b.register_public_input(sel);
        let circuit = b.build();

        let p1 = circuit.prove(&[g(1)]).expect("bit = 1");
        assert_eq!(p1.public_inputs, vec![g(10)]);
        let p0 = circuit.prove(&[g(0)]).expect("bit = 0");
        assert_eq!(p0.public_inputs, vec![g(20)]);
        // Non-boolean selector rejected.
        assert!(circuit.prove(&[g(2)]).is_err());
    }
}
